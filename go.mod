module atrapos

go 1.22
