// Package btree implements the in-memory B+-tree used as the physical
// representation of tables and indexes, and the multi-rooted B-tree that PLP
// and ATraPos use to physically partition a table: one sub-tree root per
// logical partition, so that all accesses within a partition are local to the
// worker thread that owns it (Section III-A, "PLP").
package btree

import (
	"fmt"
	"sync"

	"atrapos/internal/schema"
)

// degree is the minimum fan-out of internal nodes. Leaves hold up to
// 2*degree-1 entries.
const degree = 32

// Item is one key/value pair stored in a tree.
type Item struct {
	Key   schema.Key
	Value schema.Row
}

type node struct {
	leaf     bool
	keys     []schema.Key
	values   []schema.Row // only for leaves
	children []*node      // only for internal nodes
	next     *node        // leaf chaining for range scans
}

// Tree is a single-rooted B+-tree. It is safe for concurrent use; a tree that
// is privately owned by one partition worker never contends on the mutex.
type Tree struct {
	mu    sync.RWMutex
	root  *node
	size  int
	nodes int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}, nodes: 1}
}

// Len returns the number of entries in the tree.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// NodeCount returns the number of nodes; the repartitioning cost model uses it
// to estimate how much metadata a split or merge touches.
func (t *Tree) NodeCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes
}

// Get returns the row stored under key.
func (t *Tree) Get(key schema.Key) (schema.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i, ok := findKey(n.keys, key)
	if !ok {
		return nil, false
	}
	return n.values[i], true
}

// Insert stores value under key, replacing any previous value. It reports
// whether a new key was inserted (false means an existing key was updated).
func (t *Tree) Insert(key schema.Key, value schema.Row) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(key, value)
}

func (t *Tree) insertLocked(key schema.Key, value schema.Row) bool {
	r := t.root
	if len(r.keys) == maxKeys() {
		newRoot := &node{children: []*node{r}}
		t.splitChild(newRoot, 0)
		t.root = newRoot
		t.nodes++
		r = newRoot
	}
	inserted := t.insertNonFull(r, key, value)
	if inserted {
		t.size++
	}
	return inserted
}

func maxKeys() int { return 2*degree - 1 }

func (t *Tree) insertNonFull(n *node, key schema.Key, value schema.Row) bool {
	if n.leaf {
		i, ok := findKey(n.keys, key)
		if ok {
			n.values[i] = value
			return false
		}
		i = upperBound(n.keys, key)
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.values = append(n.values, nil)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = value
		return true
	}
	i := childIndex(n.keys, key)
	if len(n.children[i].keys) == maxKeys() {
		t.splitChild(n, i)
		if key >= n.keys[i] {
			i++
		}
	}
	return t.insertNonFull(n.children[i], key, value)
}

// splitChild splits the full child at index i of parent p.
func (t *Tree) splitChild(p *node, i int) {
	child := p.children[i]
	mid := len(child.keys) / 2
	var sep schema.Key
	right := &node{leaf: child.leaf}
	if child.leaf {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid:]...)
		right.values = append(right.values, child.values[mid:]...)
		child.keys = child.keys[:mid]
		child.values = child.values[:mid]
		right.next = child.next
		child.next = right
	} else {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid]
		child.children = child.children[:mid+1]
	}
	p.keys = append(p.keys, 0)
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = sep
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
	t.nodes++
}

// Delete removes key from the tree and reports whether it was present.
// Deletion uses lazy structural maintenance: leaves may under-fill, which is
// acceptable for the workloads at hand (deletes are rare in TATP/TPC-C) and
// keeps the range-scan chain intact.
func (t *Tree) Delete(key schema.Key) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i, ok := findKey(n.keys, key)
	if !ok {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	t.size--
	return true
}

// Update applies fn to the row stored under key in place and reports whether
// the key was found. fn receives the stored row and returns the new row.
func (t *Tree) Update(key schema.Key, fn func(schema.Row) schema.Row) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i, ok := findKey(n.keys, key)
	if !ok {
		return false
	}
	n.values[i] = fn(n.values[i])
	return true
}

// Scan visits entries with from <= key < to in ascending key order, calling fn
// for each. Scanning stops early if fn returns false.
func (t *Tree) Scan(from, to schema.Key, fn func(schema.Key, schema.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, from)]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < from {
				continue
			}
			if k >= to {
				return
			}
			if !fn(k, n.values[i]) {
				return
			}
		}
		n = n.next
	}
}

// Ascend visits every entry in ascending key order.
func (t *Tree) Ascend(fn func(schema.Key, schema.Row) bool) {
	t.Scan(0, ^schema.Key(0), fn)
}

// Min returns the smallest key in the tree.
func (t *Tree) Min() (schema.Key, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		return 0, false
	}
	return n.keys[0], true
}

// Max returns the largest key in the tree.
func (t *Tree) Max() (schema.Key, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		return 0, false
	}
	return n.keys[len(n.keys)-1], true
}

// Items returns all entries in ascending order. Intended for tests and for
// repartitioning, not for the transaction critical path.
func (t *Tree) Items() []Item {
	out := make([]Item, 0, t.Len())
	t.Ascend(func(k schema.Key, v schema.Row) bool {
		out = append(out, Item{Key: k, Value: v})
		return true
	})
	return out
}

// BulkLoad builds a tree from entries that must be sorted by ascending key.
// It is used when loading datasets and when repartitioning splits or merges
// sub-trees.
func BulkLoad(items []Item) (*Tree, error) {
	t := New()
	var prev schema.Key
	for i, it := range items {
		if i > 0 && it.Key <= prev {
			return nil, fmt.Errorf("btree: bulk load input not strictly ascending at %d", i)
		}
		prev = it.Key
		t.insertLocked(it.Key, it.Value)
	}
	return t, nil
}

// --- helpers ---

// findKey returns the index of key in keys and whether it is present.
func findKey(keys []schema.Key, key schema.Key) (int, bool) {
	i := lowerBound(keys, key)
	if i < len(keys) && keys[i] == key {
		return i, true
	}
	return i, false
}

// lowerBound returns the first index whose key is >= key.
func lowerBound(keys []schema.Key, key schema.Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index whose key is > key.
func upperBound(keys []schema.Key, key schema.Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the child slot to follow for key in an internal node
// whose separator keys partition the space as [..k0) [k0..k1) ... [kn..].
func childIndex(keys []schema.Key, key schema.Key) int {
	return upperBound(keys, key)
}
