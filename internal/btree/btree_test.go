package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"atrapos/internal/schema"
)

func row(v int64) schema.Row { return schema.Row{v} }

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(schema.KeyFromInt(1)); ok {
		t.Error("Get on empty tree should miss")
	}
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty tree should report absence")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max on empty tree should report absence")
	}
	if tr.Delete(schema.KeyFromInt(1)) {
		t.Error("Delete on empty tree should report absence")
	}
	if tr.NodeCount() != 1 {
		t.Errorf("empty tree has %d nodes, want 1", tr.NodeCount())
	}
}

func TestInsertGetSequential(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		if !tr.Insert(schema.KeyFromInt(int64(i)), row(int64(i*10))) {
			t.Fatalf("Insert(%d) reported update", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(schema.KeyFromInt(int64(i)))
		if !ok {
			t.Fatalf("Get(%d) missed", i)
		}
		if v[0].(int64) != int64(i*10) {
			t.Fatalf("Get(%d) = %v", i, v)
		}
	}
	if _, ok := tr.Get(schema.KeyFromInt(n + 5)); ok {
		t.Error("Get of absent key should miss")
	}
}

func TestInsertRandomAndOverwrite(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(3000)
	for _, k := range keys {
		tr.Insert(schema.KeyFromInt(int64(k)), row(int64(k)))
	}
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d, want 3000", tr.Len())
	}
	// Overwrites do not change the size.
	if tr.Insert(schema.KeyFromInt(42), row(999)) {
		t.Error("overwrite should report update, not insert")
	}
	if tr.Len() != 3000 {
		t.Errorf("Len changed on overwrite: %d", tr.Len())
	}
	v, _ := tr.Get(schema.KeyFromInt(42))
	if v[0].(int64) != 999 {
		t.Errorf("overwritten value = %v", v)
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	for _, k := range []int64{500, 3, 999, 250} {
		tr.Insert(schema.KeyFromInt(k), row(k))
	}
	min, _ := tr.Min()
	max, _ := tr.Max()
	if min != schema.KeyFromInt(3) || max != schema.KeyFromInt(999) {
		t.Errorf("Min/Max = %d/%d", min.Int(), max.Int())
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Insert(schema.KeyFromInt(int64(i)), row(int64(i)))
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(schema.KeyFromInt(int64(i))) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(schema.KeyFromInt(int64(i)))
		if i%2 == 0 && ok {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("key %d lost", i)
		}
	}
	if tr.Delete(schema.KeyFromInt(0)) {
		t.Error("double delete should report absence")
	}
}

func TestUpdate(t *testing.T) {
	tr := New()
	tr.Insert(schema.KeyFromInt(7), row(1))
	ok := tr.Update(schema.KeyFromInt(7), func(r schema.Row) schema.Row {
		return schema.Row{r[0].(int64) + 100}
	})
	if !ok {
		t.Fatal("Update missed existing key")
	}
	v, _ := tr.Get(schema.KeyFromInt(7))
	if v[0].(int64) != 101 {
		t.Errorf("updated value = %v", v)
	}
	if tr.Update(schema.KeyFromInt(8), func(r schema.Row) schema.Row { return r }) {
		t.Error("Update of absent key should report absence")
	}
}

func TestScanAndAscend(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(schema.KeyFromInt(int64(i)), row(int64(i)))
	}
	var got []int64
	tr.Scan(schema.KeyFromInt(100), schema.KeyFromInt(200), func(k schema.Key, v schema.Row) bool {
		got = append(got, k.Int())
		return true
	})
	if len(got) != 100 {
		t.Fatalf("scan returned %d keys, want 100", len(got))
	}
	for i, k := range got {
		if k != int64(100+i) {
			t.Fatalf("scan out of order at %d: %d", i, k)
		}
	}
	// Early stop.
	count := 0
	tr.Scan(0, ^schema.Key(0), func(schema.Key, schema.Row) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early-stop scan visited %d", count)
	}
	// Ascend covers everything.
	count = 0
	tr.Ascend(func(schema.Key, schema.Row) bool { count++; return true })
	if count != 1000 {
		t.Errorf("Ascend visited %d, want 1000", count)
	}
	if len(tr.Items()) != 1000 {
		t.Errorf("Items returned %d entries", len(tr.Items()))
	}
}

func TestBulkLoad(t *testing.T) {
	items := make([]Item, 100)
	for i := range items {
		items[i] = Item{Key: schema.KeyFromInt(int64(i)), Value: row(int64(i))}
	}
	tr, err := BulkLoad(items)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100 {
		t.Errorf("Len = %d", tr.Len())
	}
	if _, err := BulkLoad([]Item{{Key: 5}, {Key: 5}}); err == nil {
		t.Error("duplicate keys in bulk load should error")
	}
	if _, err := BulkLoad([]Item{{Key: 5}, {Key: 3}}); err == nil {
		t.Error("descending keys in bulk load should error")
	}
	empty, err := BulkLoad(nil)
	if err != nil || empty.Len() != 0 {
		t.Error("empty bulk load should produce an empty tree")
	}
}

func TestTreeMatchesMapProperty(t *testing.T) {
	prop := func(ops []int16) bool {
		tr := New()
		ref := make(map[schema.Key]int64)
		for _, op := range ops {
			k := schema.KeyFromInt(int64(op % 64))
			switch {
			case op%3 == 0:
				tr.Insert(k, row(int64(op)))
				ref[k] = int64(op)
			case op%3 == 1:
				delete(ref, k)
				tr.Delete(k)
			default:
				v, ok := tr.Get(k)
				rv, rok := ref[k]
				if ok != rok {
					return false
				}
				if ok && v[0].(int64) != rv {
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, rv := range ref {
			v, ok := tr.Get(k)
			if !ok || v[0].(int64) != rv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAscendIsSortedProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		tr := New()
		for _, r := range raw {
			tr.Insert(schema.Key(r), row(int64(r)))
		}
		var keys []schema.Key
		tr.Ascend(func(k schema.Key, _ schema.Row) bool {
			keys = append(keys, k)
			return true
		})
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMultiRootedValidation(t *testing.T) {
	if _, err := NewMultiRooted(nil); err == nil {
		t.Error("empty bounds should error")
	}
	if _, err := NewMultiRooted([]schema.Key{5}); err == nil {
		t.Error("first bound must be zero")
	}
	if _, err := NewMultiRooted([]schema.Key{0, 10, 10}); err == nil {
		t.Error("non-ascending bounds should error")
	}
	m, err := NewMultiRooted([]schema.Key{0, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPartitions() != 3 {
		t.Errorf("NumPartitions = %d", m.NumPartitions())
	}
}

func TestUniformBounds(t *testing.T) {
	b := UniformBounds(800, 4)
	if len(b) != 4 || b[0] != 0 {
		t.Fatalf("UniformBounds = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending: %v", b)
		}
	}
	if got := UniformBounds(100, 0); len(got) != 1 {
		t.Errorf("n=0 should clamp to one partition, got %v", got)
	}
	if _, err := NewMultiRooted(UniformBounds(1000000, 80)); err != nil {
		t.Errorf("80-way uniform bounds rejected: %v", err)
	}
}

func TestMultiRootedRouting(t *testing.T) {
	m, err := NewMultiRooted(UniformBounds(1000, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		m.Insert(schema.KeyFromInt(i), row(i))
	}
	if m.Len() != 1000 {
		t.Fatalf("Len = %d", m.Len())
	}
	sizes := m.PartitionSizes()
	if len(sizes) != 4 {
		t.Fatalf("sizes = %v", sizes)
	}
	for i, s := range sizes {
		if s != 250 {
			t.Errorf("partition %d has %d entries, want 250", i, s)
		}
	}
	// Keys route to the right partitions.
	if m.PartitionFor(schema.KeyFromInt(0)) != 0 {
		t.Error("key 0 should be in partition 0")
	}
	if m.PartitionFor(schema.KeyFromInt(999)) != 3 {
		t.Error("key 999 should be in partition 3")
	}
	v, ok := m.Get(schema.KeyFromInt(640))
	if !ok || v[0].(int64) != 640 {
		t.Errorf("Get(640) = %v %v", v, ok)
	}
	if !m.Update(schema.KeyFromInt(640), func(r schema.Row) schema.Row { return row(1) }) {
		t.Error("Update missed")
	}
	if !m.Delete(schema.KeyFromInt(640)) {
		t.Error("Delete missed")
	}
	if _, ok := m.Get(schema.KeyFromInt(640)); ok {
		t.Error("deleted key still present")
	}
	if _, err := m.Partition(0); err != nil {
		t.Error(err)
	}
	if _, err := m.Partition(9); err == nil {
		t.Error("out of range partition should error")
	}
}

func TestMultiRootedScanAcrossPartitions(t *testing.T) {
	m, _ := NewMultiRooted(UniformBounds(100, 4))
	for i := int64(0); i < 100; i++ {
		m.Insert(schema.KeyFromInt(i), row(i))
	}
	var got []int64
	m.Scan(schema.KeyFromInt(20), schema.KeyFromInt(80), func(k schema.Key, _ schema.Row) bool {
		got = append(got, k.Int())
		return true
	})
	if len(got) != 60 {
		t.Fatalf("cross-partition scan returned %d keys, want 60", len(got))
	}
	for i, k := range got {
		if k != int64(20+i) {
			t.Fatalf("scan out of order at %d: %d", i, k)
		}
	}
	// Early stop across partitions.
	count := 0
	m.Scan(0, ^schema.Key(0), func(schema.Key, schema.Row) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestMultiRootedSplitAndMerge(t *testing.T) {
	m, _ := NewMultiRooted([]schema.Key{0})
	for i := int64(0); i < 100; i++ {
		m.Insert(schema.KeyFromInt(i), row(i))
	}
	newIdx, err := m.Split(schema.KeyFromInt(50))
	if err != nil {
		t.Fatal(err)
	}
	if newIdx != 1 || m.NumPartitions() != 2 {
		t.Fatalf("split produced partition %d of %d", newIdx, m.NumPartitions())
	}
	sizes := m.PartitionSizes()
	if sizes[0] != 50 || sizes[1] != 50 {
		t.Errorf("sizes after split = %v", sizes)
	}
	// All keys still reachable.
	for i := int64(0); i < 100; i++ {
		if _, ok := m.Get(schema.KeyFromInt(i)); !ok {
			t.Fatalf("key %d lost after split", i)
		}
	}
	// Splitting at an existing bound fails.
	if _, err := m.Split(schema.KeyFromInt(50)); err == nil {
		t.Error("split at existing bound should error")
	}
	// Merge back.
	if err := m.Merge(0); err != nil {
		t.Fatal(err)
	}
	if m.NumPartitions() != 1 || m.Len() != 100 {
		t.Errorf("after merge: %d partitions, %d entries", m.NumPartitions(), m.Len())
	}
	if err := m.Merge(0); err == nil {
		t.Error("merging the last partition should error")
	}
	if err := m.Merge(-1); err == nil {
		t.Error("negative partition index should error")
	}
}

func TestMultiRootedRepartition(t *testing.T) {
	m, _ := NewMultiRooted(UniformBounds(1000, 8))
	for i := int64(0); i < 1000; i++ {
		m.Insert(schema.KeyFromInt(i), row(i))
	}
	if _, err := m.Repartition(nil); err == nil {
		t.Error("empty bounds should error")
	}
	if _, err := m.Repartition([]schema.Key{0, 5, 5}); err == nil {
		t.Error("non-ascending bounds should error")
	}
	_, err := m.Repartition(UniformBounds(1000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPartitions() != 5 {
		t.Fatalf("NumPartitions = %d, want 5", m.NumPartitions())
	}
	if m.Len() != 1000 {
		t.Fatalf("entries lost during repartition: %d", m.Len())
	}
	for i := int64(0); i < 1000; i += 97 {
		if _, ok := m.Get(schema.KeyFromInt(i)); !ok {
			t.Errorf("key %d lost", i)
		}
	}
	sizes := m.PartitionSizes()
	for i, s := range sizes {
		if s != 200 {
			t.Errorf("partition %d has %d entries, want 200", i, s)
		}
	}
}

func TestMultiRootedSplitPreservesBalanceProperty(t *testing.T) {
	prop := func(splitAtRaw uint16) bool {
		at := int64(splitAtRaw%998) + 1 // 1..998
		m, _ := NewMultiRooted([]schema.Key{0})
		for i := int64(0); i < 1000; i++ {
			m.Insert(schema.KeyFromInt(i), row(i))
		}
		if _, err := m.Split(schema.KeyFromInt(at)); err != nil {
			return false
		}
		sizes := m.PartitionSizes()
		return sizes[0] == int(at) && sizes[1] == int(1000-at) && m.Len() == 1000
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTreeInsert(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(schema.KeyFromInt(int64(i)), row(int64(i)))
	}
}

func BenchmarkTreeGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(schema.KeyFromInt(int64(i)), row(int64(i)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(schema.KeyFromInt(int64(i % n)))
	}
}
