package btree

import (
	"fmt"
	"sort"
	"sync"

	"atrapos/internal/schema"
)

// MultiRooted is the multi-rooted B-tree of PLP and ATraPos: the key space of
// a table is range partitioned and each range owns a private sub-tree root.
// Because every logical partition is accessed by exactly one worker thread,
// sub-tree accesses need no latching across threads; the coarse mutex here
// only protects the partition boundary table, which changes only during
// repartitioning.
type MultiRooted struct {
	mu     sync.RWMutex
	bounds []schema.Key // bounds[i] is the inclusive lower bound of partition i; bounds[0] == 0
	roots  []*Tree
}

// NewMultiRooted builds a multi-rooted tree with the given partition lower
// bounds. The first bound must be 0 (the partition covering the smallest
// keys); bounds must be strictly ascending.
func NewMultiRooted(bounds []schema.Key) (*MultiRooted, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("btree: multi-rooted tree needs at least one partition")
	}
	if bounds[0] != 0 {
		return nil, fmt.Errorf("btree: first partition bound must be 0, got %d", bounds[0])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("btree: partition bounds must be strictly ascending at %d", i)
		}
	}
	m := &MultiRooted{bounds: append([]schema.Key(nil), bounds...)}
	m.roots = make([]*Tree, len(bounds))
	for i := range m.roots {
		m.roots[i] = New()
	}
	return m, nil
}

// UniformBounds computes partition lower bounds that split the integer key
// range [0, maxKey) into n equal ranges, the "naïve" range partitioning that
// assigns one partition per core (Section IV, proof of concept). When the key
// space is smaller than n, fewer partitions are produced so that the bounds
// stay strictly ascending (a two-row table cannot have eighty partitions).
func UniformBounds(maxKey int64, n int) []schema.Key {
	if n < 1 {
		n = 1
	}
	if maxKey > 0 && int64(n) > maxKey {
		n = int(maxKey)
	}
	bounds := make([]schema.Key, 0, n)
	for i := 0; i < n; i++ {
		b := schema.KeyFromInt(maxKey * int64(i) / int64(n))
		if i == 0 {
			b = 0
		}
		if len(bounds) > 0 && b <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, b)
	}
	if len(bounds) == 0 {
		bounds = []schema.Key{0}
	}
	return bounds
}

// NumPartitions returns the number of sub-trees.
func (m *MultiRooted) NumPartitions() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.roots)
}

// Bounds returns a copy of the partition lower bounds.
func (m *MultiRooted) Bounds() []schema.Key {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]schema.Key(nil), m.bounds...)
}

// PartitionFor returns the index of the partition that owns key.
func (m *MultiRooted) PartitionFor(key schema.Key) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.partitionForLocked(key)
}

func (m *MultiRooted) partitionForLocked(key schema.Key) int {
	// The partition is the last bound <= key.
	i := sort.Search(len(m.bounds), func(i int) bool { return m.bounds[i] > key })
	return i - 1
}

// Partition returns the sub-tree of partition i.
func (m *MultiRooted) Partition(i int) (*Tree, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if i < 0 || i >= len(m.roots) {
		return nil, fmt.Errorf("btree: partition %d out of range [0,%d)", i, len(m.roots))
	}
	return m.roots[i], nil
}

// Get returns the row stored under key.
func (m *MultiRooted) Get(key schema.Key) (schema.Row, bool) {
	m.mu.RLock()
	t := m.roots[m.partitionForLocked(key)]
	m.mu.RUnlock()
	return t.Get(key)
}

// Insert stores value under key in the owning partition.
func (m *MultiRooted) Insert(key schema.Key, value schema.Row) bool {
	m.mu.RLock()
	t := m.roots[m.partitionForLocked(key)]
	m.mu.RUnlock()
	return t.Insert(key, value)
}

// Update applies fn to the row under key in the owning partition.
func (m *MultiRooted) Update(key schema.Key, fn func(schema.Row) schema.Row) bool {
	m.mu.RLock()
	t := m.roots[m.partitionForLocked(key)]
	m.mu.RUnlock()
	return t.Update(key, fn)
}

// Delete removes key from its owning partition.
func (m *MultiRooted) Delete(key schema.Key) bool {
	m.mu.RLock()
	t := m.roots[m.partitionForLocked(key)]
	m.mu.RUnlock()
	return t.Delete(key)
}

// Len returns the total number of entries across all partitions.
func (m *MultiRooted) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	total := 0
	for _, t := range m.roots {
		total += t.Len()
	}
	return total
}

// PartitionSizes returns the number of entries in each partition.
func (m *MultiRooted) PartitionSizes() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int, len(m.roots))
	for i, t := range m.roots {
		out[i] = t.Len()
	}
	return out
}

// Scan visits entries with from <= key < to across partition boundaries in
// ascending key order.
func (m *MultiRooted) Scan(from, to schema.Key, fn func(schema.Key, schema.Row) bool) {
	m.mu.RLock()
	start := m.partitionForLocked(from)
	roots := m.roots
	bounds := m.bounds
	m.mu.RUnlock()
	for i := start; i < len(roots); i++ {
		if i > start && bounds[i] >= to {
			return
		}
		stopped := false
		roots[i].Scan(from, to, func(k schema.Key, v schema.Row) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Split divides the partition that owns key `at` into two partitions at key
// `at`: the original partition keeps [lower, at) and a new partition holds
// [at, upper). It returns the index of the new partition. The cost of the
// operation is proportional to the number of entries moved, which is what the
// Figure 9 experiment measures.
func (m *MultiRooted) Split(at schema.Key) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := m.partitionForLocked(at)
	if m.bounds[idx] == at {
		return 0, fmt.Errorf("btree: partition already starts at key %d", at)
	}
	old := m.roots[idx]
	// Move entries >= at into a fresh tree.
	var moved []Item
	old.Scan(at, ^schema.Key(0), func(k schema.Key, v schema.Row) bool {
		moved = append(moved, Item{Key: k, Value: v})
		return true
	})
	right, err := BulkLoad(moved)
	if err != nil {
		return 0, fmt.Errorf("btree: split rebuild: %w", err)
	}
	for _, it := range moved {
		old.Delete(it.Key)
	}
	// Insert the new partition after idx.
	newIdx := idx + 1
	m.bounds = append(m.bounds, 0)
	copy(m.bounds[newIdx+1:], m.bounds[newIdx:])
	m.bounds[newIdx] = at
	m.roots = append(m.roots, nil)
	copy(m.roots[newIdx+1:], m.roots[newIdx:])
	m.roots[newIdx] = right
	return newIdx, nil
}

// Merge combines partition i and partition i+1 into a single partition that
// keeps the lower bound of partition i. It returns an error if i is the last
// partition.
func (m *MultiRooted) Merge(i int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i+1 >= len(m.roots) {
		return fmt.Errorf("btree: cannot merge partition %d of %d", i, len(m.roots))
	}
	left, right := m.roots[i], m.roots[i+1]
	right.Ascend(func(k schema.Key, v schema.Row) bool {
		left.Insert(k, v)
		return true
	})
	m.roots = append(m.roots[:i+1], m.roots[i+2:]...)
	m.bounds = append(m.bounds[:i+1], m.bounds[i+2:]...)
	return nil
}

// Repartition rebuilds the multi-rooted tree around a new set of bounds,
// redistributing every entry. It is the bulk operation behind large
// repartitioning decisions (e.g. adapting from 80 to 70 partitions after a
// socket failure). Returns the number of entries that changed partition.
func (m *MultiRooted) Repartition(newBounds []schema.Key) (moved int, err error) {
	if len(newBounds) == 0 || newBounds[0] != 0 {
		return 0, fmt.Errorf("btree: invalid new bounds")
	}
	for i := 1; i < len(newBounds); i++ {
		if newBounds[i] <= newBounds[i-1] {
			return 0, fmt.Errorf("btree: new bounds must be strictly ascending")
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	oldBounds := m.bounds
	oldRoots := m.roots
	roots := make([]*Tree, len(newBounds))
	for i := range roots {
		roots[i] = New()
	}
	locate := func(key schema.Key) int {
		i := sort.Search(len(newBounds), func(i int) bool { return newBounds[i] > key })
		return i - 1
	}
	for oldIdx, t := range oldRoots {
		t.Ascend(func(k schema.Key, v schema.Row) bool {
			ni := locate(k)
			roots[ni].Insert(k, v)
			// An entry "moved" if its new partition range differs from its old one.
			if oldIdx >= len(newBounds) || newBounds[ni] != oldBounds[oldIdx] {
				moved++
			}
			return true
		})
	}
	m.bounds = append([]schema.Key(nil), newBounds...)
	m.roots = roots
	return moved, nil
}
