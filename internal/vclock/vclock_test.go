package vclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockChargeAndBreakdown(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	c.Charge(Execution, 100)
	c.Charge(Locking, 50)
	c.Charge(Execution, 25)
	c.Charge(Logging, -10) // ignored
	if c.Now() != 175 {
		t.Errorf("Now = %d, want 175", c.Now())
	}
	if c.Component(Execution) != 125 {
		t.Errorf("Execution = %d, want 125", c.Component(Execution))
	}
	if c.Component(Locking) != 50 {
		t.Errorf("Locking = %d, want 50", c.Component(Locking))
	}
	if c.Component(Logging) != 0 {
		t.Errorf("Logging = %d, want 0", c.Component(Logging))
	}
	if c.Component(Component(99)) != 0 {
		t.Error("unknown component should report 0")
	}
	if c.Charges() != 3 {
		t.Errorf("Charges = %d, want 3", c.Charges())
	}
	b := c.Breakdown()
	if b.Total != 175 {
		t.Errorf("breakdown total = %d, want 175", b.Total)
	}
	var sum Nanos
	for _, v := range b.ByComp {
		sum += v
	}
	if sum != 175 {
		t.Errorf("breakdown components sum to %d, want 175", sum)
	}
}

func TestClockAdvanceToAndReset(t *testing.T) {
	c := NewClock()
	c.Charge(Execution, 10)
	c.AdvanceTo(500)
	if c.Now() != 500 {
		t.Errorf("AdvanceTo(500) -> %d", c.Now())
	}
	c.AdvanceTo(100) // backwards is a no-op
	if c.Now() != 500 {
		t.Errorf("AdvanceTo(100) moved the clock backwards to %d", c.Now())
	}
	c.Reset()
	if c.Now() != 0 || c.Charges() != 0 || c.Component(Execution) != 0 {
		t.Error("Reset did not clear the clock")
	}
}

func TestChargeNeverDecreasesProperty(t *testing.T) {
	prop := func(charges []int16) bool {
		c := NewClock()
		prev := Nanos(0)
		for i, raw := range charges {
			c.Charge(Component(i%5), Nanos(raw))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestComponentString(t *testing.T) {
	for _, comp := range Components() {
		if comp.String() == "" {
			t.Errorf("component %d has empty string", comp)
		}
	}
	if Component(99).String() == "" {
		t.Error("unknown component should still produce a string")
	}
	if len(Components()) != 5 {
		t.Errorf("Components() returned %d entries, want 5", len(Components()))
	}
}

func TestNanosConversions(t *testing.T) {
	n := Nanos(1_500_000_000)
	if n.Seconds() != 1.5 {
		t.Errorf("Seconds = %f, want 1.5", n.Seconds())
	}
	if n.Duration() != 1500*time.Millisecond {
		t.Errorf("Duration = %v", n.Duration())
	}
}

func TestMerge(t *testing.T) {
	a := NewClock()
	a.Charge(Execution, 100)
	b := NewClock()
	b.Charge(Execution, 300)
	b.Charge(Locking, 40)
	m := Merge(a, nil, b)
	if m.Total != 340 {
		t.Errorf("merged total = %d, want max worker time 340", m.Total)
	}
	if m.ByComp[Execution] != 400 {
		t.Errorf("merged execution = %d, want 400", m.ByComp[Execution])
	}
	if m.ByComp[Locking] != 40 {
		t.Errorf("merged locking = %d, want 40", m.ByComp[Locking])
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(Nanos(time.Second))
	if s.Window() != Nanos(time.Second) {
		t.Fatalf("window = %d", s.Window())
	}
	if got := s.Samples(); got != nil {
		t.Fatalf("empty series samples = %v, want nil", got)
	}
	// 10 commits in second 0, none in second 1, 20 in second 2.
	s.Record(Nanos(200*time.Millisecond), 10)
	s.Record(Nanos(2500*time.Millisecond), 20)
	s.Record(Nanos(2600*time.Millisecond), 0) // ignored
	samples := s.Samples()
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3 (including the empty window)", len(samples))
	}
	if samples[0].Throughput != 10 {
		t.Errorf("window 0 throughput = %f, want 10", samples[0].Throughput)
	}
	if samples[1].Throughput != 0 {
		t.Errorf("window 1 throughput = %f, want 0", samples[1].Throughput)
	}
	if samples[2].Throughput != 20 {
		t.Errorf("window 2 throughput = %f, want 20", samples[2].Throughput)
	}
	if samples[0].At != Nanos(time.Second) {
		t.Errorf("window 0 ends at %d", samples[0].At)
	}
}

func TestSeriesDefaultWindow(t *testing.T) {
	s := NewSeries(0)
	if s.Window() != Nanos(time.Second) {
		t.Errorf("default window = %v, want 1s", s.Window())
	}
}
