// Package vclock implements the virtual-time accounting used by the engines.
//
// Every worker thread carries a Clock. Data-structure operations and the NUMA
// cost model charge virtual nanoseconds to the clock of the worker that
// performed them, tagged with the component the time was spent in (transaction
// management, execution, communication, locking, logging). The harness derives
// throughput from committed work divided by the maximum per-worker virtual
// time, and regenerates the paper's time-breakdown figure (Fig. 4) from the
// per-component totals.
package vclock

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Nanos is a span of virtual time in nanoseconds.
type Nanos int64

// Duration converts virtual nanoseconds to a time.Duration for display.
func (n Nanos) Duration() time.Duration { return time.Duration(n) }

// Seconds converts virtual nanoseconds to floating-point seconds.
func (n Nanos) Seconds() float64 { return float64(n) / 1e9 }

// Component labels where virtual time was spent. The values mirror the
// categories of the paper's Figure 4 time breakdown.
type Component int

const (
	// Management covers transaction begin/commit/abort bookkeeping.
	Management Component = iota
	// Execution covers the useful work of actions: index probes, record
	// reads and writes.
	Execution
	// Communication covers action routing, rendezvous points and the
	// messages of distributed transactions.
	Communication
	// Locking covers lock-manager and latch work.
	Locking
	// Logging covers log-record creation and log inserts.
	Logging
	numComponents
)

// NumComponents is the number of cost components; fixed-size per-component
// cost arrays are indexed by Component.
const NumComponents = int(numComponents)

// Components lists all cost components in display order.
func Components() []Component {
	return []Component{Management, Execution, Communication, Locking, Logging}
}

// String implements fmt.Stringer.
func (c Component) String() string {
	switch c {
	case Management:
		return "xct management"
	case Execution:
		return "xct execution"
	case Communication:
		return "communication"
	case Locking:
		return "locking"
	case Logging:
		return "logging"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Clock is the virtual clock of one worker thread. It is not safe for
// concurrent use: each worker owns exactly one clock, which is the same
// thread-locality discipline the paper uses for its monitoring structures.
type Clock struct {
	now     Nanos
	byComp  [numComponents]Nanos
	charges int64
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Charge advances the clock by d, attributing the time to component c.
// Negative charges are ignored.
func (c *Clock) Charge(comp Component, d Nanos) {
	if d <= 0 {
		return
	}
	c.now += d
	if comp >= 0 && comp < numComponents {
		c.byComp[comp] += d
	}
	c.charges++
}

// Now returns the worker's current virtual time.
func (c *Clock) Now() Nanos { return c.now }

// AdvanceTo moves the clock forward to at least t. It is used when a worker
// synchronizes with another worker whose virtual time is further ahead (e.g.
// waiting for a rendezvous point or a 2PC vote). Moving backwards is a no-op.
func (c *Clock) AdvanceTo(t Nanos) {
	if t > c.now {
		c.now = t
	}
}

// Charges returns how many individual charges were recorded.
func (c *Clock) Charges() int64 { return c.charges }

// Component returns the time charged to a single component.
func (c *Clock) Component(comp Component) Nanos {
	if comp < 0 || comp >= numComponents {
		return 0
	}
	return c.byComp[comp]
}

// Breakdown is a per-component summary of virtual time.
type Breakdown struct {
	Total  Nanos
	ByComp map[Component]Nanos
}

// Breakdown returns a copy of the clock's per-component totals.
func (c *Clock) Breakdown() Breakdown {
	b := Breakdown{Total: c.now, ByComp: make(map[Component]Nanos, int(numComponents))}
	for comp := Component(0); comp < numComponents; comp++ {
		b.ByComp[comp] = c.byComp[comp]
	}
	return b
}

// Reset returns the clock to virtual time zero and clears the breakdown.
func (c *Clock) Reset() {
	*c = Clock{}
}

// Merge accumulates per-component totals from several clocks (used by the
// harness to produce a system-wide breakdown).
func Merge(clocks ...*Clock) Breakdown {
	out := Breakdown{ByComp: make(map[Component]Nanos, int(numComponents))}
	for _, cl := range clocks {
		if cl == nil {
			continue
		}
		b := cl.Breakdown()
		if b.Total > out.Total {
			out.Total = b.Total
		}
		for comp, v := range b.ByComp {
			out.ByComp[comp] += v
		}
	}
	return out
}

// Sample is one point of a throughput time series.
type Sample struct {
	// At is the end of the sampling window, in virtual time.
	At Nanos
	// Throughput is transactions per (virtual) second during the window.
	Throughput float64
}

// Series collects throughput samples over virtual time. It is safe for
// concurrent use; workers report commits and the series buckets them into
// fixed windows.
type Series struct {
	mu     sync.Mutex
	window Nanos
	counts map[int64]int64
}

// NewSeries creates a Series with the given sampling window (e.g. one virtual second).
func NewSeries(window Nanos) *Series {
	if window <= 0 {
		window = Nanos(time.Second)
	}
	return &Series{window: window, counts: make(map[int64]int64)}
}

// Record adds n committed transactions at virtual time t.
func (s *Series) Record(t Nanos, n int64) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.counts[int64(t)/int64(s.window)] += n
	s.mu.Unlock()
}

// Window returns the sampling window.
func (s *Series) Window() Nanos { return s.window }

// Samples returns the series ordered by time. Windows with no commits are
// included (throughput zero) between the first and last populated window so
// plots show gaps honestly.
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.counts) == 0 {
		return nil
	}
	keys := make([]int64, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	first, last := keys[0], keys[len(keys)-1]
	out := make([]Sample, 0, last-first+1)
	for w := first; w <= last; w++ {
		count := s.counts[w]
		out = append(out, Sample{
			At:         Nanos((w + 1) * int64(s.window)),
			Throughput: float64(count) / s.window.Seconds(),
		})
	}
	return out
}
