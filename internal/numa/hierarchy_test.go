package numa

import (
	"testing"

	"atrapos/internal/topology"
)

// TestFlatProfileCostEquivalence is the cost-model regression gate of the
// hierarchy refactor: on flat machine profiles (one die per socket) every
// core-granular cost function must return exactly what its socket-level
// counterpart returned before the refactor. The socket-level functions are
// additionally pinned to golden pre-refactor values on the paper's topology,
// so a change to either formulation fails loudly.
func TestFlatProfileCostEquivalence(t *testing.T) {
	d := DefaultDomain() // the paper's 8x10 twisted cube, default cost model
	top := d.Top

	// Golden pre-refactor values on the twisted cube: Distance(0,1)=1,
	// Distance(1,2)=2 (two bits apart, not opposite).
	if got := d.AtomicCost(0, 1); got != 60+320 {
		t.Errorf("AtomicCost(0,1) = %d, want 380", got)
	}
	if got := d.AtomicCost(1, 2); got != 60+2*320 {
		t.Errorf("AtomicCost(1,2) = %d, want 700", got)
	}
	if got := d.AccessCost(1, 2); got != 20+2*320 {
		t.Errorf("AccessCost(1,2) = %d, want 660", got)
	}
	if got := d.DRAMCost(1, 2); got != 90+2*60 {
		t.Errorf("DRAMCost(1,2) = %d, want 210", got)
	}
	if got := d.MessageCost(1, 2); got != 350+2*900 {
		t.Errorf("MessageCost(1,2) = %d, want 2150", got)
	}
	if got := d.MessageCost(1, 1); got != 350 {
		t.Errorf("MessageCost(1,1) = %d, want 350", got)
	}
	// SyncPointCost golden value: sockets {0,1,2}, pairwise distances
	// 1 (0-1), 1 (0-2), 2 (1-2) -> avg 4/3; (3-1) * (4/3 * 88 * 2) = 468.
	if got := d.SyncPointCost([]topology.SocketID{0, 1, 2}, 88); got != 468 {
		t.Errorf("SyncPointCost({0,1,2}, 88) = %d, want 468", got)
	}

	// Core-granular equivalence across a spread of core pairs.
	pairs := [][2]topology.CoreID{{0, 0}, {0, 5}, {0, 10}, {3, 27}, {11, 79}, {40, 41}, {79, 0}}
	for _, p := range pairs {
		a, b := p[0], p[1]
		sa, sb := top.SocketOf(a), top.SocketOf(b)
		if got, want := d.CoreAtomicCost(a, b), d.AtomicCost(sa, sb); got != want {
			t.Errorf("CoreAtomicCost(%d,%d) = %d, want socket-level %d", a, b, got, want)
		}
		if got, want := d.CoreAccessCost(a, b), d.AccessCost(sa, sb); got != want {
			t.Errorf("CoreAccessCost(%d,%d) = %d, want socket-level %d", a, b, got, want)
		}
		if got, want := d.CoreMessageCost(a, b), d.MessageCost(sa, sb); got != want {
			t.Errorf("CoreMessageCost(%d,%d) = %d, want socket-level %d", a, b, got, want)
		}
		if got, want := d.CoreDRAMCost(a, sb), d.DRAMCost(sa, sb); got != want {
			t.Errorf("CoreDRAMCost(%d,%d) = %d, want socket-level %d", a, sb, got, want)
		}
	}

	// Sync points: the core-granular formula must equal the socket-level one
	// when every participant list is translated core -> socket.
	coreSets := [][]topology.CoreID{
		{0, 10, 20},
		{0, 1, 2},          // one socket: no rendezvous cost
		{5, 15, 25, 35, 5}, // duplicates collapse
		{0, 79, 40, 12},
	}
	for _, cores := range coreSets {
		socks := make([]topology.SocketID, len(cores))
		for i, c := range cores {
			socks[i] = top.SocketOf(c)
		}
		if got, want := d.SyncPointCostAt(cores, 88), d.SyncPointCost(socks, 88); got != want {
			t.Errorf("SyncPointCostAt(%v) = %d, want socket-level %d", cores, got, want)
		}
	}
}

// TestHierarchicalCostsOrdering checks the sub-NUMA pricing on a chiplet
// machine: same-die < same-socket-cross-die < cross-socket, for transfers,
// messages and DRAM.
func TestHierarchicalCostsOrdering(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 2, CoresPerSocket: 8, DiesPerSocket: 4})
	d := MustNewDomain(top, DefaultCostModel())
	// Cores 0,1 share die 0; core 2 is on die 1 (same socket); core 8 is on
	// socket 1.
	sameDie := d.CoreAtomicCost(0, 1)
	crossDie := d.CoreAtomicCost(0, 2)
	crossSocket := d.CoreAtomicCost(0, 8)
	if !(sameDie < crossDie && crossDie < crossSocket) {
		t.Errorf("atomic costs should order same-die %d < cross-die %d < cross-socket %d", sameDie, crossDie, crossSocket)
	}
	if sameDie != 60 || crossDie != 60+110 || crossSocket != 60+320 {
		t.Errorf("atomic costs = %d, %d, %d; want 60, 170, 380", sameDie, crossDie, crossSocket)
	}
	if got := d.CoreMessageCost(0, 2); got != 350+300 {
		t.Errorf("cross-die message = %d, want 650", got)
	}
	if got := d.CoreMessageCost(0, 8); got != 350+900 {
		t.Errorf("cross-socket message = %d, want 1250", got)
	}
	// DRAM: the controller lives on the socket's first die, so die-0 cores
	// access local memory cheaper than die-1 cores.
	die0 := d.CoreDRAMCost(0, 0)
	die1 := d.CoreDRAMCost(2, 0)
	if !(die0 < die1) {
		t.Errorf("DRAM from the controller die (%d) should undercut other dies (%d)", die0, die1)
	}
	if die1 != 90+25 {
		t.Errorf("cross-die local DRAM = %d, want 115", die1)
	}
	// Sync points: a rendezvous across two dies of one socket is cheaper
	// than the same rendezvous across two sockets.
	intraSocket := d.SyncPointCostAt([]topology.CoreID{0, 2}, 88)
	interSocket := d.SyncPointCostAt([]topology.CoreID{0, 8}, 88)
	if intraSocket == 0 || interSocket == 0 {
		t.Fatal("two-island rendezvous should cost something")
	}
	if intraSocket >= interSocket {
		t.Errorf("intra-socket rendezvous (%d) should undercut inter-socket (%d)", intraSocket, interSocket)
	}
}

// TestSyncPointCostDropsAfterSocketFailure is the satellite regression test:
// failing a participant's socket must shrink the synchronization-point cost,
// because the dead socket no longer takes part in the rendezvous (its
// partitions having been redirected), and the machine-wide average remote
// distance it feeds also excludes it.
func TestSyncPointCostDropsAfterSocketFailure(t *testing.T) {
	// Socket 2 is the distant one: 2 hops from everyone.
	top := topology.MustNew(topology.Config{
		Sockets:        3,
		CoresPerSocket: 2,
		Distance:       [][]int{{0, 1, 2}, {1, 0, 2}, {2, 2, 0}},
	})
	d := MustNewDomain(top, DefaultCostModel())
	participants := []topology.SocketID{0, 1, 2}
	before := d.SyncPointCost(participants, 88)
	// Three sockets, avg distance (1+2+2)/3 -> cost (3-1)*(5/3*88*2) = 586.
	if before != 586 {
		t.Fatalf("pre-failure sync cost = %d, want 586", before)
	}
	if err := top.FailSocket(2); err != nil {
		t.Fatal(err)
	}
	after := d.SyncPointCost(participants, 88)
	if after >= before {
		t.Errorf("sync-point cost should drop after the distant socket fails: before %d, after %d", before, after)
	}
	// Only sockets 0 and 1 remain: (2-1) * (1 * 88 * 2).
	if after != 176 {
		t.Errorf("post-failure sync cost = %d, want 176", after)
	}
	// The core-granular variant agrees (cores 0, 2, 4 live on sockets 0, 1, 2).
	coreAfter := d.SyncPointCostAt([]topology.CoreID{0, 2, 4}, 88)
	if coreAfter != after {
		t.Errorf("core-granular post-failure sync cost = %d, want %d", coreAfter, after)
	}
	// A rendezvous left with one alive participant costs nothing.
	top.FailSocket(1)
	if got := d.SyncPointCost(participants, 88); got != 0 {
		t.Errorf("single-survivor rendezvous should be free, got %d", got)
	}
}
