package numa

import (
	"sync/atomic"

	"atrapos/internal/topology"
)

// CacheLine models the coherence behaviour of one contended cache line, such
// as the head of Shore-MT's lock-free transaction list, a lock-table bucket
// header, or the tail of the log buffer.
//
// Each access records the socket of the accessor and charges the cost of
// transferring ownership from the previous owner's socket. When a single
// socket uses the line, every access is socket-local and cheap; when threads
// on many sockets hammer the same line, ownership ping-pongs across the
// interconnect and the per-access cost grows with the machine's distances.
// This is exactly the effect that makes centralized data structures the
// scalability bottleneck the paper describes in Sections III and IV.
type CacheLine struct {
	owner   atomic.Int64 // last owning socket
	domain  *Domain
	access  atomic.Int64 // total accesses (observability)
	remote  atomic.Int64 // accesses that crossed a socket boundary
	seeded  atomic.Bool
	penalty atomic.Int64 // accumulated cost, virtual ns
	// window tracks the sockets that touched the line recently (a bitmask in
	// the low bits and an access counter in the high bits). Atomic operations
	// on a line contended by several sockets pay a retry term proportional to
	// the number of contending sockets, modeling CAS retries and cache-line
	// ping-pong under contention.
	window atomic.Uint64
}

const contentionWindow = 64

// NewCacheLine returns a cache line that is initially owned by socket home.
func NewCacheLine(d *Domain, home topology.SocketID) *CacheLine {
	cl := &CacheLine{domain: d}
	cl.owner.Store(int64(home))
	cl.seeded.Store(true)
	return cl
}

// Touch performs a plain read/write access from socket s and returns its cost.
func (cl *CacheLine) Touch(s topology.SocketID) Cost {
	return cl.record(s, false)
}

// Atomic performs an atomic (CAS-like) access from socket s and returns its cost.
func (cl *CacheLine) Atomic(s topology.SocketID) Cost {
	return cl.record(s, true)
}

func (cl *CacheLine) record(s topology.SocketID, atomicOp bool) Cost {
	prev := topology.SocketID(cl.owner.Swap(int64(s)))
	var c Cost
	if atomicOp {
		c = cl.domain.AtomicCost(s, prev)
		if n := cl.noteContender(s); n > 1 {
			c += Cost(n-1) * cl.domain.Model.RemoteTransferPerHop
		}
	} else {
		c = cl.domain.AccessCost(s, prev)
	}
	cl.access.Add(1)
	if prev != s {
		cl.remote.Add(1)
	}
	cl.domain.Top.RecordTraffic(s, prev, 64)
	cl.penalty.Add(int64(c))
	return c
}

// noteContender records that socket s touched the line and returns the
// number of distinct sockets seen in the current contention window.
func (cl *CacheLine) noteContender(s topology.SocketID) int {
	bit := uint64(1)
	if s > 0 && int(s) < 48 {
		bit = 1 << uint(s)
	}
	for {
		old := cl.window.Load()
		count := old >> 48
		mask := old & ((1 << 48) - 1)
		var next uint64
		if count >= contentionWindow {
			next = (1 << 48) | bit
		} else {
			next = ((count + 1) << 48) | mask | bit
		}
		if cl.window.CompareAndSwap(old, next) {
			return popcount(next & ((1 << 48) - 1))
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Owner returns the socket that last touched the line.
func (cl *CacheLine) Owner() topology.SocketID {
	return topology.SocketID(cl.owner.Load())
}

// Stats describes the observed behaviour of a cache line.
type Stats struct {
	Accesses       int64
	RemoteMisses   int64
	TotalCost      Cost
	RemoteFraction float64
}

// Stats returns access counters for the line.
func (cl *CacheLine) Stats() Stats {
	acc := cl.access.Load()
	rem := cl.remote.Load()
	st := Stats{
		Accesses:     acc,
		RemoteMisses: rem,
		TotalCost:    Cost(cl.penalty.Load()),
	}
	if acc > 0 {
		st.RemoteFraction = float64(rem) / float64(acc)
	}
	return st
}

// Striped is a set of per-socket cache lines. NUMA-aware data structures use
// one stripe per socket so the critical path only ever touches the local
// stripe; background operations may touch all stripes.
type Striped struct {
	lines []*CacheLine
}

// NewStriped builds one cache line per socket, each homed on its socket.
func NewStriped(d *Domain) *Striped {
	s := &Striped{lines: make([]*CacheLine, d.Top.Sockets())}
	for i := range s.lines {
		s.lines[i] = NewCacheLine(d, topology.SocketID(i))
	}
	return s
}

// Local returns the stripe for socket s. Out-of-range sockets map to stripe 0
// so that callers with a failed or unknown socket still make progress.
func (s *Striped) Local(sock topology.SocketID) *CacheLine {
	if int(sock) < 0 || int(sock) >= len(s.lines) {
		return s.lines[0]
	}
	return s.lines[sock]
}

// All returns every stripe, for background traversals.
func (s *Striped) All() []*CacheLine { return s.lines }
