package numa

import (
	"sync"
	"testing"
	"testing/quick"

	"atrapos/internal/topology"
)

func testDomain(t *testing.T, sockets, cores int) *Domain {
	t.Helper()
	top := topology.MustNew(topology.Config{Sockets: sockets, CoresPerSocket: cores})
	return MustNewDomain(top, DefaultCostModel())
}

func TestCostModelValidate(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatalf("default cost model invalid: %v", err)
	}
	bad := DefaultCostModel()
	bad.LocalAccess = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero LocalAccess should be invalid")
	}
	bad = DefaultCostModel()
	bad.RemoteTransferPerHop = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative RemoteTransferPerHop should be invalid")
	}
}

func TestNewDomainValidation(t *testing.T) {
	if _, err := NewDomain(nil, DefaultCostModel()); err == nil {
		t.Error("nil topology should error")
	}
	bad := DefaultCostModel()
	bad.LocalAtomic = 0
	if _, err := NewDomain(topology.Small(), bad); err == nil {
		t.Error("invalid cost model should error")
	}
	if d := DefaultDomain(); d.Top.Sockets() != 8 {
		t.Errorf("DefaultDomain has %d sockets, want 8", d.Top.Sockets())
	}
}

func TestCostsGrowWithDistance(t *testing.T) {
	d := testDomain(t, 8, 2)
	local := d.AtomicCost(0, 0)
	remote := d.AtomicCost(0, 7)
	if local >= remote {
		t.Errorf("local atomic %d should be cheaper than remote %d", local, remote)
	}
	if d.AccessCost(1, 1) >= d.AccessCost(1, 6) {
		t.Error("remote access should cost more than local access")
	}
	if d.DRAMCost(2, 2) >= d.DRAMCost(2, 5) {
		t.Error("remote DRAM should cost more than local DRAM")
	}
	if d.MessageCost(3, 3) >= d.MessageCost(3, 4) {
		t.Error("cross-socket message should cost more than local message")
	}
}

func TestSyncPointCost(t *testing.T) {
	d := testDomain(t, 8, 2)
	if c := d.SyncPointCost(nil, 100); c != 0 {
		t.Errorf("empty sync point cost = %d, want 0", c)
	}
	if c := d.SyncPointCost([]topology.SocketID{3, 3, 3}, 100); c != 0 {
		t.Errorf("single-socket sync point cost = %d, want 0", c)
	}
	two := d.SyncPointCost([]topology.SocketID{0, 4}, 100)
	if two <= 0 {
		t.Errorf("two-socket sync point cost = %d, want > 0", two)
	}
	four := d.SyncPointCost([]topology.SocketID{0, 2, 4, 6}, 100)
	if four <= two {
		t.Errorf("four-socket cost %d should exceed two-socket cost %d", four, two)
	}
	zeroBytes := d.SyncPointCost([]topology.SocketID{0, 4}, 0)
	if zeroBytes != 0 {
		t.Errorf("zero-byte sync point cost = %d, want 0", zeroBytes)
	}
}

func TestCacheLineOwnershipMigration(t *testing.T) {
	d := testDomain(t, 4, 2)
	cl := NewCacheLine(d, 0)
	if cl.Owner() != 0 {
		t.Fatalf("initial owner = %d, want 0", cl.Owner())
	}
	// Repeated access from the home socket stays cheap.
	c1 := cl.Atomic(0)
	c2 := cl.Atomic(0)
	if c1 != c2 || c1 != d.Model.LocalAtomic {
		t.Errorf("local atomics cost %d then %d, want %d", c1, c2, d.Model.LocalAtomic)
	}
	// An access from a remote socket pays the transfer and steals ownership.
	c3 := cl.Atomic(2)
	if c3 <= d.Model.LocalAtomic {
		t.Errorf("remote atomic cost %d, want > local %d", c3, d.Model.LocalAtomic)
	}
	if cl.Owner() != 2 {
		t.Errorf("owner after remote access = %d, want 2", cl.Owner())
	}
	// The original socket now pays to take the line back.
	c4 := cl.Atomic(0)
	if c4 <= d.Model.LocalAtomic {
		t.Errorf("bounce-back atomic cost %d, want > local", c4)
	}
	st := cl.Stats()
	if st.Accesses != 4 || st.RemoteMisses != 2 {
		t.Errorf("stats = %+v, want 4 accesses / 2 remote", st)
	}
	if st.RemoteFraction <= 0 || st.RemoteFraction >= 1 {
		t.Errorf("remote fraction = %f, want in (0,1)", st.RemoteFraction)
	}
	if st.TotalCost != Cost(int64(c1)+int64(c2)+int64(c3)+int64(c4)) {
		t.Errorf("total cost %d does not match sum of accesses", st.TotalCost)
	}
}

func TestCacheLineTouchVsAtomic(t *testing.T) {
	d := testDomain(t, 2, 1)
	cl := NewCacheLine(d, 0)
	if cl.Touch(0) != d.Model.LocalAccess {
		t.Error("local touch should cost LocalAccess")
	}
	if cl.Atomic(0) != d.Model.LocalAtomic {
		t.Error("local atomic should cost LocalAtomic")
	}
}

func TestCacheLineConcurrentAccessIsSafe(t *testing.T) {
	d := testDomain(t, 4, 4)
	cl := NewCacheLine(d, 0)
	var wg sync.WaitGroup
	const perSocket = 200
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(sock topology.SocketID) {
			defer wg.Done()
			for i := 0; i < perSocket; i++ {
				cl.Atomic(sock)
			}
		}(topology.SocketID(s))
	}
	wg.Wait()
	st := cl.Stats()
	if st.Accesses != 4*perSocket {
		t.Errorf("accesses = %d, want %d", st.Accesses, 4*perSocket)
	}
	if st.TotalCost <= 0 {
		t.Error("total cost should be positive")
	}
}

func TestMoreSocketsMakeSharedLineMoreExpensive(t *testing.T) {
	// Average per-access cost of a line hammered by 1 socket vs 8 sockets.
	avgCost := func(sockets int) float64 {
		top := topology.MustNew(topology.Config{Sockets: 8, CoresPerSocket: 1})
		d := MustNewDomain(top, DefaultCostModel())
		cl := NewCacheLine(d, 0)
		var total Cost
		const rounds = 400
		for i := 0; i < rounds; i++ {
			total += cl.Atomic(topology.SocketID(i % sockets))
		}
		return float64(total) / rounds
	}
	one := avgCost(1)
	eight := avgCost(8)
	if eight <= one*2 {
		t.Errorf("8-socket contention avg %.1f should be much larger than single-socket %.1f", eight, one)
	}
}

func TestStriped(t *testing.T) {
	d := testDomain(t, 4, 2)
	s := NewStriped(d)
	if len(s.All()) != 4 {
		t.Fatalf("striped has %d stripes, want 4", len(s.All()))
	}
	// Local stripes keep accesses socket-local and therefore cheap.
	for sock := 0; sock < 4; sock++ {
		c := s.Local(topology.SocketID(sock)).Atomic(topology.SocketID(sock))
		if c != d.Model.LocalAtomic {
			t.Errorf("stripe %d local atomic cost %d, want %d", sock, c, d.Model.LocalAtomic)
		}
	}
	if s.Local(topology.SocketID(-3)) != s.All()[0] {
		t.Error("out-of-range socket should map to stripe 0")
	}
}

func TestCentralVsPartitionedStateLock(t *testing.T) {
	d := testDomain(t, 8, 1)
	central := NewCentralRWLock(d)
	parted := NewPartitionedRWLock(d)

	costOf := func(l StateLock) Cost {
		var total Cost
		for i := 0; i < 200; i++ {
			s := topology.SocketID(i % 8)
			total += l.RLock(s)
			total += l.RUnlock(s)
		}
		return total
	}
	centralCost := costOf(central)
	partedCost := costOf(parted)
	if partedCost*2 >= centralCost {
		t.Errorf("partitioned read lock cost %d should be well below centralized %d", partedCost, centralCost)
	}
}

func TestPartitionedWriteLockExcludesAllReaders(t *testing.T) {
	d := testDomain(t, 4, 1)
	l := NewPartitionedRWLock(d)
	c := l.Lock(0)
	if c <= 0 {
		t.Error("write lock should have positive cost")
	}
	done := make(chan struct{})
	go func() {
		l.RLock(3)
		l.RUnlock(3)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("reader on socket 3 acquired the lock while writer holds it")
	default:
	}
	l.Unlock(0)
	<-done
}

func TestCentralRWLockWriteCycle(t *testing.T) {
	d := testDomain(t, 2, 1)
	l := NewCentralRWLock(d)
	if c := l.Lock(1); c <= 0 {
		t.Error("write lock cost should be positive")
	}
	if c := l.Unlock(1); c <= 0 {
		t.Error("unlock cost should be positive")
	}
	if c := l.RLock(0); c <= 0 {
		t.Error("read lock cost should be positive")
	}
	l.RUnlock(0)
}

func TestPartitionedRWLockUnknownSocket(t *testing.T) {
	d := testDomain(t, 2, 1)
	l := NewPartitionedRWLock(d)
	// Unknown sockets fall back to stripe 0 rather than panicking.
	l.RLock(topology.SocketID(42))
	l.RUnlock(topology.SocketID(42))
}

func TestAllocPolicyString(t *testing.T) {
	if AllocLocal.String() != "local" || AllocCentral.String() != "central" || AllocRemote.String() != "remote" {
		t.Error("unexpected AllocPolicy string values")
	}
	if AllocPolicy(42).String() == "" {
		t.Error("unknown policy should still produce a string")
	}
	for _, s := range []string{"local", "central", "remote"} {
		p, err := ParseAllocPolicy(s)
		if err != nil {
			t.Errorf("ParseAllocPolicy(%q) error: %v", s, err)
		}
		if p.String() != s {
			t.Errorf("round trip %q -> %v", s, p)
		}
	}
	if _, err := ParseAllocPolicy("bogus"); err == nil {
		t.Error("bogus policy should not parse")
	}
}

func TestPlacementPolicies(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 8, CoresPerSocket: 1})

	local, err := NewPlacement(top, AllocLocal, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if local.NodeFor(topology.SocketID(s)) != topology.SocketID(s) {
			t.Errorf("local placement for socket %d is %d", s, local.NodeFor(topology.SocketID(s)))
		}
	}

	central, err := NewPlacement(top, AllocCentral, 7)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if central.NodeFor(topology.SocketID(s)) != 7 {
			t.Errorf("central placement for socket %d is %d, want 7", s, central.NodeFor(topology.SocketID(s)))
		}
	}
	if central.Policy() != AllocCentral {
		t.Error("policy accessor mismatch")
	}

	remote, err := NewPlacement(top, AllocRemote, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if remote.NodeFor(topology.SocketID(s)) == topology.SocketID(s) {
			t.Errorf("remote placement for socket %d landed on itself", s)
		}
	}

	if _, err := NewPlacement(top, AllocCentral, 99); err == nil {
		t.Error("central node out of range should error")
	}
	if _, err := NewPlacement(top, AllocPolicy(9), 0); err == nil {
		t.Error("unknown policy should error")
	}
	if n := local.NodeFor(topology.SocketID(-1)); n != 0 {
		t.Errorf("NodeFor(-1) = %d, want fallback 0", n)
	}
}

func TestPlacementRemoteNeverLocalProperty(t *testing.T) {
	prop := func(nRaw uint8) bool {
		n := int(nRaw%10) + 2 // 2..11 sockets
		top := topology.MustNew(topology.Config{Sockets: n, CoresPerSocket: 1})
		p, err := NewPlacement(top, AllocRemote, 0)
		if err != nil {
			return false
		}
		for s := 0; s < n; s++ {
			if p.NodeFor(topology.SocketID(s)) == topology.SocketID(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRowWorkAtScalesWithCoreSpeed(t *testing.T) {
	top := topology.MustNew(topology.Config{
		Sockets: 1, CoresPerSocket: 2,
		CoreSpeeds: []float64{1, 0.5},
	})
	d := MustNewDomain(top, DefaultCostModel())
	if got := d.RowWorkAt(0); got != d.Model.RowWork {
		t.Errorf("P-core row work %d, want %d", got, d.Model.RowWork)
	}
	if got := d.RowWorkAt(1); got != 2*d.Model.RowWork {
		t.Errorf("E-core at half speed pays %d, want %d", got, 2*d.Model.RowWork)
	}
	if got := d.RowWorkAt(topology.CoreID(99)); got != d.Model.RowWork {
		t.Errorf("unknown core pays %d, want the base %d", got, d.Model.RowWork)
	}
}
