package numa

import (
	"sync"

	"atrapos/internal/topology"
)

// StateLock is the interface of the read/write locks that protect global
// system state (the volume lock, the checkpoint mutex, ...). Transactions
// acquire them in read mode in the critical path; background operations
// (checkpointing, page cleaning) acquire them in write mode.
//
// Both implementations do the real synchronization with sync.RWMutex and
// additionally return the virtual cost of the acquisition so the caller can
// charge it to its worker clock.
type StateLock interface {
	// RLock acquires the lock in read mode on behalf of a thread running on
	// socket s and returns the virtual cost of doing so.
	RLock(s topology.SocketID) Cost
	// RUnlock releases a read acquisition made from socket s.
	RUnlock(s topology.SocketID) Cost
	// Lock acquires the lock in write mode (background operations only).
	Lock(s topology.SocketID) Cost
	// Unlock releases a write acquisition.
	Unlock(s topology.SocketID) Cost
}

// CentralRWLock is the traditional centralized reader/writer lock: one lock,
// one cache line, shared by every thread in the system. Read acquisitions
// from different sockets bounce the line across the interconnect.
type CentralRWLock struct {
	mu   sync.RWMutex
	line *CacheLine
}

// NewCentralRWLock builds a centralized state lock homed on socket 0.
func NewCentralRWLock(d *Domain) *CentralRWLock {
	return &CentralRWLock{line: NewCacheLine(d, 0)}
}

// RLock implements StateLock.
func (l *CentralRWLock) RLock(s topology.SocketID) Cost {
	c := l.line.Atomic(s)
	l.mu.RLock()
	return c
}

// RUnlock implements StateLock.
func (l *CentralRWLock) RUnlock(s topology.SocketID) Cost {
	l.mu.RUnlock()
	return l.line.Atomic(s)
}

// Lock implements StateLock.
func (l *CentralRWLock) Lock(s topology.SocketID) Cost {
	c := l.line.Atomic(s)
	l.mu.Lock()
	return c
}

// Unlock implements StateLock.
func (l *CentralRWLock) Unlock(s topology.SocketID) Cost {
	l.mu.Unlock()
	return l.line.Atomic(s)
}

// PartitionedRWLock is the NUMA-aware state lock of Section IV: one
// reader/writer lock per socket. Readers only ever touch their socket-local
// lock; writers must acquire every per-socket lock, which is acceptable
// because write acquisitions never happen in the critical path.
type PartitionedRWLock struct {
	domain *Domain
	locks  []sync.RWMutex
	lines  []*CacheLine
}

// NewPartitionedRWLock builds one reader/writer lock per socket.
func NewPartitionedRWLock(d *Domain) *PartitionedRWLock {
	n := d.Top.Sockets()
	p := &PartitionedRWLock{
		domain: d,
		locks:  make([]sync.RWMutex, n),
		lines:  make([]*CacheLine, n),
	}
	for i := range p.lines {
		p.lines[i] = NewCacheLine(d, topology.SocketID(i))
	}
	return p
}

func (l *PartitionedRWLock) stripe(s topology.SocketID) int {
	if int(s) < 0 || int(s) >= len(l.locks) {
		return 0
	}
	return int(s)
}

// RLock implements StateLock: readers acquire only the socket-local stripe.
func (l *PartitionedRWLock) RLock(s topology.SocketID) Cost {
	i := l.stripe(s)
	c := l.lines[i].Atomic(s)
	l.locks[i].RLock()
	return c
}

// RUnlock implements StateLock.
func (l *PartitionedRWLock) RUnlock(s topology.SocketID) Cost {
	i := l.stripe(s)
	l.locks[i].RUnlock()
	return l.lines[i].Atomic(s)
}

// Lock implements StateLock: writers grab every per-socket stripe, in order,
// to exclude all readers on all sockets.
func (l *PartitionedRWLock) Lock(s topology.SocketID) Cost {
	var c Cost
	for i := range l.locks {
		c += l.lines[i].Atomic(s)
		l.locks[i].Lock()
	}
	return c
}

// Unlock implements StateLock.
func (l *PartitionedRWLock) Unlock(s topology.SocketID) Cost {
	var c Cost
	for i := len(l.locks) - 1; i >= 0; i-- {
		l.locks[i].Unlock()
		c += l.lines[i].Atomic(s)
	}
	return c
}
