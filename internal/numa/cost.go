// Package numa provides the NUMA cost primitives that the rest of the system
// uses to model non-uniform memory access on hardware Islands: a configurable
// cost model, a cache-line ownership model that makes accesses to shared
// mutable state more expensive the more sockets touch it, NUMA-aware
// (per-socket) reader/writer locks, and memory-allocation placement policies.
//
// Everything in this package accounts cost in virtual nanoseconds; it never
// sleeps. Engines charge the returned costs to per-worker virtual clocks.
package numa

import (
	"fmt"

	"atrapos/internal/topology"
)

// Cost is a duration expressed in virtual nanoseconds.
type Cost int64

// CostModel holds the base latencies used to convert topology distances into
// virtual time. The defaults are calibrated to the published latencies of
// Westmere-EX class machines: an L3 hit around 20 ns, a local atomic
// operation in the tens of nanoseconds, and a cache line transfer over one
// QPI hop in the low hundreds of nanoseconds.
type CostModel struct {
	// LocalAccess is the cost of reading or writing data that is already in
	// a socket-local cache.
	LocalAccess Cost
	// LocalAtomic is the cost of an atomic operation (CAS, fetch-and-add) on
	// a cache line owned by the local socket.
	LocalAtomic Cost
	// RemoteTransferPerHop is the additional cost of pulling a cache line
	// from a socket that is one interconnect hop away. Multi-hop transfers
	// scale linearly with the hop count.
	RemoteTransferPerHop Cost
	// DieTransferPerHop is the additional cost of pulling a cache line from
	// another die of the same socket (CCX-to-CCX, cluster-to-cluster). It is
	// the sub-NUMA analogue of RemoteTransferPerHop and much cheaper: the
	// transfer stays on the package. Flat machines (one die per socket) never
	// incur it.
	DieTransferPerHop Cost
	// LocalDRAM is the cost of a miss to the local memory node.
	LocalDRAM Cost
	// RemoteDRAMPerHop is the additional DRAM access cost per interconnect hop.
	RemoteDRAMPerHop Cost
	// DieDRAMPerHop is the additional DRAM access cost per intra-socket die
	// hop: on chiplet CPUs every memory access from a compute die crosses the
	// package fabric to the die hosting the memory controller. Flat machines
	// never incur it.
	DieDRAMPerHop Cost
	// MessagePerHop is the cost of a shared-memory message between instances
	// whose receiving thread is one hop away (used by the distributed
	// transaction layer of shared-nothing configurations).
	MessagePerHop Cost
	// DieMessagePerHop is the additional cost of a shared-memory message to a
	// thread on another die of the same socket, per die hop.
	DieMessagePerHop Cost
	// MessageLocal is the cost of a shared-memory message delivered within a socket.
	MessageLocal Cost
	// ByteTransferPerHop is the per-byte cost of moving payload data between
	// sockets at a synchronization point.
	ByteTransferPerHop Cost
	// DieByteTransferPerHop is the per-byte cost of moving payload data
	// between dies of the same socket at a synchronization point.
	DieByteTransferPerHop Cost
	// RowWork is the CPU cost of processing one row inside an action
	// (instruction execution, predicate evaluation, tuple copy), independent
	// of where the row's memory lives. OLTP row processing dominates the raw
	// memory latency, which is why the paper measures only single-digit
	// percentage effects from remote memory placement (Table I).
	RowWork Cost
}

// DefaultCostModel returns the cost model used throughout the evaluation.
// The die-level constants are calibrated to published chiplet latencies
// (cross-CCX cache transfers land between an L3 hit and a one-hop QPI
// transfer; messages and payload bytes scale likewise). On flat machine
// profiles no core pair spans dies within a socket, so none of the die-level
// terms is ever charged and the model reproduces the pre-hierarchy numbers
// exactly.
func DefaultCostModel() CostModel {
	return CostModel{
		LocalAccess:           20,
		LocalAtomic:           60,
		RemoteTransferPerHop:  320,
		DieTransferPerHop:     110,
		LocalDRAM:             90,
		RemoteDRAMPerHop:      60,
		DieDRAMPerHop:         25,
		MessagePerHop:         900,
		DieMessagePerHop:      300,
		MessageLocal:          350,
		ByteTransferPerHop:    2,
		DieByteTransferPerHop: 1,
		RowWork:               9000,
	}
}

// Calibrated returns a copy of the model with the compute/memory term group
// scaled by work and the messaging/coordination term group scaled by comm.
// The factors come from an executed-vs-priced calibration pass (core package):
// work corrects how the model prices row work, cache-line and DRAM traffic;
// comm corrects inter-instance messages and payload movement. Factors of 1
// return the model unchanged; scaling rounds to the nearest virtual
// nanosecond and never drops a positive cost to zero (Validate requires the
// local terms positive).
func (m CostModel) Calibrated(work, comm float64) CostModel {
	scale := func(c Cost, f float64) Cost {
		if f == 1 || c == 0 {
			return c
		}
		s := Cost(float64(c)*f + 0.5)
		if s < 1 && c > 0 {
			s = 1
		}
		return s
	}
	out := m
	out.LocalAccess = scale(m.LocalAccess, work)
	out.LocalAtomic = scale(m.LocalAtomic, work)
	out.RemoteTransferPerHop = scale(m.RemoteTransferPerHop, work)
	out.DieTransferPerHop = scale(m.DieTransferPerHop, work)
	out.LocalDRAM = scale(m.LocalDRAM, work)
	out.RemoteDRAMPerHop = scale(m.RemoteDRAMPerHop, work)
	out.DieDRAMPerHop = scale(m.DieDRAMPerHop, work)
	out.RowWork = scale(m.RowWork, work)
	out.MessagePerHop = scale(m.MessagePerHop, comm)
	out.DieMessagePerHop = scale(m.DieMessagePerHop, comm)
	out.MessageLocal = scale(m.MessageLocal, comm)
	out.ByteTransferPerHop = scale(m.ByteTransferPerHop, comm)
	out.DieByteTransferPerHop = scale(m.DieByteTransferPerHop, comm)
	return out
}

// Validate reports whether the cost model is usable.
func (m CostModel) Validate() error {
	if m.LocalAccess <= 0 || m.LocalAtomic <= 0 || m.LocalDRAM <= 0 {
		return fmt.Errorf("numa: local costs must be positive: %+v", m)
	}
	if m.RemoteTransferPerHop < 0 || m.RemoteDRAMPerHop < 0 || m.MessagePerHop < 0 ||
		m.MessageLocal < 0 || m.ByteTransferPerHop < 0 || m.RowWork < 0 ||
		m.DieTransferPerHop < 0 || m.DieDRAMPerHop < 0 || m.DieMessagePerHop < 0 ||
		m.DieByteTransferPerHop < 0 {
		return fmt.Errorf("numa: costs must be non-negative: %+v", m)
	}
	return nil
}

// Domain couples a topology with a cost model. It is the object the engines
// consult for every cost decision.
type Domain struct {
	Top   *topology.Topology
	Model CostModel
}

// NewDomain builds a Domain, validating the cost model.
func NewDomain(top *topology.Topology, model CostModel) (*Domain, error) {
	if top == nil {
		return nil, fmt.Errorf("numa: nil topology")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Domain{Top: top, Model: model}, nil
}

// MustNewDomain is like NewDomain but panics on error.
func MustNewDomain(top *topology.Topology, model CostModel) *Domain {
	d, err := NewDomain(top, model)
	if err != nil {
		panic(err)
	}
	return d
}

// DefaultDomain returns a Domain over the paper's 8x10 topology with the
// default cost model.
func DefaultDomain() *Domain {
	return MustNewDomain(topology.Default(), DefaultCostModel())
}

// AtomicCost returns the cost of an atomic operation issued by a thread on
// socket `from` against a cache line last owned by socket `owner`.
func (d *Domain) AtomicCost(from, owner topology.SocketID) Cost {
	c := d.Model.LocalAtomic
	if from != owner {
		c += Cost(d.Top.Distance(from, owner)) * d.Model.RemoteTransferPerHop
	}
	return c
}

// AccessCost returns the cost of a plain read/write of shared data that
// currently lives in the cache of socket `owner`.
func (d *Domain) AccessCost(from, owner topology.SocketID) Cost {
	c := d.Model.LocalAccess
	if from != owner {
		c += Cost(d.Top.Distance(from, owner)) * d.Model.RemoteTransferPerHop
	}
	return c
}

// DRAMCost returns the cost of a memory access from socket `from` to a page
// allocated on memory node `node`.
func (d *Domain) DRAMCost(from, node topology.SocketID) Cost {
	c := d.Model.LocalDRAM
	if from != node {
		c += Cost(d.Top.Distance(from, node)) * d.Model.RemoteDRAMPerHop
	}
	return c
}

// MessageCost returns the cost of delivering one message from a thread on
// socket `from` to a thread on socket `to` over shared memory channels.
func (d *Domain) MessageCost(from, to topology.SocketID) Cost {
	if from == to {
		return d.Model.MessageLocal
	}
	return d.Model.MessageLocal + Cost(d.Top.Distance(from, to))*d.Model.MessagePerHop
}

// --- Core-granular (hierarchical) costs ---
//
// The Core* variants price communication with the full island hierarchy:
// pairs that span sockets pay socket hops exactly like the socket-level
// functions above, while pairs that span dies of one socket pay the (much
// cheaper) die-level constants. On flat machines every same-socket pair
// shares a die, so each Core* function returns exactly what its socket-level
// counterpart returns — the equivalence the flat-profile regression tests
// assert.

// CoreAtomicCost returns the cost of an atomic operation issued by a thread
// on core `from` against a cache line last owned by core `owner`.
func (d *Domain) CoreAtomicCost(from, owner topology.CoreID) Cost {
	sockHops, dieHops := d.Top.CorePath(from, owner)
	return d.Model.LocalAtomic +
		Cost(sockHops)*d.Model.RemoteTransferPerHop +
		Cost(dieHops)*d.Model.DieTransferPerHop
}

// CoreAccessCost returns the cost of a plain read/write of shared data that
// currently lives in the cache of core `owner`.
func (d *Domain) CoreAccessCost(from, owner topology.CoreID) Cost {
	sockHops, dieHops := d.Top.CorePath(from, owner)
	return d.Model.LocalAccess +
		Cost(sockHops)*d.Model.RemoteTransferPerHop +
		Cost(dieHops)*d.Model.DieTransferPerHop
}

// CoreMessageCost returns the cost of delivering one message from a thread on
// core `from` to a thread on core `to` over shared memory channels.
func (d *Domain) CoreMessageCost(from, to topology.CoreID) Cost {
	sockHops, dieHops := d.Top.CorePath(from, to)
	return d.Model.MessageLocal +
		Cost(sockHops)*d.Model.MessagePerHop +
		Cost(dieHops)*d.Model.DieMessagePerHop
}

// RowWorkAt returns the per-row CPU cost as executed by core `from`: the
// model's RowWork divided by the core's relative speed, so efficiency cores
// (speed < 1) take proportionally longer for the same row. On machines with
// uniform full-speed cores it returns Model.RowWork exactly.
func (d *Domain) RowWorkAt(from topology.CoreID) Cost {
	speed := d.Top.SpeedOf(from)
	if speed == 1 {
		return d.Model.RowWork
	}
	return Cost(float64(d.Model.RowWork) / speed)
}

// CoreDRAMCost returns the cost of a memory access from core `from` to a page
// allocated on memory node `node`. On hierarchical machines a socket's memory
// controller is modeled as living on its first die (the IO-die layout of
// chiplet CPUs), so even socket-local accesses from other dies pay die hops.
func (d *Domain) CoreDRAMCost(from topology.CoreID, node topology.SocketID) Cost {
	fromSock := d.Top.SocketOf(from)
	c := d.DRAMCost(fromSock, node)
	if fromSock == node && d.Top.Hierarchical() {
		ctrl := d.Top.FirstDieOn(node)
		c += Cost(d.Top.DieHops(d.Top.DieOf(from), ctrl)) * d.Model.DieDRAMPerHop
	}
	return c
}

// SyncPointCost implements the paper's synchronization-point formula
// C(s) = (nsocket(s)-1) * Distance(s) * Size(s), where Distance(s) is the
// average pairwise distance between the participating sockets (the same
// average AvgRemoteDistance computes machine-wide) and Size(s) the number of
// bytes exchanged. Participants on failed sockets are excluded, consistent
// with AvgRemoteDistance: a dead socket cannot take part in a rendezvous, its
// partitions having been redirected elsewhere, so the remaining participants
// only pay for the exchange among themselves.
//
// It runs on the transaction hot path, so duplicates are skipped with linear
// scans over the (short, bounded by the socket count) participant list
// instead of building a set: the function performs no heap allocations.
func (d *Domain) SyncPointCost(sockets []topology.SocketID, bytes int) Cost {
	n := 0
	sum, pairs := 0, 0
	for i := range sockets {
		if !d.Top.Alive(sockets[i]) || !firstOccurrence(sockets, i) {
			continue
		}
		for j := 0; j < i; j++ {
			if !d.Top.Alive(sockets[j]) || !firstOccurrence(sockets, j) {
				continue
			}
			sum += d.Top.Distance(sockets[i], sockets[j])
			pairs++
		}
		n++
	}
	if n <= 1 || pairs == 0 {
		return 0
	}
	dist := float64(sum) / float64(pairs)
	return Cost(n-1) * Cost(dist*float64(bytes)*float64(d.Model.ByteTransferPerHop))
}

// SyncPointCostAt is the hierarchical generalization of SyncPointCost: the
// participants are the executing cores, islands are counted at the die level
// (the finest level at which data actually moves between caches), and each
// pair of participating islands is priced on its own axis — socket hops at
// ByteTransferPerHop for pairs spanning sockets, die hops at the cheaper
// DieByteTransferPerHop for pairs inside one socket. On flat machines every
// die is a socket and the formula reduces to SyncPointCost exactly.
//
// Like SyncPointCost it runs on the transaction hot path: duplicates (cores
// on an already-counted die) and cores on failed sockets are skipped with
// linear scans, and the function performs no heap allocations.
func (d *Domain) SyncPointCostAt(cores []topology.CoreID, bytes int) Cost {
	top := d.Top
	n := 0
	pairs := 0
	var sum float64
	for i := range cores {
		di := top.DieOf(cores[i])
		if di == topology.InvalidDie || !top.Alive(top.SocketOf(cores[i])) || !firstDie(top, cores, i) {
			continue
		}
		for j := 0; j < i; j++ {
			dj := top.DieOf(cores[j])
			if dj == topology.InvalidDie || !top.Alive(top.SocketOf(cores[j])) || !firstDie(top, cores, j) {
				continue
			}
			sockHops, dieHops := top.CorePath(cores[i], cores[j])
			sum += float64(sockHops)*float64(d.Model.ByteTransferPerHop) +
				float64(dieHops)*float64(d.Model.DieByteTransferPerHop)
			pairs++
		}
		n++
	}
	if n <= 1 || pairs == 0 {
		return 0
	}
	return Cost(n-1) * Cost(sum/float64(pairs)*float64(bytes))
}

// firstOccurrence reports whether sockets[i] does not appear before index i.
func firstOccurrence(sockets []topology.SocketID, i int) bool {
	for j := 0; j < i; j++ {
		if sockets[j] == sockets[i] {
			return false
		}
	}
	return true
}

// firstDie reports whether cores[i]'s die is not represented before index i.
func firstDie(top *topology.Topology, cores []topology.CoreID, i int) bool {
	di := top.DieOf(cores[i])
	for j := 0; j < i; j++ {
		if top.DieOf(cores[j]) == di {
			return false
		}
	}
	return true
}
