// Package numa provides the NUMA cost primitives that the rest of the system
// uses to model non-uniform memory access on hardware Islands: a configurable
// cost model, a cache-line ownership model that makes accesses to shared
// mutable state more expensive the more sockets touch it, NUMA-aware
// (per-socket) reader/writer locks, and memory-allocation placement policies.
//
// Everything in this package accounts cost in virtual nanoseconds; it never
// sleeps. Engines charge the returned costs to per-worker virtual clocks.
package numa

import (
	"fmt"

	"atrapos/internal/topology"
)

// Cost is a duration expressed in virtual nanoseconds.
type Cost int64

// CostModel holds the base latencies used to convert topology distances into
// virtual time. The defaults are calibrated to the published latencies of
// Westmere-EX class machines: an L3 hit around 20 ns, a local atomic
// operation in the tens of nanoseconds, and a cache line transfer over one
// QPI hop in the low hundreds of nanoseconds.
type CostModel struct {
	// LocalAccess is the cost of reading or writing data that is already in
	// a socket-local cache.
	LocalAccess Cost
	// LocalAtomic is the cost of an atomic operation (CAS, fetch-and-add) on
	// a cache line owned by the local socket.
	LocalAtomic Cost
	// RemoteTransferPerHop is the additional cost of pulling a cache line
	// from a socket that is one interconnect hop away. Multi-hop transfers
	// scale linearly with the hop count.
	RemoteTransferPerHop Cost
	// LocalDRAM is the cost of a miss to the local memory node.
	LocalDRAM Cost
	// RemoteDRAMPerHop is the additional DRAM access cost per interconnect hop.
	RemoteDRAMPerHop Cost
	// MessagePerHop is the cost of a shared-memory message between instances
	// whose receiving thread is one hop away (used by the distributed
	// transaction layer of shared-nothing configurations).
	MessagePerHop Cost
	// MessageLocal is the cost of a shared-memory message delivered within a socket.
	MessageLocal Cost
	// ByteTransferPerHop is the per-byte cost of moving payload data between
	// sockets at a synchronization point.
	ByteTransferPerHop Cost
	// RowWork is the CPU cost of processing one row inside an action
	// (instruction execution, predicate evaluation, tuple copy), independent
	// of where the row's memory lives. OLTP row processing dominates the raw
	// memory latency, which is why the paper measures only single-digit
	// percentage effects from remote memory placement (Table I).
	RowWork Cost
}

// DefaultCostModel returns the cost model used throughout the evaluation.
func DefaultCostModel() CostModel {
	return CostModel{
		LocalAccess:          20,
		LocalAtomic:          60,
		RemoteTransferPerHop: 320,
		LocalDRAM:            90,
		RemoteDRAMPerHop:     60,
		MessagePerHop:        900,
		MessageLocal:         350,
		ByteTransferPerHop:   2,
		RowWork:              9000,
	}
}

// Validate reports whether the cost model is usable.
func (m CostModel) Validate() error {
	if m.LocalAccess <= 0 || m.LocalAtomic <= 0 || m.LocalDRAM <= 0 {
		return fmt.Errorf("numa: local costs must be positive: %+v", m)
	}
	if m.RemoteTransferPerHop < 0 || m.RemoteDRAMPerHop < 0 || m.MessagePerHop < 0 ||
		m.MessageLocal < 0 || m.ByteTransferPerHop < 0 || m.RowWork < 0 {
		return fmt.Errorf("numa: costs must be non-negative: %+v", m)
	}
	return nil
}

// Domain couples a topology with a cost model. It is the object the engines
// consult for every cost decision.
type Domain struct {
	Top   *topology.Topology
	Model CostModel
}

// NewDomain builds a Domain, validating the cost model.
func NewDomain(top *topology.Topology, model CostModel) (*Domain, error) {
	if top == nil {
		return nil, fmt.Errorf("numa: nil topology")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Domain{Top: top, Model: model}, nil
}

// MustNewDomain is like NewDomain but panics on error.
func MustNewDomain(top *topology.Topology, model CostModel) *Domain {
	d, err := NewDomain(top, model)
	if err != nil {
		panic(err)
	}
	return d
}

// DefaultDomain returns a Domain over the paper's 8x10 topology with the
// default cost model.
func DefaultDomain() *Domain {
	return MustNewDomain(topology.Default(), DefaultCostModel())
}

// AtomicCost returns the cost of an atomic operation issued by a thread on
// socket `from` against a cache line last owned by socket `owner`.
func (d *Domain) AtomicCost(from, owner topology.SocketID) Cost {
	c := d.Model.LocalAtomic
	if from != owner {
		c += Cost(d.Top.Distance(from, owner)) * d.Model.RemoteTransferPerHop
	}
	return c
}

// AccessCost returns the cost of a plain read/write of shared data that
// currently lives in the cache of socket `owner`.
func (d *Domain) AccessCost(from, owner topology.SocketID) Cost {
	c := d.Model.LocalAccess
	if from != owner {
		c += Cost(d.Top.Distance(from, owner)) * d.Model.RemoteTransferPerHop
	}
	return c
}

// DRAMCost returns the cost of a memory access from socket `from` to a page
// allocated on memory node `node`.
func (d *Domain) DRAMCost(from, node topology.SocketID) Cost {
	c := d.Model.LocalDRAM
	if from != node {
		c += Cost(d.Top.Distance(from, node)) * d.Model.RemoteDRAMPerHop
	}
	return c
}

// MessageCost returns the cost of delivering one message from a thread on
// socket `from` to a thread on socket `to` over shared memory channels.
func (d *Domain) MessageCost(from, to topology.SocketID) Cost {
	if from == to {
		return d.Model.MessageLocal
	}
	return d.Model.MessageLocal + Cost(d.Top.Distance(from, to))*d.Model.MessagePerHop
}

// SyncPointCost implements the paper's synchronization-point formula
// C(s) = (nsocket(s)-1) * Distance(s) * Size(s), where Distance(s) is the
// average pairwise distance between the participating sockets and Size(s)
// the number of bytes exchanged.
//
// It runs on the transaction hot path, so duplicates are skipped with linear
// scans over the (short, bounded by the socket count) participant list
// instead of building a set: the function performs no heap allocations.
func (d *Domain) SyncPointCost(sockets []topology.SocketID, bytes int) Cost {
	n := 0
	sum, pairs := 0, 0
	for i := range sockets {
		if !firstOccurrence(sockets, i) {
			continue
		}
		for j := 0; j < i; j++ {
			if !firstOccurrence(sockets, j) {
				continue
			}
			sum += d.Top.Distance(sockets[i], sockets[j])
			pairs++
		}
		n++
	}
	if n <= 1 || pairs == 0 {
		return 0
	}
	dist := float64(sum) / float64(pairs)
	return Cost(n-1) * Cost(dist*float64(bytes)*float64(d.Model.ByteTransferPerHop))
}

// firstOccurrence reports whether sockets[i] does not appear before index i.
func firstOccurrence(sockets []topology.SocketID, i int) bool {
	for j := 0; j < i; j++ {
		if sockets[j] == sockets[i] {
			return false
		}
	}
	return true
}

// UniqueSockets returns the distinct sockets in ids, preserving first-seen order.
func UniqueSockets(ids []topology.SocketID) []topology.SocketID {
	seen := make(map[topology.SocketID]struct{}, len(ids))
	out := make([]topology.SocketID, 0, len(ids))
	for _, s := range ids {
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

func avgPairwiseDistance(top *topology.Topology, sockets []topology.SocketID) float64 {
	if len(sockets) < 2 {
		return 0
	}
	sum, n := 0, 0
	for i := 0; i < len(sockets); i++ {
		for j := i + 1; j < len(sockets); j++ {
			sum += top.Distance(sockets[i], sockets[j])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// AvgPairwiseDistance exposes the average pairwise distance between a set of
// sockets; the ATraPos cost model uses it as Distance(s).
func (d *Domain) AvgPairwiseDistance(sockets []topology.SocketID) float64 {
	return avgPairwiseDistance(d.Top, UniqueSockets(sockets))
}
