package numa

import (
	"fmt"

	"atrapos/internal/topology"
)

// AllocPolicy decides on which memory node (socket) the data of a database
// instance or partition is allocated. It reproduces the three numactl modes
// of Section III-D: local, central (all instances allocate on a single node),
// and remote (every instance allocates on a different remote node).
type AllocPolicy int

const (
	// AllocLocal allocates each instance's memory on its own socket.
	AllocLocal AllocPolicy = iota
	// AllocCentral allocates every instance's memory on one designated socket.
	AllocCentral
	// AllocRemote allocates each instance's memory on a different remote socket.
	AllocRemote
)

// String implements fmt.Stringer.
func (p AllocPolicy) String() string {
	switch p {
	case AllocLocal:
		return "local"
	case AllocCentral:
		return "central"
	case AllocRemote:
		return "remote"
	default:
		return fmt.Sprintf("AllocPolicy(%d)", int(p))
	}
}

// ParseAllocPolicy converts a string to an AllocPolicy.
func ParseAllocPolicy(s string) (AllocPolicy, error) {
	switch s {
	case "local":
		return AllocLocal, nil
	case "central":
		return AllocCentral, nil
	case "remote":
		return AllocRemote, nil
	default:
		return 0, fmt.Errorf("numa: unknown allocation policy %q", s)
	}
}

// Placement maps each socket's instance to the memory node holding its data.
type Placement struct {
	policy AllocPolicy
	node   []topology.SocketID
}

// NewPlacement computes the memory node of each socket's data under policy.
// centralNode is only used by AllocCentral; the paper uses the last socket.
func NewPlacement(top *topology.Topology, policy AllocPolicy, centralNode topology.SocketID) (*Placement, error) {
	n := top.Sockets()
	if policy == AllocCentral && (int(centralNode) < 0 || int(centralNode) >= n) {
		return nil, fmt.Errorf("numa: central node %d out of range [0,%d)", centralNode, n)
	}
	p := &Placement{policy: policy, node: make([]topology.SocketID, n)}
	for s := 0; s < n; s++ {
		switch policy {
		case AllocLocal:
			p.node[s] = topology.SocketID(s)
		case AllocCentral:
			p.node[s] = centralNode
		case AllocRemote:
			// Every instance allocates on a different remote node: shift by
			// half the machine so instance s never lands on itself.
			p.node[s] = topology.SocketID((s + n/2 + n%2) % n)
			if p.node[s] == topology.SocketID(s) {
				p.node[s] = topology.SocketID((s + 1) % n)
			}
		default:
			return nil, fmt.Errorf("numa: unknown allocation policy %v", policy)
		}
	}
	return p, nil
}

// Policy returns the placement's policy.
func (p *Placement) Policy() AllocPolicy { return p.policy }

// NodeFor returns the memory node that holds the data of the instance bound
// to socket s.
func (p *Placement) NodeFor(s topology.SocketID) topology.SocketID {
	if int(s) < 0 || int(s) >= len(p.node) {
		return 0
	}
	return p.node[s]
}
