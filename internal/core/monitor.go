package core

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/vclock"
)

// DefaultSubPartitions is the number of sub-partitions tracked per partition.
// The paper uses 10 as a good trade-off between the size of the monitoring
// arrays and the number of repartitioning operations needed to adapt to even
// the most drastic workload changes (Section V-D).
const DefaultSubPartitions = 10

// Monitor is the lightweight monitoring mechanism: per-partition arrays of
// sub-partition action costs plus synchronization-point counters. The engine
// records every executed action and synchronization point; a monitoring pass
// seals the current epoch and aggregates it into Stats.
//
// The arrays are double-buffered into two epochs so that monitoring runs
// concurrently with evaluation: workers record into the active epoch while
// the planner thread reads (and clears) the sealed one. Seal flips the
// active epoch with a single atomic store; a worker that loaded the old
// epoch index just before the flip finishes its record into the sealed
// buffer, where it is picked up by the next seal — records are never lost,
// at worst attributed one epoch late.
//
// The space overhead is fixed per partition (it does not depend on the table
// size or the transaction arrival rate), mirroring the paper's design. The
// per-action CPU overhead charged to workers is modeled separately by the
// engine (MonitoringCostPerAction).
type Monitor struct {
	subParts int
	active   atomic.Int32
	epochs   [2]*monitorEpoch
	// scratch is the reusable Stats buffer Seal returns. Sealing is
	// single-threaded (the planner goroutine, or a one-shot derivation), and
	// the returned Stats is only valid until the next Seal — which lets the
	// steady state reuse every map and slice instead of reallocating the
	// whole aggregate once per monitoring interval.
	scratch *Stats
}

// monitorEpoch is one buffer of the double-buffered monitoring arrays.
type monitorEpoch struct {
	mu     sync.Mutex
	tables map[string]*tableMonitor
	// syncs is keyed by an order-independent hash of the participant set, so
	// recording a synchronization point in the transaction hot path performs
	// no allocations (the previous string key allocated per record). The
	// participants themselves are stored once, on first sight of a signature.
	syncs map[uint64]*syncAgg
	// syncFree pools syncAgg objects between epochs: Seal drains the syncs
	// map into the pool and RecordSync refills from it, so a steady workload
	// allocates one agg per signature ever, not one per signature per
	// interval.
	syncFree []*syncAgg
	window   vclock.Nanos

	// Transaction-shape counters, recorded with plain atomics (no epoch
	// mutex): the multisite share and action profile drive the
	// adaptive-granularity scorer, and the shared-nothing hot path must be
	// able to record them without taking a lock or allocating.
	txns          atomic.Int64
	multisiteTxns atomic.Int64
	actions       atomic.Int64
	writes        atomic.Int64
	overwrites    atomic.Int64
	syncBytes     atomic.Int64
	// writeKeySlots is a coarse 64-slot histogram of write-key hashes
	// (RecordWriteKey). The hottest slot's share of all recorded writes
	// approximates the workload's hot-key concentration, which prices the
	// write-combining accumulator's expected coalescing ratio in the
	// granularity scorer. Fixed-size and atomic: the hot path neither locks
	// nor allocates to feed it.
	writeKeySlots [64]atomic.Int64
}

type tableMonitor struct {
	bounds []schema.Key // partition lower bounds at registration time
	maxKey schema.Key
	costs  [][]vclock.Nanos // [partition][subpartition]
	counts [][]int64
}

type syncAgg struct {
	participants []PartitionRef
	count        int64
	bytes        int64
}

// NewMonitor creates a Monitor with the given number of sub-partitions per
// partition (0 means DefaultSubPartitions).
func NewMonitor(subParts int) *Monitor {
	if subParts <= 0 {
		subParts = DefaultSubPartitions
	}
	m := &Monitor{subParts: subParts}
	for i := range m.epochs {
		m.epochs[i] = &monitorEpoch{
			tables: make(map[string]*tableMonitor),
			syncs:  make(map[uint64]*syncAgg),
		}
	}
	return m
}

// SubPartitions returns the number of sub-partitions tracked per partition.
func (m *Monitor) SubPartitions() int { return m.subParts }

// Register (re-)initializes the monitoring arrays for a table under the given
// placement bounds and maximum key, in both epochs. It is called when the
// monitor is created and, after a repartitioning, for exactly the tables the
// plan diff touched — unchanged tables keep accumulating into their existing
// arrays, which is what makes repartitioning cost proportional to the diff.
func (m *Monitor) Register(table string, bounds []schema.Key, maxKey schema.Key) {
	for _, e := range m.epochs {
		tm := &tableMonitor{
			bounds: append([]schema.Key(nil), bounds...),
			maxKey: maxKey,
			costs:  make([][]vclock.Nanos, len(bounds)),
			counts: make([][]int64, len(bounds)),
		}
		for i := range tm.costs {
			tm.costs[i] = make([]vclock.Nanos, m.subParts)
			tm.counts[i] = make([]int64, m.subParts)
		}
		e.mu.Lock()
		e.tables[table] = tm
		e.mu.Unlock()
	}
}

// RegisterPlacement registers every table of a placement, using the supplied
// per-table maximum keys.
func (m *Monitor) RegisterPlacement(p *partition.Placement, maxKeys map[string]schema.Key) {
	for name, tp := range p.Tables {
		m.Register(name, tp.Bounds, maxKeys[name])
	}
}

// locate returns the partition and sub-partition of a key.
func (tm *tableMonitor) locate(key schema.Key, subParts int) (int, int) {
	// Partition: last bound <= key.
	p := sort.Search(len(tm.bounds), func(i int) bool { return tm.bounds[i] > key }) - 1
	if p < 0 {
		p = 0
	}
	lo := tm.bounds[p]
	hi := tm.maxKey
	if p+1 < len(tm.bounds) {
		hi = tm.bounds[p+1]
	}
	if hi <= lo {
		return p, 0
	}
	span := uint64(hi-lo) / uint64(subParts)
	if span == 0 {
		span = 1
	}
	sp := int(uint64(key-lo) / span)
	if sp >= subParts {
		sp = subParts - 1
	}
	return p, sp
}

// activeEpoch returns the epoch workers currently record into.
func (m *Monitor) activeEpoch() *monitorEpoch {
	return m.epochs[m.active.Load()&1]
}

// RecordAction records that an action on table touched key and cost cost.
func (m *Monitor) RecordAction(table string, key schema.Key, cost vclock.Nanos) {
	e := m.activeEpoch()
	e.mu.Lock()
	tm, ok := e.tables[table]
	if ok {
		p, sp := tm.locate(key, m.subParts)
		tm.costs[p][sp] += cost
		tm.counts[p][sp]++
	}
	e.mu.Unlock()
}

// RecordSync records one occurrence of a synchronization point between the
// given partitions moving bytes bytes. The participant slice is only read;
// callers may reuse its backing array after the call returns.
func (m *Monitor) RecordSync(participants []PartitionRef, bytes int) {
	if len(participants) == 0 {
		return
	}
	key := syncHash(participants)
	e := m.activeEpoch()
	e.mu.Lock()
	agg, ok := e.syncs[key]
	if !ok {
		if n := len(e.syncFree); n > 0 {
			agg = e.syncFree[n-1]
			e.syncFree = e.syncFree[:n-1]
		} else {
			agg = &syncAgg{}
		}
		agg.participants = append(agg.participants, participants...)
		e.syncs[key] = agg
	}
	agg.count++
	agg.bytes += int64(bytes)
	e.mu.Unlock()
}

// syncHash returns an order-independent hash of a participant set: the sum of
// the per-participant FNV hashes commutes, so permutations of the same set
// collapse to one signature without sorting or allocating.
func syncHash(refs []PartitionRef) uint64 {
	var sum uint64
	for _, r := range refs {
		h := uint64(14695981039346656037)
		for i := 0; i < len(r.Table); i++ {
			h ^= uint64(r.Table[i])
			h *= 1099511628211
		}
		h ^= uint64(r.Partition)
		h *= 1099511628211
		sum += h
	}
	return sum
}

// RecordTxn records the shape of one executed transaction: how many actions
// it ran, how many of them wrote, how many of those writes hit a row the same
// transaction had already written (overwrites — the coalescing scorer's
// self-canceling signal), whether it crossed instance boundaries, and how
// many synchronization-point bytes it exchanged. It is the entire monitoring
// obligation of the shared-nothing hot path — a handful of atomic adds on the
// active epoch, no locks, no allocations.
func (m *Monitor) RecordTxn(actions, writes, overwrites int, multisite bool, syncBytes int) {
	e := m.activeEpoch()
	e.txns.Add(1)
	e.actions.Add(int64(actions))
	e.writes.Add(int64(writes))
	if overwrites > 0 {
		e.overwrites.Add(int64(overwrites))
	}
	if multisite {
		e.multisiteTxns.Add(1)
		e.syncBytes.Add(int64(syncBytes))
	}
}

// RecordWriteKey records one write's key hash into the coarse write-key
// histogram; the sealed epoch's hottest-slot share approximates hot-key
// concentration. One atomic add, no locks.
func (m *Monitor) RecordWriteKey(hash uint64) {
	e := m.activeEpoch()
	e.writeKeySlots[(hash*0x9E3779B97F4A7C15)>>58].Add(1)
}

// AdvanceWindow extends the virtual-time span the active epoch's statistics
// cover. The planner calls it just before Seal, so the window lands in the
// epoch about to be sealed.
func (m *Monitor) AdvanceWindow(d vclock.Nanos) {
	if d <= 0 {
		return
	}
	e := m.activeEpoch()
	e.mu.Lock()
	e.window += d
	e.mu.Unlock()
}

// Seal flips the double buffer and aggregates the epoch that was active
// until now: workers immediately start recording into the other epoch, and
// the sealed arrays are read and cleared without ever blocking recording.
// Records from workers that raced the flip land in the sealed (now idle)
// buffer and are picked up by the next Seal.
//
// The returned Stats is a buffer owned by the Monitor: it is valid until the
// next Seal/Aggregate call, which reuses it. Every caller (the planner
// goroutine, one-shot derivations, ablations) consumes the aggregate before
// sealing again, and the reuse is what keeps steady-state sealing
// allocation-free — monitoring overhead stays flat no matter how many
// planner intervals a run packs in.
func (m *Monitor) Seal() *Stats {
	idx := m.active.Load() & 1
	m.active.Store(1 - idx)
	sealed := m.epochs[idx]
	sealed.mu.Lock()
	defer sealed.mu.Unlock()
	stats := m.scratch
	if stats == nil {
		stats = &Stats{
			Sub:     make(map[string][][]SubLoad, len(sealed.tables)),
			Bounds:  make(map[string][]schema.Key, len(sealed.tables)),
			MaxKeys: make(map[string]schema.Key, len(sealed.tables)),
		}
		m.scratch = stats
	}
	stats.Window = sealed.window
	stats.Txns = sealed.txns.Swap(0)
	stats.MultisiteTxns = sealed.multisiteTxns.Swap(0)
	stats.Actions = sealed.actions.Swap(0)
	stats.Writes = sealed.writes.Swap(0)
	stats.Overwrites = sealed.overwrites.Swap(0)
	stats.SyncBytes = sealed.syncBytes.Swap(0)
	stats.WriteHot = 0
	for i := range sealed.writeKeySlots {
		if n := sealed.writeKeySlots[i].Swap(0); n > stats.WriteHot {
			stats.WriteHot = n
		}
	}
	// A table no longer registered must not linger in the reused maps, or
	// its last interval's loads would leak into every later aggregate.
	for name := range stats.Sub {
		if _, ok := sealed.tables[name]; !ok {
			delete(stats.Sub, name)
			delete(stats.Bounds, name)
			delete(stats.MaxKeys, name)
		}
	}
	for name, tm := range sealed.tables {
		stats.Bounds[name] = append(stats.Bounds[name][:0], tm.bounds...)
		stats.MaxKeys[name] = tm.maxKey
		parts := stats.Sub[name]
		if n := len(tm.costs); cap(parts) < n {
			grown := make([][]SubLoad, n)
			copy(grown, parts[:cap(parts)])
			parts = grown
		} else {
			// Reslicing through cap recovers sub-slices a shrink hid, so a
			// later re-grow reuses their backing arrays too.
			parts = parts[:n]
		}
		for p := range tm.costs {
			subs := parts[p]
			if cap(subs) < m.subParts {
				subs = make([]SubLoad, m.subParts)
			}
			subs = subs[:m.subParts]
			for sp := 0; sp < m.subParts; sp++ {
				subs[sp] = SubLoad{Cost: tm.costs[p][sp], Actions: tm.counts[p][sp]}
				tm.costs[p][sp] = 0
				tm.counts[p][sp] = 0
			}
			parts[p] = subs
		}
		stats.Sub[name] = parts
	}
	syncs := stats.Syncs[:0]
	for key, agg := range sealed.syncs {
		avgBytes := int64(0)
		if agg.count > 0 {
			avgBytes = agg.bytes / agg.count
		}
		// Participants are deep-copied into the buffer a previous seal left
		// at this index (aggs recycle into the pool below, so handing their
		// slices out directly would let the next interval clobber them).
		var buf []PartitionRef
		if n := len(syncs); n < cap(syncs) {
			buf = syncs[:n+1][n].Participants[:0]
		}
		syncs = append(syncs, SyncStat{
			Participants: append(buf, agg.participants...),
			Count:        agg.count,
			Bytes:        avgBytes,
		})
		agg.participants = agg.participants[:0]
		agg.count, agg.bytes = 0, 0
		sealed.syncFree = append(sealed.syncFree, agg)
		delete(sealed.syncs, key)
	}
	if len(syncs) > 1 {
		sort.Slice(syncs, func(i, j int) bool {
			return syncKey(syncs[i].Participants) < syncKey(syncs[j].Participants)
		})
	}
	stats.Syncs = syncs
	sealed.window = 0
	return stats
}

// Aggregate returns the statistics collected since the last Aggregate (or
// since creation) and clears the arrays. It is Seal under the name the
// single-threaded callers (static placement derivation, ablations) use, and
// shares its contract: the returned Stats is valid until the next call.
func (m *Monitor) Aggregate() *Stats { return m.Seal() }

func syncKey(refs []PartitionRef) string {
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.Table + "#" + itoa(r.Partition)
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
