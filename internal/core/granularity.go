package core

import (
	"math"

	"atrapos/internal/device"
	"atrapos/internal/numa"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// WorkloadShape is the measured workload profile the granularity scorer
// consumes. The engine's monitor fills it from one sealed epoch's
// transaction-shape counters (Stats.MultisiteShare and friends); the offline
// sweeps fill it synthetically.
type WorkloadShape struct {
	// MultisiteShare is the fraction of transactions whose actions cross
	// instance boundaries at the current deployment, in [0,1].
	MultisiteShare float64
	// ActionsPerTxn / WritesPerTxn are the average action and write counts.
	ActionsPerTxn float64
	WritesPerTxn  float64
	// SyncBytes is the average synchronization-point payload of one multisite
	// transaction.
	SyncBytes int
	// HotWriteShare is the hottest write-key histogram slot's share of all
	// writes (Stats.HotWriteShare) and OverwriteShare the fraction of writes
	// that re-wrote a row their own transaction had already written
	// (Stats.OverwriteShare). They estimate how much of the logical write
	// volume the write-combining accumulator collapses before a physical
	// flush; zero leaves the coalescing term conservative (no savings).
	HotWriteShare  float64
	OverwriteShare float64
	// TotalKeys is the summed key span of the workload's tables; divided by
	// the island count it bounds the key range one instance serves, which
	// drives the lock-conflict term.
	TotalKeys int64
	// Concurrency is the number of worker threads executing transactions; the
	// conflict term scales with the workers that actually share an instance,
	// not with its core count.
	Concurrency int
}

// LevelScore is one candidate granularity's predicted per-transaction
// overhead (virtual nanoseconds, excluding the level-independent row work).
type LevelScore struct {
	Level topology.Level
	Score float64
}

// GranularityModel prices candidate island levels for a shared-nothing
// deployment, using the same core-granular machinery the engine charges at
// run time and the fig-islands sweep measures offline: CoreAtomicCost and
// CoreDRAMCost for the instance-locality of shared state, CoreMessageCost for
// action shipping and two-phase commit, and SyncPointCostAt for the
// synchronization-point rendezvous. Scores are differential: the
// level-independent row work is excluded, so the hysteresis margin compares
// only what actually changes with the granularity.
type GranularityModel struct {
	Domain *numa.Domain
	// LogFlush and LogGroupSize mirror the engine's log configuration
	// (FlushCost and the group-commit size). They price two level-dependent
	// effects: the amortized flush a 2PC participant pays per prepare, and the
	// group-commit imbalance of coarse islands — with one log shared by m
	// member cores, the full flush of every group lands on the same member
	// (commit order round-robins the members deterministically), so the
	// island's busiest core pays almost every full flush while a per-core log
	// spreads them evenly. Throughput is committed work divided by the busiest
	// core's time, so the scorer prices the busiest member's flush bill.
	// LogFlush == 0 means flushes are not priced.
	LogFlush     numa.Cost
	LogGroupSize int
	// Devices optionally binds the scorer to the machine's log-device map:
	// candidate levels then pay a commit-latency term priced from the devices
	// their island logs would bind to — the device's flush service latency
	// times the group-commit concentration (how many cores' commits funnel
	// into one flush path at that level) divided by the device's queue depth.
	// A wiring that leaves devices idle (a coarse level funnelling every
	// commit through its home island's device) scores worse than one that
	// spreads flushes across them, which is what moves the fine-vs-coarse
	// crossover with the storage profile. Nil skips the term.
	Devices *device.Map
	// CoalesceRecords mirrors the engine's write-combining accumulator knob
	// (wal.Config.CoalesceRecords). When positive, the flush/device term is
	// scaled by the expected fraction of logical writes that survive
	// coalescing, estimated from the shape's hot-key concentration and
	// overwrite share — fewer, fatter physical flushes shrink exactly the
	// commit-latency term that decides fine vs coarse on scarce devices.
	CoalesceRecords int
	// Cal optionally applies executed-vs-priced correction factors to the
	// score terms, each scaled by the factor of the cost component it models:
	// instance locality and conflict retries by Execution, flush/device bills
	// by Logging, messaging and sync points by Communication, conflicts by
	// Locking. Nil means identity (uncalibrated scores, bit-identical to the
	// model without this field).
	Cal *Calibration
}

// coalesceSurvival estimates the fraction of logical write volume that
// reaches a physical flush with the write-combining accumulator enabled:
// overwrites within a transaction vanish outright, and the hot fraction h of
// the remaining writes lands on keys shared by roughly h*R other buffered
// writes per R-record flush epoch, collapsing to one net delta. Zero-valued
// shape knobs yield 1 (no predicted savings) so an engine without monitored
// write-shape data scores exactly as before.
func (g GranularityModel) coalesceSurvival(shape WorkloadShape) float64 {
	if g.CoalesceRecords <= 0 {
		return 1
	}
	h := shape.HotWriteShare
	o := shape.OverwriteShare
	if h <= 0 && o <= 0 {
		return 1
	}
	if h > 1 {
		h = 1
	}
	if o > 1 {
		o = 1
	}
	r := float64(g.CoalesceRecords)
	d := (1 - o) * ((1 - h) + h/(1+h*r))
	if d < 0.05 {
		d = 0.05
	}
	if d > 1 {
		d = 1
	}
	return d
}

// flushShare is the amortized (ride-along) group-commit cost per commit.
func (g GranularityModel) flushShare() float64 {
	if g.LogGroupSize > 1 {
		return float64(g.LogFlush) / float64(g.LogGroupSize)
	}
	return float64(g.LogFlush)
}

// LevelBreakdown is one candidate level's score split into the model's five
// terms, the explanation the planner's decision log carries for every
// evaluation. Total is the terms summed in the model's fixed order (it is
// bit-identical to the single-accumulator Score of earlier versions); a term
// whose preconditions do not hold contributes exactly 0. Levels with no
// alive islands have Total = +Inf and zero terms.
type LevelBreakdown struct {
	Level topology.Level
	// Total is the score: Locality + TxnState + Commit + Conflict + Comm.
	Total float64
	// Locality is the instance-locality term (shared state + row payload
	// against the island home, speed-weighted over members).
	Locality float64
	// TxnState is the transaction-state stripe term (begin/commit touches,
	// centralized at machine level).
	TxnState float64
	// Commit is the group-commit / device bill (flush imbalance, device
	// service and queue-wait concentration, scaled by coalescing survival).
	Commit float64
	// Conflict is the lock-conflict retry term.
	Conflict float64
	// Comm is the communication term (remote round trips, 2PC, sync points).
	Comm float64
}

// Score predicts the per-transaction overhead of deploying one instance per
// island at the given level under the given workload shape. Lower is better.
// Levels with no alive islands score +Inf. It is Breakdown's Total.
func (g GranularityModel) Score(level topology.Level, shape WorkloadShape) float64 {
	return g.Breakdown(level, shape).Total
}

// Breakdown prices one candidate level and reports each term separately.
//
// The terms mirror the engine's actual charges:
//
//   - instance locality: every action touches the instance's shared state
//     (lock table stripe, log tail) and data homed on the island's first
//     core; members on other dies or sockets of a coarse island pay the
//     transfer surcharge, and members below full speed (hybrid parts' E
//     cores) pay it scaled by 1/Speed. Begin/commit touch the
//     transaction-state stripe, which the machine level centralizes.
//   - lock conflicts: workers sharing one instance's key range abort and
//     retry; the expected retry work grows with the writers per instance and
//     shrinks with the instance's key span.
//   - communication: at multisite share s, remote actions pay round-trip
//     messages between islands, writing transactions run 2PC over the
//     expected participant set, and participants rendezvous at the
//     synchronization point — all priced with the hierarchical per-hop
//     machinery, so die islands of one socket are cheaper to coordinate than
//     islands on different sockets.
func (g GranularityModel) Breakdown(level topology.Level, shape WorkloadShape) LevelBreakdown {
	b := LevelBreakdown{Level: level}
	top := g.Domain.Top
	islands := top.AliveIslandsAt(level)
	n := len(islands)
	if n == 0 {
		b.Total = math.Inf(1)
		return b
	}
	k := shape.ActionsPerTxn
	if k <= 0 {
		k = 1
	}
	// Per-term correction factors (all exactly 1 when Cal is nil).
	fExec := g.Cal.Factor(vclock.Execution)
	fMgmt := g.Cal.Factor(vclock.Management)
	fLog := g.Cal.Factor(vclock.Logging)
	fLock := g.Cal.Factor(vclock.Locking)
	fComm := g.Cal.Factor(vclock.Communication)

	// Instance locality: per-action shared-state atomic plus two cache lines
	// of row payload against the island home, averaged over member cores.
	// Each member's contribution is weighted by its relative speed, mirroring
	// numa.RowWorkAt: an efficiency core takes 1/Speed as long for the same
	// access work, so an island of E-cores is priced dearer than a P-core
	// island of the same size. Full-speed members divide by exactly 1, so
	// uniform machines score bit-identically to the unweighted model.
	var state, speedSum float64
	members := 0
	for _, isl := range islands {
		home := isl.Cores[0]
		for _, c := range isl.Cores {
			cost := float64(g.Domain.CoreAtomicCost(c.ID, home.ID)) +
				2*float64(g.Domain.CoreDRAMCost(c.ID, home.Socket))
			if c.Speed != 1 && c.Speed > 0 {
				cost /= c.Speed
				speedSum += c.Speed
			} else {
				speedSum++
			}
			state += cost
			members++
		}
	}
	if members == 0 {
		b.Total = math.Inf(1)
		return b
	}
	state /= float64(members)
	b.Locality = fExec * k * state

	// Transaction-state stripe: begin and commit. Sub-machine levels keep it
	// striped per socket (local); the machine level shares one central list
	// whose cache line ping-pongs between the participating sockets.
	if level == topology.LevelMachine && len(top.AliveSockets()) > 1 {
		h := islands[0].Cores[0].ID
		var sum float64
		alive := top.AliveCores()
		for _, c := range alive {
			sum += float64(g.Domain.CoreAtomicCost(c.ID, h))
		}
		b.TxnState = fMgmt * 2 * sum / float64(len(alive))
	} else {
		b.TxnState = fMgmt * 2 * float64(g.Domain.Model.LocalAtomic)
	}

	// Group-commit cost: the busiest member of an island whose log is shared
	// by m cores pays min(m, G)/G of the full flushes plus the ride-along
	// share; a single-member island spreads them evenly. Without a device
	// map the full flush costs the flat LogFlush. With one, the same
	// imbalance formula is priced per island from the device its log binds
	// to — service replaces LogFlush (never both: the engine's flush path
	// pays exactly one of them too) — plus a queue-wait surcharge: a device
	// absorbs the commit streams of the cores funnelled into it up to its
	// queue depth, and beyond that full flushes wait. Funneling is what the
	// level decides (a machine-grained wiring concentrates every core on its
	// home island's device and leaves the rest idle), so the surcharge is
	// what moves the crossover with the storage profile.
	if shape.WritesPerTxn > 0 && (g.LogFlush > 0 || g.Devices != nil) {
		// With the write-combining accumulator enabled, only the surviving
		// net-delta fraction of the write volume reaches the device; the
		// whole flush bill scales down with it. Survival is 1 without
		// coalescing (or without monitored write-shape data), leaving the
		// scores untouched.
		survive := g.coalesceSurvival(shape)
		group := g.LogGroupSize
		if group < 1 {
			group = 1
		}
		m := members / n
		if m < 1 {
			m = 1
		}
		busiest := m
		if busiest > group {
			busiest = group
		}
		if g.Devices == nil {
			b.Commit = fLog * survive * (float64(g.LogFlush)*float64(busiest)/float64(group) + g.flushShare())
		} else {
			var bill float64
			for _, isl := range islands {
				dev := g.Devices.DeviceFor(top.DieOf(isl.Cores[0].ID))
				// Cores whose commits reach dev at this level: members of
				// every island whose log binds to the same device.
				streams := 0
				for _, other := range islands {
					if g.Devices.DeviceFor(top.DieOf(other.Cores[0].ID)) == dev {
						streams += len(other.Cores)
					}
				}
				q := dev.Spec().QueueDepth
				if q < 1 {
					q = 1
				}
				concentration := float64(streams) / float64(q)
				if concentration < 1 {
					concentration = 1
				}
				svc := float64(dev.Service(96 * group))
				// busiest full-flush shares + one ride-along + (conc-1)
				// expected queue waits, all per commit.
				bill += svc / float64(group) * (float64(busiest) + concentration)
			}
			b.Commit = fLog * survive * bill / float64(n)
		}
	}

	// Lock conflicts: an instance shared by several concurrent workers sees
	// write conflicts proportional to the locks they hold over its key span;
	// each conflict costs one aborted attempt's row work — executed by a
	// member core, so the retry bill is divided by the members' average
	// speed: on hybrid parts the aborted work re-runs on slower silicon.
	// Uniform machines have average speed exactly 1 and score unchanged.
	if shape.TotalKeys > 0 && shape.WritesPerTxn > 0 && shape.Concurrency > 0 {
		perIsland := float64(shape.TotalKeys) / float64(n)
		sharing := float64(shape.Concurrency) / float64(n)
		if sharing > 1 && perIsland > 0 {
			pConflict := (sharing - 1) * k * shape.WritesPerTxn / perIsland
			if pConflict > 1 {
				pConflict = 1
			}
			retry := pConflict * k * float64(g.Domain.Model.RowWork)
			if avgSpeed := speedSum / float64(members); avgSpeed != 1 && avgSpeed > 0 {
				retry /= avgSpeed
			}
			b.Conflict = fLock * retry
		}
	}

	// Communication: only multisite transactions pay it, and only when there
	// is more than one instance to cross into.
	if n > 1 && shape.MultisiteShare > 0 {
		var msgSum float64
		pairs := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a, b := islands[i].Cores[0].ID, islands[j].Cores[0].ID
				msgSum += float64(g.Domain.CoreMessageCost(a, b) + g.Domain.CoreMessageCost(b, a))
				pairs++
			}
		}
		roundTrip := msgSum / float64(pairs)
		remote := (k - 1) * float64(n-1) / float64(n)
		comm := remote * roundTrip
		participants := 1 + remote
		if participants > float64(n) {
			participants = float64(n)
		}
		if shape.WritesPerTxn > 0 {
			// 2PC: prepare and decision round trips plus the prepare and end
			// flushes on every remote participant's log.
			comm += (participants - 1) * (2*roundTrip + 2*g.flushShare())
		}
		if shape.SyncBytes > 0 {
			nSync := int(math.Ceil(participants))
			if nSync > n {
				nSync = n
			}
			if nSync > 1 {
				homes := make([]topology.CoreID, nSync)
				for i := 0; i < nSync; i++ {
					homes[i] = islands[i].Cores[0].ID
				}
				comm += float64(g.Domain.SyncPointCostAt(homes, shape.SyncBytes))
			}
		}
		b.Comm = fComm * shape.MultisiteShare * comm
	}
	// Summed left-to-right in the historical accumulation order, so Total is
	// bit-identical to the pre-breakdown single-accumulator score (terms that
	// did not apply add exactly +0.0, the identity).
	b.Total = b.Locality + b.TxnState + b.Commit + b.Conflict + b.Comm
	return b
}

// Breakdowns prices every structurally distinct island level, finest first,
// with full per-term detail; it is Scores with the explanation kept.
func (g GranularityModel) Breakdowns(shape WorkloadShape) []LevelBreakdown {
	levels := g.Domain.Top.DistinctLevels()
	out := make([]LevelBreakdown, len(levels))
	for i, l := range levels {
		out[i] = g.Breakdown(l, shape)
	}
	return out
}

// Scores prices every island level that is structurally distinct on the
// machine, finest first.
func (g GranularityModel) Scores(shape WorkloadShape) []LevelScore {
	levels := g.Domain.Top.DistinctLevels()
	out := make([]LevelScore, len(levels))
	for i, l := range levels {
		out[i] = LevelScore{Level: l, Score: g.Score(l, shape)}
	}
	return out
}

// Best returns the cheapest level for the shape. Near-ties (within tieMargin,
// relatively) resolve to the finer level, matching the sweep's empirical
// preference for fine islands when coordination is free; pass 0 to pick the
// strict minimum.
func (g GranularityModel) Best(shape WorkloadShape, tieMargin float64) (topology.Level, []LevelScore) {
	scores := g.Scores(shape)
	best := scores[0]
	for _, ls := range scores[1:] {
		if ls.Score < best.Score*(1-tieMargin) {
			best = ls
		}
	}
	return best.Level, scores
}
