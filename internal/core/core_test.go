package core

import (
	"testing"
	"time"

	"atrapos/internal/btree"
	"atrapos/internal/numa"
	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/storage"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

func testDomain() *numa.Domain {
	top := topology.MustNew(topology.Config{Sockets: 4, CoresPerSocket: 4})
	return numa.MustNewDomain(top, numa.DefaultCostModel())
}

func twoTablePlacement(top *topology.Topology) *partition.Placement {
	return partition.NaivePerCore(top, []partition.TableSpec{
		{Name: "A", MaxKey: 1600},
		{Name: "B", MaxKey: 1600},
	})
}

func TestMonitorRecordAndAggregate(t *testing.T) {
	m := NewMonitor(0)
	if m.SubPartitions() != DefaultSubPartitions {
		t.Fatalf("SubPartitions = %d", m.SubPartitions())
	}
	bounds := btree.UniformBounds(1000, 4)
	m.Register("A", bounds, schema.KeyFromInt(1000))

	// Keys 0..249 are partition 0; record a hot sub-partition.
	for i := 0; i < 100; i++ {
		m.RecordAction("A", schema.KeyFromInt(int64(i%25)), 10) // sub-partition 0 of partition 0
	}
	m.RecordAction("A", schema.KeyFromInt(999), 50) // last partition, last sub-partition
	m.RecordAction("Unknown", schema.KeyFromInt(1), 99)
	m.RecordSync([]PartitionRef{{Table: "A", Partition: 0}, {Table: "A", Partition: 3}}, 64)
	m.RecordSync([]PartitionRef{{Table: "A", Partition: 0}, {Table: "A", Partition: 3}}, 32)
	m.RecordSync(nil, 10)
	m.AdvanceWindow(vclock.Nanos(time.Second))
	m.AdvanceWindow(-5)

	stats := m.Aggregate()
	if stats.Window != vclock.Nanos(time.Second) {
		t.Errorf("window = %d", stats.Window)
	}
	if len(stats.Sub["A"]) != 4 {
		t.Fatalf("partitions in stats = %d", len(stats.Sub["A"]))
	}
	if stats.Sub["A"][0][0].Cost != 1000 || stats.Sub["A"][0][0].Actions != 100 {
		t.Errorf("hot sub-partition load = %+v", stats.Sub["A"][0][0])
	}
	if stats.Sub["A"][3][9].Cost != 50 {
		t.Errorf("cold partition load = %+v", stats.Sub["A"][3][9])
	}
	if stats.TotalCost() != 1050 {
		t.Errorf("TotalCost = %d", stats.TotalCost())
	}
	if stats.TableCost("A") != 1050 || stats.TableCost("B") != 0 {
		t.Errorf("TableCost mismatch")
	}
	if len(stats.Syncs) != 1 || stats.Syncs[0].Count != 2 || stats.Syncs[0].Bytes != 48 {
		t.Errorf("sync stats = %+v", stats.Syncs)
	}
	// Aggregation clears the arrays.
	stats2 := m.Aggregate()
	if stats2.TotalCost() != 0 || len(stats2.Syncs) != 0 || stats2.Window != 0 {
		t.Error("aggregate did not reset the monitor")
	}
}

func TestMonitorRegisterPlacement(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 2, CoresPerSocket: 2})
	p := twoTablePlacement(top)
	m := NewMonitor(5)
	m.RegisterPlacement(p, map[string]schema.Key{"A": schema.KeyFromInt(1600), "B": schema.KeyFromInt(1600)})
	m.RecordAction("B", schema.KeyFromInt(1599), 7)
	stats := m.Aggregate()
	if len(stats.Sub["B"]) != p.Tables["B"].NumPartitions() {
		t.Errorf("B partitions = %d", len(stats.Sub["B"]))
	}
	if stats.TableCost("B") != 7 {
		t.Errorf("B cost = %d", stats.TableCost("B"))
	}
	// Degenerate partition spans (hi <= lo) do not panic.
	m2 := NewMonitor(3)
	m2.Register("tiny", []schema.Key{0, 1}, 1)
	m2.RecordAction("tiny", 0, 5)
	m2.RecordAction("tiny", 1, 5)
	if m2.Aggregate().TableCost("tiny") != 10 {
		t.Error("tiny table cost mismatch")
	}
}

func TestCostModelResourceUtilization(t *testing.T) {
	// A 1-socket, 2-core machine so the imbalance metric is easy to reason about.
	top := topology.MustNew(topology.Config{Sockets: 1, CoresPerSocket: 2})
	d := numa.MustNewDomain(top, numa.DefaultCostModel())
	model := CostModel{Domain: d}
	p := partition.NewPlacement()
	p.Tables["A"] = &partition.TablePlacement{
		Table:  "A",
		Bounds: btree.UniformBounds(1000, 2),
		Cores:  []topology.CoreID{0, 1},
	}
	// Balanced load on the two partitions.
	balanced := &Stats{Sub: map[string][][]SubLoad{
		"A": {{{Cost: 500}}, {{Cost: 500}}},
	}}
	// Skewed load.
	skewed := &Stats{Sub: map[string][][]SubLoad{
		"A": {{{Cost: 900}}, {{Cost: 100}}},
	}}
	ruBalanced := model.ResourceUtilization(p, balanced)
	ruSkewed := model.ResourceUtilization(p, skewed)
	if ruSkewed <= ruBalanced {
		t.Errorf("skewed RU %f should exceed balanced RU %f", ruSkewed, ruBalanced)
	}
	loads := model.CoreLoads(p, skewed)
	if loads[0] != 900 || loads[1] != 100 {
		t.Errorf("core loads = %v", loads)
	}
	// Idle cores are part of the balance computation.
	if len(loads) != d.Top.NumCores() {
		t.Errorf("loads cover %d cores, want %d", len(loads), d.Top.NumCores())
	}
	if model.ResourceUtilization(partition.NewPlacement(), balanced) < 0 {
		t.Error("RU of empty placement should be non-negative")
	}
}

func TestCostModelSyncCost(t *testing.T) {
	d := testDomain()
	model := CostModel{Domain: d}
	p := partition.NewPlacement()
	p.Tables["A"] = &partition.TablePlacement{
		Table: "A", Bounds: btree.UniformBounds(100, 2),
		Cores: []topology.CoreID{0, 1}, // both on socket 0
	}
	p.Tables["B"] = &partition.TablePlacement{
		Table: "B", Bounds: btree.UniformBounds(100, 2),
		Cores: []topology.CoreID{12, 13}, // both on socket 3
	}
	sameSocket := SyncStat{Participants: []PartitionRef{{Table: "A", Partition: 0}, {Table: "A", Partition: 1}}, Bytes: 64}
	crossSocket := SyncStat{Participants: []PartitionRef{{Table: "A", Partition: 0}, {Table: "B", Partition: 0}}, Bytes: 64}
	if c := model.SyncCost(p, sameSocket); c != 0 {
		t.Errorf("same-socket sync cost = %f, want 0", c)
	}
	if c := model.SyncCost(p, crossSocket); c <= 0 {
		t.Errorf("cross-socket sync cost = %f, want > 0", c)
	}
	// Out-of-range partition indices are clamped, unknown tables skipped.
	weird := SyncStat{Participants: []PartitionRef{{Table: "A", Partition: 99}, {Table: "Z", Partition: 0}, {Table: "B", Partition: -1}}, Bytes: 64}
	if c := model.SyncCost(p, weird); c < 0 {
		t.Error("clamped sync cost should be non-negative")
	}
	stats := &Stats{Syncs: []SyncStat{{Participants: crossSocket.Participants, Bytes: 64, Count: 10}}}
	if ts := model.TransactionSync(p, stats); ts <= 0 {
		t.Error("TransactionSync should be positive for cross-socket signatures")
	}
}

func TestPlannerBalancesSkewedLoad(t *testing.T) {
	d := testDomain()
	model := CostModel{Domain: d}
	planner := NewPlanner(model, 10)
	if NewPlanner(model, 0).SubPartitions != DefaultSubPartitions {
		t.Error("planner should default the sub-partition count")
	}

	// One table, currently 4 uniform partitions on 4 cores, but all of the
	// load hits the first 20% of the key space.
	current := partition.NewPlacement()
	current.Tables["A"] = &partition.TablePlacement{
		Table:  "A",
		Bounds: btree.UniformBounds(1000, 4),
		Cores:  []topology.CoreID{0, 1, 2, 3},
	}
	maxKeys := map[string]schema.Key{"A": schema.KeyFromInt(1000)}

	stats := &Stats{
		Sub:     map[string][][]SubLoad{"A": make([][]SubLoad, 4)},
		Bounds:  map[string][]schema.Key{"A": btree.UniformBounds(1000, 4)},
		MaxKeys: maxKeys,
	}
	for p := 0; p < 4; p++ {
		stats.Sub["A"][p] = make([]SubLoad, 10)
	}
	// Partition 0 sub-partitions 0..7 are hot (keys 0..200).
	for sp := 0; sp < 8; sp++ {
		stats.Sub["A"][0][sp] = SubLoad{Cost: 1000, Actions: 100}
	}

	proposed := planner.ChoosePartitioning(current, stats, maxKeys)
	if err := proposed.Validate(); err != nil {
		t.Fatalf("proposed placement invalid: %v", err)
	}
	ruBefore := model.ResourceUtilization(current, stats)
	ruAfter := model.ResourceUtilization(proposed, stats)
	if ruAfter >= ruBefore {
		t.Errorf("Algorithm 1 did not improve balance: before %f, after %f", ruBefore, ruAfter)
	}
	// The hot key range should now be covered by more than one partition.
	tp := proposed.Tables["A"]
	hotParts := map[int]bool{}
	for k := int64(0); k < 200; k += 10 {
		hotParts[tp.PartitionFor(schema.KeyFromInt(k))] = true
	}
	if len(hotParts) < 2 {
		t.Errorf("hot range still owned by %d partition(s)", len(hotParts))
	}
}

func TestPlannerPlacementReducesSyncCost(t *testing.T) {
	d := testDomain()
	model := CostModel{Domain: d}
	planner := NewPlanner(model, 10)

	// Two tables, one partition each, placed on different sockets, with a
	// frequent synchronization point between them.
	p := partition.NewPlacement()
	p.Tables["A"] = &partition.TablePlacement{Table: "A", Bounds: []schema.Key{0}, Cores: []topology.CoreID{0}}
	p.Tables["B"] = &partition.TablePlacement{Table: "B", Bounds: []schema.Key{0}, Cores: []topology.CoreID{15}}
	stats := &Stats{
		Sub: map[string][][]SubLoad{
			"A": {{{Cost: 100}}},
			"B": {{{Cost: 100}}},
		},
		Syncs: []SyncStat{{
			Participants: []PartitionRef{{Table: "A", Partition: 0}, {Table: "B", Partition: 0}},
			Count:        1000,
			Bytes:        64,
		}},
	}
	before := model.TransactionSync(p, stats)
	placed := planner.ChoosePlacement(p, stats)
	after := model.TransactionSync(placed, stats)
	if after >= before {
		t.Errorf("Algorithm 2 did not reduce sync cost: before %f, after %f", before, after)
	}
	// With no sync stats the placement is returned unchanged.
	same := planner.ChoosePlacement(p, &Stats{})
	if same.Tables["B"].Cores[0] != 15 {
		t.Error("placement changed with no sync information")
	}
	// Full two-step plan stays valid.
	full := planner.Plan(p, stats, map[string]schema.Key{"A": 100, "B": 100})
	if err := full.Validate(); err != nil {
		t.Fatalf("full plan invalid: %v", err)
	}
}

func TestIntervalController(t *testing.T) {
	cfg := DefaultIntervalConfig()
	c := NewIntervalController(cfg)
	if c.Interval() != vclock.Nanos(time.Second) {
		t.Fatalf("initial interval = %v", c.Interval())
	}
	// First observation has no history: keep monitoring.
	if d := c.Observe(1000); d != KeepMonitoring {
		t.Errorf("first observation decision = %v", d)
	}
	// Stable throughput doubles the interval up to the maximum (8s).
	for i := 0; i < 6; i++ {
		if d := c.Observe(1000); d != KeepMonitoring {
			t.Fatalf("stable observation %d decision = %v", i, d)
		}
	}
	if c.Interval() != vclock.Nanos(8*time.Second) {
		t.Errorf("interval after stability = %v, want 8s", c.Interval().Duration())
	}
	if len(c.History()) != cfg.History {
		t.Errorf("history length = %d", len(c.History()))
	}
	// A big drop triggers evaluation.
	if d := c.Observe(200); d != Evaluate {
		t.Errorf("throughput drop decision = %v, want Evaluate", d)
	}
	// After repartitioning the interval resets to 1s.
	c.Repartitioned()
	if c.Interval() != vclock.Nanos(time.Second) || len(c.History()) != 0 {
		t.Error("Repartitioned did not reset the controller")
	}
	// Zero-throughput history followed by work triggers evaluation.
	c2 := NewIntervalController(IntervalConfig{})
	c2.Observe(0)
	if d := c2.Observe(0); d != KeepMonitoring {
		t.Errorf("all-zero throughput decision = %v", d)
	}
	if d := c2.Observe(500); d != Evaluate {
		t.Errorf("work after idle decision = %v, want Evaluate", d)
	}
}

func TestBuildPlanAndExecute(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 2, CoresPerSocket: 2})
	d := numa.MustNewDomain(top, numa.DefaultCostModel())
	store := storage.NewManager(d)
	def := &schema.Table{
		Name:       "A",
		Columns:    []schema.Column{{Name: "id", Type: schema.Int64}, {Name: "v", Type: schema.Int64}},
		PrimaryKey: []string{"id"},
	}
	tbl, err := store.CreateTable(def, btree.UniformBounds(1000, 2), []topology.SocketID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl.LoadFunc(1000, func(i int) schema.Row { return schema.Row{int64(i), int64(i)} })

	current := partition.NewPlacement()
	current.Tables["A"] = &partition.TablePlacement{
		Table: "A", Bounds: btree.UniformBounds(1000, 2), Cores: []topology.CoreID{0, 2},
	}
	desired := partition.NewPlacement()
	desired.Tables["A"] = &partition.TablePlacement{
		Table: "A", Bounds: btree.UniformBounds(1000, 4), Cores: []topology.CoreID{0, 2, 1, 3},
	}

	plan := BuildPlan(current, desired, top)
	if plan.Empty() {
		t.Fatal("plan should not be empty")
	}
	if plan.Splits() != 2 {
		t.Errorf("Splits = %d, want 2 (two new boundaries)", plan.Splits())
	}
	if plan.Merges() != 0 {
		t.Errorf("Merges = %d, want 0", plan.Merges())
	}
	if plan.Moves() == 0 {
		t.Error("expected at least one move (partition 1 changes socket)")
	}

	exec := NewExecutor(ExecutorConfig{}, d, store)
	out, err := exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Actions == 0 || out.Cost <= 0 {
		t.Errorf("outcome = %+v", out)
	}
	if tbl.NumPartitions() != 4 {
		t.Errorf("table has %d partitions after repartitioning, want 4", tbl.NumPartitions())
	}
	if tbl.Len() != 1000 {
		t.Errorf("rows lost: %d", tbl.Len())
	}
	// Homes follow the owning cores' sockets.
	if tbl.Home(3) != top.SocketOf(3) {
		t.Errorf("partition 3 homed on %d", tbl.Home(3))
	}

	// Reverse plan: merges back to 2 partitions.
	back := BuildPlan(desired, current, top)
	if back.Merges() != 2 {
		t.Errorf("reverse plan merges = %d, want 2", back.Merges())
	}
	if _, err := exec.Execute(back); err != nil {
		t.Fatal(err)
	}
	if tbl.NumPartitions() != 2 || tbl.Len() != 1000 {
		t.Errorf("after reverse: %d partitions, %d rows", tbl.NumPartitions(), tbl.Len())
	}

	// Executing an empty or nil plan is free.
	if out, err := exec.Execute(nil); err != nil || out.Actions != 0 {
		t.Error("nil plan should be a no-op")
	}
	if out, err := exec.Execute(&Plan{New: current.Clone()}); err != nil || out.Cost != 0 {
		t.Errorf("empty plan should be free, got %+v err %v", out, err)
	}
	// A plan referencing an unknown table errors.
	badPlan := &Plan{
		Actions: []RepartitionAction{{Kind: SplitAction, Table: "nope", Key: 5}},
		New:     current.Clone(),
	}
	if _, err := exec.Execute(badPlan); err == nil {
		t.Error("unknown table should error")
	}
}

func TestActionKindString(t *testing.T) {
	for _, k := range []ActionKind{SplitAction, MergeAction, MoveAction, ActionKind(9)} {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
}

func TestRepartitionCostScalesWithActions(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 4, CoresPerSocket: 4})
	d := numa.MustNewDomain(top, numa.DefaultCostModel())

	costOfSplit := func(nSplits int) vclock.Nanos {
		store := storage.NewManager(d)
		def := &schema.Table{
			Name:       "A",
			Columns:    []schema.Column{{Name: "id", Type: schema.Int64}},
			PrimaryKey: []string{"id"},
		}
		tbl, _ := store.CreateTable(def, []schema.Key{0}, nil)
		tbl.LoadFunc(8000, func(i int) schema.Row { return schema.Row{int64(i)} })
		current := partition.NewPlacement()
		current.Tables["A"] = &partition.TablePlacement{Table: "A", Bounds: []schema.Key{0}, Cores: []topology.CoreID{0}}
		desired := partition.NewPlacement()
		desired.Tables["A"] = &partition.TablePlacement{
			Table:  "A",
			Bounds: btree.UniformBounds(8000, nSplits+1),
			Cores:  make([]topology.CoreID, nSplits+1),
		}
		plan := BuildPlan(current, desired, top)
		exec := NewExecutor(DefaultExecutorConfig(), d, store)
		out, err := exec.Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		return out.Cost
	}
	if costOfSplit(16) <= costOfSplit(4) {
		t.Error("more repartitioning actions should cost more")
	}
}

// TestResourceUtilizationWeighsCoreCapacity asserts the balance metric
// divides per-core load by core speed: on a hybrid part, routing the heavy
// partition to an efficiency core must score as more imbalanced than routing
// it to a full-speed core, so the placement search prefers loading P-cores.
func TestResourceUtilizationWeighsCoreCapacity(t *testing.T) {
	top := topology.MustNew(topology.Config{
		Sockets: 1, CoresPerSocket: 2,
		CoreSpeeds: []float64{1, 0.5},
	})
	m := CostModel{Domain: numa.MustNewDomain(top, numa.DefaultCostModel())}
	stats := &Stats{Sub: map[string][][]SubLoad{
		"t": {{{Cost: 3000}}, {{Cost: 1000}}},
	}}
	place := func(heavy topology.CoreID, light topology.CoreID) *partition.Placement {
		p := partition.NewPlacement()
		p.Tables["t"] = &partition.TablePlacement{
			Table:  "t",
			Bounds: []schema.Key{0, 500},
			Cores:  []topology.CoreID{heavy, light},
		}
		return p
	}
	onFast := m.ResourceUtilization(place(0, 1), stats)
	onSlow := m.ResourceUtilization(place(1, 0), stats)
	if !(onFast < onSlow) {
		t.Errorf("heavy partition on the P-core should balance better: RU fast %f, slow %f", onFast, onSlow)
	}
	// On a uniform machine the two assignments are symmetric.
	uni := CostModel{Domain: numa.MustNewDomain(topology.MustNew(topology.Config{Sockets: 1, CoresPerSocket: 2}), numa.DefaultCostModel())}
	if a, b := uni.ResourceUtilization(place(0, 1), stats), uni.ResourceUtilization(place(1, 0), stats); a != b {
		t.Errorf("uniform machine should score symmetric assignments equally: %f vs %f", a, b)
	}
}
