package core

import (
	"fmt"

	"atrapos/internal/numa"
	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/storage"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// ActionKind labels one repartitioning action.
type ActionKind int

const (
	// SplitAction divides an existing partition into two at a key.
	SplitAction ActionKind = iota
	// MergeAction combines two adjacent partitions.
	MergeAction
	// MoveAction migrates a partition to a core on a different socket (a
	// rearrangement of the placement without changing the boundaries).
	MoveAction
)

// String implements fmt.Stringer.
func (k ActionKind) String() string {
	switch k {
	case SplitAction:
		return "split"
	case MergeAction:
		return "merge"
	case MoveAction:
		return "move"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// RepartitionAction is one step of a repartitioning plan.
type RepartitionAction struct {
	Kind  ActionKind
	Table string
	// Key is the split key for SplitAction.
	Key schema.Key
	// Partition is the partition index for MergeAction (merge with its right
	// neighbour) and MoveAction.
	Partition int
	// Target is the destination core for MoveAction.
	Target topology.CoreID
}

// Plan is an ordered list of repartitioning actions leading from one
// placement to another, together with the new placement itself.
type Plan struct {
	Actions []RepartitionAction
	New     *partition.Placement
}

// Splits, Merges and Moves count the actions by kind.
func (p *Plan) Splits() int { return p.count(SplitAction) }

// Merges counts the merge actions of the plan.
func (p *Plan) Merges() int { return p.count(MergeAction) }

// Moves counts the move (rearrange) actions of the plan.
func (p *Plan) Moves() int { return p.count(MoveAction) }

func (p *Plan) count(kind ActionKind) int {
	n := 0
	for _, a := range p.Actions {
		if a.Kind == kind {
			n++
		}
	}
	return n
}

// Empty reports whether the plan changes nothing.
func (p *Plan) Empty() bool { return len(p.Actions) == 0 }

// BuildPlan diffs the current placement against the desired one and produces
// the repartitioning actions required: splits for new boundaries, merges for
// removed boundaries and moves for partitions whose owning socket changes.
func BuildPlan(current, desired *partition.Placement, top *topology.Topology) *Plan {
	plan := &Plan{New: desired.Clone()}
	for _, name := range desired.TableNames() {
		want := desired.Tables[name]
		have, ok := current.Tables[name]
		if !ok {
			continue
		}
		haveSet := make(map[schema.Key]bool, len(have.Bounds))
		for _, b := range have.Bounds {
			haveSet[b] = true
		}
		wantSet := make(map[schema.Key]bool, len(want.Bounds))
		for _, b := range want.Bounds {
			wantSet[b] = true
		}
		// New boundaries require splits.
		for _, b := range want.Bounds {
			if b != 0 && !haveSet[b] {
				plan.Actions = append(plan.Actions, RepartitionAction{Kind: SplitAction, Table: name, Key: b})
			}
		}
		// Dropped boundaries require merges (of the partition to the left of
		// the removed boundary with its right neighbour).
		for i, b := range have.Bounds {
			if b != 0 && !wantSet[b] {
				plan.Actions = append(plan.Actions, RepartitionAction{Kind: MergeAction, Table: name, Partition: i - 1})
			}
		}
		// Placement moves: a partition of the desired placement whose owning
		// socket differs from the socket owning that key range today.
		for i, c := range want.Cores {
			key := want.Bounds[i]
			curCore := have.CoreFor(key)
			if top.SocketOf(curCore) != top.SocketOf(c) {
				plan.Actions = append(plan.Actions, RepartitionAction{Kind: MoveAction, Table: name, Partition: i, Target: c})
			}
		}
	}
	return plan
}

// ExecutorConfig tunes the modeled cost of repartitioning actions. The values
// reproduce the scale of Figure 9: individual actions complete in a couple of
// milliseconds and the costliest 80-action sequence stays under ~200 ms.
type ExecutorConfig struct {
	// PerRowCost is the virtual cost of moving one row between sub-trees.
	PerRowCost numa.Cost
	// PerActionCost is the fixed metadata cost of one action (updating the
	// partition table, rebuilding the local lock table, queues, ...).
	PerActionCost numa.Cost
	// SplitMetadataFactor makes splits more expensive than merges, as the
	// paper observes (splits update more metadata).
	SplitMetadataFactor float64
}

// DefaultExecutorConfig returns costs calibrated to the Figure 9 measurements.
func DefaultExecutorConfig() ExecutorConfig {
	return ExecutorConfig{
		PerRowCost:          60,
		PerActionCost:       250_000,
		SplitMetadataFactor: 1.6,
	}
}

// Executor applies repartitioning plans to the physical tables.
type Executor struct {
	cfg    ExecutorConfig
	domain *numa.Domain
	store  *storage.Manager
}

// NewExecutor builds an executor over the storage manager.
func NewExecutor(cfg ExecutorConfig, domain *numa.Domain, store *storage.Manager) *Executor {
	if cfg.PerRowCost <= 0 {
		cfg.PerRowCost = DefaultExecutorConfig().PerRowCost
	}
	if cfg.PerActionCost <= 0 {
		cfg.PerActionCost = DefaultExecutorConfig().PerActionCost
	}
	if cfg.SplitMetadataFactor <= 0 {
		cfg.SplitMetadataFactor = DefaultExecutorConfig().SplitMetadataFactor
	}
	return &Executor{cfg: cfg, domain: domain, store: store}
}

// Outcome reports what a repartitioning did and what it cost. The engine
// pauses regular actions and charges the cost to every worker, which is how
// the paper executes repartitioning actions without interleaving them with
// regular actions.
type Outcome struct {
	Actions   int
	RowsMoved int
	Cost      vclock.Nanos
}

// Execute applies the plan to the physical tables: splits and merges change
// the multi-rooted B-trees; moves re-home the partition data. It returns the
// modeled cost of the repartitioning.
func (e *Executor) Execute(plan *Plan) (Outcome, error) {
	var out Outcome
	if plan == nil || plan.Empty() {
		return out, nil
	}
	// Splits and merges first (boundary changes), then re-home every
	// partition according to the new placement.
	for _, a := range plan.Actions {
		tbl, err := e.store.Table(a.Table)
		if err != nil {
			return out, err
		}
		switch a.Kind {
		case SplitAction:
			_, moved, err := tbl.Split(a.Key)
			if err != nil {
				// Splitting at an existing bound can happen when merges
				// already restructured the table; treat as a no-op.
				continue
			}
			out.RowsMoved += moved
			out.Cost += vclock.Nanos(float64(e.cfg.PerActionCost)*e.cfg.SplitMetadataFactor) +
				vclock.Nanos(moved)*vclock.Nanos(e.cfg.PerRowCost)
			out.Actions++
		case MergeAction:
			if a.Partition < 0 || a.Partition+1 >= tbl.NumPartitions() {
				continue
			}
			moved, err := tbl.Merge(a.Partition)
			if err != nil {
				continue
			}
			out.RowsMoved += moved
			out.Cost += vclock.Nanos(e.cfg.PerActionCost) + vclock.Nanos(moved)*vclock.Nanos(e.cfg.PerRowCost)
			out.Actions++
		case MoveAction:
			out.Cost += vclock.Nanos(e.cfg.PerActionCost)
			out.Actions++
		}
	}
	// Bring the physical tables fully in line with the desired placement
	// (bounds may have drifted if some splits were skipped) and re-home the
	// partitions on the sockets of their owning cores.
	for _, name := range plan.New.TableNames() {
		tbl, err := e.store.Table(name)
		if err != nil {
			return out, err
		}
		tp := plan.New.Tables[name]
		homes := make([]topology.SocketID, len(tp.Cores))
		for i, c := range tp.Cores {
			homes[i] = e.domain.Top.SocketOf(c)
		}
		if !equalBounds(tbl.Bounds(), tp.Bounds) {
			moved, err := tbl.Repartition(tp.Bounds, homes)
			if err != nil {
				return out, fmt.Errorf("core: repartition of %s: %w", name, err)
			}
			out.RowsMoved += moved
			out.Cost += vclock.Nanos(moved) * vclock.Nanos(e.cfg.PerRowCost) / 4
		} else {
			for i, h := range homes {
				if err := tbl.SetHome(i, h); err != nil {
					return out, err
				}
			}
		}
	}
	return out, nil
}

func equalBounds(a, b []schema.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
