// Package core implements the paper's primary contribution: the ATraPos
// workload- and hardware-aware partitioning and placement mechanism. It
// contains the lightweight monitoring structures (Section V-D), the cost
// model combining resource utilization and transaction synchronization
// overhead (Section V-B), the two-step search strategy (Section V-C,
// Algorithms 1 and 2), the adaptive monitoring-interval controller and the
// repartitioning planner that turns a placement change into split, merge and
// rearrange actions.
//
// The package is engine-agnostic: it works on partition placements,
// aggregated workload statistics and a hardware topology, and returns new
// placements and repartitioning plans. The execution engine decides when to
// invoke it and applies its decisions.
package core

import (
	"atrapos/internal/numa"
	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// PartitionRef identifies one logical partition of one table.
type PartitionRef struct {
	Table     string
	Partition int
}

// SubLoad is the observed cost of the work routed to one sub-partition.
type SubLoad struct {
	// Bounds are implied by the parent partition; Cost is the accumulated
	// execution cost (virtual ns) of the actions that hit this sub-partition.
	Cost vclock.Nanos
	// Actions is the number of actions observed.
	Actions int64
}

// SyncStat aggregates one synchronization-point signature: the set of
// partitions that had to exchange data, how often it occurred and how many
// bytes moved each time.
type SyncStat struct {
	Participants []PartitionRef
	Count        int64
	Bytes        int64 // average bytes per occurrence
}

// Stats is the aggregated dynamic workload information collected by the
// monitoring mechanism over one interval.
type Stats struct {
	// Sub holds per-table, per-partition, per-sub-partition loads.
	Sub map[string][][]SubLoad
	// Bounds holds the partition lower bounds the statistics were collected
	// under, so the loads can be re-mapped onto candidate placements with a
	// different partition structure.
	Bounds map[string][]schema.Key
	// MaxKeys holds the upper end of each table's key space.
	MaxKeys map[string]schema.Key
	// Syncs holds the synchronization-point signatures observed.
	Syncs []SyncStat
	// Window is the virtual time span the statistics cover.
	Window vclock.Nanos

	// Transaction-shape counters (RecordTxn): how many transactions the
	// interval saw, how many crossed instance boundaries, and their action
	// profile. They drive the adaptive-granularity scorer.
	Txns          int64
	MultisiteTxns int64
	Actions       int64
	Writes        int64
	// Overwrites counts writes that hit a row their own transaction had
	// already written (self-canceling or overwriting pairs).
	Overwrites int64
	// WriteHot is the hottest write-key histogram slot's count
	// (Monitor.RecordWriteKey); divided by Writes it approximates hot-key
	// concentration. Both feed the coalescing term of the granularity scorer.
	WriteHot int64
	// SyncBytes is the total synchronization-point payload of the interval's
	// multisite transactions.
	SyncBytes int64
}

// MultisiteShare returns the fraction of the interval's transactions that
// crossed instance boundaries, in [0,1].
func (s *Stats) MultisiteShare() float64 {
	if s.Txns == 0 {
		return 0
	}
	return float64(s.MultisiteTxns) / float64(s.Txns)
}

// ActionsPerTxn returns the interval's average action count per transaction.
func (s *Stats) ActionsPerTxn() float64 {
	if s.Txns == 0 {
		return 0
	}
	return float64(s.Actions) / float64(s.Txns)
}

// WritesPerTxn returns the interval's average write count per transaction.
func (s *Stats) WritesPerTxn() float64 {
	if s.Txns == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Txns)
}

// OverwriteShare returns the fraction of the interval's writes that re-wrote
// a row their own transaction had already written, in [0,1].
func (s *Stats) OverwriteShare() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.Overwrites) / float64(s.Writes)
}

// HotWriteShare returns the hottest write-key histogram slot's share of all
// recorded writes, in [0,1] — an upper-bound estimate of how concentrated the
// write keys are.
func (s *Stats) HotWriteShare() float64 {
	if s.Writes == 0 {
		return 0
	}
	h := float64(s.WriteHot) / float64(s.Writes)
	if h > 1 {
		h = 1
	}
	return h
}

// SyncBytesPerMultisiteTxn returns the average synchronization payload of one
// multisite transaction.
func (s *Stats) SyncBytesPerMultisiteTxn() int {
	if s.MultisiteTxns == 0 {
		return 0
	}
	return int(s.SyncBytes / s.MultisiteTxns)
}

// TotalCost returns the total execution cost across all sub-partitions.
func (s *Stats) TotalCost() vclock.Nanos {
	var total vclock.Nanos
	for _, parts := range s.Sub {
		for _, subs := range parts {
			for _, sl := range subs {
				total += sl.Cost
			}
		}
	}
	return total
}

// TableCost returns the total execution cost of one table.
func (s *Stats) TableCost(table string) vclock.Nanos {
	var total vclock.Nanos
	for _, subs := range s.Sub[table] {
		for _, sl := range subs {
			total += sl.Cost
		}
	}
	return total
}

// CostModel evaluates placements against observed statistics, implementing
// the formulas of Section V-B.
type CostModel struct {
	Domain *numa.Domain
}

// coreLoads computes RU(c) for every core under placement p: the sum of the
// costs of all actions that use partitions placed on that core, divided by
// the core's relative speed — work assigned to an efficiency core occupies
// it proportionally longer, so capacity-weighted utilization is what the
// balance metric must compare. On uniform machines the weighting is a no-op.
// When the statistics carry the key bounds they were collected under, each
// sub-partition's load is re-mapped onto the candidate placement by its key
// range, so placements with a different partition structure are evaluated
// correctly; otherwise the loads are aligned by partition index.
func (m CostModel) coreLoads(p *partition.Placement, stats *Stats) map[topology.CoreID]float64 {
	loads := make(map[topology.CoreID]float64)
	// Every alive core is a candidate even if it currently has no partitions,
	// so under-utilized cores pull the average down as the paper intends.
	for _, c := range m.Domain.Top.AliveCores() {
		loads[c.ID] = 0
	}
	for table, tp := range p.Tables {
		partStats := stats.Sub[table]
		if len(tp.Cores) == 0 {
			continue
		}
		bounds := stats.Bounds[table]
		if bounds == nil {
			// No key information: align by partition index.
			for i, core := range tp.Cores {
				var cost float64
				if i < len(partStats) {
					for _, sl := range partStats[i] {
						cost += float64(sl.Cost)
					}
				}
				loads[core] += cost
			}
			continue
		}
		maxKey := stats.MaxKeys[table]
		for op, subs := range partStats {
			lo := schema.Key(0)
			if op < len(bounds) {
				lo = bounds[op]
			}
			hi := maxKey
			if op+1 < len(bounds) {
				hi = bounds[op+1]
			}
			if hi <= lo {
				hi = lo + 1
			}
			n := len(subs)
			if n == 0 {
				continue
			}
			span := uint64(hi-lo) / uint64(n)
			if span == 0 {
				span = 1
			}
			for sp, sl := range subs {
				if sl.Cost == 0 {
					continue
				}
				mid := lo + schema.Key(uint64(sp)*span+span/2)
				idx := tp.PartitionFor(mid)
				if idx < 0 {
					idx = 0
				}
				if idx >= len(tp.Cores) {
					idx = len(tp.Cores) - 1
				}
				loads[tp.Cores[idx]] += float64(sl.Cost)
			}
		}
	}
	if m.Domain.Top.Heterogeneous() {
		for c := range loads {
			if speed := m.Domain.Top.SpeedOf(c); speed != 1 {
				loads[c] /= speed
			}
		}
	}
	return loads
}

// ResourceUtilization computes RU(S,W) = sum over cores of |RU(c) - RUavg|,
// the imbalance metric Algorithm 1 minimizes. Lower is better; 0 means the
// load is perfectly balanced.
func (m CostModel) ResourceUtilization(p *partition.Placement, stats *Stats) float64 {
	loads := m.coreLoads(p, stats)
	if len(loads) == 0 {
		return 0
	}
	var sum float64
	for _, l := range loads {
		sum += l
	}
	avg := sum / float64(len(loads))
	var ru float64
	for _, l := range loads {
		d := l - avg
		if d < 0 {
			d = -d
		}
		ru += d
	}
	return ru
}

// CoreLoads exposes the per-core load estimate for observability and tests.
func (m CostModel) CoreLoads(p *partition.Placement, stats *Stats) map[topology.CoreID]float64 {
	return m.coreLoads(p, stats)
}

// SyncCost computes the hierarchical generalization of the paper's
// C(s) = (nsocket(s)-1) * Distance(s) * Size(s) for one synchronization
// signature under placement p: islands are counted at the die level and each
// pair of participating islands contributes its socket hops plus its die
// hops scaled by how much cheaper a die crossing is than a socket crossing
// (DieByteTransferPerHop / ByteTransferPerHop). Co-locating participants on
// one socket therefore shrinks the cost, and co-locating them on one die
// drives it to zero — which is what makes the placement search prefer the
// cheapest enclosing island. On flat machines the formula reduces to the
// paper's socket-level one exactly.
func (m CostModel) SyncCost(p *partition.Placement, sync SyncStat) float64 {
	top := m.Domain.Top
	cores := make([]topology.CoreID, 0, len(sync.Participants))
	for _, ref := range sync.Participants {
		tp, ok := p.Tables[ref.Table]
		if !ok || len(tp.Cores) == 0 {
			continue
		}
		idx := ref.Partition
		if idx < 0 {
			idx = 0
		}
		if idx >= len(tp.Cores) {
			idx = len(tp.Cores) - 1
		}
		cores = append(cores, tp.Cores[idx])
	}
	dieFrac := 0.5
	if m.Domain.Model.ByteTransferPerHop > 0 {
		dieFrac = float64(m.Domain.Model.DieByteTransferPerHop) / float64(m.Domain.Model.ByteTransferPerHop)
	}
	// Distinct dies, preserving first-seen order.
	uniq := cores[:0]
	for i, c := range cores {
		first := true
		for j := 0; j < i; j++ {
			if top.DieOf(cores[j]) == top.DieOf(c) {
				first = false
				break
			}
		}
		if first {
			uniq = append(uniq, c)
		}
	}
	if len(uniq) <= 1 {
		return 0
	}
	var sum float64
	pairs := 0
	for i := 0; i < len(uniq); i++ {
		for j := i + 1; j < len(uniq); j++ {
			sockHops, dieHops := top.CorePath(uniq[i], uniq[j])
			sum += float64(sockHops) + float64(dieHops)*dieFrac
			pairs++
		}
	}
	return float64(len(uniq)-1) * (sum / float64(pairs)) * float64(sync.Bytes)
}

// TransactionSync computes TS(S,W): the total synchronization overhead of the
// workload under placement p, weighting each signature by how often it occurred.
func (m CostModel) TransactionSync(p *partition.Placement, stats *Stats) float64 {
	var total float64
	for _, sync := range stats.Syncs {
		total += m.SyncCost(p, sync) * float64(sync.Count)
	}
	return total
}
