package core

import (
	"math"
	"sort"

	"atrapos/internal/vclock"
)

// Calibration holds per-component correction factors fitted from executed
// (measured wall time) versus priced (virtual time) runs of the same
// workload. Factor f_c scales the priced contribution of cost component c; a
// factor above 1 means the cost model under-prices that component relative to
// real execution, below 1 that it over-prices it.
//
// Factors are *relative*: measured wall nanoseconds and virtual nanoseconds
// are incommensurable units, so FitCalibration normalizes every component's
// measured/priced ratio by the Execution component's ratio. Execution is the
// anchor (factor exactly 1) because both modes perform the same index work
// per transaction; the remaining factors then express how much the model
// distorts the *mix* — which is all a ranking over island levels can be
// sensitive to.
type Calibration struct {
	Factors [vclock.NumComponents]float64
}

// IdentityCalibration returns the no-op calibration (all factors 1).
func IdentityCalibration() *Calibration {
	c := &Calibration{}
	for i := range c.Factors {
		c.Factors[i] = 1
	}
	return c
}

// Identity reports whether every factor is exactly 1.
func (c *Calibration) Identity() bool {
	for _, f := range c.Factors {
		if f != 1 {
			return false
		}
	}
	return true
}

// Factor returns the correction factor for one component (1 for a nil
// calibration).
func (c *Calibration) Factor(comp vclock.Component) float64 {
	if c == nil {
		return 1
	}
	return c.Factors[comp]
}

// Predict applies the calibration to a priced per-component breakdown,
// returning the corrected total in (relative) virtual nanoseconds.
func (c *Calibration) Predict(b vclock.Breakdown) float64 {
	var sum float64
	for comp, n := range b.ByComp {
		sum += c.Factor(comp) * float64(n)
	}
	return sum
}

// Factor clamp bounds: a component whose measured/priced ratio falls outside
// [0.05, 20] of the anchor is almost certainly a measurement artifact (a
// component one mode barely exercises), and letting it through would let one
// noisy term dominate every corrected score.
const (
	calMinFactor = 0.05
	calMaxFactor = 20
)

// FitCalibration fits correction factors from paired per-component totals:
// measured[c] is the wall nanoseconds the executed backend spent in component
// c (summed over a sweep), priced[c] the virtual nanoseconds the cost model
// charged to the same component over the same grid. Components that either
// side left (near-)zero keep factor 1 — there is nothing to fit and nothing
// to correct. The Execution component anchors the unit conversion and is 1 by
// construction.
func FitCalibration(measured, priced [vclock.NumComponents]int64) *Calibration {
	cal := IdentityCalibration()
	anchor := vclock.Execution
	if measured[anchor] <= 0 || priced[anchor] <= 0 {
		return cal
	}
	anchorRatio := float64(measured[anchor]) / float64(priced[anchor])
	for c := 0; c < vclock.NumComponents; c++ {
		if vclock.Component(c) == anchor {
			continue
		}
		if measured[c] <= 0 || priced[c] <= 0 {
			continue
		}
		f := (float64(measured[c]) / float64(priced[c])) / anchorRatio
		if f < calMinFactor {
			f = calMinFactor
		}
		if f > calMaxFactor {
			f = calMaxFactor
		}
		cal.Factors[c] = f
	}
	return cal
}

// FactorNames returns the factors keyed by component name, for reports.
func (c *Calibration) FactorNames() map[string]float64 {
	out := make(map[string]float64, vclock.NumComponents)
	for i := 0; i < vclock.NumComponents; i++ {
		out[vclock.Component(i).String()] = c.Factor(vclock.Component(i))
	}
	return out
}

// Spearman computes the Spearman rank correlation between two equal-length
// series, with average ranks for ties. It returns 0 for degenerate inputs
// (fewer than two points, or a constant series, whose rank variance is zero).
func Spearman(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 0
	}
	ra := ranks(a)
	rb := ranks(b)
	var ma, mb float64
	for i := 0; i < n; i++ {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// ranks assigns 1-based average ranks (ties share the mean of their ranks).
func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		// positions i..j (0-based) share average rank.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
