package core

import (
	"sync"
	"testing"

	"atrapos/internal/btree"
	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// TestMonitorSealWhileRecording drives recorders concurrently with repeated
// seals and checks that every recorded action is eventually aggregated
// exactly once: the double buffer may defer a racing record to the next
// epoch, but it never loses or duplicates it.
func TestMonitorSealWhileRecording(t *testing.T) {
	m := NewMonitor(4)
	m.Register("a", []schema.Key{0, 500}, schema.KeyFromInt(1000))

	const workers = 4
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.RecordAction("a", schema.KeyFromInt(int64((w*perWorker+i)%1000)), 1)
				if i%10 == 0 {
					m.RecordSync([]PartitionRef{{Table: "a", Partition: 0}, {Table: "a", Partition: 1}}, 64)
				}
			}
		}(w)
	}

	var total int64
	var syncCount int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			stats := m.Seal()
			for _, parts := range stats.Sub {
				for _, subs := range parts {
					for _, sl := range subs {
						total += sl.Actions
					}
				}
			}
			for _, s := range stats.Syncs {
				syncCount += s.Count
			}
		}
	}()
	wg.Wait()
	<-done

	// Two final seals drain both epochs (a racing record may sit in either).
	for i := 0; i < 2; i++ {
		stats := m.Seal()
		for _, parts := range stats.Sub {
			for _, subs := range parts {
				for _, sl := range subs {
					total += sl.Actions
				}
			}
		}
		for _, s := range stats.Syncs {
			syncCount += s.Count
		}
	}

	if want := int64(workers * perWorker); total != want {
		t.Errorf("aggregated %d actions across epochs, want %d", total, want)
	}
	if want := int64(workers * perWorker / 10); syncCount != want {
		t.Errorf("aggregated %d sync occurrences, want %d", syncCount, want)
	}
}

// TestMonitorSealSteadyStateAllocs pins Seal's steady-state allocation
// behavior: once the reusable aggregate is warmed up (both epochs sealed
// once), a record-and-seal cycle must not allocate. Runs with many planner
// intervals — single slow device, high virtual time per txn — seal often
// enough that a per-seal allocation shows up in the fuzzer's whole-run
// allocs-per-txn budget.
func TestMonitorSealSteadyStateAllocs(t *testing.T) {
	m := NewMonitor(4)
	m.Register("a", btree.UniformBounds(1000, 8), schema.KeyFromInt(1000))
	refs := []PartitionRef{{Table: "a", Partition: 0}, {Table: "a", Partition: 5}}
	cycle := func() {
		for i := 0; i < 32; i++ {
			m.RecordAction("a", schema.KeyFromInt(int64(i*31%1000)), 10)
		}
		m.RecordSync(refs, 64)
		m.RecordTxn(4, 2, 1, true, 64)
		m.RecordWriteKey(uint64(12345))
		m.AdvanceWindow(vclock.Nanos(1000))
		m.Seal()
	}
	cycle()
	cycle() // warm both epochs' scratch paths
	if avg := testing.AllocsPerRun(50, cycle); avg > 0 {
		t.Errorf("steady-state record+seal cycle allocates %.1f objects", avg)
	}
}

// TestMonitorWindowLandsInSealedEpoch checks AdvanceWindow applies to the
// epoch the next Seal returns, and that the flip resets it.
func TestMonitorWindowLandsInSealedEpoch(t *testing.T) {
	m := NewMonitor(2)
	m.Register("a", []schema.Key{0}, schema.KeyFromInt(100))
	m.AdvanceWindow(vclock.Nanos(1234))
	if w := m.Seal().Window; w != 1234 {
		t.Errorf("sealed window = %d, want 1234", w)
	}
	if w := m.Seal().Window; w != 0 {
		t.Errorf("fresh epoch window = %d, want 0", w)
	}
}

// TestChoosePartitioningPreservesIdleTables checks that tables with no load
// in the monitoring window keep their current placement verbatim, so the
// plan diff reports them unchanged and repartitioning skips them.
func TestChoosePartitioningPreservesIdleTables(t *testing.T) {
	d := testDomain()
	planner := NewPlanner(CostModel{Domain: d}, 10)
	planner.PreserveIdle = true

	current := partition.NewPlacement()
	current.Tables["hot"] = &partition.TablePlacement{
		Table:  "hot",
		Bounds: btree.UniformBounds(1000, 4),
		Cores:  []topology.CoreID{0, 1, 2, 3},
	}
	current.Tables["idle"] = &partition.TablePlacement{
		Table:  "idle",
		Bounds: btree.UniformBounds(1000, 3),
		Cores:  []topology.CoreID{5, 6, 7},
	}
	maxKeys := map[string]schema.Key{"hot": schema.KeyFromInt(1000), "idle": schema.KeyFromInt(1000)}

	stats := &Stats{
		Sub:     map[string][][]SubLoad{"hot": make([][]SubLoad, 4), "idle": make([][]SubLoad, 3)},
		Bounds:  map[string][]schema.Key{"hot": btree.UniformBounds(1000, 4), "idle": btree.UniformBounds(1000, 3)},
		MaxKeys: maxKeys,
	}
	for p := 0; p < 4; p++ {
		stats.Sub["hot"][p] = make([]SubLoad, 10)
		stats.Sub["hot"][p][0] = SubLoad{Cost: 1000, Actions: 10}
	}
	for p := 0; p < 3; p++ {
		stats.Sub["idle"][p] = make([]SubLoad, 10)
	}

	proposed := planner.ChoosePartitioning(current, stats, maxKeys)
	if err := proposed.Validate(); err != nil {
		t.Fatalf("proposed placement invalid: %v", err)
	}
	diff := partition.Diff(current, proposed)
	td := diff.Tables["idle"]
	if td == nil || td.Kind != partition.TableUnchanged {
		t.Errorf("idle table should be unchanged in the diff, got %+v", td)
	}

	// After a socket failure the idle table's placement must be re-derived.
	if err := d.Top.FailSocket(1); err != nil { // cores 4..7 die on the 4x4 box
		t.Fatal(err)
	}
	proposed = planner.ChoosePartitioning(current, stats, maxKeys)
	if err := proposed.Validate(); err != nil {
		t.Fatalf("post-failure placement invalid: %v", err)
	}
	for i, c := range proposed.Tables["idle"].Cores {
		if !d.Top.Alive(d.Top.SocketOf(c)) {
			t.Errorf("idle table partition %d still on dead core %d", i, c)
		}
	}
}
