package core

import (
	"time"

	"atrapos/internal/vclock"
)

// IntervalConfig tunes the adaptive monitoring interval controller.
type IntervalConfig struct {
	// Initial is the starting (and post-repartitioning) monitoring interval;
	// the paper uses 1 second.
	Initial vclock.Nanos
	// Max is the upper bound the interval can grow to; the paper uses 8 seconds.
	Max vclock.Nanos
	// StableThreshold is the relative throughput deviation below which the
	// workload is considered stable; the paper uses 10%.
	StableThreshold float64
	// History is how many previous measurements the deviation is computed
	// against; the paper uses 5.
	History int
}

// DefaultIntervalConfig returns the controller parameters used in the paper.
func DefaultIntervalConfig() IntervalConfig {
	return IntervalConfig{
		Initial:         vclock.Nanos(time.Second),
		Max:             vclock.Nanos(8 * time.Second),
		StableThreshold: 0.10,
		History:         5,
	}
}

func (c IntervalConfig) sanitized() IntervalConfig {
	if c.Initial <= 0 {
		c.Initial = vclock.Nanos(time.Second)
	}
	if c.Max < c.Initial {
		c.Max = c.Initial
	}
	if c.StableThreshold <= 0 {
		c.StableThreshold = 0.10
	}
	if c.History <= 0 {
		c.History = 5
	}
	return c
}

// Decision is the outcome of one monitoring interval.
type Decision int

const (
	// KeepMonitoring means the throughput is stable: relax the interval and
	// keep going without evaluating the model.
	KeepMonitoring Decision = iota
	// Evaluate means the throughput changed beyond the threshold: aggregate
	// the traces and evaluate the cost model (which may or may not lead to a
	// repartitioning).
	Evaluate
)

// IntervalController implements the adaptive monitoring schedule of Section
// V-D: start at the initial interval, double it while the throughput stays
// within the threshold of the average of the previous measurements (up to the
// maximum), and reset it to the initial value after a repartitioning.
type IntervalController struct {
	cfg      IntervalConfig
	interval vclock.Nanos
	history  []float64
}

// NewIntervalController builds a controller with the given configuration.
func NewIntervalController(cfg IntervalConfig) *IntervalController {
	cfg = cfg.sanitized()
	return &IntervalController{cfg: cfg, interval: cfg.Initial}
}

// Interval returns the current monitoring interval.
func (c *IntervalController) Interval() vclock.Nanos { return c.interval }

// Observe feeds the throughput measured over the interval that just ended and
// returns the decision for it. Stable throughput doubles the interval (up to
// Max); a deviation beyond the threshold asks the caller to evaluate the
// model and keeps the interval unchanged until the caller reports the outcome
// via Repartitioned or Stabilized.
func (c *IntervalController) Observe(throughput float64) Decision {
	defer func() {
		c.history = append(c.history, throughput)
		if len(c.history) > c.cfg.History {
			c.history = c.history[len(c.history)-c.cfg.History:]
		}
	}()
	if len(c.history) == 0 {
		return KeepMonitoring
	}
	var sum float64
	for _, h := range c.history {
		sum += h
	}
	avg := sum / float64(len(c.history))
	if avg <= 0 {
		if throughput > 0 {
			return Evaluate
		}
		return KeepMonitoring
	}
	dev := (throughput - avg) / avg
	if dev < 0 {
		dev = -dev
	}
	if dev <= c.cfg.StableThreshold {
		c.interval *= 2
		if c.interval > c.cfg.Max {
			c.interval = c.cfg.Max
		}
		return KeepMonitoring
	}
	return Evaluate
}

// Repartitioned tells the controller that a repartitioning was executed: the
// interval resets to its initial value and the throughput history is cleared,
// so the controller stays alert while the system settles.
func (c *IntervalController) Repartitioned() {
	c.interval = c.cfg.Initial
	c.history = nil
}

// History returns a copy of the retained throughput measurements.
func (c *IntervalController) History() []float64 {
	return append([]float64(nil), c.history...)
}
