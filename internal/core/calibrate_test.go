package core

import (
	"math"
	"testing"

	"atrapos/internal/vclock"
)

func TestSpearman(t *testing.T) {
	cases := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"perfect", []float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}, 1},
		{"inverse", []float64{1, 2, 3, 4}, []float64{40, 30, 20, 10}, -1},
		{"monotone nonlinear", []float64{1, 2, 3, 4}, []float64{1, 100, 101, 1e6}, 1},
		{"constant", []float64{1, 2, 3}, []float64{5, 5, 5}, 0},
		{"short", []float64{1}, []float64{2}, 0},
		{"mismatch", []float64{1, 2}, []float64{1}, 0},
	}
	for _, c := range cases {
		if got := Spearman(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Spearman = %v, want %v", c.name, got, c.want)
		}
	}
	// Ties get average ranks: a has a tie, b orders them oppositely within
	// the tie — correlation stays high but below 1.
	got := Spearman([]float64{1, 2, 2, 4}, []float64{1, 3, 2, 4})
	if !(got > 0.7 && got < 1) {
		t.Errorf("tied Spearman = %v, want in (0.7, 1)", got)
	}
}

func TestFitCalibration(t *testing.T) {
	var measured, priced [vclock.NumComponents]int64
	// Execution anchors: measured is 2x priced overall.
	measured[vclock.Execution] = 2000
	priced[vclock.Execution] = 1000
	// Communication is 4x under-priced relative to the anchor.
	measured[vclock.Communication] = 8000
	priced[vclock.Communication] = 1000
	// Logging matches the anchor ratio exactly.
	measured[vclock.Logging] = 500
	priced[vclock.Logging] = 250
	// Locking unexercised on the measured side: keeps factor 1.
	measured[vclock.Locking] = 0
	priced[vclock.Locking] = 700

	cal := FitCalibration(measured, priced)
	if f := cal.Factor(vclock.Execution); f != 1 {
		t.Errorf("Execution factor = %v, want anchor 1", f)
	}
	if f := cal.Factor(vclock.Communication); math.Abs(f-4) > 1e-9 {
		t.Errorf("Communication factor = %v, want 4", f)
	}
	if f := cal.Factor(vclock.Logging); math.Abs(f-1) > 1e-9 {
		t.Errorf("Logging factor = %v, want 1", f)
	}
	if f := cal.Factor(vclock.Locking); f != 1 {
		t.Errorf("Locking factor = %v, want untouched 1", f)
	}
	if cal.Identity() {
		t.Error("fitted calibration reported as identity")
	}
}

func TestFitCalibrationDegenerate(t *testing.T) {
	var measured, priced [vclock.NumComponents]int64
	if cal := FitCalibration(measured, priced); !cal.Identity() {
		t.Error("zero inputs must yield identity")
	}
	// Extreme ratios clamp.
	measured[vclock.Execution] = 1000
	priced[vclock.Execution] = 1000
	measured[vclock.Communication] = 1
	priced[vclock.Communication] = 1 << 40
	measured[vclock.Management] = 1 << 40
	priced[vclock.Management] = 1
	cal := FitCalibration(measured, priced)
	if f := cal.Factor(vclock.Communication); f != calMinFactor {
		t.Errorf("tiny ratio = %v, want clamp %v", f, calMinFactor)
	}
	if f := cal.Factor(vclock.Management); f != calMaxFactor {
		t.Errorf("huge ratio = %v, want clamp %v", f, calMaxFactor)
	}
}

func TestCalibrationPredict(t *testing.T) {
	cal := IdentityCalibration()
	b := vclock.Breakdown{ByComp: map[vclock.Component]vclock.Nanos{
		vclock.Execution:     100,
		vclock.Communication: 50,
	}}
	if got := cal.Predict(b); got != 150 {
		t.Errorf("identity Predict = %v, want 150", got)
	}
	cal.Factors[vclock.Communication] = 3
	if got := cal.Predict(b); got != 250 {
		t.Errorf("Predict = %v, want 250", got)
	}
	var nilCal *Calibration
	if f := nilCal.Factor(vclock.Execution); f != 1 {
		t.Errorf("nil Factor = %v, want 1", f)
	}
	names := cal.FactorNames()
	if names["communication"] != 3 && names["Communication"] != 3 {
		t.Errorf("FactorNames missing communication: %v", names)
	}
}
