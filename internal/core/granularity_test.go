package core

import (
	"math"
	"testing"

	"atrapos/internal/device"
	"atrapos/internal/numa"
	"atrapos/internal/topology"
)

func granModelFor(t *testing.T, profile string) (GranularityModel, *topology.Topology) {
	t.Helper()
	p, ok := topology.ProfileByName(profile)
	if !ok {
		t.Fatalf("unknown profile %s", profile)
	}
	top := p.Build()
	d := numa.MustNewDomain(top, numa.DefaultCostModel())
	return GranularityModel{Domain: d, LogFlush: 12000, LogGroupSize: 8}, top
}

func granShape(share float64) WorkloadShape {
	return WorkloadShape{
		MultisiteShare: share,
		ActionsPerTxn:  10,
		WritesPerTxn:   10,
		SyncBytes:      88,
		TotalKeys:      8000,
		Concurrency:    8,
	}
}

// TestGranularityExtremes asserts the scorer reproduces the fig-islands
// sweep's headline shape on every sweep profile: with no multisite work the
// finest level is cheapest and the cost ordering follows coarseness; with
// every transaction multisite the machine level (one instance, no
// coordination) is strictly cheapest.
func TestGranularityExtremes(t *testing.T) {
	for _, profile := range []string{"2s-fc", "chiplet-2s4d", "4s-fc"} {
		g, top := granModelFor(t, profile)
		atZero, _ := g.Best(granShape(0), 0.02)
		if atZero != topology.LevelCore {
			t.Errorf("%s: best level at 0%% multisite = %v, want core", profile, atZero)
		}
		atFull, _ := g.Best(granShape(1), 0.02)
		if atFull != topology.LevelMachine {
			t.Errorf("%s: best level at 100%% multisite = %v, want machine", profile, atFull)
		}
		// At 0% the cost ordering follows coarseness: every level is at least
		// as cheap as the next coarser one.
		scores := g.Scores(granShape(0))
		for i := 1; i < len(scores); i++ {
			if scores[i-1].Score > scores[i].Score {
				t.Errorf("%s: at 0%% multisite %v (%f) should not cost more than %v (%f)",
					profile, scores[i-1].Level, scores[i-1].Score, scores[i].Level, scores[i].Score)
			}
		}
		_ = top
	}
}

// TestGranularityCrossoverMonotone: each level's score is non-decreasing in
// the multisite share and the machine level's is flat, so every fine/coarse
// pair crosses at most once — the crossover the hysteresis brackets.
func TestGranularityCrossoverMonotone(t *testing.T) {
	g, top := granModelFor(t, "chiplet-2s4d")
	shares := []float64{0, 0.1, 0.25, 0.5, 0.75, 1}
	for _, level := range top.DistinctLevels() {
		prev := -1.0
		for _, s := range shares {
			score := g.Score(level, granShape(s))
			if score < prev {
				t.Errorf("%v: score decreased from %f to %f at share %f", level, prev, score, s)
			}
			prev = score
		}
		if level == topology.LevelMachine {
			if g.Score(level, granShape(0)) != g.Score(level, granShape(1)) {
				t.Errorf("machine level should be share-independent")
			}
		}
	}
	// Somewhere strictly between the endpoints the winner flips: the measured
	// crossover is bracketed, not at an endpoint.
	best01, _ := g.Best(granShape(0.1), 0.02)
	if best01 == topology.LevelMachine {
		t.Errorf("at 10%% multisite the machine level should not yet win, got %v", best01)
	}
	best05, _ := g.Best(granShape(0.5), 0.02)
	if best05 != topology.LevelMachine {
		t.Errorf("at 50%% multisite the machine level should already win, got %v", best05)
	}
}

// TestGranularityTiesResolveFiner: with flushes unpriced and no concurrency,
// core and die islands on a chiplet machine score identically at 0% multisite
// (both are fully island-local); the tie must resolve to the finer level.
func TestGranularityTiesResolveFiner(t *testing.T) {
	g, _ := granModelFor(t, "chiplet-2s4d")
	g.LogFlush = 0
	shape := granShape(0)
	shape.Concurrency = 1
	core := g.Score(topology.LevelCore, shape)
	die := g.Score(topology.LevelDie, shape)
	if core != die {
		t.Fatalf("core (%f) and die (%f) should tie at 0%% multisite on a chiplet", core, die)
	}
	best, _ := g.Best(shape, 0.02)
	if best != topology.LevelCore {
		t.Errorf("tie should resolve to the finest level, got %v", best)
	}
}

// TestGranularityFlushImbalance: the shared island log of a coarse island
// concentrates the full group-commit flushes on one member core, so with
// everything else local the finer level must score strictly cheaper — the
// measured core-beats-socket gap of the sweep at 0% multisite.
func TestGranularityFlushImbalance(t *testing.T) {
	g, _ := granModelFor(t, "2s-fc")
	shape := granShape(0)
	shape.Concurrency = 1 // no conflict term: isolate the flush imbalance
	core := g.Score(topology.LevelCore, shape)
	socket := g.Score(topology.LevelSocket, shape)
	if core >= socket {
		t.Errorf("core (%f) should beat socket (%f) at 0%% multisite via flush imbalance", core, socket)
	}
	g.LogFlush = 0
	if g.Score(topology.LevelCore, shape) != g.Score(topology.LevelSocket, shape) {
		t.Errorf("without flush pricing core and socket should tie on a flat machine at 0%%")
	}
}

// TestGranularitySurvivesFailure: with a failed socket the scorer prices only
// alive islands and still ranks sanely; a machine with no alive sockets
// scores +Inf everywhere.
func TestGranularitySurvivesFailure(t *testing.T) {
	g, top := granModelFor(t, "2s-fc")
	if err := top.FailSocket(1); err != nil {
		t.Fatal(err)
	}
	// One socket left: socket and machine islands coincide, core is finest.
	atZero, scores := g.Best(granShape(0), 0.02)
	if atZero != topology.LevelCore {
		t.Errorf("best level after failure at 0%% = %v (%v)", atZero, scores)
	}
	for _, ls := range scores {
		if math.IsInf(ls.Score, 1) {
			t.Errorf("level %v scored +Inf on a machine with alive cores", ls.Level)
		}
	}
	if err := top.FailSocket(0); err != nil {
		t.Fatal(err)
	}
	for _, ls := range g.Scores(granShape(0)) {
		if !math.IsInf(ls.Score, 1) {
			t.Errorf("level %v should score +Inf with no alive sockets, got %f", ls.Level, ls.Score)
		}
	}
}

// TestStatsTxnShape checks the monitor's transaction-shape counters feed the
// shape the scorer consumes, epoch by epoch.
func TestStatsTxnShape(t *testing.T) {
	m := NewMonitor(0)
	for i := 0; i < 8; i++ {
		m.RecordTxn(10, 10, 2, i%4 == 0, 88)
	}
	stats := m.Seal()
	if stats.Txns != 8 || stats.MultisiteTxns != 2 {
		t.Fatalf("txns = %d multisite = %d, want 8/2", stats.Txns, stats.MultisiteTxns)
	}
	if got := stats.MultisiteShare(); got != 0.25 {
		t.Errorf("MultisiteShare = %f, want 0.25", got)
	}
	if got := stats.ActionsPerTxn(); got != 10 {
		t.Errorf("ActionsPerTxn = %f, want 10", got)
	}
	if got := stats.WritesPerTxn(); got != 10 {
		t.Errorf("WritesPerTxn = %f, want 10", got)
	}
	if got := stats.SyncBytesPerMultisiteTxn(); got != 88 {
		t.Errorf("SyncBytesPerMultisiteTxn = %d, want 88", got)
	}
	// Sealing cleared the epoch: the next seal reports an empty interval.
	if again := m.Seal(); again.Txns != 0 || again.MultisiteShare() != 0 {
		t.Errorf("counters not cleared by Seal: %+v", again)
	}
}

// TestGranularityDeviceTerm asserts the commit-latency term moves the scorer
// with the storage profile: on a chiplet machine with one NVMe per socket, a
// machine-grained wiring funnels every island's commits through socket 0's
// device and must score worse relative to socket islands than it does without
// device modeling; and a single queue-depth-1 device must penalize the fine
// levels (many logs, one flush path) hardest.
func TestGranularityDeviceTerm(t *testing.T) {
	g, top := granModelFor(t, "chiplet-2s4d")
	shape := granShape(0)

	scoreAt := func(layout string, level topology.Level) float64 {
		gd := g
		if layout != "" {
			m, err := device.BuildLayout(layout, top)
			if err != nil {
				t.Fatal(err)
			}
			gd.Devices = m
		}
		return gd.Score(level, shape)
	}

	// The device term only adds cost: every level scores at least its
	// device-blind score.
	for _, level := range top.DistinctLevels() {
		if scoreAt("nvme-per-socket", level) < scoreAt("", level) {
			t.Errorf("%v: device term should not reduce the score", level)
		}
	}

	// Funneling penalty: with per-socket NVMe the machine level concentrates
	// twice the commit streams on one device compared to the socket level, so
	// its device surcharge must be strictly larger.
	surcharge := func(layout string, level topology.Level) float64 {
		return scoreAt(layout, level) - scoreAt("", level)
	}
	if !(surcharge("nvme-per-socket", topology.LevelMachine) > surcharge("nvme-per-socket", topology.LevelSocket)) {
		t.Errorf("machine-level funneling should cost more than socket-level spreading: machine +%f, socket +%f",
			surcharge("nvme-per-socket", topology.LevelMachine), surcharge("nvme-per-socket", topology.LevelSocket))
	}

	// Scarcity: the single SATA device (slow service, depth 1, every commit
	// stream in one queue) must cost strictly more than per-socket NVMe at
	// every level.
	for _, level := range top.DistinctLevels() {
		if !(surcharge("single-sata", level) > surcharge("nvme-per-socket", level)) {
			t.Errorf("%v: a single SATA device should cost more than per-socket NVMe", level)
		}
	}

	// No writes, no commit latency: the term is gated on the workload shape.
	readOnly := shape
	readOnly.WritesPerTxn = 0
	gd := g
	m, _ := device.BuildLayout("single-sata", top)
	gd.Devices = m
	if gd.Score(topology.LevelCore, readOnly) != g.Score(topology.LevelCore, readOnly) {
		t.Error("read-only shapes should not pay the device term")
	}
}

// speedModelFor builds a scorer over a 1-socket 8-core machine with the given
// per-core speeds (nil = uniform full speed), using the same cost model as
// granModelFor so scores are directly comparable across speed assignments.
func speedModelFor(t *testing.T, speeds []float64) GranularityModel {
	t.Helper()
	top, err := topology.New(topology.Config{
		Name:           "1s8c speed twin",
		Sockets:        1,
		CoresPerSocket: 8,
		CoreSpeeds:     speeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := numa.MustNewDomain(top, numa.DefaultCostModel())
	return GranularityModel{Domain: d, LogFlush: 12000, LogGroupSize: 8}
}

// TestSpeedAwareScore asserts the scorer weights the locality and conflict
// terms by member core speed, pinned on the hybrid-1s8c profile: an all-E
// deployment scores strictly worse than an all-P one of identical shape, the
// 4P+4E hybrid lands strictly between them, and machines with uniform
// full-speed cores score bit-identically to a twin with no speed assignment
// at all (the weighting must not perturb every existing profile's scores).
func TestSpeedAwareScore(t *testing.T) {
	shape := granShape(0.2)
	hybrid, _ := granModelFor(t, "hybrid-1s8c")
	uniform := speedModelFor(t, nil)
	explicitUniform := speedModelFor(t, []float64{1, 1, 1, 1, 1, 1, 1, 1})
	allE := speedModelFor(t, []float64{0.55, 0.55, 0.55, 0.55, 0.55, 0.55, 0.55, 0.55})

	for _, level := range uniform.Domain.Top.DistinctLevels() {
		p := uniform.Score(level, shape)
		e := allE.Score(level, shape)
		h := hybrid.Score(level, shape)
		if !(e > p) {
			t.Errorf("%v: all-E islands should score worse than all-P islands (E %f, P %f)", level, e, p)
		}
		if !(h > p && h < e) {
			t.Errorf("%v: the 4P+4E hybrid should land between all-P %f and all-E %f, got %f", level, p, e, h)
		}
		if got := explicitUniform.Score(level, shape); got != p {
			t.Errorf("%v: an explicit all-1.0 speed assignment must score bit-identically (%f vs %f)", level, got, p)
		}
	}

	// The weighted scorer must still rank levels sanely on the hybrid part:
	// every level scores finite and positive.
	for _, ls := range hybrid.Scores(shape) {
		if math.IsInf(ls.Score, 0) || ls.Score <= 0 {
			t.Errorf("hybrid-1s8c %v: unusable score %f", ls.Level, ls.Score)
		}
	}
}
