package core

import (
	"sort"

	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// Planner chooses partitioning and placement schemes from observed statistics,
// implementing the two-step search strategy of Section V-C.
type Planner struct {
	Model CostModel
	// SubPartitions is the sub-partition granularity the statistics were
	// collected at; it bounds how finely Algorithm 1 can split partitions.
	SubPartitions int
	// PreserveIdle makes ChoosePartitioning keep the current placement of
	// tables that received no load in the statistics window, so they diff as
	// unchanged and repartitioning skips them. The run-time adaptive planner
	// sets it: at run time an idle table says nothing about the future and
	// migrating it is pure cost. Static derivation (DerivePlacement) leaves
	// it off: there the statistics are synthesized from the full workload
	// description, so an unloaded table really is expected to stay cold and
	// is packed into a single partition.
	PreserveIdle bool
}

// NewPlanner builds a planner over the given cost model.
func NewPlanner(model CostModel, subPartitions int) *Planner {
	if subPartitions <= 0 {
		subPartitions = DefaultSubPartitions
	}
	return &Planner{Model: model, SubPartitions: subPartitions}
}

// subRange is one sub-partition flattened out of the current placement: its
// key range and its observed load.
type subRange struct {
	lo, hi schema.Key
	cost   vclock.Nanos
}

// flatten converts the per-partition sub-partition statistics of one table
// into an ordered list of key sub-ranges with their loads.
func flatten(tp *partition.TablePlacement, stats [][]SubLoad, maxKey schema.Key, subParts int) []subRange {
	var out []subRange
	for p := range tp.Bounds {
		lo := tp.Bounds[p]
		hi := maxKey
		if p+1 < len(tp.Bounds) {
			hi = tp.Bounds[p+1]
		}
		if hi <= lo {
			hi = lo + 1
		}
		span := (uint64(hi-lo) + uint64(subParts) - 1) / uint64(subParts)
		if span == 0 {
			span = 1
		}
		for sp := 0; sp < subParts; sp++ {
			slo := lo + schema.Key(uint64(sp)*span)
			shi := slo + schema.Key(span)
			if shi > hi || sp == subParts-1 {
				shi = hi
			}
			if slo >= hi {
				break
			}
			var cost vclock.Nanos
			if p < len(stats) && sp < len(stats[p]) {
				cost = stats[p][sp].Cost
			}
			out = append(out, subRange{lo: slo, hi: shi, cost: cost})
		}
	}
	return out
}

// ChoosePartitioning implements Algorithm 1: group sub-partitions into new
// partitions that balance resource utilization. The number of cores assigned
// to each table is proportional to the table's share of the total load (at
// least one), and within a table the sub-partitions are packed greedily so
// that every new partition carries roughly the same load, followed by an
// iterative improvement step that moves boundary sub-partitions toward
// under-utilized partitions.
//
// The returned placement assigns partitions to cores round-robin; call
// ChoosePlacement afterwards to optimize the assignment.
func (pl *Planner) ChoosePartitioning(current *partition.Placement, stats *Stats, maxKeys map[string]schema.Key) *partition.Placement {
	cores := pl.Model.Domain.Top.AliveCores()
	if len(cores) == 0 {
		return current.Clone()
	}
	tables := current.TableNames()
	if len(tables) == 0 {
		return current.Clone()
	}

	// Distribute cores across tables proportionally to their load. Tables
	// that received no load in the monitoring window keep a single partition
	// but do not consume core budget: their idle partition can share a core
	// with a loaded one without affecting utilization.
	totalCost := stats.TotalCost()
	coreShare := make(map[string]int, len(tables))
	assigned := 0
	loaded := 0
	for _, name := range tables {
		if totalCost > 0 && stats.TableCost(name) == 0 {
			coreShare[name] = 1
			continue
		}
		loaded++
		share := 1
		if totalCost > 0 {
			share = int(float64(len(cores)) * float64(stats.TableCost(name)) / float64(totalCost))
		} else {
			share = len(cores) / len(tables)
		}
		if share < 1 {
			share = 1
		}
		coreShare[name] = share
		assigned += share
	}
	// Trim overshoot so the total number of partitions stays near the core count.
	for assigned > len(cores) && assigned > loaded {
		trimmed := false
		for _, name := range tables {
			if totalCost > 0 && stats.TableCost(name) == 0 {
				continue
			}
			if coreShare[name] > 1 && assigned > len(cores) {
				coreShare[name]--
				assigned--
				trimmed = true
			}
		}
		if !trimmed {
			break
		}
	}

	// Assign cores to the loaded tables first, so every loaded partition gets
	// its own core before idle partitions (which carry no work) are placed.
	out := partition.NewPlacement()
	nextCore := 0
	assign := func(name string) {
		tp := current.Tables[name]
		subs := flatten(tp, stats.Sub[name], maxKeys[name], pl.SubPartitions)
		nParts := coreShare[name]
		if nParts > len(subs) && len(subs) > 0 {
			nParts = len(subs)
		}
		if nParts < 1 {
			nParts = 1
		}
		boundsIdx := packGreedy(subs, nParts)
		boundsIdx = improveBalance(subs, boundsIdx)

		bounds := make([]schema.Key, len(boundsIdx))
		for i, si := range boundsIdx {
			if si == 0 {
				bounds[i] = 0
			} else {
				bounds[i] = subs[si].lo
			}
		}
		coresFor := make([]topology.CoreID, len(bounds))
		for i := range coresFor {
			coresFor[i] = cores[(nextCore+i)%len(cores)].ID
		}
		nextCore += len(bounds)
		out.Tables[name] = &partition.TablePlacement{Table: name, Bounds: bounds, Cores: coresFor}
	}
	for _, name := range tables {
		if totalCost > 0 && stats.TableCost(name) == 0 {
			continue
		}
		assign(name)
	}
	// With PreserveIdle, tables that received no load keep their current
	// placement verbatim (their partitions carry no work, so they cannot
	// unbalance anything, and an identical placement means the
	// repartitioning diff skips them entirely). Only when a current
	// assignment touches a dead socket is the table re-assigned.
	top := pl.Model.Domain.Top
	for _, name := range tables {
		if totalCost > 0 && stats.TableCost(name) == 0 {
			if pl.PreserveIdle {
				tp := current.Tables[name]
				allAlive := true
				for _, c := range tp.Cores {
					if !top.Alive(top.SocketOf(c)) {
						allAlive = false
						break
					}
				}
				if allAlive {
					out.Tables[name] = tp.Clone()
					continue
				}
			}
			assign(name)
		}
	}
	return out
}

// packGreedy groups the ordered sub-partitions into nParts contiguous groups
// whose loads are close to the target average; it returns the index of the
// first sub-partition of each group (the first is always 0).
func packGreedy(subs []subRange, nParts int) []int {
	if len(subs) == 0 {
		return []int{0}
	}
	if nParts >= len(subs) {
		out := make([]int, len(subs))
		for i := range out {
			out[i] = i
		}
		return out
	}
	var total vclock.Nanos
	for _, s := range subs {
		total += s.cost
	}
	target := float64(total) / float64(nParts)
	bounds := []int{0}
	var acc float64
	for i, s := range subs {
		remainingGroups := nParts - len(bounds)
		remainingSubs := len(subs) - i
		if acc >= target && remainingGroups > 0 && remainingSubs > remainingGroups {
			bounds = append(bounds, i)
			acc = 0
		}
		acc += float64(s.cost)
	}
	return bounds
}

// groupLoads returns the load of every group defined by boundsIdx.
func groupLoads(subs []subRange, boundsIdx []int) []float64 {
	loads := make([]float64, len(boundsIdx))
	for g := range boundsIdx {
		start := boundsIdx[g]
		end := len(subs)
		if g+1 < len(boundsIdx) {
			end = boundsIdx[g+1]
		}
		for i := start; i < end; i++ {
			loads[g] += float64(subs[i].cost)
		}
	}
	return loads
}

// improveBalance is the iterative improvement loop of Algorithm 1: repeatedly
// move one boundary sub-partition from an overloaded group to an adjacent
// under-utilized group while the imbalance metric improves.
func improveBalance(subs []subRange, boundsIdx []int) []int {
	imbalance := func(idx []int) float64 {
		loads := groupLoads(subs, idx)
		var sum float64
		for _, l := range loads {
			sum += l
		}
		avg := sum / float64(len(loads))
		var ru float64
		for _, l := range loads {
			d := l - avg
			if d < 0 {
				d = -d
			}
			ru += d
		}
		return ru
	}
	best := append([]int(nil), boundsIdx...)
	bestRU := imbalance(best)
	for iter := 0; iter < 64; iter++ {
		improved := false
		loads := groupLoads(subs, best)
		// Find the most under-utilized group and try to pull a sub-partition
		// from a neighbour into it.
		order := make([]int, len(loads))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return loads[order[i]] < loads[order[j]] })
		for _, g := range order {
			candidates := []func([]int, int) []int{
				func(b []int, g int) []int { return shiftFromRight(b, g, len(subs)) },
				shiftFromLeft,
			}
			for _, cand := range candidates {
				next := cand(best, g)
				if next == nil {
					continue
				}
				if ru := imbalance(next); ru < bestRU {
					best = next
					bestRU = ru
					improved = true
					break
				}
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}
	return best
}

// shiftFromRight grows group g by one sub-partition taken from group g+1.
func shiftFromRight(bounds []int, g, nSubs int) []int {
	if g+1 >= len(bounds) {
		return nil
	}
	next := append([]int(nil), bounds...)
	// Group g+1 must keep at least one sub-partition.
	upper := nSubs
	if g+2 < len(bounds) {
		upper = bounds[g+2]
	}
	if bounds[g+1]+1 >= upper {
		return nil
	}
	next[g+1]++
	return next
}

// shiftFromLeft grows group g by one sub-partition taken from group g-1.
func shiftFromLeft(bounds []int, g int) []int {
	if g == 0 {
		return nil
	}
	next := append([]int(nil), bounds...)
	// Group g-1 must keep at least one sub-partition.
	if bounds[g]-1 <= bounds[g-1] {
		return nil
	}
	next[g]--
	return next
}

// ChoosePlacement implements Algorithm 2: starting from the partitioning
// chosen by Algorithm 1 (or any placement), iteratively switch the cores of
// partitions involved in costly synchronization points so they land on the
// same socket, keeping every switch that lowers the global synchronization
// cost TS(S,W).
func (pl *Planner) ChoosePlacement(p *partition.Placement, stats *Stats) *partition.Placement {
	best := p.Clone()
	bestTS := pl.Model.TransactionSync(best, stats)
	bestRU := pl.Model.ResourceUtilization(best, stats)
	if len(stats.Syncs) == 0 {
		return best
	}
	// Order signatures by their current cost, most expensive first.
	for iter := 0; iter < 128; iter++ {
		improved := false
		syncs := append([]SyncStat(nil), stats.Syncs...)
		sort.Slice(syncs, func(i, j int) bool {
			return pl.Model.SyncCost(best, syncs[i])*float64(syncs[i].Count) >
				pl.Model.SyncCost(best, syncs[j])*float64(syncs[j].Count)
		})
		for _, sync := range syncs {
			if pl.Model.SyncCost(best, sync) == 0 {
				continue
			}
			cand := pl.colocate(best, sync)
			if cand == nil {
				continue
			}
			ts := pl.Model.TransactionSync(cand, stats)
			ru := pl.Model.ResourceUtilization(cand, stats)
			// A switch must lower the synchronization cost without undoing
			// the load balance Algorithm 1 established.
			if ts < bestTS && ru <= bestRU*1.02+1 {
				best = cand
				bestTS = ts
				bestRU = ru
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return best
}

// colocate builds a candidate placement that moves the participants of sync
// onto the island that already hosts the largest share of them, by swapping
// core assignments with partitions currently on that island. The target is
// chosen hierarchically: first the socket hosting most participants, then —
// on machines with sub-socket structure — the die of that socket hosting
// most of them, so participants land on the cheapest enclosing island the
// swap space allows. Swap partners on the preferred die are tried before
// partners elsewhere on the target socket.
func (pl *Planner) colocate(p *partition.Placement, sync SyncStat) *partition.Placement {
	top := pl.Model.Domain.Top
	// Pick the target socket (and preferred die within it): the ones hosting
	// most participants.
	count := make(map[topology.SocketID]int)
	dieCount := make(map[topology.DieID]int)
	for _, ref := range sync.Participants {
		tp, ok := p.Tables[ref.Table]
		if !ok || ref.Partition < 0 || ref.Partition >= len(tp.Cores) {
			continue
		}
		count[top.SocketOf(tp.Cores[ref.Partition])]++
		dieCount[top.DieOf(tp.Cores[ref.Partition])]++
	}
	var target topology.SocketID = -1
	bestCount := -1
	for s, c := range count {
		if c > bestCount && top.Alive(s) {
			bestCount = c
			target = s
		}
	}
	if target < 0 {
		return nil
	}
	targetDie := topology.InvalidDie
	bestDie := -1
	for d, c := range dieCount {
		if top.SocketOfDie(d) == target && c > bestDie {
			bestDie = c
			targetDie = d
		}
	}
	cand := p.Clone()
	changed := false
	for _, ref := range sync.Participants {
		tp, ok := cand.Tables[ref.Table]
		if !ok || ref.Partition < 0 || ref.Partition >= len(tp.Cores) {
			continue
		}
		cur := tp.Cores[ref.Partition]
		if top.SocketOf(cur) == target {
			if top.DieOf(cur) == targetDie || targetDie == topology.InvalidDie {
				continue
			}
			// Already on the right socket but on another die: try to tighten
			// onto the preferred die; failing that, the socket placement stands.
			if swapOnto(cand, ref, cur, target, targetDie, top, sync.Participants) {
				changed = true
			}
			continue
		}
		// Find a partition currently on the target island (of any table) that
		// is not itself a participant, and swap cores with it.
		if swapOnto(cand, ref, cur, target, targetDie, top, sync.Participants) {
			changed = true
		}
	}
	if !changed {
		return nil
	}
	return cand
}

// swapOnto moves ref's partition onto the target socket, preferring cores of
// the preferred die (pass InvalidDie for no preference). It swaps with a
// non-participant partition already there, or falls back to an unoccupied
// core, keeping the number of partitions per core unchanged either way so the
// balance achieved by Algorithm 1 is preserved.
func swapOnto(p *partition.Placement, ref PartitionRef, from topology.CoreID, target topology.SocketID, preferredDie topology.DieID, top *topology.Topology, exclude []PartitionRef) bool {
	isExcluded := func(table string, idx int) bool {
		for _, e := range exclude {
			if e.Table == table && e.Partition == idx {
				return true
			}
		}
		return false
	}
	fromDie := top.DieOf(from)
	// Two passes: cores of the preferred die first, then the rest of the
	// target socket. On flat machines the passes coincide and the second is
	// skipped.
	passes := []func(c topology.CoreID) bool{
		func(c topology.CoreID) bool { return top.SocketOf(c) == target && top.DieOf(c) == preferredDie },
		func(c topology.CoreID) bool { return top.SocketOf(c) == target },
	}
	if preferredDie == topology.InvalidDie {
		passes = passes[1:]
	}
	// The occupied set only feeds the no-swap-partner fallback and a
	// successful assignment returns immediately, so one build serves both
	// passes.
	var occupied map[topology.CoreID]bool
	for _, accept := range passes {
		for _, name := range p.TableNames() {
			tp := p.Tables[name]
			for i, c := range tp.Cores {
				if !accept(c) || c == from || isExcluded(name, i) {
					continue
				}
				// Swapping within the preferred die is a no-op improvement;
				// require the partner to actually change ref's island.
				if top.DieOf(c) == fromDie && top.SocketOf(c) == top.SocketOf(from) {
					continue
				}
				tp.Cores[i] = from
				p.Tables[ref.Table].Cores[ref.Partition] = c
				return true
			}
		}
		// No swap partner in this pass: move onto a core of the pass's island
		// that currently hosts no partition at all, which also preserves the
		// balance.
		if occupied == nil {
			occupied = make(map[topology.CoreID]bool)
			for _, tp := range p.Tables {
				for _, c := range tp.Cores {
					occupied[c] = true
				}
			}
		}
		for _, c := range top.CoresOn(target) {
			if !accept(c.ID) || occupied[c.ID] {
				continue
			}
			p.Tables[ref.Table].Cores[ref.Partition] = c.ID
			return true
		}
	}
	return false
}

// Plan runs the full two-step search and returns the proposed placement.
func (pl *Planner) Plan(current *partition.Placement, stats *Stats, maxKeys map[string]schema.Key) *partition.Placement {
	partitioned := pl.ChoosePartitioning(current, stats, maxKeys)
	return pl.ChoosePlacement(partitioned, stats)
}
