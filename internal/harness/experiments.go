package harness

import (
	"fmt"

	"atrapos/internal/btree"
	"atrapos/internal/core"
	"atrapos/internal/engine"
	"atrapos/internal/numa"
	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/storage"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/workload"
)

// Fig1 reproduces Figure 1: how efficiently each configuration uses the
// processor on a perfectly partitionable workload as sockets grow. The paper
// reports IPC from hardware counters; the reproduction reports the
// useful-work fraction (execution time / total busy time), the same "how much
// of the machine does real work" signal without hardware counters.
func Fig1(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig1",
		Title:  "Useful-work fraction on a perfectly partitionable workload (IPC proxy)",
		Header: []string{"sockets", "extreme shared-nothing", "centralized", "plp"},
		Notes: []string{
			"The paper reports IPC; high centralized IPC there reflects spinning on contended locks.",
			"The useful-work fraction makes the same point directly: the share of cycles doing transaction work.",
		},
	}
	for _, n := range s.socketSweep() {
		row := []string{fmt.Sprintf("%d", n)}
		for _, d := range []engine.Design{engine.SharedNothingExtreme, engine.Centralized, engine.PLP} {
			e, err := engine.New(engine.Config{Design: d, Workload: s.partitionableWorkload(), Topology: s.topologyWith(n)})
			if err != nil {
				return nil, err
			}
			res, err := e.Run(s.runOptions())
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", res.UsefulFraction))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig2 reproduces Figure 2: throughput of extreme shared-nothing, centralized
// and PLP on the perfectly partitionable single-row-read microbenchmark as
// the number of sockets grows.
func Fig2(s Scale) (*Table, error) {
	return scalingFigure(s, "fig2",
		"Throughput of the shared-nothing, centralized and PLP architectures",
		[]engine.Design{engine.SharedNothingExtreme, engine.Centralized, engine.PLP})
}

// Fig5 reproduces Figure 5: the same scaling experiment including ATraPos and
// the coarse shared-nothing configuration.
func Fig5(s Scale) (*Table, error) {
	return scalingFigure(s, "fig5",
		"Throughput of a perfectly partitionable workload",
		[]engine.Design{engine.SharedNothingExtreme, engine.SharedNothingCoarse, engine.ATraPos, engine.PLP})
}

func scalingFigure(s Scale, id, title string, designs []engine.Design) (*Table, error) {
	header := []string{"sockets"}
	for _, d := range designs {
		header = append(header, d.String())
	}
	t := &Table{ID: id, Title: title, Header: header}
	for _, n := range s.socketSweep() {
		row := []string{fmt.Sprintf("%d", n)}
		for _, d := range designs {
			e, err := engine.New(engine.Config{Design: d, Workload: s.partitionableWorkload(), Topology: s.topologyWith(n)})
			if err != nil {
				return nil, err
			}
			tps, _, err := runThroughput(e, s.runOptions())
			if err != nil {
				return nil, err
			}
			row = append(row, fmtTPS(tps))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig3 reproduces Figure 3: throughput of the shared-nothing configurations
// and the centralized design as the percentage of multi-site update
// transactions grows from 0 to 100.
func Fig3(s Scale) (*Table, error) {
	designs := []engine.Design{engine.SharedNothingExtreme, engine.SharedNothingCoarse, engine.Centralized}
	t := &Table{
		ID:     "fig3",
		Title:  "Throughput as the percentage of multi-site transactions increases",
		Header: []string{"% multi-site", "extreme shared-nothing", "coarse shared-nothing", "centralized"},
	}
	for _, pct := range []int{0, 20, 40, 60, 80, 100} {
		row := []string{fmt.Sprintf("%d", pct)}
		for _, d := range designs {
			wl := workload.MultisiteUpdate(s.MicroRows, pct)
			e, err := engine.New(engine.Config{Design: d, Workload: wl, Topology: s.Topology()})
			if err != nil {
				return nil, err
			}
			tps, _, err := runThroughput(e, s.runOptions())
			if err != nil {
				return nil, err
			}
			row = append(row, fmtTPS(tps))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig4 reproduces Figure 4: the per-transaction time breakdown of the coarse
// shared-nothing configuration as the percentage of multi-site transactions
// grows, split into the paper's five components.
func Fig4(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "Time breakdown per transaction, coarse shared-nothing (microseconds)",
		Header: []string{"% multi-site", "xct management", "xct execution", "communication", "locking", "logging"},
	}
	for _, pct := range []int{0, 25, 50, 75, 100} {
		wl := workload.MultisiteUpdate(s.MicroRows, pct)
		e, err := engine.New(engine.Config{Design: engine.SharedNothingCoarse, Workload: wl, Topology: s.Topology()})
		if err != nil {
			return nil, err
		}
		res, err := e.Run(s.runOptions())
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", pct)}
		for _, comp := range vclock.Components() {
			row = append(row, fmtMicros(res.TimePerTransaction(comp)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table1 reproduces Table I: per-socket throughput of one shared-nothing
// instance per socket while the memory allocation policy varies between
// local, central (all data on one node) and remote.
func Table1(s Scale) (*Table, error) {
	t := &Table{
		ID:    "table1",
		Title: "Throughput (TPS per socket) for various memory allocation policies",
	}
	header := []string{"policy"}
	for i := 0; i < s.MaxSockets; i++ {
		header = append(header, fmt.Sprintf("socket%d", i+1))
	}
	header = append(header, "QPI/IMC")
	t.Header = header

	wl := workload.ReadHundred(s.MicroRows)
	for _, policy := range []numa.AllocPolicy{numa.AllocLocal, numa.AllocCentral, numa.AllocRemote} {
		e, err := engine.New(engine.Config{
			Design:           engine.SharedNothingCoarse,
			Workload:         wl,
			Topology:         s.Topology(),
			AllocPolicy:      policy,
			CentralAllocNode: topology.SocketID(s.MaxSockets - 1),
		})
		if err != nil {
			return nil, err
		}
		res, err := e.Run(s.runOptions())
		if err != nil {
			return nil, err
		}
		row := []string{policy.String()}
		for _, st := range res.PerSocket {
			row = append(row, fmt.Sprintf("%.0f", st.Throughput))
		}
		row = append(row, fmt.Sprintf("%.2f", res.QPIToIMCRatio))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "Local allocation should be fastest; central and remote lose single-digit percentages, and the interconnect-to-memory-controller traffic ratio jumps, as in the paper.")
	return t, nil
}

// Fig6 reproduces Figure 6: the simple two-table transaction under the five
// partitioning and placement strategies the paper compares.
func Fig6(s Scale) (*Table, error) {
	wl := workload.TwoTableSimple(s.MicroRows)
	top := s.Topology()
	t := &Table{
		ID:     "fig6",
		Title:  "Throughput of a simple transaction with varying partitioning and placement strategies",
		Header: []string{"strategy", "throughput", "vs centralized"},
	}
	type strategy struct {
		name string
		cfg  engine.Config
	}
	strategies := []strategy{
		{"centralized", engine.Config{Design: engine.Centralized, Workload: wl, Topology: top}},
		{"plp", engine.Config{Design: engine.PLP, Workload: wl, Topology: top}},
		{"hw-aware (naive per-core)", engine.Config{Design: engine.HWAware, Workload: wl, Topology: top}},
		{"workload-aware (oblivious placement)", engine.Config{
			Design: engine.ATraPos, Workload: wl, Topology: top,
			Placement: engine.DerivePlacement(wl, top, false),
		}},
		{"atrapos (workload+hardware aware)", engine.Config{
			Design: engine.ATraPos, Workload: wl, Topology: top,
			Placement: engine.DerivePlacement(wl, top, true),
		}},
	}
	var base float64
	for i, st := range strategies {
		e, err := engine.New(st.cfg)
		if err != nil {
			return nil, err
		}
		tps, _, err := runThroughput(e, s.runOptions())
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = tps
		}
		rel := "1.00x"
		if base > 0 {
			rel = fmtFactor(tps / base)
		}
		t.AddRow(st.name, fmtTPS(tps), rel)
	}
	return t, nil
}

// Fig7 renders the TPC-C NewOrder transaction flow graph of Figure 7.
func Fig7(Scale) (*Table, error) {
	g := workload.NewOrderFlowGraph()
	t := &Table{
		ID:     "fig7",
		Title:  "Transaction flow graph for the TPC-C NewOrder transaction",
		Header: []string{"node", "operation", "multiplicity"},
	}
	for i, n := range g.Nodes {
		mult := "1"
		if n.MinCount != n.MaxCount {
			mult = fmt.Sprintf("%d-%d", n.MinCount, n.MaxCount)
		}
		t.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%s(%s)", n.Op, n.Table), mult)
	}
	for i, sp := range g.Syncs {
		t.Notes = append(t.Notes, fmt.Sprintf("synchronization point %d joins nodes %v (%d bytes)", i+1, sp.Nodes, sp.Bytes))
	}
	return t, nil
}

// Fig8 reproduces Figure 8: the throughput of ATraPos normalized over PLP for
// individual TATP and TPC-C transactions and their standard mixes.
func Fig8(s Scale) (*Table, error) {
	top := s.Topology()
	t := &Table{
		ID:     "fig8",
		Title:  "Normalized throughput of ATraPos over PLP (y = ATraPos/PLP)",
		Header: []string{"benchmark", "workload", "plp", "atrapos", "improvement"},
	}
	type point struct {
		bench string
		label string
		wl    *workload.Workload
	}
	tatp := func(mix map[string]float64) *workload.Workload {
		return workload.MustTATP(workload.TATPOptions{Subscribers: s.Subscribers, Mix: mix})
	}
	tpcc := func(mix map[string]float64) *workload.Workload {
		return workload.MustTPCC(workload.TPCCOptions{
			Warehouses:           s.Warehouses,
			CustomersPerDistrict: s.CustomersPerDistrict,
			Items:                s.Items,
			Mix:                  mix,
		})
	}
	points := []point{
		{"TATP", "GetSubData", tatp(map[string]float64{workload.TATPGetSubData: 1})},
		{"TATP", "GetNewDest", tatp(map[string]float64{workload.TATPGetNewDest: 1})},
		{"TATP", "UpdSubData", tatp(map[string]float64{workload.TATPUpdSubData: 1})},
		{"TATP", "TATP-Mix", tatp(nil)},
		{"TPC-C", "StockLevel", tpcc(map[string]float64{workload.TPCCStockLevel: 1})},
		{"TPC-C", "OrderStatus", tpcc(map[string]float64{workload.TPCCOrderStatus: 1})},
		{"TPC-C", "TPCC-Mix", tpcc(nil)},
	}
	for _, p := range points {
		plpEngine, err := engine.New(engine.Config{Design: engine.PLP, Workload: p.wl, Topology: top})
		if err != nil {
			return nil, err
		}
		plpTPS, _, err := runThroughput(plpEngine, s.runOptions())
		if err != nil {
			return nil, err
		}
		atrEngine, err := engine.New(engine.Config{
			Design:    engine.ATraPos,
			Workload:  p.wl,
			Topology:  top,
			Placement: engine.DerivePlacement(p.wl, top, true),
		})
		if err != nil {
			return nil, err
		}
		atrTPS, _, err := runThroughput(atrEngine, s.runOptions())
		if err != nil {
			return nil, err
		}
		impr := 0.0
		if plpTPS > 0 {
			impr = atrTPS / plpTPS
		}
		t.AddRow(p.bench, p.label, fmtTPS(plpTPS), fmtTPS(atrTPS), fmtFactor(impr))
	}
	return t, nil
}

// Table2 reproduces Table II: the throughput of TATP workloads with the
// ATraPos monitoring mechanism disabled and enabled, and the overhead in
// percent.
func Table2(s Scale) (*Table, error) {
	top := s.Topology()
	t := &Table{
		ID:     "table2",
		Title:  "ATraPos monitoring overhead",
		Header: []string{"workload", "no monitoring (TPS)", "monitoring (TPS)", "overhead"},
	}
	cases := []struct {
		label string
		mix   map[string]float64
	}{
		{"GetSubData", map[string]float64{workload.TATPGetSubData: 1}},
		{"GetNewDest", map[string]float64{workload.TATPGetNewDest: 1}},
		{"UpdSubData", map[string]float64{workload.TATPUpdSubData: 1}},
		{"TATP-Mix", nil},
	}
	for _, c := range cases {
		wl := workload.MustTATP(workload.TATPOptions{Subscribers: s.Subscribers, Mix: c.mix})
		place := engine.DerivePlacement(wl, top, true)
		run := func(monitoring bool) (float64, error) {
			e, err := engine.New(engine.Config{
				Design:     engine.ATraPos,
				Workload:   wl,
				Topology:   top,
				Placement:  place,
				Monitoring: monitoring,
			})
			if err != nil {
				return 0, err
			}
			tps, _, err := runThroughput(e, s.runOptions())
			return tps, err
		}
		off, err := run(false)
		if err != nil {
			return nil, err
		}
		on, err := run(true)
		if err != nil {
			return nil, err
		}
		overhead := 0.0
		if off > 0 {
			overhead = (off - on) / off
		}
		t.AddRow(c.label, fmt.Sprintf("%.0f", off), fmt.Sprintf("%.0f", on), fmtPercent(overhead))
	}
	t.Notes = append(t.Notes, "The paper reports at most 3.32% overhead (GetSubData worst case).")
	return t, nil
}

// Fig9 reproduces Figure 9: the cost of merge, split and rearrange
// repartitioning sequences as the number of repartitioning actions grows.
func Fig9(s Scale) (*Table, error) {
	top := s.Topology()
	domain := numa.MustNewDomain(top, numa.DefaultCostModel())
	t := &Table{
		ID:     "fig9",
		Title:  "Repartitioning cost (ms) vs number of repartitioning actions",
		Header: []string{"actions", "merge", "split", "rearrange"},
	}
	rows := s.MicroRows
	def := func() *schema.Table {
		cols := []schema.Column{{Name: "id", Type: schema.Int64}}
		for i := 0; i < 10; i++ {
			cols = append(cols, schema.Column{Name: fmt.Sprintf("c%d", i), Type: schema.Int64})
		}
		return &schema.Table{Name: "reparttbl", Columns: cols, PrimaryKey: []string{"id"}}
	}
	loadTable := func(parts int) (*storage.Manager, *storage.Table) {
		store := storage.NewManager(domain)
		tbl, err := store.CreateTable(def(), btree.UniformBounds(int64(rows), parts), nil)
		if err != nil {
			panic(err)
		}
		tbl.LoadFunc(rows, func(i int) schema.Row {
			r := make(schema.Row, 11)
			r[0] = int64(i)
			for c := 1; c < 11; c++ {
				r[c] = int64(i * c)
			}
			return r
		})
		return store, tbl
	}
	maxActions := top.NumCores()
	for n := maxActions / 8; n <= maxActions; n += maxActions / 8 {
		if n < 1 {
			n = 1
		}
		// Merge: start with 2n partitions, merge n pairs.
		mergeCost := measureReplan(domain, loadTable, 2*n, n+1, rows)
		// Split: start with n+1 partitions, split each into two.
		splitCost := measureReplan(domain, loadTable, n+1, 2*n+1, rows)
		// Rearrange: change both boundaries and ownership (split+merge mix).
		rearrangeCost := measureReplan(domain, loadTable, 2*n, 2*n, rows) + mergeCost/2 + splitCost/2
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", mergeCost.Seconds()*1e3),
			fmt.Sprintf("%.1f", splitCost.Seconds()*1e3),
			fmt.Sprintf("%.1f", rearrangeCost.Seconds()*1e3))
	}
	t.Notes = append(t.Notes, "Costs are virtual time; the paper's costliest sequence (80 rearrangements) stays under 200 ms.")
	return t, nil
}

func measureReplan(domain *numa.Domain, load func(parts int) (*storage.Manager, *storage.Table), fromParts, toParts, rows int) vclock.Nanos {
	store, _ := load(fromParts)
	current := partition.NewPlacement()
	current.Tables["reparttbl"] = &partition.TablePlacement{
		Table:  "reparttbl",
		Bounds: btree.UniformBounds(int64(rows), fromParts),
		Cores:  coresFor(domain, fromParts),
	}
	desired := partition.NewPlacement()
	desired.Tables["reparttbl"] = &partition.TablePlacement{
		Table:  "reparttbl",
		Bounds: btree.UniformBounds(int64(rows), toParts),
		Cores:  coresForShifted(domain, toParts),
	}
	plan := core.BuildPlan(current, desired, domain.Top)
	exec := core.NewExecutor(core.DefaultExecutorConfig(), domain, store)
	out, err := exec.Execute(plan)
	if err != nil {
		return 0
	}
	return out.Cost
}

func coresFor(domain *numa.Domain, n int) []topology.CoreID {
	cores := domain.Top.AliveCores()
	out := make([]topology.CoreID, n)
	for i := range out {
		out[i] = cores[i%len(cores)].ID
	}
	return out
}

func coresForShifted(domain *numa.Domain, n int) []topology.CoreID {
	cores := domain.Top.AliveCores()
	out := make([]topology.CoreID, n)
	shift := len(cores) / 2
	for i := range out {
		out[i] = cores[(i+shift)%len(cores)].ID
	}
	return out
}
