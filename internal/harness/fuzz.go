package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"

	"atrapos/internal/device"
	"atrapos/internal/engine"
	"atrapos/internal/fault"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

// FuzzOptions configures the scenario fuzzer.
type FuzzOptions struct {
	// Scenarios is how many composed scenarios to run; zero means 25.
	Scenarios int
	// Seed is the base seed; scenario i derives everything from Seed+i, so any
	// failing scenario reproduces alone with Scenarios=1, Seed=Seed+i.
	Seed int64
	// Scale sizes the datasets and transaction counts; the zero value means
	// QuickScale.
	Scale Scale
	// Parallel is how many scenarios run concurrently through the harness
	// pool (0 or 1 = serial). Scenario verdicts are seed-deterministic at any
	// concurrency: each scenario derives everything from its own seed, and
	// the process-global allocs/txn measurement runs under the pool's
	// allocation token, which excludes every other in-flight scenario.
	Parallel int
}

// FuzzFailure is one scenario whose invariants did not hold, with the minimal
// reproducer: the scenario is fully determined by its seed, so one flag pair
// replays it.
type FuzzFailure struct {
	Scenario  int    `json:"scenario"`
	Seed      int64  `json:"seed"`
	Descr     string `json:"descriptor"`
	Reproduce string `json:"reproduce"`
	Err       string `json:"error"`
}

// FuzzReport summarizes a fuzzer run.
type FuzzReport struct {
	Scenarios int           `json:"scenarios"`
	Failures  []FuzzFailure `json:"failures,omitempty"`
}

// Failed reports whether any scenario violated an invariant.
func (r *FuzzReport) Failed() bool { return len(r.Failures) > 0 }

// fuzzScenario is one composed scenario: a machine, a storage shape, a
// workload, a starting island granularity, a fault schedule for the adaptive
// run, and a design for the serial crash-drill pair.
type fuzzScenario struct {
	profile     topology.Profile
	layout      string
	wl          *workload.Workload
	wlName      string
	level       topology.Level
	crashDesign engine.Design
	sched       *fault.Schedule
	// coalesce is the write-combining accumulator's record threshold for both
	// the adaptive run and the crash-drill pair; zero runs the plain log.
	coalesce int
	// tracing runs the adaptive leg with the span tracer enabled; its drop
	// accounting is then a checked invariant.
	tracing bool
	// txnScale multiplies the adaptive run's transaction cap. The cap exists
	// to bound real runtime, but it must still let virtual time cross the
	// whole fault schedule: single-op workloads (YCSB) advance virtual time
	// roughly ten times slower per transaction than the ten-op
	// microbenchmarks the cap was sized for, so they get a matching multiple
	// or a late fault event fires with no planner boundary left to re-wire.
	txnScale int
}

func (sc fuzzScenario) String() string {
	return fmt.Sprintf("profile=%s layout=%q workload=%s level=%s crash=%s coalesce=%d trace=%t faults=%s",
		sc.profile.Name, sc.layout, sc.wlName, sc.level, sc.crashDesign, sc.coalesce, sc.tracing, sc.sched)
}

// fuzzProfiles are the machine shapes the fuzzer composes over: a flat
// 2-socket box, a chiplet part with four dies per socket, and a sub-NUMA
// 4-socket machine — together they cover every island level.
var fuzzProfiles = []string{"2s-fc", "chiplet-2s4d", "subnuma-4s2d"}

// fuzzLayouts are the storage shapes, including running without device
// modeling at all (device faults are then never scheduled).
var fuzzLayouts = []string{"", "nvme-per-socket", "nvme-per-die-pair", "single-sata"}

// buildScenario derives a scenario from one seed. Everything — profile,
// layout, workload, level, schedule — comes from the seeded generator, so the
// seed is the whole reproducer.
func buildScenario(s Scale, seed int64) (fuzzScenario, error) {
	rng := rand.New(rand.NewSource(seed))
	var sc fuzzScenario
	profName := fuzzProfiles[rng.Intn(len(fuzzProfiles))]
	prof, ok := topology.ProfileByName(profName)
	if !ok {
		return sc, fmt.Errorf("fuzz: unknown profile %q", profName)
	}
	sc.profile = prof
	sc.layout = fuzzLayouts[rng.Intn(len(fuzzLayouts))]
	sc.txnScale = 1
	switch pick := rng.Intn(7); pick {
	case 4:
		sc.wl = workload.MustTATP(workload.TATPOptions{Subscribers: s.Subscribers})
		sc.wlName = "TATP"
	case 5:
		sc.wl = workload.ZipfHotkey(s.MicroRows, 10, 30)
		sc.wlName = "ZipfHotkey(10%,30%)"
	case 6:
		mix := workload.YCSBMix(rng.Intn(3))
		sc.wl = workload.YCSB(s.MicroRows, mix)
		sc.wlName = fmt.Sprintf("YCSB(%s)", mix)
		sc.txnScale = 10
	default:
		pct := []int{0, 10, 50, 100}[pick]
		sc.wl = workload.MultisiteUpdate(s.MicroRows, pct)
		sc.wlName = fmt.Sprintf("MultisiteUpdate(%d%%)", pct)
	}
	// Half the scenarios coalesce; the other half keep the plain log so the
	// bit-identical-off path stays fuzzed too. Thresholds sit above the
	// per-transaction distinct-key count: a threshold below it degrades to one
	// physical flush per commit, which is the (modeled) mistuned regime the
	// fig-group-commit sweep covers deliberately, not a fuzz invariant.
	sc.coalesce = []int{0, 0, 64, 128, 256}[rng.Intn(5)]
	top := prof.Build()
	levels := top.DistinctLevels()
	sc.level = levels[rng.Intn(len(levels))]
	if rng.Intn(2) == 0 {
		sc.crashDesign = engine.Centralized
	} else {
		sc.crashDesign = engine.SharedNothing
	}
	ndev := 0
	if sc.layout != "" {
		ndev = deviceCount(sc.layout, top)
	}
	sched, err := randomFaultSchedule(rng, top.Sockets(), ndev, paperSecond(2), paperSecond(30), 1+rng.Intn(4))
	if err != nil {
		return sc, fmt.Errorf("fuzz: schedule generation: %w", err)
	}
	sc.sched = sched
	// Half the scenarios trace. Drawn last so the tracing flag never perturbs
	// the scenario composition of pre-existing seeds. Spans land in fixed
	// pre-allocated rings; the invariant tracing adds is its own drop
	// accounting, checked after the adaptive leg.
	sc.tracing = rng.Intn(2) == 0
	return sc, nil
}

// deviceCount is how many devices a layout provisions on a machine; the
// schedule validator needs the count before any engine exists.
func deviceCount(layout string, top *topology.Topology) int {
	lay, ok := device.LayoutByName(layout)
	if !ok {
		return 0
	}
	return lay.Build(top).NumDevices()
}

// randomFaultSchedule generates a legal schedule of n events at increasing
// times in (from, to]: it mirrors the validator's state machine (never failing
// a failed or last-alive target, never degrading a failed device), so the
// result always constructs.
func randomFaultSchedule(rng *rand.Rand, sockets, devices int, from, to vclock.Nanos, n int) (*fault.Schedule, error) {
	times := make([]vclock.Nanos, n)
	for i := range times {
		times[i] = from + vclock.Nanos(rng.Int63n(int64(to-from)))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	deadSockets := make([]bool, sockets)
	deadDevices := make([]bool, devices)
	aliveSockets, aliveDevices := sockets, devices
	pick := func(dead []bool, want bool) int {
		idx := make([]int, 0, len(dead))
		for i, d := range dead {
			if d == want {
				idx = append(idx, i)
			}
		}
		return idx[rng.Intn(len(idx))]
	}
	var events []fault.Event
	for _, at := range times {
		var kinds []fault.Kind
		if aliveSockets > 1 {
			kinds = append(kinds, fault.KindFailSocket)
		}
		if aliveSockets < sockets {
			kinds = append(kinds, fault.KindRestoreSocket)
		}
		if aliveDevices > 1 {
			kinds = append(kinds, fault.KindFailDevice)
		}
		if aliveDevices > 0 {
			kinds = append(kinds, fault.KindDegradeDevice)
		}
		if len(kinds) == 0 {
			continue
		}
		switch kinds[rng.Intn(len(kinds))] {
		case fault.KindFailSocket:
			s := pick(deadSockets, false)
			deadSockets[s] = true
			aliveSockets--
			events = append(events, fault.FailSocket(at, topology.SocketID(s)))
		case fault.KindRestoreSocket:
			s := pick(deadSockets, true)
			deadSockets[s] = false
			aliveSockets++
			events = append(events, fault.RestoreSocket(at, topology.SocketID(s)))
		case fault.KindFailDevice:
			d := pick(deadDevices, false)
			deadDevices[d] = true
			aliveDevices--
			events = append(events, fault.FailDevice(at, d))
		case fault.KindDegradeDevice:
			d := pick(deadDevices, false)
			factor := float64(int64(2) << rng.Intn(3)) // 2x, 4x or 8x
			events = append(events, fault.DegradeDevice(at, d, factor))
		}
	}
	return fault.NewSchedule(fault.Machine{Sockets: sockets, Devices: devices}, events...)
}

// runScenario executes one composed scenario and checks every standing
// invariant; the returned error names the first violation. The pool supplies
// the allocation token serializing the process-global allocs/txn window; the
// caller must be a running point of that pool.
func runScenario(pool *Pool, s Scale, sc fuzzScenario, seed int64) error {
	// 1. The adaptive run under the fault schedule: the system must keep
	// committing, and once the timeline settles the wiring must have converged
	// onto the surviving hardware with no site on dead sockets and no island
	// log on failed devices.
	cfg := engine.Config{
		Design:           engine.SharedNothing,
		IslandLevel:      sc.level,
		Workload:         sc.wl,
		Topology:         sc.profile.Build(),
		DeviceLayout:     sc.layout,
		Adaptive:         true,
		AdaptiveInterval: adaptiveInterval(),
		TimeCompression:  timeCompression,
		Tracing:          sc.tracing,
	}
	if sc.coalesce > 0 {
		lc := wal.DefaultConfig()
		lc.CoalesceRecords = sc.coalesce
		lc.CoalesceMaxAge = paperSecond(2)
		cfg.LogConfig = &lc
	}
	e, err := engine.New(cfg)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	res, err := e.Run(engine.RunOptions{
		Duration:        paperSecond(45),
		MaxTransactions: 40 * s.Transactions * sc.txnScale,
		Seed:            seed,
		Workers:         2,
		SampleWindow:    adaptiveWindow,
		Faults:          sc.sched,
	})
	if err != nil {
		return fmt.Errorf("faulted run: %w", err)
	}
	if res.Committed == 0 {
		return fmt.Errorf("faulted run committed nothing")
	}
	if !e.WiringConverged() {
		// Convergence is an eventually-property: the faulted run can hit its
		// transaction cap moments after the last fault, before the planner's
		// next monitoring boundary. Give the settled (still-faulted) timeline
		// one more boundary before calling the verdict — a planner that truly
		// cannot re-wire onto the surviving hardware still fails here.
		if _, err := e.Run(engine.RunOptions{Transactions: 2000 * sc.txnScale, Seed: seed + 2, Workers: 1}); err != nil {
			return fmt.Errorf("convergence settling run: %w", err)
		}
		if !e.WiringConverged() {
			return fmt.Errorf("wiring did not converge after the schedule")
		}
	}
	top := e.Topology()
	if err := e.Placement().ValidateAlive(top); err != nil {
		return fmt.Errorf("placement on dead hardware: %w", err)
	}
	if err := e.Placement().ValidateAliveDevices(top, e.Devices()); err != nil {
		return fmt.Errorf("placement on failed device: %w", err)
	}
	if sc.tracing {
		// Every traced scenario must either drop nothing or account for every
		// drop: each ring's drop counter has to equal its overflow exactly.
		if msg := e.Tracer().DropAccounting(); msg != "" {
			return fmt.Errorf("trace drop accounting violated: %s", msg)
		}
	}

	// 2. Crash-drill pair: a serial run interrupted by a crash-and-recover
	// drill must end with exactly the committed state of its fault-free twin.
	if err := runCrashPair(sc, seed); err != nil {
		return err
	}

	// 3. Steady state stays allocation-free: restore the hardware and measure
	// a fault-free run on the already-warm engine. The budget covers per-run
	// bookkeeping (result assembly, samples, the re-wire back onto the
	// restored hardware), not per-transaction allocations.
	for sock := 0; sock < top.Sockets(); sock++ {
		if !top.Alive(topology.SocketID(sock)) {
			if err := e.RestoreSocket(topology.SocketID(sock)); err != nil {
				return fmt.Errorf("restoring socket %d: %w", sock, err)
			}
		}
	}
	if devs := e.Devices(); devs != nil {
		devs.ResetFaults()
	}
	// A settling run first: the planner re-expands onto the restored hardware
	// at its next boundary, and that one-off re-wiring (like any level change)
	// legitimately allocates. The measured run after it sees steady state.
	if _, err := e.Run(engine.RunOptions{Transactions: 2000, Seed: seed + 1, Workers: 1}); err != nil {
		return fmt.Errorf("alloc-check settling run: %w", err)
	}
	// Three measured runs, best taken: a residual one-off planner re-wiring
	// can land inside a measured window, and Mallocs is process-global — GC
	// bookkeeping left over from earlier scenarios in a batch adds noise a
	// single window can absorb — but a genuine per-transaction leak shows up
	// in every rep. Mallocs being process-global is also why the whole
	// measured section runs under the pool's allocation token: a concurrent
	// scenario's allocations inside the window would fail the invariant for
	// this one, so the token drains every other in-flight point first and
	// holds new ones back until the reps finish.
	const allocTxns = 8000
	return pool.WithAllocToken(func() error {
		best := -1.0
		for rep := 0; rep < 3; rep++ {
			var before, after runtime.MemStats
			// Two collections: the second waits out sweep work the first
			// queued, so finalizer and sweep allocations land before the
			// window opens.
			runtime.GC()
			runtime.GC()
			runtime.ReadMemStats(&before)
			allocRes, err := e.Run(engine.RunOptions{Transactions: allocTxns, Seed: seed + 2 + int64(rep), Workers: 1})
			runtime.ReadMemStats(&after)
			if err != nil {
				return fmt.Errorf("alloc-check run: %w", err)
			}
			n := allocRes.Committed + allocRes.Aborted
			if n == 0 {
				return fmt.Errorf("alloc-check run committed nothing")
			}
			perTxn := float64(after.Mallocs-before.Mallocs) / float64(n)
			if best < 0 || perTxn < best {
				best = perTxn
			}
		}
		if best >= 0.5 {
			return fmt.Errorf("steady state allocates: %.3f allocs/txn over %d txns", best, allocTxns)
		}
		return nil
	})
}

// runCrashPair runs the committed-state-equivalence drill: a fault-free
// serial reference, then an identical run crashed mid-way and recovered from
// the write-ahead logs. Key sets (the state redo records define) must match.
func runCrashPair(sc fuzzScenario, seed int64) error {
	lc := wal.DefaultConfig()
	lc.Keep = 0 // the drill replays the full history
	// Both twins coalesce identically, so the drill checks that recovery from
	// net-delta flushes reproduces exactly the fault-free committed state.
	lc.CoalesceRecords = sc.coalesce
	build := func() (*engine.Engine, error) {
		cfg := engine.Config{
			Design:    sc.crashDesign,
			Workload:  sc.wl,
			Topology:  sc.profile.Build(),
			LogConfig: &lc,
		}
		if sc.crashDesign == engine.SharedNothing {
			cfg.IslandLevel = sc.level
			cfg.DeviceLayout = sc.layout
		}
		return engine.New(cfg)
	}
	const txns = 1000
	ref, err := build()
	if err != nil {
		return fmt.Errorf("crash reference engine: %w", err)
	}
	refRes, err := ref.Run(engine.RunOptions{Transactions: txns, Seed: seed, Workers: 1})
	if err != nil {
		return fmt.Errorf("crash reference run: %w", err)
	}
	if refRes.Aborted != 0 {
		return fmt.Errorf("serial reference aborted %d transactions", refRes.Aborted)
	}
	ndev := 0
	if sc.crashDesign == engine.SharedNothing && sc.layout != "" {
		ndev = deviceCount(sc.layout, sc.profile.Build())
	}
	sched, err := fault.NewSchedule(
		fault.Machine{Sockets: sc.profile.Build().Sockets(), Devices: ndev},
		fault.CrashAndRecover(refRes.VirtualTime/2))
	if err != nil {
		return fmt.Errorf("crash schedule: %w", err)
	}
	drill, err := build()
	if err != nil {
		return fmt.Errorf("crash drill engine: %w", err)
	}
	drillRes, err := drill.Run(engine.RunOptions{Transactions: txns, Seed: seed, Workers: 1, Faults: sched})
	if err != nil {
		return fmt.Errorf("crash drill run: %w", err)
	}
	if drillRes.Committed != refRes.Committed {
		return fmt.Errorf("crash drill committed %d, fault-free twin %d", drillRes.Committed, refRes.Committed)
	}
	if where, ok := fuzzKeySetsEqual(ref.TableKeySets(), drill.TableKeySets()); !ok {
		return fmt.Errorf("post-recovery state differs from the fault-free twin at %s", where)
	}
	return nil
}

func fuzzKeySetsEqual(a, b map[string][]schema.Key) (string, bool) {
	if len(a) != len(b) {
		return "table count", false
	}
	for name, ka := range a {
		kb, ok := b[name]
		if !ok || len(ka) != len(kb) {
			return name, false
		}
		for i := range ka {
			if ka[i] != kb[i] {
				return name, false
			}
		}
	}
	return "", true
}

// FuzzScenarios composes and runs seeded random scenarios — {workload,
// machine profile, device layout, fault schedule} — and checks the standing
// invariants on every one: the system keeps committing under faults, no site
// is left on dead hardware or a failed device, the planner converges,
// committed state survives a crash drill bit-for-bit, and the steady state
// stays allocation-free. Failures carry a minimal reproducer (the scenario's
// own seed).
func FuzzScenarios(opts FuzzOptions) (*FuzzReport, error) {
	if opts.Scenarios <= 0 {
		opts.Scenarios = 25
	}
	s := opts.Scale
	if s.Transactions == 0 {
		s = QuickScale()
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	report := &FuzzReport{Scenarios: opts.Scenarios}
	// One pool point per scenario. Verdicts land in per-scenario slots and
	// are compacted in submission order afterwards, so the failure list is
	// identical at any concurrency; scenario construction errors are harness
	// bugs and abort via the joined pool error.
	pool := NewPool(opts.Parallel)
	verdicts := make([]*FuzzFailure, opts.Scenarios)
	jobs := make([]PointFn, opts.Scenarios)
	for i := 0; i < opts.Scenarios; i++ {
		jobs[i] = func() error {
			seed := opts.Seed + int64(i)
			sc, err := buildScenario(s, seed)
			if err != nil {
				return err
			}
			if err := runScenario(pool, s, sc, seed); err != nil {
				verdicts[i] = &FuzzFailure{
					Scenario:  i,
					Seed:      seed,
					Descr:     sc.String(),
					Reproduce: fmt.Sprintf("go run ./cmd/atrapos-bench -fuzz 1 -seed %d", seed),
					Err:       err.Error(),
				}
			}
			return nil
		}
	}
	if err := pool.Run(jobs); err != nil {
		return nil, err
	}
	for _, f := range verdicts {
		if f != nil {
			report.Failures = append(report.Failures, *f)
		}
	}
	return report, nil
}
