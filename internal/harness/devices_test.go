package harness

import (
	"testing"

	"atrapos/internal/topology"
)

// sweepBest returns the winning level and the per-level TPS of one layout at
// one multisite percentage.
func sweepBest(t *testing.T, points []DevicePoint, layout string, pct int) (topology.Level, map[string]float64) {
	t.Helper()
	tps := make(map[string]float64)
	best, bestTPS := topology.Level(0), -1.0
	for _, pt := range points {
		if pt.Layout != layout || pt.MultiPct != pct {
			continue
		}
		tps[pt.Level] = pt.TPS
		if pt.TPS > bestTPS {
			lvl, err := topology.ParseLevel(pt.Level)
			if err != nil {
				t.Fatalf("unparseable level %q", pt.Level)
			}
			best, bestTPS = lvl, pt.TPS
		}
	}
	if bestTPS < 0 {
		t.Fatalf("no points for layout %s at %d%%", layout, pct)
	}
	return best, tps
}

// TestDeviceSweepCrossoverShift asserts the headline result of the log-device
// subsystem: the granularity crossover moves as devices get scarcer. With one
// NVMe namespace per socket, fine islands keep their flush paths spread and
// win at 0% multisite; with a single SATA-class device every level's commits
// serialize through the same queue, the fine-island advantage is erased, and
// the best granularity at the same multisite share is strictly coarser.
func TestDeviceSweepCrossoverShift(t *testing.T) {
	points, err := DeviceSweep(testScale(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	plentiful, plentifulTPS := sweepBest(t, points, "nvme-per-socket", 0)
	scarce, scarceTPS := sweepBest(t, points, "single-sata", 0)
	if !(plentiful < scarce) {
		t.Errorf("best level at 0%% multisite should be strictly finer with per-socket NVMe (%v) than with a single device (%v)",
			plentiful, scarce)
	}
	// The fine-over-coarse advantage must shrink with the device count, with
	// clear separation: per-socket NVMe leaves core islands ahead of socket
	// islands, the single device puts them behind.
	rPlentiful := plentifulTPS["core"] / plentifulTPS["socket"]
	rScarce := scarceTPS["core"] / scarceTPS["socket"]
	if !(rPlentiful > 1.0 && rScarce < 1.0) {
		t.Errorf("core/socket throughput ratio should drop below 1 as devices get scarce: per-socket NVMe %.3f, single SATA %.3f",
			rPlentiful, rScarce)
	}
	// Every point carries its layout's device count.
	for _, pt := range points {
		want := map[string]int{"nvme-per-socket": 2, "nvme-per-die-pair": 4, "single-sata": 1}[pt.Layout]
		if pt.Devices != want {
			t.Errorf("%s reports %d devices, want %d", pt.Layout, pt.Devices, want)
		}
	}
}

// TestFigLogDevicesRegistered checks the experiment is reachable by id and
// renders one row per layout and percentage.
func TestFigLogDevicesRegistered(t *testing.T) {
	if _, ok := Lookup("fig-log-devices"); !ok {
		t.Fatal("fig-log-devices not registered")
	}
	tbl, err := FigLogDevices(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(deviceSweepLayouts()) * 3; len(tbl.Rows) != want {
		t.Errorf("fig-log-devices has %d rows, want %d", len(tbl.Rows), want)
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] == "" {
			t.Errorf("row %v has no winner", row)
		}
	}
}
