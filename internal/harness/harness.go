// Package harness drives the experiments of the paper's evaluation section:
// one driver per table and figure, each producing the same rows or series the
// paper reports. The drivers are used by the root-level benchmarks and by the
// atrapos-bench command.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"atrapos/internal/engine"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/workload"
)

// Scale controls how large the experiments run. The paper's hardware is an
// 8-socket, 80-core machine with multi-gigabyte datasets; the quick scale
// keeps every experiment to a few seconds so the full suite can run in CI.
type Scale struct {
	// CoresPerSocket and MaxSockets describe the largest machine simulated.
	CoresPerSocket int
	MaxSockets     int
	// MicroRows is the dataset size of the microbenchmarks.
	MicroRows int
	// Subscribers is the TATP population.
	Subscribers int
	// Warehouses and CustomersPerDistrict / Items scale TPC-C.
	Warehouses           int
	CustomersPerDistrict int
	Items                int
	// Transactions is the number of transactions per measured point.
	Transactions int
	// Workers is the number of executing goroutines (0 = automatic).
	Workers int
	// Parallel is how many independent sweep points / experiments the harness
	// pool runs concurrently. 0 preserves the legacy serial semantics exactly
	// (points run in order with Workers passed through untouched); 1 runs
	// points serially with the pool's deterministic per-point worker pinning;
	// N > 1 fans points out across N goroutines. See pointWorkers for how the
	// per-point engine worker count is budgeted.
	Parallel int
	// Seed makes runs repeatable.
	Seed int64
	// Profile optionally names a machine profile (topology.Profiles) to run
	// the experiments on instead of the scale's own MaxSockets x
	// CoresPerSocket machine. Experiments that sweep the socket count keep
	// their sweep; everything that uses the scale's largest machine uses the
	// profile's shape.
	Profile string
}

// QuickScale returns a scale suitable for tests and benchmarks: a 4-socket,
// 16-core Island machine and datasets in the thousands of rows.
func QuickScale() Scale {
	return Scale{
		CoresPerSocket:       4,
		MaxSockets:           4,
		MicroRows:            8000,
		Subscribers:          8000,
		Warehouses:           2,
		CustomersPerDistrict: 60,
		Items:                2000,
		Transactions:         2500,
		Seed:                 42,
	}
}

// PaperScale returns the paper's setup: 8 sockets of 10 cores, 800 K
// subscribers, and larger per-point transaction counts. Running every
// experiment at this scale takes minutes rather than seconds.
func PaperScale() Scale {
	return Scale{
		CoresPerSocket:       10,
		MaxSockets:           8,
		MicroRows:            800_000,
		Subscribers:          800_000,
		Warehouses:           80,
		CustomersPerDistrict: 3000,
		Items:                100_000,
		Transactions:         40_000,
		Seed:                 42,
	}
}

// topologyWith returns an Island machine with the given number of sockets.
func (s Scale) topologyWith(sockets int) *topology.Topology {
	return topology.MustNew(topology.Config{
		Name:           fmt.Sprintf("%d-socket x %d-core", sockets, s.CoresPerSocket),
		Sockets:        sockets,
		CoresPerSocket: s.CoresPerSocket,
	})
}

// Validate reports whether the scale is usable; today that means the pinned
// machine profile, if any, names a known profile. RunExperiment and RunAll
// check it up front so a typo surfaces as an error instead of a panic deep
// inside an experiment.
func (s Scale) Validate() error {
	if s.Profile != "" {
		if _, err := topology.BuildProfile(s.Profile); err != nil {
			return err
		}
	}
	return nil
}

// Topology returns the machine the experiments run on: the named profile's
// machine when Scale.Profile is set (panicking on an unknown name — callers
// reach this only through entry points that ran Validate first), otherwise
// the largest machine of the scale.
func (s Scale) Topology() *topology.Topology {
	if s.Profile != "" {
		top, err := topology.BuildProfile(s.Profile)
		if err != nil {
			panic(err)
		}
		return top
	}
	return s.topologyWith(s.MaxSockets)
}

// socketSweep returns the socket counts used by the scaling figures
// (1, 2, 4, ... up to MaxSockets), mirroring the paper's x-axis.
func (s Scale) socketSweep() []int {
	var out []int
	for n := 1; n <= s.MaxSockets; n *= 2 {
		out = append(out, n)
	}
	if len(out) == 0 || out[len(out)-1] != s.MaxSockets {
		out = append(out, s.MaxSockets)
	}
	return out
}

// Table is a rendered experiment result: a title, a header and rows of cells.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries commentary printed under the table (e.g. how a metric
	// maps onto the paper's).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widthAt(widths, i, len(c)), c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func widthAt(widths []int, i, fallback int) int {
	if i < len(widths) {
		return widths[i]
	}
	return fallback
}

// Experiment is a named driver that reproduces one table or figure.
type Experiment struct {
	ID          string
	Description string
	Run         func(Scale) (*Table, error)
}

// Registry returns every experiment in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Instructions retired per cycle (useful-work fraction proxy) on a perfectly partitionable workload", Fig1},
		{"fig2", "Throughput of shared-nothing, centralized and PLP as sockets grow", Fig2},
		{"fig3", "Throughput as the percentage of multi-site transactions grows", Fig3},
		{"fig4", "Per-transaction time breakdown for coarse shared-nothing", Fig4},
		{"table1", "Throughput per socket under local/central/remote memory allocation", Table1},
		{"fig5", "Throughput of a perfectly partitionable workload including ATraPos", Fig5},
		{"fig6", "Simple two-table transaction under different partitioning/placement strategies", Fig6},
		{"fig7", "TPC-C NewOrder transaction flow graph", Fig7},
		{"fig8", "TATP and TPC-C throughput of ATraPos normalized over PLP", Fig8},
		{"table2", "Monitoring overhead on TATP", Table2},
		{"fig9", "Repartitioning cost as the number of actions grows", Fig9},
		{"fig10", "Adapting to workload changes (static vs ATraPos)", Fig10},
		{"fig11", "Adapting to sudden workload skew", Fig11},
		{"fig12", "Adapting to a processor failure", Fig12},
		{"fig13", "Adapting to frequent workload changes", Fig13},
		{"fig-drift", "Adapting to a continuously drifting hotspot (new scenario)", FigDrift},
		{"fig-oscillate", "Adapting to an oscillating access skew (new scenario)", FigOscillate},
		{"fig-islands", "Island-size sweep: shared-nothing granularity per machine profile and multisite probability", FigIslands},
		{"fig-log-devices", "Log-device sweep: island granularity under progressively scarcer log devices", FigLogDevices},
		{"fig-group-commit", "Coalescing group commit: write-combining WAL accumulator on/off across device layouts", FigGroupCommit},
		{"fig-adaptive-granularity", "Adaptive island granularity: the planner re-wires the machine as the multisite share drifts", FigAdaptiveGranularity},
		{"ablation-txnlist", "Ablation: centralized vs per-socket transaction list", AblationTxnList},
		{"ablation-statelock", "Ablation: centralized vs per-socket state locks", AblationStateLock},
		{"ablation-placement", "Ablation: placement step (Algorithm 2) on vs off", AblationPlacement},
		{"ablation-subparts", "Ablation: sub-partition granularity of the monitor", AblationSubPartitions},
		{"ablation-sli", "Ablation: speculative lock inheritance in the centralized design", AblationSLI},
		{"fig-faults", "Fault injection: fail→degrade→restore schedule with device re-homing and elastic recovery", FigFaults},
		{"fig-executed", "Executed storage: real sharded hash backend vs priced model, with cost-model calibration", FigExecuted},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the registered experiment ids.
func IDs() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, e := range reg {
		out[i] = e.ID
	}
	return out
}

// ExperimentResult is one experiment's outcome under RunAllTimed: the
// rendered table (nil on failure), the experiment's own wall time, and its
// error if it failed.
type ExperimentResult struct {
	ID    string
	Table *Table
	Wall  time.Duration
	Err   error
}

// RunAll executes every experiment at the given scale. Experiments run
// through the harness pool at Scale.Parallel concurrency; failures are
// aggregated (every experiment runs) and joined into the returned error, with
// the successful tables returned in registry order.
func RunAll(s Scale) ([]*Table, error) {
	results, err := RunAllTimed(s)
	var out []*Table
	for _, r := range results {
		if r.Table != nil {
			out = append(out, r.Table)
		}
	}
	return out, err
}

// RunAllTimed is RunAll with per-experiment wall times: every experiment is
// one pool point, results come back in registry order no matter the
// completion order, and a failing experiment reports its error in its slot
// (and in the joined return error) without aborting the others. Each
// experiment's internal sweeps run serially with the per-point engine worker
// count pinned (see pointWorkers), so the registry is the unit of
// parallelism and results do not depend on Scale.Parallel.
func RunAllTimed(s Scale) ([]ExperimentResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	inner := s
	if s.Parallel != 0 {
		// Pin the per-point worker count at the outer scale's budget and
		// disable nested pooling: C experiments x C sweep points would
		// oversubscribe quadratically, and the registry alone has enough
		// fan-out.
		inner.Workers = s.pointWorkers()
		inner.Parallel = 1
	}
	reg := Registry()
	results := make([]ExperimentResult, len(reg))
	jobs := make([]PointFn, len(reg))
	for i, e := range reg {
		jobs[i] = func() error {
			start := time.Now()
			t, err := e.Run(inner)
			results[i] = ExperimentResult{ID: e.ID, Table: t, Wall: time.Since(start)}
			if err != nil {
				results[i].Table = nil
				results[i].Err = fmt.Errorf("%s: %w", e.ID, err)
				return results[i].Err
			}
			return nil
		}
	}
	err := s.pool().Run(jobs)
	return results, err
}

// --- shared helpers ---

// parallel is the effective pool concurrency of the scale.
func (s Scale) parallel() int {
	if s.Parallel < 1 {
		return 1
	}
	return s.Parallel
}

// pool returns the scheduler the scale's sweeps fan their points into.
func (s Scale) pool() *Pool { return NewPool(s.parallel()) }

// pointWorkers is the engine worker count one sweep point runs with under
// the pool. A point's simulated results depend on its own worker count, so
// the count must not vary with the pool concurrency — otherwise -parallel
// would change the tables, not just the wall time. The budget keeps
// pool concurrency x per-point workers <= GOMAXPROCS:
//
//   - Parallel == 0 (legacy serial callers): Workers passes through exactly
//     as before the pool existed.
//   - automatic Workers under the pool: one worker per point, at every
//     concurrency — the pool supplies the parallelism, and -parallel 1 vs
//     -parallel N produce bit-identical tables on any host.
//   - explicit Workers under the pool: respected, but capped at
//     GOMAXPROCS / Parallel (floored at 1) so the budget holds.
func (s Scale) pointWorkers() int {
	if s.Parallel == 0 {
		return s.Workers
	}
	if s.Workers <= 0 {
		return 1
	}
	budget := runtime.GOMAXPROCS(0) / s.Parallel
	if budget < 1 {
		budget = 1
	}
	if s.Workers < budget {
		return s.Workers
	}
	return budget
}

func (s Scale) runOptions() engine.RunOptions {
	return engine.RunOptions{Transactions: s.Transactions, Seed: s.Seed, Workers: s.pointWorkers()}
}

func runThroughput(e *engine.Engine, opts engine.RunOptions) (float64, *engine.Result, error) {
	res, err := e.Run(opts)
	if err != nil {
		return 0, nil, err
	}
	return res.ThroughputTPS, res, nil
}

func fmtTPS(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2f MTPS", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f KTPS", v/1e3)
	default:
		return fmt.Sprintf("%.0f TPS", v)
	}
}

func fmtFactor(v float64) string { return fmt.Sprintf("%.2fx", v) }

func fmtMicros(ns float64) string { return fmt.Sprintf("%.1f", ns/1e3) }

func fmtPercent(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// seriesTable renders one or more labelled throughput series, bucketed on a
// common virtual-time axis.
func seriesTable(id, title string, window vclock.Nanos, series map[string][]vclock.Sample, notes []string) *Table {
	labels := make([]string, 0, len(series))
	for l := range series {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	t := &Table{ID: id, Title: title, Header: append([]string{"t (s)"}, labels...), Notes: notes}
	// Index samples by window.
	byWindow := make(map[string]map[int64]float64)
	var maxWin int64
	for l, ss := range series {
		byWindow[l] = make(map[int64]float64, len(ss))
		for _, s := range ss {
			w := int64(s.At) / int64(window)
			byWindow[l][w] = s.Throughput
			if w > maxWin {
				maxWin = w
			}
		}
	}
	for w := int64(1); w <= maxWin; w++ {
		row := []string{fmt.Sprintf("%.3f", float64(w)*window.Seconds())}
		for _, l := range labels {
			row = append(row, fmt.Sprintf("%.0f", byWindow[l][w]))
		}
		t.AddRow(row...)
	}
	return t
}

// mixName gives the workload used by Figures 1, 2 and 5.
func (s Scale) partitionableWorkload() *workload.Workload {
	return workload.SingleRowRead(s.MicroRows)
}
