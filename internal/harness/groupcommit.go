package harness

import (
	"fmt"

	"atrapos/internal/engine"
	"atrapos/internal/topology"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

// groupCommitCoalesce is the write-combining threshold the sweep's "on"
// points use: large enough that the accumulator amortizes across commits
// instead of degrading to one physical flush per transaction.
const groupCommitCoalesce = 64

// groupCommitLayouts are the storage shapes the coalescing sweep compares:
// the plentiful one-NVMe-per-socket layout and the single SATA-class device
// that serializes every island's flushes — the shape where write-combining
// pays the most.
func groupCommitLayouts() []string {
	return []string{"nvme-per-socket", "single-sata"}
}

// GroupCommitPoint is one measured cell of the coalescing sweep: an island
// granularity under one device layout with the write-combining accumulator on
// or off, with the logical-vs-physical log split the run produced.
type GroupCommitPoint struct {
	Profile  string `json:"profile"`
	Layout   string `json:"layout"`
	Devices  int    `json:"devices"`
	Level    string `json:"island_level"`
	Coalesce int    `json:"coalesce_records"`

	TPS       float64 `json:"virtual_tps"`
	Committed int64   `json:"committed"`

	// The split the tentpole accounting separates: logical records appended
	// by transactions vs physical records and flushes that reached the
	// device after write-combining.
	LogicalRecords   int64 `json:"logical_records"`
	PhysicalRecords  int64 `json:"physical_records"`
	CoalescedRecords int64 `json:"coalesced_records"`
	PhysicalFlushes  int64 `json:"physical_flushes"`
	RideAlongFlushes int64 `json:"ride_along_flushes"`
	PhysicalBytes    int64 `json:"physical_bytes"`

	// RecordRatio is PhysicalRecords / LogicalRecords — the survival ratio
	// after net-delta collapse (1.0 with coalescing off).
	RecordRatio float64 `json:"record_ratio"`
}

// RunGroupCommitPoint measures the shared-nothing design at one island
// granularity under one log-device layout, with the coalescing accumulator
// configured by coalesce (0 = plain log).
func RunGroupCommitPoint(s Scale, prof topology.Profile, layout string, level topology.Level, coalesce int) (GroupCommitPoint, error) {
	wl := workload.ZipfHotkey(s.MicroRows, 10, 30)
	cfg := engine.Config{
		Design:       engine.SharedNothing,
		IslandLevel:  level,
		Workload:     wl,
		Topology:     prof.Build(),
		DeviceLayout: layout,
	}
	if coalesce > 0 {
		lc := wal.DefaultConfig()
		lc.CoalesceRecords = coalesce
		cfg.LogConfig = &lc
	}
	e, err := engine.New(cfg)
	if err != nil {
		return GroupCommitPoint{}, err
	}
	res, err := e.Run(s.runOptions())
	if err != nil {
		return GroupCommitPoint{}, err
	}
	pt := GroupCommitPoint{
		Profile:          prof.Name,
		Layout:           layout,
		Devices:          e.Devices().NumDevices(),
		Level:            level.String(),
		Coalesce:         coalesce,
		TPS:              res.ThroughputTPS,
		Committed:        res.Committed,
		LogicalRecords:   res.Log.LogicalRecords,
		PhysicalRecords:  res.Log.PhysicalRecords,
		CoalescedRecords: res.Log.CoalescedRecords,
		PhysicalFlushes:  res.Log.PhysicalFlushes,
		RideAlongFlushes: res.Log.RideAlongFlushes,
		PhysicalBytes:    res.Log.PhysicalBytes,
	}
	if pt.LogicalRecords > 0 {
		// Control records (commit, 2PC) are physical but never logical, so
		// subtract them by counting only write records: logical records all
		// become physical on the plain log, making the off-ratio exactly 1.
		pt.RecordRatio = float64(pt.LogicalRecords-pt.CoalescedRecords) / float64(pt.LogicalRecords)
	}
	return pt, nil
}

// GroupCommitSweep runs the coalescing on/off grid over the sweep layouts and
// every island level the machine distinguishes. Points run through the
// harness pool (Scale.Parallel) with results in grid order and per-point
// errors aggregated.
func GroupCommitSweep(s Scale) ([]GroupCommitPoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	prof, err := deviceSweepProfile(s)
	if err != nil {
		return nil, err
	}
	type cell struct {
		layout   string
		coalesce int
		level    topology.Level
	}
	var grid []cell
	for _, layout := range groupCommitLayouts() {
		for _, coalesce := range []int{0, groupCommitCoalesce} {
			for _, level := range prof.Levels() {
				grid = append(grid, cell{layout, coalesce, level})
			}
		}
	}
	out := make([]GroupCommitPoint, len(grid))
	jobs := make([]PointFn, len(grid))
	for i, c := range grid {
		jobs[i] = func() error {
			pt, err := RunGroupCommitPoint(s, prof, c.layout, c.level, c.coalesce)
			if err != nil {
				return fmt.Errorf("group-commit %s/%s/%s/c=%d: %w", prof.Name, c.layout, c.level, c.coalesce, err)
			}
			out[i] = pt
			return nil
		}
	}
	if err := s.pool().Run(jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// FigGroupCommit is the coalescing group-commit sweep: on one machine it runs
// the zipf-hotkey workload — hot-key concentrated updates, within-transaction
// overwrite pairs, self-canceling churn — across island granularities and
// device layouts with the write-combining accumulator on and off. The
// expected shape: coalescing collapses roughly half the logical records into
// net deltas, cuts physical flushes, and on the single serialized device that
// relief is worth the most, so the fine-vs-coarse crossover moves toward
// finer islands relative to the coalescing-off runs.
func FigGroupCommit(s Scale) (*Table, error) {
	points, err := GroupCommitSweep(s)
	if err != nil {
		return nil, err
	}
	prof, err := deviceSweepProfile(s)
	if err != nil {
		return nil, err
	}
	levels := topology.Levels()
	header := []string{"layout", "coalesce"}
	for _, l := range levels {
		header = append(header, l.String())
	}
	header = append(header, "best", "phys/logical")
	t := &Table{
		ID:     "fig-group-commit",
		Title:  fmt.Sprintf("Coalescing group commit: zipf-hotkey throughput by layout, island granularity and write-combining (%s)", prof.Name),
		Header: header,
		Notes: []string{
			"coalesce=0 is the plain per-island log; coalesce=64 folds committed records into (table,key) net deltas before flushing.",
			"phys/logical is the surviving write-record ratio at the finest level; self-canceling and overwriting updates push it below 1.",
			"Expected shift: on the single SATA device coalescing relieves the serialized flush path, moving the best island level finer and lifting throughput.",
		},
	}
	type cell struct {
		pt GroupCommitPoint
		ok bool
	}
	byKey := make(map[string]cell)
	key := func(layout string, coalesce int, level string) string {
		return fmt.Sprintf("%s|%d|%s", layout, coalesce, level)
	}
	for _, pt := range points {
		byKey[key(pt.Layout, pt.Coalesce, pt.Level)] = cell{pt: pt, ok: true}
	}
	for _, layout := range groupCommitLayouts() {
		for _, coalesce := range []int{0, groupCommitCoalesce} {
			row := []string{layout, fmt.Sprintf("%d", coalesce)}
			bestLevel, bestTPS := "", -1.0
			ratio := ""
			for _, l := range levels {
				c := byKey[key(layout, coalesce, l.String())]
				if !c.ok {
					row = append(row, "-")
					continue
				}
				row = append(row, fmtTPS(c.pt.TPS))
				if c.pt.TPS > bestTPS {
					bestTPS = c.pt.TPS
					bestLevel = c.pt.Level
				}
				if ratio == "" {
					ratio = fmt.Sprintf("%.2f", c.pt.RecordRatio)
				}
			}
			row = append(row, bestLevel, ratio)
			t.AddRow(row...)
		}
	}
	return t, nil
}
