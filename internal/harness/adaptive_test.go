package harness

import (
	"strings"
	"testing"

	"atrapos/internal/engine"
	"atrapos/internal/workload"
)

// TestDriftAndOscillateScenarios runs the two new adaptivity scenario
// families end to end and checks the rendered output carries the diff
// reporting.
func TestDriftAndOscillateScenarios(t *testing.T) {
	for _, fn := range []func(Scale) (*Table, error){FigDrift, FigOscillate} {
		tbl, err := fn(testScale())
		if err != nil {
			t.Fatal(err)
		}
		if len(tbl.Rows) < 5 {
			t.Errorf("%s series has only %d samples", tbl.ID, len(tbl.Rows))
		}
		rendered := tbl.String()
		if !strings.Contains(rendered, "adaptation cost share") {
			t.Errorf("%s notes should report the adaptation cost share:\n%s", tbl.ID, rendered)
		}
	}
}

// TestDriftRepartitionsAreIncremental is the acceptance check for the
// incremental pipeline: on the drifting-hotspot scenario only the Subscriber
// table carries load, so every repartitioning must leave at least one of the
// other TATP tables untouched — its runtime (partition count and lock
// tables) is reused rather than rebuilt.
func TestDriftRepartitionsAreIncremental(t *testing.T) {
	s := testScale()
	wl, err := workload.TATPDriftingHotspot(s.Subscribers, paperSecond(5))
	if err != nil {
		t.Fatal(err)
	}
	top := s.Topology()
	place := engine.DerivePlacement(wl, top, true)
	e, err := engine.New(engine.Config{
		Design:           engine.ATraPos,
		Workload:         wl,
		Topology:         top,
		Placement:        place,
		Adaptive:         true,
		AdaptiveInterval: adaptiveInterval(),
		TimeCompression:  timeCompression,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(engine.RunOptions{
		Duration:        paperSecond(60),
		MaxTransactions: 40 * s.Transactions,
		Seed:            s.Seed,
		Workers:         s.Workers,
		SampleWindow:    adaptiveWindow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repartitions == 0 {
		t.Fatal("drifting hotspot never triggered a repartitioning")
	}
	if len(res.RepartitionDiffs) != int(res.Repartitions) {
		t.Errorf("recorded %d diffs for %d repartitions", len(res.RepartitionDiffs), res.Repartitions)
	}
	reusedTable := false
	reusedLocks := false
	for _, d := range res.RepartitionDiffs {
		if d.UnchangedTables >= 1 {
			reusedTable = true
		}
		if d.ReusedLockTables >= 1 {
			reusedLocks = true
		}
	}
	if !reusedTable {
		t.Errorf("no repartitioning reused an unchanged table runtime; diffs: %+v", res.RepartitionDiffs)
	}
	if !reusedLocks {
		t.Errorf("no repartitioning carried over any partition lock table; diffs: %+v", res.RepartitionDiffs)
	}
	if res.AdaptationCostShare <= 0 || res.AdaptationCostShare >= 1 {
		t.Errorf("adaptation cost share %.4f out of range (0,1)", res.AdaptationCostShare)
	}
}
