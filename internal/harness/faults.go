package harness

import (
	"fmt"

	"atrapos/internal/engine"
	"atrapos/internal/fault"
	"atrapos/internal/topology"
	"atrapos/internal/workload"
)

// FaultPhase is the average throughput over one phase of the fault timeline.
type FaultPhase struct {
	Label  string  `json:"label"`
	FromS  float64 `json:"from_s"`
	ToS    float64 `json:"to_s"`
	AvgTPS float64 `json:"avg_tps"`
}

// FaultTimeline is the measured outcome of the fig-faults scenario: the
// fail→degrade→restore schedule an adaptive shared-nothing engine ran under,
// per-phase average throughput, and the asserted (not eyeballed) robustness
// facts — the dips, the recovery, the re-homed island logs, and the wiring's
// convergence at the end.
type FaultTimeline struct {
	Profile  string `json:"profile"`
	Layout   string `json:"layout"`
	Schedule string `json:"schedule"`
	// Committed counts transactions committed across the whole timeline: the
	// system degrades, it does not stop.
	Committed int64        `json:"committed"`
	Phases    []FaultPhase `json:"phases"`
	// DipOnDeviceFailure / DipOnSocketFailure report whether throughput fell
	// below the healthy phase while the device, respectively the socket, was
	// out. RecoveredAfterRestore reports whether it climbed back above the
	// socket-failed phase once the socket returned.
	DipOnDeviceFailure    bool `json:"dip_on_device_failure"`
	DipOnSocketFailure    bool `json:"dip_on_socket_failure"`
	RecoveredAfterRestore bool `json:"recovered_after_restore"`
	// RehomedLogs counts island logs whose device binding the planner
	// re-derived across the timeline (records preserved).
	RehomedLogs int `json:"rehomed_logs"`
	// Converged reports the end-of-run wiring invariant: every site on alive
	// hardware, no island log on a failed device.
	Converged bool `json:"converged"`
}

// faultTimelineSchedule is the fig-faults fault schedule on a machine with
// the given socket count and device count: a log device fails at t=10, the
// surviving device degrades 2x at t=20, a socket fails at t=30, the surviving
// device returns to healthy latency at t=38 (DegradeDevice back to factor 1)
// and the socket returns at t=40 (times in compressed paper seconds). The
// degrade window is bounded because the model's drain-based device queue is
// honest about saturation: a device held below the append rate for the rest
// of the run accumulates backlog without bound and commit latency diverges,
// so nothing would "recover" after the socket restore.
func faultTimelineSchedule(sockets, devices int) (*fault.Schedule, error) {
	return fault.NewSchedule(fault.Machine{Sockets: sockets, Devices: devices},
		fault.FailDevice(paperSecond(10), 0),
		fault.DegradeDevice(paperSecond(20), devices-1, 2),
		fault.FailSocket(paperSecond(30), topology.SocketID(sockets-1)),
		fault.DegradeDevice(paperSecond(38), devices-1, 1),
		fault.RestoreSocket(paperSecond(40), topology.SocketID(sockets-1)),
	)
}

// RunFaultTimeline executes the fig-faults scenario: an adaptive parametric
// shared-nothing engine on the device-sweep profile (chiplet-2s4d unless the
// scale pins another), island logs on one NVMe namespace per socket, under the
// fail→degrade→restore schedule. It is the data behind the fig-faults
// experiment and the BENCH.json faults record.
func RunFaultTimeline(s Scale) (*FaultTimeline, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	prof, err := deviceSweepProfile(s)
	if err != nil {
		return nil, err
	}
	const layout = "nvme-per-socket"
	top := prof.Build()
	wl := workload.MultisiteUpdate(s.MicroRows, 10)
	e, err := engine.New(engine.Config{
		Design:           engine.SharedNothing,
		IslandLevel:      topology.LevelDie,
		Workload:         wl,
		Topology:         top,
		DeviceLayout:     layout,
		Adaptive:         true,
		AdaptiveInterval: adaptiveInterval(),
		TimeCompression:  timeCompression,
	})
	if err != nil {
		return nil, err
	}
	sched, err := faultTimelineSchedule(top.Sockets(), e.Devices().NumDevices())
	if err != nil {
		return nil, err
	}
	res, err := e.Run(engine.RunOptions{
		Duration:        paperSecond(60),
		MaxTransactions: 40 * s.Transactions,
		Seed:            s.Seed,
		Workers:         s.Workers,
		SampleWindow:    adaptiveWindow,
		Faults:          sched,
	})
	if err != nil {
		return nil, err
	}

	// Phase averages, leaving a settle second after each fault so a phase
	// measures its steady state, not the planner's reaction latency.
	avg := func(fromS, toS float64) float64 {
		var sum float64
		var n int
		for _, sm := range res.Series {
			at := float64(sm.At) / float64(adaptiveWindow)
			if at > fromS && at <= toS {
				sum += sm.Throughput
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	phases := []FaultPhase{
		{Label: "healthy", FromS: 1, ToS: 10},
		{Label: "device-failed", FromS: 11, ToS: 20},
		{Label: "device-degraded", FromS: 21, ToS: 30},
		{Label: "socket-failed", FromS: 31, ToS: 40},
		// Ends at 55 rather than 60: the run winds down when the busiest core
		// crosses the duration, so the last few windows are sparsely populated
		// and would drag the phase average under the true steady state.
		{Label: "socket-restored", FromS: 42, ToS: 55},
	}
	for i := range phases {
		phases[i].AvgTPS = avg(phases[i].FromS, phases[i].ToS)
	}
	rehomed := 0
	for _, lc := range res.LevelChanges {
		rehomed += lc.ReboundDevices
	}
	healthy, devFailed := phases[0].AvgTPS, phases[1].AvgTPS
	sockFailed, restored := phases[3].AvgTPS, phases[4].AvgTPS
	return &FaultTimeline{
		Profile:               prof.Name,
		Layout:                layout,
		Schedule:              sched.String(),
		Committed:             res.Committed,
		Phases:                phases,
		DipOnDeviceFailure:    devFailed < healthy,
		DipOnSocketFailure:    sockFailed < healthy,
		RecoveredAfterRestore: restored > sockFailed,
		RehomedLogs:           rehomed,
		Converged:             e.WiringConverged(),
	}, nil
}

// FigFaults is the fault-injection experiment: one log device fails under the
// island logs, the survivor degrades, a socket fails and later returns. The
// planner is expected to re-home the affected logs (keeping their records),
// shrink onto the surviving hardware, and re-expand when capacity comes back
// — throughput dips on each fault and recovers after the restore.
func FigFaults(s Scale) (*Table, error) {
	tl, err := RunFaultTimeline(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig-faults",
		Title:  fmt.Sprintf("Throughput across a fail→degrade→restore fault schedule (%s, %s)", tl.Profile, tl.Layout),
		Header: []string{"phase", "t (s)", "avg TPS"},
		Notes: []string{
			"schedule " + tl.Schedule,
			fmt.Sprintf("dip on device failure: %v; dip on socket failure: %v; recovered after restore: %v",
				tl.DipOnDeviceFailure, tl.DipOnSocketFailure, tl.RecoveredAfterRestore),
			fmt.Sprintf("island logs re-homed off the failed device: %d; wiring converged: %v; %d committed",
				tl.RehomedLogs, tl.Converged, tl.Committed),
		},
	}
	for _, ph := range tl.Phases {
		t.AddRow(ph.Label, fmt.Sprintf("%.0f-%.0f", ph.FromS, ph.ToS), fmt.Sprintf("%.0f", ph.AvgTPS))
	}
	return t, nil
}

// phaseTPS returns the average throughput of the named phase (0 when absent);
// the test assertions use it instead of re-deriving window math.
func (tl *FaultTimeline) phaseTPS(label string) float64 {
	for _, ph := range tl.Phases {
		if ph.Label == label {
			return ph.AvgTPS
		}
	}
	return 0
}
