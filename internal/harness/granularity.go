package harness

import (
	"fmt"

	"atrapos/internal/core"
	"atrapos/internal/engine"
	"atrapos/internal/obs"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/workload"
)

// granularityProfile is the machine the adaptive-granularity experiment runs
// on by default; a pinned Scale.Profile overrides it.
const granularityProfile = "2s-fc"

// ScoreTermsRecord is the JSON-friendly rendering of one granularity-scorer
// per-term breakdown: the level it prices and the five additive terms whose
// sum is the total (lower is better).
type ScoreTermsRecord struct {
	Level    string  `json:"level"`
	Total    float64 `json:"total"`
	Locality float64 `json:"locality"`
	TxnState float64 `json:"txn_state"`
	Commit   float64 `json:"commit"`
	Conflict float64 `json:"conflict"`
	Comm     float64 `json:"comm"`
}

// GranularityChangeRecord is the JSON-friendly rendering of one online
// island-level change, as appended to the BENCH.json trajectory.
type GranularityChangeRecord struct {
	AtNanos           int64   `json:"at_nanos"`
	From              string  `json:"from"`
	To                string  `json:"to"`
	MultisiteShare    float64 `json:"multisite_share"`
	Cost              int64   `json:"cost"`
	AffectedCores     int     `json:"affected_cores"`
	ReusedLogs        int     `json:"reused_logs"`
	RebuiltLogs       int     `json:"rebuilt_logs"`
	ReusedLockTables  int     `json:"reused_lock_tables"`
	RebuiltLockTables int     `json:"rebuilt_lock_tables"`
	// WinnerScores and RunnerUpScores are the scorer's per-term breakdowns
	// for the level switched to and the best rejected alternative — the
	// explanation of the decision. Pointers so pre-existing documents (and
	// the strict -verify decoder) stay compatible: absent means an older
	// recording.
	WinnerScores   *ScoreTermsRecord `json:"winner_scores,omitempty"`
	RunnerUpScores *ScoreTermsRecord `json:"runner_up_scores,omitempty"`
}

// scoreTermsRecord converts a core.LevelBreakdown; nil for the zero value
// (a breakdown that was never computed, e.g. a record written before the
// scorer exported terms).
func scoreTermsRecord(b core.LevelBreakdown) *ScoreTermsRecord {
	if !b.Level.Valid() {
		return nil
	}
	return &ScoreTermsRecord{
		Level:    b.Level.String(),
		Total:    b.Total,
		Locality: b.Locality,
		TxnState: b.TxnState,
		Commit:   b.Commit,
		Conflict: b.Conflict,
		Comm:     b.Comm,
	}
}

// GranularityPhase summarizes one phase of the drifting-share scenario: the
// multisite percentage in force, the statically-best island level at that
// percentage (the fig-islands winner), and the level the adaptive engine was
// running at the end of the phase.
type GranularityPhase struct {
	MultiPct      int    `json:"multisite_pct"`
	StaticBest    string `json:"static_best"`
	AdaptiveLevel string `json:"adaptive_level"`
}

// GranularityTrajectory is the measured outcome of the adaptive-granularity
// scenario: where the planner started, how it re-wired the machine as the
// multisite share drifted across the crossover, and whether it tracked the
// statically-best level on either side.
type GranularityTrajectory struct {
	Profile    string                    `json:"profile"`
	StartLevel string                    `json:"start_level"`
	FinalLevel string                    `json:"final_level"`
	Committed  int64                     `json:"committed"`
	Phases     []GranularityPhase        `json:"phases"`
	Changes    []GranularityChangeRecord `json:"level_changes"`
}

// granularityScenario returns the drifting workload and phase layout: 0%
// multisite for the first half of the run, 100% for the second — one step
// across the island-size crossover in each direction of the granularity axis.
func granularityScenario(rows int) (*workload.Workload, vclock.Nanos, []int) {
	half := paperSecond(30)
	wl := workload.MultisiteUpdateDrifting(rows, func(at vclock.Nanos) int {
		if at < half {
			return 0
		}
		return 100
	})
	return wl, half, []int{0, 100}
}

// RunAdaptiveGranularity executes the adaptive-granularity scenario on the
// scale's profile (default 2s-fc): a parametric shared-nothing engine with
// Adaptive enabled, started deliberately at a mid-axis granularity, under a
// multisite share that drifts across the crossover. It also measures the
// statically-best level at each phase's multisite percentage, so callers (the
// fig-adaptive-granularity experiment, its test, and the BENCH.json
// trajectory) can compare where the planner converged against where the
// offline sweep says it should.
func RunAdaptiveGranularity(s Scale) (*GranularityTrajectory, error) {
	return RunAdaptiveGranularityFrom(s, nil)
}

// RunAdaptiveGranularityFrom is RunAdaptiveGranularity with optionally
// precomputed island-sweep points: when static contains a point for this
// profile at a phase's multisite percentage and level, it is used instead of
// re-running the measurement — the BENCH.json recorder passes the sweep it
// already ran.
func RunAdaptiveGranularityFrom(s Scale, static []IslandPoint) (*GranularityTrajectory, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	profName := s.Profile
	if profName == "" {
		profName = granularityProfile
	}
	prof, ok := topology.ProfileByName(profName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown profile %q", profName)
	}
	wl, half, pcts := granularityScenario(s.MicroRows)
	// Start in the middle of the granularity axis (the second-coarsest level
	// the machine distinguishes — socket on a multi-socket part, die on a
	// one-socket chiplet), so convergence to either endpoint is a real move.
	levels := prof.Build().DistinctLevels()
	start := levels[len(levels)-2]
	e, err := engine.New(engine.Config{
		Design:           engine.SharedNothing,
		IslandLevel:      start,
		Workload:         wl,
		Topology:         prof.Build(),
		Adaptive:         true,
		AdaptiveInterval: adaptiveInterval(),
		TimeCompression:  timeCompression,
	})
	if err != nil {
		return nil, err
	}
	res, err := e.Run(engine.RunOptions{
		Duration:        2 * half,
		MaxTransactions: 40 * s.Transactions,
		Seed:            s.Seed,
		Workers:         s.pointWorkers(),
		SampleWindow:    adaptiveWindow,
	})
	if err != nil {
		return nil, err
	}
	// Measure the static baseline's cells that the precomputed sweep does not
	// cover, fanned through the harness pool: each missing (pct, level) cell
	// is one independent fixed-level point.
	static, err = fillStaticPoints(s, prof, pcts, static)
	if err != nil {
		return nil, err
	}

	out := &GranularityTrajectory{
		Profile:    prof.Name,
		StartLevel: start.String(),
		FinalLevel: res.IslandLevel,
		Committed:  res.Committed,
	}
	for _, lc := range res.LevelChanges {
		out.Changes = append(out.Changes, GranularityChangeRecord{
			AtNanos:           int64(lc.At),
			From:              lc.From.String(),
			To:                lc.To.String(),
			MultisiteShare:    lc.MultisiteShare,
			Cost:              int64(lc.Cost),
			AffectedCores:     lc.AffectedCores,
			ReusedLogs:        lc.ReusedLogs,
			RebuiltLogs:       lc.RebuiltLogs,
			ReusedLockTables:  lc.ReusedLockTables,
			RebuiltLockTables: lc.RebuiltLockTables,
			WinnerScores:      scoreTermsRecord(lc.WinnerScores),
			RunnerUpScores:    scoreTermsRecord(lc.RunnerUpScores),
		})
	}

	// levelAt replays the trajectory to find the level in force at a time.
	levelAt := func(at vclock.Nanos) topology.Level {
		level := start
		for _, lc := range res.LevelChanges {
			if lc.At <= at {
				level = lc.To
			}
		}
		return level
	}
	for i, pct := range pcts {
		best, err := staticBestLevel(s, prof, pct, static)
		if err != nil {
			return nil, err
		}
		phaseEnd := vclock.Nanos(i+1) * half
		out.Phases = append(out.Phases, GranularityPhase{
			MultiPct:      pct,
			StaticBest:    best.String(),
			AdaptiveLevel: levelAt(phaseEnd).String(),
		})
	}
	return out, nil
}

// fillStaticPoints extends a precomputed island sweep with every (pct, level)
// cell of the static baseline it does not already cover, measuring the
// missing cells concurrently through the harness pool.
func fillStaticPoints(s Scale, prof topology.Profile, pcts []int, static []IslandPoint) ([]IslandPoint, error) {
	type cell struct {
		pct   int
		level topology.Level
	}
	var missing []cell
	for _, pct := range pcts {
		for _, level := range prof.Levels() {
			if _, ok := findIslandPoint(static, prof.Name, pct, level.String()); !ok {
				missing = append(missing, cell{pct, level})
			}
		}
	}
	if len(missing) == 0 {
		return static, nil
	}
	measured := make([]IslandPoint, len(missing))
	jobs := make([]PointFn, len(missing))
	for i, c := range missing {
		jobs[i] = func() error {
			pt, err := RunIslandPoint(s, prof, c.level, c.pct)
			if err != nil {
				return fmt.Errorf("static baseline %s/%s/%d%%: %w", prof.Name, c.level, c.pct, err)
			}
			measured[i] = pt
			return nil
		}
	}
	if err := s.pool().Run(jobs); err != nil {
		return nil, err
	}
	return append(static, measured...), nil
}

// staticBestLevel finds the island level with the highest throughput at a
// fixed multisite percentage — the per-column winner of fig-islands. Levels
// present in the precomputed points are taken from there; the rest are
// measured.
func staticBestLevel(s Scale, prof topology.Profile, pct int, static []IslandPoint) (topology.Level, error) {
	best, bestTPS := topology.Level(0), -1.0
	for _, level := range prof.Levels() {
		pt, ok := findIslandPoint(static, prof.Name, pct, level.String())
		if !ok {
			var err error
			pt, err = RunIslandPoint(s, prof, level, pct)
			if err != nil {
				return 0, err
			}
		}
		if pt.TPS > bestTPS {
			bestTPS = pt.TPS
			lvl, err := topology.ParseLevel(pt.Level)
			if err != nil {
				return 0, err
			}
			best = lvl
		}
	}
	return best, nil
}

// findIslandPoint looks a (profile, pct, level) cell up in a measured sweep.
func findIslandPoint(points []IslandPoint, profile string, pct int, level string) (IslandPoint, bool) {
	for _, pt := range points {
		if pt.Profile == profile && pt.MultiPct == pct && pt.Level == level {
			return pt, true
		}
	}
	return IslandPoint{}, false
}

// FigAdaptiveGranularity is the adaptive-granularity experiment: the
// multisite share of the microbenchmark drifts across the island-size
// crossover, and the parametric shared-nothing engine — with the planner
// proposing island-level changes off the hot path — is expected to track the
// statically-best granularity on either side.
func FigAdaptiveGranularity(s Scale) (*Table, error) {
	traj, err := RunAdaptiveGranularity(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig-adaptive-granularity",
		Title:  "Online island-level adaptation as the multisite share drifts across the crossover",
		Header: []string{"phase", "% multi-site", "static best", "adaptive level", "tracked"},
		Notes: []string{
			fmt.Sprintf("Profile %s; engine deliberately started at %s granularity; %d committed transactions.",
				traj.Profile, traj.StartLevel, traj.Committed),
		},
	}
	for i, ph := range traj.Phases {
		tracked := "yes"
		if ph.AdaptiveLevel != ph.StaticBest {
			tracked = "NO"
		}
		t.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", ph.MultiPct), ph.StaticBest, ph.AdaptiveLevel, tracked)
	}
	if len(traj.Changes) == 0 {
		t.Notes = append(t.Notes, "no level changes occurred")
	}
	for _, lc := range traj.Changes {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"t=%.0f: %s -> %s at measured multisite share %.2f; %d cores paused, logs %d reused/%d rebuilt, lock tables %d reused/%d rebuilt",
			float64(lc.AtNanos)/float64(adaptiveWindow), lc.From, lc.To, lc.MultisiteShare,
			lc.AffectedCores, lc.ReusedLogs, lc.RebuiltLogs, lc.ReusedLockTables, lc.RebuiltLockTables))
	}
	return t, nil
}

// tracedDriftProfile is the machine of the traced adaptive drift run: the
// two-socket four-die chiplet part, whose die level gives the planner a real
// mid-axis granularity to move through.
const tracedDriftProfile = "chiplet-2s4d"

// TracedDriftResult is the outcome of RunTracedDrift: the level trajectory
// plus the trace's own accounting, so callers (the bench CLI, CI smoke, the
// determinism oracle) can validate what was exported.
type TracedDriftResult struct {
	Trajectory *GranularityTrajectory
	// Trace and Metrics are the exported documents, byte-identical to the
	// files written at TracePath/MetricsPath.
	Trace   []byte
	Metrics []byte
	// Decisions is how many planner decisions the trace explains; DroppedSpans
	// is the tracer's overflow count (0 unless a ring filled up).
	Decisions    int
	DroppedSpans int64
}

// RunTracedDrift executes the adaptive-granularity drift scenario with the
// span tracer enabled and exports the trace and metrics documents (also to
// tracePath/metricsPath when non-empty). The engine runs with exactly one
// worker — the same budget the harness pool pins per point — so the virtual
// timeline, and therefore the exported trace, is bit-identical on any host
// and at any Scale.Parallel fan-out.
func RunTracedDrift(s Scale, tracePath, metricsPath string) (*TracedDriftResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	profName := s.Profile
	if profName == "" {
		profName = tracedDriftProfile
	}
	prof, ok := topology.ProfileByName(profName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown profile %q", profName)
	}
	wl, half, _ := granularityScenario(s.MicroRows)
	levels := prof.Build().DistinctLevels()
	start := levels[len(levels)-2]
	e, err := engine.New(engine.Config{
		Design:           engine.SharedNothing,
		IslandLevel:      start,
		Workload:         wl,
		Topology:         prof.Build(),
		Adaptive:         true,
		AdaptiveInterval: adaptiveInterval(),
		TimeCompression:  timeCompression,
		Tracing:          true,
	})
	if err != nil {
		return nil, err
	}
	res, err := e.Run(engine.RunOptions{
		Duration:        2 * half,
		MaxTransactions: 40 * s.Transactions,
		Seed:            s.Seed,
		Workers:         1,
		SampleWindow:    adaptiveWindow,
		TracePath:       tracePath,
		MetricsPath:     metricsPath,
	})
	if err != nil {
		return nil, err
	}
	tr := e.Tracer()
	if msg := tr.DropAccounting(); msg != "" {
		return nil, fmt.Errorf("harness: trace drop accounting violated: %s", msg)
	}
	out := &TracedDriftResult{
		Trajectory: &GranularityTrajectory{
			Profile:    prof.Name,
			StartLevel: start.String(),
			FinalLevel: res.IslandLevel,
			Committed:  res.Committed,
		},
		Trace:        tr.ExportChromeTrace(),
		Metrics:      tr.ExportMetricsCSV(),
		Decisions:    len(tr.Decisions()),
		DroppedSpans: tr.Dropped(),
	}
	for _, lc := range res.LevelChanges {
		out.Trajectory.Changes = append(out.Trajectory.Changes, GranularityChangeRecord{
			AtNanos:           int64(lc.At),
			From:              lc.From.String(),
			To:                lc.To.String(),
			MultisiteShare:    lc.MultisiteShare,
			Cost:              int64(lc.Cost),
			AffectedCores:     lc.AffectedCores,
			ReusedLogs:        lc.ReusedLogs,
			RebuiltLogs:       lc.RebuiltLogs,
			ReusedLockTables:  lc.ReusedLockTables,
			RebuiltLockTables: lc.RebuiltLockTables,
			WinnerScores:      scoreTermsRecord(lc.WinnerScores),
			RunnerUpScores:    scoreTermsRecord(lc.RunnerUpScores),
		})
	}
	if err := obs.ValidateChromeTrace(out.Trace); err != nil {
		return nil, fmt.Errorf("harness: exported trace invalid: %w", err)
	}
	if err := obs.ValidateMetricsCSV(out.Metrics); err != nil {
		return nil, fmt.Errorf("harness: exported metrics invalid: %w", err)
	}
	return out, nil
}
