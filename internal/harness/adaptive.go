package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"atrapos/internal/core"
	"atrapos/internal/engine"
	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/workload"
)

// adaptiveWindow is the virtual-time scale of the adaptivity experiments.
// The paper runs them for 50-180 wall-clock seconds; the reproduction
// compresses every "paper second" into one virtual millisecond so the whole
// time series completes in a few real seconds while preserving its shape.
const adaptiveWindow = vclock.Nanos(time.Millisecond)

// timeCompression is the corresponding compression factor passed to the
// engine so repartitioning costs stay proportional to the compressed timeline.
const timeCompression = float64(time.Second) / float64(adaptiveWindow)

// paperSecond converts the paper's x-axis seconds to the compressed scale.
func paperSecond(s float64) vclock.Nanos { return vclock.Nanos(float64(adaptiveWindow) * s) }

// adaptiveInterval returns the monitoring-interval configuration with the
// paper's 1 s initial and 8 s maximum intervals mapped to the compressed scale.
func adaptiveInterval() core.IntervalConfig {
	return core.IntervalConfig{
		Initial:         paperSecond(1),
		Max:             paperSecond(8),
		StableThreshold: 0.10,
		History:         5,
	}
}

// runSeries executes one engine for the given virtual duration and returns
// its throughput series sampled at the compressed one-second window.
func runSeries(e *engine.Engine, s Scale, duration vclock.Nanos, events []engine.Event) ([]vclock.Sample, *engine.Result, error) {
	res, err := e.Run(engine.RunOptions{
		Duration:        duration,
		MaxTransactions: 40 * s.Transactions,
		Seed:            s.Seed,
		Workers:         s.Workers,
		SampleWindow:    adaptiveWindow,
		Events:          events,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Series, res, nil
}

// staticAndAdaptive builds a static ATraPos engine (monitoring and adaptation
// disabled) and an adaptive one over the same workload and placement.
func staticAndAdaptive(wl *workload.Workload, top *topology.Topology) (*engine.Engine, *engine.Engine, error) {
	place := engine.DerivePlacement(wl, top, true)
	static, err := engine.New(engine.Config{Design: engine.ATraPos, Workload: wl, Topology: top, Placement: place})
	if err != nil {
		return nil, nil, err
	}
	adaptive, err := engine.New(engine.Config{
		Design:           engine.ATraPos,
		Workload:         wl,
		Topology:         top,
		Placement:        place,
		Adaptive:         true,
		AdaptiveInterval: adaptiveInterval(),
		TimeCompression:  timeCompression,
	})
	if err != nil {
		return nil, nil, err
	}
	return static, adaptive, nil
}

// Fig10 reproduces Figure 10: the TATP workload switches transaction class
// every 30 (compressed) seconds; the static system keeps its initial
// partitioning while ATraPos adapts.
func Fig10(s Scale) (*Table, error) {
	duration := paperSecond(90)
	mixAt, err := workload.Schedule([]workload.Phase{
		{Label: "UpdSubData", Duration: paperSecond(30), Mix: map[string]float64{workload.TATPUpdSubData: 1}},
		{Label: "GetNewDest", Duration: paperSecond(30), Mix: map[string]float64{workload.TATPGetNewDest: 1}},
		{Label: "TATP-Mix", Duration: paperSecond(30), Mix: workload.TATPStandardMix()},
	})
	if err != nil {
		return nil, err
	}
	wl, err := workload.TATP(workload.TATPOptions{Subscribers: s.Subscribers, MixAt: mixAt})
	if err != nil {
		return nil, err
	}
	wl.Name = "TATP-workload-change"
	return adaptiveComparison(s, "fig10", "Adapting to workload changes (throughput over time)", wl, duration, nil,
		"The workload switches every 30 time units: UpdSubData, then GetNewDest, then the TATP mix.")
}

// Fig11 reproduces Figure 11: GetSubData with uniform accesses until t=20,
// then 50% of the requests hit 20% of the data.
func Fig11(s Scale) (*Table, error) {
	duration := paperSecond(50)
	wl, err := workload.TATP(workload.TATPOptions{
		Subscribers: s.Subscribers,
		Mix:         map[string]float64{workload.TATPGetSubData: 1},
		Skew:        workload.Skew{HotDataFraction: 0.2, HotAccessFraction: 0.5, Start: paperSecond(20)},
	})
	if err != nil {
		return nil, err
	}
	wl.Name = "TATP-sudden-skew"
	return adaptiveComparison(s, "fig11", "Adapting to sudden workload skew", wl, duration, nil,
		"At t=20 half of the requests start hitting 20% of the subscribers.")
}

// Fig12 reproduces Figure 12: one socket fails at t=20; the static system
// overloads the fallback socket while ATraPos repartitions over the
// remaining cores.
func Fig12(s Scale) (*Table, error) {
	duration := paperSecond(50)
	wl := workload.MustTATP(workload.TATPOptions{
		Subscribers: s.Subscribers,
		Mix:         map[string]float64{workload.TATPGetSubData: 1},
	})
	wl.Name = "TATP-socket-failure"
	failAt := paperSecond(20)
	failed := topology.SocketID(s.MaxSockets - 1)
	events := func() []engine.Event {
		return []engine.Event{{
			At: failAt,
			Do: func(e *engine.Engine) { _ = e.FailSocket(failed) },
		}}
	}
	top1 := s.Topology()
	top2 := s.Topology()
	place1 := engine.DerivePlacement(wl, top1, true)
	place2 := engine.DerivePlacement(wl, top2, true)
	static, err := engine.New(engine.Config{Design: engine.ATraPos, Workload: wl, Topology: top1, Placement: place1})
	if err != nil {
		return nil, err
	}
	adaptive, err := engine.New(engine.Config{
		Design:           engine.ATraPos,
		Workload:         wl,
		Topology:         top2,
		Placement:        place2,
		Adaptive:         true,
		AdaptiveInterval: adaptiveInterval(),
		TimeCompression:  timeCompression,
	})
	if err != nil {
		return nil, err
	}
	staticSeries, _, err := runSeries(static, s, duration, events())
	if err != nil {
		return nil, err
	}
	adaptiveSeries, adaptiveRes, err := runSeries(adaptive, s, duration, events())
	if err != nil {
		return nil, err
	}
	t := seriesTable("fig12", "Adapting to hardware failures (one socket fails at t=20)", adaptiveWindow,
		map[string][]vclock.Sample{"static": staticSeries, "atrapos": adaptiveSeries},
		[]string{fmt.Sprintf("ATraPos repartitioned %d time(s) after the failure.", adaptiveRes.Repartitions)})
	return t, nil
}

// Fig13 reproduces Figure 13: the workload alternates between GetNewDest
// (workload A) and the TATP mix (workload B); ATraPos keeps adapting and
// re-tunes its monitoring interval.
func Fig13(s Scale) (*Table, error) {
	duration := paperSecond(180)
	mixAt, err := workload.Schedule([]workload.Phase{
		{Label: "A", Duration: paperSecond(60), Mix: map[string]float64{workload.TATPGetNewDest: 1}},
		{Label: "B", Duration: paperSecond(30), Mix: workload.TATPStandardMix()},
		{Label: "A", Duration: paperSecond(30), Mix: map[string]float64{workload.TATPGetNewDest: 1}},
		{Label: "B", Duration: paperSecond(30), Mix: workload.TATPStandardMix()},
		{Label: "A", Duration: paperSecond(15), Mix: map[string]float64{workload.TATPGetNewDest: 1}},
		{Label: "B", Duration: paperSecond(15), Mix: workload.TATPStandardMix()},
	})
	if err != nil {
		return nil, err
	}
	wl, err := workload.TATP(workload.TATPOptions{Subscribers: s.Subscribers, MixAt: mixAt})
	if err != nil {
		return nil, err
	}
	wl.Name = "TATP-frequent-changes"
	return adaptiveComparison(s, "fig13", "Adapting to frequent workload changes", wl, duration, nil,
		"Workloads A (GetNewDest) and B (TATP mix) alternate with shrinking periods; ATraPos keeps re-adapting.")
}

func adaptiveComparison(s Scale, id, title string, wl *workload.Workload, duration vclock.Nanos, events []engine.Event, note string) (*Table, error) {
	top := s.Topology()
	static, adaptive, err := staticAndAdaptive(wl, top)
	if err != nil {
		return nil, err
	}
	staticSeries, _, err := runSeries(static, s, duration, events)
	if err != nil {
		return nil, err
	}
	adaptiveSeries, adaptiveRes, err := runSeries(adaptive, s, duration, events)
	if err != nil {
		return nil, err
	}
	notes := []string{note,
		fmt.Sprintf("ATraPos repartitioned %d time(s); total repartitioning time %.1f ms (virtual); adaptation cost share %.4f.",
			adaptiveRes.Repartitions, adaptiveRes.RepartitionTime.Seconds()*1e3, adaptiveRes.AdaptationCostShare)}
	if summary := diffSummary(adaptiveRes.RepartitionDiffs); summary != "" {
		notes = append(notes, "repartition diffs: "+summary)
	}
	return seriesTable(id, title, adaptiveWindow,
		map[string][]vclock.Sample{"static": staticSeries, "atrapos": adaptiveSeries}, notes), nil
}

// diffSummary renders the per-repartitioning diff sizes: how many tables
// changed vs. were left untouched, how many partitions migrated, and how
// many partition lock tables the incremental runtime build reused.
func diffSummary(diffs []engine.RepartitionDiff) string {
	if len(diffs) == 0 {
		return ""
	}
	parts := make([]string, len(diffs))
	for i, d := range diffs {
		parts[i] = fmt.Sprintf("[%d changed/%d unchanged tables, %d moved partitions, %d reused/%d rebuilt lock tables, %d cores paused]",
			d.ChangedTables, d.UnchangedTables, d.MovedPartitions, d.ReusedLockTables, d.RebuiltLockTables, d.AffectedCores)
	}
	return strings.Join(parts, " ")
}

// FigDrift runs the continuous-drift scenario this PR's incremental
// repartitioning unlocks: an 80%-hot window over 10% of the subscribers that
// slides to the next window every 10 (compressed) seconds. The static
// placement is tuned for one window position and decays as the hotspot
// leaves it; ATraPos chases the window with small diffs that leave the three
// unloaded TATP tables untouched.
func FigDrift(s Scale) (*Table, error) {
	duration := paperSecond(60)
	wl, err := workload.TATPDriftingHotspot(s.Subscribers, paperSecond(10))
	if err != nil {
		return nil, err
	}
	return adaptiveComparison(s, "fig-drift", "Adapting to a continuously drifting hotspot", wl, duration, nil,
		"An 80%-hot window covering 10% of the subscribers shifts every 10 time units; only the Subscriber table carries load.")
}

// FigOscillate runs the skew-oscillation scenario: the access distribution
// flips between heavily skewed and uniform every 15 (compressed) seconds, so
// the ideal placement oscillates between two fixed points and the interval
// controller has to keep re-engaging without thrashing.
func FigOscillate(s Scale) (*Table, error) {
	duration := paperSecond(90)
	wl, err := workload.TATPSkewOscillation(s.Subscribers, paperSecond(15))
	if err != nil {
		return nil, err
	}
	return adaptiveComparison(s, "fig-oscillate", "Adapting to an oscillating access skew", wl, duration, nil,
		"The workload alternates every 15 time units between 60%-of-requests-to-20%-of-data skew and uniform access.")
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// AblationTxnList compares the centralized active-transaction list (PLP)
// against the per-socket lists (HWAware) with everything else equal.
func AblationTxnList(s Scale) (*Table, error) {
	return ablationDesigns(s, "ablation-txnlist",
		"Centralized vs per-socket transaction list and state locks",
		map[string]engine.Config{
			"centralized state (PLP)":    {Design: engine.PLP},
			"per-socket state (HWAware)": {Design: engine.HWAware},
		})
}

// AblationStateLock isolates the shared state locks by comparing the
// centralized design with and without a multisocket machine.
func AblationStateLock(s Scale) (*Table, error) {
	wl := s.partitionableWorkload()
	t := &Table{
		ID:     "ablation-statelock",
		Title:  "Cost of centralized state as sockets grow (centralized design)",
		Header: []string{"sockets", "throughput", "useful fraction"},
	}
	for _, n := range s.socketSweep() {
		e, err := engine.New(engine.Config{Design: engine.Centralized, Workload: wl, Topology: s.topologyWith(n)})
		if err != nil {
			return nil, err
		}
		res, err := e.Run(s.runOptions())
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), fmtTPS(res.ThroughputTPS), fmt.Sprintf("%.2f", res.UsefulFraction))
	}
	return t, nil
}

// AblationPlacement compares the hardware-oblivious and hardware-aware
// placements of the same workload-aware partitioning (the Figure 6 step from
// "Workload-aware" to "ATraPos").
func AblationPlacement(s Scale) (*Table, error) {
	wl := workload.TwoTableSimple(s.MicroRows)
	top := s.Topology()
	t := &Table{
		ID:     "ablation-placement",
		Title:  "Placement step (Algorithm 2) on vs off",
		Header: []string{"placement", "throughput"},
	}
	for _, hw := range []bool{false, true} {
		e, err := engine.New(engine.Config{
			Design:    engine.ATraPos,
			Workload:  wl,
			Topology:  top,
			Placement: engine.DerivePlacement(wl, top, hw),
		})
		if err != nil {
			return nil, err
		}
		tps, _, err := runThroughput(e, s.runOptions())
		if err != nil {
			return nil, err
		}
		label := "hardware-oblivious"
		if hw {
			label = "hardware-aware"
		}
		t.AddRow(label, fmtTPS(tps))
	}
	return t, nil
}

// AblationSubPartitions sweeps the number of sub-partitions the monitor
// tracks per partition and reports how many partitions the planner proposes
// and how balanced the proposal is relative to the starting placement, under
// a synthetic skewed trace.
func AblationSubPartitions(s Scale) (*Table, error) {
	top := s.Topology()
	domain := numa.MustNewDomain(top, numa.DefaultCostModel())
	model := core.CostModel{Domain: domain}
	wl := workload.MustTATP(workload.TATPOptions{Subscribers: s.Subscribers})
	place := engine.DerivePlacement(wl, top, true)
	maxKeys := maxKeysOf(wl)
	t := &Table{
		ID:     "ablation-subparts",
		Title:  "Sub-partition granularity of the monitoring arrays",
		Header: []string{"sub-partitions", "proposed partitions", "relative imbalance"},
	}
	for _, subs := range []int{2, 5, 10, 20} {
		monitor := core.NewMonitor(subs)
		monitor.RegisterPlacement(place, maxKeys)
		// Synthesize a skewed trace: 50% of the accesses on 20% of the keys.
		maxKey := wl.Tables[0].MaxKey
		for i := 0; i < 4000; i++ {
			key := int64(i) % maxKey
			if i%2 == 0 {
				key = key % (maxKey / 5)
			}
			monitor.RecordAction("Subscriber", schema.KeyFromInt(key), 1000)
		}
		stats := monitor.Aggregate()
		planner := core.NewPlanner(model, subs)
		proposed := planner.ChoosePartitioning(place, stats, maxKeys)
		ru := model.ResourceUtilization(proposed, stats)
		base := model.ResourceUtilization(place, stats)
		rel := 1.0
		if base > 0 {
			rel = ru / base
		}
		t.AddRow(fmt.Sprintf("%d", subs), fmt.Sprintf("%d", proposed.TotalPartitions()), fmt.Sprintf("%.2f", rel))
	}
	t.Notes = append(t.Notes, "Finer sub-partitioning lets Algorithm 1 isolate hot ranges; the paper uses 10 as the space/precision trade-off.")
	return t, nil
}

// maxKeysOf maps every table of a workload to its maximum key.
func maxKeysOf(wl *workload.Workload) map[string]schema.Key {
	out := make(map[string]schema.Key, len(wl.Tables))
	for _, spec := range wl.TableSpecs() {
		out[spec.Name] = schema.KeyFromInt(spec.MaxKey)
	}
	return out
}

// AblationSLI compares the centralized design with and without speculative
// lock inheritance.
func AblationSLI(s Scale) (*Table, error) {
	wl := workload.MustTATP(workload.TATPOptions{Subscribers: s.Subscribers})
	t := &Table{
		ID:     "ablation-sli",
		Title:  "Speculative lock inheritance in the centralized design",
		Header: []string{"SLI", "throughput"},
	}
	for _, disable := range []bool{false, true} {
		e, err := engine.New(engine.Config{Design: engine.Centralized, Workload: wl, Topology: s.Topology(), DisableSLI: disable})
		if err != nil {
			return nil, err
		}
		tps, _, err := runThroughput(e, s.runOptions())
		if err != nil {
			return nil, err
		}
		label := "enabled"
		if disable {
			label = "disabled"
		}
		t.AddRow(label, fmtTPS(tps))
	}
	return t, nil
}

func ablationDesigns(s Scale, id, title string, cfgs map[string]engine.Config) (*Table, error) {
	wl := s.partitionableWorkload()
	t := &Table{ID: id, Title: title, Header: []string{"configuration", "throughput"}}
	labels := make([]string, 0, len(cfgs))
	for l := range cfgs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, label := range labels {
		cfg := cfgs[label]
		cfg.Workload = wl
		cfg.Topology = s.Topology()
		e, err := engine.New(cfg)
		if err != nil {
			return nil, err
		}
		tps, _, err := runThroughput(e, s.runOptions())
		if err != nil {
			return nil, err
		}
		t.AddRow(label, fmtTPS(tps))
	}
	return t, nil
}
