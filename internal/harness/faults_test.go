package harness

import "testing"

// TestRunFaultTimeline asserts — not eyeballs — the fig-faults robustness
// facts at quick scale: throughput dips while the device and the socket are
// out, recovers after the restore, the planner re-homes the island logs off
// the failed device, and the wiring converges.
func TestRunFaultTimeline(t *testing.T) {
	tl, err := RunFaultTimeline(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if tl.Committed == 0 {
		t.Fatal("timeline committed nothing; the system should degrade, not stop")
	}
	if !tl.DipOnDeviceFailure {
		t.Errorf("no throughput dip on device failure: healthy %.0f vs device-failed %.0f",
			tl.phaseTPS("healthy"), tl.phaseTPS("device-failed"))
	}
	if !tl.DipOnSocketFailure {
		t.Errorf("no throughput dip on socket failure: healthy %.0f vs socket-failed %.0f",
			tl.phaseTPS("healthy"), tl.phaseTPS("socket-failed"))
	}
	if !tl.RecoveredAfterRestore {
		t.Errorf("throughput did not recover after the socket restore: socket-failed %.0f vs socket-restored %.0f",
			tl.phaseTPS("socket-failed"), tl.phaseTPS("socket-restored"))
	}
	if tl.RehomedLogs == 0 {
		t.Error("no island log was re-homed off the failed device")
	}
	if !tl.Converged {
		t.Error("wiring did not converge by the end of the timeline")
	}
	for _, ph := range tl.Phases {
		if ph.AvgTPS <= 0 {
			t.Errorf("phase %s measured no throughput", ph.Label)
		}
	}
}

// TestFigFaults exercises the table renderer end to end.
func TestFigFaults(t *testing.T) {
	tbl, err := FigFaults(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "fig-faults" {
		t.Errorf("table ID = %q", tbl.ID)
	}
	if len(tbl.Rows) != 5 {
		t.Errorf("expected 5 phase rows, got %d", len(tbl.Rows))
	}
}
