package harness

import (
	"fmt"

	"atrapos/internal/backend"
	"atrapos/internal/core"
	"atrapos/internal/engine"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/workload"
)

// ExecutedPoint is one measured cell of the executed-storage sweep: a machine
// profile, a multisite probability and an island granularity, measured in one
// of two modes. Priced cells report the cost model's virtual throughput;
// executed cells report the real wall-clock throughput of the sharded hash
// backend in KTPS.
type ExecutedPoint struct {
	Profile      string  `json:"profile"`
	Mode         string  `json:"mode"` // "priced" or "executed"
	MultiPct     int     `json:"multisite_pct"`
	Level        string  `json:"island_level"`
	TPS          float64 `json:"virtual_tps,omitempty"`
	MeasuredKTPS float64 `json:"measured_ktps,omitempty"`
	Committed    int64   `json:"committed"`
}

// ExecutedProfileReport is the calibration verdict for one machine profile:
// how well the priced model ranked the island levels against real execution
// before and after fitting per-component correction factors, the factors
// themselves, and the fine-vs-coarse crossover direction each mode observed.
type ExecutedProfileReport struct {
	Profile string `json:"profile"`
	// RankBefore / RankAfter are Spearman rank correlations between the priced
	// and measured level rankings, averaged over the multisite probabilities.
	// After is never below Before: when the fitted factors do not improve the
	// ranking the calibration falls back to identity.
	RankBefore float64 `json:"rank_before"`
	RankAfter  float64 `json:"rank_after"`
	// Calibrated reports whether a non-identity calibration was kept.
	Calibrated bool `json:"calibrated"`
	// Factors are the per-component correction factors (1 = no correction),
	// keyed by cost-component name.
	Factors map[string]float64 `json:"factors"`
	// CrossPriced / CrossExecuted report whether the finest island level's
	// advantage over the coarsest *shrinks* as the multisite probability grows
	// (the crossover direction the paper predicts), per mode.
	CrossPriced   bool `json:"crossover_priced"`
	CrossExecuted bool `json:"crossover_executed"`
}

// ExecutedReport is the executed_storage BENCH.json payload: every sweep
// point in both modes, the per-profile calibration reports, and whether the
// two modes agree on the crossover direction on the chiplet machine.
type ExecutedReport struct {
	Points           []ExecutedPoint         `json:"points"`
	Profiles         []ExecutedProfileReport `json:"profiles"`
	CrossoverProfile string                  `json:"crossover_profile"`
	CrossoverAgrees  bool                    `json:"crossover_agrees"`
}

// executedCrossoverProfile is the machine whose crossover-direction agreement
// gates the executed_storage record: chiplet-2s4d distinguishes all four
// island levels, so it is the sharpest test of the model's level ranking.
const executedCrossoverProfile = "chiplet-2s4d"

// runExecutedPricedCell measures one cell on the priced (virtual-time) path.
func runExecutedPricedCell(s Scale, prof topology.Profile, level topology.Level, pct int) (*engine.Result, error) {
	e, err := engine.New(engine.Config{
		Design:      engine.SharedNothing,
		IslandLevel: level,
		Workload:    workload.MultisiteUpdate(s.MicroRows, pct),
		Topology:    prof.Build(),
	})
	if err != nil {
		return nil, err
	}
	return e.Run(s.runOptions())
}

// runExecutedHashCell measures the same cell on the executed path: real
// operations on the sharded hash backend, one pinned executor per island,
// timed in wall nanoseconds. Callers must hold the pool's alloc token so no
// concurrent point pollutes the wall-clock measurement.
func runExecutedHashCell(s Scale, prof topology.Profile, level topology.Level, pct int) (*engine.ExecutedResult, error) {
	e, err := engine.New(engine.Config{
		Design:      engine.SharedNothing,
		IslandLevel: level,
		Workload:    workload.MultisiteUpdate(s.MicroRows, pct),
		Topology:    prof.Build(),
		Backend:     backend.Hash,
	})
	if err != nil {
		return nil, err
	}
	return e.RunExecuted(engine.RunOptions{Transactions: s.Transactions, Seed: s.Seed})
}

// ExecutedSweep runs the islands grid (profile x multisite probability x
// island level) in both storage modes and fits per-profile calibrations from
// the measured-vs-priced per-component time totals.
//
// Priced cells run concurrently through the harness pool like any sweep;
// executed cells run under the pool's alloc token, which makes each one a
// full barrier — wall-clock throughput is only meaningful when no other point
// shares the host. The multisite endpoints {0, 100} are enough for the
// crossover direction and keep the serialized executed cells cheap.
func ExecutedSweep(s Scale) (*ExecutedReport, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pcts := []int{0, 100}
	profiles := islandSweepProfiles(s)
	type cell struct {
		prof  topology.Profile
		pct   int
		level topology.Level
	}
	var grid []cell
	idx := make(map[string]int)
	key := func(profile string, pct int, level topology.Level) string {
		return fmt.Sprintf("%s|%d|%s", profile, pct, level)
	}
	for _, prof := range profiles {
		for _, pct := range pcts {
			for _, level := range prof.Levels() {
				idx[key(prof.Name, pct, level)] = len(grid)
				grid = append(grid, cell{prof, pct, level})
			}
		}
	}

	priced := make([]*engine.Result, len(grid))
	executed := make([]*engine.ExecutedResult, len(grid))
	pool := s.pool()
	jobs := make([]PointFn, len(grid))
	for i, c := range grid {
		jobs[i] = func() error {
			pres, err := runExecutedPricedCell(s, c.prof, c.level, c.pct)
			if err != nil {
				return fmt.Errorf("executed sweep (priced) %s/%s/%d%%: %w", c.prof.Name, c.level, c.pct, err)
			}
			priced[i] = pres
			err = pool.WithAllocToken(func() error {
				xres, err := runExecutedHashCell(s, c.prof, c.level, c.pct)
				if err != nil {
					return err
				}
				executed[i] = xres
				return nil
			})
			if err != nil {
				return fmt.Errorf("executed sweep (executed) %s/%s/%d%%: %w", c.prof.Name, c.level, c.pct, err)
			}
			return nil
		}
	}
	if err := pool.Run(jobs); err != nil {
		return nil, err
	}

	rep := &ExecutedReport{
		CrossoverProfile: executedCrossoverProfile,
		CrossoverAgrees:  true,
	}
	for i, c := range grid {
		rep.Points = append(rep.Points,
			ExecutedPoint{
				Profile:   c.prof.Name,
				Mode:      "priced",
				MultiPct:  c.pct,
				Level:     c.level.String(),
				TPS:       priced[i].ThroughputTPS,
				Committed: priced[i].Committed,
			},
			ExecutedPoint{
				Profile:      c.prof.Name,
				Mode:         "executed",
				MultiPct:     c.pct,
				Level:        c.level.String(),
				MeasuredKTPS: executed[i].MeasuredKTPS,
				Committed:    executed[i].Committed,
			})
	}

	for _, prof := range profiles {
		levels := prof.Levels()
		at := func(pct int, level topology.Level) int { return idx[key(prof.Name, pct, level)] }

		// Fit from per-component totals summed over the profile's grid: the
		// measured wall time the executors attributed to each component against
		// the virtual time the cost model charged to the same component.
		var measComp, pricedComp [vclock.NumComponents]int64
		for _, pct := range pcts {
			for _, lv := range levels {
				i := at(pct, lv)
				for comp, n := range priced[i].Breakdown.ByComp {
					pricedComp[comp] += int64(n)
				}
				for comp := 0; comp < vclock.NumComponents; comp++ {
					measComp[comp] += executed[i].Components[comp]
				}
			}
		}
		cal := core.FitCalibration(measComp, pricedComp)

		// Rank correlation: how the priced model orders the island levels
		// against how real execution orders them, averaged over the multisite
		// endpoints.
		rankWith := func(score func(i int) float64) float64 {
			var sum float64
			for _, pct := range pcts {
				ps := make([]float64, 0, len(levels))
				ms := make([]float64, 0, len(levels))
				for _, lv := range levels {
					i := at(pct, lv)
					ps = append(ps, score(i))
					ms = append(ms, executed[i].MeasuredKTPS)
				}
				sum += core.Spearman(ps, ms)
			}
			return sum / float64(len(pcts))
		}
		before := rankWith(func(i int) float64 { return priced[i].ThroughputTPS })
		after := rankWith(func(i int) float64 {
			p := cal.Predict(priced[i].Breakdown)
			if p <= 0 {
				return 0
			}
			return float64(priced[i].Committed) / p
		})
		calibrated := !cal.Identity()
		if after < before {
			// The fitted factors did not improve the ranking on this profile;
			// keep the raw model. The identity fallback makes the post-fit
			// correlation monotone by construction, which is what the
			// executed_storage verification gate asserts.
			cal = core.IdentityCalibration()
			after = before
			calibrated = false
		}

		// Crossover direction: does the finest level's advantage over the
		// coarsest shrink as the multisite probability grows?
		fine, coarse := levels[0], levels[len(levels)-1]
		direction := func(score func(i int) float64) bool {
			ratio := func(pct int) float64 {
				c := score(at(pct, coarse))
				if c <= 0 {
					return 0
				}
				return score(at(pct, fine)) / c
			}
			return ratio(pcts[0]) > ratio(pcts[len(pcts)-1])
		}
		pr := ExecutedProfileReport{
			Profile:       prof.Name,
			RankBefore:    before,
			RankAfter:     after,
			Calibrated:    calibrated,
			Factors:       cal.FactorNames(),
			CrossPriced:   direction(func(i int) float64 { return priced[i].ThroughputTPS }),
			CrossExecuted: direction(func(i int) float64 { return executed[i].MeasuredKTPS }),
		}
		rep.Profiles = append(rep.Profiles, pr)
		if prof.Name == rep.CrossoverProfile {
			rep.CrossoverAgrees = pr.CrossPriced == pr.CrossExecuted
		}
	}
	return rep, nil
}

// FigExecuted is the executed-storage experiment: the islands grid measured
// both by the priced cost model and by real execution on the sharded hash
// backend, with per-profile rank correlations before/after calibration. It
// fails when the two modes disagree on the fine-vs-coarse crossover direction
// on the chiplet machine — the one assertion that real execution must back up
// the model on.
func FigExecuted(s Scale) (*Table, error) {
	rep, err := ExecutedSweep(s)
	if err != nil {
		return nil, err
	}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	t := &Table{
		ID:    "fig-executed",
		Title: "Executed storage vs priced model: level-ranking correlation and crossover direction",
		Header: []string{"profile", "rank before", "rank after", "calibrated",
			"crossover (priced)", "crossover (executed)", "agree"},
		Notes: []string{
			"rank: Spearman correlation between the priced and measured island-level rankings, averaged over multisite 0% and 100%.",
			"crossover: whether the finest level's advantage over the coarsest shrinks as the multisite share grows.",
			fmt.Sprintf("the modes must agree on the crossover direction on %s.", rep.CrossoverProfile),
		},
	}
	for _, p := range rep.Profiles {
		t.AddRow(p.Profile,
			fmt.Sprintf("%.3f", p.RankBefore),
			fmt.Sprintf("%.3f", p.RankAfter),
			yn(p.Calibrated),
			yn(p.CrossPriced),
			yn(p.CrossExecuted),
			yn(p.CrossPriced == p.CrossExecuted))
	}
	if !rep.CrossoverAgrees {
		return nil, fmt.Errorf("fig-executed: priced and executed modes disagree on the fine-vs-coarse crossover direction on %s", rep.CrossoverProfile)
	}
	return t, nil
}
