package harness

import (
	"testing"

	"atrapos/internal/topology"
)

// TestFigIslandsCrossover runs the island-size sweep and asserts its headline
// result: on every machine profile the best granularity at 0% multisite
// probability is strictly finer than the best granularity at 100% — fine
// islands win when transactions stay local, coarse islands win when they
// don't.
func TestFigIslandsCrossover(t *testing.T) {
	tbl, err := FigIslands(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("fig-islands produced no rows")
	}
	profiles := islandSweepProfiles(testScale())
	if len(profiles) < 3 {
		t.Fatalf("islands sweep covers only %d profiles, want >= 3", len(profiles))
	}
	// best[profile][pct] = winning level
	best := make(map[string]map[string]topology.Level)
	for _, row := range tbl.Rows {
		profile, pct, winner := row[0], row[1], row[len(row)-1]
		level, err := topology.ParseLevel(winner)
		if err != nil {
			t.Fatalf("row %v has unparseable winner %q", row, winner)
		}
		if best[profile] == nil {
			best[profile] = make(map[string]topology.Level)
		}
		best[profile][pct] = level
	}
	for _, prof := range profiles {
		low, okLow := best[prof.Name]["0"]
		high, okHigh := best[prof.Name]["100"]
		if !okLow || !okHigh {
			t.Fatalf("profile %s missing sweep endpoints: %+v", prof.Name, best[prof.Name])
		}
		if !(low < high) {
			t.Errorf("profile %s: best granularity at 0%% (%v) should be strictly finer than at 100%% (%v)",
				prof.Name, low, high)
		}
	}
	// Every profile contributes one row per swept percentage.
	if want := len(profiles) * 4; len(tbl.Rows) != want {
		t.Errorf("fig-islands has %d rows, want %d", len(tbl.Rows), want)
	}
}

// TestFigIslandsRegistered checks the experiment is reachable by id and that
// a pinned profile joins the sweep.
func TestFigIslandsRegistered(t *testing.T) {
	if _, ok := Lookup("fig-islands"); !ok {
		t.Fatal("fig-islands not registered")
	}
	s := testScale()
	s.Profile = "subnuma-4s2d"
	profiles := islandSweepProfiles(s)
	found := false
	for _, p := range profiles {
		if p.Name == s.Profile {
			found = true
		}
	}
	if !found {
		t.Errorf("pinned profile %s should join the sweep: %v", s.Profile, profiles)
	}
}

// TestScaleProfileTopology checks Scale.Topology honours the profile pin.
func TestScaleProfileTopology(t *testing.T) {
	s := testScale()
	s.Profile = "chiplet-2s4d"
	top := s.Topology()
	if !top.Hierarchical() || top.NumCores() != 32 {
		t.Errorf("profile-pinned topology wrong: %s", top)
	}
	s.Profile = ""
	if s.Topology().NumCores() != s.MaxSockets*s.CoresPerSocket {
		t.Error("unpinned topology should be the scale's own machine")
	}
}
