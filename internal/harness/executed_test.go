package harness

import (
	"testing"

	"atrapos/internal/vclock"
)

// TestExecutedSweepReport runs the executed-storage sweep at test scale and
// checks the report's structural invariants: every grid cell measured in both
// modes, rank correlations inside [-1, 1] with the post-calibration value
// never below the raw one (the identity fallback guarantees it), and a full
// factor set per profile.
func TestExecutedSweepReport(t *testing.T) {
	s := testScale()
	rep, err := ExecutedSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	profiles := islandSweepProfiles(s)
	cells := 0
	for _, p := range profiles {
		cells += 2 * len(p.Levels()) // two multisite endpoints per level
	}
	if want := 2 * cells; len(rep.Points) != want {
		t.Fatalf("sweep produced %d points, want %d (both modes for %d cells)", len(rep.Points), want, cells)
	}
	for _, pt := range rep.Points {
		switch pt.Mode {
		case "priced":
			if pt.TPS <= 0 {
				t.Errorf("priced point %+v has no virtual throughput", pt)
			}
		case "executed":
			if pt.MeasuredKTPS <= 0 {
				t.Errorf("executed point %+v has no measured throughput", pt)
			}
		default:
			t.Errorf("point %+v has unknown mode", pt)
		}
		if pt.Committed <= 0 {
			t.Errorf("point %+v committed nothing", pt)
		}
	}
	if len(rep.Profiles) != len(profiles) {
		t.Fatalf("report covers %d profiles, want %d", len(rep.Profiles), len(profiles))
	}
	for _, pr := range rep.Profiles {
		if pr.RankBefore < -1 || pr.RankBefore > 1 || pr.RankAfter < -1 || pr.RankAfter > 1 {
			t.Errorf("profile %s rank correlations outside [-1,1]: before %v after %v",
				pr.Profile, pr.RankBefore, pr.RankAfter)
		}
		if pr.RankAfter < pr.RankBefore {
			t.Errorf("profile %s: calibration made the ranking worse (%v -> %v); the identity fallback should prevent this",
				pr.Profile, pr.RankBefore, pr.RankAfter)
		}
		if len(pr.Factors) != vclock.NumComponents {
			t.Errorf("profile %s reports %d factors, want %d", pr.Profile, len(pr.Factors), vclock.NumComponents)
		}
		for name, f := range pr.Factors {
			if f <= 0 {
				t.Errorf("profile %s factor %s = %v, want > 0", pr.Profile, name, f)
			}
		}
	}
	if rep.CrossoverProfile != "chiplet-2s4d" {
		t.Errorf("crossover gate runs on %q, want chiplet-2s4d", rep.CrossoverProfile)
	}
}

// TestFigExecutedCrossover renders the experiment table and asserts its
// headline invariant: real execution backs up the priced model's crossover
// direction on the chiplet machine (FigExecuted errors otherwise).
func TestFigExecutedCrossover(t *testing.T) {
	s := testScale()
	tbl, err := FigExecuted(s)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(islandSweepProfiles(s)); len(tbl.Rows) != want {
		t.Fatalf("fig-executed has %d rows, want %d", len(tbl.Rows), want)
	}
	for _, row := range tbl.Rows {
		if row[0] == "chiplet-2s4d" && row[len(row)-1] != "yes" {
			t.Errorf("chiplet-2s4d modes disagree on the crossover direction: %v", row)
		}
	}
}

// TestFigExecutedRegistered checks the experiment is reachable by id.
func TestFigExecutedRegistered(t *testing.T) {
	if _, ok := Lookup("fig-executed"); !ok {
		t.Fatal("fig-executed not registered")
	}
}
