package harness

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// PointFn is one independent unit of harness work: a sweep point, a fuzz
// scenario, or a whole experiment. A point owns its engine(s) and shares
// nothing with other points except process-global resources (the Go heap,
// GOMAXPROCS), which is what makes reordered execution safe: any interleaving
// of points produces the same per-point results as running them one at a time.
type PointFn func() error

// Pool is a bounded scheduler for independent harness points. It fans jobs
// out across goroutines up to its concurrency, but keeps the observable
// output deterministic:
//
//   - results are assembled in submission order (each job writes into its own
//     slot; the pool never exposes completion order),
//   - errors are aggregated per point with errors.Join instead of aborting
//     the sweep at the first failure, so one bad cell reports alongside every
//     other bad cell no matter which goroutine hit it first,
//   - per-point engine worker counts are fixed independently of the pool's
//     concurrency (see Scale.pointWorkers), because the simulated results of
//     a point depend on its own worker count — parallel speedup comes only
//     from running points concurrently, never from reshaping a point.
//
// Process-global measurements (heap allocation accounting) cannot overlap
// other points; such sections run under WithAllocToken, which excludes every
// other in-flight point for their duration.
type Pool struct {
	concurrency int
	// gate is the allocation-measurement token: every running point holds the
	// read side, an alloc-gated section upgrades to the write side. A plain
	// RWMutex gives exactly the needed semantics — writers exclude all
	// readers, and a waiting writer blocks new points from starting.
	gate sync.RWMutex
}

// NewPool returns a pool running at most concurrency points at once; values
// below 1 (and 1 itself) run points serially in submission order.
func NewPool(concurrency int) *Pool {
	if concurrency < 1 {
		concurrency = 1
	}
	return &Pool{concurrency: concurrency}
}

// Concurrency is the maximum number of points in flight.
func (p *Pool) Concurrency() int { return p.concurrency }

// Run executes the jobs and blocks until all of them finished. Job i's error
// lands in slot i; the returned error joins every per-point error in
// submission order (nil when all points succeeded). A failing point never
// prevents the remaining points from running.
func (p *Pool) Run(jobs []PointFn) error {
	if len(jobs) == 0 {
		return nil
	}
	errs := make([]error, len(jobs))
	workers := p.concurrency
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 1 {
		// Serial fast path: identical job order to the pre-pool loops. The
		// token is still held so WithAllocToken behaves uniformly.
		for i, job := range jobs {
			p.gate.RLock()
			errs[i] = job()
			p.gate.RUnlock()
		}
		return errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				p.gate.RLock()
				errs[i] = jobs[i]()
				p.gate.RUnlock()
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// WithAllocToken runs f with the pool's allocation-measurement token held:
// every other in-flight point has finished before f starts, and no new point
// starts until f returns. Heap-allocation accounting (runtime.ReadMemStats,
// Mallocs deltas) is process-global, so an allocs/txn invariant measured
// while other points execute would see their allocations; the token turns
// the measured window into a full barrier. Must only be called from inside a
// running point (the point's read token is released and re-acquired around
// f).
func (p *Pool) WithAllocToken(f func() error) error {
	p.gate.RUnlock()
	p.gate.Lock()
	err := f()
	p.gate.Unlock()
	p.gate.RLock()
	return err
}

// ParallelReport is the harness_parallel BENCH.json payload: the serial and
// pooled wall time of the same fixed-level sweep, the speedup, and whether
// the two runs produced bit-identical point tables (they must).
type ParallelReport struct {
	// Concurrency is the pool concurrency of the parallel pass;
	// PointWorkers the per-point engine worker count both passes pinned.
	Concurrency  int `json:"concurrency"`
	PointWorkers int `json:"point_workers"`
	// Points is how many sweep points each pass measured.
	Points int `json:"points"`
	// SerialWallMS / ParallelWallMS are host wall-clock milliseconds.
	SerialWallMS   float64 `json:"serial_wall_ms"`
	ParallelWallMS float64 `json:"parallel_wall_ms"`
	// Speedup is SerialWallMS / ParallelWallMS.
	Speedup float64 `json:"speedup"`
	// Identical reports whether the two passes' island-point slices were
	// equal field for field. Anything but true is a determinism regression.
	Identical bool `json:"identical"`
}

// MeasureParallel runs the island sweep's multisite endpoints twice — once
// serially, once through the pool at the scale's concurrency — with the
// per-point engine worker count pinned to the same value in both passes, and
// reports wall times, speedup and bit-identity. It is the determinism
// harness behind the harness_parallel trajectory record: the pool may only
// change wall time, never a result.
func MeasureParallel(s Scale) (*ParallelReport, error) {
	if s.Parallel < 1 {
		s.Parallel = runtime.GOMAXPROCS(0)
	}
	par := s
	ser := s
	ser.Parallel = 1
	// Pin both passes to the parallel pass's per-point worker count: a
	// point's simulated results depend on its own worker count, so the
	// comparison must isolate the pool as the only variable.
	ser.Workers = par.pointWorkers()
	pcts := []int{0, 100}
	start := time.Now()
	serPts, err := IslandSweep(ser, pcts)
	serialWall := time.Since(start)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	parPts, err := IslandSweep(par, pcts)
	parallelWall := time.Since(start)
	if err != nil {
		return nil, err
	}
	identical := len(serPts) == len(parPts)
	if identical {
		for i := range serPts {
			if serPts[i] != parPts[i] {
				identical = false
				break
			}
		}
	}
	rep := &ParallelReport{
		Concurrency:    par.parallel(),
		PointWorkers:   par.pointWorkers(),
		Points:         len(parPts),
		SerialWallMS:   float64(serialWall.Nanoseconds()) / 1e6,
		ParallelWallMS: float64(parallelWall.Nanoseconds()) / 1e6,
		Identical:      identical,
	}
	if parallelWall > 0 {
		rep.Speedup = serialWall.Seconds() / parallelWall.Seconds()
	}
	return rep, nil
}
