package harness

import (
	"fmt"

	"atrapos/internal/engine"
	"atrapos/internal/topology"
	"atrapos/internal/workload"
)

// islandSweepProfiles returns the machine profiles the islands experiment
// sweeps: a commodity 2-socket box, a chiplet machine with sub-socket
// structure, and a 4-socket box — three distinct island shapes. When the
// scale pins a profile it is added to the sweep (if not already present), so
// `-profile paper-8s -experiment fig-islands` compares the paper's machine
// against the defaults.
func islandSweepProfiles(s Scale) []topology.Profile {
	names := []string{"2s-fc", "chiplet-2s4d", "4s-fc"}
	if s.Profile != "" {
		found := false
		for _, n := range names {
			if n == s.Profile {
				found = true
			}
		}
		if !found {
			names = append(names, s.Profile)
		}
	}
	out := make([]topology.Profile, 0, len(names))
	for _, n := range names {
		if p, ok := topology.ProfileByName(n); ok {
			out = append(out, p)
		}
	}
	return out
}

// IslandPoint is one measured cell of the islands sweep: a machine profile, a
// multisite probability, an island granularity, and the throughput the
// parametric shared-nothing design achieved there.
type IslandPoint struct {
	Profile   string  `json:"profile"`
	MultiPct  int     `json:"multisite_pct"`
	Level     string  `json:"island_level"`
	TPS       float64 `json:"virtual_tps"`
	Committed int64   `json:"committed"`
}

// RunIslandPoint measures the shared-nothing design at one island granularity
// on one machine profile under the multisite-update microbenchmark. It is the
// primitive both the fig-islands experiment and the BENCH.json islands sweep
// are built from.
func RunIslandPoint(s Scale, prof topology.Profile, level topology.Level, pct int) (IslandPoint, error) {
	wl := workload.MultisiteUpdate(s.MicroRows, pct)
	e, err := engine.New(engine.Config{
		Design:      engine.SharedNothing,
		IslandLevel: level,
		Workload:    wl,
		Topology:    prof.Build(),
	})
	if err != nil {
		return IslandPoint{}, err
	}
	res, err := e.Run(s.runOptions())
	if err != nil {
		return IslandPoint{}, err
	}
	return IslandPoint{
		Profile:   prof.Name,
		MultiPct:  pct,
		Level:     level.String(),
		TPS:       res.ThroughputTPS,
		Committed: res.Committed,
	}, nil
}

// IslandSweep runs the full grid: every profile, every multisite probability,
// every island level that is distinct on the profile's machine. Points run
// through the harness pool at Scale.Parallel concurrency; the returned slice
// is always in grid order, and point failures are aggregated into one joined
// error instead of aborting the sweep at the first bad cell.
func IslandSweep(s Scale, pcts []int) ([]IslandPoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	type cell struct {
		prof  topology.Profile
		pct   int
		level topology.Level
	}
	var grid []cell
	for _, prof := range islandSweepProfiles(s) {
		for _, pct := range pcts {
			for _, level := range prof.Levels() {
				grid = append(grid, cell{prof, pct, level})
			}
		}
	}
	out := make([]IslandPoint, len(grid))
	jobs := make([]PointFn, len(grid))
	for i, c := range grid {
		jobs[i] = func() error {
			pt, err := RunIslandPoint(s, c.prof, c.level, c.pct)
			if err != nil {
				return fmt.Errorf("islands %s/%s/%d%%: %w", c.prof.Name, c.level, c.pct, err)
			}
			out[i] = pt
			return nil
		}
	}
	if err := s.pool().Run(jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// FigIslands is the island-size sweep that motivates the islands line of
// work: on every machine profile it deploys the parametric shared-nothing
// design at each island granularity the machine distinguishes (core, die,
// socket, machine) and sweeps the probability of multisite transactions. The
// expected shape is a crossover: with no multisite work the finest islands
// win (perfect locality, no coordination), and as the multisite probability
// grows, coarser islands win because fewer transactions cross instance
// boundaries — at machine granularity none do, at the price of shared
// system-state structures.
func FigIslands(s Scale) (*Table, error) {
	pcts := []int{0, 25, 50, 100}
	points, err := IslandSweep(s, pcts)
	if err != nil {
		return nil, err
	}
	levels := topology.Levels()
	header := []string{"profile", "% multi-site"}
	for _, l := range levels {
		header = append(header, l.String())
	}
	header = append(header, "best")
	t := &Table{
		ID:     "fig-islands",
		Title:  "Throughput by island granularity, machine profile and multisite probability",
		Header: header,
		Notes: []string{
			"One shared-nothing instance per island at each granularity; '-' marks levels the profile's machine does not distinguish.",
			"Expected crossover: fine islands win at low multisite probability, coarse islands win as it grows.",
		},
	}
	// Index the measured points by (profile, pct, level).
	type cell struct {
		tps float64
		ok  bool
	}
	byKey := make(map[string]cell)
	key := func(profile string, pct int, level string) string {
		return fmt.Sprintf("%s|%d|%s", profile, pct, level)
	}
	for _, pt := range points {
		byKey[key(pt.Profile, pt.MultiPct, pt.Level)] = cell{tps: pt.TPS, ok: true}
	}
	for _, prof := range islandSweepProfiles(s) {
		for _, pct := range pcts {
			row := []string{prof.Name, fmt.Sprintf("%d", pct)}
			bestLevel, bestTPS := "", -1.0
			for _, l := range levels {
				c := byKey[key(prof.Name, pct, l.String())]
				if !c.ok {
					row = append(row, "-")
					continue
				}
				row = append(row, fmtTPS(c.tps))
				if c.tps > bestTPS {
					bestTPS = c.tps
					bestLevel = l.String()
				}
			}
			row = append(row, bestLevel)
			t.AddRow(row...)
		}
	}
	return t, nil
}
