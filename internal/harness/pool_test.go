package harness

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// poolTestScale is a reduced quick scale: sweep points stay real simulations
// but small enough that the bit-identity tests (which run every sweep twice)
// and the race-detector pass stay fast.
func poolTestScale() Scale {
	s := QuickScale()
	s.Transactions = 600
	s.MicroRows = 3000
	return s
}

// TestParallelSweepBitIdentical is the tentpole's determinism guarantee: the
// fig-islands and fig-log-devices tables rendered at -parallel 1 and
// -parallel 8 are equal byte for byte. The pool pins per-point engine worker
// counts independently of its concurrency, so fanning points out can change
// only wall time, never a cell.
func TestParallelSweepBitIdentical(t *testing.T) {
	serial := poolTestScale()
	serial.Parallel = 1
	parallel := poolTestScale()
	parallel.Parallel = 8
	for _, exp := range []struct {
		name string
		run  func(Scale) (*Table, error)
	}{
		{"fig-islands", FigIslands},
		{"fig-log-devices", FigLogDevices},
	} {
		a, err := exp.run(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", exp.name, err)
		}
		b, err := exp.run(parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", exp.name, err)
		}
		if a.String() != b.String() {
			t.Errorf("%s differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				exp.name, a, b)
		}
	}
}

// TestFuzzShardDeterminism: the same base seed produces the same per-scenario
// verdicts at any pool concurrency — every scenario derives everything from
// its own seed, and the reports compact failures in submission order.
func TestFuzzShardDeterminism(t *testing.T) {
	run := func(parallel int) *FuzzReport {
		t.Helper()
		rep, err := FuzzScenarios(FuzzOptions{Scenarios: 4, Seed: 42, Scale: poolTestScale(), Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return rep
	}
	ref := run(1)
	for _, parallel := range []int{4, 8} {
		got := run(parallel)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("verdicts differ between concurrency 1 and %d:\n  serial   %+v\n  parallel %+v", parallel, ref, got)
		}
	}
}

// TestPoolErrorAggregation: a failing point aborts nothing — every job runs,
// results land in submission-order slots, and the joined error carries every
// failure.
func TestPoolErrorAggregation(t *testing.T) {
	const jobs = 16
	ran := make([]bool, jobs)
	fns := make([]PointFn, jobs)
	for i := 0; i < jobs; i++ {
		fns[i] = func() error {
			ran[i] = true
			if i%5 == 0 {
				return fmt.Errorf("point %d failed", i)
			}
			return nil
		}
	}
	err := NewPool(4).Run(fns)
	if err == nil {
		t.Fatal("expected a joined error")
	}
	for i, r := range ran {
		if !r {
			t.Errorf("point %d never ran", i)
		}
	}
	for i := 0; i < jobs; i += 5 {
		if !strings.Contains(err.Error(), fmt.Sprintf("point %d failed", i)) {
			t.Errorf("joined error is missing point %d: %v", i, err)
		}
	}
	if strings.Contains(err.Error(), "point 1 failed") {
		t.Errorf("joined error blames a point that succeeded: %v", err)
	}
}

// TestPoolAllocToken: a token section runs with no other point in flight —
// the exclusion the fuzzer's process-global allocs/txn window depends on.
// Run under -race (make race) this also proves the token's handover is
// properly synchronized.
func TestPoolAllocToken(t *testing.T) {
	p := NewPool(8)
	var running atomic.Int64
	var tokenViolations atomic.Int64
	const jobs = 32
	fns := make([]PointFn, jobs)
	for i := 0; i < jobs; i++ {
		fns[i] = func() error {
			running.Add(1)
			defer running.Add(-1)
			if i%4 != 0 {
				return nil
			}
			return p.WithAllocToken(func() error {
				// Only this point's own increment may be visible: the token
				// drained every other in-flight point first.
				if running.Load() != 1 {
					tokenViolations.Add(1)
				}
				return nil
			})
		}
	}
	if err := p.Run(fns); err != nil {
		t.Fatal(err)
	}
	if v := tokenViolations.Load(); v != 0 {
		t.Errorf("%d token sections overlapped another running point", v)
	}
}

// TestPoolRunEmptyAndSerial: degenerate shapes keep working.
func TestPoolRunEmptyAndSerial(t *testing.T) {
	if err := NewPool(4).Run(nil); err != nil {
		t.Errorf("empty job list: %v", err)
	}
	order := []int{}
	var fns []PointFn
	for i := 0; i < 5; i++ {
		fns = append(fns, func() error {
			order = append(order, i)
			return nil
		})
	}
	if err := NewPool(1).Run(fns); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("serial pool ran out of order: %v", order)
	}
	if NewPool(0).Concurrency() != 1 || NewPool(-3).Concurrency() != 1 {
		t.Error("concurrency below 1 should clamp to 1")
	}
}

// TestPointWorkersBudget pins the worker-budget model: legacy callers
// (Parallel == 0) pass Workers through untouched; pooled scales pin automatic
// workers to 1 at every concurrency (the determinism contract); explicit
// workers are respected but capped so concurrency x workers stays within
// GOMAXPROCS.
func TestPointWorkersBudget(t *testing.T) {
	s := QuickScale()
	if got := s.pointWorkers(); got != 0 {
		t.Errorf("legacy scale should pass automatic workers through, got %d", got)
	}
	s.Workers = 6
	if got := s.pointWorkers(); got != 6 {
		t.Errorf("legacy scale should pass explicit workers through, got %d", got)
	}
	s.Workers = 0
	for _, parallel := range []int{1, 2, 8, 64} {
		s.Parallel = parallel
		if got := s.pointWorkers(); got != 1 {
			t.Errorf("parallel=%d: automatic workers under the pool must pin to 1, got %d", parallel, got)
		}
	}
	s.Workers = 1
	for _, parallel := range []int{1, 8} {
		s.Parallel = parallel
		if got := s.pointWorkers(); got != 1 {
			t.Errorf("parallel=%d: explicit single workers must stay 1, got %d", parallel, got)
		}
	}
}

// TestRunAllTimedAggregatesErrors: a broken scale (unknown profile surfaces
// inside experiments via Validate up front) — so instead exercise the
// aggregation through MeasureParallel's identity contract and RunAllTimed's
// ordering on a tiny healthy scale.
func TestRunAllTimedOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry")
	}
	s := poolTestScale()
	s.Parallel = 4
	results, err := RunAllTimed(s)
	if err != nil {
		t.Fatal(err)
	}
	reg := Registry()
	if len(results) != len(reg) {
		t.Fatalf("%d results for %d experiments", len(results), len(reg))
	}
	for i, r := range results {
		if r.ID != reg[i].ID {
			t.Errorf("slot %d holds %s, want %s (submission order lost)", i, r.ID, reg[i].ID)
		}
		if r.Err != nil {
			t.Errorf("%s failed: %v", r.ID, r.Err)
		}
		if r.Table == nil {
			t.Errorf("%s produced no table", r.ID)
		}
		if r.Wall <= 0 {
			t.Errorf("%s has no wall time", r.ID)
		}
	}
}

// TestMeasureParallel: the determinism harness itself — the serial and
// pooled passes must be bit-identical and the report's fields coherent.
func TestMeasureParallel(t *testing.T) {
	s := poolTestScale()
	s.Parallel = 4
	rep, err := MeasureParallel(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Error("serial and pooled island sweeps differ — the pool changed a result")
	}
	if rep.Concurrency != 4 || rep.PointWorkers != 1 {
		t.Errorf("report pins concurrency=4 workers=1, got %d/%d", rep.Concurrency, rep.PointWorkers)
	}
	if rep.Points == 0 || rep.SerialWallMS <= 0 || rep.ParallelWallMS <= 0 || rep.Speedup <= 0 {
		t.Errorf("degenerate report: %+v", rep)
	}
}

var _ = errors.Join // keep the import hint close to the pool's contract
