package harness

import (
	"strings"
	"testing"
)

// TestFuzzSmoke runs a bounded, fixed-seed slice of the scenario fuzzer: every
// composed scenario must hold all standing invariants. The full 25-scenario
// smoke runs via `make fuzz-smoke`; this keeps a smaller slice inside plain
// `go test`.
func TestFuzzSmoke(t *testing.T) {
	rep, err := FuzzScenarios(FuzzOptions{Scenarios: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios != 6 {
		t.Errorf("ran %d scenarios, want 6", rep.Scenarios)
	}
	for _, f := range rep.Failures {
		t.Errorf("scenario %d (seed %d) %s: %s\n  reproduce: %s", f.Scenario, f.Seed, f.Descr, f.Err, f.Reproduce)
	}
}

// TestBuildScenarioDeterministic: the seed fully determines the scenario, so
// the reproducer line in a failure is the whole recipe.
func TestBuildScenarioDeterministic(t *testing.T) {
	s := QuickScale()
	a, err := buildScenario(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildScenario(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different scenarios:\n  %s\n  %s", a, b)
	}
	c, err := buildScenario(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Errorf("different seeds produced the same scenario: %s", a)
	}
}

// TestRandomFaultScheduleAlwaysLegal: the generator mirrors the validator's
// state machine, so schedules construct for any seed — including machines
// with no devices, where only socket events may appear.
func TestRandomFaultScheduleAlwaysLegal(t *testing.T) {
	s := QuickScale()
	for seed := int64(0); seed < 200; seed++ {
		sc, err := buildScenario(s, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sc.layout == "" && strings.Contains(sc.sched.String(), "device") {
			t.Errorf("seed %d scheduled a device fault with no device layout: %s", seed, sc.sched)
		}
	}
}
