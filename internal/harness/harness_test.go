package harness

import (
	"strconv"
	"strings"
	"testing"

	"atrapos/internal/vclock"
	"atrapos/internal/workload"
)

// testScale is smaller than QuickScale so the whole experiment suite runs in
// a few seconds under `go test`.
func testScale() Scale {
	return Scale{
		CoresPerSocket:       2,
		MaxSockets:           4,
		MicroRows:            3000,
		Subscribers:          3000,
		Warehouses:           2,
		CustomersPerDistrict: 30,
		Items:                500,
		Transactions:         500,
		Workers:              4,
		Seed:                 42,
	}
}

func TestScalesAndRegistry(t *testing.T) {
	q := QuickScale()
	p := PaperScale()
	if q.MaxSockets <= 0 || p.MaxSockets != 8 || p.CoresPerSocket != 10 {
		t.Errorf("unexpected scales: quick=%+v paper=%+v", q, p)
	}
	if q.Topology().NumCores() != q.MaxSockets*q.CoresPerSocket {
		t.Error("Topology() size mismatch")
	}
	sweep := q.socketSweep()
	if sweep[0] != 1 || sweep[len(sweep)-1] != q.MaxSockets {
		t.Errorf("socketSweep = %v", sweep)
	}
	reg := Registry()
	if len(reg) < 15 {
		t.Fatalf("registry has only %d experiments", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if len(IDs()) != len(reg) {
		t.Error("IDs length mismatch")
	}
	if _, ok := Lookup("fig2"); !ok {
		t.Error("Lookup(fig2) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) should fail")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}, Notes: []string{"note"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	s := tbl.String()
	for _, want := range []string{"x — demo", "a", "bb", "333", "note:"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func parseTPS(cell string) float64 {
	fields := strings.Fields(cell)
	v, _ := strconv.ParseFloat(fields[0], 64)
	switch {
	case strings.Contains(cell, "MTPS"):
		return v * 1e6
	case strings.Contains(cell, "KTPS"):
		return v * 1e3
	default:
		return v
	}
}

func TestFig1(t *testing.T) {
	tbl, err := Fig1(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(testScale().socketSweep()) {
		t.Errorf("fig1 has %d rows", len(tbl.Rows))
	}
	// The extreme shared-nothing configuration keeps a high useful-work
	// fraction at the largest socket count; PLP loses efficiency.
	last := tbl.Rows[len(tbl.Rows)-1]
	sn, _ := strconv.ParseFloat(last[1], 64)
	plp, _ := strconv.ParseFloat(last[3], 64)
	if sn <= plp {
		t.Errorf("extreme SN useful fraction (%f) should exceed PLP (%f) at max sockets", sn, plp)
	}
}

func TestFig2Shape(t *testing.T) {
	tbl, err := Fig2(testScale())
	if err != nil {
		t.Fatal(err)
	}
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	// Extreme shared-nothing scales with sockets.
	if parseTPS(last[1]) <= parseTPS(first[1]) {
		t.Error("extreme shared-nothing should scale with sockets")
	}
	// At the largest socket count the centralized design trails extreme SN.
	if parseTPS(last[2]) >= parseTPS(last[1]) {
		t.Error("centralized should trail extreme shared-nothing at max sockets")
	}
}

func TestFig3Shape(t *testing.T) {
	tbl, err := Fig3(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("fig3 has %d rows", len(tbl.Rows))
	}
	// Shared-nothing throughput decreases as multi-site percentage grows.
	if parseTPS(tbl.Rows[len(tbl.Rows)-1][2]) >= parseTPS(tbl.Rows[0][2]) {
		t.Error("coarse shared-nothing should lose throughput as multi-site transactions increase")
	}
}

func TestFig4Shape(t *testing.T) {
	tbl, err := Fig4(testScale())
	if err != nil {
		t.Fatal(err)
	}
	firstComm, _ := strconv.ParseFloat(tbl.Rows[0][3], 64)
	lastComm, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][3], 64)
	if lastComm <= firstComm {
		t.Error("communication time per transaction should grow with multi-site percentage")
	}
	firstLog, _ := strconv.ParseFloat(tbl.Rows[0][5], 64)
	lastLog, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][5], 64)
	if lastLog <= firstLog {
		t.Error("logging time per transaction should grow with multi-site percentage")
	}
}

func TestTable1Shape(t *testing.T) {
	tbl, err := Table1(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("table1 has %d rows", len(tbl.Rows))
	}
	// Average per-socket throughput: local >= remote.
	avg := func(row []string) float64 {
		total := 0.0
		n := 0
		for _, c := range row[1 : len(row)-1] {
			v, err := strconv.ParseFloat(c, 64)
			if err == nil && v > 0 {
				total += v
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return total / float64(n)
	}
	local, remote := avg(tbl.Rows[0]), avg(tbl.Rows[2])
	if remote >= local {
		t.Errorf("remote allocation (%f) should not beat local (%f)", remote, local)
	}
	// Interconnect traffic ratio grows when memory is remote.
	localRatio, _ := strconv.ParseFloat(tbl.Rows[0][len(tbl.Rows[0])-1], 64)
	remoteRatio, _ := strconv.ParseFloat(tbl.Rows[2][len(tbl.Rows[2])-1], 64)
	if remoteRatio <= localRatio {
		t.Error("QPI/IMC ratio should grow under remote allocation")
	}
}

func TestFig5Shape(t *testing.T) {
	tbl, err := Fig5(testScale())
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	atrapos, plp := parseTPS(last[3]), parseTPS(last[4])
	if atrapos <= plp {
		t.Errorf("ATraPos (%f) should beat PLP (%f) on the partitionable workload at max sockets", atrapos, plp)
	}
	extreme := parseTPS(last[1])
	if atrapos < extreme/2 {
		t.Errorf("ATraPos (%f) should track extreme shared-nothing (%f)", atrapos, extreme)
	}
}

func TestFig6Shape(t *testing.T) {
	tbl, err := Fig6(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("fig6 has %d rows", len(tbl.Rows))
	}
	centralized := parseTPS(tbl.Rows[0][1])
	atrapos := parseTPS(tbl.Rows[4][1])
	hwAware := parseTPS(tbl.Rows[2][1])
	if atrapos <= centralized {
		t.Error("ATraPos should beat the centralized baseline")
	}
	if atrapos <= hwAware {
		t.Error("ATraPos should beat the oversaturated naive per-core placement")
	}
}

func TestFig7(t *testing.T) {
	tbl, err := Fig7(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Errorf("NewOrder flow graph should have 10 nodes, got %d", len(tbl.Rows))
	}
	if len(tbl.Notes) != 4 {
		t.Errorf("NewOrder flow graph should list 4 synchronization points, got %d", len(tbl.Notes))
	}
}

func TestFig8Shape(t *testing.T) {
	tbl, err := Fig8(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("fig8 has %d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		impr, _ := strconv.ParseFloat(strings.TrimSuffix(row[4], "x"), 64)
		if impr < 1.0 {
			t.Errorf("%s %s: ATraPos improvement %.2fx below 1x", row[0], row[1], impr)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tbl, err := Table2(testScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		overhead, _ := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if overhead > 10 {
			t.Errorf("%s: monitoring overhead %.2f%% exceeds 10%%", row[0], overhead)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	tbl, err := Fig9(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatalf("fig9 has %d rows", len(tbl.Rows))
	}
	firstSplit, _ := strconv.ParseFloat(tbl.Rows[0][2], 64)
	lastSplit, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][2], 64)
	if lastSplit <= firstSplit {
		t.Error("split cost should grow with the number of repartitioning actions")
	}
}

func TestFig10Series(t *testing.T) {
	tbl, err := Fig10(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 10 {
		t.Errorf("fig10 series has only %d samples", len(tbl.Rows))
	}
	if len(tbl.Header) != 3 {
		t.Errorf("fig10 should have a time column and two series, got %v", tbl.Header)
	}
}

func TestFig11And12And13Run(t *testing.T) {
	for _, fn := range []func(Scale) (*Table, error){Fig11, Fig12, Fig13} {
		tbl, err := fn(testScale())
		if err != nil {
			t.Fatal(err)
		}
		if len(tbl.Rows) < 5 {
			t.Errorf("%s series has only %d samples", tbl.ID, len(tbl.Rows))
		}
	}
}

func TestAblations(t *testing.T) {
	for _, fn := range []func(Scale) (*Table, error){
		AblationTxnList, AblationStateLock, AblationPlacement, AblationSubPartitions, AblationSLI,
	} {
		tbl, err := fn(testScale())
		if err != nil {
			t.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", tbl.ID)
		}
		if tbl.String() == "" {
			t.Errorf("%s renders empty", tbl.ID)
		}
	}
}

func TestSeriesTable(t *testing.T) {
	window := workload.Seconds(1)
	series := map[string][]vclock.Sample{
		"a": {{At: window, Throughput: 10}, {At: 2 * window, Throughput: 20}},
		"b": {{At: window, Throughput: 5}},
	}
	tbl := seriesTable("x", "demo", window, series, []string{"n"})
	if len(tbl.Rows) != 2 {
		t.Fatalf("series table has %d rows", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "10" || tbl.Rows[0][2] != "5" {
		t.Errorf("unexpected first row %v", tbl.Rows[0])
	}
}

func TestFormatHelpers(t *testing.T) {
	if fmtTPS(2_000_000) != "2.00 MTPS" || fmtTPS(1500) != "1.5 KTPS" || fmtTPS(10) != "10 TPS" {
		t.Error("fmtTPS formatting changed")
	}
	if fmtFactor(1.5) != "1.50x" || fmtPercent(0.033) != "3.30%" || fmtMicros(1500) != "1.5" {
		t.Error("format helpers changed")
	}
}
