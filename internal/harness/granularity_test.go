package harness

import (
	"testing"

	"atrapos/internal/topology"
)

// TestFigAdaptiveGranularityTracksStaticBest runs the drifting-share scenario
// and asserts the acceptance property: on either side of the crossover the
// adaptive engine converges to the island level the static fig-islands sweep
// crowns at that multisite percentage, and the machine was actually re-wired
// along the way (the engine deliberately starts at a level that is best on
// neither side).
func TestFigAdaptiveGranularityTracksStaticBest(t *testing.T) {
	traj, err := RunAdaptiveGranularity(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if traj.Committed == 0 {
		t.Fatal("adaptive run committed nothing")
	}
	if len(traj.Phases) != 2 {
		t.Fatalf("want 2 phases, got %+v", traj.Phases)
	}
	for _, ph := range traj.Phases {
		if ph.AdaptiveLevel != ph.StaticBest {
			t.Errorf("at %d%% multisite the adaptive engine ran at %s, statically best is %s (changes: %+v)",
				ph.MultiPct, ph.AdaptiveLevel, ph.StaticBest, traj.Changes)
		}
	}
	// The static winners differ across the drift (the crossover exists), so
	// tracking them requires at least two re-wirings from the socket start.
	lowBest, _ := topology.ParseLevel(traj.Phases[0].StaticBest)
	highBest, _ := topology.ParseLevel(traj.Phases[1].StaticBest)
	if !(lowBest < highBest) {
		t.Fatalf("crossover lost: static best %v at 0%%, %v at 100%%", lowBest, highBest)
	}
	if len(traj.Changes) < 2 {
		t.Errorf("expected at least two level changes, got %+v", traj.Changes)
	}
	if traj.FinalLevel != traj.Phases[1].StaticBest {
		t.Errorf("final level %s, want %s", traj.FinalLevel, traj.Phases[1].StaticBest)
	}
	// No re-wiring stalled the whole machine for free: every change names its
	// affected cores and its cost.
	for _, lc := range traj.Changes {
		if lc.AffectedCores <= 0 {
			t.Errorf("level change %+v affected no cores", lc)
		}
	}
}

// TestFigAdaptiveGranularityRegistered checks the experiment is reachable by
// id and renders a table with the tracked verdict per phase.
func TestFigAdaptiveGranularityRegistered(t *testing.T) {
	if _, ok := Lookup("fig-adaptive-granularity"); !ok {
		t.Fatal("fig-adaptive-granularity not registered")
	}
	tbl, err := FigAdaptiveGranularity(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("phase row %v did not track the static best", row)
		}
	}
}
