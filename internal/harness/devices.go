package harness

import (
	"fmt"

	"atrapos/internal/engine"
	"atrapos/internal/topology"
	"atrapos/internal/workload"
)

// deviceSweepProfile returns the machine the log-device sweep runs on: the
// chiplet profile, whose machine distinguishes all four island levels, unless
// the scale pins a different profile. An unknown pinned name errors rather
// than silently sweeping a different machine than the points claim.
func deviceSweepProfile(s Scale) (topology.Profile, error) {
	name := "chiplet-2s4d"
	if s.Profile != "" {
		name = s.Profile
	}
	p, ok := topology.ProfileByName(name)
	if !ok {
		return topology.Profile{}, fmt.Errorf("harness: unknown machine profile %q", name)
	}
	return p, nil
}

// deviceSweepLayouts returns the storage shapes the sweep compares, most
// parallel first: the device count drops from one per socket to a single
// machine-wide device.
func deviceSweepLayouts() []string {
	return []string{"nvme-per-socket", "nvme-per-die-pair", "single-sata"}
}

// DevicePoint is one measured cell of the log-device sweep: a machine
// profile, a log-device layout, a multisite probability, an island
// granularity, and the throughput the parametric shared-nothing design
// achieved with its island logs bound to the layout's devices.
type DevicePoint struct {
	Profile   string  `json:"profile"`
	Layout    string  `json:"layout"`
	Devices   int     `json:"devices"`
	MultiPct  int     `json:"multisite_pct"`
	Level     string  `json:"island_level"`
	TPS       float64 `json:"virtual_tps"`
	Committed int64   `json:"committed"`
}

// RunDevicePoint measures the shared-nothing design at one island granularity
// under one log-device layout. It is the primitive the fig-log-devices
// experiment and the BENCH.json log-device sweep are built from.
func RunDevicePoint(s Scale, prof topology.Profile, layout string, level topology.Level, pct int) (DevicePoint, error) {
	wl := workload.MultisiteUpdate(s.MicroRows, pct)
	e, err := engine.New(engine.Config{
		Design:       engine.SharedNothing,
		IslandLevel:  level,
		Workload:     wl,
		Topology:     prof.Build(),
		DeviceLayout: layout,
	})
	if err != nil {
		return DevicePoint{}, err
	}
	res, err := e.Run(s.runOptions())
	if err != nil {
		return DevicePoint{}, err
	}
	return DevicePoint{
		Profile:   prof.Name,
		Layout:    layout,
		Devices:   e.Devices().NumDevices(),
		MultiPct:  pct,
		Level:     level.String(),
		TPS:       res.ThroughputTPS,
		Committed: res.Committed,
	}, nil
}

// DeviceSweep runs the full grid on the sweep profile: every log-device
// layout, every multisite probability, every island level the machine
// distinguishes. Points run through the harness pool (Scale.Parallel) with
// results in grid order and per-point errors aggregated.
func DeviceSweep(s Scale, pcts []int) ([]DevicePoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	prof, err := deviceSweepProfile(s)
	if err != nil {
		return nil, err
	}
	type cell struct {
		layout string
		pct    int
		level  topology.Level
	}
	var grid []cell
	for _, layout := range deviceSweepLayouts() {
		for _, pct := range pcts {
			for _, level := range prof.Levels() {
				grid = append(grid, cell{layout, pct, level})
			}
		}
	}
	out := make([]DevicePoint, len(grid))
	jobs := make([]PointFn, len(grid))
	for i, c := range grid {
		jobs[i] = func() error {
			pt, err := RunDevicePoint(s, prof, c.layout, c.level, c.pct)
			if err != nil {
				return fmt.Errorf("log-devices %s/%s/%s/%d%%: %w", prof.Name, c.layout, c.level, c.pct, err)
			}
			out[i] = pt
			return nil
		}
	}
	if err := s.pool().Run(jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// FigLogDevices is the heterogeneous log-device sweep: on one machine it
// binds the shared-nothing island logs to progressively scarcer storage
// shapes — one NVMe namespace per socket, a shared device per die pair, a
// single SATA-class device — and measures every island granularity at every
// multisite probability. The expected shape: with plentiful devices, coarse
// wirings are penalized for funnelling every group commit through one flush
// path while fine wirings spread them, so the fine-vs-coarse crossover sits
// at a higher multisite share than it does when a single device serializes
// every level's commits equally.
func FigLogDevices(s Scale) (*Table, error) {
	pcts := []int{0, 50, 100}
	points, err := DeviceSweep(s, pcts)
	if err != nil {
		return nil, err
	}
	prof, err := deviceSweepProfile(s)
	if err != nil {
		return nil, err
	}
	levels := topology.Levels()
	header := []string{"layout", "devices", "% multi-site"}
	for _, l := range levels {
		header = append(header, l.String())
	}
	header = append(header, "best")
	t := &Table{
		ID:     "fig-log-devices",
		Title:  fmt.Sprintf("Throughput by log-device layout, island granularity and multisite probability (%s)", prof.Name),
		Header: header,
		Notes: []string{
			"Island logs bind to the layout's devices through their home die; '-' marks levels the machine does not distinguish.",
			"Expected shift: scarcer devices erase the fine-island flush advantage, so the crossover moves toward coarser islands at lower multisite shares.",
		},
	}
	type cell struct {
		tps float64
		ok  bool
	}
	byKey := make(map[string]cell)
	devCount := make(map[string]int)
	key := func(layout string, pct int, level string) string {
		return fmt.Sprintf("%s|%d|%s", layout, pct, level)
	}
	for _, pt := range points {
		byKey[key(pt.Layout, pt.MultiPct, pt.Level)] = cell{tps: pt.TPS, ok: true}
		devCount[pt.Layout] = pt.Devices
	}
	for _, layout := range deviceSweepLayouts() {
		for _, pct := range pcts {
			row := []string{layout, fmt.Sprintf("%d", devCount[layout]), fmt.Sprintf("%d", pct)}
			bestLevel, bestTPS := "", -1.0
			for _, l := range levels {
				c := byKey[key(layout, pct, l.String())]
				if !c.ok {
					row = append(row, "-")
					continue
				}
				row = append(row, fmtTPS(c.tps))
				if c.tps > bestTPS {
					bestTPS = c.tps
					bestLevel = l.String()
				}
			}
			row = append(row, bestLevel)
			t.AddRow(row...)
		}
	}
	return t, nil
}
