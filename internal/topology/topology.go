// Package topology models the hardware Islands of a multisocket multicore
// server: processor sockets, the cores they contain, and the non-uniform
// communication distances between sockets.
//
// The paper's experimental platform is an 8-socket, 10-core-per-socket Intel
// Westmere server whose sockets are connected in a twisted-cube QPI topology.
// Because the Go runtime offers no thread pinning or NUMA placement control,
// this package provides an explicit software model of that hardware: engines
// bind logical workers to Core identities and charge communication costs
// derived from the Distance matrix. Everything that depends on "which socket
// does this thread / cache line / memory page live on" is answered here.
package topology

import (
	"fmt"
	"sync/atomic"
)

// CoreID identifies a logical processor core within a Topology.
// Cores are numbered densely from 0 across all sockets.
type CoreID int

// SocketID identifies a processor socket (a hardware Island).
type SocketID int

// InvalidSocket is returned for cores that do not exist in the topology.
const InvalidSocket SocketID = -1

// DieID identifies a die (CCX, chiplet, sub-NUMA cluster) within a Topology.
// Dies are numbered densely from 0 across all sockets, so a DieID alone
// identifies both the die and (via SocketOfDie) its enclosing socket.
type DieID int

// InvalidDie is returned for cores that do not exist in the topology.
const InvalidDie DieID = -1

// Core describes one logical processor core.
type Core struct {
	ID     CoreID
	Socket SocketID
	// Die is the global index of the die the core belongs to. On flat
	// machines (one die per socket) it equals the socket index.
	Die DieID
	// Index of the core within its socket (0..CoresPerSocket-1).
	LocalIndex int
	// Speed is the core's relative execution speed: 1.0 is a full-speed
	// (P) core, values below 1 model efficiency (E) cores and thermally
	// limited dies. Cost models divide per-row CPU work by it, and the
	// placement search weights per-core utilization by it.
	Speed float64
}

// Topology describes a multisocket machine as a hierarchical island tree:
// how many sockets it has, how the cores of each socket group into dies, and
// the relative communication distance between islands at every level.
//
// Distances are unitless multipliers applied by the cost model: a distance of
// 0 means "same island" (communication through a shared cache), 1 means "one
// interconnect hop", 2 means "two hops", and so on. Socket-level hops (the
// Distance matrix) and die-level hops (DieHops) are separate axes priced by
// separate cost-model constants, because a die-to-die hop inside a package is
// much cheaper than a QPI/UPI hop between packages.
type Topology struct {
	name          string
	sockets       int
	perSocket     int
	diesPerSocket int
	cores         []Core
	distance      [][]int
	dieDistance   [][]int // intra-socket die hop matrix (diesPerSocket x diesPerSocket)
	failed        []atomic.Bool
	qpiBytes      []atomic.Int64 // interconnect traffic counters, indexed by socket
	localBytes    []atomic.Int64 // memory-controller (local) traffic counters
	// epoch increments on every liveness change (FailSocket/RestoreSocket).
	// Engines key their cached alive-core lists on it so the transaction hot
	// path never has to rebuild the list.
	epoch atomic.Uint64
}

// Config describes a topology to build.
type Config struct {
	// Name is a human readable label ("8-socket twisted cube").
	Name string
	// Sockets is the number of processor sockets (Islands). Must be >= 1.
	Sockets int
	// CoresPerSocket is the number of cores on each socket. Must be >= 1.
	CoresPerSocket int
	// Distance is an optional Sockets x Sockets matrix of inter-socket hop
	// counts. Distance[i][i] must be 0. If nil, a distance matrix for a
	// twisted-cube-like topology is generated.
	Distance [][]int
	// DiesPerSocket splits each socket's cores into that many dies (CCXs,
	// chiplets, sub-NUMA clusters). Zero or one means a flat socket (one die).
	// CoresPerSocket must be divisible by it.
	DiesPerSocket int
	// DieDistance is an optional DiesPerSocket x DiesPerSocket matrix of
	// intra-socket die hop counts, with the same symmetry/zero-diagonal rules
	// as Distance. If nil, every pair of distinct dies is one die-hop apart.
	DieDistance [][]int
	// CoreSpeeds optionally assigns a relative speed to each core of a
	// socket, by local index; the pattern repeats on every socket (modern
	// hybrid parts are built from identical packages). Length must be
	// CoresPerSocket and every entry positive. Nil means uniform full-speed
	// cores (1.0).
	CoreSpeeds []float64
}

// validateSquare checks a hop matrix for size, zero diagonal, symmetry and
// non-negative entries.
func validateSquare(what string, dist [][]int, n int) error {
	if len(dist) != n {
		return fmt.Errorf("topology: %s matrix has %d rows, want %d", what, len(dist), n)
	}
	for i, row := range dist {
		if len(row) != n {
			return fmt.Errorf("topology: %s row %d has %d columns, want %d", what, i, len(row), n)
		}
		if row[i] != 0 {
			return fmt.Errorf("topology: %s[%d][%d] must be 0, got %d", what, i, i, row[i])
		}
		for j, d := range row {
			if d < 0 {
				return fmt.Errorf("topology: negative %s[%d][%d] = %d", what, i, j, d)
			}
			if dist[j][i] != d {
				return fmt.Errorf("topology: %s matrix not symmetric at (%d,%d)", what, i, j)
			}
		}
	}
	return nil
}

// uniformDistance returns an n x n matrix with hop off the diagonal.
func uniformDistance(n, hop int) [][]int {
	out := make([][]int, n)
	for i := range out {
		out[i] = make([]int, n)
		for j := range out[i] {
			if i != j {
				out[i][j] = hop
			}
		}
	}
	return out
}

// New builds a Topology from cfg.
func New(cfg Config) (*Topology, error) {
	if cfg.Sockets < 1 {
		return nil, fmt.Errorf("topology: sockets must be >= 1, got %d", cfg.Sockets)
	}
	if cfg.CoresPerSocket < 1 {
		return nil, fmt.Errorf("topology: cores per socket must be >= 1, got %d", cfg.CoresPerSocket)
	}
	dies := cfg.DiesPerSocket
	if dies <= 0 {
		dies = 1
	}
	if cfg.CoresPerSocket%dies != 0 {
		return nil, fmt.Errorf("topology: %d cores per socket not divisible by %d dies", cfg.CoresPerSocket, dies)
	}
	dist := cfg.Distance
	if dist == nil {
		dist = TwistedCubeDistance(cfg.Sockets)
	}
	if err := validateSquare("distance", dist, cfg.Sockets); err != nil {
		return nil, err
	}
	dieDist := cfg.DieDistance
	if dieDist == nil {
		dieDist = uniformDistance(dies, 1)
	}
	if err := validateSquare("die distance", dieDist, dies); err != nil {
		return nil, err
	}
	if cfg.CoreSpeeds != nil {
		if len(cfg.CoreSpeeds) != cfg.CoresPerSocket {
			return nil, fmt.Errorf("topology: %d core speeds for %d cores per socket", len(cfg.CoreSpeeds), cfg.CoresPerSocket)
		}
		for i, s := range cfg.CoreSpeeds {
			if !(s > 0) {
				return nil, fmt.Errorf("topology: core speed [%d] = %v must be positive", i, s)
			}
		}
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("%d-socket x %d-core", cfg.Sockets, cfg.CoresPerSocket)
	}
	t := &Topology{
		name:          name,
		sockets:       cfg.Sockets,
		perSocket:     cfg.CoresPerSocket,
		diesPerSocket: dies,
		distance:      dist,
		dieDistance:   dieDist,
		failed:        make([]atomic.Bool, cfg.Sockets),
		qpiBytes:      make([]atomic.Int64, cfg.Sockets),
		localBytes:    make([]atomic.Int64, cfg.Sockets),
	}
	perDie := cfg.CoresPerSocket / dies
	t.cores = make([]Core, 0, cfg.Sockets*cfg.CoresPerSocket)
	for s := 0; s < cfg.Sockets; s++ {
		for c := 0; c < cfg.CoresPerSocket; c++ {
			speed := 1.0
			if cfg.CoreSpeeds != nil {
				speed = cfg.CoreSpeeds[c]
			}
			t.cores = append(t.cores, Core{
				ID:         CoreID(len(t.cores)),
				Socket:     SocketID(s),
				Die:        DieID(s*dies + c/perDie),
				LocalIndex: c,
				Speed:      speed,
			})
		}
	}
	return t, nil
}

// MustNew is like New but panics on error. It is intended for tests and for
// preset topologies whose configuration is known to be valid.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Default returns the paper's experimental platform: 8 sockets of 10 cores
// connected in a twisted cube.
func Default() *Topology {
	return MustNew(Config{Name: "8-socket x 10-core twisted cube", Sockets: 8, CoresPerSocket: 10})
}

// Small returns a 4-socket by 4-core topology that keeps tests and examples fast.
func Small() *Topology {
	return MustNew(Config{Name: "4-socket x 4-core", Sockets: 4, CoresPerSocket: 4})
}

// Name returns the topology's human readable label.
func (t *Topology) Name() string { return t.name }

// Sockets returns the number of sockets.
func (t *Topology) Sockets() int { return t.sockets }

// CoresPerSocket returns the number of cores on each socket.
func (t *Topology) CoresPerSocket() int { return t.perSocket }

// DiesPerSocket returns the number of dies on each socket (1 on flat machines).
func (t *Topology) DiesPerSocket() int { return t.diesPerSocket }

// NumDies returns the total number of dies across all sockets.
func (t *Topology) NumDies() int { return t.sockets * t.diesPerSocket }

// Hierarchical reports whether the machine has sub-socket structure (more
// than one die per socket). On flat machines the die level coincides with the
// socket level and every die-level cost term is zero.
func (t *Topology) Hierarchical() bool { return t.diesPerSocket > 1 }

// DieOf returns the die that core id belongs to, or InvalidDie if the core
// does not exist.
func (t *Topology) DieOf(id CoreID) DieID {
	if int(id) < 0 || int(id) >= len(t.cores) {
		return InvalidDie
	}
	return t.cores[id].Die
}

// SocketOfDie returns the socket enclosing die d.
func (t *Topology) SocketOfDie(d DieID) SocketID {
	if int(d) < 0 || int(d) >= t.NumDies() {
		return InvalidSocket
	}
	return SocketID(int(d) / t.diesPerSocket)
}

// FirstDieOn returns the first die of socket s — the die hosting the
// socket's memory controller under the IO-die model, and the die a
// socket-homed structure lands on when no owner core narrows it further.
func (t *Topology) FirstDieOn(s SocketID) DieID {
	if int(s) < 0 || int(s) >= t.sockets {
		return InvalidDie
	}
	return DieID(int(s) * t.diesPerSocket)
}

// CoresOnDie returns the cores that belong to die d.
func (t *Topology) CoresOnDie(d DieID) []Core {
	if int(d) < 0 || int(d) >= t.NumDies() {
		return nil
	}
	perDie := t.perSocket / t.diesPerSocket
	start := int(d) * perDie
	return t.cores[start : start+perDie]
}

// DieHops returns the number of intra-socket die hops between dies a and b of
// the same socket. Dies on different sockets return 0: their separation is
// expressed entirely at the socket level (the Distance matrix), as the
// inter-socket link cost subsumes any on-package routing. Unknown dies report
// the maximum die distance so mistakes are conservatively expensive.
func (t *Topology) DieHops(a, b DieID) int {
	if int(a) < 0 || int(a) >= t.NumDies() || int(b) < 0 || int(b) >= t.NumDies() {
		return t.MaxDieDistance()
	}
	if t.SocketOfDie(a) != t.SocketOfDie(b) {
		return 0
	}
	return t.dieDistance[int(a)%t.diesPerSocket][int(b)%t.diesPerSocket]
}

// MaxDieDistance returns the largest intra-socket die distance.
func (t *Topology) MaxDieDistance() int {
	max := 0
	for _, row := range t.dieDistance {
		for _, d := range row {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// SharedLevel returns the finest level of the island hierarchy that contains
// both cores: LevelCore for the same core, LevelDie for distinct cores of one
// die, LevelSocket for distinct dies of one socket, LevelMachine otherwise
// (including unknown cores).
func (t *Topology) SharedLevel(a, b CoreID) Level {
	if int(a) < 0 || int(a) >= len(t.cores) || int(b) < 0 || int(b) >= len(t.cores) {
		return LevelMachine
	}
	switch {
	case a == b:
		return LevelCore
	case t.cores[a].Die == t.cores[b].Die:
		return LevelDie
	case t.cores[a].Socket == t.cores[b].Socket:
		return LevelSocket
	default:
		return LevelMachine
	}
}

// CorePath returns the hierarchical distance between two cores, decomposed
// per level: socketHops is the inter-socket interconnect distance (0 when the
// cores share a socket) and dieHops the intra-socket die distance (0 when
// they share a die or do not share a socket). Exactly one of the two is
// nonzero for any pair of cores that do not share a die; cost models price
// each axis with its own per-hop constant. Unknown cores report the machine's
// maximum socket distance, like Distance.
func (t *Topology) CorePath(a, b CoreID) (socketHops, dieHops int) {
	if int(a) < 0 || int(a) >= len(t.cores) || int(b) < 0 || int(b) >= len(t.cores) {
		return t.MaxDistance(), 0
	}
	ca, cb := &t.cores[a], &t.cores[b]
	if ca.Socket != cb.Socket {
		return t.distance[ca.Socket][cb.Socket], 0
	}
	if ca.Die != cb.Die {
		return 0, t.dieDistance[int(ca.Die)%t.diesPerSocket][int(cb.Die)%t.diesPerSocket]
	}
	return 0, 0
}

// NumCores returns the total number of cores.
func (t *Topology) NumCores() int { return len(t.cores) }

// Cores returns all cores in the topology. The returned slice must not be modified.
func (t *Topology) Cores() []Core { return t.cores }

// Core returns the core with the given id.
func (t *Topology) Core(id CoreID) (Core, error) {
	if int(id) < 0 || int(id) >= len(t.cores) {
		return Core{}, fmt.Errorf("topology: core %d out of range [0,%d)", id, len(t.cores))
	}
	return t.cores[id], nil
}

// SocketOf returns the socket that core id belongs to, or InvalidSocket if
// the core does not exist.
func (t *Topology) SocketOf(id CoreID) SocketID {
	if int(id) < 0 || int(id) >= len(t.cores) {
		return InvalidSocket
	}
	return t.cores[id].Socket
}

// SpeedOf returns the relative execution speed of core id. Unknown cores
// report full speed so cost formulas stay finite.
func (t *Topology) SpeedOf(id CoreID) float64 {
	if int(id) < 0 || int(id) >= len(t.cores) {
		return 1
	}
	return t.cores[id].Speed
}

// Heterogeneous reports whether the machine mixes core speeds (P/E cores).
func (t *Topology) Heterogeneous() bool {
	for i := range t.cores {
		if t.cores[i].Speed != 1 {
			return true
		}
	}
	return false
}

// CoresOn returns the cores that belong to socket s.
func (t *Topology) CoresOn(s SocketID) []Core {
	if int(s) < 0 || int(s) >= t.sockets {
		return nil
	}
	start := int(s) * t.perSocket
	return t.cores[start : start+t.perSocket]
}

// Distance returns the number of interconnect hops between sockets a and b.
// Same-socket distance is 0. Unknown sockets report the maximum distance in
// the machine so that mistakes are conservatively expensive.
func (t *Topology) Distance(a, b SocketID) int {
	if int(a) < 0 || int(a) >= t.sockets || int(b) < 0 || int(b) >= t.sockets {
		return t.MaxDistance()
	}
	return t.distance[a][b]
}

// CoreDistance returns the socket distance between the sockets of two cores.
func (t *Topology) CoreDistance(a, b CoreID) int {
	return t.Distance(t.SocketOf(a), t.SocketOf(b))
}

// MaxDistance returns the largest inter-socket distance in the machine.
func (t *Topology) MaxDistance() int {
	max := 0
	for _, row := range t.distance {
		for _, d := range row {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// AvgRemoteDistance returns the average distance between distinct alive
// sockets. Failed sockets are excluded: after a processor failure no traffic
// originates at or terminates on the dead socket, so including its links
// would overstate (or, for a well-connected dead socket, understate) the
// machine's effective remoteness. For a machine with at most one alive socket
// it returns 0.
func (t *Topology) AvgRemoteDistance() float64 {
	sum, n := 0, 0
	for i := 0; i < t.sockets; i++ {
		if !t.Alive(SocketID(i)) {
			continue
		}
		for j := 0; j < t.sockets; j++ {
			if i == j || !t.Alive(SocketID(j)) {
				continue
			}
			sum += t.distance[i][j]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// FailSocket marks socket s as failed. Failed sockets remain part of the
// topology (distances are still defined) but report Alive() == false; engines
// exclude their cores from scheduling, which is how the paper simulates a
// processor failure (Section VI-D3).
func (t *Topology) FailSocket(s SocketID) error {
	if int(s) < 0 || int(s) >= t.sockets {
		return fmt.Errorf("topology: cannot fail unknown socket %d", s)
	}
	t.failed[s].Store(true)
	t.epoch.Add(1)
	return nil
}

// RestoreSocket clears the failed flag of socket s.
func (t *Topology) RestoreSocket(s SocketID) error {
	if int(s) < 0 || int(s) >= t.sockets {
		return fmt.Errorf("topology: cannot restore unknown socket %d", s)
	}
	t.failed[s].Store(false)
	t.epoch.Add(1)
	return nil
}

// Epoch returns the liveness epoch: a counter that increments whenever a
// socket fails or is restored. A cached view of the alive cores is valid for
// as long as the epoch it was built under stays current.
func (t *Topology) Epoch() uint64 { return t.epoch.Load() }

// Alive reports whether socket s is operational.
func (t *Topology) Alive(s SocketID) bool {
	if int(s) < 0 || int(s) >= t.sockets {
		return false
	}
	return !t.failed[s].Load()
}

// AliveSockets returns the ids of all operational sockets.
func (t *Topology) AliveSockets() []SocketID {
	out := make([]SocketID, 0, t.sockets)
	for s := 0; s < t.sockets; s++ {
		if t.Alive(SocketID(s)) {
			out = append(out, SocketID(s))
		}
	}
	return out
}

// AliveCores returns all cores that belong to operational sockets.
func (t *Topology) AliveCores() []Core {
	out := make([]Core, 0, len(t.cores))
	for _, c := range t.cores {
		if t.Alive(c.Socket) {
			out = append(out, c)
		}
	}
	return out
}

// RecordTraffic accounts bytes moved on behalf of socket from to data on
// socket to. Local traffic is charged to the memory-controller counter,
// remote traffic to the interconnect (QPI) counter. The counters feed the
// Table I discussion (QPI/IMC traffic ratio).
func (t *Topology) RecordTraffic(from, to SocketID, bytes int64) {
	if int(from) < 0 || int(from) >= t.sockets {
		return
	}
	if from == to {
		t.localBytes[from].Add(bytes)
		return
	}
	t.qpiBytes[from].Add(bytes)
}

// TrafficStats summarizes the interconnect and memory-controller traffic
// recorded so far.
type TrafficStats struct {
	InterconnectBytes int64
	LocalBytes        int64
}

// Traffic returns the accumulated traffic counters across all sockets.
func (t *Topology) Traffic() TrafficStats {
	var st TrafficStats
	for s := 0; s < t.sockets; s++ {
		st.InterconnectBytes += t.qpiBytes[s].Load()
		st.LocalBytes += t.localBytes[s].Load()
	}
	return st
}

// ResetTraffic zeroes the traffic counters.
func (t *Topology) ResetTraffic() {
	for s := 0; s < t.sockets; s++ {
		t.qpiBytes[s].Store(0)
		t.localBytes[s].Store(0)
	}
}

// QPIToIMCRatio returns the ratio of interconnect traffic to local memory
// controller traffic, the metric the paper reports for Table I (0.01 local,
// 1.36 central, 1.49 remote). Returns 0 when no local traffic was recorded.
func (t *Topology) QPIToIMCRatio() float64 {
	st := t.Traffic()
	if st.LocalBytes == 0 {
		return 0
	}
	return float64(st.InterconnectBytes) / float64(st.LocalBytes)
}

// String implements fmt.Stringer.
func (t *Topology) String() string {
	if t.diesPerSocket > 1 {
		return fmt.Sprintf("%s (%d sockets x %d dies x %d cores)",
			t.name, t.sockets, t.diesPerSocket, t.perSocket/t.diesPerSocket)
	}
	return fmt.Sprintf("%s (%d sockets x %d cores)", t.name, t.sockets, t.perSocket)
}

// TwistedCubeDistance generates a symmetric hop-count matrix for n sockets
// arranged like the twisted-cube QPI topology of large Westmere-EX servers:
// every socket reaches a subset of sockets in one hop and the rest in two.
// For n <= 4 the sockets are fully connected (distance 1). For larger n the
// matrix is derived from a hypercube-like neighbourhood.
func TwistedCubeDistance(n int) [][]int {
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
	}
	if n <= 1 {
		return dist
	}
	if n <= 4 {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					dist[i][j] = 1
				}
			}
		}
		return dist
	}
	// Hypercube neighbourhood: sockets differing in exactly one bit are one
	// hop apart; the "twist" adds a direct link between diagonally opposite
	// sockets; everything else is two hops.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			x := i ^ j
			oneBit := x&(x-1) == 0
			opposite := j == n-1-i
			if oneBit || opposite {
				dist[i][j] = 1
			} else {
				dist[i][j] = 2
			}
		}
	}
	return dist
}

// MeshDistance generates a hop-count matrix for cores organized in a
// rows x cols mesh, as in the Tilera chips mentioned in Section II-A. It is
// provided for experiments with Islands that form within a single chip.
func MeshDistance(rows, cols int) [][]int {
	n := rows * cols
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
		ri, ci := i/cols, i%cols
		for j := 0; j < n; j++ {
			rj, cj := j/cols, j%cols
			dist[i][j] = abs(ri-rj) + abs(ci-cj)
		}
	}
	return dist
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
