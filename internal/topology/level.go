package topology

import "fmt"

// Level names one tier of the hardware-island hierarchy of a modern server:
// a core, the die (or CCX/chiplet) that groups cores behind a shared cache
// slice, the socket (package), and the whole machine. Levels are ordered from
// finest to coarsest, so comparisons read naturally: LevelCore < LevelSocket
// means core-grained islands are finer than socket-grained ones.
//
// The zero value is deliberately not a valid level so that a Level field left
// unset in a configuration can be detected and defaulted.
type Level int

const (
	// LevelCore is the finest island granularity: every core is its own island.
	LevelCore Level = iota + 1
	// LevelDie groups the cores of one die (CCX, chiplet, sub-NUMA cluster).
	// On flat machines (one die per socket) it coincides with LevelSocket.
	LevelDie
	// LevelSocket groups the cores of one processor socket.
	LevelSocket
	// LevelMachine is the coarsest granularity: the whole machine is one island.
	LevelMachine
)

// Levels returns every level from finest to coarsest.
func Levels() []Level {
	return []Level{LevelCore, LevelDie, LevelSocket, LevelMachine}
}

// Valid reports whether l is one of the defined levels.
func (l Level) Valid() bool { return l >= LevelCore && l <= LevelMachine }

// DistinctLevels returns the island levels that are structurally distinct on
// this machine, finest to coarsest: LevelDie only when sockets have more than
// one die, LevelSocket only when the machine has more than one socket. These
// are the candidate granularities a deployment (or the adaptive-granularity
// planner) can meaningfully choose between; the omitted levels would produce
// island sets identical to a neighbouring level.
func (t *Topology) DistinctLevels() []Level {
	out := []Level{LevelCore}
	if t.diesPerSocket > 1 {
		out = append(out, LevelDie)
	}
	if t.sockets > 1 {
		out = append(out, LevelSocket)
	}
	return append(out, LevelMachine)
}

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelCore:
		return "core"
	case LevelDie:
		return "die"
	case LevelSocket:
		return "socket"
	case LevelMachine:
		return "machine"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParseLevel converts a level name ("core", "die", "socket", "machine") to a Level.
func ParseLevel(s string) (Level, error) {
	for _, l := range Levels() {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown island level %q (want core, die, socket or machine)", s)
}

// Island is one hardware island: a set of cores that share a level of the
// hierarchy (a die, a socket, or the whole machine; at LevelCore each island
// is a single core).
type Island struct {
	// Level is the granularity the island was enumerated at.
	Level Level
	// Index is the dense index of the island among islands of its level.
	Index int
	// Socket is the socket enclosing the island. For LevelMachine islands of a
	// multisocket machine it is InvalidSocket (no single enclosing socket).
	Socket SocketID
	// Cores are the member cores. For islands returned by IslandsAt the slice
	// aliases the topology's core array and must not be modified.
	Cores []Core
}

// NumIslandsAt returns how many islands the machine has at the given level.
func (t *Topology) NumIslandsAt(level Level) int {
	switch level {
	case LevelCore:
		return len(t.cores)
	case LevelDie:
		return t.sockets * t.diesPerSocket
	case LevelSocket:
		return t.sockets
	case LevelMachine:
		return 1
	default:
		return 0
	}
}

// IslandOf returns the index of the island containing core c at the given
// level, or -1 if the core or level is unknown.
func (t *Topology) IslandOf(c CoreID, level Level) int {
	if int(c) < 0 || int(c) >= len(t.cores) {
		return -1
	}
	switch level {
	case LevelCore:
		return int(c)
	case LevelDie:
		return int(t.cores[c].Die)
	case LevelSocket:
		return int(t.cores[c].Socket)
	case LevelMachine:
		return 0
	default:
		return -1
	}
}

// IslandsAt enumerates the islands of the machine at the given level, in
// core order. The member slices alias the topology's core array.
func (t *Topology) IslandsAt(level Level) []Island {
	switch level {
	case LevelCore:
		out := make([]Island, len(t.cores))
		for i := range t.cores {
			out[i] = Island{Level: level, Index: i, Socket: t.cores[i].Socket, Cores: t.cores[i : i+1]}
		}
		return out
	case LevelDie:
		perDie := t.perSocket / t.diesPerSocket
		n := t.sockets * t.diesPerSocket
		out := make([]Island, n)
		for d := 0; d < n; d++ {
			start := d * perDie
			out[d] = Island{
				Level:  level,
				Index:  d,
				Socket: SocketID(d / t.diesPerSocket),
				Cores:  t.cores[start : start+perDie],
			}
		}
		return out
	case LevelSocket:
		out := make([]Island, t.sockets)
		for s := 0; s < t.sockets; s++ {
			start := s * t.perSocket
			out[s] = Island{Level: level, Index: s, Socket: SocketID(s), Cores: t.cores[start : start+t.perSocket]}
		}
		return out
	case LevelMachine:
		sock := InvalidSocket
		if t.sockets == 1 {
			sock = 0
		}
		return []Island{{Level: level, Index: 0, Socket: sock, Cores: t.cores}}
	default:
		return nil
	}
}

// AliveIslandsAt enumerates the islands at the given level that have at least
// one core on an operational socket, with their member lists filtered down to
// alive cores. Island indices are preserved from IslandsAt, so a caller can
// still relate an alive island to its position in the full machine. The
// filtered member slices are freshly allocated when filtering was needed.
func (t *Topology) AliveIslandsAt(level Level) []Island {
	all := t.IslandsAt(level)
	out := make([]Island, 0, len(all))
	for _, isl := range all {
		allAlive := true
		anyAlive := false
		for _, c := range isl.Cores {
			if t.Alive(c.Socket) {
				anyAlive = true
			} else {
				allAlive = false
			}
		}
		if !anyAlive {
			continue
		}
		if !allAlive {
			cores := make([]Core, 0, len(isl.Cores))
			for _, c := range isl.Cores {
				if t.Alive(c.Socket) {
					cores = append(cores, c)
				}
			}
			isl.Cores = cores
		}
		out = append(out, isl)
	}
	return out
}
