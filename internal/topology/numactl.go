package topology

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// ParseNumactl builds a topology Config from the output of a real machine's
// `numactl --hardware` dump: the node count and per-node cpu lists become the
// socket layout, and the node-distance table becomes the inter-socket hop
// matrix. The ACPI SLIT convention encodes local access as 10 and remote
// access as its relative cost in tenths, so hops are derived by normalizing
// each entry to the row's local distance and rounding: 10 -> 0 hops (local),
// 21 -> 1 hop, 31 -> 2 hops. Asymmetric dumps are symmetrized to the larger
// hop count of each pair, since the model prices a transfer independently of
// direction.
//
// Only the lines ParseNumactl understands are consumed ("available:",
// "node N cpus:", and the "node distances:" table); size/free lines and
// anything else are ignored, so a raw terminal capture parses as-is.
// Nodes need not expose the same number of cpus — dumps from machines with
// offlined cores or asymmetric SMT are truncated to the largest uniform
// sub-machine (the smallest per-node cpu count becomes CoresPerSocket).
func ParseNumactl(dump string) (Config, error) {
	cpus := make(map[int][]int)
	var distRows [][]int
	var distNodes []int
	inDistances := false
	for _, line := range strings.Split(dump, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "node distances:"):
			inDistances = true
		case inDistances && strings.HasPrefix(line, "node"):
			// The header row of the distance table ("node   0   1  ..."):
			// ignored, node order is taken from the data rows.
		case inDistances:
			// A data row: "  0:  10  21  31  21".
			parts := strings.SplitN(line, ":", 2)
			if len(parts) != 2 {
				return Config{}, fmt.Errorf("topology: malformed distance row %q", line)
			}
			node, err := strconv.Atoi(strings.TrimSpace(parts[0]))
			if err != nil {
				return Config{}, fmt.Errorf("topology: malformed distance row %q: %v", line, err)
			}
			var row []int
			for _, f := range strings.Fields(parts[1]) {
				d, err := strconv.Atoi(f)
				if err != nil {
					return Config{}, fmt.Errorf("topology: malformed distance %q in row %q", f, line)
				}
				row = append(row, d)
			}
			distNodes = append(distNodes, node)
			distRows = append(distRows, row)
		case strings.HasPrefix(line, "node ") && strings.Contains(line, " cpus:"):
			// "node 0 cpus: 0 1 2 3"
			rest := strings.TrimPrefix(line, "node ")
			parts := strings.SplitN(rest, " cpus:", 2)
			node, err := strconv.Atoi(strings.TrimSpace(parts[0]))
			if err != nil {
				return Config{}, fmt.Errorf("topology: malformed cpu line %q: %v", line, err)
			}
			var ids []int
			for _, f := range strings.Fields(parts[1]) {
				id, err := strconv.Atoi(f)
				if err != nil {
					return Config{}, fmt.Errorf("topology: malformed cpu id %q in %q", f, line)
				}
				ids = append(ids, id)
			}
			cpus[node] = ids
		}
	}
	n := len(cpus)
	if n == 0 {
		return Config{}, fmt.Errorf("topology: numactl dump has no \"node N cpus:\" lines")
	}
	// Real dumps are not always uniform: offlined cores, asymmetric SMT and
	// CPU-less memory nodes all produce nodes with differing cpu counts. The
	// simulated machine is uniform, so a non-uniform dump is truncated to its
	// largest uniform sub-machine (every node contributes min-count cores);
	// only nodes with no cpus at all, or a gap in the node numbering, are
	// genuinely malformed.
	perSocket := -1
	for node := 0; node < n; node++ {
		ids, ok := cpus[node]
		if !ok {
			return Config{}, fmt.Errorf("topology: numactl dump is missing node %d's cpus", node)
		}
		if len(ids) == 0 {
			return Config{}, fmt.Errorf("topology: node %d has no cpus", node)
		}
		if perSocket < 0 || len(ids) < perSocket {
			perSocket = len(ids)
		}
	}
	if len(distRows) != n {
		return Config{}, fmt.Errorf("topology: distance table has %d rows for %d nodes", len(distRows), n)
	}
	// Re-order the rows by node id and normalize SLIT values to hop counts.
	slit := make([][]int, n)
	for i, node := range distNodes {
		if node < 0 || node >= n || slit[node] != nil {
			return Config{}, fmt.Errorf("topology: unexpected distance row for node %d", node)
		}
		if len(distRows[i]) != n {
			return Config{}, fmt.Errorf("topology: distance row for node %d has %d entries, want %d",
				node, len(distRows[i]), n)
		}
		slit[node] = distRows[i]
	}
	hops := make([][]int, n)
	for i := range hops {
		hops[i] = make([]int, n)
		local := slit[i][i]
		if local <= 0 {
			return Config{}, fmt.Errorf("topology: node %d has non-positive local distance %d", i, slit[i][i])
		}
		for j, d := range slit[i] {
			if i == j {
				continue
			}
			if d < local {
				return Config{}, fmt.Errorf("topology: node %d reports remote distance %d below local %d", i, d, local)
			}
			// 21/10 -> 1 hop, 31/10 -> 2 hops; anything remote is >= 1 hop.
			h := (d + local/2) / local
			if h < 2 {
				h = 2
			}
			hops[i][j] = h - 1
		}
	}
	// Symmetrize to the larger hop count of each pair.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if hops[i][j] > hops[j][i] {
				hops[j][i] = hops[i][j]
			} else {
				hops[i][j] = hops[j][i]
			}
		}
	}
	return Config{
		Name:           fmt.Sprintf("numactl-harvested %d-socket x %d-core", n, perSocket),
		Sockets:        n,
		CoresPerSocket: perSocket,
		Distance:       hops,
	}, nil
}

// numactl4SRing is a harvested `numactl --hardware` dump from a four-socket
// ring-interconnect box: each socket reaches its two neighbours in one hop
// (SLIT 21) and the opposite socket in two (SLIT 31).
const numactl4SRing = `available: 4 nodes (0-3)
node 0 cpus: 0 1 2 3 4 5 6 7
node 0 size: 64215 MB
node 0 free: 60302 MB
node 1 cpus: 8 9 10 11 12 13 14 15
node 1 size: 64509 MB
node 1 free: 61211 MB
node 2 cpus: 16 17 18 19 20 21 22 23
node 2 size: 64509 MB
node 2 free: 62748 MB
node 3 cpus: 24 25 26 27 28 29 30 31
node 3 size: 64506 MB
node 3 free: 61023 MB
node distances:
node   0   1   2   3
  0:  10  21  31  21
  1:  21  10  21  31
  2:  31  21  10  21
  3:  21  31  21  10
`

// harvested4SConfig parses the embedded dump, once — Profiles() is called
// per profile lookup inside sweep loops, and the dump never changes. The
// dump is fixed, so a parse failure is a programming error. The memoized
// Config's matrices are shared by every topology built from it; topologies
// never mutate their distance matrices.
var harvested4SConfig = sync.OnceValue(func() Config {
	cfg, err := ParseNumactl(numactl4SRing)
	if err != nil {
		panic(err)
	}
	cfg.Name = "4-socket ring (numactl harvest)"
	return cfg
})
