package topology

import (
	"testing"
)

// checkDistanceMatrix asserts the four distance-matrix properties every
// machine shape must satisfy: zero diagonal, symmetry, the triangle
// inequality, and a maximum hop bound.
func checkDistanceMatrix(t *testing.T, what string, d [][]int, maxHop int) {
	t.Helper()
	n := len(d)
	for i := 0; i < n; i++ {
		if len(d[i]) != n {
			t.Fatalf("%s: row %d has %d columns, want %d", what, i, len(d[i]), n)
		}
		if d[i][i] != 0 {
			t.Errorf("%s: nonzero diagonal at %d: %d", what, i, d[i][i])
		}
		for j := 0; j < n; j++ {
			if d[i][j] != d[j][i] {
				t.Errorf("%s: asymmetric at (%d,%d): %d vs %d", what, i, j, d[i][j], d[j][i])
			}
			if i != j && d[i][j] < 1 {
				t.Errorf("%s: distinct nodes (%d,%d) at distance %d, want >= 1", what, i, j, d[i][j])
			}
			if d[i][j] > maxHop {
				t.Errorf("%s: distance (%d,%d) = %d exceeds max hop bound %d", what, i, j, d[i][j], maxHop)
			}
			for k := 0; k < n; k++ {
				if d[i][j] > d[i][k]+d[k][j] {
					t.Errorf("%s: triangle inequality violated: d(%d,%d)=%d > d(%d,%d)+d(%d,%d)=%d",
						what, i, j, d[i][j], i, k, k, j, d[i][k]+d[k][j])
				}
			}
		}
	}
}

func TestTwistedCubeDistancePropertiesAcrossSizes(t *testing.T) {
	for n := 1; n <= 16; n++ {
		// The twisted cube reaches every socket in at most two hops.
		checkDistanceMatrix(t, "twisted-cube", TwistedCubeDistance(n), 2)
	}
}

func TestMeshDistancePropertiesAcrossSizes(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {2, 3}, {3, 3}, {4, 4}, {4, 8}} {
		rows, cols := dims[0], dims[1]
		// A mesh's diameter is the Manhattan distance between opposite corners.
		checkDistanceMatrix(t, "mesh", MeshDistance(rows, cols), rows-1+cols-1)
	}
}

func TestProfileDistanceProperties(t *testing.T) {
	for _, p := range Profiles() {
		top := p.Build()
		// Socket-level matrix: reconstruct through the public accessor.
		n := top.Sockets()
		sd := make([][]int, n)
		for i := range sd {
			sd[i] = make([]int, n)
			for j := range sd[i] {
				sd[i][j] = top.Distance(SocketID(i), SocketID(j))
			}
		}
		checkDistanceMatrix(t, p.Name+"/sockets", sd, top.MaxDistance())
		// Die-level matrix within one socket.
		if top.DiesPerSocket() > 1 {
			m := top.DiesPerSocket()
			dd := make([][]int, m)
			for i := range dd {
				dd[i] = make([]int, m)
				for j := range dd[i] {
					dd[i][j] = top.DieHops(DieID(i), DieID(j))
				}
			}
			checkDistanceMatrix(t, p.Name+"/dies", dd, top.MaxDieDistance())
		}
		// The profile's level list is consistent with its shape.
		levels := p.Levels()
		if levels[0] != LevelCore || levels[len(levels)-1] != LevelMachine {
			t.Errorf("%s: levels %v should span core..machine", p.Name, levels)
		}
	}
}

func TestDieStructure(t *testing.T) {
	top := MustNew(Config{Sockets: 2, CoresPerSocket: 8, DiesPerSocket: 4})
	if top.NumDies() != 8 || top.DiesPerSocket() != 4 || !top.Hierarchical() {
		t.Fatalf("unexpected die structure: %d dies, %d per socket", top.NumDies(), top.DiesPerSocket())
	}
	// 2 cores per die, dies numbered densely across sockets.
	for i, c := range top.Cores() {
		wantDie := DieID(i / 2)
		if c.Die != wantDie {
			t.Errorf("core %d on die %d, want %d", i, c.Die, wantDie)
		}
		if top.DieOf(c.ID) != wantDie {
			t.Errorf("DieOf(%d) = %d, want %d", c.ID, top.DieOf(c.ID), wantDie)
		}
	}
	if top.DieOf(CoreID(99)) != InvalidDie {
		t.Error("DieOf(unknown) should be InvalidDie")
	}
	if top.SocketOfDie(3) != 0 || top.SocketOfDie(4) != 1 {
		t.Errorf("SocketOfDie mapping wrong: %d, %d", top.SocketOfDie(3), top.SocketOfDie(4))
	}
	if top.SocketOfDie(99) != InvalidSocket {
		t.Error("SocketOfDie(unknown) should be InvalidSocket")
	}
	if cores := top.CoresOnDie(2); len(cores) != 2 || cores[0].ID != 4 {
		t.Errorf("CoresOnDie(2) = %v", cores)
	}
	if top.CoresOnDie(99) != nil {
		t.Error("CoresOnDie(unknown) should be nil")
	}
	// Die hops: same die 0, distinct dies of one socket 1 (uniform default),
	// dies of different sockets 0 (socket axis covers them).
	if top.DieHops(0, 0) != 0 || top.DieHops(0, 1) != 1 || top.DieHops(0, 4) != 0 {
		t.Errorf("DieHops = %d,%d,%d", top.DieHops(0, 0), top.DieHops(0, 1), top.DieHops(0, 4))
	}
	if top.DieHops(-1, 0) != top.MaxDieDistance() {
		t.Error("unknown die should report the max die distance")
	}
}

func TestSharedLevelAndCorePath(t *testing.T) {
	top := MustNew(Config{Sockets: 2, CoresPerSocket: 4, DiesPerSocket: 2})
	cases := []struct {
		a, b     CoreID
		level    Level
		sockHops int
		dieHops  int
	}{
		{0, 0, LevelCore, 0, 0},
		{0, 1, LevelDie, 0, 0},    // same die
		{0, 2, LevelSocket, 0, 1}, // same socket, different die
		{0, 4, LevelMachine, 1, 0},
		{0, 99, LevelMachine, top.MaxDistance(), 0},
	}
	for _, tc := range cases {
		if got := top.SharedLevel(tc.a, tc.b); got != tc.level {
			t.Errorf("SharedLevel(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.level)
		}
		s, d := top.CorePath(tc.a, tc.b)
		if s != tc.sockHops || d != tc.dieHops {
			t.Errorf("CorePath(%d,%d) = (%d,%d), want (%d,%d)", tc.a, tc.b, s, d, tc.sockHops, tc.dieHops)
		}
	}
}

func TestIslandEnumeration(t *testing.T) {
	top := MustNew(Config{Sockets: 2, CoresPerSocket: 4, DiesPerSocket: 2})
	wantCounts := map[Level]int{LevelCore: 8, LevelDie: 4, LevelSocket: 2, LevelMachine: 1}
	for level, want := range wantCounts {
		if got := top.NumIslandsAt(level); got != want {
			t.Errorf("NumIslandsAt(%v) = %d, want %d", level, got, want)
		}
		islands := top.IslandsAt(level)
		if len(islands) != want {
			t.Fatalf("IslandsAt(%v) returned %d islands, want %d", level, len(islands), want)
		}
		seen := 0
		for i, isl := range islands {
			if isl.Index != i || isl.Level != level {
				t.Errorf("%v island %d has index %d level %v", level, i, isl.Index, isl.Level)
			}
			for _, c := range isl.Cores {
				if top.IslandOf(c.ID, level) != i {
					t.Errorf("IslandOf(%d, %v) = %d, want %d", c.ID, level, top.IslandOf(c.ID, level), i)
				}
				seen++
			}
		}
		if seen != top.NumCores() {
			t.Errorf("%v islands cover %d cores, want %d", level, seen, top.NumCores())
		}
	}
	// Die islands carry their enclosing socket; machine islands of a
	// multisocket box have none.
	if isl := top.IslandsAt(LevelDie)[3]; isl.Socket != 1 {
		t.Errorf("die island 3 on socket %d, want 1", isl.Socket)
	}
	if isl := top.IslandsAt(LevelMachine)[0]; isl.Socket != InvalidSocket {
		t.Errorf("machine island socket = %d, want InvalidSocket", isl.Socket)
	}
	if top.IslandsAt(Level(0)) != nil || top.NumIslandsAt(Level(99)) != 0 {
		t.Error("invalid levels should enumerate nothing")
	}
	if top.IslandOf(0, Level(0)) != -1 || top.IslandOf(CoreID(99), LevelCore) != -1 {
		t.Error("invalid island lookups should return -1")
	}
}

func TestAliveIslandsFiltering(t *testing.T) {
	top := MustNew(Config{Sockets: 2, CoresPerSocket: 4, DiesPerSocket: 2})
	if err := top.FailSocket(1); err != nil {
		t.Fatal(err)
	}
	if got := len(top.AliveIslandsAt(LevelDie)); got != 2 {
		t.Errorf("alive die islands = %d, want 2 (socket 1's dies gone)", got)
	}
	if got := len(top.AliveIslandsAt(LevelSocket)); got != 1 {
		t.Errorf("alive socket islands = %d, want 1", got)
	}
	machine := top.AliveIslandsAt(LevelMachine)
	if len(machine) != 1 || len(machine[0].Cores) != 4 {
		t.Errorf("machine island should survive with 4 alive cores, got %+v", machine)
	}
	for _, c := range machine[0].Cores {
		if c.Socket == 1 {
			t.Errorf("core %d of failed socket still listed", c.ID)
		}
	}
	if err := top.RestoreSocket(1); err != nil {
		t.Fatal(err)
	}
	if got := len(top.AliveIslandsAt(LevelDie)); got != 4 {
		t.Errorf("alive die islands after restore = %d, want 4", got)
	}
}

// TestNewProfileShapes pins the shapes of the mesh and consumer profiles: the
// mesh grid's hop counts are Manhattan distances, and the one-socket consumer
// part distinguishes die islands but not socket islands.
func TestNewProfileShapes(t *testing.T) {
	mesh, err := BuildProfile("mesh-3x3")
	if err != nil {
		t.Fatal(err)
	}
	if mesh.Sockets() != 9 || mesh.NumCores() != 36 || mesh.Hierarchical() {
		t.Errorf("mesh-3x3 shape wrong: %s", mesh)
	}
	// Corner to opposite corner of the 3x3 grid is 4 hops; adjacent tiles 1.
	if got := mesh.Distance(0, 8); got != 4 {
		t.Errorf("mesh corner distance = %d, want 4", got)
	}
	if got := mesh.Distance(0, 1); got != 1 {
		t.Errorf("mesh adjacent distance = %d, want 1", got)
	}
	if got := mesh.MaxDistance(); got != 4 {
		t.Errorf("mesh max distance = %d, want 4", got)
	}

	consumer, err := BuildProfile("consumer-1s4d")
	if err != nil {
		t.Fatal(err)
	}
	if consumer.Sockets() != 1 || consumer.NumDies() != 4 || !consumer.Hierarchical() {
		t.Errorf("consumer-1s4d shape wrong: %s", consumer)
	}
	p, _ := ProfileByName("consumer-1s4d")
	levels := p.Levels()
	want := []Level{LevelCore, LevelDie, LevelMachine}
	if len(levels) != len(want) {
		t.Fatalf("consumer levels = %v, want %v", levels, want)
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("consumer levels = %v, want %v", levels, want)
		}
	}
	// DistinctLevels agrees with the profile's level list on both shapes.
	if got := consumer.DistinctLevels(); len(got) != 3 || got[1] != LevelDie {
		t.Errorf("consumer DistinctLevels = %v", got)
	}
	if got := mesh.DistinctLevels(); len(got) != 3 || got[1] != LevelSocket {
		t.Errorf("mesh DistinctLevels = %v", got)
	}
}

// TestIslandEnumerationAcrossFailureEpochs mirrors the planner's view of the
// machine when a socket dies between two epochs: AliveIslandsAt must drop the
// dead socket's islands at every level while preserving the index mapping
// IslandOf still reports, and no surviving island may list a dead core —
// which is what guarantees a level change never homes a site on dead
// hardware.
func TestIslandEnumerationAcrossFailureEpochs(t *testing.T) {
	top := MustNew(Config{Sockets: 4, CoresPerSocket: 4, DiesPerSocket: 2})
	epochBefore := top.Epoch()
	if err := top.FailSocket(2); err != nil {
		t.Fatal(err)
	}
	if top.Epoch() == epochBefore {
		t.Fatal("socket failure must advance the liveness epoch")
	}
	for _, level := range top.DistinctLevels() {
		alive := top.AliveIslandsAt(level)
		for _, isl := range alive {
			if len(isl.Cores) == 0 {
				t.Fatalf("%v island %d has no cores", level, isl.Index)
			}
			for _, c := range isl.Cores {
				if !top.Alive(c.Socket) {
					t.Errorf("%v island %d lists core %d on dead socket %d", level, isl.Index, c.ID, c.Socket)
				}
				// The index mapping survives the failure: a member core still
				// maps to its island's position in the full enumeration.
				if got := top.IslandOf(c.ID, level); got != isl.Index {
					t.Errorf("IslandOf(%d, %v) = %d, island reports index %d", c.ID, level, got, isl.Index)
				}
			}
		}
	}
	// Exactly socket 2's islands are gone.
	if got := len(top.AliveIslandsAt(LevelDie)); got != 6 {
		t.Errorf("alive die islands = %d, want 6", got)
	}
	if got := len(top.AliveIslandsAt(LevelSocket)); got != 3 {
		t.Errorf("alive socket islands = %d, want 3", got)
	}
	// Dead cores still resolve to their (dead) island index — the caller
	// filters by liveness, the mapping itself stays total.
	deadCore := top.CoresOn(2)[0].ID
	if got := top.IslandOf(deadCore, LevelSocket); got != 2 {
		t.Errorf("IslandOf(dead core, socket) = %d, want 2", got)
	}
}

func TestLevelParseAndOrdering(t *testing.T) {
	for _, l := range Levels() {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
		if !l.Valid() {
			t.Errorf("%v should be valid", l)
		}
	}
	if _, err := ParseLevel("chip"); err == nil {
		t.Error("ParseLevel(chip) should fail")
	}
	if Level(0).Valid() || Level(9).Valid() {
		t.Error("out-of-range levels should be invalid")
	}
	if !(LevelCore < LevelDie && LevelDie < LevelSocket && LevelSocket < LevelMachine) {
		t.Error("levels must order finest to coarsest")
	}
}

// TestAvgRemoteDistanceExcludesFailedSockets is the regression test for the
// failed-socket fix: killing the socket with the longest links must lower the
// machine-wide average remote distance.
func TestAvgRemoteDistanceExcludesFailedSockets(t *testing.T) {
	// Socket 2 is two hops from everyone; sockets 0 and 1 are adjacent.
	top := MustNew(Config{
		Sockets:        3,
		CoresPerSocket: 1,
		Distance:       [][]int{{0, 1, 2}, {1, 0, 2}, {2, 2, 0}},
	})
	before := top.AvgRemoteDistance()
	if err := top.FailSocket(2); err != nil {
		t.Fatal(err)
	}
	after := top.AvgRemoteDistance()
	if after >= before {
		t.Errorf("AvgRemoteDistance should drop when the distant socket fails: before %f, after %f", before, after)
	}
	if after != 1 {
		t.Errorf("remaining sockets are adjacent: want 1, got %f", after)
	}
	// With at most one alive socket there is no remote distance.
	top.FailSocket(0)
	if d := top.AvgRemoteDistance(); d != 0 {
		t.Errorf("one alive socket should average 0, got %f", d)
	}
}

func TestProfileLookup(t *testing.T) {
	if _, ok := ProfileByName("paper-8s"); !ok {
		t.Fatal("paper-8s profile missing")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("unknown profile should miss")
	}
	if _, err := BuildProfile("nope"); err == nil {
		t.Fatal("BuildProfile(nope) should fail")
	}
	top, err := BuildProfile("chiplet-2s4d")
	if err != nil {
		t.Fatal(err)
	}
	if !top.Hierarchical() || top.NumCores() != 32 || top.NumDies() != 8 {
		t.Errorf("chiplet profile shape wrong: %s", top)
	}
	if len(ProfileNames()) != len(Profiles()) {
		t.Error("ProfileNames length mismatch")
	}
	// The paper profile matches Default().
	paper, _ := ProfileByName("paper-8s")
	pt := paper.Build()
	dt := Default()
	if pt.Sockets() != dt.Sockets() || pt.CoresPerSocket() != dt.CoresPerSocket() {
		t.Error("paper-8s should match Default()")
	}
	for i := 0; i < pt.Sockets(); i++ {
		for j := 0; j < pt.Sockets(); j++ {
			if pt.Distance(SocketID(i), SocketID(j)) != dt.Distance(SocketID(i), SocketID(j)) {
				t.Fatalf("paper-8s distance (%d,%d) differs from Default", i, j)
			}
		}
	}
}
