package topology

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero sockets", Config{Sockets: 0, CoresPerSocket: 1}, false},
		{"zero cores", Config{Sockets: 1, CoresPerSocket: 0}, false},
		{"single core", Config{Sockets: 1, CoresPerSocket: 1}, true},
		{"default eight", Config{Sockets: 8, CoresPerSocket: 10}, true},
		{"bad matrix rows", Config{Sockets: 2, CoresPerSocket: 1, Distance: [][]int{{0}}}, false},
		{"bad matrix cols", Config{Sockets: 2, CoresPerSocket: 1, Distance: [][]int{{0}, {0, 1}}}, false},
		{"nonzero diagonal", Config{Sockets: 2, CoresPerSocket: 1, Distance: [][]int{{1, 1}, {1, 0}}}, false},
		{"asymmetric", Config{Sockets: 2, CoresPerSocket: 1, Distance: [][]int{{0, 1}, {2, 0}}}, false},
		{"negative", Config{Sockets: 2, CoresPerSocket: 1, Distance: [][]int{{0, -1}, {-1, 0}}}, false},
		{"valid explicit", Config{Sockets: 2, CoresPerSocket: 2, Distance: [][]int{{0, 1}, {1, 0}}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if tc.ok && err != nil {
				t.Fatalf("New(%+v) unexpected error: %v", tc.cfg, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("New(%+v) expected error, got nil", tc.cfg)
			}
		})
	}
}

func TestCoreNumbering(t *testing.T) {
	top := MustNew(Config{Sockets: 3, CoresPerSocket: 4})
	if got := top.NumCores(); got != 12 {
		t.Fatalf("NumCores = %d, want 12", got)
	}
	for i, c := range top.Cores() {
		if int(c.ID) != i {
			t.Errorf("core %d has ID %d", i, c.ID)
		}
		wantSocket := SocketID(i / 4)
		if c.Socket != wantSocket {
			t.Errorf("core %d on socket %d, want %d", i, c.Socket, wantSocket)
		}
		if c.LocalIndex != i%4 {
			t.Errorf("core %d local index %d, want %d", i, c.LocalIndex, i%4)
		}
	}
	if s := top.SocketOf(CoreID(7)); s != 1 {
		t.Errorf("SocketOf(7) = %d, want 1", s)
	}
	if s := top.SocketOf(CoreID(99)); s != InvalidSocket {
		t.Errorf("SocketOf(99) = %d, want InvalidSocket", s)
	}
	if _, err := top.Core(CoreID(-1)); err == nil {
		t.Error("Core(-1) expected error")
	}
	if c, err := top.Core(CoreID(5)); err != nil || c.Socket != 1 {
		t.Errorf("Core(5) = %+v, %v", c, err)
	}
}

func TestCoresOn(t *testing.T) {
	top := MustNew(Config{Sockets: 2, CoresPerSocket: 3})
	s1 := top.CoresOn(1)
	if len(s1) != 3 {
		t.Fatalf("CoresOn(1) has %d cores, want 3", len(s1))
	}
	for _, c := range s1 {
		if c.Socket != 1 {
			t.Errorf("core %d reported on socket %d", c.ID, c.Socket)
		}
	}
	if got := top.CoresOn(5); got != nil {
		t.Errorf("CoresOn(5) = %v, want nil", got)
	}
}

func TestDistanceProperties(t *testing.T) {
	top := Default()
	if top.Sockets() != 8 || top.CoresPerSocket() != 10 {
		t.Fatalf("Default topology is %s", top)
	}
	for i := 0; i < top.Sockets(); i++ {
		if d := top.Distance(SocketID(i), SocketID(i)); d != 0 {
			t.Errorf("Distance(%d,%d) = %d, want 0", i, i, d)
		}
		for j := 0; j < top.Sockets(); j++ {
			d := top.Distance(SocketID(i), SocketID(j))
			if d != top.Distance(SocketID(j), SocketID(i)) {
				t.Errorf("distance not symmetric at (%d,%d)", i, j)
			}
			if i != j && d < 1 {
				t.Errorf("Distance(%d,%d) = %d, want >= 1", i, j, d)
			}
		}
	}
	if top.MaxDistance() < 1 {
		t.Errorf("MaxDistance = %d, want >= 1", top.MaxDistance())
	}
	if top.AvgRemoteDistance() <= 0 {
		t.Errorf("AvgRemoteDistance = %f, want > 0", top.AvgRemoteDistance())
	}
	// Unknown sockets are conservatively expensive.
	if d := top.Distance(SocketID(-1), SocketID(0)); d != top.MaxDistance() {
		t.Errorf("Distance(-1,0) = %d, want max %d", d, top.MaxDistance())
	}
}

func TestCoreDistance(t *testing.T) {
	top := MustNew(Config{Sockets: 2, CoresPerSocket: 2})
	if d := top.CoreDistance(0, 1); d != 0 {
		t.Errorf("same-socket core distance = %d, want 0", d)
	}
	if d := top.CoreDistance(0, 3); d != 1 {
		t.Errorf("cross-socket core distance = %d, want 1", d)
	}
}

func TestSingleSocket(t *testing.T) {
	top := MustNew(Config{Sockets: 1, CoresPerSocket: 8})
	if d := top.AvgRemoteDistance(); d != 0 {
		t.Errorf("AvgRemoteDistance on 1 socket = %f, want 0", d)
	}
	if d := top.MaxDistance(); d != 0 {
		t.Errorf("MaxDistance on 1 socket = %d, want 0", d)
	}
}

func TestFailAndRestoreSocket(t *testing.T) {
	top := Small()
	if !top.Alive(2) {
		t.Fatal("socket 2 should start alive")
	}
	if err := top.FailSocket(2); err != nil {
		t.Fatal(err)
	}
	if top.Alive(2) {
		t.Error("socket 2 should be failed")
	}
	alive := top.AliveSockets()
	if len(alive) != 3 {
		t.Errorf("AliveSockets = %v, want 3 entries", alive)
	}
	cores := top.AliveCores()
	if len(cores) != 12 {
		t.Errorf("AliveCores returned %d cores, want 12", len(cores))
	}
	for _, c := range cores {
		if c.Socket == 2 {
			t.Errorf("core %d on failed socket still reported alive", c.ID)
		}
	}
	if err := top.RestoreSocket(2); err != nil {
		t.Fatal(err)
	}
	if !top.Alive(2) {
		t.Error("socket 2 should be alive after restore")
	}
	if err := top.FailSocket(99); err == nil {
		t.Error("FailSocket(99) expected error")
	}
	if err := top.RestoreSocket(99); err == nil {
		t.Error("RestoreSocket(99) expected error")
	}
	if top.Alive(SocketID(99)) {
		t.Error("unknown socket must not report alive")
	}
}

func TestTrafficCounters(t *testing.T) {
	top := Small()
	top.RecordTraffic(0, 0, 1000)
	top.RecordTraffic(0, 1, 500)
	top.RecordTraffic(1, 3, 500)
	st := top.Traffic()
	if st.LocalBytes != 1000 {
		t.Errorf("LocalBytes = %d, want 1000", st.LocalBytes)
	}
	if st.InterconnectBytes != 1000 {
		t.Errorf("InterconnectBytes = %d, want 1000", st.InterconnectBytes)
	}
	if r := top.QPIToIMCRatio(); r != 1.0 {
		t.Errorf("QPIToIMCRatio = %f, want 1.0", r)
	}
	top.ResetTraffic()
	if st := top.Traffic(); st.LocalBytes != 0 || st.InterconnectBytes != 0 {
		t.Errorf("traffic not reset: %+v", st)
	}
	if r := top.QPIToIMCRatio(); r != 0 {
		t.Errorf("QPIToIMCRatio with no traffic = %f, want 0", r)
	}
	// Traffic from an unknown socket is ignored rather than panicking.
	top.RecordTraffic(-1, 0, 100)
	if st := top.Traffic(); st.LocalBytes != 0 || st.InterconnectBytes != 0 {
		t.Errorf("unknown-socket traffic should be dropped, got %+v", st)
	}
}

func TestTwistedCubeDistanceProperties(t *testing.T) {
	prop := func(nRaw uint8) bool {
		n := int(nRaw%12) + 1
		d := TwistedCubeDistance(n)
		if len(d) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if d[i][i] != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if d[i][j] != d[j][i] || d[i][j] < 0 || d[i][j] > 2 {
					return false
				}
				if i != j && d[i][j] == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTwistedCubeHasShortAndLongLinks(t *testing.T) {
	d := TwistedCubeDistance(8)
	ones, twos := 0, 0
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			switch d[i][j] {
			case 1:
				ones++
			case 2:
				twos++
			}
		}
	}
	if ones == 0 || twos == 0 {
		t.Errorf("twisted cube should mix 1-hop and 2-hop links, got %d ones and %d twos", ones, twos)
	}
}

func TestMeshDistance(t *testing.T) {
	d := MeshDistance(2, 3)
	if len(d) != 6 {
		t.Fatalf("mesh matrix has %d rows, want 6", len(d))
	}
	// Core 0 is at (0,0); core 5 is at (1,2): manhattan distance 3.
	if d[0][5] != 3 {
		t.Errorf("d[0][5] = %d, want 3", d[0][5])
	}
	if d[0][0] != 0 || d[3][3] != 0 {
		t.Error("diagonal of mesh matrix must be zero")
	}
	for i := range d {
		for j := range d {
			if d[i][j] != d[j][i] {
				t.Fatalf("mesh distance not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestStringer(t *testing.T) {
	top := Default()
	if top.String() == "" || top.Name() == "" {
		t.Error("String/Name must be non-empty")
	}
}

func TestCoreSpeeds(t *testing.T) {
	top := MustNew(Config{
		Sockets: 2, CoresPerSocket: 4,
		CoreSpeeds: []float64{1, 1, 0.5, 0.5},
	})
	if !top.Heterogeneous() {
		t.Fatal("mixed-speed machine should report Heterogeneous")
	}
	// The pattern repeats per socket, by local index.
	for _, c := range top.Cores() {
		want := 1.0
		if c.LocalIndex >= 2 {
			want = 0.5
		}
		if c.Speed != want || top.SpeedOf(c.ID) != want {
			t.Errorf("core %d (local %d): speed %v, want %v", c.ID, c.LocalIndex, c.Speed, want)
		}
	}
	// Unknown cores report full speed; uniform machines are not heterogeneous.
	if top.SpeedOf(CoreID(-1)) != 1 || top.SpeedOf(CoreID(999)) != 1 {
		t.Error("unknown cores should report speed 1")
	}
	if Small().Heterogeneous() {
		t.Error("uniform machine should not report Heterogeneous")
	}
}

func TestCoreSpeedsValidation(t *testing.T) {
	if _, err := New(Config{Sockets: 1, CoresPerSocket: 4, CoreSpeeds: []float64{1, 1}}); err == nil {
		t.Error("wrong-length speed pattern should be rejected")
	}
	if _, err := New(Config{Sockets: 1, CoresPerSocket: 2, CoreSpeeds: []float64{1, 0}}); err == nil {
		t.Error("zero speed should be rejected")
	}
	if _, err := New(Config{Sockets: 1, CoresPerSocket: 2, CoreSpeeds: []float64{1, -2}}); err == nil {
		t.Error("negative speed should be rejected")
	}
}

func TestHybridProfile(t *testing.T) {
	p, ok := ProfileByName("hybrid-1s8c")
	if !ok {
		t.Fatal("hybrid-1s8c missing")
	}
	top := p.Build()
	if !top.Heterogeneous() || top.NumCores() != 8 {
		t.Fatalf("hybrid profile wrong shape: %s", top)
	}
	fast, slow := 0, 0
	for _, c := range top.Cores() {
		switch c.Speed {
		case 1:
			fast++
		case 0.55:
			slow++
		}
	}
	if fast != 4 || slow != 4 {
		t.Errorf("hybrid profile has %d P-cores and %d E-cores, want 4+4", fast, slow)
	}
	// Island home cores (first core of each island) are P-cores.
	for _, isl := range top.IslandsAt(LevelMachine) {
		if isl.Cores[0].Speed != 1 {
			t.Error("machine island home core should be a P-core")
		}
	}
}

func TestParseNumactl(t *testing.T) {
	cfg, err := ParseNumactl(numactl4SRing)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sockets != 4 || cfg.CoresPerSocket != 8 {
		t.Fatalf("parsed %d sockets x %d cores, want 4 x 8", cfg.Sockets, cfg.CoresPerSocket)
	}
	// SLIT 10 -> local, 21 -> 1 hop, 31 -> 2 hops; the ring shape survives.
	want := [][]int{
		{0, 1, 2, 1},
		{1, 0, 1, 2},
		{2, 1, 0, 1},
		{1, 2, 1, 0},
	}
	for i := range want {
		for j := range want[i] {
			if cfg.Distance[i][j] != want[i][j] {
				t.Errorf("hops[%d][%d] = %d, want %d", i, j, cfg.Distance[i][j], want[i][j])
			}
		}
	}
	// The parsed config builds a valid topology (validateSquare accepts it).
	top, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if top.MaxDistance() != 2 {
		t.Errorf("max distance %d, want 2", top.MaxDistance())
	}
}

func TestParseNumactlRejectsMalformedDumps(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no cpus":        "available: 2 nodes (0-1)\nnode distances:\nnode 0 1\n 0: 10 21\n 1: 21 10\n",
		"empty node":     "node 0 cpus: 0 1\nnode 1 cpus:\nnode distances:\nnode 0 1\n 0: 10 21\n 1: 21 10\n",
		"node gap":       "node 0 cpus: 0 1\nnode 2 cpus: 2 3\nnode distances:\nnode 0 2\n 0: 10 21\n 2: 21 10\n",
		"missing rows":   "node 0 cpus: 0\nnode 1 cpus: 1\nnode distances:\nnode 0 1\n 0: 10 21\n",
		"short row":      "node 0 cpus: 0\nnode 1 cpus: 1\nnode distances:\nnode 0 1\n 0: 10\n 1: 21 10\n",
		"bad number":     "node 0 cpus: 0\nnode 1 cpus: 1\nnode distances:\nnode 0 1\n 0: 10 xx\n 1: 21 10\n",
		"remote < local": "node 0 cpus: 0\nnode 1 cpus: 1\nnode distances:\nnode 0 1\n 0: 10 5\n 1: 5 10\n",
	}
	for name, dump := range cases {
		if _, err := ParseNumactl(dump); err == nil {
			t.Errorf("%s: malformed dump accepted", name)
		}
	}
}

func TestParseNumactlAsymmetricSymmetrized(t *testing.T) {
	dump := "node 0 cpus: 0\nnode 1 cpus: 1\nnode distances:\nnode 0 1\n 0: 10 31\n 1: 21 10\n"
	cfg, err := ParseNumactl(dump)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Distance[0][1] != 2 || cfg.Distance[1][0] != 2 {
		t.Errorf("asymmetric pair should symmetrize to the larger hop count, got %v", cfg.Distance)
	}
}

// TestParseNumactlNonUniformCores feeds a dump whose nodes expose different
// cpu counts (offlined cores on node 1, an extra SMT sibling on node 3): the
// parser must accept it and truncate to the largest uniform sub-machine
// rather than reject the whole dump.
func TestParseNumactlNonUniformCores(t *testing.T) {
	dump := `available: 4 nodes (0-3)
node 0 cpus: 0 1 2 3
node 0 size: 31854 MB
node 1 cpus: 4 5 6
node 2 cpus: 8 9 10 11
node 3 cpus: 12 13 14 15 16
node distances:
node   0   1   2   3
  0:  10  21  31  21
  1:  21  10  21  31
  2:  31  21  10  21
  3:  21  31  21  10
`
	cfg, err := ParseNumactl(dump)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sockets != 4 || cfg.CoresPerSocket != 3 {
		t.Fatalf("parsed %d sockets x %d cores, want 4 x 3 (truncated to node 1's count)",
			cfg.Sockets, cfg.CoresPerSocket)
	}
	top, err := New(cfg)
	if err != nil {
		t.Fatalf("truncated config should build: %v", err)
	}
	if top.Distance(0, 2) != 2 || top.Distance(0, 1) != 1 {
		t.Error("truncation must not disturb the distance matrix")
	}
}

func TestHarvestedProfile(t *testing.T) {
	p, ok := ProfileByName("harvested-4s")
	if !ok {
		t.Fatal("harvested-4s missing")
	}
	top := p.Build()
	if top.Sockets() != 4 || top.CoresPerSocket() != 8 {
		t.Fatalf("harvested profile wrong shape: %s", top)
	}
	if top.Distance(0, 2) != 2 || top.Distance(0, 1) != 1 {
		t.Error("harvested profile lost the ring distances")
	}
}
