package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Profile is a named machine shape: a reusable Config for a class of real
// servers. The paper's motivation is that the right deployment granularity
// depends on the shape of the hardware islands, which varies by machine;
// the profile library provides the shapes the experiments sweep over.
type Profile struct {
	// Name is the identifier used by the -profile flag and BENCH.json.
	Name string
	// Description says what machine class the profile models.
	Description string
	// Config is the topology configuration; Build instantiates it.
	Config Config
	// LogDevices names the log-device layout (device.Layouts) that matches
	// the machine class: the storage shape the profile's class of server
	// ships with. Engines and experiments that model log devices resolve the
	// name through the device package; an empty name means the profile has no
	// canonical storage shape and callers pick one explicitly.
	LogDevices string
}

// Build instantiates the profile's topology.
func (p Profile) Build() *Topology { return MustNew(p.Config) }

// Levels returns the island levels that are distinct on this profile's
// machine, finest to coarsest: LevelDie is included only when the profile has
// more than one die per socket, and LevelSocket only when it has more than
// one socket (on a one-socket machine socket and machine islands coincide).
func (p Profile) Levels() []Level {
	out := []Level{LevelCore}
	if p.Config.DiesPerSocket > 1 {
		out = append(out, LevelDie)
	}
	if p.Config.Sockets > 1 {
		out = append(out, LevelSocket)
	}
	return append(out, LevelMachine)
}

// Profiles returns the built-in machine profiles, smallest first.
func Profiles() []Profile {
	ps := []Profile{
		{
			Name:        "2s-fc",
			Description: "2-socket fully-connected box, 8 cores per socket (commodity dual-socket server)",
			Config:      Config{Name: "2-socket fully-connected", Sockets: 2, CoresPerSocket: 8},
			LogDevices:  "nvme-per-socket",
		},
		{
			Name:        "4s-fc",
			Description: "4-socket fully-connected box, 8 cores per socket (QPI point-to-point, 1 hop everywhere)",
			Config:      Config{Name: "4-socket fully-connected", Sockets: 4, CoresPerSocket: 8},
			LogDevices:  "nvme-per-socket",
		},
		{
			Name:        "chiplet-2s4d",
			Description: "chiplet CPU: 2 sockets x 4 CCXs x 4 cores, cheap on-package die hops, expensive 2-hop inter-socket links",
			Config: Config{
				Name:           "2-socket chiplet (4 CCXs x 4 cores)",
				Sockets:        2,
				CoresPerSocket: 16,
				DiesPerSocket:  4,
				// Crossing packages traverses both IO dies: twice the cost of
				// a direct point-to-point socket link.
				Distance: [][]int{{0, 2}, {2, 0}},
			},
			LogDevices: "nvme-per-die-pair",
		},
		{
			Name:        "subnuma-4s2d",
			Description: "sub-NUMA clustering: 4 sockets x 2 clusters x 5 cores (SNC-2 on a 4-socket box)",
			Config: Config{
				Name:           "4-socket sub-NUMA (2 clusters x 5 cores)",
				Sockets:        4,
				CoresPerSocket: 10,
				DiesPerSocket:  2,
			},
			LogDevices: "nvme-per-socket",
		},
		{
			Name:        "paper-8s",
			Description: "the paper's platform: 8 sockets x 10 cores, twisted-cube QPI interconnect",
			Config:      Config{Name: "8-socket x 10-core twisted cube", Sockets: 8, CoresPerSocket: 10},
			LogDevices:  "nvme-per-socket",
		},
		{
			Name:        "mesh-3x3",
			Description: "mesh interconnect: 9 sockets in a 3x3 grid x 4 cores, hop count = Manhattan distance (Tilera-style tiles)",
			Config: Config{
				Name:           "3x3 mesh x 4-core",
				Sockets:        9,
				CoresPerSocket: 4,
				Distance:       MeshDistance(3, 3),
			},
			LogDevices: "nvme-per-socket",
		},
		{
			Name:        "harvested-4s",
			Description: "4-socket ring interconnect harvested from a real numactl --hardware dump (SLIT 10/21/31)",
			Config:      harvested4SConfig(),
			LogDevices:  "nvme-per-socket",
		},
		{
			Name:        "hybrid-1s8c",
			Description: "hybrid consumer part: 1 socket, 4 P-cores plus 4 E-cores at 0.55x speed",
			Config: Config{
				Name:           "1-socket hybrid (4P + 4E)",
				Sockets:        1,
				CoresPerSocket: 8,
				// The P-cores lead the socket so island home cores (the first
				// core of each island) land on full-speed hardware.
				CoreSpeeds: []float64{1, 1, 1, 1, 0.55, 0.55, 0.55, 0.55},
			},
			LogDevices: "nvme-per-socket",
		},
		{
			Name:        "consumer-1s4d",
			Description: "1-socket many-die consumer part: 4 CCDs x 4 cores behind one IO die (desktop chiplet CPU)",
			Config: Config{
				Name:           "1-socket consumer chiplet (4 CCDs x 4 cores)",
				Sockets:        1,
				CoresPerSocket: 16,
				DiesPerSocket:  4,
			},
			LogDevices: "single-sata",
		},
	}
	return ps
}

// ProfileByName looks a profile up by its Name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ProfileNames returns the names of the built-in profiles, sorted.
func ProfileNames() []string {
	out := make([]string, 0, len(Profiles()))
	for _, p := range Profiles() {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

// BuildProfile instantiates a named profile, erroring with the known names on
// a miss so CLI flags produce a helpful message.
func BuildProfile(name string) (*Topology, error) {
	p, ok := ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("topology: unknown machine profile %q (known: %s)",
			name, strings.Join(ProfileNames(), ", "))
	}
	return p.Build(), nil
}
