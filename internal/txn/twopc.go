package txn

import (
	"fmt"

	"atrapos/internal/numa"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
)

// TwoPCOutcome summarizes the execution of one distributed transaction under
// the standard two-phase commit protocol: the virtual cost attributed to each
// component and the number of messages and log records it generated. The
// engines charge these costs to the coordinating worker's clock, which is how
// the paper's Figure 4 breakdown attributes 2PC overhead to communication,
// logging and locking.
type TwoPCOutcome struct {
	Committed  bool
	Messages   int
	LogRecords int
	// ByComponent is indexed by vclock.Component; a fixed array keeps the
	// per-transaction 2PC path free of map allocations.
	ByComponent [vclock.NumComponents]numa.Cost
	// PrepareCost is the cost accumulated through the end of the voting
	// phase (phase 1); TotalCost() - PrepareCost is the decision and
	// completion phase. The tracer splits the protocol into its two spans
	// with it.
	PrepareCost numa.Cost
}

// TotalCost returns the sum over all components.
func (o TwoPCOutcome) TotalCost() numa.Cost {
	var total numa.Cost
	for _, c := range o.ByComponent {
		total += c
	}
	return total
}

// Coordinator runs two-phase commit between shared-nothing instances. It does
// not execute the transaction bodies (the engine does); it models the commit
// protocol: prepare messages, prepare log records on every participant, vote
// collection, the decision record, decision messages, and the acknowledgement
// round. Locks stay held for the full protocol, which the caller accounts as
// additional locking time proportional to the protocol latency.
//
// Participants are identified by their instance (island) index into the
// per-instance log set: every island is its own 2PC site with its own log,
// so two instances sharing a socket still exchange their own prepare/end
// rounds and flush their own logs — the flush that makes a participant's
// vote durable covers the update records that participant appended during
// execution, because they live in the same per-island log.
type Coordinator struct {
	domain *numa.Domain
	logs   *wal.PartitionedLog
	// homeCores holds each instance's home core, indexed by site; messages
	// are priced core-to-core so commit coordination between die islands of
	// one socket pays the same die surcharge as action shipping.
	homeCores []topology.CoreID
}

// NewCoordinator builds a 2PC coordinator over the per-instance logs. Each
// instance's home core is taken to be the first core of its log's home
// socket; use NewCoordinatorAt when the instances' actual home cores are
// known (islands finer than a socket).
func NewCoordinator(d *numa.Domain, logs *wal.PartitionedLog) *Coordinator {
	homes := make([]topology.CoreID, logs.NumLogs())
	for i := range homes {
		if cores := d.Top.CoresOn(logs.Home(i)); len(cores) > 0 {
			homes[i] = cores[0].ID
		}
	}
	return &Coordinator{domain: d, logs: logs, homeCores: homes}
}

// NewCoordinatorAt builds a 2PC coordinator with an explicit home core per
// instance; homeCores must be indexed like the logs' islands.
func NewCoordinatorAt(d *numa.Domain, logs *wal.PartitionedLog, homeCores []topology.CoreID) *Coordinator {
	return &Coordinator{domain: d, logs: logs, homeCores: append([]topology.CoreID(nil), homeCores...)}
}

// homeCore returns the home core of instance site, mirroring Log's
// out-of-range fallback.
func (c *Coordinator) homeCore(site int) topology.CoreID {
	if site < 0 || site >= len(c.homeCores) {
		if len(c.homeCores) == 0 {
			return 0
		}
		return c.homeCores[0]
	}
	return c.homeCores[site]
}

// Run executes the commit protocol for transaction t coordinated by instance
// coordSite, whose worker runs on core coord, with the given participant
// instances (the coordinator itself may or may not be among them). now is the
// coordinating worker's virtual time: the prepare and decision flushes are
// issued at it, so logs bound to a queueing log device price the waits the
// protocol's flushes see. abortVote forces a participant abort, exercising
// the rollback path.
func (c *Coordinator) Run(t *Txn, coord topology.CoreID, coordSite int, participants []int, now vclock.Nanos, abortVote bool) (TwoPCOutcome, error) {
	if t == nil {
		return TwoPCOutcome{}, fmt.Errorf("txn: nil transaction")
	}
	// Duplicate participants are skipped with linear scans (the participant
	// count is bounded by the instance count of one transaction) so the
	// protocol allocates nothing.
	nUniq := 0
	for i := range participants {
		if firstParticipant(participants, i) {
			nUniq++
		}
	}
	if nUniq == 0 {
		return TwoPCOutcome{}, fmt.Errorf("txn: distributed transaction %d has no participants", t.ID)
	}
	var out TwoPCOutcome
	t.Distributed = true
	t.State = Preparing

	// Phase 1: prepare requests, participant prepare records, votes back.
	for i, p := range participants {
		if !firstParticipant(participants, i) {
			continue
		}
		home := c.logs.Home(p)
		lg := c.logs.Log(p)
		out.ByComponent[vclock.Communication] += c.domain.CoreMessageCost(coord, c.homeCore(p))
		_, logCost := lg.Append(home, wal.Record{Txn: uint64(t.ID), Type: wal.Prepare, Size: 96})
		out.ByComponent[vclock.Logging] += logCost
		out.ByComponent[vclock.Logging] += lg.Flush(home, lg.Tail(), now)
		out.ByComponent[vclock.Communication] += c.domain.CoreMessageCost(c.homeCore(p), coord)
		out.Messages += 2
		out.LogRecords++
	}

	out.PrepareCost = out.TotalCost()

	// Decision, on the coordinator instance's own log.
	decision := wal.Commit
	out.Committed = !abortVote
	if abortVote {
		decision = wal.Abort
	}
	coordSocket := c.domain.Top.SocketOf(coord)
	coordLog := c.logs.Log(coordSite)
	_, decCost := coordLog.Append(coordSocket, wal.Record{Txn: uint64(t.ID), Type: decision, Size: 64})
	out.ByComponent[vclock.Logging] += decCost
	out.ByComponent[vclock.Logging] += coordLog.Flush(coordSocket, coordLog.Tail(), now)
	out.LogRecords++

	// Phase 2: decision messages, participant end records, acknowledgements.
	for i, p := range participants {
		if !firstParticipant(participants, i) {
			continue
		}
		home := c.logs.Home(p)
		out.ByComponent[vclock.Communication] += c.domain.CoreMessageCost(coord, c.homeCore(p))
		_, endCost := c.logs.Log(p).Append(home, wal.Record{Txn: uint64(t.ID), Type: wal.EndOfDistributed, Size: 48})
		out.ByComponent[vclock.Logging] += endCost
		out.ByComponent[vclock.Communication] += c.domain.CoreMessageCost(c.homeCore(p), coord)
		out.Messages += 2
		out.LogRecords++
	}

	// Locks are held for the whole protocol on every participant: account the
	// extra hold time as locking overhead proportional to the protocol cost.
	hold := out.ByComponent[vclock.Communication] + out.ByComponent[vclock.Logging]
	out.ByComponent[vclock.Locking] += numa.Cost(nUniq) * hold / 4

	// Coordinator bookkeeping (participant table, transaction state).
	out.ByComponent[vclock.Management] += numa.Cost(nUniq) * 200

	// The transaction stays in the Preparing state; the caller finishes it
	// through the transaction manager according to out.Committed, so the
	// active-transaction list is maintained in one place.
	return out, nil
}

// firstParticipant reports whether participants[i] does not appear earlier.
func firstParticipant(participants []int, i int) bool {
	for j := 0; j < i; j++ {
		if participants[j] == participants[i] {
			return false
		}
	}
	return true
}
