package txn

import (
	"fmt"

	"atrapos/internal/numa"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
)

// TwoPCOutcome summarizes the execution of one distributed transaction under
// the standard two-phase commit protocol: the virtual cost attributed to each
// component and the number of messages and log records it generated. The
// engines charge these costs to the coordinating worker's clock, which is how
// the paper's Figure 4 breakdown attributes 2PC overhead to communication,
// logging and locking.
type TwoPCOutcome struct {
	Committed  bool
	Messages   int
	LogRecords int
	// ByComponent is indexed by vclock.Component; a fixed array keeps the
	// per-transaction 2PC path free of map allocations.
	ByComponent [vclock.NumComponents]numa.Cost
}

// TotalCost returns the sum over all components.
func (o TwoPCOutcome) TotalCost() numa.Cost {
	var total numa.Cost
	for _, c := range o.ByComponent {
		total += c
	}
	return total
}

// Coordinator runs two-phase commit between shared-nothing instances. It does
// not execute the transaction bodies (the engine does); it models the commit
// protocol: prepare messages, prepare log records on every participant, vote
// collection, the decision record, decision messages, and the acknowledgement
// round. Locks stay held for the full protocol, which the caller accounts as
// additional locking time proportional to the protocol latency.
type Coordinator struct {
	domain *numa.Domain
	logs   *wal.PartitionedLog
}

// NewCoordinator builds a 2PC coordinator over the per-instance logs.
func NewCoordinator(d *numa.Domain, logs *wal.PartitionedLog) *Coordinator {
	return &Coordinator{domain: d, logs: logs}
}

// Run executes the commit protocol for transaction t coordinated from socket
// coord with the given participant sockets (the coordinator itself may or may
// not be a participant). abortVote forces a participant abort, exercising the
// rollback path.
func (c *Coordinator) Run(t *Txn, coord topology.SocketID, participants []topology.SocketID, abortVote bool) (TwoPCOutcome, error) {
	if t == nil {
		return TwoPCOutcome{}, fmt.Errorf("txn: nil transaction")
	}
	// Duplicate participants are skipped with linear scans (the participant
	// count is bounded by the socket count) so the protocol allocates nothing.
	nUniq := 0
	for i := range participants {
		if firstParticipant(participants, i) {
			nUniq++
		}
	}
	if nUniq == 0 {
		return TwoPCOutcome{}, fmt.Errorf("txn: distributed transaction %d has no participants", t.ID)
	}
	var out TwoPCOutcome
	t.Distributed = true
	t.State = Preparing

	// Phase 1: prepare requests, participant prepare records, votes back.
	for i, p := range participants {
		if !firstParticipant(participants, i) {
			continue
		}
		out.ByComponent[vclock.Communication] += c.domain.MessageCost(coord, p)
		_, logCost := c.logs.Append(p, wal.Record{Txn: uint64(t.ID), Type: wal.Prepare, Size: 96})
		out.ByComponent[vclock.Logging] += logCost
		out.ByComponent[vclock.Logging] += c.logs.Flush(p, c.logs.SocketLog(p).Tail())
		out.ByComponent[vclock.Communication] += c.domain.MessageCost(p, coord)
		out.Messages += 2
		out.LogRecords++
	}

	// Decision.
	decision := wal.Commit
	out.Committed = !abortVote
	if abortVote {
		decision = wal.Abort
	}
	_, decCost := c.logs.Append(coord, wal.Record{Txn: uint64(t.ID), Type: decision, Size: 64})
	out.ByComponent[vclock.Logging] += decCost
	out.ByComponent[vclock.Logging] += c.logs.Flush(coord, c.logs.SocketLog(coord).Tail())
	out.LogRecords++

	// Phase 2: decision messages, participant end records, acknowledgements.
	for i, p := range participants {
		if !firstParticipant(participants, i) {
			continue
		}
		out.ByComponent[vclock.Communication] += c.domain.MessageCost(coord, p)
		_, endCost := c.logs.Append(p, wal.Record{Txn: uint64(t.ID), Type: wal.EndOfDistributed, Size: 48})
		out.ByComponent[vclock.Logging] += endCost
		out.ByComponent[vclock.Communication] += c.domain.MessageCost(p, coord)
		out.Messages += 2
		out.LogRecords++
	}

	// Locks are held for the whole protocol on every participant: account the
	// extra hold time as locking overhead proportional to the protocol cost.
	hold := out.ByComponent[vclock.Communication] + out.ByComponent[vclock.Logging]
	out.ByComponent[vclock.Locking] += numa.Cost(nUniq) * hold / 4

	// Coordinator bookkeeping (participant table, transaction state).
	out.ByComponent[vclock.Management] += numa.Cost(nUniq) * 200

	// The transaction stays in the Preparing state; the caller finishes it
	// through the transaction manager according to out.Committed, so the
	// active-transaction list is maintained in one place.
	return out, nil
}

// firstParticipant reports whether participants[i] does not appear earlier.
func firstParticipant(participants []topology.SocketID, i int) bool {
	for j := 0; j < i; j++ {
		if participants[j] == participants[i] {
			return false
		}
	}
	return true
}
