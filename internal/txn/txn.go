// Package txn implements transaction management: transaction identities and
// state, the list of active transactions (in both its centralized and its
// NUMA-aware per-socket form), the transaction manager that the engines drive,
// and the two-phase-commit helper used for distributed transactions in
// shared-nothing configurations.
package txn

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"atrapos/internal/numa"
	"atrapos/internal/topology"
)

// ID identifies a transaction.
type ID uint64

// State is the lifecycle state of a transaction.
type State int

const (
	// Active means the transaction is executing.
	Active State = iota
	// Preparing means the transaction has voted in 2PC and awaits the decision.
	Preparing
	// Committed is the terminal success state.
	Committed
	// Aborted is the terminal failure state.
	Aborted
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Preparing:
		return "preparing"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Txn is one transaction. A transaction is created, executed and finished by
// a single worker thread; its fields are not protected by a mutex.
type Txn struct {
	ID     ID
	State  State
	Core   topology.CoreID
	Socket topology.SocketID
	// Reads and Writes count row accesses, for observability.
	Reads  int
	Writes int
	// Distributed marks transactions that span more than one shared-nothing instance.
	Distributed bool
}

// ActiveList is the list of in-flight transactions. Shore-MT keeps it as one
// lock-free list whose head every beginning and finishing transaction CASes;
// ATraPos partitions it per socket (Section IV, "List of transactions").
type ActiveList interface {
	// Add registers t as active on behalf of a worker on socket s.
	Add(s topology.SocketID, t *Txn) numa.Cost
	// Remove unregisters t; it must be called from the same socket that
	// added it (thread binding guarantees this in ATraPos).
	Remove(s topology.SocketID, t *Txn) numa.Cost
	// Snapshot returns the ids of all active transactions; it is used by
	// background operations (checkpointing) and may touch all sockets.
	Snapshot(s topology.SocketID) ([]ID, numa.Cost)
	// Len returns the number of active transactions.
	Len() int
}

// CentralList is the traditional single list of active transactions. Every
// Add/Remove does an atomic on the shared list head.
type CentralList struct {
	head *numa.CacheLine
	mu   sync.Mutex
	set  map[ID]*Txn
}

// NewCentralList builds a centralized active-transaction list homed on socket 0.
func NewCentralList(d *numa.Domain) *CentralList {
	return &CentralList{head: numa.NewCacheLine(d, 0), set: make(map[ID]*Txn)}
}

// Add implements ActiveList.
func (l *CentralList) Add(s topology.SocketID, t *Txn) numa.Cost {
	c := l.head.Atomic(s)
	l.mu.Lock()
	l.set[t.ID] = t
	l.mu.Unlock()
	return c
}

// Remove implements ActiveList.
func (l *CentralList) Remove(s topology.SocketID, t *Txn) numa.Cost {
	c := l.head.Atomic(s)
	l.mu.Lock()
	delete(l.set, t.ID)
	l.mu.Unlock()
	return c
}

// Snapshot implements ActiveList.
func (l *CentralList) Snapshot(s topology.SocketID) ([]ID, numa.Cost) {
	c := l.head.Touch(s)
	l.mu.Lock()
	out := make([]ID, 0, len(l.set))
	for id := range l.set {
		out = append(out, id)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, c
}

// Len implements ActiveList.
func (l *CentralList) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.set)
}

// PartitionedList keeps one active-transaction list per socket, so adding and
// removing a transaction in the critical path never crosses a socket.
type PartitionedList struct {
	domain *numa.Domain
	lines  *numa.Striped
	mu     []sync.Mutex
	sets   []map[ID]*Txn
}

// NewPartitionedList builds one list per socket of the domain.
func NewPartitionedList(d *numa.Domain) *PartitionedList {
	n := d.Top.Sockets()
	p := &PartitionedList{
		domain: d,
		lines:  numa.NewStriped(d),
		mu:     make([]sync.Mutex, n),
		sets:   make([]map[ID]*Txn, n),
	}
	for i := range p.sets {
		p.sets[i] = make(map[ID]*Txn)
	}
	return p
}

func (p *PartitionedList) stripe(s topology.SocketID) int {
	if int(s) < 0 || int(s) >= len(p.sets) {
		return 0
	}
	return int(s)
}

// Add implements ActiveList.
func (p *PartitionedList) Add(s topology.SocketID, t *Txn) numa.Cost {
	i := p.stripe(s)
	c := p.lines.Local(s).Atomic(s)
	p.mu[i].Lock()
	p.sets[i][t.ID] = t
	p.mu[i].Unlock()
	return c
}

// Remove implements ActiveList.
func (p *PartitionedList) Remove(s topology.SocketID, t *Txn) numa.Cost {
	i := p.stripe(s)
	c := p.lines.Local(s).Atomic(s)
	p.mu[i].Lock()
	delete(p.sets[i], t.ID)
	p.mu[i].Unlock()
	return c
}

// Snapshot implements ActiveList: background operations traverse every
// per-socket list, paying cross-socket costs outside the critical path.
func (p *PartitionedList) Snapshot(s topology.SocketID) ([]ID, numa.Cost) {
	var cost numa.Cost
	var out []ID
	for i := range p.sets {
		cost += p.lines.Local(topology.SocketID(i)).Touch(s)
		p.mu[i].Lock()
		for id := range p.sets[i] {
			out = append(out, id)
		}
		p.mu[i].Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, cost
}

// Len implements ActiveList.
func (p *PartitionedList) Len() int {
	total := 0
	for i := range p.sets {
		p.mu[i].Lock()
		total += len(p.sets[i])
		p.mu[i].Unlock()
	}
	return total
}

// Manager creates, commits and aborts transactions. It owns the id sequence,
// the active list and the global state lock that transactions acquire in read
// mode during begin (the "volume lock" of Shore-MT). Both the active list and
// the state lock are injected, so the same manager code runs with centralized
// structures (the baseline designs) or NUMA-aware ones (ATraPos).
type Manager struct {
	domain *numa.Domain
	nextID atomic.Uint64
	active ActiveList
	state  numa.StateLock

	begun     atomic.Int64
	committed atomic.Int64
	aborted   atomic.Int64
}

// NewManager builds a transaction manager.
func NewManager(d *numa.Domain, active ActiveList, state numa.StateLock) *Manager {
	return &Manager{domain: d, active: active, state: state}
}

// Begin starts a transaction on the given core and returns it together with
// the virtual cost of transaction initialization (id assignment, volume lock
// in read mode, insertion into the active list).
func (m *Manager) Begin(core topology.CoreID) (*Txn, numa.Cost) {
	t := new(Txn)
	cost := m.BeginInto(t, core)
	return t, cost
}

// BeginInto is Begin writing into a caller-owned Txn, so a worker can reuse
// one Txn for its whole run instead of allocating one per transaction. The
// Txn must not be in the active list (i.e. its previous use must have ended
// in Commit or Abort).
func (m *Manager) BeginInto(t *Txn, core topology.CoreID) numa.Cost {
	s := m.domain.Top.SocketOf(core)
	*t = Txn{
		ID:     ID(m.nextID.Add(1)),
		State:  Active,
		Core:   core,
		Socket: s,
	}
	var cost numa.Cost
	cost += m.state.RLock(s)
	cost += m.state.RUnlock(s)
	cost += m.active.Add(s, t)
	m.begun.Add(1)
	return cost
}

// Commit finishes t successfully and removes it from the active list.
func (m *Manager) Commit(t *Txn) (numa.Cost, error) {
	if t.State != Active && t.State != Preparing {
		return 0, fmt.Errorf("txn: commit of transaction %d in state %v", t.ID, t.State)
	}
	t.State = Committed
	cost := m.active.Remove(t.Socket, t)
	m.committed.Add(1)
	return cost, nil
}

// Abort rolls t back and removes it from the active list.
func (m *Manager) Abort(t *Txn) (numa.Cost, error) {
	if t.State == Committed {
		return 0, fmt.Errorf("txn: abort of committed transaction %d", t.ID)
	}
	if t.State == Aborted {
		return 0, nil
	}
	t.State = Aborted
	cost := m.active.Remove(t.Socket, t)
	m.aborted.Add(1)
	return cost, nil
}

// Active returns the number of in-flight transactions.
func (m *Manager) Active() int { return m.active.Len() }

// Stats describes the manager's lifetime counters.
type Stats struct {
	Begun     int64
	Committed int64
	Aborted   int64
}

// Stats returns the lifetime counters.
func (m *Manager) Stats() Stats {
	return Stats{Begun: m.begun.Load(), Committed: m.committed.Load(), Aborted: m.aborted.Load()}
}

// Checkpoint simulates the background checkpointing operation: it takes the
// state lock in write mode (excluding state changes) and snapshots the active
// list. It returns the number of active transactions observed and the cost,
// which the caller attributes to a background worker, not to the critical path.
func (m *Manager) Checkpoint(s topology.SocketID) (int, numa.Cost) {
	var cost numa.Cost
	cost += m.state.Lock(s)
	ids, c := m.active.Snapshot(s)
	cost += c
	cost += m.state.Unlock(s)
	return len(ids), cost
}
