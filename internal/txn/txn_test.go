package txn

import (
	"sync"
	"testing"

	"atrapos/internal/numa"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
)

func newDomain(sockets, cores int) *numa.Domain {
	top := topology.MustNew(topology.Config{Sockets: sockets, CoresPerSocket: cores})
	return numa.MustNewDomain(top, numa.DefaultCostModel())
}

func TestStateString(t *testing.T) {
	for _, s := range []State{Active, Preparing, Committed, Aborted, State(9)} {
		if s.String() == "" {
			t.Errorf("state %d has empty string", s)
		}
	}
}

func TestCentralListAddRemoveSnapshot(t *testing.T) {
	d := newDomain(4, 2)
	l := NewCentralList(d)
	t1 := &Txn{ID: 1}
	t2 := &Txn{ID: 2}
	if c := l.Add(0, t1); c <= 0 {
		t.Error("Add should have a positive cost")
	}
	l.Add(3, t2)
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	ids, cost := l.Snapshot(0)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("Snapshot = %v", ids)
	}
	if cost <= 0 {
		t.Error("Snapshot should have a positive cost")
	}
	l.Remove(0, t1)
	l.Remove(3, t2)
	if l.Len() != 0 {
		t.Errorf("Len after removals = %d", l.Len())
	}
}

func TestPartitionedListIsSocketLocal(t *testing.T) {
	d := newDomain(4, 2)
	p := NewPartitionedList(d)
	// Every add/remove from its own socket costs exactly a local atomic.
	for s := 0; s < 4; s++ {
		tx := &Txn{ID: ID(s + 1)}
		if c := p.Add(topology.SocketID(s), tx); c != d.Model.LocalAtomic {
			t.Errorf("socket %d add cost %d, want local atomic %d", s, c, d.Model.LocalAtomic)
		}
		if c := p.Remove(topology.SocketID(s), tx); c != d.Model.LocalAtomic {
			t.Errorf("socket %d remove cost %d, want local atomic %d", s, c, d.Model.LocalAtomic)
		}
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d, want 0", p.Len())
	}
	// Out-of-range sockets fall back to stripe 0.
	tx := &Txn{ID: 99}
	p.Add(topology.SocketID(77), tx)
	if p.Len() != 1 {
		t.Error("fallback add lost the transaction")
	}
	p.Remove(topology.SocketID(77), tx)
}

func TestPartitionedListSnapshotSeesAllSockets(t *testing.T) {
	d := newDomain(4, 2)
	p := NewPartitionedList(d)
	for s := 0; s < 4; s++ {
		p.Add(topology.SocketID(s), &Txn{ID: ID(10 + s)})
	}
	ids, cost := p.Snapshot(0)
	if len(ids) != 4 {
		t.Fatalf("Snapshot = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Error("snapshot not sorted")
		}
	}
	// A snapshot touches remote stripes, so it costs more than a local access.
	if cost <= d.Model.LocalAccess {
		t.Errorf("snapshot cost %d suspiciously low", cost)
	}
}

func TestCentralVsPartitionedListContention(t *testing.T) {
	d := newDomain(8, 1)
	central := NewCentralList(d)
	parted := NewPartitionedList(d)
	costOf := func(l ActiveList) numa.Cost {
		var total numa.Cost
		for i := 0; i < 400; i++ {
			s := topology.SocketID(i % 8)
			tx := &Txn{ID: ID(i)}
			total += l.Add(s, tx)
			total += l.Remove(s, tx)
		}
		return total
	}
	if costOf(parted)*2 >= costOf(central) {
		t.Error("partitioned list should be much cheaper than the central list under multi-socket traffic")
	}
}

func TestConcurrentListUse(t *testing.T) {
	d := newDomain(4, 4)
	for _, l := range []ActiveList{NewCentralList(d), NewPartitionedList(d)} {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := topology.SocketID(w % 4)
				for i := 0; i < 200; i++ {
					tx := &Txn{ID: ID(w*1000 + i)}
					l.Add(s, tx)
					l.Remove(s, tx)
				}
			}(w)
		}
		wg.Wait()
		if l.Len() != 0 {
			t.Errorf("list not empty after concurrent use: %d", l.Len())
		}
	}
}

func TestManagerLifecycle(t *testing.T) {
	d := newDomain(2, 2)
	m := NewManager(d, NewPartitionedList(d), numa.NewPartitionedRWLock(d))

	tx, cost := m.Begin(topology.CoreID(3))
	if cost <= 0 {
		t.Error("Begin should have a positive cost")
	}
	if tx.Socket != 1 {
		t.Errorf("transaction bound to socket %d, want 1", tx.Socket)
	}
	if m.Active() != 1 {
		t.Errorf("Active = %d, want 1", m.Active())
	}
	if _, err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if tx.State != Committed {
		t.Errorf("state = %v, want committed", tx.State)
	}
	if m.Active() != 0 {
		t.Errorf("Active = %d, want 0", m.Active())
	}
	// Double commit fails; abort after commit fails.
	if _, err := m.Commit(tx); err == nil {
		t.Error("double commit should fail")
	}
	if _, err := m.Abort(tx); err == nil {
		t.Error("abort after commit should fail")
	}

	tx2, _ := m.Begin(topology.CoreID(0))
	if _, err := m.Abort(tx2); err != nil {
		t.Fatal(err)
	}
	if tx2.State != Aborted {
		t.Errorf("state = %v, want aborted", tx2.State)
	}
	// Aborting twice is a no-op.
	if _, err := m.Abort(tx2); err != nil {
		t.Errorf("second abort should be a no-op, got %v", err)
	}

	st := m.Stats()
	if st.Begun != 2 || st.Committed != 1 || st.Aborted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestManagerAssignsUniqueIDs(t *testing.T) {
	d := newDomain(2, 4)
	m := NewManager(d, NewCentralList(d), numa.NewCentralRWLock(d))
	var mu sync.Mutex
	seen := make(map[ID]bool)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tx, _ := m.Begin(topology.CoreID(w))
				mu.Lock()
				if seen[tx.ID] {
					t.Errorf("duplicate transaction id %d", tx.ID)
				}
				seen[tx.ID] = true
				mu.Unlock()
				m.Commit(tx)
			}
		}(w)
	}
	wg.Wait()
	if len(seen) != 800 {
		t.Errorf("saw %d unique ids, want 800", len(seen))
	}
}

func TestCheckpointSeesActiveTransactions(t *testing.T) {
	d := newDomain(2, 2)
	m := NewManager(d, NewPartitionedList(d), numa.NewPartitionedRWLock(d))
	var txns []*Txn
	for i := 0; i < 5; i++ {
		tx, _ := m.Begin(topology.CoreID(i % 4))
		txns = append(txns, tx)
	}
	n, cost := m.Checkpoint(0)
	if n != 5 {
		t.Errorf("checkpoint saw %d active transactions, want 5", n)
	}
	if cost <= 0 {
		t.Error("checkpoint cost should be positive")
	}
	for _, tx := range txns {
		m.Commit(tx)
	}
	if n, _ := m.Checkpoint(0); n != 0 {
		t.Errorf("checkpoint after commits saw %d transactions", n)
	}
}

func TestTwoPCCommit(t *testing.T) {
	d := newDomain(4, 1)
	logs := wal.NewPartitionedLog(d, wal.DefaultConfig())
	coord := NewCoordinator(d, logs)
	tx := &Txn{ID: 7, State: Active, Socket: 0}

	out, err := coord.Run(tx, 0, 0, []int{1, 2, 1}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Committed || tx.State != Preparing || !tx.Distributed {
		t.Errorf("outcome = %+v, txn state %v", out, tx.State)
	}
	// 2 unique participants: 4 messages in phase 1, 4 in phase 2.
	if out.Messages != 8 {
		t.Errorf("Messages = %d, want 8", out.Messages)
	}
	// 2 prepare + 1 decision + 2 end records.
	if out.LogRecords != 5 {
		t.Errorf("LogRecords = %d, want 5", out.LogRecords)
	}
	if out.ByComponent[vclock.Communication] <= 0 || out.ByComponent[vclock.Logging] <= 0 ||
		out.ByComponent[vclock.Locking] <= 0 || out.ByComponent[vclock.Management] <= 0 {
		t.Errorf("missing component costs: %+v", out.ByComponent)
	}
	if out.TotalCost() <= 0 {
		t.Error("total cost should be positive")
	}
	// Prepare records actually reached the participants' logs.
	if logs.SocketLog(1).Tail() == 0 || logs.SocketLog(2).Tail() == 0 {
		t.Error("participants did not log prepare records")
	}
}

func TestTwoPCAbortAndErrors(t *testing.T) {
	d := newDomain(4, 1)
	logs := wal.NewPartitionedLog(d, wal.DefaultConfig())
	coord := NewCoordinator(d, logs)

	tx := &Txn{ID: 8, State: Active, Socket: 0}
	out, err := coord.Run(tx, 0, 0, []int{3}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.Committed || tx.State != Preparing {
		t.Error("abort vote should be reported while the transaction stays in Preparing")
	}
	if _, err := coord.Run(nil, 0, 0, []int{1}, 0, false); err == nil {
		t.Error("nil transaction should error")
	}
	if _, err := coord.Run(&Txn{ID: 9}, 0, 0, nil, 0, false); err == nil {
		t.Error("no participants should error")
	}
}

func TestTwoPCMoreParticipantsCostMore(t *testing.T) {
	d := newDomain(8, 1)
	logs := wal.NewPartitionedLog(d, wal.DefaultConfig())
	coord := NewCoordinator(d, logs)
	two, _ := coord.Run(&Txn{ID: 1, State: Active}, 0, 0, []int{1, 2}, 0, false)
	six, _ := coord.Run(&Txn{ID: 2, State: Active}, 0, 0, []int{1, 2, 3, 4, 5, 6}, 0, false)
	if six.TotalCost() <= two.TotalCost() {
		t.Errorf("6-participant 2PC cost %d should exceed 2-participant cost %d", six.TotalCost(), two.TotalCost())
	}
}
