package wal

import (
	"testing"

	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/vclock"
)

// coalCfg is a coalescing config with an unbounded ring so recovery tests see
// the complete log.
func coalCfg(records int) Config {
	cfg := DefaultConfig()
	cfg.Keep = 0
	cfg.CoalesceRecords = records
	return cfg
}

// appendTxn appends a transaction's write records followed by its commit and
// flushes the commit, mirroring the engine's commit path. It returns the
// commit flush cost.
func appendTxn(l *CentralLog, txn uint64, now vclock.Nanos, writes ...Record) numa.Cost {
	for _, w := range writes {
		w.Txn = txn
		l.Append(0, w)
	}
	lsn, _ := l.Append(0, Record{Txn: txn, Type: Commit, Size: 48})
	return l.Flush(0, lsn, now)
}

func TestCoalesceOverwritesCollapse(t *testing.T) {
	d := newDomain(1)
	l := NewCentralLog(d, 0, coalCfg(4))
	// Four transactions all updating the same row: four logical writes must
	// collapse into one net-delta entry.
	for i := 0; i < 4; i++ {
		appendTxn(l, uint64(i+1), 0, Record{Type: Update, Table: "t", Key: 7, Size: 96})
	}
	st := l.Stats()
	if st.LogicalRecords != 4 {
		t.Fatalf("LogicalRecords = %d, want 4", st.LogicalRecords)
	}
	if st.CoalescedRecords != 3 {
		t.Fatalf("CoalescedRecords = %d, want 3", st.CoalescedRecords)
	}
	// Nothing has physically flushed yet (1 entry < threshold 4), so no
	// commit is durable.
	if st.PhysicalFlushes != 0 {
		t.Fatalf("PhysicalFlushes = %d, want 0 before the threshold fires", st.PhysicalFlushes)
	}
	if l.Durable() != 0 {
		t.Fatalf("Durable = %d, want 0 while the flush epoch is open", l.Durable())
	}
	cost := l.Drain(0)
	if cost <= 0 {
		t.Fatal("drain with buffered work should pay a physical flush")
	}
	if l.Durable() != l.Tail() {
		t.Fatalf("after drain Durable = %d, want Tail %d", l.Durable(), l.Tail())
	}
	st = l.Stats()
	if st.PhysicalFlushes != 1 {
		t.Fatalf("PhysicalFlushes = %d, want 1 after drain", st.PhysicalFlushes)
	}
	// Ring holds 4 commits + 1 net-delta entry.
	if st.PhysicalRecords != 5 {
		t.Fatalf("PhysicalRecords = %d, want 5", st.PhysicalRecords)
	}
	if st.PhysicalFlushes > st.LogicalRecords/2 {
		t.Fatalf("physical flushes %d should be <= half the logical records %d", st.PhysicalFlushes, st.LogicalRecords)
	}
}

func TestCoalesceSelfCancelingPairNetsToTombstone(t *testing.T) {
	d := newDomain(1)
	l := NewCentralLog(d, 0, coalCfg(64))
	appendTxn(l, 1, 0,
		Record{Type: Insert, Table: "t", Key: 9, Size: 96},
		Record{Type: Delete, Table: "t", Key: 9, Size: 96})
	l.Drain(0)
	var entry *Record
	for _, r := range l.Records() {
		if r.Table == "t" && r.Key == 9 {
			r := r
			entry = &r
		}
	}
	if entry == nil {
		t.Fatal("net-delta entry for key 9 missing from the ring")
	}
	if entry.Type != Delete {
		t.Fatalf("insert+delete pair netted to %v, want the delete tombstone", entry.Type)
	}
	// Recovery of the drained log must leave the key absent.
	store := newMapStore()
	if _, err := Recover(l.Records(), l.Durable(), false, map[string]RowStore{"t": store}); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.rows[schema.Key(9)]; ok {
		t.Fatal("self-canceling pair re-established the row after recovery")
	}
}

func TestCoalesceRecordThresholdFires(t *testing.T) {
	d := newDomain(1)
	l := NewCentralLog(d, 0, coalCfg(3))
	// Distinct keys so every write is a fresh entry; the third commit's flush
	// must go physical and make everything durable.
	for i := 0; i < 3; i++ {
		appendTxn(l, uint64(i+1), 0, Record{Type: Update, Table: "t", Key: schema.Key(i), Size: 96})
	}
	st := l.Stats()
	if st.PhysicalFlushes != 1 {
		t.Fatalf("PhysicalFlushes = %d, want 1 at the record threshold", st.PhysicalFlushes)
	}
	if st.RideAlongFlushes != 2 {
		t.Fatalf("RideAlongFlushes = %d, want 2", st.RideAlongFlushes)
	}
	if l.Durable() != l.Tail() {
		t.Fatalf("Durable = %d, want Tail %d after the physical flush", l.Durable(), l.Tail())
	}
	// The drain is then a no-op.
	if cost := l.Drain(0); cost != 0 {
		t.Fatalf("drain after a clean physical flush cost %d, want 0", cost)
	}
}

func TestCoalesceByteThresholdFires(t *testing.T) {
	d := newDomain(1)
	cfg := coalCfg(1 << 20)
	cfg.CoalesceBytes = 200
	l := NewCentralLog(d, 0, cfg)
	appendTxn(l, 1, 0, Record{Type: Update, Table: "t", Key: 1, Size: 96})
	if got := l.Stats().PhysicalFlushes; got != 0 {
		t.Fatalf("PhysicalFlushes = %d, want 0 under the byte threshold", got)
	}
	appendTxn(l, 2, 0, Record{Type: Update, Table: "t", Key: 2, Size: 96})
	if got := l.Stats().PhysicalFlushes; got != 1 {
		t.Fatalf("PhysicalFlushes = %d, want 1 once buffered bytes cross the threshold", got)
	}
}

func TestCoalesceMaxAgeFires(t *testing.T) {
	d := newDomain(1)
	cfg := coalCfg(1 << 20)
	cfg.CoalesceMaxAge = 1000
	l := NewCentralLog(d, 0, cfg)
	appendTxn(l, 1, 100, Record{Type: Update, Table: "t", Key: 1, Size: 96})
	if got := l.Stats().PhysicalFlushes; got != 0 {
		t.Fatalf("PhysicalFlushes = %d, want 0 inside the age window", got)
	}
	// A commit landing after the deadline forces the epoch out.
	appendTxn(l, 2, 2000, Record{Type: Update, Table: "t", Key: 2, Size: 96})
	if got := l.Stats().PhysicalFlushes; got != 1 {
		t.Fatalf("PhysicalFlushes = %d, want 1 past the age deadline", got)
	}
	if l.Durable() != l.Tail() {
		t.Fatal("age-forced flush should make everything durable")
	}
}

// TestCoalesceLeftoversEmittedVerbatim drills the drain path: a transaction
// with staged writes but no outcome record must reach the ring unmerged, and
// recovery must classify it as a loser exactly as on the uncoalesced log.
func TestCoalesceLeftoversEmittedVerbatim(t *testing.T) {
	d := newDomain(1)
	l := NewCentralLog(d, 0, coalCfg(64))
	appendTxn(l, 1, 0, Record{Type: Insert, Table: "t", Key: 1, Size: 96})
	// Transaction 2 stages writes and never commits.
	l.Append(0, Record{Txn: 2, Type: Insert, Table: "t", Key: 2, Size: 96})
	l.Append(0, Record{Txn: 2, Type: Insert, Table: "t", Key: 3, Size: 96})
	l.Drain(0)
	recs := l.Records()
	var sawK2, sawK3 bool
	for _, r := range recs {
		if r.Txn == 2 && r.Key == 2 {
			sawK2 = true
		}
		if r.Txn == 2 && r.Key == 3 {
			sawK3 = true
		}
	}
	if !sawK2 || !sawK3 {
		t.Fatalf("in-flight transaction's staged records missing from the drained ring (k2=%v k3=%v)", sawK2, sawK3)
	}
	store := newMapStore()
	stats, err := Recover(recs, l.Durable(), false, map[string]RowStore{"t": store})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := store.rows[schema.Key(1)]; !ok {
		t.Fatal("committed key 1 did not replay")
	}
	if _, ok := store.rows[schema.Key(2)]; ok {
		t.Fatal("uncommitted key 2 replayed")
	}
	if stats.LoserTxns == 0 {
		t.Fatalf("recovery saw no loser transactions: %+v", stats)
	}
}

// TestCoalesceRecoveryMatchesUncoalescedTwin runs the same churny history
// through a coalescing log and an uncoalesced twin and asserts recovery
// reproduces the identical row set from both rings.
func TestCoalesceRecoveryMatchesUncoalescedTwin(t *testing.T) {
	d := newDomain(1)
	base := DefaultConfig()
	base.Keep = 0
	plain := NewCentralLog(d, 0, base)
	coal := NewCentralLog(d, 0, coalCfg(8))
	// A deterministic churny history: overwrites, self-canceling pairs, an
	// aborted-in-flight transaction, noop writes.
	history := func(l *CentralLog) {
		appendTxn(l, 1, 0, Record{Type: Insert, Table: "t", Key: 1, Size: 96})
		appendTxn(l, 2, 10,
			Record{Type: Update, Table: "t", Key: 1, Size: 96},
			Record{Type: Insert, Table: "t", Key: 2, Size: 96})
		appendTxn(l, 3, 20,
			Record{Type: Insert, Table: "t", Key: 3, Size: 96},
			Record{Type: Delete, Table: "t", Key: 3, Size: 96})
		appendTxn(l, 4, 30, Record{Type: NoopWrite, Table: "t", Key: 4, Size: 96})
		appendTxn(l, 5, 40, Record{Type: Delete, Table: "t", Key: 2, Size: 96})
		// Transaction 6 never logs an outcome.
		l.Append(0, Record{Txn: 6, Type: Insert, Table: "t", Key: 6, Size: 96})
		appendTxn(l, 7, 50, Record{Type: Update, Table: "t", Key: 1, Size: 96})
	}
	history(plain)
	history(coal)
	coal.Drain(60)

	replay := func(l *CentralLog) map[schema.Key]schema.Row {
		store := newMapStore()
		if _, err := Recover(l.Records(), l.Durable(), false, map[string]RowStore{"t": store}); err != nil {
			t.Fatal(err)
		}
		return store.rows
	}
	got, want := replay(coal), replay(plain)
	if len(got) != len(want) {
		t.Fatalf("coalesced recovery has %d rows, uncoalesced twin %d", len(got), len(want))
	}
	for k, v := range want {
		cv, ok := got[k]
		if !ok {
			t.Fatalf("key %d missing after coalesced recovery", k)
		}
		if len(cv) != len(v) || (len(v) > 0 && cv[0] != v[0]) {
			t.Fatalf("key %d row mismatch: %v vs %v", k, cv, v)
		}
	}
	// And the physical side must actually have shrunk.
	ps, ls := coal.Stats(), plain.Stats()
	if ps.LogicalRecords != ls.LogicalRecords {
		t.Fatalf("logical records diverged: %d vs %d", ps.LogicalRecords, ls.LogicalRecords)
	}
	if ps.PhysicalRecords >= ls.PhysicalRecords {
		t.Fatalf("coalescing did not shrink physical records: %d vs %d", ps.PhysicalRecords, ls.PhysicalRecords)
	}
}

// TestCoalesceOffBitIdentical is the regression gate for the master switch:
// with CoalesceRecords zero the new code paths must not perturb a single cost
// or counter relative to the legacy arithmetic.
func TestCoalesceOffBitIdentical(t *testing.T) {
	d := newDomain(1)
	cfg := DefaultConfig()
	l := NewCentralLog(d, 0, cfg)
	var total numa.Cost
	for i := 0; i < 20; i++ {
		_, c1 := l.Append(0, Record{Txn: uint64(i), Type: Update, Table: "t", Key: schema.Key(i), Size: 96})
		lsn, c2 := l.Append(0, Record{Txn: uint64(i), Type: Commit, Size: 48})
		c3 := l.Flush(0, lsn, 0)
		total += c1 + c2 + c3
	}
	// The exact cost series of the legacy model: per-append tail atomic +
	// bytes, flush cost split 2 full / 18 ride-along with GroupSize 8... we
	// assert the structural invariants instead of a magic sum so the cost
	// model stays free to evolve: durable == tail (legacy flushes ack
	// immediately), drain is a no-op, and the flush split is exact.
	if l.Durable() != l.Tail() {
		t.Fatalf("legacy flushes must acknowledge durability immediately: durable %d tail %d", l.Durable(), l.Tail())
	}
	if cost := l.Drain(0); cost != 0 {
		t.Fatalf("Drain on an uncoalesced log cost %d, want 0", cost)
	}
	st := l.Stats()
	if st.PhysicalFlushes != 2 || st.RideAlongFlushes != 18 {
		t.Fatalf("flush split = %d full / %d ride-along, want 2/18", st.PhysicalFlushes, st.RideAlongFlushes)
	}
	if st.CoalescedRecords != 0 {
		t.Fatalf("CoalescedRecords = %d on an uncoalesced log", st.CoalescedRecords)
	}
	if st.PhysicalRecords != st.Appends {
		t.Fatalf("legacy log must write every append physically: %d vs %d", st.PhysicalRecords, st.Appends)
	}
	if total <= 0 {
		t.Fatal("cost accounting went nonpositive")
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{Appends: 10, LogicalRecords: 8, PhysicalRecords: 6, CoalescedRecords: 2, PhysicalFlushes: 1, RideAlongFlushes: 3, PhysicalBytes: 400}
	b := Stats{Appends: 4, LogicalRecords: 3, PhysicalRecords: 2, CoalescedRecords: 1, PhysicalFlushes: 1, RideAlongFlushes: 1, PhysicalBytes: 100}
	sum := a.Add(b)
	if sum.Appends != 14 || sum.PhysicalBytes != 500 {
		t.Fatalf("Add = %+v", sum)
	}
	diff := a.Sub(b)
	if diff.Appends != 6 || diff.CoalescedRecords != 1 {
		t.Fatalf("Sub = %+v", diff)
	}
	// Sub floors at zero instead of going negative.
	under := b.Sub(a)
	if under.Appends != 0 || under.PhysicalBytes != 0 {
		t.Fatalf("Sub underflow = %+v", under)
	}
}

// TestPartitionedLogDrainAndStats covers the per-island aggregation.
func TestPartitionedLogDrainAndStats(t *testing.T) {
	d := newDomain(2)
	cfg := coalCfg(64)
	p := NewPartitionedLog(d, cfg)
	for i := 0; i < 2; i++ {
		lg := p.Log(i)
		lg.Append(p.Home(i), Record{Txn: uint64(i + 1), Type: Update, Table: "t", Key: schema.Key(i), Size: 96})
		lsn, _ := lg.Append(p.Home(i), Record{Txn: uint64(i + 1), Type: Commit, Size: 48})
		lg.Flush(p.Home(i), lsn, 0)
	}
	if p.Durable() != 0 {
		t.Fatalf("Durable = %d before drain, want 0 (open epochs)", p.Durable())
	}
	if cost := p.Drain(0); cost <= 0 {
		t.Fatal("partitioned drain with buffered work should pay")
	}
	if p.Durable() == 0 {
		t.Fatal("drain must close every island's epoch")
	}
	st := p.Stats()
	if st.Appends != 4 || st.LogicalRecords != 2 || st.PhysicalFlushes != 2 {
		t.Fatalf("aggregated stats = %+v", st)
	}
}
