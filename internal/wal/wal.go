// Package wal implements the write-ahead log of the storage manager. The
// centralized log follows the Aether design used by Shore-MT: transactions
// append records to a single log buffer whose tail is a heavily contended
// cache line, and commits are made durable with group commit. Shared-nothing
// configurations use one Log per instance, so every append stays socket-local;
// the centralized shared-everything configuration shares one Log across the
// whole machine, which is one of the contention points the paper measures.
package wal

import (
	"fmt"
	"sync"

	"atrapos/internal/device"
	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// LSN is a log sequence number.
type LSN uint64

// RecordType labels the kind of log record.
type RecordType int

const (
	// Update is a regular redo/undo record for a row modification.
	Update RecordType = iota
	// Insert records a row insertion.
	Insert
	// Delete records a row deletion.
	Delete
	// Commit records a transaction commit.
	Commit
	// Abort records a transaction rollback.
	Abort
	// Prepare is the 2PC prepare record written by distributed transactions.
	Prepare
	// EndOfDistributed is the 2PC end record written by the coordinator.
	EndOfDistributed
	// NoopWrite records a write intent that found no row to modify (an update
	// or delete of a missing key). The engine charges the append like any
	// other write record — the cost model prices write intents, and a miss is
	// only discovered inside the storage layer — but redo must not
	// re-establish a key the action never touched, so recovery skips it.
	NoopWrite
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case Update:
		return "update"
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Commit:
		return "commit"
	case Abort:
		return "abort"
	case Prepare:
		return "prepare"
	case EndOfDistributed:
		return "end-distributed"
	case NoopWrite:
		return "noop-write"
	default:
		return fmt.Sprintf("RecordType(%d)", int(t))
	}
}

// Record is one log record.
type Record struct {
	LSN   LSN
	Txn   uint64
	Type  RecordType
	Table string
	Key   schema.Key
	Size  int
}

// Log is the interface of a write-ahead log.
type Log interface {
	// Append adds a record on behalf of a worker on socket s and returns the
	// assigned LSN and the virtual cost of the insert.
	Append(s topology.SocketID, rec Record) (LSN, numa.Cost)
	// Flush makes everything up to lsn durable (group commit) and returns the
	// cost. now is the flushing worker's virtual time: logs bound to a device
	// feed it to the device's queueing model, so a flush issued while the
	// device is busy pays the wait behind the flushes ahead of it. Logs
	// without a device ignore it.
	Flush(s topology.SocketID, lsn LSN, now vclock.Nanos) numa.Cost
	// Durable returns the highest durable LSN.
	Durable() LSN
	// Tail returns the highest assigned LSN.
	Tail() LSN
}

// Config tunes the log cost model.
type Config struct {
	// PerByteCost is the cost of copying one byte into the log buffer.
	PerByteCost numa.Cost
	// FlushCost is the device latency of one group-commit flush when no
	// Device is bound; with a Device the flush pays the device's service and
	// queueing cost instead.
	FlushCost numa.Cost
	// GroupSize is the number of commits amortized by one flush.
	GroupSize int
	// Keep is the maximum number of records retained in memory for
	// inspection; older records are discarded (the "archive"). Zero keeps all.
	Keep int
	// Device optionally binds the log to a modeled log device: full flushes
	// then pay the device's queueing model (service latency, per-byte
	// bandwidth, waits behind queued flushes) instead of the flat FlushCost.
	// Nil reproduces the device-blind cost model exactly.
	Device *device.Device
}

// DefaultConfig returns the log configuration used by the evaluation:
// memory-mapped log device with group commit.
func DefaultConfig() Config {
	return Config{PerByteCost: 1, FlushCost: 12000, GroupSize: 8, Keep: 4096}
}

// CentralLog is an Aether-style centralized log. The buffer tail is modeled
// as a cache line; every append performs one atomic on it (the LSN/space
// reservation), so appends from many sockets pay coherence traffic.
type CentralLog struct {
	cfg  Config
	tail *numa.CacheLine

	mu      sync.Mutex
	next    LSN
	durable LSN
	pending int
	// pendingBytes accumulates the record bytes appended since the last full
	// flush; a device-bound flush writes them out and pays their bandwidth.
	pendingBytes int
	// Retained records live in a fixed-capacity ring so the append hot path
	// never allocates: ring[(start+i)%len(ring)] for i in [0,count) are the
	// most recent records, oldest first. With Keep == 0 the ring grows
	// without bound instead (recovery tests rely on a complete log).
	ring  []Record
	start int
	count int

	appends int64
	flushes int64
}

// NewCentralLog creates a centralized log homed on socket home.
func NewCentralLog(d *numa.Domain, home topology.SocketID, cfg Config) *CentralLog {
	if cfg.GroupSize < 1 {
		cfg.GroupSize = 1
	}
	if cfg.PerByteCost < 0 {
		cfg.PerByteCost = 0
	}
	return &CentralLog{cfg: cfg, tail: numa.NewCacheLine(d, home), next: 1}
}

// Append implements Log.
func (l *CentralLog) Append(s topology.SocketID, rec Record) (LSN, numa.Cost) {
	cost := l.tail.Atomic(s) + numa.Cost(rec.Size)*l.cfg.PerByteCost
	l.mu.Lock()
	rec.LSN = l.next
	l.next++
	l.pendingBytes += rec.Size
	if l.cfg.Keep > 0 {
		if l.ring == nil {
			l.ring = make([]Record, l.cfg.Keep)
		}
		if l.count == len(l.ring) {
			// Overwrite the oldest record (the "archive" discards it).
			l.ring[l.start] = rec
			l.start = (l.start + 1) % len(l.ring)
		} else {
			l.ring[(l.start+l.count)%len(l.ring)] = rec
			l.count++
		}
	} else {
		l.ring = append(l.ring, rec)
		l.count = len(l.ring)
	}
	l.appends++
	l.mu.Unlock()
	return rec.LSN, cost
}

// Flush implements Log. Group commit: a flush is charged only once per
// GroupSize committing transactions; other commits ride along for free.
// With a device bound, the full flush pays the device's queueing model (the
// flush is issued at the committer's virtual time now and waits behind the
// flushes queued ahead of it) and writes out the bytes pending since the
// previous full flush; ride-alongs pay the amortized device service only —
// they do not occupy a device channel.
func (l *CentralLog) Flush(s topology.SocketID, lsn LSN, now vclock.Nanos) numa.Cost {
	cost := l.tail.Touch(s)
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.durable {
		l.pending++
		if l.pending >= l.cfg.GroupSize {
			l.pending = 0
			l.flushes++
			// The full flush writes out everything pending, with or without
			// a device: a log that runs device-blind for a while and is
			// later re-bound must not bill its whole append history to the
			// first device flush.
			bytes := l.pendingBytes
			l.pendingBytes = 0
			if l.cfg.Device != nil {
				cost += l.cfg.Device.Flush(now, bytes)
			} else {
				cost += l.cfg.FlushCost
			}
		} else {
			// Riding on a group commit still pays a fraction of the flush
			// latency (waiting for the group to form).
			if l.cfg.Device != nil {
				cost += l.cfg.Device.Service(0) / numa.Cost(l.cfg.GroupSize)
			} else {
				cost += l.cfg.FlushCost / numa.Cost(l.cfg.GroupSize)
			}
		}
		if lsn > l.durable {
			l.durable = lsn
		}
	}
	return cost
}

// Device returns the log device the log is bound to, or nil.
func (l *CentralLog) Device() *device.Device {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cfg.Device
}

// bindDevice re-binds the log to a different device, keeping its records,
// durability horizon and group-commit state. An online island re-wiring uses
// it when a reused island log's device assignment changed: silently keeping
// the old binding would charge future flushes to a device the island no
// longer owns.
func (l *CentralLog) bindDevice(d *device.Device) {
	l.mu.Lock()
	l.cfg.Device = d
	l.mu.Unlock()
}

// Durable implements Log.
func (l *CentralLog) Durable() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Tail implements Log.
func (l *CentralLog) Tail() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Records returns the retained records (most recent Keep entries), oldest first.
func (l *CentralLog) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, l.count)
	for i := 0; i < l.count; i++ {
		out[i] = l.ring[(l.start+i)%len(l.ring)]
	}
	return out
}

// Stats summarizes log activity.
type Stats struct {
	Appends int64
	Flushes int64
}

// Stats returns append/flush counters.
func (l *CentralLog) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Appends: l.appends, Flushes: l.flushes}
}

// PartitionedLog gives each island its own CentralLog, as in a shared-nothing
// deployment with one instance per socket (the classic layout) or one per
// die/core island. Appends and flushes through the socket-keyed Log interface
// are routed to the first log homed on that socket; callers that know their
// island index (the engine's shared-nothing hot path) address their island's
// log directly with Log(i).
type PartitionedLog struct {
	logs  []*CentralLog
	homes []topology.SocketID
	// bySocket maps a socket to the index of the first log homed on it, or -1.
	bySocket []int
	// rebound counts reused logs whose device binding had to be re-derived.
	rebound int
}

// NewPartitionedLog builds one log per socket of the domain.
func NewPartitionedLog(d *numa.Domain, cfg Config) *PartitionedLog {
	homes := make([]topology.SocketID, d.Top.Sockets())
	for i := range homes {
		homes[i] = topology.SocketID(i)
	}
	return NewPartitionedLogAt(d, homes, cfg)
}

// NewPartitionedLogAt builds one log per entry of homes, each homed on the
// given socket. It is the log layout of a shared-nothing deployment with one
// instance per island: homes[i] is the socket of island i's first core.
func NewPartitionedLogAt(d *numa.Domain, homes []topology.SocketID, cfg Config) *PartitionedLog {
	return NewPartitionedLogAtReusing(d, homes, cfg, nil, nil)
}

// NewPartitionedLogAtDevices is NewPartitionedLogAt with an explicit device
// binding per island: devices[i] is the log device island i's log flushes to
// (overriding cfg.Device). A nil or short devices slice leaves the remaining
// islands on cfg.Device.
func NewPartitionedLogAtDevices(d *numa.Domain, homes []topology.SocketID, cfg Config, devices []*device.Device) *PartitionedLog {
	return NewPartitionedLogAtReusing(d, homes, cfg, devices, nil)
}

// NewPartitionedLogAtReusing builds a per-island log set like
// NewPartitionedLogAtDevices, but carries over reuse[i] as island i's log when
// it is non-nil instead of creating a fresh one. It is how an online island-
// level change keeps the log (records, durability horizon, group-commit state)
// of every island whose core set the re-wiring leaves intact: the new wiring's
// islands that match an old island by core set pass the old log through, and
// only genuinely new islands get empty logs. A reused log whose device binding
// disagrees with the island's device is re-derived: the log (and its records)
// is carried over but re-bound to the island's device, never silently left on
// the old one. A nil or short reuse slice behaves like NewPartitionedLogAt.
func NewPartitionedLogAtReusing(d *numa.Domain, homes []topology.SocketID, cfg Config, devices []*device.Device, reuse []*CentralLog) *PartitionedLog {
	if len(homes) == 0 {
		homes = []topology.SocketID{0}
	}
	p := &PartitionedLog{
		logs:     make([]*CentralLog, len(homes)),
		homes:    append([]topology.SocketID(nil), homes...),
		bySocket: make([]int, d.Top.Sockets()),
	}
	for i := range p.bySocket {
		p.bySocket[i] = -1
	}
	for i, h := range p.homes {
		want := cfg.Device
		if i < len(devices) && devices[i] != nil {
			want = devices[i]
		}
		if i < len(reuse) && reuse[i] != nil {
			p.logs[i] = reuse[i]
			if p.logs[i].Device() != want {
				p.logs[i].bindDevice(want)
				p.rebound++
			}
		} else {
			islandCfg := cfg
			islandCfg.Device = want
			p.logs[i] = NewCentralLog(d, h, islandCfg)
		}
		if int(h) >= 0 && int(h) < len(p.bySocket) && p.bySocket[h] < 0 {
			p.bySocket[h] = i
		}
	}
	return p
}

// ReboundDevices returns how many reused island logs had to be re-bound to a
// different device when the log set was built.
func (p *PartitionedLog) ReboundDevices() int { return p.rebound }

// NumLogs returns the number of per-island logs.
func (p *PartitionedLog) NumLogs() int { return len(p.logs) }

// Home returns the socket island i's log is homed on; out-of-range islands
// report the home of log 0, mirroring Log.
func (p *PartitionedLog) Home(i int) topology.SocketID {
	if i < 0 || i >= len(p.homes) {
		return p.homes[0]
	}
	return p.homes[i]
}

// Log returns the log of island i; out-of-range islands map to log 0 so that
// callers with a stale island index still make progress.
func (p *PartitionedLog) Log(i int) *CentralLog {
	if i < 0 || i >= len(p.logs) {
		return p.logs[0]
	}
	return p.logs[i]
}

func (p *PartitionedLog) logFor(s topology.SocketID) *CentralLog {
	if int(s) >= 0 && int(s) < len(p.bySocket) {
		if i := p.bySocket[s]; i >= 0 {
			return p.logs[i]
		}
	}
	return p.logs[0]
}

// Append implements Log.
func (p *PartitionedLog) Append(s topology.SocketID, rec Record) (LSN, numa.Cost) {
	return p.logFor(s).Append(s, rec)
}

// Flush implements Log.
func (p *PartitionedLog) Flush(s topology.SocketID, lsn LSN, now vclock.Nanos) numa.Cost {
	return p.logFor(s).Flush(s, lsn, now)
}

// Durable implements Log; it returns the minimum durable LSN across sockets,
// which is the conservative system-wide durability horizon.
func (p *PartitionedLog) Durable() LSN {
	min := LSN(^uint64(0))
	for _, l := range p.logs {
		if d := l.Durable(); d < min {
			min = d
		}
	}
	if min == LSN(^uint64(0)) {
		return 0
	}
	return min
}

// Tail implements Log; it returns the maximum assigned LSN across sockets.
func (p *PartitionedLog) Tail() LSN {
	var max LSN
	for _, l := range p.logs {
		if t := l.Tail(); t > max {
			max = t
		}
	}
	return max
}

// SocketLog exposes the per-socket log for tests and instance-local recovery.
func (p *PartitionedLog) SocketLog(s topology.SocketID) *CentralLog {
	return p.logFor(s)
}
