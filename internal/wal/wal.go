// Package wal implements the write-ahead log of the storage manager. The
// centralized log follows the Aether design used by Shore-MT: transactions
// append records to a single log buffer whose tail is a heavily contended
// cache line, and commits are made durable with group commit. Shared-nothing
// configurations use one Log per instance, so every append stays socket-local;
// the centralized shared-everything configuration shares one Log across the
// whole machine, which is one of the contention points the paper measures.
package wal

import (
	"fmt"
	"sort"
	"sync"

	"atrapos/internal/device"
	"atrapos/internal/numa"
	"atrapos/internal/obs"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// LSN is a log sequence number.
type LSN uint64

// RecordType labels the kind of log record.
type RecordType int

const (
	// Update is a regular redo/undo record for a row modification.
	Update RecordType = iota
	// Insert records a row insertion.
	Insert
	// Delete records a row deletion.
	Delete
	// Commit records a transaction commit.
	Commit
	// Abort records a transaction rollback.
	Abort
	// Prepare is the 2PC prepare record written by distributed transactions.
	Prepare
	// EndOfDistributed is the 2PC end record written by the coordinator.
	EndOfDistributed
	// NoopWrite records a write intent that found no row to modify (an update
	// or delete of a missing key). The engine charges the append like any
	// other write record — the cost model prices write intents, and a miss is
	// only discovered inside the storage layer — but redo must not
	// re-establish a key the action never touched, so recovery skips it.
	NoopWrite
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case Update:
		return "update"
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Commit:
		return "commit"
	case Abort:
		return "abort"
	case Prepare:
		return "prepare"
	case EndOfDistributed:
		return "end-distributed"
	case NoopWrite:
		return "noop-write"
	default:
		return fmt.Sprintf("RecordType(%d)", int(t))
	}
}

// Record is one log record.
type Record struct {
	LSN   LSN
	Txn   uint64
	Type  RecordType
	Table string
	Key   schema.Key
	Size  int
}

// Log is the interface of a write-ahead log.
type Log interface {
	// Append adds a record on behalf of a worker on socket s and returns the
	// assigned LSN and the virtual cost of the insert.
	Append(s topology.SocketID, rec Record) (LSN, numa.Cost)
	// Flush makes everything up to lsn durable (group commit) and returns the
	// cost. now is the flushing worker's virtual time: logs bound to a device
	// feed it to the device's queueing model, so a flush issued while the
	// device is busy pays the wait behind the flushes ahead of it. Logs
	// without a device ignore it.
	Flush(s topology.SocketID, lsn LSN, now vclock.Nanos) numa.Cost
	// Durable returns the highest durable LSN.
	Durable() LSN
	// Tail returns the highest assigned LSN.
	Tail() LSN
}

// Config tunes the log cost model.
type Config struct {
	// PerByteCost is the cost of copying one byte into the log buffer.
	PerByteCost numa.Cost
	// FlushCost is the device latency of one group-commit flush when no
	// Device is bound; with a Device the flush pays the device's service and
	// queueing cost instead.
	FlushCost numa.Cost
	// GroupSize is the number of commits amortized by one flush.
	GroupSize int
	// Keep is the maximum number of records retained in memory for
	// inspection; older records are discarded (the "archive"). Zero keeps all.
	Keep int
	// Device optionally binds the log to a modeled log device: full flushes
	// then pay the device's queueing model (service latency, per-byte
	// bandwidth, waits behind queued flushes) instead of the flat FlushCost.
	// Nil reproduces the device-blind cost model exactly.
	Device *device.Device
	// CoalesceRecords enables the write-combining accumulator when positive:
	// write records of committing transactions land in a (table, key)-keyed
	// buffer in front of the log where overwrites and self-canceling pairs
	// collapse to net deltas, and a physical flush is issued once the
	// accumulator holds this many net entries (or a byte/age condition below
	// fires) instead of every GroupSize-th commit. Commits between physical
	// flushes ride along as before but are not acknowledged as durable until
	// the flush epoch holding their last record is written out. Zero disables
	// coalescing and reproduces the record-per-write cost model bit for bit.
	CoalesceRecords int
	// CoalesceBytes optionally adds a byte threshold: a physical flush is
	// issued once the buffered net-entry and control bytes reach it. Zero
	// means no byte condition.
	CoalesceBytes int
	// CoalesceMaxAge optionally bounds, in virtual time, how long a flush
	// epoch may stay open: a commit arriving after the deadline forces the
	// physical flush even when the record threshold has not been reached, so
	// a cooling key range cannot park committed work in memory forever. Zero
	// means no deadline.
	CoalesceMaxAge vclock.Nanos
}

// DefaultConfig returns the log configuration used by the evaluation:
// memory-mapped log device with group commit.
func DefaultConfig() Config {
	return Config{PerByteCost: 1, FlushCost: 12000, GroupSize: 8, Keep: 4096}
}

// CentralLog is an Aether-style centralized log. The buffer tail is modeled
// as a cache line; every append performs one atomic on it (the LSN/space
// reservation), so appends from many sockets pay coherence traffic.
type CentralLog struct {
	cfg  Config
	tail *numa.CacheLine

	mu      sync.Mutex
	next    LSN
	durable LSN
	pending int
	// pendingBytes accumulates the record bytes appended since the last full
	// flush; a device-bound flush writes them out and pays their bandwidth.
	pendingBytes int
	// Retained records live in a fixed-capacity ring so the append hot path
	// never allocates: ring[(start+i)%len(ring)] for i in [0,count) are the
	// most recent records, oldest first. With Keep == 0 the ring grows
	// without bound instead (recovery tests rely on a complete log).
	ring  []Record
	start int
	count int

	// coal is the write-combining accumulator (Config.CoalesceRecords > 0);
	// nil leaves every path below on the legacy record-per-write arithmetic.
	coal *coalescer

	// trace is the island span ring the log emits physical-flush and
	// coalesce-fold spans into; nil (the default) records nothing. traceSite
	// stamps the spans with the owning island; traceFoldMark is the coalesced
	// counter at the last emitted fold span, so each fold span reports only
	// the records folded since the previous physical flush.
	trace         *obs.Ring
	traceSite     int32
	traceFoldMark int64

	appends     int64
	logical     int64
	physRecords int64
	physFlushes int64
	rideAlongs  int64
	physBytes   int64
}

// coalKey identifies one net-delta accumulator entry: the row the collapsed
// records describe.
type coalKey struct {
	table string
	key   schema.Key
}

// coalescer is the per-log write-combining accumulator. Write records stage
// per transaction first and fold into the shared (table, key)-keyed net-delta
// buffer only when their transaction's outcome record (Commit or
// EndOfDistributed) is appended to this log — so every accumulator entry
// belongs to a winner and cross-transaction merging can never launder a loser
// record into a committed one. Staged records of transactions that never log
// an outcome here (aborts, in-flight work at a drain) are emitted to the ring
// verbatim and unmerged, where recovery classifies them by the absence of a
// commit record exactly as it would have without coalescing.
type coalescer struct {
	staging map[uint64][]Record
	// free recycles staged record slices so the steady state stays
	// allocation-free once per-transaction capacities have warmed up.
	free [][]Record

	// entries is the committed net-delta buffer in fold order (insertion
	// order, so flushes drain deterministically); index maps a row to its
	// entry. bytes is the summed Size of the entries.
	entries []Record
	index   map[coalKey]int
	bytes   int

	// epochStart is the virtual time the open flush epoch started at (the
	// first commit flushed after the previous physical flush); -1 while the
	// epoch is empty. It drives the CoalesceMaxAge deadline.
	epochStart vclock.Nanos

	// coalesced counts logical records absorbed into an existing entry.
	coalesced int64
}

func newCoalescer() *coalescer {
	return &coalescer{
		staging:    make(map[uint64][]Record),
		index:      make(map[coalKey]int),
		epochStart: -1,
	}
}

// takeSlice returns a recycled staged-record slice, or nil (append grows it).
func (c *coalescer) takeSlice() []Record {
	if n := len(c.free); n > 0 {
		s := c.free[n-1]
		c.free = c.free[:n-1]
		return s
	}
	return nil
}

func (c *coalescer) putSlice(s []Record) {
	if cap(s) == 0 {
		return
	}
	c.free = append(c.free, s[:0])
}

// fold merges the staged records of a transaction that just logged its
// outcome into the net-delta buffer, oldest first, so intra-transaction
// self-canceling pairs collapse on the spot.
func (c *coalescer) fold(txn uint64) {
	recs, ok := c.staging[txn]
	if !ok {
		return
	}
	delete(c.staging, txn)
	for i := range recs {
		c.merge(recs[i])
	}
	c.putSlice(recs)
}

// merge applies one committed write record to the net-delta buffer. The entry
// keeps the latest contributor's transaction and LSN; the record type follows
// the newest real write (an insert superseded by a delete nets to a delete
// tombstone — redo of a missing-key delete is a no-op, so emitting the
// tombstone is always safe — and vice versa), while a NoopWrite is absorbed
// without changing what redo will re-establish.
func (c *coalescer) merge(r Record) {
	k := coalKey{table: r.Table, key: r.Key}
	if i, ok := c.index[k]; ok {
		e := &c.entries[i]
		c.coalesced++
		e.Txn = r.Txn
		e.LSN = r.LSN
		if r.Type != NoopWrite {
			c.bytes += r.Size - e.Size
			e.Type = r.Type
			e.Size = r.Size
		}
		return
	}
	c.index[k] = len(c.entries)
	c.entries = append(c.entries, r)
	c.bytes += r.Size
}

// isWriteType reports whether t is a row write record (as opposed to a
// transaction-control record).
func isWriteType(t RecordType) bool {
	switch t {
	case Update, Insert, Delete, NoopWrite:
		return true
	}
	return false
}

// NewCentralLog creates a centralized log homed on socket home.
func NewCentralLog(d *numa.Domain, home topology.SocketID, cfg Config) *CentralLog {
	if cfg.GroupSize < 1 {
		cfg.GroupSize = 1
	}
	if cfg.PerByteCost < 0 {
		cfg.PerByteCost = 0
	}
	l := &CentralLog{cfg: cfg, tail: numa.NewCacheLine(d, home), next: 1}
	if cfg.CoalesceRecords > 0 {
		l.coal = newCoalescer()
	}
	return l
}

// ringAppend stores rec in the retained-record ring and counts it as a
// physical record. Callers hold l.mu and have already assigned rec.LSN.
func (l *CentralLog) ringAppend(rec Record) {
	l.physRecords++
	if l.cfg.Keep > 0 {
		if l.ring == nil {
			l.ring = make([]Record, l.cfg.Keep)
		}
		if l.count == len(l.ring) {
			// Overwrite the oldest record (the "archive" discards it).
			l.ring[l.start] = rec
			l.start = (l.start + 1) % len(l.ring)
		} else {
			l.ring[(l.start+l.count)%len(l.ring)] = rec
			l.count++
		}
	} else {
		l.ring = append(l.ring, rec)
		l.count = len(l.ring)
	}
}

// Append implements Log. With coalescing enabled, write records stage per
// transaction — they reach the accumulator only when their transaction's
// outcome record arrives — while control records go straight to the ring so
// recovery's winner determination sees them at any crash point. Every append
// pays the same tail reservation and copy cost either way: coalescing saves
// physical flush work, not the logical logging work.
func (l *CentralLog) Append(s topology.SocketID, rec Record) (LSN, numa.Cost) {
	cost := l.tail.Atomic(s) + numa.Cost(rec.Size)*l.cfg.PerByteCost
	l.mu.Lock()
	rec.LSN = l.next
	l.next++
	l.appends++
	if isWriteType(rec.Type) {
		l.logical++
	}
	if l.coal == nil {
		l.pendingBytes += rec.Size
		l.ringAppend(rec)
		l.mu.Unlock()
		return rec.LSN, cost
	}
	if isWriteType(rec.Type) {
		recs, ok := l.coal.staging[rec.Txn]
		if !ok {
			recs = l.coal.takeSlice()
		}
		l.coal.staging[rec.Txn] = append(recs, rec)
		l.mu.Unlock()
		return rec.LSN, cost
	}
	// A control record: fold the transaction's staged writes into the
	// net-delta buffer when this record makes it a recovery winner, then log
	// the control record itself immediately.
	if rec.Type == Commit || rec.Type == EndOfDistributed {
		l.coal.fold(rec.Txn)
	}
	l.pendingBytes += rec.Size
	l.ringAppend(rec)
	l.mu.Unlock()
	return rec.LSN, cost
}

// Flush implements Log. Group commit: a flush is charged only once per
// GroupSize committing transactions; other commits ride along for free.
// With a device bound, the full flush pays the device's queueing model (the
// flush is issued at the committer's virtual time now and waits behind the
// flushes queued ahead of it) and writes out the bytes pending since the
// previous full flush; ride-alongs pay the amortized device service only —
// they do not occupy a device channel.
func (l *CentralLog) Flush(s topology.SocketID, lsn LSN, now vclock.Nanos) numa.Cost {
	cost := l.tail.Touch(s)
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn <= l.durable {
		return cost
	}
	if l.coal != nil {
		c := l.coal
		if c.epochStart < 0 {
			c.epochStart = now
		}
		full := len(c.entries) >= l.cfg.CoalesceRecords ||
			(l.cfg.CoalesceBytes > 0 && c.bytes+l.pendingBytes >= l.cfg.CoalesceBytes) ||
			(l.cfg.CoalesceMaxAge > 0 && now-c.epochStart >= l.cfg.CoalesceMaxAge)
		if full {
			cost += l.physicalFlushLocked(now, false)
			l.durable = l.next - 1
		} else {
			// Ride along: the commit's net deltas stay in the open flush
			// epoch, so the transaction is *not* acknowledged as durable yet
			// — durability arrives with the epoch's physical flush. The
			// commit still pays the amortized group-forming latency.
			l.rideAlongs++
			if l.cfg.Device != nil {
				cost += l.cfg.Device.Service(0) / numa.Cost(l.cfg.GroupSize)
			} else {
				cost += l.cfg.FlushCost / numa.Cost(l.cfg.GroupSize)
			}
		}
		return cost
	}
	l.pending++
	if l.pending >= l.cfg.GroupSize {
		l.pending = 0
		l.physFlushes++
		// The full flush writes out everything pending, with or without
		// a device: a log that runs device-blind for a while and is
		// later re-bound must not bill its whole append history to the
		// first device flush.
		bytes := l.pendingBytes
		l.pendingBytes = 0
		l.physBytes += int64(bytes)
		var flushCost numa.Cost
		if l.cfg.Device != nil {
			flushCost = l.cfg.Device.Flush(now, bytes)
		} else {
			flushCost = l.cfg.FlushCost
		}
		cost += flushCost
		l.trace.Record(obs.Span{Start: now, Dur: vclock.Nanos(flushCost),
			Kind: obs.KindPhysFlush, Site: l.traceSite, Arg: int64(bytes)})
	} else {
		// Riding on a group commit still pays a fraction of the flush
		// latency (waiting for the group to form).
		l.rideAlongs++
		if l.cfg.Device != nil {
			cost += l.cfg.Device.Service(0) / numa.Cost(l.cfg.GroupSize)
		} else {
			cost += l.cfg.FlushCost / numa.Cost(l.cfg.GroupSize)
		}
	}
	if lsn > l.durable {
		l.durable = lsn
	}
	return cost
}

// physicalFlushLocked writes the accumulator out: net-delta entries are
// emitted to the retained ring in fold order and the device (or flat flush
// cost) is billed for the physical bytes — buffered control bytes plus the
// collapsed entry bytes, not the logical append volume. When leftovers is
// true (drains), the staged records of transactions that never logged an
// outcome here are emitted verbatim too, ordered by first-record LSN, so a
// crash drill's ring holds exactly the information the uncoalesced log would:
// recovery classifies them by the absence of an outcome record. Callers hold
// l.mu.
func (l *CentralLog) physicalFlushLocked(now vclock.Nanos, leftovers bool) numa.Cost {
	c := l.coal
	bytes := l.pendingBytes + c.bytes
	l.pendingBytes = 0
	for i := range c.entries {
		l.ringAppend(c.entries[i])
	}
	c.entries = c.entries[:0]
	clear(c.index)
	c.bytes = 0
	c.epochStart = -1
	if leftovers && len(c.staging) > 0 {
		rest := make([][]Record, 0, len(c.staging))
		for _, recs := range c.staging {
			rest = append(rest, recs)
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i][0].LSN < rest[j][0].LSN })
		for _, recs := range rest {
			for i := range recs {
				bytes += recs[i].Size
				l.ringAppend(recs[i])
			}
			c.putSlice(recs)
		}
		clear(c.staging)
	}
	l.pending = 0
	l.physFlushes++
	l.physBytes += int64(bytes)
	var flushCost numa.Cost
	if l.cfg.Device != nil {
		flushCost = l.cfg.Device.Flush(now, bytes)
	} else {
		flushCost = l.cfg.FlushCost
	}
	if l.trace != nil {
		if folded := c.coalesced - l.traceFoldMark; folded > 0 {
			l.trace.Record(obs.Span{Start: now, Kind: obs.KindCoalesceFold,
				Site: l.traceSite, Arg: folded})
			l.traceFoldMark = c.coalesced
		}
		l.trace.Record(obs.Span{Start: now, Dur: vclock.Nanos(flushCost),
			Kind: obs.KindPhysFlush, Site: l.traceSite, Arg: int64(bytes)})
	}
	return flushCost
}

// Drain forces the write-combining accumulator out: committed net deltas and
// the staged records of transactions still in flight hit the ring, and
// everything appended so far becomes durable (the final-flush guarantee).
// The engine calls it before an island re-wiring carries logs into a new
// island set, before a crash drill snapshots the ring, and at run end. It is
// a no-op on a log without coalescing or with nothing buffered; the returned
// cost is the physical flush the drain issued.
func (l *CentralLog) Drain(now vclock.Nanos) numa.Cost {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.coal == nil {
		return 0
	}
	c := l.coal
	if len(c.entries) == 0 && len(c.staging) == 0 && l.pendingBytes == 0 && l.durable == l.next-1 {
		return 0
	}
	cost := l.physicalFlushLocked(now, true)
	l.durable = l.next - 1
	return cost
}

// Device returns the log device the log is bound to, or nil.
func (l *CentralLog) Device() *device.Device {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cfg.Device
}

// SetTrace attaches (or, with a nil ring, detaches) the island span ring the
// log emits physical-flush and coalesce-fold spans into, stamped with site.
// An online re-wiring re-attaches reused logs to the new wiring's rings; the
// fold mark restarts at the current coalesced count so the first fold span
// after the move reports only new folds.
func (l *CentralLog) SetTrace(r *obs.Ring, site int32) {
	l.mu.Lock()
	l.trace = r
	l.traceSite = site
	if l.coal != nil {
		l.traceFoldMark = l.coal.coalesced
	}
	l.mu.Unlock()
}

// bindDevice re-binds the log to a different device, keeping its records,
// durability horizon and group-commit state. An online island re-wiring uses
// it when a reused island log's device assignment changed: silently keeping
// the old binding would charge future flushes to a device the island no
// longer owns.
func (l *CentralLog) bindDevice(d *device.Device) {
	l.mu.Lock()
	l.cfg.Device = d
	l.mu.Unlock()
}

// Durable implements Log.
func (l *CentralLog) Durable() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Tail implements Log.
func (l *CentralLog) Tail() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Records returns the retained records (most recent Keep entries), oldest first.
func (l *CentralLog) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, l.count)
	for i := 0; i < l.count; i++ {
		out[i] = l.ring[(l.start+i)%len(l.ring)]
	}
	return out
}

// Stats summarizes log activity. Appends counts every appended record (the
// logical logging work, paid on the hot path regardless of coalescing);
// LogicalRecords is the row-write subset of Appends; PhysicalRecords counts
// records actually written to the retained ring — with coalescing several
// logical records collapse into one physical entry; CoalescedRecords counts
// logical records absorbed into an existing net-delta entry.
// PhysicalFlushes and RideAlongFlushes split group commit exactly: flushes
// that hit the device (or paid the full flat flush cost) versus commits that
// rode along paying only the amortized group-forming latency. PhysicalBytes
// is the byte volume billed to the device by physical flushes.
type Stats struct {
	Appends          int64
	LogicalRecords   int64
	PhysicalRecords  int64
	CoalescedRecords int64
	PhysicalFlushes  int64
	RideAlongFlushes int64
	PhysicalBytes    int64
}

// Add returns the field-wise sum of s and o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Appends:          s.Appends + o.Appends,
		LogicalRecords:   s.LogicalRecords + o.LogicalRecords,
		PhysicalRecords:  s.PhysicalRecords + o.PhysicalRecords,
		CoalescedRecords: s.CoalescedRecords + o.CoalescedRecords,
		PhysicalFlushes:  s.PhysicalFlushes + o.PhysicalFlushes,
		RideAlongFlushes: s.RideAlongFlushes + o.RideAlongFlushes,
		PhysicalBytes:    s.PhysicalBytes + o.PhysicalBytes,
	}
}

// Sub returns the field-wise difference s-o, floored at zero per field, so a
// delta across a run stays meaningful even when the baseline snapshot came
// from a different log set (an adaptive re-wiring may retire logs).
func (s Stats) Sub(o Stats) Stats {
	f := func(a, b int64) int64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return Stats{
		Appends:          f(s.Appends, o.Appends),
		LogicalRecords:   f(s.LogicalRecords, o.LogicalRecords),
		PhysicalRecords:  f(s.PhysicalRecords, o.PhysicalRecords),
		CoalescedRecords: f(s.CoalescedRecords, o.CoalescedRecords),
		PhysicalFlushes:  f(s.PhysicalFlushes, o.PhysicalFlushes),
		RideAlongFlushes: f(s.RideAlongFlushes, o.RideAlongFlushes),
		PhysicalBytes:    f(s.PhysicalBytes, o.PhysicalBytes),
	}
}

// Stats returns the log's activity counters.
func (l *CentralLog) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Appends:          l.appends,
		LogicalRecords:   l.logical,
		PhysicalRecords:  l.physRecords,
		PhysicalFlushes:  l.physFlushes,
		RideAlongFlushes: l.rideAlongs,
		PhysicalBytes:    l.physBytes,
	}
	if l.coal != nil {
		st.CoalescedRecords = l.coal.coalesced
	}
	return st
}

// PartitionedLog gives each island its own CentralLog, as in a shared-nothing
// deployment with one instance per socket (the classic layout) or one per
// die/core island. Appends and flushes through the socket-keyed Log interface
// are routed to the first log homed on that socket; callers that know their
// island index (the engine's shared-nothing hot path) address their island's
// log directly with Log(i).
type PartitionedLog struct {
	logs  []*CentralLog
	homes []topology.SocketID
	// bySocket maps a socket to the index of the first log homed on it, or -1.
	bySocket []int
	// rebound counts reused logs whose device binding had to be re-derived.
	rebound int
}

// NewPartitionedLog builds one log per socket of the domain.
func NewPartitionedLog(d *numa.Domain, cfg Config) *PartitionedLog {
	homes := make([]topology.SocketID, d.Top.Sockets())
	for i := range homes {
		homes[i] = topology.SocketID(i)
	}
	return NewPartitionedLogAt(d, homes, cfg)
}

// NewPartitionedLogAt builds one log per entry of homes, each homed on the
// given socket. It is the log layout of a shared-nothing deployment with one
// instance per island: homes[i] is the socket of island i's first core.
func NewPartitionedLogAt(d *numa.Domain, homes []topology.SocketID, cfg Config) *PartitionedLog {
	return NewPartitionedLogAtReusing(d, homes, cfg, nil, nil)
}

// NewPartitionedLogAtDevices is NewPartitionedLogAt with an explicit device
// binding per island: devices[i] is the log device island i's log flushes to
// (overriding cfg.Device). A nil or short devices slice leaves the remaining
// islands on cfg.Device.
func NewPartitionedLogAtDevices(d *numa.Domain, homes []topology.SocketID, cfg Config, devices []*device.Device) *PartitionedLog {
	return NewPartitionedLogAtReusing(d, homes, cfg, devices, nil)
}

// NewPartitionedLogAtReusing builds a per-island log set like
// NewPartitionedLogAtDevices, but carries over reuse[i] as island i's log when
// it is non-nil instead of creating a fresh one. It is how an online island-
// level change keeps the log (records, durability horizon, group-commit state)
// of every island whose core set the re-wiring leaves intact: the new wiring's
// islands that match an old island by core set pass the old log through, and
// only genuinely new islands get empty logs. A reused log whose device binding
// disagrees with the island's device is re-derived: the log (and its records)
// is carried over but re-bound to the island's device, never silently left on
// the old one. A nil or short reuse slice behaves like NewPartitionedLogAt.
func NewPartitionedLogAtReusing(d *numa.Domain, homes []topology.SocketID, cfg Config, devices []*device.Device, reuse []*CentralLog) *PartitionedLog {
	if len(homes) == 0 {
		homes = []topology.SocketID{0}
	}
	p := &PartitionedLog{
		logs:     make([]*CentralLog, len(homes)),
		homes:    append([]topology.SocketID(nil), homes...),
		bySocket: make([]int, d.Top.Sockets()),
	}
	for i := range p.bySocket {
		p.bySocket[i] = -1
	}
	for i, h := range p.homes {
		want := cfg.Device
		if i < len(devices) && devices[i] != nil {
			want = devices[i]
		}
		if i < len(reuse) && reuse[i] != nil {
			p.logs[i] = reuse[i]
			if p.logs[i].Device() != want {
				p.logs[i].bindDevice(want)
				p.rebound++
			}
		} else {
			islandCfg := cfg
			islandCfg.Device = want
			p.logs[i] = NewCentralLog(d, h, islandCfg)
		}
		if int(h) >= 0 && int(h) < len(p.bySocket) && p.bySocket[h] < 0 {
			p.bySocket[h] = i
		}
	}
	return p
}

// ReboundDevices returns how many reused island logs had to be re-bound to a
// different device when the log set was built.
func (p *PartitionedLog) ReboundDevices() int { return p.rebound }

// NumLogs returns the number of per-island logs.
func (p *PartitionedLog) NumLogs() int { return len(p.logs) }

// Home returns the socket island i's log is homed on; out-of-range islands
// report the home of log 0, mirroring Log.
func (p *PartitionedLog) Home(i int) topology.SocketID {
	if i < 0 || i >= len(p.homes) {
		return p.homes[0]
	}
	return p.homes[i]
}

// Log returns the log of island i; out-of-range islands map to log 0 so that
// callers with a stale island index still make progress.
func (p *PartitionedLog) Log(i int) *CentralLog {
	if i < 0 || i >= len(p.logs) {
		return p.logs[0]
	}
	return p.logs[i]
}

func (p *PartitionedLog) logFor(s topology.SocketID) *CentralLog {
	if int(s) >= 0 && int(s) < len(p.bySocket) {
		if i := p.bySocket[s]; i >= 0 {
			return p.logs[i]
		}
	}
	return p.logs[0]
}

// Append implements Log.
func (p *PartitionedLog) Append(s topology.SocketID, rec Record) (LSN, numa.Cost) {
	return p.logFor(s).Append(s, rec)
}

// Flush implements Log.
func (p *PartitionedLog) Flush(s topology.SocketID, lsn LSN, now vclock.Nanos) numa.Cost {
	return p.logFor(s).Flush(s, lsn, now)
}

// Durable implements Log; it returns the minimum durable LSN across sockets,
// which is the conservative system-wide durability horizon.
func (p *PartitionedLog) Durable() LSN {
	min := LSN(^uint64(0))
	for _, l := range p.logs {
		if d := l.Durable(); d < min {
			min = d
		}
	}
	if min == LSN(^uint64(0)) {
		return 0
	}
	return min
}

// Tail implements Log; it returns the maximum assigned LSN across sockets.
func (p *PartitionedLog) Tail() LSN {
	var max LSN
	for _, l := range p.logs {
		if t := l.Tail(); t > max {
			max = t
		}
	}
	return max
}

// SocketLog exposes the per-socket log for tests and instance-local recovery.
func (p *PartitionedLog) SocketLog(s topology.SocketID) *CentralLog {
	return p.logFor(s)
}

// Drain forces every island log's write-combining accumulator out; see
// CentralLog.Drain. It returns the summed physical-flush cost.
func (p *PartitionedLog) Drain(now vclock.Nanos) numa.Cost {
	var cost numa.Cost
	for _, l := range p.logs {
		cost += l.Drain(now)
	}
	return cost
}

// Stats sums the per-island log counters.
func (p *PartitionedLog) Stats() Stats {
	var s Stats
	for _, l := range p.logs {
		s = s.Add(l.Stats())
	}
	return s
}
