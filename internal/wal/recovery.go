package wal

import (
	"fmt"

	"atrapos/internal/schema"
)

// RowStore is the subset of a table's interface recovery needs: it applies
// redo records without cost accounting. storage.Table satisfies it through a
// small adapter in the caller; tests use an in-memory map.
type RowStore interface {
	ApplyInsert(key schema.Key, row schema.Row)
	ApplyDelete(key schema.Key)
}

// RecoveryStats summarizes a log replay.
type RecoveryStats struct {
	Scanned     int
	Redone      int
	Skipped     int
	LoserTxns   int
	WinnerTxns  int
	HighestLSN  LSN
	DurableOnly bool
}

// Recover replays the retained records of a log into the given tables using
// redo-only recovery: records of transactions that committed (a Commit record
// appears for their transaction id) are re-applied in LSN order, records of
// loser transactions are skipped. Only records up to the durable LSN are
// considered when durableOnly is set, mirroring the durability boundary of
// group commit.
//
// The reproduction keeps pages in memory, so recovery is exercised by tests
// and by the example tooling rather than by a restart path; it exists because
// a storage manager without a usable log replay would not be a faithful
// Shore-MT stand-in.
func Recover(records []Record, durable LSN, durableOnly bool, tables map[string]RowStore) (RecoveryStats, error) {
	stats := RecoveryStats{DurableOnly: durableOnly}
	if tables == nil {
		return stats, fmt.Errorf("wal: recovery needs a table map")
	}
	// Pass 1: find winner transactions.
	winners := make(map[uint64]bool)
	for _, rec := range records {
		if durableOnly && rec.LSN > durable {
			continue
		}
		if rec.Type == Commit || rec.Type == EndOfDistributed {
			winners[rec.Txn] = true
		}
	}
	losers := make(map[uint64]bool)
	// Pass 2: redo winner records in order.
	for _, rec := range records {
		stats.Scanned++
		if rec.LSN > stats.HighestLSN {
			stats.HighestLSN = rec.LSN
		}
		if durableOnly && rec.LSN > durable {
			stats.Skipped++
			continue
		}
		switch rec.Type {
		case Commit, Abort, Prepare, EndOfDistributed:
			continue
		}
		if !winners[rec.Txn] {
			losers[rec.Txn] = true
			stats.Skipped++
			continue
		}
		store, ok := tables[rec.Table]
		if !ok {
			stats.Skipped++
			continue
		}
		switch rec.Type {
		case Insert, Update:
			// The reproduction's records carry no after-image payload (their
			// Size models it); redo re-establishes key presence.
			store.ApplyInsert(rec.Key, schema.Row{int64(rec.Key)})
			stats.Redone++
		case Delete:
			store.ApplyDelete(rec.Key)
			stats.Redone++
		default:
			stats.Skipped++
		}
	}
	stats.WinnerTxns = len(winners)
	stats.LoserTxns = len(losers)
	return stats, nil
}
