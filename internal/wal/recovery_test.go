package wal

import (
	"testing"

	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
)

// mapStore is a trivial RowStore for recovery tests.
type mapStore struct {
	rows map[schema.Key]schema.Row
}

func newMapStore() *mapStore { return &mapStore{rows: make(map[schema.Key]schema.Row)} }

func (m *mapStore) ApplyInsert(key schema.Key, row schema.Row) { m.rows[key] = row }
func (m *mapStore) ApplyDelete(key schema.Key)                 { delete(m.rows, key) }

func TestRecoverRedoesOnlyWinners(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 2, CoresPerSocket: 1})
	d := numa.MustNewDomain(top, numa.DefaultCostModel())
	l := NewCentralLog(d, 0, DefaultConfig())

	// Winner transaction 1: two updates and a commit.
	l.Append(0, Record{Txn: 1, Type: Update, Table: "t", Key: 10, Size: 32})
	l.Append(0, Record{Txn: 1, Type: Insert, Table: "t", Key: 11, Size: 32})
	commitLSN, _ := l.Append(0, Record{Txn: 1, Type: Commit, Size: 16})
	// Loser transaction 2: an update with no commit.
	l.Append(1, Record{Txn: 2, Type: Update, Table: "t", Key: 20, Size: 32})
	// Winner transaction 3: a delete.
	l.Append(1, Record{Txn: 3, Type: Delete, Table: "t", Key: 11, Size: 16})
	l.Append(1, Record{Txn: 3, Type: Commit, Size: 16})
	// A record for an unknown table is skipped gracefully.
	l.Append(0, Record{Txn: 3, Type: Update, Table: "unknown", Key: 1, Size: 16})

	store := newMapStore()
	stats, err := Recover(l.Records(), commitLSN, false, map[string]RowStore{"t": store})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WinnerTxns != 2 || stats.LoserTxns != 1 {
		t.Errorf("winners=%d losers=%d", stats.WinnerTxns, stats.LoserTxns)
	}
	if stats.Redone != 3 {
		t.Errorf("redone=%d, want 3 (two winner writes + one delete)", stats.Redone)
	}
	if _, ok := store.rows[10]; !ok {
		t.Error("winner update on key 10 not redone")
	}
	if _, ok := store.rows[11]; ok {
		t.Error("delete of key 11 by winner txn 3 not applied")
	}
	if _, ok := store.rows[20]; ok {
		t.Error("loser transaction 2's update must not be redone")
	}
	if stats.HighestLSN == 0 || stats.Scanned != 7 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRecoverDurableBoundary(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 1, CoresPerSocket: 1})
	d := numa.MustNewDomain(top, numa.DefaultCostModel())
	cfg := DefaultConfig()
	cfg.GroupSize = 1
	l := NewCentralLog(d, 0, cfg)

	l.Append(0, Record{Txn: 1, Type: Update, Table: "t", Key: 1, Size: 16})
	lsn, _ := l.Append(0, Record{Txn: 1, Type: Commit, Size: 16})
	l.Flush(0, lsn, 0)
	// Transaction 2 commits after the durability horizon.
	l.Append(0, Record{Txn: 2, Type: Update, Table: "t", Key: 2, Size: 16})
	l.Append(0, Record{Txn: 2, Type: Commit, Size: 16})

	store := newMapStore()
	stats, err := Recover(l.Records(), l.Durable(), true, map[string]RowStore{"t": store})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := store.rows[1]; !ok {
		t.Error("durable winner not redone")
	}
	if _, ok := store.rows[2]; ok {
		t.Error("record beyond the durable LSN must not be redone when durableOnly is set")
	}
	if !stats.DurableOnly || stats.Skipped == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRecoverValidation(t *testing.T) {
	if _, err := Recover(nil, 0, false, nil); err == nil {
		t.Error("nil table map should error")
	}
	stats, err := Recover(nil, 0, false, map[string]RowStore{})
	if err != nil || stats.Scanned != 0 {
		t.Errorf("empty recovery: %+v, %v", stats, err)
	}
}
