package wal

import (
	"sync"
	"testing"

	"atrapos/internal/device"
	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
)

func newDomain(sockets int) *numa.Domain {
	top := topology.MustNew(topology.Config{Sockets: sockets, CoresPerSocket: 2})
	return numa.MustNewDomain(top, numa.DefaultCostModel())
}

func TestRecordTypeString(t *testing.T) {
	types := []RecordType{Update, Insert, Delete, Commit, Abort, Prepare, EndOfDistributed, RecordType(42)}
	for _, rt := range types {
		if rt.String() == "" {
			t.Errorf("record type %d has empty string", rt)
		}
	}
}

func TestCentralLogAppendAssignsMonotonicLSNs(t *testing.T) {
	d := newDomain(2)
	l := NewCentralLog(d, 0, DefaultConfig())
	var prev LSN
	for i := 0; i < 100; i++ {
		lsn, cost := l.Append(0, Record{Txn: uint64(i), Type: Update, Table: "t", Key: schema.KeyFromInt(int64(i)), Size: 64})
		if lsn <= prev {
			t.Fatalf("LSN %d not greater than previous %d", lsn, prev)
		}
		if cost <= 0 {
			t.Fatal("append cost should be positive")
		}
		prev = lsn
	}
	if l.Tail() != prev {
		t.Errorf("Tail = %d, want %d", l.Tail(), prev)
	}
	if got := l.Stats().Appends; got != 100 {
		t.Errorf("Appends = %d, want 100", got)
	}
}

func TestCentralLogLargerRecordsCostMore(t *testing.T) {
	d := newDomain(1)
	l := NewCentralLog(d, 0, DefaultConfig())
	_, small := l.Append(0, Record{Size: 16})
	_, large := l.Append(0, Record{Size: 4096})
	if large <= small {
		t.Errorf("large record cost %d should exceed small record cost %d", large, small)
	}
}

func TestCentralLogRemoteAppendsCostMore(t *testing.T) {
	d := newDomain(8)
	l := NewCentralLog(d, 0, DefaultConfig())
	_, localCost := l.Append(0, Record{Size: 64})
	_, remoteCost := l.Append(7, Record{Size: 64})
	if remoteCost <= localCost {
		t.Errorf("remote append cost %d should exceed local %d", remoteCost, localCost)
	}
}

func TestGroupCommit(t *testing.T) {
	d := newDomain(1)
	cfg := DefaultConfig()
	cfg.GroupSize = 4
	l := NewCentralLog(d, 0, cfg)
	var lsns []LSN
	for i := 0; i < 8; i++ {
		lsn, _ := l.Append(0, Record{Txn: uint64(i), Type: Commit, Size: 32})
		lsns = append(lsns, lsn)
	}
	var fullFlushes int
	for _, lsn := range lsns {
		cost := l.Flush(0, lsn, 0)
		if cost >= cfg.FlushCost {
			fullFlushes++
		}
	}
	if fullFlushes != 2 {
		t.Errorf("with group size 4 and 8 commits, want 2 full flushes, got %d", fullFlushes)
	}
	if l.Durable() != lsns[len(lsns)-1] {
		t.Errorf("Durable = %d, want %d", l.Durable(), lsns[len(lsns)-1])
	}
	if got := l.Stats().PhysicalFlushes; got != 2 {
		t.Errorf("PhysicalFlushes = %d, want 2", got)
	}
	if got := l.Stats().RideAlongFlushes; got != 6 {
		t.Errorf("RideAlongFlushes = %d, want 6", got)
	}
	// Flushing an already durable LSN is cheap and does not count.
	if cost := l.Flush(0, lsns[0], 0); cost >= cfg.FlushCost {
		t.Errorf("stale flush cost %d should be small", cost)
	}
}

func TestCentralLogRecordsRetention(t *testing.T) {
	d := newDomain(1)
	cfg := DefaultConfig()
	cfg.Keep = 10
	l := NewCentralLog(d, 0, cfg)
	for i := 0; i < 25; i++ {
		l.Append(0, Record{Txn: uint64(i), Size: 8})
	}
	recs := l.Records()
	if len(recs) != 10 {
		t.Fatalf("retained %d records, want 10", len(recs))
	}
	if recs[0].Txn != 15 {
		t.Errorf("oldest retained record txn = %d, want 15", recs[0].Txn)
	}
	// Keep == 0 retains everything.
	cfg.Keep = 0
	l2 := NewCentralLog(d, 0, cfg)
	for i := 0; i < 25; i++ {
		l2.Append(0, Record{Size: 8})
	}
	if len(l2.Records()) != 25 {
		t.Errorf("unbounded log retained %d records", len(l2.Records()))
	}
}

func TestCentralLogConcurrentAppends(t *testing.T) {
	d := newDomain(4)
	l := NewCentralLog(d, 0, DefaultConfig())
	var wg sync.WaitGroup
	const perWorker = 200
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Append(topology.SocketID(w), Record{Txn: uint64(w), Size: 16})
			}
		}(w)
	}
	wg.Wait()
	if l.Tail() != LSN(4*perWorker) {
		t.Errorf("Tail = %d, want %d", l.Tail(), 4*perWorker)
	}
}

func TestDefaultConfigSanity(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.GroupSize < 1 || cfg.FlushCost <= 0 {
		t.Errorf("suspicious default config %+v", cfg)
	}
	// A config with nonsense values is clamped by the constructor.
	d := newDomain(1)
	l := NewCentralLog(d, 0, Config{GroupSize: 0, PerByteCost: -5, FlushCost: 100})
	lsn, cost := l.Append(0, Record{Size: 100})
	if lsn != 1 || cost <= 0 {
		t.Errorf("append with clamped config: lsn %d cost %d", lsn, cost)
	}
	if c := l.Flush(0, lsn, 0); c < 100 {
		t.Errorf("group size 1 should always pay the full flush, got %d", c)
	}
}

func TestPartitionedLogRoutesLocally(t *testing.T) {
	d := newDomain(4)
	p := NewPartitionedLog(d, DefaultConfig())
	// Appends from each socket land in that socket's log and stay cheap.
	for s := 0; s < 4; s++ {
		_, cost := p.Append(topology.SocketID(s), Record{Txn: uint64(s), Size: 64})
		maxLocal := d.Model.LocalAtomic + 64*DefaultConfig().PerByteCost
		if cost > maxLocal {
			t.Errorf("socket %d append cost %d, want <= %d", s, cost, maxLocal)
		}
	}
	for s := 0; s < 4; s++ {
		if p.SocketLog(topology.SocketID(s)).Tail() != 1 {
			t.Errorf("socket %d log tail = %d, want 1", s, p.SocketLog(topology.SocketID(s)).Tail())
		}
	}
	if p.Tail() != 1 {
		t.Errorf("global tail = %d, want 1", p.Tail())
	}
	// Durability horizon is the minimum across sockets.
	lsn, _ := p.Append(0, Record{Type: Commit, Size: 8})
	for i := 0; i < 10; i++ {
		p.Flush(0, lsn, 0)
	}
	if p.Durable() != 0 {
		t.Errorf("Durable = %d, want 0 while other sockets have flushed nothing", p.Durable())
	}
	// Unknown sockets fall back to socket 0.
	if _, cost := p.Append(topology.SocketID(99), Record{Size: 8}); cost <= 0 {
		t.Error("fallback append should still be charged")
	}
}

func TestPartitionedLogEmptyDurable(t *testing.T) {
	d := newDomain(2)
	p := NewPartitionedLog(d, DefaultConfig())
	if p.Durable() != 0 {
		t.Errorf("empty partitioned log durable = %d, want 0", p.Durable())
	}
	if p.Tail() != 0 {
		t.Errorf("empty partitioned log tail = %d, want 0", p.Tail())
	}
}

// TestReusedLogRebindsChangedDevice is the regression test for the device-
// binding reuse bug: NewPartitionedLogAtReusing must not silently keep a
// reused log on its old device when the island's device assignment changed —
// the log is re-derived onto the new device, keeping its records and
// group-commit state.
func TestReusedLogRebindsChangedDevice(t *testing.T) {
	d := newDomain(2)
	devA := device.New(device.Spec{Name: "a", Class: "nvme", FlushLatency: 100, QueueDepth: 1})
	devB := device.New(device.Spec{Name: "b", Class: "sata", FlushLatency: 900, QueueDepth: 1})
	homes := []topology.SocketID{0, 1}
	p1 := NewPartitionedLogAtDevices(d, homes, DefaultConfig(), []*device.Device{devA, devA})
	p1.Log(0).Append(0, Record{Txn: 1, Type: Update, Table: "t", Key: 7, Size: 64})
	p1.Log(0).Append(0, Record{Txn: 1, Type: Commit, Size: 48})

	// Rebuild reusing both logs, but island 0's device moved to devB.
	p2 := NewPartitionedLogAtReusing(d, homes, DefaultConfig(),
		[]*device.Device{devB, devA}, []*CentralLog{p1.Log(0), p1.Log(1)})
	if p2.Log(0) != p1.Log(0) {
		t.Fatal("island 0's log should be reused")
	}
	if got := p2.Log(0).Device(); got != devB {
		t.Fatalf("reused log kept device %v, want re-derived binding %v", got, devB)
	}
	if got := p2.Log(1).Device(); got != devA {
		t.Fatalf("unchanged island rebound to %v, want %v", got, devA)
	}
	if p2.ReboundDevices() != 1 {
		t.Fatalf("rebound count = %d, want 1", p2.ReboundDevices())
	}
	// Records survived the re-derivation.
	if got := len(p2.Log(0).Records()); got != 2 {
		t.Fatalf("re-bound log retained %d records, want 2", got)
	}
	// And future flushes pay the new device: a full group on the re-bound log
	// must cost devB's service latency, not devA's.
	lg := p2.Log(0)
	cfg := DefaultConfig()
	var flushCost numa.Cost
	for i := 0; i < cfg.GroupSize; i++ {
		lsn, _ := lg.Append(0, Record{Txn: uint64(10 + i), Type: Update, Table: "t", Key: schema.Key(i), Size: 64})
		if c := lg.Flush(0, lsn, 0); c > flushCost {
			flushCost = c
		}
	}
	if flushCost < 900 {
		t.Fatalf("full flush after rebinding cost %d, want >= the new device's 900", flushCost)
	}
}

// TestRecoveryAcrossDeviceRebinding asserts records appended before a
// device-rebinding rebuild replay correctly from the new per-island logs.
func TestRecoveryAcrossDeviceRebinding(t *testing.T) {
	d := newDomain(2)
	devA := device.New(device.Spec{Name: "a", FlushLatency: 100, QueueDepth: 1})
	devB := device.New(device.Spec{Name: "b", FlushLatency: 900, QueueDepth: 1})
	homes := []topology.SocketID{0, 1}
	p1 := NewPartitionedLogAtDevices(d, homes, DefaultConfig(), []*device.Device{devA, devA})
	for i := 0; i < 10; i++ {
		lg := p1.Log(i % 2)
		home := p1.Home(i % 2)
		lg.Append(home, Record{Txn: uint64(i), Type: Update, Table: "t", Key: schema.Key(i), Size: 64})
		lsn, _ := lg.Append(home, Record{Txn: uint64(i), Type: Commit, Size: 48})
		lg.Flush(home, lsn, 0)
	}
	p2 := NewPartitionedLogAtReusing(d, homes, DefaultConfig(),
		[]*device.Device{devB, devB}, []*CentralLog{p1.Log(0), p1.Log(1)})
	if p2.ReboundDevices() != 2 {
		t.Fatalf("rebound count = %d, want 2", p2.ReboundDevices())
	}
	store := newMapStore()
	tables := map[string]RowStore{"t": store}
	for i := 0; i < p2.NumLogs(); i++ {
		lg := p2.Log(i)
		if _, err := Recover(lg.Records(), lg.Durable(), false, tables); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, ok := store.rows[schema.Key(i)]; !ok {
			t.Errorf("committed key %d did not replay from the re-bound logs", i)
		}
	}
}
