package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRingOverflowAccounting(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Span{Start: 1, Dur: 1, Kind: KindTxn})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Attempts(); got != 10 {
		t.Fatalf("Attempts = %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	r.Reset()
	if r.Len() != 0 || r.Attempts() != 0 || r.Dropped() != 0 {
		t.Fatalf("Reset did not clear the ring: len=%d attempts=%d dropped=%d",
			r.Len(), r.Attempts(), r.Dropped())
	}
	if got := r.Capacity(); got != 4 {
		t.Fatalf("Capacity = %d after Reset, want 4", got)
	}
}

func TestNilRingAndTracerAreNoOps(t *testing.T) {
	var r *Ring
	r.Record(Span{})
	if r.Len() != 0 || r.Attempts() != 0 || r.Dropped() != 0 || r.Capacity() != 0 {
		t.Fatal("nil ring reported nonzero state")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil ring snapshot is not nil")
	}
	var tr *Tracer
	tr.RecordDecision(Decision{})
	tr.RecordSample(Sample{})
	tr.Reset()
	if tr.Worker(0) != nil || tr.Island(0) != nil || tr.Device(0) != nil || tr.Planner() != nil {
		t.Fatal("nil tracer returned a ring")
	}
	if tr.Dropped() != 0 || tr.DropAccounting() != "" {
		t.Fatal("nil tracer reported drops")
	}
	if len(tr.ExportChromeTrace()) == 0 {
		t.Fatal("nil tracer exported an empty document")
	}
}

func TestRingConcurrentRecordKeepsAccountingExact(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(Span{Kind: KindWALAppend})
			}
		}()
	}
	wg.Wait()
	if got := r.Attempts(); got != writers*per {
		t.Fatalf("Attempts = %d, want %d", got, writers*per)
	}
	if got := r.Dropped(); got != writers*per-128 {
		t.Fatalf("Dropped = %d, want %d", got, writers*per-128)
	}
}

func TestTracerDropAccounting(t *testing.T) {
	tr := NewTracer(2, 1, 1, 2)
	tr.Worker(0).Record(Span{Kind: KindTxn})
	for i := 0; i < 5; i++ {
		tr.Island(0).Record(Span{Kind: KindPhysFlush})
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	if v := tr.DropAccounting(); v != "" {
		t.Fatalf("DropAccounting violated: %s", v)
	}
}

func TestExportChromeTraceValidatesAndIsDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer(2, 2, 1, 16)
		tr.Worker(0).Record(Span{Start: 1000, Dur: 500, Kind: KindTxn, Core: 0, Class: "mixed"})
		tr.Worker(1).Record(Span{Start: 1200, Dur: 300, Kind: KindLockAcquire, Core: 1})
		tr.Island(0).Record(Span{Start: 1500, Dur: 100, Kind: KindPhysFlush, Site: 0, Arg: 4096})
		tr.Island(1).Record(Span{Start: 1500, Kind: KindCoalesceFold, Site: 1, Arg: 7})
		tr.Device(0).Record(Span{Start: 1600, Dur: 50, Kind: KindDeviceWait})
		tr.Planner().Record(Span{Start: 2000, Kind: KindPlannerSeal})
		tr.RecordDecision(Decision{At: 2000, Current: "socket", Best: "core", Verdict: "change",
			Candidates: []LevelScore{{Level: "core", Total: 1, Locality: 1}}})
		tr.RecordSample(Sample{At: 2000, Level: "socket", TPS: 10, IslandTPS: []float64{5, 5}})
		return tr
	}
	a, b := build().ExportChromeTrace(), build().ExportChromeTrace()
	if !bytes.Equal(a, b) {
		t.Fatal("identical tracers exported different bytes")
	}
	if err := ValidateChromeTrace(a); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	for _, want := range []string{"planner-decision", "phys-flush", "coalesce-fold", "device-wait", "\"locality\""} {
		if !strings.Contains(string(a), want) {
			t.Fatalf("exported trace is missing %q", want)
		}
	}
	csvA, csvB := build().ExportMetricsCSV(), build().ExportMetricsCSV()
	if !bytes.Equal(csvA, csvB) {
		t.Fatal("identical tracers exported different CSV bytes")
	}
	if err := ValidateMetricsCSV(csvA); err != nil {
		t.Fatalf("exported CSV fails validation: %v", err)
	}
}

func TestValidateChromeTraceRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"no array":       `{"other":1}`,
		"nameless event": `{"traceEvents":[{"ph":"X","ts":1,"dur":1,"pid":0,"tid":0}]}`,
		"unknown phase":  `{"traceEvents":[{"name":"x","ph":"Q","ts":1,"pid":0,"tid":0}]}`,
		"negative ts":    `{"traceEvents":[{"name":"x","ph":"X","ts":-1,"dur":1,"pid":0,"tid":0}]}`,
		"missing dur":    `{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":0,"tid":0}]}`,
		"missing tid":    `{"traceEvents":[{"name":"x","ph":"i","ts":1,"pid":0}]}`,
	}
	for name, doc := range cases {
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validation passed, want failure", name)
		}
	}
}

func TestValidateMetricsCSVRejectsBadDocuments(t *testing.T) {
	good := MetricsCSVHeader + "\n100,0,socket,1.000000,1,0,0.000000,0.000000,1.000000,0.000000,1.000000\n"
	if err := ValidateMetricsCSV([]byte(good)); err != nil {
		t.Fatalf("good CSV rejected: %v", err)
	}
	cases := map[string]string{
		"bad header":      "nope\n",
		"short row":       MetricsCSVHeader + "\n100,0,socket\n",
		"bad at_ns":       MetricsCSVHeader + "\nx,0,socket,1,1,0,0,0,1,0,1\n",
		"time regression": MetricsCSVHeader + "\n200,0,s,1,1,0,0,0,1,0,1\n100,0,s,1,1,0,0,0,1,0,1\n",
	}
	for name, doc := range cases {
		if err := ValidateMetricsCSV([]byte(doc)); err == nil {
			t.Errorf("%s: validation passed, want failure", name)
		}
	}
}
