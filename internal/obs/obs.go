// Package obs is the engine's virtual-time tracing and metrics layer: span
// rings recording where a transaction's virtual nanoseconds went, a
// planner-boundary-driven metrics time series, and a decision log explaining
// every granularity evaluation term by term.
//
// The package is built around two constraints. First, tracing must be free
// when disabled: every producer holds a *Ring (or *Tracer) that is nil when
// tracing is off, and every method is a nil-receiver no-op, so the hot path
// pays one pointer test and zero allocations. Second, recording must be
// allocation-free when enabled: rings are pre-allocated to a fixed capacity
// at engine build, and a full ring drops new spans while counting every
// attempt, so `Dropped() == Attempts() - Len()` is an exactness invariant the
// fuzzer can check rather than silent loss.
//
// Spans are stamped with virtual time (vclock.Nanos), not wall time: a traced
// run is a pure function of its seed, so exported traces are bit-identical
// across host machines and harness parallelism. The one exception is the
// executed backend's measured operations, whose timestamps are wall
// nanoseconds by definition; they are excluded from determinism oracles.
//
// obs sits below every subsystem it observes: it imports only vclock and the
// standard library, so wal, device, backend and engine can all hold rings
// without an import cycle.
package obs

import (
	"sync"

	"atrapos/internal/vclock"
)

// Kind is the span vocabulary: each value names one priced operation class.
type Kind uint8

const (
	// KindTxn is one transaction execution attempt on a coordinating core.
	KindTxn Kind = iota
	// KindLockAcquire is one lock-table acquisition (Arg=1 on conflict).
	KindLockAcquire
	// KindSyncPoint is one synchronization-point rendezvous (Arg=bytes).
	KindSyncPoint
	// KindPrepare is the voting phase of one 2PC round (Arg=participants).
	KindPrepare
	// KindCommit is the decision+completion phase of one 2PC round.
	KindCommit
	// KindWALAppend is one logical record appended to an island log.
	KindWALAppend
	// KindCoalesceFold is records folded away by the write-combining
	// accumulator since the previous physical flush (Arg=folded records).
	KindCoalesceFold
	// KindPhysFlush is one physical flush reaching the device (Arg=bytes).
	KindPhysFlush
	// KindDeviceWait is queueing delay at a log device (Arg=bytes).
	KindDeviceWait
	// KindBackendOp is one executed-backend operation (wall-ns timestamps).
	KindBackendOp
	// KindPlannerSeal is a monitor-epoch seal at a planner boundary.
	KindPlannerSeal
	// KindPlannerScore is one granularity-model scoring pass.
	KindPlannerScore
	// KindPlannerRewire is one online island-level re-wiring (Arg=epoch).
	KindPlannerRewire
	// KindPlannerRepartition is one adaptive placement migration.
	KindPlannerRepartition

	numKinds
)

// String implements fmt.Stringer; the names double as trace-event names.
func (k Kind) String() string {
	switch k {
	case KindTxn:
		return "txn"
	case KindLockAcquire:
		return "lock-acquire"
	case KindSyncPoint:
		return "sync-point"
	case KindPrepare:
		return "2pc-prepare"
	case KindCommit:
		return "2pc-commit"
	case KindWALAppend:
		return "wal-append"
	case KindCoalesceFold:
		return "coalesce-fold"
	case KindPhysFlush:
		return "phys-flush"
	case KindDeviceWait:
		return "device-wait"
	case KindBackendOp:
		return "backend-op"
	case KindPlannerSeal:
		return "planner-seal"
	case KindPlannerScore:
		return "planner-score"
	case KindPlannerRewire:
		return "planner-rewire"
	case KindPlannerRepartition:
		return "planner-repartition"
	default:
		return "unknown"
	}
}

// Span is one recorded virtual-time interval. Start and Dur are virtual
// nanoseconds (wall nanoseconds only for KindBackendOp). Worker, Core, Site
// and Epoch stamp where in the machine and under which wiring the work
// happened; Class is the transaction class for KindTxn spans (a string from
// the workload's fixed class table, so recording it does not allocate).
type Span struct {
	Start              vclock.Nanos
	Dur                vclock.Nanos
	Kind               Kind
	Worker, Core, Site int32
	Epoch              uint32
	Arg                int64
	Class              string
}

// Ring is a fixed-capacity span buffer. Record never allocates: a full ring
// drops the new span and counts the attempt, so Dropped() is exact. The ring
// carries its own mutex because some producers are shared across owners —
// a reused island log serves two wirings during a level change, and the
// planner goroutine records into island rings concurrently with workers.
type Ring struct {
	mu       sync.Mutex
	spans    []Span
	attempts int64
}

// NewRing returns a ring with storage for capacity spans, pre-allocated so
// recording never grows the buffer.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{spans: make([]Span, 0, capacity)}
}

// Record appends the span if the ring has room and counts the attempt either
// way. Safe on a nil ring (tracing disabled): it is a single-branch no-op.
func (r *Ring) Record(sp Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.attempts++
	if len(r.spans) < cap(r.spans) {
		r.spans = append(r.spans, sp)
	}
	r.mu.Unlock()
}

// Snapshot returns a copy of the recorded spans.
func (r *Ring) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Len returns the number of spans held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Capacity returns the fixed capacity.
func (r *Ring) Capacity() int {
	if r == nil {
		return 0
	}
	return cap(r.spans)
}

// Attempts returns how many spans were offered to the ring.
func (r *Ring) Attempts() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempts
}

// Dropped returns how many offered spans the full ring refused.
func (r *Ring) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempts - int64(len(r.spans))
}

// Reset empties the ring (keeping its storage) and zeroes the attempt count.
func (r *Ring) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.attempts = 0
	r.mu.Unlock()
}

// LevelScore is one candidate island level's priced cost, split into the
// granularity model's five terms. It mirrors core.LevelBreakdown with plain
// floats and a string level so obs does not import core (which imports the
// packages obs instruments).
type LevelScore struct {
	Level    string  `json:"level"`
	Total    float64 `json:"total"`
	Locality float64 `json:"locality"`
	TxnState float64 `json:"txn_state"`
	Commit   float64 `json:"commit"`
	Conflict float64 `json:"conflict"`
	Comm     float64 `json:"comm"`
}

// Decision is one granularity-planner evaluation: the full per-candidate
// score breakdown plus the verdict explaining what the planner did with it.
// Verdicts: "cooldown" (interval sat out after a recent change), "idle"
// (no transactions observed), "hardware-rebuild" (forced re-wiring off dead
// hardware), "hold-current" (current level already best), "hysteresis-hold"
// (best level within the hysteresis band) and "change".
type Decision struct {
	At         vclock.Nanos `json:"at"`
	Epoch      uint64       `json:"epoch"`
	Current    string       `json:"current"`
	Best       string       `json:"best"`
	Verdict    string       `json:"verdict"`
	Multisite  float64      `json:"multisite_share"`
	Candidates []LevelScore `json:"candidates"`
}

// Sample is one planner-boundary metrics observation.
type Sample struct {
	At              vclock.Nanos
	Epoch           uint64
	Level           string
	TPS             float64
	Committed       int64
	Aborted         int64
	ConflictRate    float64
	MultisiteShare  float64
	CoalesceRatio   float64
	DeviceBacklogNs float64
	IslandTPS       []float64
}

// Tracer owns every ring and series of one engine: per-worker rings for
// execution-path spans, per-island rings for WAL activity, per-device rings
// for queue waits, one planner ring, the decision log and the metrics
// samples. All accessors are nil-receiver safe, so a disabled engine holds a
// nil *Tracer and every producer site stays a single-branch no-op.
type Tracer struct {
	workers []*Ring
	islands []*Ring
	devices []*Ring
	planner *Ring

	mu        sync.Mutex
	decisions []Decision
	samples   []Sample
}

// NewTracer pre-allocates rings: one per worker slot (indexed by core),
// one per island slot, one per device, and one for the planner, each with
// ringCap capacity.
func NewTracer(workers, islands, devices, ringCap int) *Tracer {
	t := &Tracer{
		workers: make([]*Ring, workers),
		islands: make([]*Ring, islands),
		devices: make([]*Ring, devices),
		planner: NewRing(ringCap),
	}
	for i := range t.workers {
		t.workers[i] = NewRing(ringCap)
	}
	for i := range t.islands {
		t.islands[i] = NewRing(ringCap)
	}
	for i := range t.devices {
		t.devices[i] = NewRing(ringCap)
	}
	return t
}

// Worker returns worker slot i's ring, or nil when t is nil or i is out of
// range.
func (t *Tracer) Worker(i int) *Ring {
	if t == nil || i < 0 || i >= len(t.workers) {
		return nil
	}
	return t.workers[i]
}

// Island returns island slot i's ring, or nil.
func (t *Tracer) Island(i int) *Ring {
	if t == nil || i < 0 || i >= len(t.islands) {
		return nil
	}
	return t.islands[i]
}

// Device returns device i's ring, or nil.
func (t *Tracer) Device(i int) *Ring {
	if t == nil || i < 0 || i >= len(t.devices) {
		return nil
	}
	return t.devices[i]
}

// Planner returns the planner ring, or nil.
func (t *Tracer) Planner() *Ring {
	if t == nil {
		return nil
	}
	return t.planner
}

// RecordDecision appends one planner evaluation to the decision log.
func (t *Tracer) RecordDecision(d Decision) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.decisions = append(t.decisions, d)
	t.mu.Unlock()
}

// RecordSample appends one metrics observation.
func (t *Tracer) RecordSample(s Sample) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.samples = append(t.samples, s)
	t.mu.Unlock()
}

// Decisions returns a copy of the decision log.
func (t *Tracer) Decisions() []Decision {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Decision(nil), t.decisions...)
}

// Samples returns a copy of the metrics series.
func (t *Tracer) Samples() []Sample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Sample(nil), t.samples...)
}

// Reset empties every ring and series so a fresh run starts clean; ring
// storage is kept.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for _, r := range t.workers {
		r.Reset()
	}
	for _, r := range t.islands {
		r.Reset()
	}
	for _, r := range t.devices {
		r.Reset()
	}
	t.planner.Reset()
	t.mu.Lock()
	t.decisions = nil
	t.samples = nil
	t.mu.Unlock()
}

// rings iterates every ring with a stable label, in a fixed order.
func (t *Tracer) rings(fn func(group string, idx int, r *Ring)) {
	if t == nil {
		return
	}
	for i, r := range t.workers {
		fn("worker", i, r)
	}
	for i, r := range t.islands {
		fn("island", i, r)
	}
	for i, r := range t.devices {
		fn("device", i, r)
	}
	fn("planner", 0, t.planner)
}

// Dropped sums the drop counters of every ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	var total int64
	t.rings(func(_ string, _ int, r *Ring) { total += r.Dropped() })
	return total
}

// DropAccounting verifies the no-silent-loss invariant on every ring:
// dropped == attempts - held, held <= capacity, and dropped is only nonzero
// when the ring is exactly full. It returns a description of the first
// violation, or "" when the accounting is exact.
func (t *Tracer) DropAccounting() string {
	if t == nil {
		return ""
	}
	var violation string
	t.rings(func(group string, idx int, r *Ring) {
		if violation != "" || r == nil {
			return
		}
		held, attempts, dropped := int64(r.Len()), r.Attempts(), r.Dropped()
		capn := int64(r.Capacity())
		switch {
		case dropped != attempts-held:
			violation = ringViolation(group, idx, "dropped != attempts - held", held, attempts, dropped)
		case held > capn:
			violation = ringViolation(group, idx, "held > capacity", held, attempts, dropped)
		case dropped > 0 && held != capn:
			violation = ringViolation(group, idx, "dropped from a non-full ring", held, attempts, dropped)
		case dropped < 0:
			violation = ringViolation(group, idx, "negative drop count", held, attempts, dropped)
		}
	})
	return violation
}
