package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Chrome trace-event export. The format is the Trace Event JSON object form
// ({"traceEvents":[...]}) that Perfetto and chrome://tracing load directly.
// Virtual nanoseconds map to trace microseconds (ts = ns / 1000, three
// decimals, so single-nanosecond spans stay distinct). Track layout: one
// process per subsystem — pid 0 "cores" with one thread per core, pid 1
// "islands" (WAL activity), pid 2 "devices", pid 3 "planner" — because a
// per-process grouping is what Perfetto renders as separate track groups.
//
// Events are emitted in a fixed order (metadata, then ring groups in tracer
// order, then decisions) and every struct below has fixed fields, so the
// exported bytes are a pure function of the recorded spans: bit-identical
// across runs, hosts and harness parallelism.

const (
	pidCores   = 0
	pidIslands = 1
	pidDevices = 2
	pidPlanner = 3
)

// completeEvent is a ph:"X" duration event.
type completeEvent struct {
	Name string    `json:"name"`
	Ph   string    `json:"ph"`
	Ts   jsonMicro `json:"ts"`
	Dur  jsonMicro `json:"dur"`
	Pid  int       `json:"pid"`
	Tid  int       `json:"tid"`
	Args spanArgs  `json:"args"`
}

// instantEvent is a ph:"i" instant event (zero-duration spans, decisions).
type instantEvent struct {
	Name string    `json:"name"`
	Ph   string    `json:"ph"`
	Ts   jsonMicro `json:"ts"`
	S    string    `json:"s"`
	Pid  int       `json:"pid"`
	Tid  int       `json:"tid"`
	Args any       `json:"args"`
}

// metaEvent is a ph:"M" metadata event naming a process or thread.
type metaEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	Args metaArgs `json:"args"`
}

type metaArgs struct {
	Name string `json:"name"`
}

type spanArgs struct {
	Class  string `json:"class,omitempty"`
	Worker int32  `json:"worker"`
	Core   int32  `json:"core"`
	Site   int32  `json:"site"`
	Epoch  uint32 `json:"epoch"`
	Arg    int64  `json:"arg"`
}

type decisionArgs struct {
	Current    string       `json:"current"`
	Best       string       `json:"best"`
	Verdict    string       `json:"verdict"`
	Multisite  float64      `json:"multisite_share"`
	Candidates []LevelScore `json:"candidates"`
}

// jsonMicro formats virtual nanoseconds as trace microseconds with exactly
// three decimals, so the byte representation is independent of float
// shortest-form printing.
type jsonMicro int64

func (m jsonMicro) MarshalJSON() ([]byte, error) {
	n := int64(m)
	if n < 0 { // virtual time never goes negative; stay well-defined anyway
		n = 0
	}
	return []byte(fmt.Sprintf("%d.%03d", n/1000, n%1000)), nil
}

// ExportChromeTrace renders the tracer's rings and decision log as a Chrome
// trace-event JSON document. A nil tracer exports an empty (but valid) trace.
func (t *Tracer) ExportChromeTrace() []byte {
	var events []any

	events = append(events,
		metaEvent{Name: "process_name", Ph: "M", Pid: pidCores, Args: metaArgs{Name: "cores"}},
		metaEvent{Name: "process_name", Ph: "M", Pid: pidIslands, Args: metaArgs{Name: "islands"}},
		metaEvent{Name: "process_name", Ph: "M", Pid: pidDevices, Args: metaArgs{Name: "devices"}},
		metaEvent{Name: "process_name", Ph: "M", Pid: pidPlanner, Args: metaArgs{Name: "planner"}},
	)
	if t != nil {
		for i := range t.workers {
			events = append(events, metaEvent{Name: "thread_name", Ph: "M", Pid: pidCores, Tid: i,
				Args: metaArgs{Name: fmt.Sprintf("core %d", i)}})
		}
		for i := range t.islands {
			events = append(events, metaEvent{Name: "thread_name", Ph: "M", Pid: pidIslands, Tid: i,
				Args: metaArgs{Name: fmt.Sprintf("island %d", i)}})
		}
		for i := range t.devices {
			events = append(events, metaEvent{Name: "thread_name", Ph: "M", Pid: pidDevices, Tid: i,
				Args: metaArgs{Name: fmt.Sprintf("device %d", i)}})
		}
	}
	events = append(events, metaEvent{Name: "thread_name", Ph: "M", Pid: pidPlanner, Tid: 0,
		Args: metaArgs{Name: "granularity planner"}})

	emit := func(group string, idx int, r *Ring) {
		pid, tid := pidCores, idx
		switch group {
		case "island":
			pid = pidIslands
		case "device":
			pid = pidDevices
		case "planner":
			pid = pidPlanner
		}
		spans := r.Snapshot()
		// Worker rings are filled by one goroutine in virtual-time order per
		// core but cores interleave; island and planner rings mix producers.
		// Sort by (start, core, kind, arg) so the byte stream does not depend
		// on goroutine interleaving.
		sort.SliceStable(spans, func(i, j int) bool {
			a, b := spans[i], spans[j]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			if a.Core != b.Core {
				return a.Core < b.Core
			}
			if a.Kind != b.Kind {
				return a.Kind < b.Kind
			}
			return a.Arg < b.Arg
		})
		for _, sp := range spans {
			eTid := tid
			if group == "worker" {
				eTid = int(sp.Core)
			}
			args := spanArgs{Class: sp.Class, Worker: sp.Worker, Core: sp.Core,
				Site: sp.Site, Epoch: sp.Epoch, Arg: sp.Arg}
			if sp.Dur > 0 {
				events = append(events, completeEvent{Name: sp.Kind.String(), Ph: "X",
					Ts: jsonMicro(sp.Start), Dur: jsonMicro(sp.Dur), Pid: pid, Tid: eTid, Args: args})
			} else {
				events = append(events, instantEvent{Name: sp.Kind.String(), Ph: "i", S: "t",
					Ts: jsonMicro(sp.Start), Pid: pid, Tid: eTid, Args: args})
			}
		}
	}
	t.rings(emit)

	for _, d := range t.Decisions() {
		events = append(events, instantEvent{Name: "planner-decision", Ph: "i", S: "p",
			Ts: jsonMicro(d.At), Pid: pidPlanner, Tid: 0,
			Args: decisionArgs{Current: d.Current, Best: d.Best, Verdict: d.Verdict,
				Multisite: d.Multisite, Candidates: d.Candidates}})
	}

	var buf bytes.Buffer
	buf.WriteString("{\"traceEvents\":[")
	for i, ev := range events {
		if i > 0 {
			buf.WriteByte(',')
		}
		b, err := json.Marshal(ev)
		if err != nil {
			// Fixed-field structs of primitives cannot fail to marshal.
			panic(fmt.Sprintf("obs: marshal trace event: %v", err))
		}
		buf.Write(b)
	}
	buf.WriteString("],\"displayTimeUnit\":\"ns\"}\n")
	return buf.Bytes()
}

// MetricsCSVHeader is the first line of the metrics CSV.
const MetricsCSVHeader = "at_ns,epoch,level,tps,committed,aborted,conflict_rate,multisite_share,coalesce_ratio,device_backlog_ns,island_tps"

// ExportMetricsCSV renders the planner-boundary metrics series as CSV, one
// row per sample. IslandTPS is ';'-joined inside the last column. Floats are
// printed with %.6f so the bytes are deterministic.
func (t *Tracer) ExportMetricsCSV() []byte {
	var buf bytes.Buffer
	buf.WriteString(MetricsCSVHeader)
	buf.WriteByte('\n')
	for _, s := range t.Samples() {
		island := make([]string, len(s.IslandTPS))
		for i, v := range s.IslandTPS {
			island[i] = strconv.FormatFloat(v, 'f', 6, 64)
		}
		fmt.Fprintf(&buf, "%d,%d,%s,%.6f,%d,%d,%.6f,%.6f,%.6f,%.6f,%s\n",
			int64(s.At), s.Epoch, s.Level, s.TPS, s.Committed, s.Aborted,
			s.ConflictRate, s.MultisiteShare, s.CoalesceRatio, s.DeviceBacklogNs,
			strings.Join(island, ";"))
	}
	return buf.Bytes()
}

// ValidateChromeTrace checks data against the trace-event contract the
// exporter promises: a traceEvents array whose entries all carry a name, a
// known phase, and — for duration and instant events — a non-negative
// timestamp (plus a non-negative duration for ph:"X"). It is the shared
// schema check behind `make bench-trace` and the exporter tests.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == nil || *ev.Name == "" {
			return fmt.Errorf("obs: trace event %d has no name", i)
		}
		if ev.Ph == nil {
			return fmt.Errorf("obs: trace event %d (%s) has no phase", i, *ev.Name)
		}
		switch *ev.Ph {
		case "M":
			// Metadata events carry no timestamp.
		case "X":
			if ev.Ts == nil || *ev.Ts < 0 {
				return fmt.Errorf("obs: trace event %d (%s) has a missing or negative ts", i, *ev.Name)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("obs: trace event %d (%s) has a missing or negative dur", i, *ev.Name)
			}
		case "i":
			if ev.Ts == nil || *ev.Ts < 0 {
				return fmt.Errorf("obs: trace event %d (%s) has a missing or negative ts", i, *ev.Name)
			}
		default:
			return fmt.Errorf("obs: trace event %d (%s) has unknown phase %q", i, *ev.Name, *ev.Ph)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("obs: trace event %d (%s) is missing pid/tid", i, *ev.Name)
		}
	}
	return nil
}

// ValidateMetricsCSV checks the CSV header and that every row has the
// header's column count with a non-decreasing at_ns first column.
func ValidateMetricsCSV(data []byte) error {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != MetricsCSVHeader {
		return fmt.Errorf("obs: metrics CSV header mismatch")
	}
	wantCols := strings.Count(MetricsCSVHeader, ",") + 1
	var prev int64 = -1
	for i, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != wantCols {
			return fmt.Errorf("obs: metrics CSV row %d has %d columns, want %d", i+1, len(cols), wantCols)
		}
		at, err := strconv.ParseInt(cols[0], 10, 64)
		if err != nil {
			return fmt.Errorf("obs: metrics CSV row %d at_ns: %w", i+1, err)
		}
		if at < prev {
			return fmt.Errorf("obs: metrics CSV row %d at_ns went backwards (%d < %d)", i+1, at, prev)
		}
		prev = at
	}
	return nil
}

func ringViolation(group string, idx int, what string, held, attempts, dropped int64) string {
	return fmt.Sprintf("%s ring %d: %s (held=%d attempts=%d dropped=%d)", group, idx, what, held, attempts, dropped)
}
