// Package storage implements the physical storage manager that every engine
// configuration shares: tables stored in multi-rooted B-trees, per-partition
// data placement on memory nodes, and row operations that charge NUMA-aware
// virtual costs for index traversal and data access. It is the stand-in for
// Shore-MT, the open-source storage manager the paper prototypes ATraPos on.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"atrapos/internal/btree"
	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
)

// ErrNotFound is returned when a key does not exist in a table.
var ErrNotFound = errors.New("storage: key not found")

// ErrDuplicate is returned when inserting a key that already exists.
var ErrDuplicate = errors.New("storage: duplicate key")

// Manager owns the catalog and the physical tables.
type Manager struct {
	domain  *numa.Domain
	catalog *schema.Catalog

	mu     sync.RWMutex
	tables map[string]*Table
}

// NewManager creates an empty storage manager over the given NUMA domain.
func NewManager(domain *numa.Domain) *Manager {
	return &Manager{
		domain:  domain,
		catalog: schema.NewCatalog(),
		tables:  make(map[string]*Table),
	}
}

// Domain returns the NUMA domain the manager charges costs against.
func (m *Manager) Domain() *numa.Domain { return m.domain }

// Catalog returns the schema catalog.
func (m *Manager) Catalog() *schema.Catalog { return m.catalog }

// CreateTable registers def and creates its physical table with the given
// partition lower bounds and per-partition memory homes. If homes is nil all
// partitions are homed on socket 0; if it is shorter than bounds the last
// home is repeated.
func (m *Manager) CreateTable(def *schema.Table, bounds []schema.Key, homes []topology.SocketID) (*Table, error) {
	if err := m.catalog.Add(def); err != nil {
		return nil, err
	}
	if len(bounds) == 0 {
		bounds = []schema.Key{0}
	}
	tree, err := btree.NewMultiRooted(bounds)
	if err != nil {
		return nil, err
	}
	t := &Table{
		def:    def,
		domain: m.domain,
		tree:   tree,
		homes:  normalizeHomes(homes, len(bounds)),
	}
	m.mu.Lock()
	m.tables[def.Name] = t
	m.mu.Unlock()
	return t, nil
}

func normalizeHomes(homes []topology.SocketID, n int) []topology.SocketID {
	out := make([]topology.SocketID, n)
	for i := range out {
		switch {
		case i < len(homes):
			out[i] = homes[i]
		case len(homes) > 0:
			out[i] = homes[len(homes)-1]
		default:
			out[i] = 0
		}
	}
	return out
}

// Table returns the physical table with the given name.
func (m *Manager) Table(name string) (*Table, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", name)
	}
	return t, nil
}

// Tables returns all physical tables sorted by name.
func (m *Manager) Tables() []*Table {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Table, 0, len(m.tables))
	for _, t := range m.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].def.Name < out[j].def.Name })
	return out
}

// TotalRows returns the total number of rows across all tables.
func (m *Manager) TotalRows() int {
	total := 0
	for _, t := range m.Tables() {
		total += t.Len()
	}
	return total
}

// Table is one physical table: a multi-rooted B-tree plus the memory node
// each partition's data lives on. All row operations return the virtual cost
// of the access as observed from the caller's core: the socket component of
// the distance prices cross-socket DRAM pulls and, on hierarchical machines,
// the die component prices the on-package hop to the memory-controller die.
type Table struct {
	def    *schema.Table
	domain *numa.Domain
	tree   *btree.MultiRooted

	mu    sync.RWMutex
	homes []topology.SocketID

	// avgRowBytes tracks an approximate row size for traffic accounting.
	avgRowBytes int
}

// Definition returns the table's schema definition.
func (t *Table) Definition() *schema.Table { return t.def }

// Name returns the table name.
func (t *Table) Name() string { return t.def.Name }

// Len returns the number of rows.
func (t *Table) Len() int { return t.tree.Len() }

// NumPartitions returns the number of physical partitions.
func (t *Table) NumPartitions() int { return t.tree.NumPartitions() }

// Bounds returns the partition lower bounds.
func (t *Table) Bounds() []schema.Key { return t.tree.Bounds() }

// PartitionSizes returns the number of rows in each partition.
func (t *Table) PartitionSizes() []int { return t.tree.PartitionSizes() }

// PartitionFor returns the index of the partition owning key.
func (t *Table) PartitionFor(key schema.Key) int { return t.tree.PartitionFor(key) }

// Home returns the memory node of partition i.
func (t *Table) Home(i int) topology.SocketID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.homes) {
		return 0
	}
	return t.homes[i]
}

// SetHome moves partition i's data to memory node s. (The data itself is in
// Go heap memory; only the cost model placement changes, which is the aspect
// the experiments measure.)
func (t *Table) SetHome(i int, s topology.SocketID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i < 0 || i >= len(t.homes) {
		return fmt.Errorf("storage: partition %d out of range [0,%d)", i, len(t.homes))
	}
	t.homes[i] = s
	return nil
}

// Homes returns a copy of the per-partition memory nodes.
func (t *Table) Homes() []topology.SocketID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]topology.SocketID(nil), t.homes...)
}

// indexProbeCost models a root-to-leaf B-tree traversal within a partition
// whose data lives on memory node home, performed from core from. The row
// payload spans rowBytes/64 cache lines, each of which pays the DRAM
// placement cost; on top of that comes the per-row CPU work, scaled by the
// executing core's speed (an efficiency core takes proportionally longer).
func (t *Table) indexProbeCost(from topology.CoreID, home topology.SocketID, rowBytes int) numa.Cost {
	lines := numa.Cost(rowBytes / 64)
	if lines < 1 {
		lines = 1
	}
	return t.domain.RowWorkAt(from) + 2*t.domain.Model.LocalAccess + lines*t.domain.CoreDRAMCost(from, home)
}

func (t *Table) accessCost(from topology.CoreID, key schema.Key, rowBytes int) numa.Cost {
	p := t.tree.PartitionFor(key)
	home := t.Home(p)
	t.domain.Top.RecordTraffic(t.domain.Top.SocketOf(from), home, int64(rowBytes))
	return t.indexProbeCost(from, home, rowBytes)
}

// Read returns the row stored under key.
func (t *Table) Read(from topology.CoreID, key schema.Key) (schema.Row, numa.Cost, error) {
	cost := t.accessCost(from, key, t.rowBytes())
	row, ok := t.tree.Get(key)
	if !ok {
		return nil, cost, ErrNotFound
	}
	return row, cost, nil
}

// Insert adds a new row under key; it fails with ErrDuplicate if the key exists.
func (t *Table) Insert(from topology.CoreID, key schema.Key, row schema.Row) (numa.Cost, error) {
	cost := t.accessCost(from, key, row.Size())
	if _, exists := t.tree.Get(key); exists {
		return cost, ErrDuplicate
	}
	t.tree.Insert(key, row)
	t.observeRowSize(row.Size())
	return cost + t.domain.Model.LocalAccess, nil
}

// Update applies fn to the row under key.
func (t *Table) Update(from topology.CoreID, key schema.Key, fn func(schema.Row) schema.Row) (numa.Cost, error) {
	cost := t.accessCost(from, key, t.rowBytes())
	if !t.tree.Update(key, fn) {
		return cost, ErrNotFound
	}
	return cost + t.domain.Model.LocalAccess, nil
}

// Delete removes the row under key.
func (t *Table) Delete(from topology.CoreID, key schema.Key) (numa.Cost, error) {
	cost := t.accessCost(from, key, t.rowBytes())
	if !t.tree.Delete(key) {
		return cost, ErrNotFound
	}
	return cost, nil
}

// Scan visits rows in [from, to) in key order and returns the access cost,
// charged per partition touched.
func (t *Table) Scan(caller topology.CoreID, from, to schema.Key, fn func(schema.Key, schema.Row) bool) numa.Cost {
	var cost numa.Cost
	start := t.tree.PartitionFor(from)
	endKey := to
	if endKey > 0 {
		endKey--
	}
	end := t.tree.PartitionFor(endKey)
	for p := start; p <= end && p < t.tree.NumPartitions(); p++ {
		cost += t.indexProbeCost(caller, t.Home(p), t.rowBytes())
	}
	rows := 0
	t.tree.Scan(from, to, func(k schema.Key, r schema.Row) bool {
		rows++
		return fn(k, r)
	})
	cost += numa.Cost(rows) * t.domain.Model.LocalAccess
	return cost
}

// Load bulk-inserts rows without cost accounting; it is used to populate
// datasets before an experiment starts.
func (t *Table) Load(rows []schema.Row) error {
	for _, r := range rows {
		key, err := schema.RowKey(t.def, r)
		if err != nil {
			return err
		}
		t.tree.Insert(key, r)
		t.observeRowSize(r.Size())
	}
	return nil
}

// LoadFunc generates and inserts n rows produced by gen(i).
func (t *Table) LoadFunc(n int, gen func(i int) schema.Row) error {
	for i := 0; i < n; i++ {
		r := gen(i)
		key, err := schema.RowKey(t.def, r)
		if err != nil {
			return err
		}
		t.tree.Insert(key, r)
		t.observeRowSize(r.Size())
	}
	return nil
}

func (t *Table) observeRowSize(size int) {
	t.mu.Lock()
	if t.avgRowBytes == 0 {
		t.avgRowBytes = size
	} else {
		t.avgRowBytes = (t.avgRowBytes*15 + size) / 16
	}
	t.mu.Unlock()
}

func (t *Table) rowBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.avgRowBytes == 0 {
		return 64
	}
	return t.avgRowBytes
}

// RowBytes returns the observed average row size in bytes.
func (t *Table) RowBytes() int { return t.rowBytes() }

// Split divides the partition owning key at into two and homes the new
// partition on the same node as the original. It returns the index of the new
// partition and the number of rows that moved into it.
func (t *Table) Split(at schema.Key) (int, int, error) {
	oldIdx := t.tree.PartitionFor(at)
	newIdx, err := t.tree.Split(at)
	if err != nil {
		return 0, 0, err
	}
	t.mu.Lock()
	home := t.homes[oldIdx]
	t.homes = append(t.homes, 0)
	copy(t.homes[newIdx+1:], t.homes[newIdx:])
	t.homes[newIdx] = home
	t.mu.Unlock()
	moved := t.tree.PartitionSizes()[newIdx]
	return newIdx, moved, nil
}

// Merge combines partitions i and i+1; the merged partition keeps partition
// i's memory home. It returns the number of rows that moved.
func (t *Table) Merge(i int) (int, error) {
	sizes := t.tree.PartitionSizes()
	if i < 0 || i+1 >= len(sizes) {
		return 0, fmt.Errorf("storage: cannot merge partition %d of %d", i, len(sizes))
	}
	moved := sizes[i+1]
	if err := t.tree.Merge(i); err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.homes = append(t.homes[:i+1], t.homes[i+2:]...)
	t.mu.Unlock()
	return moved, nil
}

// Repartition rebuilds the table around new bounds and homes. It returns the
// number of rows whose partition changed.
func (t *Table) Repartition(bounds []schema.Key, homes []topology.SocketID) (int, error) {
	moved, err := t.tree.Repartition(bounds)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.homes = normalizeHomes(homes, len(bounds))
	t.mu.Unlock()
	return moved, nil
}
