package storage

import (
	"errors"
	"testing"

	"atrapos/internal/btree"
	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
)

func testManager(t *testing.T) *Manager {
	t.Helper()
	top := topology.MustNew(topology.Config{Sockets: 4, CoresPerSocket: 2})
	return NewManager(numa.MustNewDomain(top, numa.DefaultCostModel()))
}

func accountsDef() *schema.Table {
	return &schema.Table{
		Name: "accounts",
		Columns: []schema.Column{
			{Name: "id", Type: schema.Int64},
			{Name: "balance", Type: schema.Int64},
		},
		PrimaryKey: []string{"id"},
	}
}

func TestCreateTableAndCatalog(t *testing.T) {
	m := testManager(t)
	tbl, err := m.CreateTable(accountsDef(), btree.UniformBounds(1000, 4), []topology.SocketID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name() != "accounts" || tbl.NumPartitions() != 4 {
		t.Errorf("table %s has %d partitions", tbl.Name(), tbl.NumPartitions())
	}
	if _, err := m.CreateTable(accountsDef(), nil, nil); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := m.CreateTable(&schema.Table{Name: "bad"}, nil, nil); err == nil {
		t.Error("invalid definition should fail")
	}
	if _, err := m.CreateTable(&schema.Table{
		Name:       "badbounds",
		Columns:    []schema.Column{{Name: "id", Type: schema.Int64}},
		PrimaryKey: []string{"id"},
	}, []schema.Key{5}, nil); err == nil {
		t.Error("invalid bounds should fail")
	}
	if _, err := m.Table("accounts"); err != nil {
		t.Error(err)
	}
	if _, err := m.Table("nope"); err == nil {
		t.Error("unknown table should fail")
	}
	if len(m.Tables()) != 1 {
		t.Errorf("Tables() returned %d", len(m.Tables()))
	}
	if m.Domain() == nil || m.Catalog() == nil {
		t.Error("nil accessors")
	}
	// Default bounds and homes.
	def2 := accountsDef()
	def2.Name = "accounts2"
	tbl2, err := m.CreateTable(def2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.NumPartitions() != 1 || tbl2.Home(0) != 0 {
		t.Errorf("default table has %d partitions homed on %d", tbl2.NumPartitions(), tbl2.Home(0))
	}
}

func TestRowOperations(t *testing.T) {
	m := testManager(t)
	tbl, _ := m.CreateTable(accountsDef(), btree.UniformBounds(100, 4), []topology.SocketID{0, 1, 2, 3})

	key := schema.KeyFromInt(10)
	row := schema.Row{int64(10), int64(500)}

	cost, err := tbl.Insert(0, key, row)
	if err != nil || cost <= 0 {
		t.Fatalf("Insert cost %d err %v", cost, err)
	}
	if _, err := tbl.Insert(0, key, row); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate insert err = %v", err)
	}
	got, cost, err := tbl.Read(0, key)
	if err != nil || cost <= 0 {
		t.Fatalf("Read cost %d err %v", cost, err)
	}
	if got[1].(int64) != 500 {
		t.Errorf("Read returned %v", got)
	}
	if _, _, err := tbl.Read(0, schema.KeyFromInt(55)); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing read err = %v", err)
	}
	if _, err := tbl.Update(0, key, func(r schema.Row) schema.Row {
		return schema.Row{r[0], r[1].(int64) + 1}
	}); err != nil {
		t.Fatal(err)
	}
	got, _, _ = tbl.Read(0, key)
	if got[1].(int64) != 501 {
		t.Errorf("update not applied: %v", got)
	}
	if _, err := tbl.Update(0, schema.KeyFromInt(55), func(r schema.Row) schema.Row { return r }); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing update err = %v", err)
	}
	if _, err := tbl.Delete(0, key); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Delete(0, key); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	if m.TotalRows() != 0 {
		t.Errorf("TotalRows = %d", m.TotalRows())
	}
}

func TestRemoteAccessCostsMore(t *testing.T) {
	m := testManager(t)
	tbl, _ := m.CreateTable(accountsDef(), btree.UniformBounds(100, 4), []topology.SocketID{0, 1, 2, 3})
	key := schema.KeyFromInt(90) // partition 3, homed on socket 3
	local := topology.CoreID(6)  // a core on socket 3 (2 cores per socket)
	tbl.Insert(local, key, schema.Row{int64(90), int64(1)})

	_, localCost, err := tbl.Read(local, key)
	if err != nil {
		t.Fatal(err)
	}
	_, remoteCost, err := tbl.Read(0, key)
	if err != nil {
		t.Fatal(err)
	}
	if remoteCost <= localCost {
		t.Errorf("remote read cost %d should exceed local %d", remoteCost, localCost)
	}
	// Traffic counters observed the accesses.
	if m.Domain().Top.Traffic().InterconnectBytes == 0 {
		t.Error("remote read should have recorded interconnect traffic")
	}
}

func TestLoadAndScan(t *testing.T) {
	m := testManager(t)
	tbl, _ := m.CreateTable(accountsDef(), btree.UniformBounds(1000, 4), nil)
	if err := tbl.LoadFunc(1000, func(i int) schema.Row {
		return schema.Row{int64(i), int64(i * 2)}
	}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1000 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if tbl.RowBytes() == 0 {
		t.Error("RowBytes should be observed after load")
	}
	var visited int
	cost := tbl.Scan(0, schema.KeyFromInt(100), schema.KeyFromInt(200), func(k schema.Key, r schema.Row) bool {
		visited++
		return true
	})
	if visited != 100 || cost <= 0 {
		t.Errorf("scan visited %d rows at cost %d", visited, cost)
	}
	// Load with explicit rows and a bad row.
	if err := tbl.Load([]schema.Row{{int64(2000), int64(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Load([]schema.Row{{1.5, int64(1)}}); err == nil {
		t.Error("bad primary key type should fail")
	}
	if err := tbl.LoadFunc(1, func(int) schema.Row { return schema.Row{2.5, int64(1)} }); err == nil {
		t.Error("bad generated key should fail")
	}
}

func TestHomes(t *testing.T) {
	m := testManager(t)
	tbl, _ := m.CreateTable(accountsDef(), btree.UniformBounds(100, 2), []topology.SocketID{1})
	// homes shorter than bounds: last value repeated.
	if tbl.Home(0) != 1 || tbl.Home(1) != 1 {
		t.Errorf("homes = %v", tbl.Homes())
	}
	if err := tbl.SetHome(1, 3); err != nil {
		t.Fatal(err)
	}
	if tbl.Home(1) != 3 {
		t.Error("SetHome not applied")
	}
	if err := tbl.SetHome(9, 1); err == nil {
		t.Error("out of range SetHome should fail")
	}
	if tbl.Home(9) != 0 {
		t.Error("out of range Home should return 0")
	}
	if len(tbl.Homes()) != 2 {
		t.Errorf("Homes = %v", tbl.Homes())
	}
	if tbl.Definition().Name != "accounts" {
		t.Error("Definition accessor mismatch")
	}
}

func TestSplitMergeRepartition(t *testing.T) {
	m := testManager(t)
	tbl, _ := m.CreateTable(accountsDef(), []schema.Key{0}, []topology.SocketID{2})
	tbl.LoadFunc(100, func(i int) schema.Row { return schema.Row{int64(i), int64(i)} })

	newIdx, moved, err := tbl.Split(schema.KeyFromInt(50))
	if err != nil {
		t.Fatal(err)
	}
	if newIdx != 1 || moved != 50 {
		t.Errorf("Split -> idx %d moved %d", newIdx, moved)
	}
	if tbl.Home(1) != 2 {
		t.Errorf("new partition should inherit home 2, got %d", tbl.Home(1))
	}
	if _, _, err := tbl.Split(schema.KeyFromInt(50)); err == nil {
		t.Error("split at existing bound should fail")
	}

	movedBack, err := tbl.Merge(0)
	if err != nil {
		t.Fatal(err)
	}
	if movedBack != 50 || tbl.NumPartitions() != 1 {
		t.Errorf("Merge moved %d rows, %d partitions left", movedBack, tbl.NumPartitions())
	}
	if _, err := tbl.Merge(0); err == nil {
		t.Error("merging the only partition should fail")
	}
	if _, err := tbl.Merge(-1); err == nil {
		t.Error("negative merge index should fail")
	}

	moved, err = tbl.Repartition(btree.UniformBounds(100, 5), []topology.SocketID{0, 1, 2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumPartitions() != 5 || tbl.Len() != 100 {
		t.Errorf("after repartition: %d partitions, %d rows", tbl.NumPartitions(), tbl.Len())
	}
	if tbl.Home(3) != 3 {
		t.Errorf("home 3 = %d", tbl.Home(3))
	}
	if _, err := tbl.Repartition(nil, nil); err == nil {
		t.Error("invalid repartition bounds should fail")
	}
	sizes := tbl.PartitionSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 100 {
		t.Errorf("partition sizes sum to %d", total)
	}
	if tbl.PartitionFor(schema.KeyFromInt(99)) != 4 {
		t.Errorf("PartitionFor(99) = %d", tbl.PartitionFor(schema.KeyFromInt(99)))
	}
	if len(tbl.Bounds()) != 5 {
		t.Errorf("Bounds = %v", tbl.Bounds())
	}
	_ = moved
}
