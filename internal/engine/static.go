package engine

import (
	"atrapos/internal/core"
	"atrapos/internal/numa"
	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/workload"
)

// DerivePlacement computes a workload- and hardware-aware placement from the
// static information ATraPos extracts before running: the transaction flow
// graphs and the class mix. It synthesizes the workload trace the cost model
// expects (per-table loads and synchronization-point signatures) and runs the
// same two-step search the adaptive mechanism uses at run time — Algorithm 1
// to balance resource utilization, and, when hardwareAware is set, Algorithm 2
// to co-locate the partitions that synchronize with each other. With
// hardwareAware false the placement step is skipped, which is the
// hardware-oblivious "Workload-aware" strategy of Figure 6.
func DerivePlacement(wl *workload.Workload, top *topology.Topology, hardwareAware bool) *partition.Placement {
	domain := numa.MustNewDomain(top, numa.DefaultCostModel())
	naive := partition.NaivePerCore(top, wl.TableSpecs())
	maxKeys := make(map[string]schema.Key, len(wl.Tables))
	for _, spec := range wl.TableSpecs() {
		maxKeys[spec.Name] = schema.KeyFromInt(spec.MaxKey)
	}
	planner := core.NewPlanner(core.CostModel{Domain: domain}, core.DefaultSubPartitions)

	stats := syntheticStats(wl, naive, maxKeys)
	partitioned := planner.ChoosePartitioning(naive, stats, maxKeys)
	if err := partitioned.Validate(); err != nil {
		return naive
	}
	if !hardwareAware {
		return partitioned
	}
	// Re-derive the synchronization signatures against the new partition
	// boundaries before optimizing the placement.
	stats2 := syntheticStats(wl, partitioned, maxKeys)
	placed := planner.ChoosePlacement(partitioned, stats2)
	if err := placed.Validate(); err != nil {
		return partitioned
	}
	return placed
}

// syntheticStats builds the Stats the cost model consumes from the static
// workload description: every transaction class contributes load to the
// tables its flow graph touches (uniformly over the key space, weighted by
// the class mix and the expected action counts), and every flow-graph
// synchronization point contributes signatures between the partitions that
// own aligned key fractions.
func syntheticStats(wl *workload.Workload, p *partition.Placement, maxKeys map[string]schema.Key) *core.Stats {
	monitor := core.NewMonitor(core.DefaultSubPartitions)
	monitor.RegisterPlacement(p, maxKeys)

	mix := wl.ClassWeights(0)
	var totalMix float64
	for _, w := range mix {
		if w > 0 {
			totalMix += w
		}
	}
	if totalMix <= 0 {
		totalMix = 1
	}
	const samples = 64
	for class, share := range mix {
		if share <= 0 {
			continue
		}
		g, ok := wl.Graph(class)
		if !ok {
			continue
		}
		weight := share / totalMix
		for _, node := range g.Nodes {
			spec, ok := wl.TableDef(node.Table)
			if !ok {
				continue
			}
			expected := float64(node.MinCount+node.MaxCount) / 2
			cost := vclock.Nanos(weight * expected * 1000)
			if cost <= 0 {
				cost = 1
			}
			for k := 0; k < samples; k++ {
				key := schema.KeyFromInt(spec.MaxKey * int64(2*k+1) / int64(2*samples))
				monitor.RecordAction(node.Table, key, cost)
			}
		}
		for _, sp := range g.Syncs {
			for k := 0; k < samples; k++ {
				frac := float64(2*k+1) / float64(2*samples)
				var refs []core.PartitionRef
				for _, ni := range sp.Nodes {
					if ni < 0 || ni >= len(g.Nodes) {
						continue
					}
					table := g.Nodes[ni].Table
					spec, ok := wl.TableDef(table)
					if !ok {
						continue
					}
					tp, ok := p.Table(table)
					if !ok {
						continue
					}
					key := schema.KeyFromInt(int64(float64(spec.MaxKey) * frac))
					refs = append(refs, core.PartitionRef{Table: table, Partition: tp.PartitionFor(key)})
				}
				if len(refs) > 1 {
					// Weight frequent classes more by recording them more often.
					times := int(weight*10) + 1
					for i := 0; i < times; i++ {
						monitor.RecordSync(refs, sp.Bytes)
					}
				}
			}
		}
	}
	return monitor.Aggregate()
}
