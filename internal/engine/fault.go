package engine

import (
	"errors"
	"fmt"

	"atrapos/internal/fault"
	"atrapos/internal/schema"
	"atrapos/internal/storage"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
)

// compileFaults validates a declarative fault schedule against this engine's
// hardware and compiles it into run events. The schedule was already
// validated against a machine descriptor at construction; this re-check
// catches a schedule built for a different machine shape than the engine it
// was attached to.
func (e *Engine) compileFaults(s *fault.Schedule, workers int) ([]Event, error) {
	m := s.Machine()
	top := e.cfg.Topology
	if m.Sockets != top.Sockets() {
		return nil, fmt.Errorf("engine: fault schedule targets a %d-socket machine, engine runs on %d sockets", m.Sockets, top.Sockets())
	}
	ndev := 0
	if e.devices != nil {
		ndev = e.devices.NumDevices()
	}
	if m.Devices != ndev {
		return nil, fmt.Errorf("engine: fault schedule targets %d log devices, engine has %d", m.Devices, ndev)
	}
	if s.HasCrash() {
		// The drill drops table state from the event-firing worker; concurrent
		// workers would race it mid-transaction, and the committed-state
		// equivalence the drill asserts is only defined for serial runs (which
		// never abort, so the fault-free reference is deterministic).
		if workers != 1 {
			return nil, fmt.Errorf("engine: a crash-and-recover drill requires a serial run (Workers=1), got %d workers", workers)
		}
		// A bounded log ring drops old records; recovery from it would be
		// silently partial, so the drill demands full retention.
		if e.cfg.LogConfig.Keep != 0 {
			return nil, fmt.Errorf("engine: a crash-and-recover drill requires unbounded log retention (LogConfig.Keep=0), got Keep=%d", e.cfg.LogConfig.Keep)
		}
	}
	out := make([]Event, 0, s.Len())
	for _, ev := range s.Events() {
		ev := ev
		var do func(*Engine)
		switch ev.Kind {
		case fault.KindFailSocket:
			do = func(e *Engine) { _ = e.FailSocket(ev.Socket) }
		case fault.KindRestoreSocket:
			do = func(e *Engine) { _ = e.RestoreSocket(ev.Socket) }
		case fault.KindFailDevice:
			do = func(e *Engine) { _ = e.FailDevice(ev.Device) }
		case fault.KindDegradeDevice:
			do = func(e *Engine) { _ = e.DegradeDevice(ev.Device, ev.LatencyFactor) }
		case fault.KindCrashAndRecover:
			do = func(e *Engine) { _, _ = e.CrashAndRecover() }
		default:
			return nil, fmt.Errorf("engine: fault schedule has unknown event kind %v", ev.Kind)
		}
		out = append(out, Event{At: ev.At, Do: do})
	}
	return out, nil
}

// crashLogs returns every write-ahead log the engine currently owns: the
// per-island logs of the installed wiring for shared-nothing designs, the
// central log otherwise.
func (e *Engine) crashLogs() []*wal.CentralLog {
	if snap := e.state.snapshot(); snap != nil && snap.wiring != nil && snap.wiring.logs != nil {
		logs := snap.wiring.logs
		out := make([]*wal.CentralLog, logs.NumLogs())
		for i := range out {
			out[i] = logs.Log(i)
		}
		return out
	}
	if cl, ok := e.log.(*wal.CentralLog); ok {
		return []*wal.CentralLog{cl}
	}
	return nil
}

// logStats sums the activity counters of every log the engine currently
// owns, plus the counters of logs retired by online re-wirings: the total is
// cumulative over the engine's whole history, so Result.Log deltas never
// under-report because a level change rebuilt a log mid-run.
func (e *Engine) logStats() wal.Stats {
	var s wal.Stats
	for _, l := range e.crashLogs() {
		s = s.Add(l.Stats())
	}
	e.retiredMu.Lock()
	s = s.Add(e.retiredLogStats)
	e.retiredMu.Unlock()
	return s
}

// absorbRetiredLogs folds a freshly-derived wiring's dropped-log counters
// into the engine's cumulative account. Called exactly when the wiring is
// installed — a derived-but-abandoned wiring (a liveness race bail-out) must
// not retire anything, or the totals would double-count logs that were never
// actually dropped.
func (e *Engine) absorbRetiredLogs(w *islandWiring) {
	if w == nil || w.retiredLogStats == (wal.Stats{}) {
		return
	}
	e.retiredMu.Lock()
	e.retiredLogStats = e.retiredLogStats.Add(w.retiredLogStats)
	e.retiredMu.Unlock()
}

// drainLogs forces every owned log's write-combining accumulator out (see
// wal.CentralLog.Drain): buffered net deltas and staged records hit the
// retained rings and everything appended so far becomes durable. Run end and
// the crash drill call it so the final-flush guarantee holds; without
// coalescing it is a no-op.
func (e *Engine) drainLogs(now vclock.Nanos) {
	for _, l := range e.crashLogs() {
		l.Drain(now)
	}
}

// tableStore adapts a storage table to the wal.RowStore recovery interface:
// redo applies row images without cost accounting (recovery replays history,
// it does not re-execute it).
type tableStore struct{ t *storage.Table }

func (s tableStore) ApplyInsert(key schema.Key, row schema.Row) {
	if _, err := s.t.Insert(0, key, row); errors.Is(err, storage.ErrDuplicate) {
		_, _ = s.t.Update(0, key, func(schema.Row) schema.Row { return row })
	}
}

func (s tableStore) ApplyDelete(key schema.Key) {
	_, _ = s.t.Delete(0, key)
}

// CrashAndRecover is the crash drill: it models an instance crash by dropping
// every row the retained log records cover — the volatile state whose
// durability the log is responsible for; base data loaded before the run is
// durable by definition and stays — and then replays wal.Recover from the
// logs the engine currently owns. Committed transactions' effects are
// re-established, in-flight losers are discarded. With an unbounded log
// retention (LogConfig.Keep=0) on a serial run, the post-recovery table state
// is equivalent to a fault-free run's; tests and the fuzzer assert exactly
// that.
//
// Recovery replays all retained records rather than only the durable prefix:
// the reproduction's group commit acknowledges transactions whose flush rides
// along a later group, so the committed-state equivalence the drill asserts
// is defined against commit records, not the flush horizon.
func (e *Engine) CrashAndRecover() (wal.RecoveryStats, error) {
	logs := e.crashLogs()
	if len(logs) == 0 {
		return wal.RecoveryStats{}, fmt.Errorf("engine: no write-ahead logs to recover from")
	}
	// The crash happens at the drill's point of virtual time; the modeled
	// instance flushes its write-combining accumulators on the way down (the
	// final-flush guarantee), so the rings recovery reads hold every committed
	// transaction's net deltas and the staged records of in-flight losers.
	now := e.virtualNowExact()
	for _, l := range logs {
		l.Drain(now)
	}
	var records []wal.Record
	var durable wal.LSN
	for _, l := range logs {
		records = append(records, l.Records()...)
		if d := l.Durable(); d > durable {
			durable = d
		}
	}
	// Crash: drop the state the log covers. Every key named by any retained
	// record is in doubt after a crash; deleting exactly those keys (Delete
	// bypassing nothing — the rows genuinely leave the trees) models losing
	// the volatile buffer while keeping the durable base data.
	touched := make(map[string]map[schema.Key]struct{})
	for _, rec := range records {
		switch rec.Type {
		case wal.Insert, wal.Update, wal.Delete:
			keys := touched[rec.Table]
			if keys == nil {
				keys = make(map[schema.Key]struct{})
				touched[rec.Table] = keys
			}
			keys[rec.Key] = struct{}{}
		}
	}
	for name, keys := range touched {
		tbl, ok := e.tables[name]
		if !ok {
			continue
		}
		for k := range keys {
			_, _ = tbl.Delete(0, k)
		}
	}
	stores := make(map[string]wal.RowStore, len(e.tables))
	for name, tbl := range e.tables {
		stores[name] = tableStore{t: tbl}
	}
	return wal.Recover(records, durable, false, stores)
}

// TableKeySets returns the keys present in every table, in ascending order,
// keyed by table name. The crash drill's equivalence assertion compares the
// key sets of a crashed-and-recovered run against a fault-free twin; the
// reproduction's redo records re-establish key presence (they carry no
// after-image payload), so key sets are exactly the state recovery defines.
func (e *Engine) TableKeySets() map[string][]schema.Key {
	out := make(map[string][]schema.Key, len(e.tables))
	for name, tbl := range e.tables {
		keys := make([]schema.Key, 0, tbl.Len())
		tbl.Scan(0, 0, ^schema.Key(0), func(k schema.Key, _ schema.Row) bool {
			keys = append(keys, k)
			return true
		})
		out[name] = keys
	}
	return out
}

// WiringBindsFailedDevice reports whether any island log of the installed
// wiring flushes through a failed device. After the planner's re-homing has
// converged it is always false; tests and the fuzzer assert that instead of
// eyeballing timelines.
func (e *Engine) WiringBindsFailedDevice() bool {
	snap := e.state.snapshot()
	if snap == nil || snap.wiring == nil {
		return false
	}
	return wiringBindsFailedDevice(snap.wiring)
}

// WiringConverged reports whether the installed wiring matches the current
// hardware: every site homed on an alive socket, every alive island at the
// wiring's level represented, and no island log bound to a failed device.
// Engines without island wiring (non-shared-nothing designs) are trivially
// converged.
func (e *Engine) WiringConverged() bool {
	snap := e.state.snapshot()
	if snap == nil || snap.wiring == nil {
		return true
	}
	return !wiringStale(snap.wiring, e.cfg.Topology) && !wiringBindsFailedDevice(snap.wiring)
}
