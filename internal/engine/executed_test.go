package engine

import (
	"runtime"
	"testing"

	"atrapos/internal/backend"
	"atrapos/internal/partition"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

// executedEngine builds a shared-nothing engine with the hash backend at the
// given level on chiplet-2s4d. keepAll retains the full value-log history
// (wal Keep=0) for recovery drills; otherwise the default bounded ring is
// used, which is what the allocation budget measures.
func executedEngine(t testing.TB, wl *workload.Workload, level topology.Level, keepAll bool) *Engine {
	t.Helper()
	prof, _ := topology.ProfileByName("chiplet-2s4d")
	lc := wal.DefaultConfig()
	if keepAll {
		lc.Keep = 0
		lc.CoalesceRecords = 16
	}
	e, err := New(Config{
		Design:      SharedNothing,
		IslandLevel: level,
		Workload:    wl,
		Topology:    prof.Build(),
		LogConfig:   &lc,
		Backend:     backend.Hash,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestExecutedCrashDrillEquivalence mirrors TestCrashDrillEquivalence on the
// executed backend: CrashAndRecover drops every in-memory index and replays
// the island value logs, and the recovered keyset must equal the fault-free
// twin's. Machine-grained (one island) keeps the executed run's keyset fully
// deterministic — TATP's inserts and deletes on the same key are ordered by
// the single executor, so the twin comparison is exact.
func TestExecutedCrashDrillEquivalence(t *testing.T) {
	mk := func() *workload.Workload {
		return workload.MustTATP(workload.TATPOptions{Subscribers: 2000})
	}
	const txns = 1500

	ref := executedEngine(t, mk(), topology.LevelMachine, true)
	refRes, err := ref.RunExecuted(RunOptions{Transactions: txns, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Committed != txns {
		t.Fatalf("executed run committed %d, want %d", refRes.Committed, txns)
	}
	want := ref.HashBackend().TableKeySets()

	drill := executedEngine(t, mk(), topology.LevelMachine, true)
	drillRes, err := drill.RunExecuted(RunOptions{Transactions: txns, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if drillRes.Committed != refRes.Committed {
		t.Fatalf("twin committed %d, ref %d", drillRes.Committed, refRes.Committed)
	}
	drill.HashBackend().CrashAndRecover(vclock.Nanos(drillRes.WallNS))
	if where, ok := keySetsEqual(want, drill.HashBackend().TableKeySets()); !ok {
		t.Errorf("recovered keyset differs from fault-free twin at %s", where)
	}
	// The drill must actually have replayed something.
	total := 0
	for _, keys := range want {
		total += len(keys)
	}
	if total == 0 {
		t.Fatal("empty keysets; the drill recovered nothing")
	}
}

// TestExecutedDeterministic asserts the executed run's logical outcome is a
// pure function of the seed: committed counts and final keysets are identical
// across repeats and across island granularities (only wall times may vary).
func TestExecutedDeterministic(t *testing.T) {
	mk := func() *workload.Workload {
		return workload.MustTATP(workload.TATPOptions{Subscribers: 1000})
	}
	const txns = 800
	a := executedEngine(t, mk(), topology.LevelMachine, false)
	resA, err := a.RunExecuted(RunOptions{Transactions: txns, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b := executedEngine(t, mk(), topology.LevelMachine, false)
	resB, err := b.RunExecuted(RunOptions{Transactions: txns, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if resA.Committed != resB.Committed {
		t.Fatalf("committed differs across repeats: %d vs %d", resA.Committed, resB.Committed)
	}
	if where, ok := keySetsEqual(a.HashBackend().TableKeySets(), b.HashBackend().TableKeySets()); !ok {
		t.Errorf("keysets differ across repeats at %s", where)
	}
	if resA.MeasuredKTPS <= 0 {
		t.Errorf("MeasuredKTPS = %v, want > 0", resA.MeasuredKTPS)
	}
	if resA.Components[vclock.Execution] <= 0 {
		t.Errorf("no measured execution time: %v", resA.Components)
	}
	if resA.Components[vclock.Locking] != 0 {
		t.Errorf("single-owner shards must measure zero locking time, got %d", resA.Components[vclock.Locking])
	}
	if resA.Log.Appends == 0 {
		t.Error("executed run appended nothing to the value logs")
	}
}

// TestExecutedMultiIslandShips runs die-grained executors on a multisite
// workload and checks that cross-island operations really ship (and still
// commit everything).
func TestExecutedMultiIslandShips(t *testing.T) {
	wl := workload.MultisiteUpdate(4000, 50)
	e := executedEngine(t, wl, topology.LevelDie, false)
	res, err := e.RunExecuted(RunOptions{Transactions: 1200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 1200 {
		t.Fatalf("committed %d, want 1200", res.Committed)
	}
	if res.Executors != 8 {
		t.Fatalf("chiplet-2s4d die level should run 8 executors, got %d", res.Executors)
	}
	if res.Components[vclock.Communication] == 0 {
		t.Error("50%% multisite at die grain measured zero communication time")
	}
}

// TestExecutedReshard exercises the planner hook's machinery directly: after
// a level change the backend must hold the same live keyset, re-routed to the
// new wiring's islands, and remain recoverable from the compacted logs.
func TestExecutedReshard(t *testing.T) {
	wl := workload.MustTATP(workload.TATPOptions{Subscribers: 1500})
	e := executedEngine(t, wl, topology.LevelDie, true)
	snap := e.state.snapshot()
	if err := e.loadBackend(snap); err != nil {
		t.Fatal(err)
	}
	before := e.HashBackend().TableKeySets()
	if e.HashBackend().Islands() != 8 {
		t.Fatalf("die level on chiplet-2s4d = %d islands, want 8", e.HashBackend().Islands())
	}

	desired := partition.PerIsland(e.cfg.Topology, topology.LevelSocket, e.wl.TableSpecs())
	w := e.buildWiring(topology.LevelSocket, snap.wiring.epoch+1, snap.wiring)
	e.reshardBackend(desired, w)

	if got := e.HashBackend().Islands(); got != 2 {
		t.Fatalf("socket level = %d islands, want 2", got)
	}
	if where, ok := keySetsEqual(before, e.HashBackend().TableKeySets()); !ok {
		t.Errorf("reshard changed the live keyset at %s", where)
	}
	// Every key must now live on the shard the new placement routes it to.
	for ti, td := range e.wl.Tables {
		tp, _ := desired.Table(td.Schema.Name)
		for _, k := range before[td.Schema.Name] {
			shard := w.siteOf(tp.CoreFor(k))
			if _, ok := e.HashBackend().Get(shard, ti, k); !ok {
				t.Fatalf("table %s key %d missing from its new shard %d", td.Schema.Name, k, shard)
			}
		}
	}
	// The compacted logs are the new recovery image.
	e.HashBackend().CrashAndRecover(0)
	if where, ok := keySetsEqual(before, e.HashBackend().TableKeySets()); !ok {
		t.Errorf("post-reshard recovery lost state at %s", where)
	}
}

// TestExecutedAllocBudget is the satellite's allocation assertion for the
// executed path: steady state must stay at or under one allocation per
// transaction (the priced designs' budget of exactly zero is asserted by the
// fuzzer and reported by BenchmarkExecute). Measured over a full RunExecuted
// so the budget covers generation, routing, backend ops and group commit.
func TestExecutedAllocBudget(t *testing.T) {
	wl := workload.MustTATP(workload.TATPOptions{Subscribers: 1000})
	e := executedEngine(t, wl, topology.LevelMachine, false)
	const txns = 5000
	// Warm-up run: builds the per-run scratch, grows the generator's buffers
	// and faults in the code paths.
	if _, err := e.RunExecuted(RunOptions{Transactions: txns, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := e.RunExecuted(RunOptions{Transactions: txns, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	perTxn := float64(after.Mallocs-before.Mallocs) / float64(txns)
	// The fixed per-run setup (backend reset + reload, executor channels) is
	// amortized over the 5000 transactions and included in the budget.
	if perTxn > 1.0 {
		t.Errorf("executed steady state allocates %.3f allocs/txn, budget is 1", perTxn)
	}
}
