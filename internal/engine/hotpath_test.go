package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"atrapos/internal/lock"
	"atrapos/internal/topology"
	"atrapos/internal/workload"
)

// TestReleaseLocalDedupChargesRecordedOwner is the regression test for the
// release-dedup fix: when the same (table, partition) appears in the locked
// list under two different recorded owners (a socket failure redirected
// ownership mid-transaction), the partition is released exactly once and the
// release cost is charged to the most recently recorded owner — not to
// whichever entry happened to come first.
func TestReleaseLocalDedupChargesRecordedOwner(t *testing.T) {
	wl := workload.SingleRowRead(100)
	e := MustNew(Config{Design: PLP, Workload: wl, Topology: smallTopology(), SkipLoad: true})
	snap := e.state.snapshot()
	lm, err := snap.runtime.Locks("mbr", 0)
	if err != nil {
		t.Fatal(err)
	}
	const txnID = lock.TxnID(7)
	if _, err := lm.Acquire(0, txnID, lock.RowResource("mbr", 1), lock.X); err != nil {
		t.Fatal(err)
	}
	locked := []lockedPartition{
		{table: "mbr", idx: 0, core: 1, sock: 0},
		{table: "mbr", idx: 0, core: 9, sock: 2}, // re-locked from another socket
	}
	e.resetAccounts()
	e.releaseLocal(snap, txnID, locked)
	if n := lm.Table().Len(); n != 0 {
		t.Errorf("expected all locks released, %d remain", n)
	}
	if got := e.accounts[1].time(); got != 0 {
		t.Errorf("first recorded core was charged %v; the release belongs to the current owner", got)
	}
	if got := e.accounts[9].time(); got == 0 {
		t.Error("most recently recorded owner core was not charged the release cost")
	}
}

// TestEffectiveCoreWrapsPastDeadSockets covers the socket-failure fallback:
// the redirect must skip any number of consecutive dead sockets, wrap around
// the socket ring, and keep the core's local index.
func TestEffectiveCoreWrapsPastDeadSockets(t *testing.T) {
	top := smallTopology() // 4 sockets x 4 cores
	e := MustNew(Config{Design: PLP, Workload: workload.SingleRowRead(100), Topology: top, SkipLoad: true})

	coreOn := func(s topology.SocketID, local int) topology.CoreID {
		return top.CoresOn(s)[local].ID
	}
	if got := e.effectiveCore(coreOn(1, 2)); got != coreOn(1, 2) {
		t.Errorf("alive socket should not redirect, got core %d", got)
	}
	// Fail sockets 1 and 2: work owned by socket 1 must skip dead socket 2
	// and land on socket 3, same local index.
	for _, s := range []topology.SocketID{1, 2} {
		if err := top.FailSocket(s); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := e.effectiveCore(coreOn(1, 2)), coreOn(3, 2); got != want {
		t.Errorf("redirect past one dead socket: got core %d, want %d", got, want)
	}
	// Fail socket 3 as well: socket 2's work wraps past 3 to socket 0.
	if err := top.FailSocket(3); err != nil {
		t.Fatal(err)
	}
	if got, want := e.effectiveCore(coreOn(2, 1)), coreOn(0, 1); got != want {
		t.Errorf("wrap-around redirect: got core %d, want %d", got, want)
	}
	// All sockets dead: the core is returned unchanged (no alive fallback).
	if err := top.FailSocket(0); err != nil {
		t.Fatal(err)
	}
	if got := e.effectiveCore(coreOn(2, 1)); got != coreOn(2, 1) {
		t.Errorf("with no alive socket the core should be unchanged, got %d", got)
	}
}

// fingerprintTxn captures everything observable about a generated transaction
// (the Transaction object itself is reused between generations).
func fingerprintTxn(t *workload.Transaction) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s ro=%v ms=%v", t.Class, t.ReadOnly, t.MultiSite)
	for _, a := range t.Actions {
		fmt.Fprintf(&b, " %s/%v/%d", a.Table, a.Op, a.Key)
	}
	for _, sp := range t.SyncPoints {
		fmt.Fprintf(&b, " sync%v@%d", sp.Actions, sp.Bytes)
	}
	return b.String()
}

// TestGenerationDeterministicAcrossWorkerInterleavings verifies the seeding
// contract of the run loop: because the splitMix source is reseeded from
// (seed + transaction index) before every generation, the transaction
// generated for index n is a pure function of n — independent of which worker
// generates it and in which order the workers are interleaved.
func TestGenerationDeterministicAcrossWorkerInterleavings(t *testing.T) {
	wl := workload.MustTATP(workload.TATPOptions{Subscribers: 2000})
	const seed, n = int64(42), int64(64)

	generate := func(order []int64) map[int64]string {
		// Each simulated worker owns its source and context, as in Run.
		workers := make([]struct {
			src *splitMix
			ctx workload.GenContext
		}, 3)
		for i := range workers {
			workers[i].src = &splitMix{}
			workers[i].ctx = workload.GenContext{Rng: rand.New(workers[i].src), NumSites: 1}
		}
		out := make(map[int64]string, len(order))
		for i, idx := range order {
			w := &workers[i%len(workers)]
			w.src.seed(seed + idx)
			out[idx] = fingerprintTxn(wl.Generate(&w.ctx))
		}
		return out
	}

	ascending := make([]int64, n)
	reversed := make([]int64, n)
	for i := int64(0); i < n; i++ {
		ascending[i] = i
		reversed[n-1-i] = i
	}
	a, b := generate(ascending), generate(reversed)
	for i := int64(0); i < n; i++ {
		if a[i] != b[i] {
			t.Fatalf("transaction %d depends on worker interleaving:\n asc: %s\n rev: %s", i, a[i], b[i])
		}
	}
}

// TestRunDeterministicMultiSiteAcrossWorkerCounts runs the same seeded
// workload with different worker counts: every issued transaction index
// generates the same transaction, so the multi-site count must not depend on
// the degree of parallelism.
func TestRunDeterministicMultiSiteAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) int64 {
		wl := workload.MultisiteUpdate(4000, 30)
		e := MustNew(Config{Design: SharedNothingCoarse, Workload: wl, Topology: smallTopology()})
		res, err := e.Run(RunOptions{Transactions: 300, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res.MultiSite
	}
	if one, four := run(1), run(4); one != four {
		t.Errorf("multi-site count depends on worker count: 1 worker %d, 4 workers %d", one, four)
	}
}

// TestSplitMixSeedDecorrelation checks that reseeding with consecutive values
// produces decorrelated streams (the avalanche step), which the generator
// relies on to avoid artificial key conflicts between concurrent transactions.
func TestSplitMixSeedDecorrelation(t *testing.T) {
	var a, b splitMix
	a.seed(100)
	b.seed(101)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("consecutive seeds produced %d identical outputs of 64", same)
	}
	// Reseeding with the same value replays the same stream.
	a.seed(100)
	b.seed(100)
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must replay the same stream")
		}
	}
}

// TestAliveCoreCacheFollowsEpoch verifies that the engine's cached alive-core
// list is invalidated by socket failures and restorations mid-run.
func TestAliveCoreCacheFollowsEpoch(t *testing.T) {
	top := smallTopology()
	e := MustNew(Config{Design: PLP, Workload: workload.SingleRowRead(100), Topology: top, SkipLoad: true})
	if got := len(e.aliveCores()); got != 16 {
		t.Fatalf("expected 16 alive cores, got %d", got)
	}
	if err := top.FailSocket(2); err != nil {
		t.Fatal(err)
	}
	if got := len(e.aliveCores()); got != 12 {
		t.Errorf("after failing a socket the cache should refresh: got %d cores, want 12", got)
	}
	if err := top.RestoreSocket(2); err != nil {
		t.Fatal(err)
	}
	if got := len(e.aliveCores()); got != 16 {
		t.Errorf("after restoring the socket: got %d cores, want 16", got)
	}
}

// TestVirtualNowHighWaterMark checks the two-level virtual clock: the cheap
// per-transaction view lags monotonically behind the exact scan and catches
// up when a worker notes its core or an exact recomputation runs.
func TestVirtualNowHighWaterMark(t *testing.T) {
	e := MustNew(Config{Design: PLP, Workload: workload.SingleRowRead(100), Topology: smallTopology(), SkipLoad: true})
	e.resetAccounts()
	e.charge(5, 1, 1000)
	if now := e.virtualNow(); now != 0 {
		t.Errorf("high-water mark should lag until noted, got %v", now)
	}
	e.noteTime(5)
	if now := e.virtualNow(); now != 1000 {
		t.Errorf("after noteTime the mark should be 1000, got %v", now)
	}
	e.charge(6, 1, 2500)
	if now := e.virtualNowExact(); now != 2500 {
		t.Errorf("exact recomputation should see 2500, got %v", now)
	}
	if now := e.virtualNow(); now != 2500 {
		t.Errorf("exact recomputation should fold into the mark, got %v", now)
	}
}
