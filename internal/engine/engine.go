// Package engine executes transactional workloads against the storage
// substrate under the system designs the paper compares: the traditional
// centralized shared-everything design, extreme and coarse-grained
// shared-nothing, PLP (physiological partitioning), the naïve hardware-aware
// design of Section IV, and ATraPos with its workload- and hardware-aware
// partitioning, monitoring and adaptive repartitioning.
//
// Workers are goroutines logically bound to the cores of the modeled
// topology. All data-structure operations are real; their costs are charged
// to per-core virtual clocks using the NUMA cost model, and throughput is
// computed from committed transactions divided by the busiest core's virtual
// time. This makes experiments deterministic in shape and independent of the
// machine the simulation runs on, which is the substitution DESIGN.md
// describes for the paper's 8-socket hardware.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"atrapos/internal/backend"
	"atrapos/internal/core"
	"atrapos/internal/device"
	"atrapos/internal/lock"
	"atrapos/internal/numa"
	"atrapos/internal/obs"
	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/storage"
	"atrapos/internal/topology"
	"atrapos/internal/txn"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

// Design enumerates the compared system designs.
type Design int

const (
	// Centralized is the traditional shared-everything design: one lock
	// manager, one list of active transactions, one log, shared by all cores.
	Centralized Design = iota
	// SharedNothingExtreme runs one logical instance per core (H-Store
	// style); multi-site transactions use two-phase commit. It is an alias
	// for SharedNothing with Config.IslandLevel = topology.LevelCore.
	SharedNothingExtreme
	// SharedNothingCoarse runs one logical instance per socket. It is an
	// alias for SharedNothing with Config.IslandLevel = topology.LevelSocket.
	SharedNothingCoarse
	// PLP is physiological partitioning: partition-local lock tables and
	// multi-rooted B-trees over a shared-everything storage manager, but the
	// remaining system state (transaction list, state locks) is centralized.
	PLP
	// HWAware is the Section IV proof of concept: PLP plus NUMA-aware system
	// state (per-socket transaction lists and state locks) with the naïve
	// one-partition-per-core-per-table placement.
	HWAware
	// ATraPos is HWAware plus the workload- and hardware-aware partitioning
	// and placement of Section V, optionally with monitoring and adaptive
	// repartitioning.
	ATraPos
	// SharedNothing is the parametric shared-nothing design: one logical
	// instance — data partition, transaction list and state-lock locality,
	// write-ahead log, 2PC site — per hardware island at the granularity
	// selected by Config.IslandLevel (core, die, socket or machine). The
	// Extreme and Coarse designs are fixed points of this axis; LevelDie
	// deploys one instance per CCX/cluster on chiplet machines and
	// LevelMachine a single instance spanning the whole box.
	SharedNothing
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case Centralized:
		return "centralized"
	case SharedNothingExtreme:
		return "shared-nothing-extreme"
	case SharedNothingCoarse:
		return "shared-nothing-coarse"
	case SharedNothing:
		return "shared-nothing"
	case PLP:
		return "plp"
	case HWAware:
		return "hw-aware"
	case ATraPos:
		return "atrapos"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// IsSharedNothing reports whether d deploys per-island instances (the
// parametric design or one of its fixed-granularity aliases).
func (d Design) IsSharedNothing() bool {
	return d == SharedNothing || d == SharedNothingExtreme || d == SharedNothingCoarse
}

// Designs lists the paper's six configurations in presentation order. The
// parametric SharedNothing design is not listed separately: its core- and
// socket-grained fixed points appear as the Extreme and Coarse aliases, and
// its other granularities are swept by the fig-islands experiment rather
// than enumerated here.
func Designs() []Design {
	return []Design{Centralized, SharedNothingExtreme, SharedNothingCoarse, PLP, HWAware, ATraPos}
}

// Config describes one engine instance.
type Config struct {
	// Design selects the system design. Required.
	Design Design
	// Workload supplies the dataset and the transaction generator. Required.
	Workload *workload.Workload
	// Topology models the machine; nil means the paper's 8-socket, 80-core box.
	Topology *topology.Topology
	// CostModel holds the NUMA latencies; the zero value means defaults.
	CostModel numa.CostModel
	// IslandLevel selects the instance granularity of the SharedNothing
	// design: one logical instance per island at this level. The zero value
	// defaults to topology.LevelSocket. The SharedNothingExtreme and
	// SharedNothingCoarse designs force it to LevelCore respectively
	// LevelSocket, so the legacy enum values keep their exact meaning.
	IslandLevel topology.Level
	// Placement optionally overrides the initial partitioning and placement
	// for the partitioned designs (PLP, HWAware, ATraPos). Nil derives the
	// design's default placement.
	Placement *partition.Placement
	// AllocPolicy controls on which memory node each instance's data is
	// allocated for the shared-nothing designs (Table I). Default: local.
	AllocPolicy numa.AllocPolicy
	// CentralAllocNode is the node used by AllocCentral.
	CentralAllocNode topology.SocketID
	// LogConfig tunes the write-ahead log; nil means defaults.
	LogConfig *wal.Config
	// Backend selects the storage engine behind the executors. The zero value
	// is the priced path (virtual costs on B-trees); backend.Hash builds the
	// executed sharded hash engine alongside the priced tables — one shard and
	// one value log per island of the current wiring — which RunExecuted
	// drives with real, measured operations. Shared-nothing designs only.
	Backend backend.Kind
	// DeviceLayout optionally names a log-device layout (device.Layouts) to
	// instantiate on the machine: island logs are then bound to the layout's
	// physical devices — one NVMe per socket, a shared device per die pair, a
	// single SATA-class device — and commits pay each device's service and
	// queueing cost. Empty means no device modeling: flushes cost the flat
	// LogConfig.FlushCost exactly as before.
	DeviceLayout string
	// SLI enables speculative lock inheritance in the centralized lock
	// manager (on by default for the centralized design, as in the paper).
	DisableSLI bool
	// Monitoring enables the ATraPos monitoring mechanism (ATraPos design only).
	Monitoring bool
	// Adaptive enables adaptive repartitioning; it implies Monitoring.
	Adaptive bool
	// AdaptiveInterval tunes the monitoring interval controller.
	AdaptiveInterval core.IntervalConfig
	// MonitoringCostPerAction is the virtual cost charged per action when
	// monitoring is enabled; it models the thread-local array updates.
	MonitoringCostPerAction numa.Cost
	// OversaturationPenalty is the extra execution cost factor per additional
	// partition worker sharing a core: a core owning k active partitions
	// executes actions (1 + penalty*(k-1)) times slower. It models the
	// oversaturation the paper demonstrates with the naïve placement (Fig. 6).
	OversaturationPenalty float64
	// Tracing enables the virtual-time span tracer: the engine pre-allocates
	// fixed-capacity span rings (per worker core, per island log, per device,
	// plus one planner ring) at construction and the hot paths record into
	// them. Disabled (the default), every recording site is a nil check and
	// the per-transaction path allocates nothing extra.
	Tracing bool
	// TraceRingCap is the capacity, in spans, of each ring when Tracing is
	// enabled. Zero means the 16384-span default; overflowing rings drop new
	// spans and count the drops rather than growing.
	TraceRingCap int
	// TimeCompression declares that the experiment compresses that many of
	// the paper's wall-clock seconds into one unit of its (shorter) virtual
	// timeline; the cost of repartitioning actions is scaled down by the same
	// factor so its share of the timeline stays faithful. The adaptivity
	// experiments (Figures 10-13) compress one paper second into one virtual
	// millisecond and therefore use 1000. Zero or one means no compression.
	TimeCompression float64
	// SkipLoad leaves the tables empty; tests that only exercise construction
	// use it to stay fast.
	SkipLoad bool

	// autoIslandLevel notes that IslandLevel was defaulted rather than chosen
	// by the caller; the device-aware adaptive start level (New) only
	// overrides a defaulted level, never an explicit choice.
	autoIslandLevel bool
}

func (c *Config) withDefaults() (*Config, error) {
	if c.Workload == nil {
		return nil, fmt.Errorf("engine: config needs a workload")
	}
	out := *c
	if out.Topology == nil {
		out.Topology = topology.Default()
	}
	zero := numa.CostModel{}
	if out.CostModel == zero {
		out.CostModel = numa.DefaultCostModel()
	}
	if out.LogConfig == nil {
		lc := wal.DefaultConfig()
		out.LogConfig = &lc
	}
	if out.MonitoringCostPerAction <= 0 {
		out.MonitoringCostPerAction = 15
	}
	if out.OversaturationPenalty <= 0 {
		out.OversaturationPenalty = 0.8
	}
	if out.Adaptive {
		out.Monitoring = true
	}
	if out.Tracing && out.TraceRingCap <= 0 {
		out.TraceRingCap = 1 << 14
	}
	// Resolve the island granularity: the legacy enum values pin it, the
	// parametric design defaults to socket-grained instances.
	switch out.Design {
	case SharedNothingExtreme:
		out.IslandLevel = topology.LevelCore
	case SharedNothingCoarse:
		out.IslandLevel = topology.LevelSocket
	case SharedNothing:
		if out.IslandLevel == 0 {
			out.IslandLevel = topology.LevelSocket
			out.autoIslandLevel = true
		}
		if !out.IslandLevel.Valid() {
			return nil, fmt.Errorf("engine: invalid island level %v", out.IslandLevel)
		}
	}
	return &out, nil
}

// Engine is a fully wired system instance ready to run workloads.
type Engine struct {
	cfg    *Config
	domain *numa.Domain
	store  *storage.Manager
	tables map[string]*storage.Table
	wl     *workload.Workload

	// System state structures of the non-shared-nothing designs; the
	// shared-nothing designs carry their (level-dependent) equivalents in the
	// snapshot's islandWiring so a granularity change can swap them atomically.
	txnMgr       *txn.Manager
	centralLocks *lock.CentralManager
	log          wal.Log

	// devices is the machine's log-device map (Config.DeviceLayout), shared by
	// every island wiring the engine ever derives: wirings come and go with
	// level changes, but the device a die flushes through never moves, so
	// device bindings are reused across re-wirings the way island logs are.
	// Nil when no layout is configured.
	devices *device.Map

	// Partitioned designs: placement, per-partition runtime state and, for the
	// shared-nothing designs, the island wiring — all swapped as one snapshot.
	state partitionedState

	accounts []coreAccount
	adaptive *adaptiveState

	// tracer holds the span rings, metrics samples and planner decision log
	// when Config.Tracing is enabled; nil otherwise. Every recording site is
	// nil-safe, so the disabled path costs one pointer comparison.
	tracer *obs.Tracer

	// hash is the executed storage engine (Config.Backend == backend.Hash):
	// one shard per island of the installed wiring, re-sharded by the
	// adaptive-granularity planner on every level change. Nil on the priced
	// path.
	hash *backend.HashBackend

	// retiredLogStats accumulates the activity counters of island logs an
	// online re-wiring dropped (rebuilt rather than reused), so logStats —
	// and through it Result.Log — stays cumulative across level changes
	// instead of under-reporting whenever the planner rebuilds a log.
	// Guarded by retiredMu: the planner retires logs from a worker while run
	// bookkeeping reads the total.
	retiredMu       sync.Mutex
	retiredLogStats wal.Stats

	// hwm is the monotonic high-water mark of the engine-wide virtual time;
	// see virtualNow/virtualNowExact in account.go.
	hwm atomic.Int64

	// alive caches the topology's alive-core list keyed by its liveness
	// epoch, so the per-transaction path never rebuilds the slice.
	alive atomic.Pointer[aliveCoreCache]
}

// aliveCoreCache is one epoch's view of the alive cores.
type aliveCoreCache struct {
	epoch uint64
	cores []topology.Core
}

// aliveCores returns the alive cores of the topology, rebuilt only when the
// topology's liveness epoch changes. The returned slice must not be modified.
func (e *Engine) aliveCores() []topology.Core {
	ep := e.cfg.Topology.Epoch()
	if c := e.alive.Load(); c != nil && c.epoch == ep {
		return c.cores
	}
	cores := e.cfg.Topology.AliveCores()
	e.alive.Store(&aliveCoreCache{epoch: ep, cores: cores})
	return cores
}

// New builds an engine: it creates and loads the physical tables and wires
// the system-state structures required by the chosen design.
func New(cfg Config) (*Engine, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	domain, err := numa.NewDomain(c.Topology, c.CostModel)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      c,
		domain:   domain,
		store:    storage.NewManager(domain),
		tables:   make(map[string]*storage.Table),
		wl:       c.Workload,
		accounts: newAccounts(c.Topology.NumCores()),
	}
	if c.DeviceLayout != "" {
		e.devices, err = device.BuildLayout(c.DeviceLayout, c.Topology)
		if err != nil {
			return nil, err
		}
	}
	// Device-aware adaptive start level: when the caller left the island
	// granularity unset and the planner is going to adapt it anyway, seed the
	// initial level from the granularity scorer's device-aware prediction
	// instead of the blind socket default — on a scarce layout (single SATA)
	// the planner would converge there after a few intervals; starting there
	// skips the detour. A synthetic single-site shape keeps the choice purely
	// hardware-driven (no workload has been observed yet), and an explicit
	// IslandLevel is never overridden. This must happen before the initial
	// placement is derived, which depends on the level.
	if c.autoIslandLevel && c.Design == SharedNothing && c.Adaptive && e.devices != nil {
		g := core.GranularityModel{
			Domain:          domain,
			LogFlush:        c.LogConfig.FlushCost,
			LogGroupSize:    c.LogConfig.GroupSize,
			Devices:         e.devices,
			CoalesceRecords: c.LogConfig.CoalesceRecords,
		}
		shape := core.WorkloadShape{ActionsPerTxn: 10, WritesPerTxn: 1, Concurrency: 1}
		if best, _ := g.Best(shape, granTieMargin); best.Valid() {
			c.IslandLevel = best
		}
	}

	if c.Tracing {
		// One worker ring per core (worker spans land on the coordinator's
		// core track), one island ring per possible island (core-grained is
		// the finest level, so NumCores bounds it), one ring per log device.
		// Built before wireStructures so the initial wiring can attach its
		// island logs to the rings.
		ndev := 0
		if e.devices != nil {
			ndev = e.devices.NumDevices()
		}
		e.tracer = obs.NewTracer(c.Topology.NumCores(), c.Topology.NumCores(), ndev, c.TraceRingCap)
		for i, d := range e.deviceList() {
			d.SetTrace(e.tracer.Device(i), int32(i))
		}
	}

	placement, err := e.initialPlacement()
	if err != nil {
		return nil, err
	}
	if err := placement.Validate(); err != nil {
		return nil, err
	}
	if err := e.createTables(placement); err != nil {
		return nil, err
	}
	if !c.SkipLoad {
		if err := e.loadData(); err != nil {
			return nil, err
		}
	}
	e.wireStructures(placement)
	if c.Backend == backend.Hash {
		if !c.Design.IsSharedNothing() {
			return nil, fmt.Errorf("engine: the hash backend needs a shared-nothing design, got %v", c.Design)
		}
		if err := e.buildHashBackend(); err != nil {
			return nil, err
		}
	}
	// ATraPos adapts its placement; the parametric SharedNothing design
	// adapts its island granularity (the fixed-granularity aliases stay
	// inert, preserving their exact legacy meaning).
	if (c.Design == ATraPos || c.Design == SharedNothing) && (c.Monitoring || c.Adaptive) {
		e.adaptive = newAdaptiveState(e, placement)
	}
	return e, nil
}

// MustNew is New but panics on error; for benches and examples with known-good configs.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Design returns the engine's design.
func (e *Engine) Design() Design { return e.cfg.Design }

// Domain returns the NUMA domain.
func (e *Engine) Domain() *numa.Domain { return e.domain }

// Topology returns the modeled machine.
func (e *Engine) Topology() *topology.Topology { return e.cfg.Topology }

// Store returns the storage manager, e.g. for inspecting tables in examples.
func (e *Engine) Store() *storage.Manager { return e.store }

// Placement returns a copy of the current partitioning and placement.
func (e *Engine) Placement() *partition.Placement {
	snap := e.state.snapshot()
	return snap.placement.Clone()
}

// FailSocket simulates a processor failure at run time (Section VI-D3):
// the socket's cores stop being used as transaction coordinators, and work
// owned by partitions on the failed socket is redirected to a fallback core.
// The static designs keep their partitioning plan; ATraPos with Adaptive
// enabled detects the throughput change and repartitions around the failure.
func (e *Engine) FailSocket(s topology.SocketID) error {
	return e.cfg.Topology.FailSocket(s)
}

// RestoreSocket returns a failed socket to service, mirroring FailSocket: the
// socket's cores become usable as coordinators again, and the adaptive
// planner re-expands placement and wiring onto the returned capacity at its
// next monitoring boundary. It errors on an unknown or already-alive socket.
//
// The restored cores' virtual clocks are advanced to the machine's current
// virtual time before they rejoin the coordinator rotation: a socket that was
// powered off rejoins at "now", it does not replay the time it missed.
// Leaving the clocks at the fail time would stamp its commits into windows
// long past and starve the tail of the run's throughput series.
func (e *Engine) RestoreSocket(s topology.SocketID) error {
	top := e.cfg.Topology
	if int(s) < 0 || int(s) >= top.Sockets() {
		return fmt.Errorf("engine: unknown socket %d (machine has %d)", s, top.Sockets())
	}
	if top.Alive(s) {
		return fmt.Errorf("engine: socket %d is already alive", s)
	}
	now := int64(e.virtualNowExact())
	for _, c := range top.CoresOn(s) {
		if int(c.ID) < 0 || int(c.ID) >= len(e.accounts) {
			continue
		}
		// The offline gap is charged to busy only (no component), so it shows
		// up as elapsed time, not as work of any kind.
		if gap := now - e.accounts[c.ID].busy.Load(); gap > 0 {
			e.accounts[c.ID].busy.Add(gap)
		}
	}
	return top.RestoreSocket(s)
}

// FailDevice marks log device i failed. Island logs bound to it are re-homed
// to surviving devices by the planner's next re-wiring (their records move
// with them through the log-reuse path); the device keeps servicing flushes
// until then, so no work is lost in the gap.
func (e *Engine) FailDevice(i int) error {
	if e.devices == nil {
		return fmt.Errorf("engine: no log-device layout configured")
	}
	return e.devices.FailDevice(i)
}

// RestoreDevice clears the failed mark on log device i.
func (e *Engine) RestoreDevice(i int) error {
	if e.devices == nil {
		return fmt.Errorf("engine: no log-device layout configured")
	}
	return e.devices.RestoreDevice(i)
}

// DegradeDevice multiplies log device i's service time by factor (>= 1),
// modeling a device that still works but slowed down.
func (e *Engine) DegradeDevice(i int, factor float64) error {
	if e.devices == nil {
		return fmt.Errorf("engine: no log-device layout configured")
	}
	return e.devices.DegradeDevice(i, factor)
}

// initialPlacement derives the default partitioning and placement of the design.
func (e *Engine) initialPlacement() (*partition.Placement, error) {
	c := e.cfg
	specs := c.Workload.TableSpecs()
	switch c.Design {
	case Centralized:
		// One physical partition per table; data spread round-robin across
		// memory nodes, as a non-NUMA-aware allocator would.
		p := partition.NewPlacement()
		cores := c.Topology.AliveCores()
		if len(cores) == 0 {
			return nil, fmt.Errorf("engine: no alive cores")
		}
		for i, spec := range specs {
			p.Tables[spec.Name] = &partition.TablePlacement{
				Table:  spec.Name,
				Bounds: []schema.Key{0},
				Cores:  []topology.CoreID{cores[i%len(cores)].ID},
			}
		}
		return p, nil
	case SharedNothingExtreme, SharedNothingCoarse, SharedNothing:
		return partition.PerIsland(c.Topology, c.IslandLevel, specs), nil
	case PLP, HWAware:
		if c.Placement != nil {
			return c.Placement.Clone(), nil
		}
		return partition.NaivePerCore(c.Topology, specs), nil
	case ATraPos:
		if c.Placement != nil {
			return c.Placement.Clone(), nil
		}
		// Without prior knowledge ATraPos starts from the naïve scheme and
		// adapts at run time (Section V-D, "Detecting changes").
		return partition.NaivePerCore(c.Topology, specs), nil
	default:
		return nil, fmt.Errorf("engine: unknown design %v", c.Design)
	}
}

// createTables creates the physical tables with partition bounds from the
// placement and memory homes derived from the owning cores (or from the
// allocation policy for shared-nothing designs).
func (e *Engine) createTables(p *partition.Placement) error {
	var alloc *numa.Placement
	if e.cfg.Design.IsSharedNothing() {
		var err error
		alloc, err = numa.NewPlacement(e.cfg.Topology, e.cfg.AllocPolicy, e.cfg.CentralAllocNode)
		if err != nil {
			return err
		}
	}
	for _, td := range e.wl.Tables {
		tp, ok := p.Tables[td.Schema.Name]
		if !ok {
			return fmt.Errorf("engine: placement is missing table %s", td.Schema.Name)
		}
		homes := make([]topology.SocketID, len(tp.Cores))
		for i, c := range tp.Cores {
			s := e.cfg.Topology.SocketOf(c)
			if alloc != nil {
				s = alloc.NodeFor(s)
			}
			homes[i] = s
		}
		tbl, err := e.store.CreateTable(td.Schema, tp.Bounds, homes)
		if err != nil {
			return err
		}
		e.tables[td.Schema.Name] = tbl
	}
	return nil
}

func (e *Engine) loadData() error {
	for _, td := range e.wl.Tables {
		tbl := e.tables[td.Schema.Name]
		if td.RowGen == nil {
			continue
		}
		if err := tbl.LoadFunc(td.Rows, td.RowGen); err != nil {
			return fmt.Errorf("engine: loading %s: %w", td.Schema.Name, err)
		}
	}
	return nil
}

// wireStructures builds the design-specific system-state structures.
func (e *Engine) wireStructures(p *partition.Placement) {
	c := e.cfg
	var w *islandWiring

	// A centralized log homed on socket 0 flushes through the device serving
	// socket 0's first die when a device layout is configured.
	centralCfg := *c.LogConfig
	if e.devices != nil {
		centralCfg.Device = e.devices.DeviceFor(c.Topology.FirstDieOn(0))
	}
	switch c.Design {
	case Centralized:
		e.txnMgr = txn.NewManager(e.domain, txn.NewCentralList(e.domain), numa.NewCentralRWLock(e.domain))
		e.centralLocks = lock.NewCentralManager(e.domain, 256, !c.DisableSLI)
		e.log = wal.NewCentralLog(e.domain, 0, centralCfg)
	case SharedNothingExtreme, SharedNothingCoarse, SharedNothing:
		// One instance per island: the whole instance mapping — sites, log
		// layout, 2PC wiring, transaction-state striping — is derived from the
		// island level and lives in the snapshot, so the adaptive-granularity
		// planner can re-derive it at a different level and swap it atomically.
		w = e.buildWiring(c.IslandLevel, 0, nil)
		e.log = w.logs
	case PLP:
		e.txnMgr = txn.NewManager(e.domain, txn.NewCentralList(e.domain), numa.NewCentralRWLock(e.domain))
		e.log = wal.NewCentralLog(e.domain, 0, centralCfg)
	case HWAware, ATraPos:
		e.txnMgr = txn.NewManager(e.domain, txn.NewPartitionedList(e.domain), numa.NewPartitionedRWLock(e.domain))
		e.log = wal.NewCentralLog(e.domain, 0, centralCfg)
	}
	// Designs with one central log record its flush spans on island track 0.
	if e.tracer != nil && w == nil {
		if cl, ok := e.log.(*wal.CentralLog); ok {
			cl.SetTrace(e.tracer.Island(0), 0)
		}
	}
	e.state.install(p, partition.NewRuntime(e.domain, p), e.activePartitionsPerCore(p, 0), w)
}

// islandWiring is the shared-nothing instance mapping derived from one island
// granularity: one site per alive island at wiring's level, in island order —
// the same order the per-island data partitioning is built, so site index ==
// partition index. A site's home core is its island's first alive core; the
// full alive member list is kept so remote requests spread over the island's
// cores instead of funnelling through one.
//
// The wiring travels inside the atomically-swapped state snapshot: workers
// read sites, logs, coordinator and the transaction manager from the snapshot
// they took for the transaction, so an online level change (a new wiring with
// a bumped epoch) never splits one transaction across two machine layouts.
type islandWiring struct {
	// level is the island granularity the wiring was derived from.
	level topology.Level
	// epoch is the topology epoch of the wiring: 0 for the wiring built at
	// construction, incremented by every online re-wiring.
	epoch uint64

	sites      []topology.Core
	siteCores  [][]topology.Core
	siteOfCore []int32

	// logs holds one write-ahead log per island; coordinator runs 2PC between
	// the islands with the islands' home cores as participants.
	logs        *wal.PartitionedLog
	coordinator *txn.Coordinator

	// txnMgr is the transaction-state layout of this granularity: a
	// machine-level deployment is one instance whose transaction list and
	// state lock are shared by every core (and ping-pong accordingly); any
	// finer granularity keeps them striped per socket, which is island-local
	// for socket-grained and finer instances alike.
	txnMgr *txn.Manager

	// reusedLogs/rebuiltLogs count how many island logs the wiring carried
	// over from its predecessor versus created fresh; reboundDevices counts
	// the reused logs whose device binding the re-wiring had to re-derive.
	reusedLogs, rebuiltLogs, reboundDevices int

	// retiredLogStats is the summed activity counters of the predecessor's
	// logs this wiring did NOT carry over: their records live on in the
	// recovery rings but their counters would vanish with the dropped logs.
	// The engine absorbs the sum into its cumulative retired-stats account
	// when (and only when) the wiring is actually installed.
	retiredLogStats wal.Stats
}

// siteOf returns the site index of the instance whose island contains core c.
func (w *islandWiring) siteOf(c topology.CoreID) int {
	if w == nil || int(c) < 0 || int(c) >= len(w.siteOfCore) {
		return 0
	}
	return int(w.siteOfCore[c])
}

// sameCores reports whether an island's alive member set is exactly the given
// core slice. Member slices are contiguous runs in core order at every level,
// so comparing length and endpoints is exact.
func sameCores(a, b []topology.Core) bool {
	if len(a) != len(b) || len(a) == 0 {
		return len(a) == len(b)
	}
	return a[0].ID == b[0].ID && a[len(a)-1].ID == b[len(b)-1].ID
}

// buildWiring derives the island wiring at the given level. When prev is
// non-nil (an online re-wiring), structures owned by islands whose alive core
// sets are unchanged by the level change are carried over: their write-ahead
// logs keep their records and group-commit state, exactly as an unchanged
// partition keeps its lock table across a repartitioning. The transaction
// manager is carried over whenever the state striping is the same on both
// sides (both machine-grained or both finer), so in-flight bookkeeping
// survives the swap.
func (e *Engine) buildWiring(level topology.Level, epoch uint64, prev *islandWiring) *islandWiring {
	top := e.cfg.Topology
	w := &islandWiring{
		level:      level,
		epoch:      epoch,
		siteOfCore: make([]int32, top.NumCores()),
	}
	islands := top.AliveIslandsAt(level)
	homes := make([]topology.SocketID, 0, len(islands))
	homeCores := make([]topology.CoreID, 0, len(islands))
	var devs []*device.Device
	if e.devices != nil {
		devs = make([]*device.Device, 0, len(islands))
	}
	var reuse []*wal.CentralLog
	var reusedPrev []bool
	if prev != nil {
		reuse = make([]*wal.CentralLog, len(islands))
		reusedPrev = make([]bool, len(prev.siteCores))
	}
	for i, isl := range islands {
		w.sites = append(w.sites, isl.Cores[0])
		w.siteCores = append(w.siteCores, isl.Cores)
		for _, c := range isl.Cores {
			w.siteOfCore[c.ID] = int32(i)
		}
		homes = append(homes, isl.Cores[0].Socket)
		homeCores = append(homeCores, isl.Cores[0].ID)
		if e.devices != nil {
			// The island's log flushes through the device serving its home
			// die, re-homed to a surviving device when that one has failed.
			// The device map outlives the wiring, so a level change
			// re-resolves the binding against the same physical devices — and
			// the log constructor re-binds any reused log whose device the
			// re-wiring moved.
			dev := e.devices.AliveDeviceFor(top.DieOf(isl.Cores[0].ID))
			if dev == nil {
				// Every device failed: keep the mapped binding rather than
				// wiring a log to nothing. Schedules cannot produce this (the
				// device map refuses to fail its last alive device).
				dev = e.devices.DeviceFor(top.DieOf(isl.Cores[0].ID))
			}
			devs = append(devs, dev)
		}
		if prev != nil {
			for j, cores := range prev.siteCores {
				if sameCores(cores, isl.Cores) {
					reuse[i] = prev.logs.Log(j)
					reusedPrev[j] = true
					w.reusedLogs++
					break
				}
			}
		}
	}
	w.rebuiltLogs = len(islands) - w.reusedLogs
	if prev != nil && prev.logs != nil {
		// Snapshot the counters of every log this wiring drops, so the
		// engine's cumulative log accounting survives the rebuild. Taken at
		// derivation time: a transaction still executing against the old
		// snapshot can append to a dropped log after this point, and those
		// late appends go uncounted — the same marginal skew any counter
		// snapshot concurrent with execution has.
		for j := range prev.siteCores {
			if !reusedPrev[j] {
				w.retiredLogStats = w.retiredLogStats.Add(prev.logs.Log(j).Stats())
			}
		}
	}
	w.logs = wal.NewPartitionedLogAtReusing(e.domain, homes, *e.cfg.LogConfig, devs, reuse)
	w.reboundDevices = w.logs.ReboundDevices()
	if e.tracer != nil {
		// Attach every island log (reused ones move to their new island's
		// ring) so flush spans carry the wiring's site index.
		for i := range islands {
			w.logs.Log(i).SetTrace(e.tracer.Island(i), int32(i))
		}
	}
	w.coordinator = txn.NewCoordinatorAt(e.domain, w.logs, homeCores)
	machineGrained := level == topology.LevelMachine
	if prev != nil && (prev.level == topology.LevelMachine) == machineGrained {
		w.txnMgr = prev.txnMgr
	} else if machineGrained {
		w.txnMgr = txn.NewManager(e.domain, txn.NewCentralList(e.domain), numa.NewCentralRWLock(e.domain))
	} else {
		w.txnMgr = txn.NewManager(e.domain, txn.NewPartitionedList(e.domain), numa.NewPartitionedRWLock(e.domain))
	}
	return w
}

// IslandLevel returns the island granularity the engine currently runs at:
// the level of the installed wiring for the shared-nothing designs (which the
// adaptive-granularity planner may have changed since construction), or the
// configured level otherwise.
func (e *Engine) IslandLevel() topology.Level {
	if snap := e.state.snapshot(); snap != nil && snap.wiring != nil {
		return snap.wiring.level
	}
	return e.cfg.IslandLevel
}

// TopologyEpoch returns the epoch of the installed island wiring: 0 at
// construction, incremented by every online re-wiring.
func (e *Engine) TopologyEpoch() uint64 {
	if snap := e.state.snapshot(); snap != nil && snap.wiring != nil {
		return snap.wiring.epoch
	}
	return 0
}

// Devices returns the engine's log-device map, or nil when no device layout
// is configured.
func (e *Engine) Devices() *device.Map { return e.devices }

// deviceList returns the layout's devices in index order, or nil when no
// layout is configured.
func (e *Engine) deviceList() []*device.Device {
	if e.devices == nil {
		return nil
	}
	return e.devices.Devices()
}

// Tracer returns the engine's span tracer, or nil when Config.Tracing is off.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// activePartitionsPerCore counts, for every core, the partitions of tables
// the workload touches at virtual time at; it drives the oversaturation
// penalty of the data-oriented designs. The result is indexed by CoreID.
func (e *Engine) activePartitionsPerCore(p *partition.Placement, at vclock.Nanos) []int32 {
	active := make(map[string]bool)
	weights := e.wl.ClassWeights(at)
	for class, w := range weights {
		if w <= 0 {
			continue
		}
		if g, ok := e.wl.Graph(class); ok {
			for _, n := range g.Nodes {
				active[n.Table] = true
			}
		}
	}
	counts := make([]int32, e.cfg.Topology.NumCores())
	for name, tp := range p.Tables {
		if len(active) > 0 && !active[name] {
			continue
		}
		for _, c := range tp.Cores {
			if int(c) >= 0 && int(c) < len(counts) {
				counts[c]++
			}
		}
	}
	return counts
}
