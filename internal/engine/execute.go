package engine

import (
	"errors"

	"atrapos/internal/core"
	"atrapos/internal/lock"
	"atrapos/internal/numa"
	"atrapos/internal/obs"
	"atrapos/internal/schema"
	"atrapos/internal/storage"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

// performAction executes one storage access on behalf of the given executing
// core and returns its cost plus whether the action actually modified the
// table. Duplicate inserts are treated as updates and missing rows as no-ops,
// so replayed or colliding generator keys never wedge an experiment; applied
// is false for those no-ops so the caller can log them faithfully.
func performAction(tbl *storage.Table, a workload.Action, from topology.CoreID) (cost numa.Cost, applied bool, err error) {
	switch a.Op {
	case workload.Read:
		_, cost, err := tbl.Read(from, a.Key)
		if errors.Is(err, storage.ErrNotFound) {
			return cost, false, nil
		}
		return cost, false, err
	case workload.Update:
		fn := incrementLastColumn
		if a.Row != nil {
			row := a.Row
			fn = func(schema.Row) schema.Row { return row }
		}
		cost, err := tbl.Update(from, a.Key, fn)
		if errors.Is(err, storage.ErrNotFound) {
			return cost, false, nil
		}
		return cost, err == nil, err
	case workload.Insert:
		cost, err := tbl.Insert(from, a.Key, a.Row)
		if errors.Is(err, storage.ErrDuplicate) {
			extra, uerr := tbl.Update(from, a.Key, func(schema.Row) schema.Row { return a.Row })
			return cost + extra, uerr == nil, uerr
		}
		return cost, err == nil, err
	case workload.Delete:
		cost, err := tbl.Delete(from, a.Key)
		if errors.Is(err, storage.ErrNotFound) {
			return cost, false, nil
		}
		return cost, err == nil, err
	default:
		return 0, false, nil
	}
}

// incrementLastColumn is the in-place update applied when an update action
// carries no row payload. It is a package-level function rather than a
// closure in performAction (a closure capturing the action escapes into the
// storage layer and costs one heap allocation per update), and the counter
// wraps at 256 so the boxed value stays inside the runtime's static
// small-integer cache — an unbounded counter would allocate on every store
// into the schema.Value interface. No experiment reads the counter; the row
// write itself is what the model charges for.
func incrementLastColumn(r schema.Row) schema.Row {
	if len(r) > 1 {
		if v, ok := r[len(r)-1].(int64); ok {
			r[len(r)-1] = (v + 1) & 0xff
		}
	}
	return r
}

// recordTypeFor maps an executed write action to its log record type. A write
// that found no row to modify logs a NoopWrite: the append is still charged —
// the miss is only discovered inside the storage layer, after the log space is
// reserved — but redo must not re-establish a key the action never touched.
func recordTypeFor(op workload.OpType, applied bool) wal.RecordType {
	if !applied {
		return wal.NoopWrite
	}
	switch op {
	case workload.Insert:
		return wal.Insert
	case workload.Delete:
		return wal.Delete
	default:
		return wal.Update
	}
}

// lockModeFor maps an operation to the row lock mode and its table intention mode.
func lockModeFor(op workload.OpType) (row, table lock.Mode) {
	if op.IsWrite() {
		return lock.X, lock.IX
	}
	return lock.S, lock.IS
}

// effectiveCore redirects work owned by a core on a failed socket to the
// corresponding core of the next alive socket. Static designs keep their
// partitioning plan after a failure, so the redirected work overloads the
// fallback socket — the behaviour Figure 12 shows for the static system.
func (e *Engine) effectiveCore(c topology.CoreID) topology.CoreID {
	top := e.cfg.Topology
	s := top.SocketOf(c)
	if top.Alive(s) {
		return c
	}
	core, err := top.Core(c)
	if err != nil {
		return 0
	}
	for off := 1; off <= top.Sockets(); off++ {
		cand := topology.SocketID((int(s) + off) % top.Sockets())
		if top.Alive(cand) {
			return top.CoresOn(cand)[core.LocalIndex].ID
		}
	}
	return c
}

// lockedPartition remembers a (table, partition/site) whose local lock table
// holds locks on behalf of the running transaction.
type lockedPartition struct {
	table string
	idx   int
	core  topology.CoreID
	sock  topology.SocketID
}

// releaseLocal releases every partition-local lock table the transaction
// touched, exactly once per distinct (table, partition). The release cost is
// charged to the owner recorded by the partition's most recent acquisition:
// if a partition was re-locked from a different core mid-transaction (a
// socket failure redirected ownership), the last recorded owner is the core
// that actually holds the lock table, so the cost lands there consistently
// rather than on whichever entry happened to be recorded first.
func (e *Engine) releaseLocal(snap *stateSnapshot, id lock.TxnID, locked []lockedPartition) {
	for i := range locked {
		last := true
		for j := i + 1; j < len(locked); j++ {
			if locked[j].table == locked[i].table && locked[j].idx == locked[i].idx {
				last = false
				break
			}
		}
		if !last {
			continue
		}
		lp := locked[i]
		if lm, err := snap.runtime.Locks(lp.table, lp.idx); err == nil {
			cost, _ := lm.ReleaseAll(lp.sock, id)
			e.charge(lp.core, vclock.Locking, cost)
		}
	}
}

// executeCentralized runs one transaction under the traditional centralized
// shared-everything design. All costs are charged to the coordinating worker.
func (e *Engine) executeCentralized(worker topology.CoreID, t *workload.Transaction, sc *execScratch) bool {
	s := e.cfg.Topology.SocketOf(worker)
	tx := &sc.txn
	e.charge(worker, vclock.Management, e.txnMgr.BeginInto(tx, worker))

	abort := func() bool {
		cost, _ := e.centralLocks.ReleaseAll(s, lock.TxnID(tx.ID))
		e.charge(worker, vclock.Locking, cost)
		abortCost, _ := e.txnMgr.Abort(tx)
		e.charge(worker, vclock.Management, abortCost)
		return false
	}

	// Table-level intention locks first (hierarchical locking), then row locks.
	for _, a := range t.Actions {
		_, tm := lockModeFor(a.Op)
		sc.upsertTableMode(a.Table, tm)
	}
	for _, tm := range sc.tableModes {
		cost, err := e.centralLocks.Acquire(s, lock.TxnID(tx.ID), lock.TableResource(tm.table), tm.mode)
		e.charge(worker, vclock.Locking, cost)
		e.traceOp(sc, obs.KindLockAcquire, worker, cost, errArg(err))
		if err != nil {
			return abort()
		}
	}

	wrote := false
	for _, a := range t.Actions {
		rowMode, _ := lockModeFor(a.Op)
		cost, err := e.centralLocks.Acquire(s, lock.TxnID(tx.ID), lock.RowResource(a.Table, a.Key), rowMode)
		e.charge(worker, vclock.Locking, cost)
		e.traceOp(sc, obs.KindLockAcquire, worker, cost, errArg(err))
		if err != nil {
			return abort()
		}
		execCost, applied, err := performAction(e.tables[a.Table], a, worker)
		e.charge(worker, vclock.Execution, execCost)
		if err != nil {
			return abort()
		}
		if a.Op.IsWrite() {
			wrote = true
			_, logCost := e.log.Append(s, wal.Record{Txn: uint64(tx.ID), Type: recordTypeFor(a.Op, applied), Table: a.Table, Key: a.Key, Size: 96})
			e.charge(worker, vclock.Logging, logCost)
			e.traceOp(sc, obs.KindWALAppend, worker, logCost, 96)
		}
	}
	if wrote {
		_, logCost := e.log.Append(s, wal.Record{Txn: uint64(tx.ID), Type: wal.Commit, Size: 48})
		e.charge(worker, vclock.Logging, logCost)
		e.traceOp(sc, obs.KindWALAppend, worker, logCost, 48)
		e.charge(worker, vclock.Logging, e.log.Flush(s, e.log.Tail(), e.coreTime(worker)))
	}
	relCost, _ := e.centralLocks.ReleaseAll(s, lock.TxnID(tx.ID))
	e.charge(worker, vclock.Locking, relCost)
	for _, tm := range sc.tableModes {
		e.centralLocks.RetainForSLI(s, lock.TableResource(tm.table), tm.mode)
	}
	commitCost, err := e.txnMgr.Commit(tx)
	e.charge(worker, vclock.Management, commitCost)
	return err == nil
}

// executeSharedNothing runs one transaction under the shared-nothing designs.
// The worker's own instance coordinates; actions owned by other instances are
// shipped over shared-memory channels and, for updates, committed with 2PC.
// Every piece of instance wiring — sites, per-island logs, the 2PC
// coordinator, the transaction manager — comes from the snapshot taken for
// this transaction, so an online island-level change never splits one
// transaction across two machine layouts.
func (e *Engine) executeSharedNothing(worker topology.CoreID, t *workload.Transaction, sc *execScratch) bool {
	snap := sc.snap
	w := snap.wiring
	homeSite := w.siteOf(worker)
	homeSocket := e.cfg.Topology.SocketOf(worker)

	tx := &sc.txn
	e.charge(worker, vclock.Management, w.txnMgr.BeginInto(tx, worker))

	// siteInfo returns the core that executes an action owned by site: work on
	// the coordinator's own instance runs on the coordinating core, work on a
	// remote instance runs on that instance's "peer" core (the island member
	// with the same local index), which is how a real instance spreads
	// incoming remote requests over all of its cores rather than funnelling
	// them through one. Single-core islands (extreme granularity) have exactly
	// one choice.
	workerLocal := 0
	if c, err := e.cfg.Topology.Core(worker); err == nil {
		workerLocal = c.LocalIndex
	}
	siteInfo := func(site int) (topology.CoreID, topology.SocketID) {
		if site < 0 || site >= len(w.sites) {
			site = 0
		}
		if site == homeSite {
			return worker, homeSocket
		}
		if cores := w.siteCores[site]; len(cores) > 1 {
			peer := cores[workerLocal%len(cores)]
			return peer.ID, peer.Socket
		}
		c := w.sites[site]
		return c.ID, c.Socket
	}

	remote := false

	abort := func() bool {
		e.releaseLocal(snap, lock.TxnID(tx.ID), sc.locked)
		abortCost, _ := w.txnMgr.Abort(tx)
		e.charge(worker, vclock.Management, abortCost)
		return false
	}

	wrote := false
	for _, a := range t.Actions {
		tp, ok := snap.placement.Table(a.Table)
		if !ok {
			continue
		}
		site := tp.PartitionFor(a.Key)
		siteCore, siteSock := siteInfo(site)
		sc.addParticipant(site)
		if site != homeSite {
			remote = true
			sc.addRemoteCore(siteCore)
			// Request and response over the shared-memory channel. The
			// core-granular cost makes messages between die islands of one
			// socket cheaper than cross-socket messages.
			msg := e.domain.CoreMessageCost(worker, siteCore) + e.domain.CoreMessageCost(siteCore, worker)
			e.charge(worker, vclock.Communication, msg)
		}
		lm, err := snap.runtime.Locks(a.Table, site)
		if err != nil {
			continue
		}
		rowMode, _ := lockModeFor(a.Op)
		lockCost, lockErr := lm.Acquire(siteSock, lock.TxnID(tx.ID), lock.RowResource(a.Table, a.Key), rowMode)
		e.charge(siteCore, vclock.Locking, lockCost)
		e.traceOp(sc, obs.KindLockAcquire, siteCore, lockCost, errArg(lockErr))
		sc.locked = append(sc.locked, lockedPartition{table: a.Table, idx: site, core: siteCore, sock: siteSock})
		if lockErr != nil {
			return abort()
		}
		execCost, applied, err := performAction(e.tables[a.Table], a, siteCore)
		e.charge(siteCore, vclock.Execution, execCost)
		if err != nil {
			return abort()
		}
		if a.Op.IsWrite() {
			wrote = true
			// Each island appends to its own write-ahead log.
			_, logCost := w.logs.Log(site).Append(siteSock, wal.Record{Txn: uint64(tx.ID), Type: recordTypeFor(a.Op, applied), Table: a.Table, Key: a.Key, Size: 96})
			e.charge(siteCore, vclock.Logging, logCost)
			e.traceOp(sc, obs.KindWALAppend, siteCore, logCost, 96)
		}
	}

	committed2PC := true
	if remote && wrote {
		// Distributed commit with the standard two-phase commit protocol;
		// every participating instance (island) is its own 2PC site.
		if out, err := w.coordinator.Run(tx, worker, homeSite, sc.participants, e.coreTime(worker), false); err == nil {
			committed2PC = out.Committed
			for comp, cost := range out.ByComponent {
				e.charge(worker, vclock.Component(comp), cost)
			}
			// The participant instances' worker threads stay blocked, holding
			// their locks, until the protocol reaches its decision: charge
			// them the protocol latency as lock-holding time. This is the
			// dominant overhead of distributed update transactions the paper
			// analyzes in Figure 4.
			hold := out.ByComponent[vclock.Communication] + out.ByComponent[vclock.Logging]
			for _, c := range sc.remoteCores {
				e.charge(c, vclock.Locking, hold)
			}
			e.trace2PC(sc, worker, out.TotalCost(), out.PrepareCost, len(sc.participants), out.Committed)
		}
	} else if wrote {
		home := w.logs.Log(homeSite)
		_, logCost := home.Append(homeSocket, wal.Record{Txn: uint64(tx.ID), Type: wal.Commit, Size: 48})
		e.charge(worker, vclock.Logging, logCost)
		e.traceOp(sc, obs.KindWALAppend, worker, logCost, 48)
		e.charge(worker, vclock.Logging, home.Flush(homeSocket, home.Tail(), e.coreTime(worker)))
	}

	e.releaseLocal(snap, lock.TxnID(tx.ID), sc.locked)

	if !committed2PC {
		abortCost, _ := w.txnMgr.Abort(tx)
		e.charge(worker, vclock.Management, abortCost)
		return false
	}
	commitCost, err := w.txnMgr.Commit(tx)
	e.charge(worker, vclock.Management, commitCost)
	return err == nil
}

// executePartitioned runs one transaction under the data-oriented designs
// (PLP, HWAware, ATraPos): actions are routed to partition-owning cores,
// partition-local lock tables replace the centralized lock manager, and
// synchronization points pay the paper's cross-socket rendezvous cost.
func (e *Engine) executePartitioned(worker topology.CoreID, t *workload.Transaction, sc *execScratch) bool {
	coordSocket := e.cfg.Topology.SocketOf(worker)
	snap := sc.snap

	tx := &sc.txn
	e.charge(worker, vclock.Management, e.txnMgr.BeginInto(tx, worker))

	// owners records, per action index, the partition that executed it; the
	// synchronization points below index into it.
	if cap(sc.owners) < len(t.Actions) {
		sc.owners = make([]lockedPartition, len(t.Actions))
	} else {
		sc.owners = sc.owners[:len(t.Actions)]
	}
	for i := range sc.owners {
		sc.owners[i] = lockedPartition{}
	}

	abort := func() bool {
		e.releaseLocal(snap, lock.TxnID(tx.ID), sc.locked)
		abortCost, _ := e.txnMgr.Abort(tx)
		e.charge(worker, vclock.Management, abortCost)
		return false
	}

	wrote := false
	for i, a := range t.Actions {
		tp, ok := snap.placement.Table(a.Table)
		if !ok {
			continue
		}
		idx := tp.PartitionFor(a.Key)
		owner := e.effectiveCore(tp.Cores[idx])
		oSock := e.cfg.Topology.SocketOf(owner)
		pr := lockedPartition{table: a.Table, idx: idx, core: owner, sock: oSock}
		sc.owners[i] = pr

		// Action routing to the owning worker thread: an enqueue on the
		// partition's action queue, i.e. an atomic on a cache line owned by
		// the target island (DORA-style action passing, much cheaper than the
		// inter-process channels of the shared-nothing configurations). The
		// core-granular cost prices same-socket cross-die routing at the
		// cheaper die-hop rate.
		if owner != worker {
			e.charge(worker, vclock.Communication, e.domain.CoreAtomicCost(worker, owner))
		}
		// Partition-local locking (no centralized lock manager).
		lm, err := snap.runtime.Locks(a.Table, idx)
		if err != nil {
			continue
		}
		rowMode, _ := lockModeFor(a.Op)
		lockCost, lockErr := lm.Acquire(oSock, lock.TxnID(tx.ID), lock.RowResource(a.Table, a.Key), rowMode)
		e.charge(pr.core, vclock.Locking, lockCost)
		e.traceOp(sc, obs.KindLockAcquire, pr.core, lockCost, errArg(lockErr))
		sc.locked = append(sc.locked, pr)
		if lockErr != nil {
			return abort()
		}
		// Execute the action on the owning core, inflated by the
		// oversaturation factor if that core hosts several partition workers.
		execCost, applied, err := performAction(e.tables[a.Table], a, owner)
		factor := saturationFactor(e.cfg.OversaturationPenalty, snap.active(tp.Cores[idx]))
		execCost = numa.Cost(float64(execCost) * factor)
		e.charge(pr.core, vclock.Execution, execCost)
		if err != nil {
			return abort()
		}
		if a.Op.IsWrite() {
			wrote = true
			_, logCost := e.log.Append(oSock, wal.Record{Txn: uint64(tx.ID), Type: recordTypeFor(a.Op, applied), Table: a.Table, Key: a.Key, Size: 96})
			e.charge(pr.core, vclock.Logging, logCost)
			e.traceOp(sc, obs.KindWALAppend, pr.core, logCost, 96)
		}
		// Monitoring: thread-local trace arrays (ATraPos only).
		if e.adaptive != nil {
			e.adaptive.recordAction(a.Table, a.Key, vclock.Nanos(execCost))
			e.charge(pr.core, vclock.Management, e.cfg.MonitoringCostPerAction)
		}
	}

	// Synchronization points: actions running on different islands must
	// exchange their intermediate results. The cost is the hierarchical
	// rendezvous formula: pairs of participants spanning sockets pay socket
	// hops, pairs spanning dies of one socket pay the cheaper die hops.
	for _, sp := range t.SyncPoints {
		sc.syncCores = sc.syncCores[:0]
		sc.syncRefs = sc.syncRefs[:0]
		for _, ai := range sp.Actions {
			if ai < 0 || ai >= len(sc.owners) || sc.owners[ai].table == "" {
				continue
			}
			sc.syncCores = append(sc.syncCores, sc.owners[ai].core)
			sc.syncRefs = append(sc.syncRefs, core.PartitionRef{Table: sc.owners[ai].table, Partition: sc.owners[ai].idx})
		}
		syncCost := e.domain.SyncPointCostAt(sc.syncCores, sp.Bytes)
		e.charge(worker, vclock.Communication, syncCost)
		e.traceOp(sc, obs.KindSyncPoint, worker, syncCost, int64(sp.Bytes))
		if e.adaptive != nil {
			e.adaptive.recordSync(sc.syncRefs, sp.Bytes)
		}
	}

	if wrote {
		_, logCost := e.log.Append(coordSocket, wal.Record{Txn: uint64(tx.ID), Type: wal.Commit, Size: 48})
		e.charge(worker, vclock.Logging, logCost)
		e.traceOp(sc, obs.KindWALAppend, worker, logCost, 48)
		e.charge(worker, vclock.Logging, e.log.Flush(coordSocket, e.log.Tail(), e.coreTime(worker)))
	}
	e.releaseLocal(snap, lock.TxnID(tx.ID), sc.locked)
	commitCost, err := e.txnMgr.Commit(tx)
	e.charge(worker, vclock.Management, commitCost)
	return err == nil
}

// execute dispatches one transaction to the design-specific path and returns
// whether it committed. The caller owns sc and must have set sc.snap.
func (e *Engine) execute(worker topology.CoreID, t *workload.Transaction, sc *execScratch) bool {
	sc.reset()
	switch e.cfg.Design {
	case Centralized:
		return e.executeCentralized(worker, t, sc)
	case SharedNothingExtreme, SharedNothingCoarse, SharedNothing:
		return e.executeSharedNothing(worker, t, sc)
	default:
		return e.executePartitioned(worker, t, sc)
	}
}
