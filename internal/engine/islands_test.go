package engine

import (
	"testing"

	"atrapos/internal/topology"
	"atrapos/internal/workload"
)

// runIsland executes the multisite microbenchmark on the given design and
// island level with a single worker, so results are exactly reproducible.
func runIsland(t *testing.T, top *topology.Topology, design Design, level topology.Level, pct int) *Result {
	t.Helper()
	e, err := New(Config{
		Design:      design,
		IslandLevel: level,
		Workload:    workload.MultisiteUpdate(3000, pct),
		Topology:    top,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(RunOptions{Transactions: 400, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSharedNothingAliases asserts the legacy enum values are exact aliases
// of the parametric granularity: byte-for-byte identical results, not merely
// similar ones.
func TestSharedNothingAliases(t *testing.T) {
	cases := []struct {
		legacy Design
		level  topology.Level
	}{
		{SharedNothingExtreme, topology.LevelCore},
		{SharedNothingCoarse, topology.LevelSocket},
	}
	for _, tc := range cases {
		for _, pct := range []int{0, 50} {
			legacy := runIsland(t, smallTopology(), tc.legacy, 0, pct)
			param := runIsland(t, smallTopology(), SharedNothing, tc.level, pct)
			if legacy.Committed != param.Committed || legacy.Aborted != param.Aborted {
				t.Errorf("%v vs shared-nothing@%v at %d%%: committed %d/%d aborted %d/%d",
					tc.legacy, tc.level, pct, legacy.Committed, param.Committed, legacy.Aborted, param.Aborted)
			}
			if legacy.VirtualTime != param.VirtualTime || legacy.ThroughputTPS != param.ThroughputTPS {
				t.Errorf("%v vs shared-nothing@%v at %d%%: vt %v/%v tps %f/%f",
					tc.legacy, tc.level, pct, legacy.VirtualTime, param.VirtualTime,
					legacy.ThroughputTPS, param.ThroughputTPS)
			}
			if legacy.MultiSite != param.MultiSite {
				t.Errorf("%v vs shared-nothing@%v at %d%%: multisite %d/%d",
					tc.legacy, tc.level, pct, legacy.MultiSite, param.MultiSite)
			}
		}
	}
}

// TestSharedNothingDefaultsToSocket checks the parametric design's zero-value
// granularity.
func TestSharedNothingDefaultsToSocket(t *testing.T) {
	def := runIsland(t, smallTopology(), SharedNothing, 0, 50)
	coarse := runIsland(t, smallTopology(), SharedNothingCoarse, 0, 50)
	if def.Committed != coarse.Committed || def.ThroughputTPS != coarse.ThroughputTPS {
		t.Errorf("unset IslandLevel should mean socket granularity: %f vs %f", def.ThroughputTPS, coarse.ThroughputTPS)
	}
}

// TestMachineLevelIslands checks the coarsest granularity: one instance, so
// no transaction is ever multi-site and no 2PC runs, at the price of shared
// state.
func TestMachineLevelIslands(t *testing.T) {
	e, err := New(Config{
		Design:      SharedNothing,
		IslandLevel: topology.LevelMachine,
		Workload:    workload.MultisiteUpdate(3000, 100),
		Topology:    smallTopology(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.numSites() != 1 {
		t.Fatalf("machine-level deployment has %d sites, want 1", e.numSites())
	}
	res, err := e.Run(RunOptions{Transactions: 400, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("machine-level islands should commit transactions")
	}
	if res.Breakdown.ByComp[2] != 0 { // vclock.Communication
		// With a single site no work is ever shipped to a remote instance.
		t.Errorf("machine-level islands should have zero communication time, got %v", res.Breakdown.ByComp)
	}
}

// TestDieLevelIslands deploys one instance per CCX on a chiplet machine and
// checks the site structure tracks the die islands.
func TestDieLevelIslands(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 2, CoresPerSocket: 8, DiesPerSocket: 4})
	e, err := New(Config{
		Design:      SharedNothing,
		IslandLevel: topology.LevelDie,
		Workload:    workload.MultisiteUpdate(3000, 50),
		Topology:    top,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.numSites() != top.NumDies() {
		t.Fatalf("die-level deployment has %d sites, want %d", e.numSites(), top.NumDies())
	}
	for site, cores := range e.state.snapshot().wiring.siteCores {
		for _, c := range cores {
			if top.DieOf(c.ID) != topology.DieID(site) {
				t.Errorf("site %d contains core %d of die %d", site, c.ID, top.DieOf(c.ID))
			}
		}
	}
	res, err := e.Run(RunOptions{Transactions: 400, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 || res.MultiSite == 0 {
		t.Fatalf("die-level run should commit and see multisite work: %+v", res)
	}
}

// TestDieLevelCheaperThanItsSocketSplit: on a chiplet machine with expensive
// inter-socket links, a die-grained deployment at moderate multisite load
// must beat a core-grained one — the sub-socket island absorbs coordination
// that would otherwise be per-core.
func TestDieLevelBeatsCoreLevelOnChiplet(t *testing.T) {
	top := func() *topology.Topology {
		return topology.MustNew(topology.Config{
			Sockets: 2, CoresPerSocket: 16, DiesPerSocket: 4,
			Distance: [][]int{{0, 2}, {2, 0}},
		})
	}
	core := runIsland(t, top(), SharedNothing, topology.LevelCore, 50)
	die := runIsland(t, top(), SharedNothing, topology.LevelDie, 50)
	if die.ThroughputTPS <= core.ThroughputTPS {
		t.Errorf("die islands (%f) should beat core islands (%f) at 50%% multisite on a chiplet machine",
			die.ThroughputTPS, core.ThroughputTPS)
	}
}

// TestZeroMultisiteZeroCommunication: with the generators' per-site key
// ranges aligned to btree.UniformBounds, a 0% multisite workload never leaks
// a "local" key into a neighbouring instance — even on a 32-site machine
// whose island count does not divide the row count (3000/32 truncates; the
// old rows/numSites arithmetic sent a few keys per site next door, visible
// as nonzero communication).
func TestZeroMultisiteZeroCommunication(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 2, CoresPerSocket: 16, DiesPerSocket: 4})
	if n := top.NumCores(); n != 32 {
		t.Fatalf("want a 32-core machine, got %d", n)
	}
	res := runIsland(t, top, SharedNothing, topology.LevelCore, 0)
	if res.Committed == 0 {
		t.Fatal("run should commit")
	}
	if res.MultiSite != 0 {
		t.Fatalf("0%% multisite generated %d multisite transactions", res.MultiSite)
	}
	if comm := res.Breakdown.ByComp[2]; comm != 0 { // vclock.Communication
		t.Errorf("0%% multisite on 32 sites should have zero communication time, got %v", comm)
	}
}

// TestInvalidIslandLevel rejects out-of-range granularities.
func TestInvalidIslandLevel(t *testing.T) {
	_, err := New(Config{
		Design:      SharedNothing,
		IslandLevel: topology.Level(42),
		Workload:    workload.MultisiteUpdate(100, 0),
		Topology:    smallTopology(),
		SkipLoad:    true,
	})
	if err == nil {
		t.Fatal("invalid island level should be rejected")
	}
}

// TestIslandLevelSurvivesSocketFailure: a die-level deployment on a machine
// with a failed socket builds sites only from alive islands.
func TestIslandLevelSurvivesSocketFailure(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 2, CoresPerSocket: 8, DiesPerSocket: 2})
	if err := top.FailSocket(1); err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Design:      SharedNothing,
		IslandLevel: topology.LevelDie,
		Workload:    workload.MultisiteUpdate(3000, 50),
		Topology:    top,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.numSites() != 2 {
		t.Fatalf("only socket 0's two dies should form sites, got %d", e.numSites())
	}
	res, err := e.Run(RunOptions{Transactions: 200, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("run on the surviving islands should commit")
	}
}
