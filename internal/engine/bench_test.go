package engine

import (
	"math/rand"
	"testing"

	"atrapos/internal/backend"
	"atrapos/internal/partition"
	"atrapos/internal/topology"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

// benchEngine builds a TATP engine on a small machine for hot-path benches.
func benchEngine(b *testing.B, cfg Config) *Engine {
	b.Helper()
	cfg.Workload = workload.MustTATP(workload.TATPOptions{Subscribers: 4000})
	cfg.Topology = smallTopology()
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// benchSteadyState measures the per-transaction cost of the steady-state
// execution path of one design: generate, dispatch and execute, exactly as
// one worker of Run does, without the per-run setup. The first iterations
// grow the reusable buffers; after the warmup below, the partitioned designs
// must report 0 allocs/op (the hot-path invariant DESIGN.md documents).
func benchSteadyState(b *testing.B, e *Engine, adapt bool) {
	b.Helper()
	src := &splitMix{}
	rng := rand.New(src)
	sc := newExecScratch()
	ctx := workload.GenContext{Rng: rng, NumSites: e.numSites()}

	runOne := func(n int64) {
		alive := e.aliveCores()
		coord := alive[int(n)%len(alive)].ID
		src.seed(n)
		ctx.At = e.coreTime(coord)
		ctx.HomeSite = e.siteOf(coord)
		t := e.wl.Generate(&ctx)
		sc.snap = e.state.snapshot()
		if e.cfg.Design == PLP || e.cfg.Design == HWAware || e.cfg.Design == ATraPos {
			if a, ok := dominantAction(t); ok {
				if tp, ok := sc.snap.placement.Table(a.Table); ok {
					coord = e.effectiveCore(tp.CoreFor(a.Key))
				}
			}
		}
		committed := e.execute(coord, t, sc)
		e.noteTime(coord)
		if committed {
			e.accounts[coord].committed.Add(1)
		}
		if adapt && e.adaptive != nil {
			// The workers' entire adaptation obligation: the shape counters
			// (granularity mode) and the boundary check. (No planner goroutine
			// runs here, so crossings are no-ops.)
			e.adaptive.recordTxn(coord, t)
			e.adaptive.noteBoundary()
		}
	}

	// Warm up: grow every reusable buffer, pool and cache to its steady size.
	for i := int64(0); i < 2000; i++ {
		runOne(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(int64(i) + 2000)
	}
}

// BenchmarkExecute reports the simulator's real (wall-clock and allocation)
// cost per simulated transaction for every design on the TATP mix.
//
//	go test -bench BenchmarkExecute -benchmem ./internal/engine
func BenchmarkExecute(b *testing.B) {
	b.Run("centralized", func(b *testing.B) {
		benchSteadyState(b, benchEngine(b, Config{Design: Centralized}), false)
	})
	b.Run("shared-nothing-extreme", func(b *testing.B) {
		benchSteadyState(b, benchEngine(b, Config{Design: SharedNothingExtreme}), false)
	})
	b.Run("shared-nothing-die", func(b *testing.B) {
		// The parametric design at die granularity on a hierarchical machine:
		// exercises the die-level cost terms and per-island logs on the hot
		// path, which must stay allocation free like every other design.
		cfg := Config{Design: SharedNothing, IslandLevel: topology.LevelDie}
		cfg.Workload = workload.MustTATP(workload.TATPOptions{Subscribers: 4000})
		cfg.Topology = topology.MustNew(topology.Config{
			Sockets: 2, CoresPerSocket: 8, DiesPerSocket: 2,
		})
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchSteadyState(b, e, false)
	})
	b.Run("plp", func(b *testing.B) {
		benchSteadyState(b, benchEngine(b, Config{Design: PLP}), false)
	})
	b.Run("atrapos", func(b *testing.B) {
		// Monitoring on: the steady-state ATraPos path records every action
		// and synchronization point into the monitor.
		benchSteadyState(b, benchEngine(b, Config{Design: ATraPos, Monitoring: true}), false)
	})
	b.Run("atrapos-adaptive", func(b *testing.B) {
		// Full adaptive loop including the per-transaction boundary check.
		benchSteadyState(b, benchEngine(b, Config{Design: ATraPos, Adaptive: true}), true)
	})
	b.Run("shared-nothing-devices", func(b *testing.B) {
		// Per-island logs bound to modeled log devices: every group commit
		// runs the device's queueing model, which must be as allocation free
		// as the flat flush cost it replaces.
		cfg := Config{Design: SharedNothing, IslandLevel: topology.LevelDie, DeviceLayout: "nvme-per-die-pair"}
		cfg.Workload = workload.MustTATP(workload.TATPOptions{Subscribers: 4000})
		cfg.Topology = topology.MustNew(topology.Config{
			Sockets: 2, CoresPerSocket: 8, DiesPerSocket: 2,
		})
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchSteadyState(b, e, false)
	})
	b.Run("shared-nothing-adaptive", func(b *testing.B) {
		// Adaptive granularity: the workers' obligations on top of the plain
		// shared-nothing path are the transaction-shape counters (five atomic
		// adds) and the boundary check — still allocation free.
		benchSteadyState(b, benchEngine(b, Config{Design: SharedNothing, Adaptive: true}), true)
	})
	b.Run("executed-hash", func(b *testing.B) {
		// The executed backend's steady state, driven inline on the bench
		// goroutine (machine grain = one executor, every op local): generate,
		// route, real index ops, value-log group commit. The executed budget
		// is ≤ 1 alloc/op where the priced designs must hold exactly 0;
		// TestExecutedAllocBudget asserts it over full RunExecuted runs.
		cfg := Config{Design: SharedNothing, IslandLevel: topology.LevelMachine, Backend: backend.Hash}
		cfg.Workload = workload.MustTATP(workload.TATPOptions{Subscribers: 4000})
		cfg.Topology = smallTopology()
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		snap := e.state.snapshot()
		if err := e.loadBackend(snap); err != nil {
			b.Fatal(err)
		}
		ex := backend.NewExecutors(e.HashBackend())[0]
		tps := make([]*partition.TablePlacement, len(e.wl.Tables))
		tableIdx := make(map[string]int, len(e.wl.Tables))
		for i, td := range e.wl.Tables {
			tps[i], _ = snap.placement.Table(td.Schema.Name)
			tableIdx[td.Schema.Name] = i
		}
		w := snap.wiring
		src := &splitMix{}
		ctx := workload.GenContext{Rng: rand.New(src), NumSites: 1}
		runOne := func(n int64) {
			src.seed(n)
			t := e.wl.Generate(&ctx)
			txnID := uint64(n + 1)
			for ai := range t.Actions {
				a := &t.Actions[ai]
				ti := tableIdx[a.Table]
				shard := w.siteOf(tps[ti].CoreFor(a.Key))
				switch a.Op {
				case workload.Read:
					ex.Get(shard, ti, a.Key)
				case workload.Update:
					v, _ := ex.Get(shard, ti, a.Key)
					ex.Put(shard, ti, a.Key, txnID, v+1)
				case workload.Insert:
					ex.Put(shard, ti, a.Key, txnID, uint64(a.Key))
				case workload.Delete:
					ex.Delete(shard, ti, a.Key, txnID)
				}
			}
			ex.CommitLocal(txnID, int64(n))
		}
		for i := int64(0); i < 2000; i++ {
			runOne(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOne(int64(i) + 2000)
		}
	})
	b.Run("shared-nothing-coalescing", func(b *testing.B) {
		// Write-combining group commit: staging, folding and physical flushes
		// on every commit path, on the zipf-hotkey write shape that exercises
		// the accumulator hardest. Must stay allocation free once the staging
		// slice pool and net-delta buffers have warmed up.
		lc := wal.DefaultConfig()
		lc.CoalesceRecords = 8
		cfg := Config{Design: SharedNothing, IslandLevel: topology.LevelDie, LogConfig: &lc}
		cfg.Workload = workload.ZipfHotkey(4000, 10, 30)
		cfg.Topology = topology.MustNew(topology.Config{
			Sockets: 2, CoresPerSocket: 8, DiesPerSocket: 2,
		})
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchSteadyState(b, e, false)
	})
}
