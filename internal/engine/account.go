package engine

import (
	"sync/atomic"

	"atrapos/internal/numa"
	"atrapos/internal/partition"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// coreAccount is the virtual-time account of one logical core. Unlike
// vclock.Clock it is safe for concurrent use, because several worker
// goroutines may charge costs to the same core (e.g. data-oriented execution
// attributes action costs to the partition-owning core, not to the
// coordinating worker).
//
// The struct is padded to exactly one 64-byte cache line so that adjacent
// accounts in the engine's accounts array never share a line: with 80 cores
// and tens of workers hammering their own account, false sharing between
// neighbouring elements would otherwise put real (host-machine) coherence
// traffic on the simulator's hottest write path.
type coreAccount struct {
	busy      atomic.Int64    // 8 bytes
	comp      [5]atomic.Int64 // 40 bytes
	committed atomic.Int64    // 8 bytes
	_         [8]byte         // pad 56 -> 64 bytes
}

func newAccounts(n int) []coreAccount {
	return make([]coreAccount, n)
}

func (a *coreAccount) charge(comp vclock.Component, c numa.Cost) {
	if c <= 0 {
		return
	}
	a.busy.Add(int64(c))
	if comp >= 0 && int(comp) < len(a.comp) {
		a.comp[comp].Add(int64(c))
	}
}

func (a *coreAccount) time() vclock.Nanos { return vclock.Nanos(a.busy.Load()) }

// charge adds cost c in component comp to core's account.
func (e *Engine) charge(core topology.CoreID, comp vclock.Component, c numa.Cost) {
	if int(core) < 0 || int(core) >= len(e.accounts) {
		core = 0
	}
	e.accounts[core].charge(comp, c)
}

// chargeAll adds cost c to every core's account; used when the system pauses
// all regular work, e.g. during repartitioning.
func (e *Engine) chargeAll(comp vclock.Component, c numa.Cost) {
	for i := range e.accounts {
		e.accounts[i].charge(comp, c)
	}
	e.noteTime(0)
}

// virtualNow returns the engine-wide virtual time as tracked by the monotonic
// high-water mark. It is a lower bound on the exact value (the busiest core's
// clock) that workers advance once per transaction; because coordinators
// round-robin over all alive cores, the mark tracks the exact value closely.
// Use virtualNowExact at sample/event boundaries where exactness matters.
func (e *Engine) virtualNow() vclock.Nanos {
	return vclock.Nanos(e.hwm.Load())
}

// virtualNowExact recomputes the engine-wide virtual time exactly by scanning
// every core's clock, and folds the result back into the high-water mark. It
// is O(cores) and intended for run boundaries, monitoring-interval checks and
// final results — not the per-transaction path.
func (e *Engine) virtualNowExact() vclock.Nanos {
	var max int64
	for i := range e.accounts {
		if b := e.accounts[i].busy.Load(); b > max {
			max = b
		}
	}
	for {
		cur := e.hwm.Load()
		if max <= cur {
			return vclock.Nanos(cur)
		}
		if e.hwm.CompareAndSwap(cur, max) {
			return vclock.Nanos(max)
		}
	}
}

// noteTime folds core's current clock into the engine's virtual-time
// high-water mark. Workers call it once per transaction for the core they
// coordinated on.
func (e *Engine) noteTime(core topology.CoreID) {
	if int(core) < 0 || int(core) >= len(e.accounts) {
		return
	}
	t := e.accounts[core].busy.Load()
	for {
		cur := e.hwm.Load()
		if t <= cur || e.hwm.CompareAndSwap(cur, t) {
			return
		}
	}
}

// coreTime returns one core's virtual time.
func (e *Engine) coreTime(core topology.CoreID) vclock.Nanos {
	if int(core) < 0 || int(core) >= len(e.accounts) {
		return 0
	}
	return e.accounts[core].time()
}

// breakdown aggregates the per-component costs across all cores.
func (e *Engine) breakdown() vclock.Breakdown {
	out := vclock.Breakdown{ByComp: make(map[vclock.Component]vclock.Nanos, 5)}
	for i := range e.accounts {
		t := e.accounts[i].time()
		if t > out.Total {
			out.Total = t
		}
		for _, comp := range vclock.Components() {
			out.ByComp[comp] += vclock.Nanos(e.accounts[i].comp[comp].Load())
		}
	}
	return out
}

// resetAccounts clears all per-core accounting; Run calls it so consecutive
// runs on the same engine start from virtual time zero.
func (e *Engine) resetAccounts() {
	for i := range e.accounts {
		e.accounts[i].busy.Store(0)
		e.accounts[i].committed.Store(0)
		for c := range e.accounts[i].comp {
			e.accounts[i].comp[c].Store(0)
		}
	}
	e.hwm.Store(0)
}

// partitionedState is the mutable partitioning/placement state shared by the
// workers and the adaptive controller. Workers take exactly one read snapshot
// per transaction via a single atomic pointer load; repartitioning installs a
// new snapshot atomically. (The previous RWMutex implementation put two
// contended atomic ops on every snapshot; the pointer load is wait-free.)
type partitionedState struct {
	snap atomic.Pointer[stateSnapshot]
}

// stateSnapshot bundles everything that changes together during repartitioning
// and (for the shared-nothing designs) during an online island-level change.
type stateSnapshot struct {
	placement *partition.Placement
	runtime   *partition.Runtime
	// activePerCore is the number of active partitions each core hosts,
	// indexed by CoreID; the oversaturation penalty reads it per action.
	activePerCore []int32
	// wiring is the shared-nothing instance mapping (sites, per-island logs,
	// 2PC coordinator, transaction-state striping) derived from the island
	// level in force when the snapshot was installed; nil for the other
	// designs. Swapping it with the placement is what lets the planner re-wire
	// the machine online without ever splitting a transaction across layouts.
	wiring *islandWiring
}

// active returns the number of active partitions hosted by core c.
func (s *stateSnapshot) active(c topology.CoreID) int {
	if int(c) < 0 || int(c) >= len(s.activePerCore) {
		return 0
	}
	return int(s.activePerCore[c])
}

func (s *partitionedState) install(p *partition.Placement, rt *partition.Runtime, active []int32, w *islandWiring) {
	s.snap.Store(&stateSnapshot{placement: p, runtime: rt, activePerCore: active, wiring: w})
}

func (s *partitionedState) snapshot() *stateSnapshot {
	return s.snap.Load()
}

// saturationFactor returns the execution cost multiplier of a core that hosts
// n active partition workers under the configured penalty.
func saturationFactor(penalty float64, n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 + penalty*float64(n-1)
}
