package engine

import (
	"sync"
	"sync/atomic"

	"atrapos/internal/numa"
	"atrapos/internal/partition"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// coreAccount is the virtual-time account of one logical core. Unlike
// vclock.Clock it is safe for concurrent use, because several worker
// goroutines may charge costs to the same core (e.g. data-oriented execution
// attributes action costs to the partition-owning core, not to the
// coordinating worker).
type coreAccount struct {
	busy      atomic.Int64
	comp      [5]atomic.Int64
	committed atomic.Int64
}

func newAccounts(n int) []coreAccount {
	return make([]coreAccount, n)
}

func (a *coreAccount) charge(comp vclock.Component, c numa.Cost) {
	if c <= 0 {
		return
	}
	a.busy.Add(int64(c))
	if comp >= 0 && int(comp) < len(a.comp) {
		a.comp[comp].Add(int64(c))
	}
}

func (a *coreAccount) time() vclock.Nanos { return vclock.Nanos(a.busy.Load()) }

// charge adds cost c in component comp to core's account.
func (e *Engine) charge(core topology.CoreID, comp vclock.Component, c numa.Cost) {
	if int(core) < 0 || int(core) >= len(e.accounts) {
		core = 0
	}
	e.accounts[core].charge(comp, c)
}

// chargeAll adds cost c to every core's account; used when the system pauses
// all regular work, e.g. during repartitioning.
func (e *Engine) chargeAll(comp vclock.Component, c numa.Cost) {
	for i := range e.accounts {
		e.accounts[i].charge(comp, c)
	}
}

// virtualNow returns the engine-wide virtual time: the busiest core's clock.
func (e *Engine) virtualNow() vclock.Nanos {
	var max int64
	for i := range e.accounts {
		if b := e.accounts[i].busy.Load(); b > max {
			max = b
		}
	}
	return vclock.Nanos(max)
}

// coreTime returns one core's virtual time.
func (e *Engine) coreTime(core topology.CoreID) vclock.Nanos {
	if int(core) < 0 || int(core) >= len(e.accounts) {
		return 0
	}
	return e.accounts[core].time()
}

// breakdown aggregates the per-component costs across all cores.
func (e *Engine) breakdown() vclock.Breakdown {
	out := vclock.Breakdown{ByComp: make(map[vclock.Component]vclock.Nanos, 5)}
	for i := range e.accounts {
		t := e.accounts[i].time()
		if t > out.Total {
			out.Total = t
		}
		for _, comp := range vclock.Components() {
			out.ByComp[comp] += vclock.Nanos(e.accounts[i].comp[comp].Load())
		}
	}
	return out
}

// resetAccounts clears all per-core accounting; Run calls it so consecutive
// runs on the same engine start from virtual time zero.
func (e *Engine) resetAccounts() {
	for i := range e.accounts {
		e.accounts[i].busy.Store(0)
		e.accounts[i].committed.Store(0)
		for c := range e.accounts[i].comp {
			e.accounts[i].comp[c].Store(0)
		}
	}
}

// partitionedState is the mutable partitioning/placement state shared by the
// workers and the adaptive controller. Workers take a read snapshot per
// transaction; repartitioning installs a new snapshot atomically.
type partitionedState struct {
	mu   sync.RWMutex
	snap *stateSnapshot
}

// stateSnapshot bundles everything that changes together during repartitioning.
type stateSnapshot struct {
	placement *partition.Placement
	runtime   *partition.Runtime
	// activePerCore is the number of active partitions each core hosts, used
	// by the oversaturation penalty.
	activePerCore map[topology.CoreID]int
}

func (s *partitionedState) install(p *partition.Placement, rt *partition.Runtime, active map[topology.CoreID]int) {
	s.mu.Lock()
	s.snap = &stateSnapshot{placement: p, runtime: rt, activePerCore: active}
	s.mu.Unlock()
}

func (s *partitionedState) snapshot() *stateSnapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap
}

// saturationFactor returns the execution cost multiplier of a core that hosts
// n active partition workers under the configured penalty.
func saturationFactor(penalty float64, n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 + penalty*float64(n-1)
}
