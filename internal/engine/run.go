package engine

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"atrapos/internal/fault"
	"atrapos/internal/obs"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

// RunOptions control one experiment run.
type RunOptions struct {
	// Transactions is the number of transactions to execute. Either
	// Transactions or Duration (or both) must be positive; the run stops at
	// whichever limit is hit first.
	Transactions int
	// Duration stops the run when the engine's virtual time passes it.
	Duration vclock.Nanos
	// MaxTransactions caps a duration-driven run as a safety net; zero means
	// ten million.
	MaxTransactions int
	// Workers is the number of goroutines executing transactions; zero means
	// min(GOMAXPROCS, alive cores).
	Workers int
	// Seed makes transaction generation deterministic.
	Seed int64
	// SampleWindow is the width of the throughput time-series buckets; zero
	// means one virtual second.
	SampleWindow vclock.Nanos
	// Retries is how many times an aborted transaction (lock conflict) is
	// retried before being counted as aborted, as a client library would.
	// Negative disables retries; zero means the default of 2.
	Retries int
	// Events are fired once each when the engine's virtual time first passes
	// their timestamp; the adaptivity experiments use them to change the
	// environment mid-run (e.g. fail a socket at t=20s, Figure 12).
	Events []Event
	// Faults attaches a declarative fault schedule to the run: the engine
	// validates it against its own topology and device layout and compiles it
	// into Events. Nil leaves the run untouched (fault-free runs stay
	// bit-identical).
	Faults *fault.Schedule
	// TracePath, when non-empty, writes the run's span rings and planner
	// decision log as a Chrome trace-event JSON file (loadable in Perfetto or
	// chrome://tracing) when the run finishes. Requires Config.Tracing.
	TracePath string
	// MetricsPath, when non-empty, writes the planner-boundary metrics time
	// series as CSV when the run finishes. Requires Config.Tracing.
	MetricsPath string
}

// Event is an environment change scheduled at a point of virtual time.
type Event struct {
	At vclock.Nanos
	Do func(*Engine)
}

func (o RunOptions) withDefaults(e *Engine) (RunOptions, error) {
	if o.Transactions <= 0 && o.Duration <= 0 {
		return o, fmt.Errorf("engine: run needs a transaction count or a duration")
	}
	if o.MaxTransactions <= 0 {
		o.MaxTransactions = 10_000_000
	}
	if o.Transactions <= 0 || o.Transactions > o.MaxTransactions {
		if o.Duration > 0 {
			o.Transactions = o.MaxTransactions
		}
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if n := len(e.cfg.Topology.AliveCores()); o.Workers > n {
			o.Workers = n
		}
	}
	if o.SampleWindow <= 0 {
		o.SampleWindow = vclock.Nanos(time.Second)
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	return o, nil
}

// SocketThroughput is the committed throughput attributed to one socket.
type SocketThroughput struct {
	Socket     topology.SocketID
	Throughput float64
}

// Result summarizes one run.
type Result struct {
	Design    Design
	Workload  string
	Committed int64
	Aborted   int64
	MultiSite int64
	// VirtualTime is the busiest core's virtual time at the end of the run.
	VirtualTime vclock.Nanos
	// ThroughputTPS is Committed divided by VirtualTime.
	ThroughputTPS float64
	// Breakdown is the per-component virtual time summed over all cores.
	Breakdown vclock.Breakdown
	// UsefulFraction is execution time divided by total busy time across all
	// cores; it is the reproduction's stand-in for the paper's IPC metric.
	UsefulFraction float64
	// PerSocket reports per-socket throughput (Table I).
	PerSocket []SocketThroughput
	// Series is the throughput time series (Figures 10-13).
	Series []vclock.Sample
	// Repartitions counts adaptive repartitioning events during the run.
	Repartitions int64
	// RepartitionTime is the total virtual time spent repartitioning.
	RepartitionTime vclock.Nanos
	// RepartitionDiffs records, per repartitioning event, how much of the
	// placement changed and how much of the previous runtime was reused.
	RepartitionDiffs []RepartitionDiff
	// AdaptationCostShare is the fraction of total core busy time spent on
	// migration pauses (repartition cost summed over the affected cores).
	AdaptationCostShare float64
	// IslandLevel is the island granularity the engine ended the run at
	// (shared-nothing designs only; empty otherwise). With adaptive
	// granularity it is where the planner converged.
	IslandLevel string
	// LevelChanges is the island-level trajectory of the run: one record per
	// online re-wiring the adaptive-granularity planner executed.
	LevelChanges []GranularityChange
	// Interconnect summarizes the traffic counters of the run.
	Interconnect topology.TrafficStats
	// QPIToIMCRatio is the interconnect-to-memory-controller traffic ratio.
	QPIToIMCRatio float64
	// Log is the write-ahead-log activity of this run (a delta against the
	// engine's counters at run start): the logical-records vs physical-flushes
	// split is how the group-commit experiments report what coalescing saved.
	Log wal.Stats
}

// TimePerTransaction returns the average virtual time one transaction spent
// in the given component (the Figure 4 breakdown), in nanoseconds.
func (r *Result) TimePerTransaction(comp vclock.Component) float64 {
	if r.Committed == 0 {
		return 0
	}
	return float64(r.Breakdown.ByComp[comp]) / float64(r.Committed)
}

// Run executes the workload under the engine's design and returns the
// measured result. It can be called repeatedly; each call starts from virtual
// time zero but keeps the data loaded in the tables.
func (e *Engine) Run(opts RunOptions) (*Result, error) {
	opts, err := opts.withDefaults(e)
	if err != nil {
		return nil, err
	}
	if opts.Faults != nil {
		faultEvents, err := e.compileFaults(opts.Faults, opts.Workers)
		if err != nil {
			return nil, err
		}
		opts.Events = append(append([]Event(nil), opts.Events...), faultEvents...)
	}
	if (opts.TracePath != "" || opts.MetricsPath != "") && e.tracer == nil {
		return nil, fmt.Errorf("engine: run requested a trace export but the engine was built without Config.Tracing")
	}
	e.resetAccounts()
	e.cfg.Topology.ResetTraffic()
	if e.devices != nil {
		// Runs restart virtual time at zero; the devices' channel horizons
		// from a previous run would otherwise be phantom queueing.
		e.devices.Reset()
	}
	// Runs restart virtual time at zero, so spans from a previous run would
	// overlay this one's timeline.
	e.tracer.Reset()
	series := vclock.NewSeries(opts.SampleWindow)
	logStart := e.logStats()

	aliveAtStart := e.cfg.Topology.AliveCores()
	if len(aliveAtStart) == 0 {
		return nil, fmt.Errorf("engine: no alive cores to run on")
	}

	var (
		issued    atomic.Int64
		committed atomic.Int64
		aborted   atomic.Int64
		multiSite atomic.Int64
	)
	if e.adaptive != nil {
		// The planner goroutine is the paper's monitoring thread: it sleeps
		// until a worker reports a monitoring-boundary crossing, then runs
		// evaluation and repartitioning (or an island-level change) con-
		// currently with execution.
		e.adaptive.reset()
		e.adaptive.start(&committed, &aborted, opts.Workers)
	}
	eventFired := make([]atomic.Bool, len(opts.Events))
	var eventMu sync.Mutex
	fireEvents := func(now vclock.Nanos) {
		for i := range opts.Events {
			if now >= opts.Events[i].At && !eventFired[i].Load() {
				eventMu.Lock()
				if !eventFired[i].Load() {
					eventFired[i].Store(true)
					if opts.Events[i].Do != nil {
						opts.Events[i].Do(e)
					}
				}
				eventMu.Unlock()
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(workerIdx int) {
			defer wg.Done()
			src := &splitMix{}
			rng := rand.New(src)
			// All per-transaction state lives in worker-owned reusable
			// buffers: the steady-state loop body allocates nothing.
			sc := newExecScratch()
			sc.ring = e.tracer.Worker(workerIdx)
			sc.worker = int32(workerIdx)
			ctx := workload.GenContext{Rng: rng}
			for {
				n := issued.Add(1)
				if int(n) > opts.Transactions {
					return
				}
				now := e.virtualNow()
				if opts.Duration > 0 && now >= opts.Duration {
					return
				}
				if len(opts.Events) > 0 {
					fireEvents(now)
				}
				// Round-robin the coordinating core over the machine; a core
				// on a failed socket is replaced by its fallback. The alive
				// list is cached behind the topology's liveness epoch.
				alive := e.aliveCores()
				if len(alive) == 0 {
					return
				}
				coord := alive[int(n)%len(alive)].ID
				// Seed the generator from the transaction index, not the
				// worker, so the generated workload does not depend on how
				// the Go scheduler interleaves the worker goroutines.
				src.seed(opts.Seed + n)
				// One partitioning snapshot per transaction, taken before
				// generation: the generator's view of the instance layout
				// (site count, home site) and the execution wiring come from
				// the same atomically-published snapshot, so a concurrent
				// repartitioning or island-level change can never split a
				// transaction across two machine layouts.
				sc.snap = e.state.snapshot()
				ctx.At = e.coreTime(coord)
				ctx.NumSites = sc.snap.numSites()
				ctx.HomeSite = sc.snap.wiring.siteOf(coord)
				t := e.wl.Generate(&ctx)
				if t.MultiSite {
					multiSite.Add(1)
				}
				// Data-oriented designs dispatch the transaction to the
				// worker thread that owns the partition doing most of its
				// work, as DORA does; the coordinating core follows the data
				// and the bulk of the actions execute locally.
				if e.cfg.Design == PLP || e.cfg.Design == HWAware || e.cfg.Design == ATraPos {
					if a, ok := dominantAction(t); ok {
						if tp, ok := sc.snap.placement.Table(a.Table); ok {
							coord = e.effectiveCore(tp.CoreFor(a.Key))
						}
					}
				}
				var txnStart vclock.Nanos
				if sc.ring != nil {
					// Stamp the transaction's spans with the snapshot's wiring
					// epoch and the coordinator's site before executing.
					sc.site = int32(sc.snap.wiring.siteOf(coord))
					sc.epoch = 0
					if sc.snap.wiring != nil {
						sc.epoch = uint32(sc.snap.wiring.epoch)
					}
					txnStart = e.coreTime(coord)
				}
				ok := false
				for attempt := 0; attempt <= opts.Retries; attempt++ {
					if e.execute(coord, t, sc) {
						ok = true
						break
					}
				}
				if sc.ring != nil {
					arg := int64(0)
					if ok {
						arg = 1
					}
					sc.ring.Record(obs.Span{
						Start: txnStart, Dur: e.coreTime(coord) - txnStart,
						Kind: obs.KindTxn, Worker: sc.worker, Core: int32(coord),
						Site: sc.site, Epoch: sc.epoch, Arg: arg, Class: t.Class,
					})
				}
				e.noteTime(coord)
				if ok {
					committed.Add(1)
					e.accounts[coord].committed.Add(1)
					series.Record(e.coreTime(coord), 1)
				} else {
					aborted.Add(1)
				}
				if e.adaptive != nil {
					e.adaptive.recordTxn(coord, t)
					e.adaptive.noteBoundary()
				}
			}
		}(w)
	}
	wg.Wait()
	if e.adaptive != nil {
		e.adaptive.stopPlanner()
	}
	// Final-flush guarantee: the run does not end with committed work parked
	// in a write-combining accumulator. The drain happens before the log
	// counters are read so the closing physical flush is part of this run's
	// logical-vs-physical split. It is uncharged — the run is over, there is
	// no worker core to bill.
	e.drainLogs(e.virtualNowExact())

	res := &Result{
		Design:    e.cfg.Design,
		Workload:  e.wl.Name,
		Committed: committed.Load(),
		Aborted:   aborted.Load(),
		MultiSite: multiSite.Load(),
		Series:    series.Samples(),
	}
	res.VirtualTime = e.virtualNowExact()
	if res.VirtualTime > 0 {
		res.ThroughputTPS = float64(res.Committed) / res.VirtualTime.Seconds()
	}
	res.Breakdown = e.breakdown()
	var useful, total vclock.Nanos
	for i := range e.accounts {
		total += e.accounts[i].time()
		useful += vclock.Nanos(e.accounts[i].comp[vclock.Execution].Load())
	}
	if total > 0 {
		res.UsefulFraction = float64(useful) / float64(total)
	}
	res.PerSocket = e.perSocketThroughput()
	if w := e.state.snapshot().wiring; w != nil {
		res.IslandLevel = w.level.String()
	}
	if e.adaptive != nil {
		res.Repartitions = e.adaptive.repartitions.Load()
		res.RepartitionTime = vclock.Nanos(e.adaptive.repartitionCost.Load())
		res.RepartitionDiffs = e.adaptive.takeDiffs()
		res.LevelChanges = e.adaptive.takeLevelChanges()
		if total > 0 {
			res.AdaptationCostShare = float64(e.adaptive.adaptCharged.Load()) / float64(total)
		}
	}
	res.Interconnect = e.cfg.Topology.Traffic()
	res.QPIToIMCRatio = e.cfg.Topology.QPIToIMCRatio()
	res.Log = e.logStats().Sub(logStart)
	if opts.TracePath != "" {
		if err := os.WriteFile(opts.TracePath, e.tracer.ExportChromeTrace(), 0o644); err != nil {
			return nil, fmt.Errorf("engine: writing trace: %w", err)
		}
	}
	if opts.MetricsPath != "" {
		if err := os.WriteFile(opts.MetricsPath, e.tracer.ExportMetricsCSV(), 0o644); err != nil {
			return nil, fmt.Errorf("engine: writing metrics: %w", err)
		}
	}
	return res, nil
}

// siteOf returns the site of core under the currently installed wiring; the
// hot path uses the per-transaction snapshot instead so generation and
// execution agree (see the worker loop above).
func (e *Engine) siteOf(core topology.CoreID) int {
	return e.state.snapshot().wiring.siteOf(core)
}

// numSites returns the instance count of the currently installed wiring.
func (e *Engine) numSites() int {
	return e.state.snapshot().numSites()
}

// numSites returns the snapshot's instance count; non-shared-nothing designs
// (no wiring) count as one site.
func (s *stateSnapshot) numSites() int {
	if s == nil || s.wiring == nil || len(s.wiring.sites) == 0 {
		return 1
	}
	return len(s.wiring.sites)
}

// splitMix is a tiny allocation-free rand.Source64 (splitmix64) that can be
// reseeded per transaction, making the generated workload a pure function of
// the transaction index.
type splitMix struct{ state uint64 }

// seed places the generator at a pseudo-random point of the splitmix orbit.
// The seed is avalanched first so that consecutive transaction indices do not
// produce overlapping (shifted) output streams, which would make concurrent
// transactions touch the same keys and conflict artificially.
func (s *splitMix) seed(v int64) {
	z := uint64(v) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	s.state = z ^ (z >> 31)
}

// Seed implements rand.Source.
func (s *splitMix) Seed(v int64) { s.seed(v) }

// Uint64 implements rand.Source64.
func (s *splitMix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *splitMix) Int63() int64 { return int64(s.Uint64() >> 1) }

// perSocketThroughput attributes committed transactions to the socket of the
// core that committed them and divides by the socket's busiest core time.
func (e *Engine) perSocketThroughput() []SocketThroughput {
	top := e.cfg.Topology
	out := make([]SocketThroughput, top.Sockets())
	for s := 0; s < top.Sockets(); s++ {
		var committed int64
		var busiest vclock.Nanos
		for _, c := range top.CoresOn(topology.SocketID(s)) {
			committed += e.accounts[c.ID].committed.Load()
			if t := e.accounts[c.ID].time(); t > busiest {
				busiest = t
			}
		}
		st := SocketThroughput{Socket: topology.SocketID(s)}
		if busiest > 0 {
			st.Throughput = float64(committed) / busiest.Seconds()
		}
		out[s] = st
	}
	return out
}
