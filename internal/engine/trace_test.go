package engine

import (
	"bytes"
	"math/rand"
	"testing"

	"atrapos/internal/core"
	"atrapos/internal/obs"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/workload"
)

// tracedDriftEngine builds the traced adaptive drift engine of the
// determinism test: chiplet machine, drifting multisite share, tracer on.
func tracedDriftEngine(t *testing.T, half vclock.Nanos) *Engine {
	t.Helper()
	prof, ok := topology.ProfileByName("chiplet-2s4d")
	if !ok {
		t.Fatal("chiplet-2s4d profile missing")
	}
	e, err := New(Config{
		Design:      SharedNothing,
		IslandLevel: topology.LevelSocket,
		Workload:    driftAcrossCrossover(8000, half),
		Topology:    prof.Build(),
		Adaptive:    true,
		AdaptiveInterval: core.IntervalConfig{
			Initial: granWindow, Max: 4 * granWindow, StableThreshold: 0.10, History: 5,
		},
		TimeCompression: 1000,
		Tracing:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestTraceDeterminism: the same seed produces byte-identical trace and
// metrics documents from two independently built engines. Traced runs record
// everything in virtual time and the drift scenario runs one worker, so the
// exported bytes are a pure function of the seed — the property that makes
// traces diffable across hosts and harness parallelism.
func TestTraceDeterminism(t *testing.T) {
	half := 30 * granWindow
	runOnce := func() ([]byte, []byte, *Result) {
		e := tracedDriftEngine(t, half)
		res, err := e.Run(RunOptions{
			Duration: 2 * half, MaxTransactions: 200_000,
			Seed: 7, Workers: 1, SampleWindow: granWindow,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := e.Tracer()
		if msg := tr.DropAccounting(); msg != "" {
			t.Fatalf("drop accounting violated: %s", msg)
		}
		return tr.ExportChromeTrace(), tr.ExportMetricsCSV(), res
	}
	trace1, csv1, res := runOnce()
	trace2, csv2, _ := runOnce()
	if !bytes.Equal(trace1, trace2) {
		t.Error("two identical traced runs exported different traces")
	}
	if !bytes.Equal(csv1, csv2) {
		t.Error("two identical traced runs exported different metrics CSVs")
	}
	if err := obs.ValidateChromeTrace(trace1); err != nil {
		t.Errorf("exported trace malformed: %v", err)
	}
	if err := obs.ValidateMetricsCSV(csv1); err != nil {
		t.Errorf("exported metrics malformed: %v", err)
	}
	if len(res.LevelChanges) == 0 {
		t.Fatal("drift run produced no level changes; the trace has nothing to explain")
	}
	// Every level change must be explained: a "change" decision with a full
	// per-candidate score breakdown, and the winning candidate must be the
	// level switched to.
	e := tracedDriftEngine(t, half)
	if _, err := e.Run(RunOptions{
		Duration: 2 * half, MaxTransactions: 200_000,
		Seed: 7, Workers: 1, SampleWindow: granWindow,
	}); err != nil {
		t.Fatal(err)
	}
	changes := 0
	for _, d := range e.Tracer().Decisions() {
		if d.Verdict != "change" {
			continue
		}
		changes++
		if len(d.Candidates) == 0 {
			t.Errorf("change decision at %d has no score breakdown", d.At)
		}
		bestLevel, bestTotal := "", 0.0
		for _, c := range d.Candidates {
			if bestLevel == "" || c.Total < bestTotal {
				bestLevel, bestTotal = c.Level, c.Total
			}
		}
		if bestLevel != d.Best {
			t.Errorf("change decision at %d switches to %s but %s scored best", d.At, d.Best, bestLevel)
		}
	}
	if changes != len(res.LevelChanges) {
		t.Errorf("%d level changes but %d change decisions in the log", len(res.LevelChanges), changes)
	}
	if len(e.Tracer().Samples()) == 0 {
		t.Error("traced adaptive run recorded no metrics samples")
	}
}

// TestTracingDisabledZeroAllocs: with Config.Tracing off, the per-transaction
// execute path must not allocate — the tracing hooks reduce to one nil check.
// This is the testable form of the BenchmarkExecute 0 allocs/op invariant.
func TestTracingDisabledZeroAllocs(t *testing.T) {
	cfg := Config{Design: SharedNothing, IslandLevel: topology.LevelDie}
	cfg.Workload = workload.MustTATP(workload.TATPOptions{Subscribers: 4000})
	cfg.Topology = topology.MustNew(topology.Config{
		Sockets: 2, CoresPerSocket: 8, DiesPerSocket: 2,
	})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Tracer() != nil {
		t.Fatal("tracer built with Tracing off")
	}
	src := &splitMix{}
	rng := rand.New(src)
	sc := newExecScratch()
	ctx := workload.GenContext{Rng: rng, NumSites: e.numSites()}
	n := int64(0)
	runOne := func() {
		n++
		alive := e.aliveCores()
		coord := alive[int(n)%len(alive)].ID
		src.seed(n)
		ctx.At = e.coreTime(coord)
		ctx.HomeSite = e.siteOf(coord)
		txn := e.wl.Generate(&ctx)
		sc.snap = e.state.snapshot()
		e.execute(coord, txn, sc)
		e.noteTime(coord)
	}
	// Warm-up grows the reusable buffers to steady size, like the benchmark.
	for i := 0; i < 2000; i++ {
		runOne()
	}
	if allocs := testing.AllocsPerRun(2000, runOne); allocs != 0 {
		t.Errorf("execute path with tracing disabled allocates %.3f allocs/txn, want 0", allocs)
	}
}
