package engine

import (
	"sync"
	"testing"

	"atrapos/internal/workload"
)

// TestConcurrentAdaptationNoTornSnapshots runs the planner goroutine's
// repartitioning concurrently with a full complement of workers (run it
// under -race: `make race`). It asserts that every snapshot observable while
// diffs are being installed is internally consistent — the diffed runtime
// always matches its placement, i.e. snapshots are never torn — and that the
// concurrent adaptive run commits exactly as many transactions as a serial
// run of the same workload (the workload is read-only, so every issued
// transaction must commit regardless of interleaving or repartitioning).
func TestConcurrentAdaptationNoTornSnapshots(t *testing.T) {
	const txns = 12000
	build := func() *Engine {
		wl, err := workload.TATPSuddenSkew(4000, workload.Seconds(0.002))
		if err != nil {
			t.Fatal(err)
		}
		top := smallTopology()
		return MustNew(Config{
			Design:           ATraPos,
			Workload:         wl,
			Topology:         top,
			Placement:        DerivePlacement(wl, top, true),
			Adaptive:         true,
			AdaptiveInterval: coreIntervalForTests(),
		})
	}

	// Serial baseline: one worker, same seed and transaction budget.
	serial := build()
	serialRes, err := serial.Run(RunOptions{Transactions: txns, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent run with a snapshot checker hammering the published state
	// the whole time: a torn install (placement and runtime from different
	// generations) fails Runtime.Validate.
	concurrent := build()
	stopCheck := make(chan struct{})
	var checkWG sync.WaitGroup
	var checkMu sync.Mutex
	var checkErr error
	checks := 0
	checkWG.Add(1)
	go func() {
		defer checkWG.Done()
		for {
			select {
			case <-stopCheck:
				return
			default:
			}
			snap := concurrent.state.snapshot()
			if err := snap.runtime.Validate(snap.placement); err != nil {
				checkMu.Lock()
				checkErr = err
				checkMu.Unlock()
				return
			}
			checks++
		}
	}()
	concurrentRes, err := concurrent.Run(RunOptions{Transactions: txns, Seed: 11, Workers: 8})
	close(stopCheck)
	checkWG.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if checkErr != nil {
		t.Fatalf("torn snapshot observed during concurrent adaptation: %v", checkErr)
	}
	if checks == 0 {
		t.Error("snapshot checker never ran")
	}

	if concurrentRes.Repartitions == 0 {
		t.Error("concurrent run never repartitioned; the test did not exercise concurrent installs")
	}
	if serialRes.Committed != int64(txns) {
		t.Errorf("serial run committed %d of %d read-only transactions", serialRes.Committed, txns)
	}
	if concurrentRes.Committed != serialRes.Committed {
		t.Errorf("concurrent adaptive run committed %d, serial run %d; adaptation must not lose or abort transactions",
			concurrentRes.Committed, serialRes.Committed)
	}

	// The final snapshot must also match what Placement() reports and pass
	// the full invariant check against a fresh build.
	snap := concurrent.state.snapshot()
	if err := snap.runtime.Validate(snap.placement); err != nil {
		t.Errorf("final snapshot invalid: %v", err)
	}
	for _, d := range concurrentRes.RepartitionDiffs {
		if d.ChangedTables == 0 {
			t.Errorf("repartition diff with no changed tables: %+v", d)
		}
		if d.AffectedCores == 0 || d.Cost <= 0 {
			t.Errorf("repartition diff must charge affected cores: %+v", d)
		}
	}
}
