package engine

import (
	"testing"

	"atrapos/internal/core"
	"atrapos/internal/fault"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

// coalescedCrashDrillEngine is crashDrillEngine with the write-combining
// accumulator on: unbounded retention for the drill, and a threshold above
// the per-transaction distinct-key count so flushes genuinely batch across
// commits instead of degrading to one per transaction.
func coalescedCrashDrillEngine(t *testing.T, wl *workload.Workload) *Engine {
	t.Helper()
	prof, _ := topology.ProfileByName("chiplet-2s4d")
	lc := wal.DefaultConfig()
	lc.Keep = 0
	lc.CoalesceRecords = 64
	e, err := New(Config{
		Design:       SharedNothing,
		IslandLevel:  topology.LevelDie,
		Workload:     wl,
		Topology:     prof.Build(),
		DeviceLayout: "nvme-per-die-pair",
		LogConfig:    &lc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCrashDrillEquivalenceCoalesced is the tentpole's recovery assertion
// with write-combining on: a serial run interrupted by a crash-and-recover
// drill ends with exactly the committed state of an identical fault-free run,
// even though the log the drill replays holds folded net deltas rather than
// the full record stream. The coalesced fault-free run must also match the
// plain log's committed state — coalescing changes what reaches the device,
// never what the transactions did.
func TestCrashDrillEquivalenceCoalesced(t *testing.T) {
	workloads := map[string]func() *workload.Workload{
		// TATP inserts and deletes rows (call forwarding), so key sets
		// genuinely depend on recovery.
		"tatp": func() *workload.Workload {
			return workload.MustTATP(workload.TATPOptions{Subscribers: 2000})
		},
		// The group-commit workload: hot-key overwrites and self-canceling
		// delete/insert churn are exactly the records the accumulator folds.
		"zipf-hotkey": func() *workload.Workload {
			return workload.ZipfHotkey(2000, 10, 30)
		},
	}
	const txns = 1500
	for name, mk := range workloads {
		t.Run(name, func(t *testing.T) {
			plain := crashDrillEngine(t, mk())
			plainRes, err := plain.Run(RunOptions{Transactions: txns, Seed: 11, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if plainRes.Aborted != 0 {
				t.Fatalf("serial runs must not abort, got %d", plainRes.Aborted)
			}

			ref := coalescedCrashDrillEngine(t, mk())
			refRes, err := ref.Run(RunOptions{Transactions: txns, Seed: 11, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if refRes.Log.CoalescedRecords == 0 {
				t.Fatal("the coalesced run folded nothing; the drill would not exercise net-delta recovery")
			}
			if refRes.Committed != plainRes.Committed {
				t.Errorf("coalescing changed the committed count: %d vs plain %d", refRes.Committed, plainRes.Committed)
			}
			if where, ok := keySetsEqual(plain.TableKeySets(), ref.TableKeySets()); !ok {
				t.Errorf("coalescing changed the committed state at %s", where)
			}
			want := ref.TableKeySets()

			drill := coalescedCrashDrillEngine(t, mk())
			sched, err := fault.NewSchedule(fault.Machine{Sockets: 2, Devices: 4},
				fault.CrashAndRecover(refRes.VirtualTime/2))
			if err != nil {
				t.Fatal(err)
			}
			drillRes, err := drill.Run(RunOptions{Transactions: txns, Seed: 11, Workers: 1, Faults: sched})
			if err != nil {
				t.Fatal(err)
			}
			if drillRes.Committed != refRes.Committed {
				t.Errorf("committed diverged: drill %d, fault-free %d", drillRes.Committed, refRes.Committed)
			}
			if where, ok := keySetsEqual(want, drill.TableKeySets()); !ok {
				t.Errorf("post-recovery state differs from the fault-free run at %s", where)
			}
		})
	}
}

// drainedLogs asserts every log the engine owns ended the run fully drained:
// the accumulator holds nothing, so everything appended is durable. Run end,
// level changes and the crash drill all guarantee this.
func drainedLogs(t *testing.T, e *Engine) {
	t.Helper()
	for i, l := range e.crashLogs() {
		if l.Durable() != l.Tail() {
			t.Errorf("log %d not drained: durable %d, tail %d", i, l.Durable(), l.Tail())
		}
	}
}

// TestCoalescerDrainAcrossLevelChangesAndRehoming drives the adaptive
// planner's two accumulator-drain paths at once: the workload drifts from 0%
// to 100% multisite, forcing level changes that rebuild the log set, and a
// device fails mid-run, forcing a re-homing rebind — both must drain the
// write-combining buffers before any log changes hands, so no buffered net
// delta straddles a re-wiring and nothing ends the run undurable.
func TestCoalescerDrainAcrossLevelChangesAndRehoming(t *testing.T) {
	prof, ok := topology.ProfileByName("chiplet-2s4d")
	if !ok {
		t.Fatal("chiplet-2s4d missing")
	}
	wl := workload.MultisiteUpdateDrifting(8000, func(at vclock.Nanos) int {
		if at < 12*granWindow {
			return 0
		}
		return 100
	})
	lc := wal.DefaultConfig()
	lc.CoalesceRecords = 64
	e, err := New(Config{
		Design:       SharedNothing,
		IslandLevel:  topology.LevelCore,
		Workload:     wl,
		Topology:     prof.Build(),
		DeviceLayout: "nvme-per-socket",
		LogConfig:    &lc,
		Adaptive:     true,
		AdaptiveInterval: core.IntervalConfig{
			Initial: granWindow, Max: 4 * granWindow, StableThreshold: 0.10, History: 5,
		},
		TimeCompression: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fault.NewSchedule(fault.Machine{Sockets: 2, Devices: 2},
		fault.FailDevice(5*granWindow, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(RunOptions{
		Duration: 30 * granWindow, MaxTransactions: 200_000,
		Seed: 7, Workers: 2, SampleWindow: granWindow,
		Faults: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("run should keep committing across the device failure and level changes")
	}
	if len(res.LevelChanges) == 0 {
		t.Fatal("the drift never forced a level change; the drain-across-rewiring path was not exercised")
	}
	rebound := 0
	for _, c := range res.LevelChanges {
		rebound += c.ReboundDevices
	}
	if rebound == 0 && e.WiringBindsFailedDevice() {
		t.Error("no re-homing rebind happened and the wiring still references the failed device")
	}
	if e.WiringBindsFailedDevice() {
		t.Error("an island log ended the run bound to the failed device")
	}
	drainedLogs(t, e)
	e.Devices().ResetFaults()
}

// TestConcurrentCommitsCoalescingVsPlanner is the coalescing half of the
// package's race surface (`make race` runs it under the detector): four
// workers commit into the shared per-island accumulators while the
// granularity planner changes levels and re-homes a failed device
// concurrently. The post-run invariants catch a drain the detector cannot:
// every surviving log fully durable, nothing stranded in an accumulator.
func TestConcurrentCommitsCoalescingVsPlanner(t *testing.T) {
	prof, ok := topology.ProfileByName("subnuma-4s2d")
	if !ok {
		t.Fatal("subnuma-4s2d missing")
	}
	wl := workload.MultisiteUpdateDrifting(8000, func(at vclock.Nanos) int {
		if at < 15*granWindow {
			return 0
		}
		return 100
	})
	lc := wal.DefaultConfig()
	lc.CoalesceRecords = 64
	e, err := New(Config{
		Design:       SharedNothing,
		IslandLevel:  topology.LevelDie,
		Workload:     wl,
		Topology:     prof.Build(),
		DeviceLayout: "nvme-per-socket",
		LogConfig:    &lc,
		Adaptive:     true,
		AdaptiveInterval: core.IntervalConfig{
			Initial: granWindow, Max: 4 * granWindow, StableThreshold: 0.10, History: 5,
		},
		TimeCompression: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fault.NewSchedule(fault.Machine{Sockets: 4, Devices: 4},
		fault.FailDevice(3*granWindow, 0),
		fault.DegradeDevice(8*granWindow, 3, 4),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(RunOptions{
		Duration: 30 * granWindow, MaxTransactions: 120_000,
		Seed: 13, Workers: 4, SampleWindow: granWindow,
		Faults: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("run should keep committing through concurrent coalescing and level changes")
	}
	if res.Log.LogicalRecords == 0 {
		t.Fatal("the drifting update workload appended no logical records")
	}
	if e.WiringBindsFailedDevice() {
		t.Error("an island log ended the run bound to the failed device")
	}
	if err := e.Placement().ValidateAliveDevices(e.Topology(), e.Devices()); err != nil {
		t.Errorf("post-run device binding: %v", err)
	}
	drainedLogs(t, e)
	e.Devices().ResetFaults()
}
