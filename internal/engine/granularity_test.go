package engine

import (
	"testing"
	"time"

	"atrapos/internal/core"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/workload"
)

// granWindow is the compressed monitoring window of the granularity tests.
const granWindow = vclock.Nanos(time.Millisecond)

// adaptiveGranEngine builds an adaptive parametric shared-nothing engine on
// the given profile, starting at the given level.
func adaptiveGranEngine(t *testing.T, profile string, start topology.Level, wl *workload.Workload) *Engine {
	t.Helper()
	prof, ok := topology.ProfileByName(profile)
	if !ok {
		t.Fatalf("unknown profile %s", profile)
	}
	e, err := New(Config{
		Design:      SharedNothing,
		IslandLevel: start,
		Workload:    wl,
		Topology:    prof.Build(),
		Adaptive:    true,
		AdaptiveInterval: core.IntervalConfig{
			Initial: granWindow, Max: 4 * granWindow, StableThreshold: 0.10, History: 5,
		},
		TimeCompression: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// driftAcrossCrossover is the fig-adaptive-granularity workload shape: 0%
// multisite for the first half of the run, 100% for the second.
func driftAcrossCrossover(rows int, half vclock.Nanos) *workload.Workload {
	return workload.MultisiteUpdateDrifting(rows, func(at vclock.Nanos) int {
		if at < half {
			return 0
		}
		return 100
	})
}

// staticBestLevel measures every island level the profile's machine
// distinguishes at a fixed multisite percentage and returns the winner — the
// fig-islands primitive the adaptive engine is asserted against.
func staticBestLevel(t *testing.T, profile string, pct int) topology.Level {
	t.Helper()
	prof, _ := topology.ProfileByName(profile)
	best, bestTPS := topology.Level(0), -1.0
	for _, level := range prof.Build().DistinctLevels() {
		e, err := New(Config{
			Design:      SharedNothing,
			IslandLevel: level,
			Workload:    workload.MultisiteUpdate(8000, pct),
			Topology:    prof.Build(),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(RunOptions{Transactions: 1000, Seed: 7, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.ThroughputTPS > bestTPS {
			bestTPS = res.ThroughputTPS
			best = level
		}
	}
	return best
}

// TestAdaptiveGranularityTracksStaticBest drives the multisite share across
// the crossover and asserts the engine converges to the statically-best
// island level on either side: the level in force just before the drift
// matches the fig-islands winner at 0% multisite, and the final level matches
// the winner at 100%.
func TestAdaptiveGranularityTracksStaticBest(t *testing.T) {
	const profile = "2s-fc"
	half := 30 * granWindow
	e := adaptiveGranEngine(t, profile, topology.LevelSocket, driftAcrossCrossover(8000, half))
	res, err := e.Run(RunOptions{
		Duration: 2 * half, MaxTransactions: 200_000,
		Seed: 7, Workers: 2, SampleWindow: granWindow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LevelChanges) < 2 {
		t.Fatalf("expected at least two level changes across the drift, got %+v", res.LevelChanges)
	}
	wantLow := staticBestLevel(t, profile, 0)
	wantHigh := staticBestLevel(t, profile, 100)
	if !(wantLow < wantHigh) {
		t.Fatalf("profile %s lost its crossover: best %v at 0%%, %v at 100%%", profile, wantLow, wantHigh)
	}
	// The level in force at the end of the low-multisite phase.
	levelAt := func(at vclock.Nanos) topology.Level {
		level := topology.LevelSocket // starting level
		for _, lc := range res.LevelChanges {
			if lc.At <= at {
				level = lc.To
			}
		}
		return level
	}
	if got := levelAt(half); got != wantLow {
		t.Errorf("level before the drift = %v, statically best at 0%% is %v (changes: %+v)",
			got, wantLow, res.LevelChanges)
	}
	if got := res.IslandLevel; got != wantHigh.String() {
		t.Errorf("final level = %v, statically best at 100%% is %v (changes: %+v)",
			got, wantHigh, res.LevelChanges)
	}
	if e.TopologyEpoch() != uint64(len(res.LevelChanges)) {
		t.Errorf("topology epoch %d should count the %d re-wirings", e.TopologyEpoch(), len(res.LevelChanges))
	}
	// The run kept committing throughout: every re-wiring happened off the
	// hot path, concurrently with execution.
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	for _, lc := range res.LevelChanges {
		if lc.AffectedCores == 0 || lc.Cost < 0 {
			t.Errorf("level change %+v should charge a positive cost to its affected cores", lc)
		}
	}
}

// TestAdaptiveGranularityPartialPause: on a chiplet machine a die-to-machine
// merge touches only the die home cores — the other cores never pause, which
// is the "no global stall" property of the re-wiring pipeline.
func TestAdaptiveGranularityPartialPause(t *testing.T) {
	wl := workload.MultisiteUpdateDrifting(8000, func(vclock.Nanos) int { return 100 })
	e := adaptiveGranEngine(t, "chiplet-2s4d", topology.LevelDie, wl)
	res, err := e.Run(RunOptions{
		Duration: 20 * granWindow, MaxTransactions: 100_000,
		Seed: 7, Workers: 2, SampleWindow: granWindow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LevelChanges) == 0 {
		t.Fatal("constant 100% multisite should trigger a die->machine re-wiring")
	}
	first := res.LevelChanges[0]
	if first.To != topology.LevelMachine {
		t.Errorf("expected a change to machine granularity, got %+v", first)
	}
	total := e.Topology().NumCores()
	if first.AffectedCores >= total {
		t.Errorf("die->machine merge paused %d of %d cores; only the die homes own partitions",
			first.AffectedCores, total)
	}
}

// TestMonitoringOnlyNeverRewires: Monitoring without Adaptive collects the
// multisite share but must never change the island level.
func TestMonitoringOnlyNeverRewires(t *testing.T) {
	prof, _ := topology.ProfileByName("2s-fc")
	e, err := New(Config{
		Design:      SharedNothing,
		IslandLevel: topology.LevelSocket,
		Workload:    workload.MultisiteUpdate(8000, 100),
		Topology:    prof.Build(),
		Monitoring:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(RunOptions{Transactions: 1000, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LevelChanges) != 0 || res.IslandLevel != "socket" || e.TopologyEpoch() != 0 {
		t.Errorf("monitoring-only run re-wired the machine: level=%s changes=%+v epoch=%d",
			res.IslandLevel, res.LevelChanges, e.TopologyEpoch())
	}
}

// TestAliasesStayInert: the fixed-granularity aliases must not grow an
// adaptation pipeline even with Adaptive set — their legacy meaning is a
// frozen level.
func TestAliasesStayInert(t *testing.T) {
	prof, _ := topology.ProfileByName("2s-fc")
	for _, d := range []Design{SharedNothingExtreme, SharedNothingCoarse} {
		e, err := New(Config{
			Design:   d,
			Workload: workload.MultisiteUpdate(3000, 50),
			Topology: prof.Build(),
			Adaptive: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if e.adaptive != nil {
			t.Errorf("%v: alias designs must not adapt", d)
		}
	}
}

// TestBuildWiringReuse: islands whose core sets survive a level change keep
// their write-ahead logs. After a socket failure the surviving socket's
// island is exactly the machine island, so a socket->machine re-wiring
// carries the log (and its records) over; the transaction manager is shared
// between any two sub-machine levels.
func TestBuildWiringReuse(t *testing.T) {
	prof, _ := topology.ProfileByName("2s-fc")
	top := prof.Build()
	e, err := New(Config{
		Design:      SharedNothing,
		IslandLevel: topology.LevelSocket,
		Workload:    workload.MultisiteUpdate(3000, 0),
		Topology:    top,
		SkipLoad:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cur := e.state.snapshot().wiring
	if cur == nil || cur.epoch != 0 {
		t.Fatalf("fresh wiring should have epoch 0: %+v", cur)
	}
	if err := top.FailSocket(1); err != nil {
		t.Fatal(err)
	}
	w := e.buildWiring(topology.LevelMachine, cur.epoch+1, cur)
	if len(w.sites) != 1 {
		t.Fatalf("machine wiring after failure has %d sites, want 1", len(w.sites))
	}
	if w.reusedLogs != 1 || w.rebuiltLogs != 0 {
		t.Errorf("the surviving socket island's log should be reused: reused=%d rebuilt=%d",
			w.reusedLogs, w.rebuiltLogs)
	}
	if w.logs.Log(0) != cur.logs.Log(0) {
		t.Error("machine island log is not the surviving socket's log instance")
	}
	// Sub-machine to sub-machine keeps the transaction manager.
	w2 := e.buildWiring(topology.LevelCore, cur.epoch+1, cur)
	if w2.txnMgr != cur.txnMgr {
		t.Error("socket->core re-wiring should keep the per-socket transaction state")
	}
	if w.txnMgr == cur.txnMgr {
		t.Error("socket->machine re-wiring needs the central transaction state")
	}
}

// TestAdaptiveGranularityRewiresOffDeadSocket: a socket failure between
// planner epochs triggers a re-wiring, and afterwards no site (and no
// partition) is homed on a dead core — even though the level may not change.
func TestAdaptiveGranularityRewiresOffDeadSocket(t *testing.T) {
	wl := workload.MultisiteUpdateDrifting(8000, func(vclock.Nanos) int { return 0 })
	e := adaptiveGranEngine(t, "subnuma-4s2d", topology.LevelDie, wl)
	failAt := 10 * granWindow
	res, err := e.Run(RunOptions{
		Duration: 30 * granWindow, MaxTransactions: 100_000,
		Seed: 7, Workers: 2, SampleWindow: granWindow,
		Events: []Event{{At: failAt, Do: func(e *Engine) { _ = e.FailSocket(3) }}},
	})
	if err != nil {
		t.Fatal(err)
	}
	top := e.Topology()
	w := e.state.snapshot().wiring
	if wiringStale(w, top) {
		t.Fatalf("post-failure wiring still homes a site on the dead socket: %+v", w.sites)
	}
	for _, cores := range w.siteCores {
		for _, c := range cores {
			if !top.Alive(c.Socket) {
				t.Errorf("site member core %d is on dead socket %d", c.ID, c.Socket)
			}
		}
	}
	if err := e.Placement().ValidateAlive(top); err != nil {
		t.Errorf("post-failure placement routes to dead hardware: %v", err)
	}
	if e.TopologyEpoch() == 0 {
		t.Error("the failure should have bumped the topology epoch")
	}
	if res.Committed == 0 {
		t.Fatal("run should keep committing after the failure")
	}
}
