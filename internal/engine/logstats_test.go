package engine

import (
	"testing"

	"atrapos/internal/topology"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

// TestBuildWiringRetiredLogStats: a re-wiring that rebuilds island logs must
// capture the dropped logs' activity counters on the new wiring, so the
// engine's cumulative log accounting loses nothing across the rebuild.
func TestBuildWiringRetiredLogStats(t *testing.T) {
	prof, _ := topology.ProfileByName("2s-fc")
	e, err := New(Config{
		Design:      SharedNothing,
		IslandLevel: topology.LevelSocket,
		Workload:    workload.MultisiteUpdate(3000, 10),
		Topology:    prof.Build(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(RunOptions{Transactions: 500, Seed: 7, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	before := e.logStats()
	if before.Appends == 0 || before.LogicalRecords == 0 {
		t.Fatalf("run produced no log activity: %+v", before)
	}
	cur := e.state.snapshot().wiring

	// Socket -> core rebuilds every log (no core island matches a socket
	// island's member set), so the retired counters are the whole total.
	w := e.buildWiring(topology.LevelCore, cur.epoch+1, cur)
	if w.reusedLogs != 0 {
		t.Fatalf("socket->core should reuse no logs, reused %d", w.reusedLogs)
	}
	if w.retiredLogStats != before {
		t.Errorf("full rebuild should retire the whole pre-rewire totals:\n  retired %+v\n  before  %+v", w.retiredLogStats, before)
	}

	// A derived-but-never-installed wiring must not have touched the
	// engine's account.
	if got := e.logStats(); got != before {
		t.Errorf("deriving a wiring changed the totals: %+v vs %+v", got, before)
	}
	e.absorbRetiredLogs(w)
	if e.retiredLogStats != before {
		t.Errorf("absorbed account %+v, want the retired totals %+v", e.retiredLogStats, before)
	}
}

// TestBuildWiringRetiredLogStatsPartialReuse: only the logs the re-wiring
// actually drops are retired; a carried-over log keeps counting through the
// live side of logStats, so retired + surviving == the pre-rewire totals
// with no double count.
func TestBuildWiringRetiredLogStatsPartialReuse(t *testing.T) {
	prof, _ := topology.ProfileByName("2s-fc")
	top := prof.Build()
	e, err := New(Config{
		Design:      SharedNothing,
		IslandLevel: topology.LevelSocket,
		Workload:    workload.MultisiteUpdate(3000, 10),
		Topology:    top,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(RunOptions{Transactions: 500, Seed: 7, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	before := e.logStats()
	cur := e.state.snapshot().wiring
	if err := top.FailSocket(1); err != nil {
		t.Fatal(err)
	}
	// After the failure the surviving socket's island is exactly the machine
	// island, so socket->machine reuses that log and drops the dead one.
	w := e.buildWiring(topology.LevelMachine, cur.epoch+1, cur)
	if w.reusedLogs != 1 {
		t.Fatalf("expected the surviving socket's log to be reused, reused %d", w.reusedLogs)
	}
	survivor := w.logs.Log(0).Stats()
	if got := w.retiredLogStats.Add(survivor); got != before {
		t.Errorf("retired + surviving should equal the pre-rewire totals:\n  got    %+v\n  before %+v", got, before)
	}
	if w.retiredLogStats == (wal.Stats{}) {
		t.Error("the dead socket's log activity should have been retired")
	}
}

// TestAdaptiveRunLogStatsCumulative is the PR 7 known-approximation
// regression: adaptive level changes rebuild island logs, and before the
// retired-stats account existed, Result.Log lost the dropped logs' counters.
// Every committed transaction of the drifting-update workload appends at
// least one logical write record, so a run whose planner re-wired the
// machine must still report at least one logical record per commit — exactly
// the invariant that under-reporting broke.
func TestAdaptiveRunLogStatsCumulative(t *testing.T) {
	half := 30 * granWindow
	e := adaptiveGranEngine(t, "2s-fc", topology.LevelSocket, driftAcrossCrossover(8000, half))
	res, err := e.Run(RunOptions{
		Duration: 2 * half, MaxTransactions: 200_000,
		Seed: 7, Workers: 2, SampleWindow: granWindow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LevelChanges) == 0 {
		t.Fatal("the drift should force at least one level change")
	}
	rebuilt := 0
	for _, lc := range res.LevelChanges {
		rebuilt += lc.RebuiltLogs
	}
	if rebuilt == 0 {
		t.Fatal("no level change rebuilt a log; the regression needs a rebuild to bite")
	}
	if res.Log.LogicalRecords < res.Committed {
		t.Errorf("adaptive run under-reports its log activity: %d logical records for %d commits (changes: %+v)",
			res.Log.LogicalRecords, res.Committed, res.LevelChanges)
	}
	// The fixed-level twin of the first phase obeys the same invariant, so
	// the adaptive assertion above compares like with like.
	fixed, err := New(Config{
		Design:      SharedNothing,
		IslandLevel: topology.LevelSocket,
		Workload:    workload.MultisiteUpdate(8000, 0),
		Topology:    mustProfileTop(t, "2s-fc"),
	})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := fixed.Run(RunOptions{Transactions: 2000, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Log.LogicalRecords < fres.Committed {
		t.Fatalf("fixed-level run breaks the one-record-per-commit floor: %d records, %d commits",
			fres.Log.LogicalRecords, fres.Committed)
	}
}

func mustProfileTop(t *testing.T, name string) *topology.Topology {
	t.Helper()
	prof, ok := topology.ProfileByName(name)
	if !ok {
		t.Fatalf("unknown profile %s", name)
	}
	return prof.Build()
}
