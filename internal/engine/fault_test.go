package engine

import (
	"strings"
	"testing"

	"atrapos/internal/core"
	"atrapos/internal/fault"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

func TestRestoreSocketMirrorsFailSocket(t *testing.T) {
	e := deviceEngine(t, "nvme-per-socket", topology.LevelSocket)
	if err := e.RestoreSocket(9); err == nil || !strings.Contains(err.Error(), "unknown socket") {
		t.Errorf("restoring an unknown socket: err = %v", err)
	}
	if err := e.RestoreSocket(1); err == nil || !strings.Contains(err.Error(), "already alive") {
		t.Errorf("restoring an alive socket: err = %v", err)
	}
	if err := e.FailSocket(1); err != nil {
		t.Fatal(err)
	}
	if e.Topology().Alive(1) {
		t.Fatal("socket 1 should be dead")
	}
	if err := e.RestoreSocket(1); err != nil {
		t.Fatal(err)
	}
	if !e.Topology().Alive(1) {
		t.Error("socket 1 should be alive again")
	}
}

func TestDeviceFaultsWithoutLayoutRejected(t *testing.T) {
	e, err := New(Config{
		Design:   SharedNothing,
		Workload: workload.MultisiteUpdate(2000, 0),
		Topology: topology.Small(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, call := range map[string]func() error{
		"fail":    func() error { return e.FailDevice(0) },
		"restore": func() error { return e.RestoreDevice(0) },
		"degrade": func() error { return e.DegradeDevice(0, 2) },
	} {
		if err := call(); err == nil || !strings.Contains(err.Error(), "no log-device layout") {
			t.Errorf("%s without a layout: err = %v", name, err)
		}
	}
}

// TestCompileFaultsValidation asserts a schedule built for a different
// machine shape — or an unsupported drill configuration — is rejected when
// attached, before any transaction runs.
func TestCompileFaultsValidation(t *testing.T) {
	e := deviceEngine(t, "nvme-per-socket", topology.LevelDie) // 2 sockets, 2 devices
	opts := RunOptions{Transactions: 10, Workers: 1}

	wrongSockets, err := fault.NewSchedule(fault.Machine{Sockets: 4, Devices: 2}, fault.FailSocket(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	opts.Faults = wrongSockets
	if _, err := e.Run(opts); err == nil || !strings.Contains(err.Error(), "4-socket machine") {
		t.Errorf("socket-count mismatch: err = %v", err)
	}

	wrongDevices, err := fault.NewSchedule(fault.Machine{Sockets: 2, Devices: 4}, fault.FailDevice(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	opts.Faults = wrongDevices
	if _, err := e.Run(opts); err == nil || !strings.Contains(err.Error(), "4 log devices") {
		t.Errorf("device-count mismatch: err = %v", err)
	}

	crash, err := fault.NewSchedule(fault.Machine{Sockets: 2, Devices: 2}, fault.CrashAndRecover(1))
	if err != nil {
		t.Fatal(err)
	}
	opts.Faults = crash
	opts.Workers = 2
	if _, err := e.Run(opts); err == nil || !strings.Contains(err.Error(), "serial run") {
		t.Errorf("concurrent crash drill: err = %v", err)
	}
	opts.Workers = 1
	// Default Keep is bounded: the drill must demand full retention.
	if _, err := e.Run(opts); err == nil || !strings.Contains(err.Error(), "unbounded log retention") {
		t.Errorf("crash drill with bounded ring: err = %v", err)
	}
}

// TestValidateAliveDevices is the satellite-2 regression test: the placement
// liveness invariant must cover storage, not just sockets.
func TestValidateAliveDevices(t *testing.T) {
	e := deviceEngine(t, "nvme-per-socket", topology.LevelDie)
	p := e.Placement()
	top := e.Topology()
	if err := p.ValidateAliveDevices(top, e.Devices()); err != nil {
		t.Fatalf("healthy devices: %v", err)
	}
	if err := p.ValidateAliveDevices(top, nil); err != nil {
		t.Fatalf("nil device map must be trivially valid: %v", err)
	}
	// One failed device re-homes; the invariant still holds.
	if err := e.FailDevice(0); err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateAliveDevices(top, e.Devices()); err != nil {
		t.Fatalf("one failed device of two should re-home, not invalidate: %v", err)
	}
	// All devices failed (bypassing the map's last-device guard): no wiring
	// derived from this placement could bind logs to alive storage.
	for _, d := range e.Devices().Devices() {
		d.Fail()
	}
	if err := p.ValidateAliveDevices(top, e.Devices()); err == nil || !strings.Contains(err.Error(), "no alive log device") {
		t.Errorf("all devices failed: err = %v", err)
	}
	e.Devices().ResetFaults()
}

// TestWiringNeverBindsFailedDevice asserts the wiring rebuild re-homes island
// logs off failed devices (the regression half of satellite 2: the rebuild
// used to consider only socket liveness).
func TestWiringNeverBindsFailedDevice(t *testing.T) {
	e := deviceEngine(t, "nvme-per-socket", topology.LevelDie)
	if err := e.FailDevice(0); err != nil {
		t.Fatal(err)
	}
	if !e.WiringBindsFailedDevice() {
		t.Fatal("the installed wiring should still reference the just-failed device")
	}
	w1 := e.state.snapshot().wiring
	w2 := e.buildWiring(topology.LevelDie, w1.epoch+1, w1)
	for i := 0; i < w2.logs.NumLogs(); i++ {
		if d := w2.logs.Log(i).Device(); d == nil || d.Failed() {
			t.Errorf("rebuilt island %d bound to a failed (or nil) device", i)
		}
	}
	// Same core sets: every log is reused, and the ones that moved device are
	// counted as rebound — the records-preserving re-home path.
	if w2.reusedLogs != w1.logs.NumLogs() {
		t.Errorf("same-level rebuild should reuse all %d logs, reused %d", w1.logs.NumLogs(), w2.reusedLogs)
	}
	if w2.reboundDevices == 0 {
		t.Error("islands homed on the failed device should have been rebound")
	}
	e.Devices().ResetFaults()
}

// TestAdaptivePlannerRehomesFailedDevice drives the full loop: a FailDevice
// event mid-run makes the planner re-wire, reusing the island logs (records
// preserved) while re-binding the affected ones to surviving devices. The
// engine starts at core level — the level the planner prefers for a 0%
// multisite workload — so the failure-triggered refresh is a same-level
// rebind rather than racing a pending level change (which rebuilds logs).
func TestAdaptivePlannerRehomesFailedDevice(t *testing.T) {
	prof, _ := topology.ProfileByName("chiplet-2s4d")
	e, err := New(Config{
		Design:       SharedNothing,
		IslandLevel:  topology.LevelCore,
		Workload:     workload.MultisiteUpdate(8000, 0),
		Topology:     prof.Build(),
		DeviceLayout: "nvme-per-socket",
		Adaptive:     true,
		AdaptiveInterval: core.IntervalConfig{
			Initial: granWindow, Max: 4 * granWindow, StableThreshold: 0.10, History: 5,
		},
		TimeCompression: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fault.NewSchedule(fault.Machine{Sockets: 2, Devices: 2}, fault.FailDevice(5*granWindow, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(RunOptions{
		Duration: 30 * granWindow, MaxTransactions: 200_000,
		Seed: 7, Workers: 2, SampleWindow: granWindow,
		Faults: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("run should keep committing across the device failure")
	}
	if e.WiringBindsFailedDevice() {
		t.Error("planner left an island log bound to the failed device")
	}
	if !e.WiringConverged() {
		t.Error("wiring did not converge after the device failure")
	}
	rebound := 0
	for _, lc := range res.LevelChanges {
		rebound += lc.ReboundDevices
	}
	if rebound == 0 {
		t.Errorf("no island log was rebound across the failure; changes: %+v", res.LevelChanges)
	}
	e.Devices().ResetFaults()
}

// TestAdaptivePlannerReexpandsOnRestore: after a socket fails and returns,
// the granularity planner must re-expand the wiring onto the restored
// capacity — elastic capacity, the missing half of Figure 12.
func TestAdaptivePlannerReexpandsOnRestore(t *testing.T) {
	wl := workload.MultisiteUpdateDrifting(8000, func(vclock.Nanos) int { return 0 })
	e := adaptiveGranEngine(t, "subnuma-4s2d", topology.LevelDie, wl)
	sched, err := fault.NewSchedule(fault.Machine{Sockets: 4},
		fault.FailSocket(5*granWindow, 3),
		fault.RestoreSocket(15*granWindow, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(RunOptions{
		Duration: 40 * granWindow, MaxTransactions: 200_000,
		Seed: 7, Workers: 2, SampleWindow: granWindow,
		Faults: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := e.Topology()
	if !top.Alive(3) {
		t.Fatal("socket 3 should have been restored")
	}
	if !e.WiringConverged() {
		t.Fatal("wiring did not re-expand onto the restored socket")
	}
	w := e.state.snapshot().wiring
	onRestored := false
	for _, s := range w.sites {
		if s.Socket == 3 {
			onRestored = true
		}
	}
	if !onRestored {
		t.Errorf("no site homed on the restored socket; sites: %+v", w.sites)
	}
	if err := e.Placement().ValidateAlive(top); err != nil {
		t.Errorf("post-restore placement: %v", err)
	}
	if res.Committed == 0 {
		t.Fatal("run should commit across fail and restore")
	}
}

// TestConcurrentFaultsAndLevelChanges (satellite 3): the whole fault
// vocabulary fires while the granularity planner is changing levels (the
// workload drifts from 0% to 100% multisite mid-run, forcing a coarsening)
// and four workers execute throughout. `make race` runs this package with
// the race detector, so this is the concurrency surface that must stay
// clean; the post-run invariants catch torn wiring the detector cannot.
func TestConcurrentFaultsAndLevelChanges(t *testing.T) {
	prof, ok := topology.ProfileByName("subnuma-4s2d")
	if !ok {
		t.Fatal("subnuma-4s2d missing")
	}
	wl := workload.MultisiteUpdateDrifting(8000, func(at vclock.Nanos) int {
		if at < 15*granWindow {
			return 0
		}
		return 100
	})
	e, err := New(Config{
		Design:       SharedNothing,
		IslandLevel:  topology.LevelDie,
		Workload:     wl,
		Topology:     prof.Build(),
		DeviceLayout: "nvme-per-socket",
		Adaptive:     true,
		AdaptiveInterval: core.IntervalConfig{
			Initial: granWindow, Max: 4 * granWindow, StableThreshold: 0.10, History: 5,
		},
		TimeCompression: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fault.NewSchedule(fault.Machine{Sockets: 4, Devices: 4},
		fault.FailDevice(3*granWindow, 0),
		fault.DegradeDevice(6*granWindow, 3, 4),
		fault.FailSocket(10*granWindow, 3),
		fault.DegradeDevice(18*granWindow, 3, 1),
		fault.RestoreSocket(20*granWindow, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(RunOptions{
		Duration: 30 * granWindow, MaxTransactions: 120_000,
		Seed: 13, Workers: 4, SampleWindow: granWindow,
		Faults: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("run should keep committing through concurrent faults and level changes")
	}
	top := e.Topology()
	if !top.Alive(3) {
		t.Error("socket 3 should end the run restored")
	}
	if e.WiringBindsFailedDevice() {
		t.Error("an island log ended the run bound to the failed device")
	}
	if err := e.Placement().ValidateAlive(top); err != nil {
		t.Errorf("post-run placement: %v", err)
	}
	if err := e.Placement().ValidateAliveDevices(top, e.Devices()); err != nil {
		t.Errorf("post-run device binding: %v", err)
	}
	e.Devices().ResetFaults()
}

// crashDrillEngine builds a serial-drill-capable engine: fixed island level,
// unbounded log retention, no adaptivity.
func crashDrillEngine(t *testing.T, wl *workload.Workload) *Engine {
	t.Helper()
	prof, _ := topology.ProfileByName("chiplet-2s4d")
	lc := wal.DefaultConfig()
	lc.Keep = 0
	e, err := New(Config{
		Design:       SharedNothing,
		IslandLevel:  topology.LevelDie,
		Workload:     wl,
		Topology:     prof.Build(),
		DeviceLayout: "nvme-per-die-pair",
		LogConfig:    &lc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func keySetsEqual(a, b map[string][]schema.Key) (string, bool) {
	if len(a) != len(b) {
		return "table-count mismatch", false
	}
	for name, ka := range a {
		kb, ok := b[name]
		if !ok {
			return "missing table " + name, false
		}
		if len(ka) != len(kb) {
			return name, false
		}
		for i := range ka {
			if ka[i] != kb[i] {
				return name, false
			}
		}
	}
	return "", true
}

// TestCrashDrillEquivalence is the tentpole's recovery assertion: a serial
// run interrupted by a crash-and-recover drill ends with exactly the
// committed state of an identical fault-free run. TATP inserts and deletes
// rows (call forwarding), so the key sets genuinely depend on recovery.
func TestCrashDrillEquivalence(t *testing.T) {
	mk := func() *workload.Workload {
		return workload.MustTATP(workload.TATPOptions{Subscribers: 2000})
	}
	const txns = 1500
	// Fault-free twin first: its end-of-run virtual time places the crash
	// mid-run in the drill.
	ref := crashDrillEngine(t, mk())
	refRes, err := ref.Run(RunOptions{Transactions: txns, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Aborted != 0 {
		t.Fatalf("serial runs must not abort, got %d", refRes.Aborted)
	}
	want := ref.TableKeySets()

	drill := crashDrillEngine(t, mk())
	sched, err := fault.NewSchedule(fault.Machine{Sockets: 2, Devices: 4},
		fault.CrashAndRecover(refRes.VirtualTime/2))
	if err != nil {
		t.Fatal(err)
	}
	drillRes, err := drill.Run(RunOptions{Transactions: txns, Seed: 11, Workers: 1, Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	if drillRes.Committed != refRes.Committed {
		t.Errorf("committed diverged: drill %d, fault-free %d", drillRes.Committed, refRes.Committed)
	}
	got := drill.TableKeySets()
	if where, ok := keySetsEqual(want, got); !ok {
		t.Errorf("post-recovery state differs from the fault-free run at %s", where)
	}
}

// TestCrashAndRecoverCentralLog exercises the drill's central-log path (the
// non-shared-nothing designs have no island wiring).
func TestCrashAndRecoverCentralLog(t *testing.T) {
	mk := func() *workload.Workload {
		return workload.MustTATP(workload.TATPOptions{Subscribers: 1000})
	}
	lc := wal.DefaultConfig()
	lc.Keep = 0
	build := func() *Engine {
		e, err := New(Config{
			Design: Centralized, Workload: mk(), Topology: topology.Small(), LogConfig: &lc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ref := build()
	if _, err := ref.Run(RunOptions{Transactions: 800, Seed: 3, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := ref.TableKeySets()

	e := build()
	if _, err := e.Run(RunOptions{Transactions: 800, Seed: 3, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	stats, err := e.CrashAndRecover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Redone == 0 || stats.WinnerTxns == 0 {
		t.Fatalf("recovery did nothing: %+v", stats)
	}
	if where, ok := keySetsEqual(want, e.TableKeySets()); !ok {
		t.Errorf("central-log recovery state differs from the fault-free run at %s", where)
	}
}

// TestRecoveryAcrossDeviceFailureAndLevelChange (satellite 3): records
// written before a device failure survive the re-homing level change and
// replay from the re-bound logs.
func TestRecoveryAcrossDeviceFailureAndLevelChange(t *testing.T) {
	wl := workload.MultisiteUpdate(2000, 0)
	lc := wal.DefaultConfig()
	lc.Keep = 0
	prof, _ := topology.ProfileByName("chiplet-2s4d")
	e, err := New(Config{
		Design:       SharedNothing,
		IslandLevel:  topology.LevelDie,
		Workload:     wl,
		Topology:     prof.Build(),
		DeviceLayout: "nvme-per-socket",
		LogConfig:    &lc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(RunOptions{Transactions: 200, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	w1 := e.state.snapshot().wiring
	if w1.logs.Tail() == 0 {
		t.Fatal("no records before the failure")
	}
	if err := e.FailDevice(0); err != nil {
		t.Fatal(err)
	}
	// Die islands keep their core sets across the same-level rebuild, so the
	// logs — with their records — are reused and rebound off the dead device.
	w2 := e.buildWiring(topology.LevelDie, w1.epoch+1, w1)
	if w2.reboundDevices == 0 {
		t.Fatal("no log was rebound off the failed device")
	}
	stores := make(map[string]wal.RowStore)
	replayed := make(map[string]mapStore)
	for _, spec := range wl.TableSpecs() {
		ms := make(mapStore)
		stores[spec.Name] = ms
		replayed[spec.Name] = ms
	}
	redone := 0
	for i := 0; i < w2.logs.NumLogs(); i++ {
		lg := w2.logs.Log(i)
		stats, err := wal.Recover(lg.Records(), lg.Durable(), false, stores)
		if err != nil {
			t.Fatal(err)
		}
		redone += stats.Redone
		if d := lg.Device(); d == nil || d.Failed() {
			t.Errorf("island %d log still on a failed device after the re-home", i)
		}
	}
	if redone == 0 {
		t.Fatal("recovery across the device failure redid nothing")
	}
	for i := 0; i < w2.logs.NumLogs(); i++ {
		for _, rec := range w2.logs.Log(i).Records() {
			if rec.Type != wal.Update {
				continue
			}
			if ms, ok := replayed[rec.Table]; ok {
				if _, ok := ms[rec.Key]; !ok {
					t.Fatalf("update record %s/%v did not survive the re-home", rec.Table, rec.Key)
				}
			}
		}
	}
	e.Devices().ResetFaults()
}

// TestFaultFreeRunsBitIdentical asserts attaching no schedule changes
// nothing: the run with a nil Faults field is byte-for-byte the run before
// this subsystem existed (acceptance criterion: fault-free bit-identity).
func TestFaultFreeRunsBitIdentical(t *testing.T) {
	run := func(faults *fault.Schedule) *Result {
		e := deviceEngine(t, "nvme-per-socket", topology.LevelDie)
		res, err := e.Run(RunOptions{Transactions: 500, Seed: 7, Workers: 1, Faults: faults})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(nil)
	empty, err := fault.NewSchedule(fault.Machine{Sockets: 2, Devices: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := run(empty)
	if a.VirtualTime != b.VirtualTime || a.Committed != b.Committed || a.ThroughputTPS != b.ThroughputTPS {
		t.Errorf("empty schedule changed the run: %v/%d vs %v/%d",
			a.VirtualTime, a.Committed, b.VirtualTime, b.Committed)
	}
}
