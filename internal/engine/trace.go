package engine

import (
	"atrapos/internal/numa"
	"atrapos/internal/obs"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// traceOp records one virtual-time operation span on the worker's ring,
// ending at the charged core's current time (call it after the cost has been
// charged, so [end-cost, end] is exactly the operation's slice of the core's
// timeline). With tracing off sc.ring is nil and the call is one comparison.
func (e *Engine) traceOp(sc *execScratch, kind obs.Kind, core topology.CoreID, cost numa.Cost, arg int64) {
	if sc.ring == nil {
		return
	}
	end := e.coreTime(core)
	sc.ring.Record(obs.Span{
		Start:  end - vclock.Nanos(cost),
		Dur:    vclock.Nanos(cost),
		Kind:   kind,
		Worker: sc.worker,
		Core:   int32(core),
		Site:   sc.site,
		Epoch:  sc.epoch,
		Arg:    arg,
	})
}

// trace2PC records the two phases of a completed commit protocol as separate
// spans: the voting phase at its measured PrepareCost and the decision and
// completion phase as the remainder. Call it after the outcome's ByComponent
// costs have been charged to the coordinating core; hold-time charges land on
// remote cores and are deliberately outside both spans.
func (e *Engine) trace2PC(sc *execScratch, core topology.CoreID, total, prepare numa.Cost, participants int, committed bool) {
	if sc.ring == nil {
		return
	}
	end := e.coreTime(core)
	start := end - vclock.Nanos(total)
	arg := int64(participants)
	if !committed {
		arg = -arg
	}
	sc.ring.Record(obs.Span{
		Start: start, Dur: vclock.Nanos(prepare), Kind: obs.KindPrepare,
		Worker: sc.worker, Core: int32(core), Site: sc.site, Epoch: sc.epoch, Arg: arg,
	})
	sc.ring.Record(obs.Span{
		Start: start + vclock.Nanos(prepare), Dur: vclock.Nanos(total - prepare), Kind: obs.KindCommit,
		Worker: sc.worker, Core: int32(core), Site: sc.site, Epoch: sc.epoch, Arg: arg,
	})
}

// errArg encodes an operation error as a span argument: 1 failed, 0 ok.
func errArg(err error) int64 {
	if err != nil {
		return 1
	}
	return 0
}
