package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"atrapos/internal/core"
	"atrapos/internal/numa"
	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// adaptiveState wires the ATraPos monitoring and adaptation machinery of the
// core package into the engine as a concurrent pipeline: workers record
// actions and synchronization points into the active monitor epoch and do a
// single atomic boundary check per transaction; a dedicated planner
// goroutine — the paper's monitoring thread — consumes boundary crossings,
// consults the interval controller, seals the monitor epoch, runs the
// two-step search and, when the cost model predicts an improvement, installs
// a snapshot derived incrementally from the previous one via
// Runtime.ApplyDiff. The migration pause is charged only to the cores whose
// partitions actually moved; cores owning unchanged partitions keep working.
type adaptiveState struct {
	e        *Engine
	monitor  *core.Monitor
	planner  *core.Planner
	executor *core.Executor
	maxKeys  map[string]schema.Key

	// nextCheck is read on every transaction (outside any lock) to decide
	// whether a monitoring boundary was crossed; only the planner goroutine
	// writes it.
	nextCheck atomic.Int64

	// kick wakes the planner goroutine after a boundary crossing. It is
	// buffered so the worker-side send never blocks; redundant crossings
	// coalesce into the one buffered token.
	kick chan struct{}
	stop chan struct{}
	done chan struct{}
	// committed points at the run's committed-transaction counter while a
	// run is active; the planner reads it to measure interval throughput.
	committed *atomic.Int64

	// The fields below are owned by the planner goroutine between start and
	// stopPlanner; reset touches them only while no planner is running.
	controller    *core.IntervalController
	lastCheckAt   vclock.Nanos
	lastCommitted int64
	// cooldown counts monitoring intervals to sit out after a repartitioning,
	// so the system observes the effect of one decision before making the
	// next; it damps oscillation between near-equivalent placements.
	cooldown int

	repartitions    atomic.Int64
	repartitionCost atomic.Int64
	// adaptCharged is the total virtual time actually charged to cores for
	// migrations (cost x affected cores); it feeds AdaptationCostShare.
	adaptCharged atomic.Int64

	diffMu sync.Mutex
	diffs  []RepartitionDiff
}

// RepartitionDiff summarizes one adaptive repartitioning event: when it
// happened, how much of the placement it touched and how much of the
// previous runtime it reused. It is the per-event record behind the
// "repartitioning cost scales with the diff" property.
type RepartitionDiff struct {
	// At is the virtual time of the event.
	At vclock.Nanos
	// ChangedTables / UnchangedTables split the tables by whether the plan
	// touched them; unchanged tables keep their runtime and monitor arrays.
	ChangedTables   int
	UnchangedTables int
	// ReboundTables counts tables whose partition boundaries changed.
	ReboundTables int
	// MovedPartitions is the number of partitions whose key range or owning
	// core changed — the size of the migration.
	MovedPartitions int
	// ReusedLockTables / RebuiltLockTables count partition lock tables
	// carried over from, respectively built fresh against, the previous
	// runtime.
	ReusedLockTables  int
	RebuiltLockTables int
	// AffectedCores is how many cores paused for the migration.
	AffectedCores int
	// Cost is the modeled virtual time of the migration (charged to each
	// affected core).
	Cost vclock.Nanos
}

func newAdaptiveState(e *Engine, p *partition.Placement) *adaptiveState {
	maxKeys := make(map[string]schema.Key)
	for _, spec := range e.wl.TableSpecs() {
		maxKeys[spec.Name] = schema.KeyFromInt(spec.MaxKey)
	}
	execCfg := core.DefaultExecutorConfig()
	if tc := e.cfg.TimeCompression; tc > 1 {
		execCfg.PerRowCost = numa.Cost(float64(execCfg.PerRowCost) / tc)
		execCfg.PerActionCost = numa.Cost(float64(execCfg.PerActionCost) / tc)
		if execCfg.PerRowCost < 1 {
			execCfg.PerRowCost = 1
		}
		if execCfg.PerActionCost < 1 {
			execCfg.PerActionCost = 1
		}
	}
	a := &adaptiveState{
		e:        e,
		monitor:  core.NewMonitor(0),
		maxKeys:  maxKeys,
		executor: core.NewExecutor(execCfg, e.domain, e.store),
	}
	a.planner = core.NewPlanner(core.CostModel{Domain: e.domain}, a.monitor.SubPartitions())
	// At run time an idle table says nothing about future load; keeping its
	// placement makes it diff as unchanged, so repartitioning skips it.
	a.planner.PreserveIdle = true
	a.controller = core.NewIntervalController(e.cfg.AdaptiveInterval)
	a.monitor.RegisterPlacement(p, maxKeys)
	a.nextCheck.Store(int64(a.controller.Interval()))
	return a
}

// reset prepares the adaptive state for a fresh run. It must only be called
// while no planner goroutine is running.
func (a *adaptiveState) reset() {
	a.controller = core.NewIntervalController(a.e.cfg.AdaptiveInterval)
	a.nextCheck.Store(int64(a.controller.Interval()))
	a.lastCheckAt = 0
	a.lastCommitted = 0
	a.cooldown = 0
	a.repartitions.Store(0)
	a.repartitionCost.Store(0)
	a.adaptCharged.Store(0)
	a.diffMu.Lock()
	a.diffs = nil
	a.diffMu.Unlock()
	a.monitor.RegisterPlacement(a.e.state.snapshot().placement, a.maxKeys)
}

// start launches the planner goroutine for one run. committed is the run's
// committed-transaction counter.
func (a *adaptiveState) start(committed *atomic.Int64) {
	a.committed = committed
	a.kick = make(chan struct{}, 1)
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go a.plannerLoop()
}

// stopPlanner asks the planner goroutine to finish and waits for it. A kick
// pending at stop time is still processed, so short runs whose last boundary
// crossing raced the end of the workload still evaluate it.
func (a *adaptiveState) stopPlanner() {
	if a.stop == nil {
		return
	}
	close(a.stop)
	<-a.done
	a.stop = nil
}

// plannerLoop is the dedicated adaptation goroutine: it blocks until a
// worker reports a monitoring-boundary crossing, then runs the evaluation
// (and possibly a repartitioning) concurrently with regular execution.
func (a *adaptiveState) plannerLoop() {
	defer close(a.done)
	for {
		select {
		case <-a.stop:
			select {
			case <-a.kick:
				a.adaptOnce()
			default:
			}
			return
		case <-a.kick:
			a.adaptOnce()
		}
	}
}

// noteBoundary is the workers' entire obligation to the adaptation pipeline,
// called once per transaction: one atomic load against the next monitoring
// boundary and, at most once per boundary, a non-blocking send to wake the
// planner. The evaluation itself never runs on a worker.
func (a *adaptiveState) noteBoundary() {
	if !a.e.cfg.Adaptive {
		return
	}
	if int64(a.e.virtualNow()) < a.nextCheck.Load() {
		return
	}
	select {
	case a.kick <- struct{}{}:
		// Hand the host CPU to the planner goroutine so the evaluation starts
		// promptly even when every processor is saturated with workers (e.g.
		// GOMAXPROCS=1). This runs at most once per monitoring boundary.
		runtime.Gosched()
	default:
	}
}

func (a *adaptiveState) recordAction(table string, key schema.Key, cost vclock.Nanos) {
	if !a.e.cfg.Monitoring {
		return
	}
	a.monitor.RecordAction(table, key, cost)
}

func (a *adaptiveState) recordSync(refs []core.PartitionRef, bytes int) {
	if !a.e.cfg.Monitoring {
		return
	}
	a.monitor.RecordSync(refs, bytes)
}

// adaptOnce processes one monitoring boundary: it measures the throughput of
// the interval, consults the interval controller, and when the controller
// asks for an evaluation it runs the two-step search and repartitions if the
// cost model predicts an improvement. It runs on the planner goroutine,
// concurrently with regular execution.
func (a *adaptiveState) adaptOnce() {
	e := a.e
	now := e.virtualNowExact()
	if int64(now) < a.nextCheck.Load() {
		return
	}

	window := now - a.lastCheckAt
	if window <= 0 {
		window = a.controller.Interval()
	}
	committedSoFar := a.committed.Load()
	throughput := float64(committedSoFar-a.lastCommitted) / window.Seconds()
	a.lastCommitted = committedSoFar
	a.lastCheckAt = now
	a.monitor.AdvanceWindow(window)

	decision := a.controller.Observe(throughput)
	a.nextCheck.Store(int64(now + a.controller.Interval()))
	if a.cooldown > 0 {
		a.cooldown--
		return
	}
	// A change in the hardware topology (a partition owned by a core on a
	// failed socket) is always grounds for an evaluation, independent of the
	// throughput history.
	if decision != core.Evaluate && a.placementUsesDeadCore() {
		decision = core.Evaluate
	}
	if decision != core.Evaluate {
		return
	}

	// Seal the monitoring epoch: workers keep recording into the flipped
	// buffer while the search below reads the sealed statistics.
	stats := a.monitor.Seal()
	if stats.TotalCost() == 0 {
		return
	}
	snap := e.state.snapshot()
	current := snap.placement
	proposed := a.planner.Plan(current, stats, a.maxKeys)
	if err := proposed.Validate(); err != nil {
		return
	}
	// Never install a placement that routes work to dead hardware.
	if err := proposed.ValidateAlive(e.cfg.Topology); err != nil {
		return
	}
	if !a.improves(current, proposed, stats) {
		return
	}
	diff := partition.Diff(current, proposed)
	if diff.Empty() {
		return
	}
	// Derive the new runtime incrementally: unchanged tables keep their lock
	// tables (and NUMA homes); only moved partitions are rebuilt. The
	// invariant check refuses a runtime that is not equivalent to a fresh
	// build, so a diffing bug degrades to a skipped repartitioning rather
	// than a torn snapshot — which is why it must run before the executor
	// touches the physical tables.
	rt, applied := snap.runtime.ApplyDiff(proposed, diff)
	if err := rt.Validate(proposed); err != nil {
		return
	}
	plan := core.BuildPlan(current, proposed, e.cfg.Topology)
	outcome, err := a.executor.Execute(plan)
	if err != nil {
		return
	}
	// The migration pauses only the cores whose partitions moved (per
	// Section VI-D a repartitioning takes a fraction of a second, not a
	// global stall); everyone else keeps executing.
	affected := diff.AffectedCores()
	for _, c := range affected {
		e.charge(c, vclock.Management, numa.Cost(outcome.Cost))
	}
	if len(affected) > 0 {
		e.noteTime(affected[0])
		a.adaptCharged.Add(int64(outcome.Cost) * int64(len(affected)))
	}
	e.state.install(proposed, rt, e.activePartitionsPerCore(proposed, now))
	// Re-register monitoring arrays only for the tables the plan touched;
	// unchanged tables keep accumulating into their existing arrays.
	for name, td := range diff.Tables {
		if td.Kind != partition.TableUnchanged {
			a.monitor.Register(name, proposed.Tables[name].Bounds, a.maxKeys[name])
		}
	}
	a.controller.Repartitioned()
	a.nextCheck.Store(int64(now + a.controller.Interval()))
	a.cooldown = 2
	a.repartitions.Add(1)
	a.repartitionCost.Add(int64(outcome.Cost))

	a.diffMu.Lock()
	a.diffs = append(a.diffs, RepartitionDiff{
		At:                now,
		ChangedTables:     diff.ChangedTables(),
		UnchangedTables:   diff.UnchangedTables(),
		ReboundTables:     diff.ReboundTables(),
		MovedPartitions:   diff.MovedPartitions(),
		ReusedLockTables:  applied.ReusedManagers,
		RebuiltLockTables: applied.RebuiltManagers,
		AffectedCores:     len(affected),
		Cost:              outcome.Cost,
	})
	a.diffMu.Unlock()
}

// takeDiffs returns a copy of the per-repartitioning diff records.
func (a *adaptiveState) takeDiffs() []RepartitionDiff {
	a.diffMu.Lock()
	defer a.diffMu.Unlock()
	return append([]RepartitionDiff(nil), a.diffs...)
}

// placementUsesDeadCore reports whether any partition is owned by a core on a
// failed socket, which ATraPos treats as a hardware-topology change.
func (a *adaptiveState) placementUsesDeadCore() bool {
	return usesDeadCore(a.e.state.snapshot().placement, a.e.cfg.Topology)
}

func usesDeadCore(p *partition.Placement, top *topology.Topology) bool {
	for _, tp := range p.Tables {
		for _, c := range tp.Cores {
			if !top.Alive(top.SocketOf(c)) {
				return true
			}
		}
	}
	return false
}

// improves applies the cost model to decide whether the proposed placement is
// worth the repartitioning pause: the combined balance + synchronization
// score must drop by at least 5%.
func (a *adaptiveState) improves(current, proposed *partition.Placement, stats *core.Stats) bool {
	// Moving off a failed socket is always worth the pause.
	if a.placementUsesDeadCore() && !usesDeadCore(proposed, a.e.cfg.Topology) {
		return true
	}
	model := a.planner.Model
	weight := float64(a.e.domain.Model.ByteTransferPerHop)
	curScore := model.ResourceUtilization(current, stats) + weight*model.TransactionSync(current, stats)
	newScore := model.ResourceUtilization(proposed, stats) + weight*model.TransactionSync(proposed, stats)
	if curScore <= 0 {
		return false
	}
	return newScore < 0.95*curScore
}
