package engine

import (
	"sync"
	"sync/atomic"

	"atrapos/internal/core"
	"atrapos/internal/numa"
	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// adaptiveState wires the ATraPos monitoring and adaptation machinery of the
// core package into the engine: workers record actions and synchronization
// points into the monitor, and after every monitoring interval one worker
// evaluates the cost model and, if beneficial, repartitions the system while
// regular execution is paused (its cost is charged to every core).
type adaptiveState struct {
	e          *Engine
	monitor    *core.Monitor
	planner    *core.Planner
	executor   *core.Executor
	controller *core.IntervalController
	maxKeys    map[string]schema.Key

	mu sync.Mutex
	// nextCheck is read on every transaction (outside the mutex) to decide
	// whether a monitoring boundary was crossed, so it is atomic.
	nextCheck     atomic.Int64
	lastCheckAt   vclock.Nanos
	lastCommitted int64
	// cooldown counts monitoring intervals to sit out after a repartitioning,
	// so the system observes the effect of one decision before making the
	// next; it damps oscillation between near-equivalent placements.
	cooldown int

	repartitions    atomic.Int64
	repartitionCost atomic.Int64
}

func newAdaptiveState(e *Engine, p *partition.Placement) *adaptiveState {
	maxKeys := make(map[string]schema.Key)
	for _, spec := range e.wl.TableSpecs() {
		maxKeys[spec.Name] = schema.KeyFromInt(spec.MaxKey)
	}
	execCfg := core.DefaultExecutorConfig()
	if tc := e.cfg.TimeCompression; tc > 1 {
		execCfg.PerRowCost = numa.Cost(float64(execCfg.PerRowCost) / tc)
		execCfg.PerActionCost = numa.Cost(float64(execCfg.PerActionCost) / tc)
		if execCfg.PerRowCost < 1 {
			execCfg.PerRowCost = 1
		}
		if execCfg.PerActionCost < 1 {
			execCfg.PerActionCost = 1
		}
	}
	a := &adaptiveState{
		e:        e,
		monitor:  core.NewMonitor(0),
		maxKeys:  maxKeys,
		executor: core.NewExecutor(execCfg, e.domain, e.store),
	}
	a.planner = core.NewPlanner(core.CostModel{Domain: e.domain}, a.monitor.SubPartitions())
	a.controller = core.NewIntervalController(e.cfg.AdaptiveInterval)
	a.monitor.RegisterPlacement(p, maxKeys)
	a.nextCheck.Store(int64(a.controller.Interval()))
	return a
}

// reset prepares the adaptive state for a fresh run.
func (a *adaptiveState) reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.controller = core.NewIntervalController(a.e.cfg.AdaptiveInterval)
	a.nextCheck.Store(int64(a.controller.Interval()))
	a.lastCheckAt = 0
	a.lastCommitted = 0
	a.cooldown = 0
	a.repartitions.Store(0)
	a.repartitionCost.Store(0)
	a.monitor.RegisterPlacement(a.e.state.snapshot().placement, a.maxKeys)
}

// Interval returns the current monitoring interval, for observability.
func (a *adaptiveState) interval() vclock.Nanos {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.controller.Interval()
}

func (a *adaptiveState) recordAction(table string, key schema.Key, cost vclock.Nanos) {
	if !a.e.cfg.Monitoring {
		return
	}
	a.monitor.RecordAction(table, key, cost)
}

func (a *adaptiveState) recordSync(refs []core.PartitionRef, bytes int) {
	if !a.e.cfg.Monitoring {
		return
	}
	a.monitor.RecordSync(refs, bytes)
}

// maybeAdapt is called by workers after every transaction. When the virtual
// time crosses the next monitoring boundary, one worker (the one that wins
// the TryLock) plays the role of the monitoring thread: it measures the
// throughput of the interval, consults the interval controller, and when the
// controller asks for an evaluation it runs the two-step search and
// repartitions if the cost model predicts an improvement.
func (a *adaptiveState) maybeAdapt(committedSoFar int64) {
	if !a.e.cfg.Adaptive {
		return
	}
	// Cheap boundary test against the virtual-time high-water mark; the exact
	// (O(cores)) recomputation happens only after the boundary is crossed and
	// the TryLock is won.
	if int64(a.e.virtualNow()) < a.nextCheck.Load() {
		return
	}
	if !a.mu.TryLock() {
		return
	}
	defer a.mu.Unlock()
	now := a.e.virtualNowExact()
	if int64(now) < a.nextCheck.Load() {
		return
	}

	window := now - a.lastCheckAt
	if window <= 0 {
		window = a.controller.Interval()
	}
	throughput := float64(committedSoFar-a.lastCommitted) / window.Seconds()
	a.lastCommitted = committedSoFar
	a.lastCheckAt = now
	a.monitor.AdvanceWindow(window)

	decision := a.controller.Observe(throughput)
	a.nextCheck.Store(int64(now + a.controller.Interval()))
	if a.cooldown > 0 {
		a.cooldown--
		return
	}
	// A change in the hardware topology (a partition owned by a core on a
	// failed socket) is always grounds for an evaluation, independent of the
	// throughput history.
	if decision != core.Evaluate && a.placementUsesDeadCore() {
		decision = core.Evaluate
	}
	if decision != core.Evaluate {
		return
	}

	stats := a.monitor.Aggregate()
	if stats.TotalCost() == 0 {
		return
	}
	current := a.e.state.snapshot().placement
	proposed := a.planner.Plan(current, stats, a.maxKeys)
	if err := proposed.Validate(); err != nil {
		return
	}
	if !a.improves(current, proposed, stats) {
		return
	}
	plan := core.BuildPlan(current, proposed, a.e.cfg.Topology)
	if plan.Empty() {
		return
	}
	outcome, err := a.executor.Execute(plan)
	if err != nil {
		return
	}
	// Regular actions are paused while the repartitioning actions execute:
	// every core is charged the repartitioning time.
	a.e.chargeAll(vclock.Management, numa.Cost(outcome.Cost))
	a.e.state.install(proposed, partition.NewRuntime(a.e.domain, proposed), a.e.activePartitionsPerCore(proposed, now))
	a.monitor.RegisterPlacement(proposed, a.maxKeys)
	a.controller.Repartitioned()
	a.nextCheck.Store(int64(now + a.controller.Interval()))
	a.cooldown = 2
	a.repartitions.Add(1)
	a.repartitionCost.Add(int64(outcome.Cost))
}

// placementUsesDeadCore reports whether any partition is owned by a core on a
// failed socket, which ATraPos treats as a hardware-topology change.
func (a *adaptiveState) placementUsesDeadCore() bool {
	return usesDeadCore(a.e.state.snapshot().placement, a.e.cfg.Topology)
}

func usesDeadCore(p *partition.Placement, top *topology.Topology) bool {
	for _, tp := range p.Tables {
		for _, c := range tp.Cores {
			if !top.Alive(top.SocketOf(c)) {
				return true
			}
		}
	}
	return false
}

// improves applies the cost model to decide whether the proposed placement is
// worth the repartitioning pause: the combined balance + synchronization
// score must drop by at least 5%.
func (a *adaptiveState) improves(current, proposed *partition.Placement, stats *core.Stats) bool {
	// Moving off a failed socket is always worth the pause.
	if a.placementUsesDeadCore() && !usesDeadCore(proposed, a.e.cfg.Topology) {
		return true
	}
	model := a.planner.Model
	weight := float64(a.e.domain.Model.ByteTransferPerHop)
	curScore := model.ResourceUtilization(current, stats) + weight*model.TransactionSync(current, stats)
	newScore := model.ResourceUtilization(proposed, stats) + weight*model.TransactionSync(proposed, stats)
	if curScore <= 0 {
		return false
	}
	return newScore < 0.95*curScore
}
