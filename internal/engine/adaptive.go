package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"atrapos/internal/core"
	"atrapos/internal/numa"
	"atrapos/internal/obs"
	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

// adaptiveState wires the ATraPos monitoring and adaptation machinery of the
// core package into the engine as a concurrent pipeline: workers record
// actions and synchronization points into the active monitor epoch and do a
// single atomic boundary check per transaction; a dedicated planner
// goroutine — the paper's monitoring thread — consumes boundary crossings,
// consults the interval controller, seals the monitor epoch, runs the
// two-step search and, when the cost model predicts an improvement, installs
// a snapshot derived incrementally from the previous one via
// Runtime.ApplyDiff. The migration pause is charged only to the cores whose
// partitions actually moved; cores owning unchanged partitions keep working.
type adaptiveState struct {
	e        *Engine
	monitor  *core.Monitor
	planner  *core.Planner
	executor *core.Executor
	maxKeys  map[string]schema.Key

	// granularity marks the adaptive-granularity mode of the parametric
	// shared-nothing design: instead of moving partitions between cores, the
	// planner re-derives the whole instance wiring at a different island
	// level when the monitored multisite share crosses the scorer's
	// crossover. The ATraPos design uses the placement pipeline instead.
	granularity bool
	granModel   core.GranularityModel
	// totalKeys is the summed key span of the workload's tables; it feeds the
	// scorer's conflict term.
	totalKeys int64
	// workers is the worker count of the active run (set by start), the
	// scorer's concurrency input.
	workers int

	// nextCheck is read on every transaction (outside any lock) to decide
	// whether a monitoring boundary was crossed; only the planner goroutine
	// writes it.
	nextCheck atomic.Int64

	// kick wakes the planner goroutine after a boundary crossing. It is
	// buffered so the worker-side send never blocks; redundant crossings
	// coalesce into the one buffered token.
	kick chan struct{}
	stop chan struct{}
	done chan struct{}
	// sync runs the planner inline on the (single) worker at each boundary
	// crossing instead of on its own goroutine. Set by start for traced
	// one-worker runs: the planner then observes virtual time at a
	// deterministic point of the transaction stream, which makes the exported
	// trace (decision times, samples, planner spans) a pure function of the
	// seed. Multi-worker and untraced runs keep the concurrent planner.
	sync bool
	// committed and aborted point at the run's transaction counters while a
	// run is active; the planner reads them to measure interval throughput
	// and the metrics sampler's conflict rate.
	committed *atomic.Int64
	aborted   *atomic.Int64

	// The fields below are owned by the planner goroutine between start and
	// stopPlanner; reset touches them only while no planner is running.
	controller    *core.IntervalController
	lastCheckAt   vclock.Nanos
	lastCommitted int64
	// cooldown counts monitoring intervals to sit out after a repartitioning,
	// so the system observes the effect of one decision before making the
	// next; it damps oscillation between near-equivalent placements.
	cooldown int
	// hwEpoch is the topology liveness epoch observed at the last boundary;
	// a change (a socket failed or was restored) forces an evaluation even
	// when throughput looks stable, so the ATraPos pipeline re-expands onto
	// restored capacity instead of waiting for an instability signal.
	hwEpoch uint64

	// Metrics-sampler deltas (planner-goroutine owned, like the fields above):
	// the previous boundary's aborted count, cumulative log counters, per-core
	// committed counts, and the multisite share of the last sealed epoch. The
	// sampler piggybacks on the planner's existing boundary pipeline so it
	// adds no hot-path synchronization.
	lastAborted       int64
	lastLogStats      wal.Stats
	lastShare         float64
	prevCoreCommitted []int64

	repartitions    atomic.Int64
	repartitionCost atomic.Int64
	// adaptCharged is the total virtual time actually charged to cores for
	// migrations (cost x affected cores); it feeds AdaptationCostShare.
	adaptCharged atomic.Int64

	diffMu sync.Mutex
	diffs  []RepartitionDiff
	// levelChanges records the island-level trajectory of the run (adaptive
	// granularity mode only), guarded by diffMu like diffs.
	levelChanges []GranularityChange
}

// granHysteresis is the relative score improvement a candidate island level
// must promise before the planner re-wires the machine: the band around the
// measured crossover inside which the current level is kept, so the system
// does not thrash between near-equivalent granularities.
const granHysteresis = 0.10

// granTieMargin resolves scorer near-ties toward the finer level, matching
// the sweep's empirical preference for fine islands when coordination is free.
const granTieMargin = 0.02

// GranularityChange records one online island-level change: when it happened,
// what the planner measured and decided, what the re-wiring cost and how much
// of the previous machine layout it reused.
type GranularityChange struct {
	// At is the virtual time of the change.
	At vclock.Nanos
	// From and To are the island levels before and after.
	From, To topology.Level
	// MultisiteShare is the sealed epoch's measured multisite share that
	// triggered the decision.
	MultisiteShare float64
	// Cost is the modeled virtual time of the re-wiring migration (charged to
	// each affected core).
	Cost vclock.Nanos
	// AffectedCores is how many cores paused for the migration; everyone else
	// kept executing against the previous snapshot.
	AffectedCores int
	// ReusedLogs / RebuiltLogs count per-island write-ahead logs carried over
	// from, respectively built fresh against, the previous wiring;
	// ReboundDevices counts the reused logs whose device binding the
	// re-wiring had to re-derive.
	ReusedLogs, RebuiltLogs, ReboundDevices int
	// ReusedLockTables / RebuiltLockTables count partition lock tables
	// carried over across the level change.
	ReusedLockTables, RebuiltLockTables int
	// WinnerScores and RunnerUpScores are the granularity scorer's per-term
	// breakdowns for the level the planner switched to and for the next-best
	// candidate it rejected — the explanation of the decision. On a
	// hardware-forced rebuild the winner may equal the current level.
	WinnerScores, RunnerUpScores core.LevelBreakdown
}

// RepartitionDiff summarizes one adaptive repartitioning event: when it
// happened, how much of the placement it touched and how much of the
// previous runtime it reused. It is the per-event record behind the
// "repartitioning cost scales with the diff" property.
type RepartitionDiff struct {
	// At is the virtual time of the event.
	At vclock.Nanos
	// ChangedTables / UnchangedTables split the tables by whether the plan
	// touched them; unchanged tables keep their runtime and monitor arrays.
	ChangedTables   int
	UnchangedTables int
	// ReboundTables counts tables whose partition boundaries changed.
	ReboundTables int
	// MovedPartitions is the number of partitions whose key range or owning
	// core changed — the size of the migration.
	MovedPartitions int
	// ReusedLockTables / RebuiltLockTables count partition lock tables
	// carried over from, respectively built fresh against, the previous
	// runtime.
	ReusedLockTables  int
	RebuiltLockTables int
	// AffectedCores is how many cores paused for the migration.
	AffectedCores int
	// Cost is the modeled virtual time of the migration (charged to each
	// affected core).
	Cost vclock.Nanos
}

func newAdaptiveState(e *Engine, p *partition.Placement) *adaptiveState {
	maxKeys := make(map[string]schema.Key)
	for _, spec := range e.wl.TableSpecs() {
		maxKeys[spec.Name] = schema.KeyFromInt(spec.MaxKey)
	}
	execCfg := core.DefaultExecutorConfig()
	if tc := e.cfg.TimeCompression; tc > 1 {
		execCfg.PerRowCost = numa.Cost(float64(execCfg.PerRowCost) / tc)
		execCfg.PerActionCost = numa.Cost(float64(execCfg.PerActionCost) / tc)
		if execCfg.PerRowCost < 1 {
			execCfg.PerRowCost = 1
		}
		if execCfg.PerActionCost < 1 {
			execCfg.PerActionCost = 1
		}
	}
	a := &adaptiveState{
		e:        e,
		monitor:  core.NewMonitor(0),
		maxKeys:  maxKeys,
		executor: core.NewExecutor(execCfg, e.domain, e.store),
	}
	a.planner = core.NewPlanner(core.CostModel{Domain: e.domain}, a.monitor.SubPartitions())
	// At run time an idle table says nothing about future load; keeping its
	// placement makes it diff as unchanged, so repartitioning skips it.
	a.planner.PreserveIdle = true
	if e.cfg.Design == SharedNothing {
		a.granularity = true
		a.granModel = core.GranularityModel{
			Domain:          e.domain,
			LogFlush:        e.cfg.LogConfig.FlushCost,
			LogGroupSize:    e.cfg.LogConfig.GroupSize,
			Devices:         e.devices,
			CoalesceRecords: e.cfg.LogConfig.CoalesceRecords,
		}
		for _, spec := range e.wl.TableSpecs() {
			a.totalKeys += spec.MaxKey
		}
	}
	a.controller = core.NewIntervalController(e.cfg.AdaptiveInterval)
	a.monitor.RegisterPlacement(p, maxKeys)
	a.nextCheck.Store(int64(a.controller.Interval()))
	return a
}

// reset prepares the adaptive state for a fresh run. It must only be called
// while no planner goroutine is running.
func (a *adaptiveState) reset() {
	a.controller = core.NewIntervalController(a.e.cfg.AdaptiveInterval)
	a.nextCheck.Store(int64(a.controller.Interval()))
	a.lastCheckAt = 0
	a.lastCommitted = 0
	a.cooldown = 0
	a.hwEpoch = a.e.cfg.Topology.Epoch()
	a.repartitions.Store(0)
	a.repartitionCost.Store(0)
	a.adaptCharged.Store(0)
	a.lastAborted = 0
	a.lastLogStats = a.e.logStats()
	a.lastShare = 0
	a.prevCoreCommitted = nil
	a.diffMu.Lock()
	a.diffs = nil
	a.levelChanges = nil
	a.diffMu.Unlock()
	a.monitor.RegisterPlacement(a.e.state.snapshot().placement, a.maxKeys)
}

// start launches the planner goroutine for one run. committed and aborted are
// the run's transaction counters; workers is the run's worker count (the
// granularity scorer's concurrency input).
func (a *adaptiveState) start(committed, aborted *atomic.Int64, workers int) {
	a.committed = committed
	a.aborted = aborted
	a.workers = workers
	a.sync = a.e.tracer != nil && workers == 1
	if a.sync {
		// Traced single-worker run: boundaries are evaluated inline by the
		// worker (deterministic trace), no planner goroutine to stop.
		a.kick = nil
		a.stop = nil
		a.done = nil
		return
	}
	a.kick = make(chan struct{}, 1)
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go a.plannerLoop()
}

// stopPlanner asks the planner goroutine to finish and waits for it. A kick
// pending at stop time is still processed, so short runs whose last boundary
// crossing raced the end of the workload still evaluate it.
func (a *adaptiveState) stopPlanner() {
	if a.stop == nil {
		return
	}
	close(a.stop)
	<-a.done
	a.stop = nil
}

// plannerLoop is the dedicated adaptation goroutine: it blocks until a
// worker reports a monitoring-boundary crossing, then runs the evaluation
// (and possibly a repartitioning) concurrently with regular execution.
func (a *adaptiveState) plannerLoop() {
	defer close(a.done)
	for {
		select {
		case <-a.stop:
			select {
			case <-a.kick:
				a.adaptOnce()
			default:
			}
			return
		case <-a.kick:
			a.adaptOnce()
		}
	}
}

// noteBoundary is the workers' entire obligation to the adaptation pipeline,
// called once per transaction: one atomic load against the next monitoring
// boundary and, at most once per boundary, a non-blocking send to wake the
// planner. The evaluation itself never runs on a worker.
func (a *adaptiveState) noteBoundary() {
	if !a.e.cfg.Adaptive {
		return
	}
	if int64(a.e.virtualNow()) < a.nextCheck.Load() {
		return
	}
	if a.sync {
		a.adaptOnce()
		return
	}
	select {
	case a.kick <- struct{}{}:
		// Hand the host CPU to the planner goroutine so the evaluation starts
		// promptly even when every processor is saturated with workers (e.g.
		// GOMAXPROCS=1). This runs at most once per monitoring boundary.
		runtime.Gosched()
	default:
	}
}

func (a *adaptiveState) recordAction(table string, key schema.Key, cost vclock.Nanos) {
	if !a.e.cfg.Monitoring {
		return
	}
	a.monitor.RecordAction(table, key, cost)
}

func (a *adaptiveState) recordSync(refs []core.PartitionRef, bytes int) {
	if !a.e.cfg.Monitoring {
		return
	}
	a.monitor.RecordSync(refs, bytes)
}

// recordTxn records one executed transaction's shape into the active monitor
// epoch (adaptive-granularity mode): action and write counts, whether it was
// multisite, and its synchronization payload. The counters are plain atomics,
// so the shared-nothing hot path stays lock- and allocation-free; the modeled
// bookkeeping cost is charged to the coordinating core.
func (a *adaptiveState) recordTxn(coord topology.CoreID, t *workload.Transaction) {
	if !a.granularity || !a.e.cfg.Monitoring {
		return
	}
	writes, overwrites := 0, 0
	for i := range t.Actions {
		if !t.Actions[i].Op.IsWrite() {
			continue
		}
		writes++
		// Feed the write-key histogram (hot-key concentration) and count
		// overwrites: a write whose (table, key) an earlier action of the
		// same transaction already wrote. Transactions are a handful of
		// actions, so the quadratic scan stays cheaper than any map — and
		// allocation-free, which the hot path requires.
		a.monitor.RecordWriteKey(uint64(t.Actions[i].Key))
		for j := 0; j < i; j++ {
			if t.Actions[j].Op.IsWrite() &&
				t.Actions[j].Key == t.Actions[i].Key &&
				t.Actions[j].Table == t.Actions[i].Table {
				overwrites++
				break
			}
		}
	}
	bytes := 0
	for i := range t.SyncPoints {
		bytes += t.SyncPoints[i].Bytes
	}
	a.monitor.RecordTxn(len(t.Actions), writes, overwrites, t.MultiSite, bytes)
	a.e.charge(coord, vclock.Management, a.e.cfg.MonitoringCostPerAction)
}

// adaptOnce processes one monitoring boundary: it measures the throughput of
// the interval, consults the interval controller, and when the controller
// asks for an evaluation it runs the two-step search and repartitions if the
// cost model predicts an improvement. It runs on the planner goroutine,
// concurrently with regular execution.
func (a *adaptiveState) adaptOnce() {
	e := a.e
	now := e.virtualNowExact()
	if int64(now) < a.nextCheck.Load() {
		return
	}

	window := now - a.lastCheckAt
	if window <= 0 {
		window = a.controller.Interval()
	}
	committedSoFar := a.committed.Load()
	committedDelta := committedSoFar - a.lastCommitted
	throughput := float64(committedDelta) / window.Seconds()
	a.lastCommitted = committedSoFar
	a.lastCheckAt = now
	a.monitor.AdvanceWindow(window)
	a.recordSample(now, window, throughput, committedSoFar, committedDelta)

	decision := a.controller.Observe(throughput)
	a.nextCheck.Store(int64(now + a.controller.Interval()))
	if a.cooldown > 0 {
		a.cooldown--
		if a.granularity {
			if cur := e.state.snapshot().wiring; cur != nil {
				a.logDecision(now, cur.epoch, cur.level, cur.level, "cooldown", a.lastShare, nil)
			}
		}
		return
	}
	// The parametric shared-nothing design adapts the island granularity
	// instead of the placement: seal the epoch, read the multisite share and
	// re-score the candidate levels every interval (the scorer is cheap and
	// runs on the planner goroutine, never on a worker).
	if a.granularity {
		a.adaptGranularity(now)
		return
	}
	// A change in the hardware topology is always grounds for an evaluation,
	// independent of the throughput history: a partition owned by a core on a
	// failed socket must move, and a liveness-epoch change (a socket failed or
	// came back) means the capacity the placement was derived for no longer
	// matches the machine — restored sockets in particular produce no
	// instability signal of their own, the work simply is not routed there.
	if ep := e.cfg.Topology.Epoch(); ep != a.hwEpoch {
		a.hwEpoch = ep
		decision = core.Evaluate
	}
	if decision != core.Evaluate && a.placementUsesDeadCore() {
		decision = core.Evaluate
	}
	if decision != core.Evaluate {
		return
	}

	// Seal the monitoring epoch: workers keep recording into the flipped
	// buffer while the search below reads the sealed statistics.
	stats := a.monitor.Seal()
	if stats.TotalCost() == 0 {
		return
	}
	snap := e.state.snapshot()
	current := snap.placement
	proposed := a.planner.Plan(current, stats, a.maxKeys)
	if err := proposed.Validate(); err != nil {
		return
	}
	// Never install a placement that routes work to dead hardware.
	if err := proposed.ValidateAlive(e.cfg.Topology); err != nil {
		return
	}
	if !a.improves(current, proposed, stats) {
		return
	}
	diff := partition.Diff(current, proposed)
	if diff.Empty() {
		return
	}
	// Derive the new runtime incrementally: unchanged tables keep their lock
	// tables (and NUMA homes); only moved partitions are rebuilt. The
	// invariant check refuses a runtime that is not equivalent to a fresh
	// build, so a diffing bug degrades to a skipped repartitioning rather
	// than a torn snapshot — which is why it must run before the executor
	// touches the physical tables.
	rt, applied := snap.runtime.ApplyDiff(proposed, diff)
	if err := rt.Validate(proposed); err != nil {
		return
	}
	plan := core.BuildPlan(current, proposed, e.cfg.Topology)
	outcome, err := a.executor.Execute(plan)
	if err != nil {
		return
	}
	// The migration pauses only the cores whose partitions moved (per
	// Section VI-D a repartitioning takes a fraction of a second, not a
	// global stall); everyone else keeps executing.
	affected := diff.AffectedCores()
	for _, c := range affected {
		e.charge(c, vclock.Management, numa.Cost(outcome.Cost))
	}
	if len(affected) > 0 {
		e.noteTime(affected[0])
		a.adaptCharged.Add(int64(outcome.Cost) * int64(len(affected)))
	}
	if tr := e.tracer; tr != nil {
		tr.Planner().Record(obs.Span{Start: now, Dur: outcome.Cost,
			Kind: obs.KindPlannerRepartition, Arg: int64(len(affected))})
	}
	e.state.install(proposed, rt, e.activePartitionsPerCore(proposed, now), snap.wiring)
	// Re-register monitoring arrays only for the tables the plan touched;
	// unchanged tables keep accumulating into their existing arrays.
	for name, td := range diff.Tables {
		if td.Kind != partition.TableUnchanged {
			a.monitor.Register(name, proposed.Tables[name].Bounds, a.maxKeys[name])
		}
	}
	a.controller.Repartitioned()
	a.nextCheck.Store(int64(now + a.controller.Interval()))
	a.cooldown = 2
	a.repartitions.Add(1)
	a.repartitionCost.Add(int64(outcome.Cost))

	a.diffMu.Lock()
	a.diffs = append(a.diffs, RepartitionDiff{
		At:                now,
		ChangedTables:     diff.ChangedTables(),
		UnchangedTables:   diff.UnchangedTables(),
		ReboundTables:     diff.ReboundTables(),
		MovedPartitions:   diff.MovedPartitions(),
		ReusedLockTables:  applied.ReusedManagers,
		RebuiltLockTables: applied.RebuiltManagers,
		AffectedCores:     len(affected),
		Cost:              outcome.Cost,
	})
	a.diffMu.Unlock()
}

// recordSample appends one planner-boundary metrics observation to the
// tracer. It runs on the planner goroutine inside the existing boundary
// pipeline — the per-core committed counters and cumulative log stats it
// reads are the same ones the run's bookkeeping already maintains, so
// enabling the sampler adds no hot-path synchronization.
func (a *adaptiveState) recordSample(now, window vclock.Nanos, throughput float64, committedSoFar, committedDelta int64) {
	e := a.e
	tr := e.tracer
	if tr == nil {
		return
	}
	snap := e.state.snapshot()
	s := obs.Sample{
		At:             now,
		Level:          e.cfg.Design.String(),
		TPS:            throughput,
		Committed:      committedSoFar,
		MultisiteShare: a.lastShare,
	}
	if w := snap.wiring; w != nil {
		s.Epoch = w.epoch
		s.Level = w.level.String()
	}
	if a.aborted != nil {
		abortedSoFar := a.aborted.Load()
		abortedDelta := abortedSoFar - a.lastAborted
		a.lastAborted = abortedSoFar
		s.Aborted = abortedSoFar
		// Conflict rate of the window: aborted attempts (every abort in these
		// engines is a lock conflict) over attempts.
		if attempts := committedDelta + abortedDelta; attempts > 0 {
			s.ConflictRate = float64(abortedDelta) / float64(attempts)
		}
	}
	logNow := e.logStats()
	logDelta := logNow.Sub(a.lastLogStats)
	a.lastLogStats = logNow
	if logDelta.LogicalRecords > 0 {
		// Fraction of the window's logical records the write-combining
		// accumulators folded away before any physical flush.
		s.CoalesceRatio = float64(logDelta.CoalescedRecords) / float64(logDelta.LogicalRecords)
	}
	var backlog vclock.Nanos
	for _, d := range e.deviceList() {
		backlog += d.BacklogAt(now)
	}
	s.DeviceBacklogNs = float64(backlog)
	// Per-island committed TPS from the per-core counters, grouped by the
	// installed wiring's site map (one machine-wide entry without a wiring).
	nCores := len(e.accounts)
	if a.prevCoreCommitted == nil {
		a.prevCoreCommitted = make([]int64, nCores)
	}
	nIslands := 1
	if w := snap.wiring; w != nil && len(w.sites) > 0 {
		nIslands = len(w.sites)
	}
	s.IslandTPS = make([]float64, nIslands)
	for c := 0; c < nCores; c++ {
		cum := e.accounts[c].committed.Load()
		delta := cum - a.prevCoreCommitted[c]
		a.prevCoreCommitted[c] = cum
		site := 0
		if w := snap.wiring; w != nil {
			site = w.siteOf(topology.CoreID(c))
		}
		if site >= 0 && site < nIslands {
			s.IslandTPS[site] += float64(delta)
		}
	}
	if secs := window.Seconds(); secs > 0 {
		for i := range s.IslandTPS {
			s.IslandTPS[i] /= secs
		}
	}
	tr.RecordSample(s)
}

// takeDiffs returns a copy of the per-repartitioning diff records.
func (a *adaptiveState) takeDiffs() []RepartitionDiff {
	a.diffMu.Lock()
	defer a.diffMu.Unlock()
	return append([]RepartitionDiff(nil), a.diffs...)
}

// takeLevelChanges returns a copy of the island-level trajectory.
func (a *adaptiveState) takeLevelChanges() []GranularityChange {
	a.diffMu.Lock()
	defer a.diffMu.Unlock()
	return append([]GranularityChange(nil), a.levelChanges...)
}

// adaptGranularity processes one monitoring boundary of the parametric
// shared-nothing design: it reads the sealed epoch's multisite share, prices
// every island level the machine distinguishes with the granularity scorer,
// and re-wires the machine when a different level beats the current one by
// the hysteresis margin. A wiring that references failed hardware is always
// re-derived, independent of the scores. It runs on the planner goroutine,
// concurrently with regular execution.
func (a *adaptiveState) adaptGranularity(now vclock.Nanos) {
	e := a.e
	tr := e.tracer
	stats := a.monitor.Seal()
	snap := e.state.snapshot()
	cur := snap.wiring
	if cur == nil || !e.cfg.Adaptive {
		return
	}
	if tr != nil {
		tr.Planner().Record(obs.Span{Start: now, Kind: obs.KindPlannerSeal,
			Epoch: uint32(cur.epoch), Arg: stats.Txns})
	}
	// Hardware changed under the wiring: a site homed on a failed socket, a
	// restored socket whose islands the wiring does not cover yet, or an
	// island log flushing through a failed device. Any of these forces a
	// re-wiring at the best level, independent of the scores.
	hardware := wiringStale(cur, e.cfg.Topology) || wiringBindsFailedDevice(cur)
	if stats.Txns == 0 && !hardware {
		a.logDecision(now, cur.epoch, cur.level, cur.level, "idle", a.lastShare, nil)
		return
	}
	shape := core.WorkloadShape{
		MultisiteShare: stats.MultisiteShare(),
		ActionsPerTxn:  stats.ActionsPerTxn(),
		WritesPerTxn:   stats.WritesPerTxn(),
		SyncBytes:      stats.SyncBytesPerMultisiteTxn(),
		HotWriteShare:  stats.HotWriteShare(),
		OverwriteShare: stats.OverwriteShare(),
		TotalKeys:      a.totalKeys,
		Concurrency:    a.workers,
	}
	a.lastShare = shape.MultisiteShare
	best, scores := a.granModel.Best(shape, granTieMargin)
	// The per-term breakdowns explain the decision: they feed the planner
	// decision log and, on a change, the GranularityChange record. Computed on
	// the planner goroutine over a handful of levels, so the cost is noise.
	bds := a.granModel.Breakdowns(shape)
	winner, runnerUp := pickWinnerRunnerUp(bds, best)
	if tr != nil {
		tr.Planner().Record(obs.Span{Start: now, Kind: obs.KindPlannerScore,
			Epoch: uint32(cur.epoch), Arg: int64(len(bds))})
	}
	if hardware {
		// Rebuild at the best level (which may be the current one — the
		// rebuild homes every site on alive hardware and re-homes island logs
		// bound to failed devices either way; reused logs carry their records
		// across the move).
		a.logDecision(now, cur.epoch, cur.level, best, "hardware-rebuild", shape.MultisiteShare, bds)
		a.changeLevel(best, shape.MultisiteShare, now, winner, runnerUp)
		return
	}
	if best == cur.level {
		a.logDecision(now, cur.epoch, cur.level, best, "hold-current", shape.MultisiteShare, bds)
		return
	}
	// Score the current level directly: it may be a structurally redundant
	// level on this machine (e.g. a socket-grained start on a one-socket
	// part) that DistinctLevels — and therefore scores — does not list.
	curScore := a.granModel.Score(cur.level, shape)
	var bestScore float64
	for _, ls := range scores {
		if ls.Level == best {
			bestScore = ls.Score
		}
	}
	// Hysteresis around the measured crossover: switch only when the
	// candidate clearly beats the current level, so the system does not
	// oscillate between near-equivalent granularities while the share
	// hovers at the crossover.
	if curScore <= 0 || bestScore >= (1-granHysteresis)*curScore {
		a.logDecision(now, cur.epoch, cur.level, best, "hysteresis-hold", shape.MultisiteShare, bds)
		return
	}
	a.logDecision(now, cur.epoch, cur.level, best, "change", shape.MultisiteShare, bds)
	a.changeLevel(best, shape.MultisiteShare, now, winner, runnerUp)
}

// pickWinnerRunnerUp selects the breakdown of the winning level and of the
// best-scoring other level (the rejected alternative the decision explains
// itself against).
func pickWinnerRunnerUp(bds []core.LevelBreakdown, best topology.Level) (winner, runnerUp core.LevelBreakdown) {
	first := true
	for _, b := range bds {
		if b.Level == best {
			winner = b
			continue
		}
		if first || b.Total < runnerUp.Total {
			runnerUp = b
			first = false
		}
	}
	return winner, runnerUp
}

// logDecision appends one planner decision (with its per-candidate score
// breakdown) to the tracer's decision log; a no-op without a tracer.
func (a *adaptiveState) logDecision(now vclock.Nanos, epoch uint64, current, best topology.Level, verdict string, share float64, bds []core.LevelBreakdown) {
	tr := a.e.tracer
	if tr == nil {
		return
	}
	d := obs.Decision{
		At:        now,
		Epoch:     epoch,
		Current:   current.String(),
		Best:      best.String(),
		Verdict:   verdict,
		Multisite: share,
	}
	if len(bds) > 0 {
		d.Candidates = make([]obs.LevelScore, 0, len(bds))
		for _, b := range bds {
			d.Candidates = append(d.Candidates, obs.LevelScore{
				Level: b.Level.String(), Total: b.Total, Locality: b.Locality,
				TxnState: b.TxnState, Commit: b.Commit, Conflict: b.Conflict, Comm: b.Comm,
			})
		}
	}
	tr.RecordDecision(d)
}

// changeLevel re-wires the machine to the given island level: it derives the
// per-island placement, migrates only what the cross-level diff names
// (reusing lock tables of partitions whose key range and island home survive
// the re-wiring, and per-island logs of islands whose core sets are
// unchanged), validates the derived runtime against a fresh build, executes
// the physical repartitioning off the hot path, charges the migration cost
// only to the affected cores, and atomically installs the new snapshot with a
// bumped topology epoch. Workers never stall: they keep executing against the
// previous snapshot until the install, and transactions in flight finish on
// the wiring they started with.
func (a *adaptiveState) changeLevel(to topology.Level, share float64, now vclock.Nanos, winner, runnerUp core.LevelBreakdown) {
	e := a.e
	top := e.cfg.Topology
	snap := e.state.snapshot()
	cur := snap.wiring
	if cur == nil {
		return
	}
	desired := partition.PerIsland(top, to, e.wl.TableSpecs())
	if err := desired.Validate(); err != nil {
		return
	}
	if err := desired.ValidateAlive(top); err != nil {
		return
	}
	// The storage half of the liveness invariant: refuse a wiring that could
	// only bind an island log to a failed device. AliveDeviceFor re-homes
	// around individual failures, so this only fires when no alive device is
	// reachable at all.
	if err := desired.ValidateAliveDevices(top, e.devices); err != nil {
		return
	}
	diff := partition.Diff(snap.placement, desired)
	rt, applied := snap.runtime.ApplyDiff(desired, diff)
	// The incremental runtime must be indistinguishable from a fresh build: a
	// diffing bug degrades to a skipped re-wiring, never a torn snapshot.
	if err := rt.Validate(desired); err != nil {
		return
	}
	// Drain the write-combining accumulators before deriving the new log set:
	// reused island logs carry their rings (and possibly a new device binding)
	// across the move, and a buffered net delta must not straddle the
	// re-wiring — the old wiring's commits become durable on the old wiring's
	// devices before any log changes hands.
	if cur.logs != nil {
		cur.logs.Drain(now)
	}
	wiring := e.buildWiring(to, cur.epoch+1, cur)
	if len(wiring.sites) == 0 {
		return
	}
	// A liveness change between deriving the placement and the wiring would
	// make site indices disagree with partition indices; skip and let the
	// next boundary retry against the settled topology. Every bail-out must
	// happen before the executor touches the physical tables — once it runs,
	// the new snapshot is installed unconditionally, so workers can never be
	// left holding a placement whose boundaries no longer match the trees.
	if tp, ok := desired.Table(desired.TableNames()[0]); ok && len(tp.Cores) != len(wiring.sites) {
		return
	}
	plan := core.BuildPlan(snap.placement, desired, top)
	outcome, err := a.executor.Execute(plan)
	if err != nil {
		return
	}
	// The migration pauses only the cores whose partitions the re-wiring
	// touched; a die island surviving a die-to-socket merge (or any island
	// whose partitions diff unchanged) keeps working and keeps its structures.
	affected := diff.AffectedCores()
	for _, c := range affected {
		e.charge(c, vclock.Management, numa.Cost(outcome.Cost))
	}
	if len(affected) > 0 {
		e.noteTime(affected[0])
		a.adaptCharged.Add(int64(outcome.Cost) * int64(len(affected)))
	}
	if tr := e.tracer; tr != nil {
		tr.Planner().Record(obs.Span{Start: now, Dur: outcome.Cost,
			Kind: obs.KindPlannerRewire, Epoch: uint32(wiring.epoch), Arg: int64(len(affected))})
	}
	e.absorbRetiredLogs(wiring)
	e.state.install(desired, rt, e.activePartitionsPerCore(desired, now), wiring)
	// The executed backend's shard layout follows the wiring: compact the live
	// entries into one shard and value log per island of the new level, routed
	// by the placement just installed. No-op on the priced path.
	e.reshardBackend(desired, wiring)
	for name, td := range diff.Tables {
		if td.Kind != partition.TableUnchanged {
			a.monitor.Register(name, desired.Tables[name].Bounds, a.maxKeys[name])
		}
	}
	a.controller.Repartitioned()
	a.nextCheck.Store(int64(now + a.controller.Interval()))
	a.cooldown = 2
	a.repartitions.Add(1)
	a.repartitionCost.Add(int64(outcome.Cost))

	a.diffMu.Lock()
	a.levelChanges = append(a.levelChanges, GranularityChange{
		At:                now,
		From:              cur.level,
		To:                to,
		MultisiteShare:    share,
		Cost:              outcome.Cost,
		AffectedCores:     len(affected),
		ReusedLogs:        wiring.reusedLogs,
		RebuiltLogs:       wiring.rebuiltLogs,
		ReboundDevices:    wiring.reboundDevices,
		ReusedLockTables:  applied.ReusedManagers,
		RebuiltLockTables: applied.RebuiltManagers,
		WinnerScores:      winner,
		RunnerUpScores:    runnerUp,
	})
	a.diffMu.Unlock()
}

// wiringStale reports whether the installed wiring no longer matches the
// machine's alive islands at its own level: a site homed on a failed socket,
// an island whose alive member set changed, or an alive island the wiring
// does not cover (a restored socket waiting to be re-expanded onto). It is
// the compute half of the granularity planner's hardware-change trigger.
func wiringStale(w *islandWiring, top *topology.Topology) bool {
	islands := top.AliveIslandsAt(w.level)
	if len(islands) != len(w.siteCores) {
		return true
	}
	for i, isl := range islands {
		if !sameCores(isl.Cores, w.siteCores[i]) {
			return true
		}
	}
	return false
}

// wiringBindsFailedDevice reports whether any island log of the wiring
// flushes through a failed device — the storage half of the hardware-change
// trigger.
func wiringBindsFailedDevice(w *islandWiring) bool {
	if w.logs == nil {
		return false
	}
	for i := 0; i < w.logs.NumLogs(); i++ {
		if d := w.logs.Log(i).Device(); d != nil && d.Failed() {
			return true
		}
	}
	return false
}

// placementUsesDeadCore reports whether any partition is owned by a core on a
// failed socket, which ATraPos treats as a hardware-topology change.
func (a *adaptiveState) placementUsesDeadCore() bool {
	return usesDeadCore(a.e.state.snapshot().placement, a.e.cfg.Topology)
}

func usesDeadCore(p *partition.Placement, top *topology.Topology) bool {
	for _, tp := range p.Tables {
		for _, c := range tp.Cores {
			if !top.Alive(top.SocketOf(c)) {
				return true
			}
		}
	}
	return false
}

// improves applies the cost model to decide whether the proposed placement is
// worth the repartitioning pause: the combined balance + synchronization
// score must drop by at least 5%.
func (a *adaptiveState) improves(current, proposed *partition.Placement, stats *core.Stats) bool {
	// Moving off a failed socket is always worth the pause.
	if a.placementUsesDeadCore() && !usesDeadCore(proposed, a.e.cfg.Topology) {
		return true
	}
	model := a.planner.Model
	weight := float64(a.e.domain.Model.ByteTransferPerHop)
	curScore := model.ResourceUtilization(current, stats) + weight*model.TransactionSync(current, stats)
	newScore := model.ResourceUtilization(proposed, stats) + weight*model.TransactionSync(proposed, stats)
	if curScore <= 0 {
		return false
	}
	return newScore < 0.95*curScore
}
