package engine

import (
	"testing"

	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

// deviceEngine builds a shared-nothing engine with a device layout on the
// chiplet machine.
func deviceEngine(t *testing.T, layout string, level topology.Level) *Engine {
	t.Helper()
	prof, ok := topology.ProfileByName("chiplet-2s4d")
	if !ok {
		t.Fatal("chiplet-2s4d missing")
	}
	e, err := New(Config{
		Design:       SharedNothing,
		IslandLevel:  level,
		Workload:     workload.MultisiteUpdate(2000, 0),
		Topology:     prof.Build(),
		DeviceLayout: layout,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestWiringBindsIslandDevices asserts every island log is bound to the
// device serving the island's home die.
func TestWiringBindsIslandDevices(t *testing.T) {
	for _, level := range []topology.Level{topology.LevelCore, topology.LevelDie, topology.LevelSocket, topology.LevelMachine} {
		e := deviceEngine(t, "nvme-per-socket", level)
		w := e.state.snapshot().wiring
		if w == nil {
			t.Fatalf("%v: no wiring", level)
		}
		top := e.cfg.Topology
		for i, site := range w.sites {
			want := e.devices.DeviceFor(top.DieOf(site.ID))
			if got := w.logs.Log(i).Device(); got != want {
				t.Errorf("%v island %d: log bound to %v, want %v", level, i, got, want)
			}
		}
	}
}

// TestDeviceLayoutChargesQueueing asserts the device model actually reaches
// the commit path: a run with a single serialized device must record flushes
// and queue waits, and cost more virtual time than the same run with one
// NVMe per socket.
func TestDeviceLayoutChargesQueueing(t *testing.T) {
	run := func(layout string) (vt int64, flushes, queued int64) {
		e := deviceEngine(t, layout, topology.LevelCore)
		res, err := e.Run(RunOptions{Transactions: 400, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		st := e.Devices().Stats()
		return int64(res.VirtualTime), st.Flushes, st.Queued
	}
	vtNVMe, flushesNVMe, _ := run("nvme-per-socket")
	vtSATA, flushesSATA, queuedSATA := run("single-sata")
	if flushesNVMe == 0 || flushesSATA == 0 {
		t.Fatalf("no device flushes recorded: nvme %d, sata %d", flushesNVMe, flushesSATA)
	}
	if queuedSATA == 0 {
		t.Error("a single queue-depth-1 device under 32 core islands should see queued flushes")
	}
	if vtSATA <= vtNVMe {
		t.Errorf("single SATA run (%d ns) should cost more virtual time than per-socket NVMe (%d ns)", vtSATA, vtNVMe)
	}
}

// TestUnknownDeviceLayoutRejected asserts a typo surfaces at construction.
func TestUnknownDeviceLayoutRejected(t *testing.T) {
	_, err := New(Config{
		Design:       SharedNothing,
		Workload:     workload.MultisiteUpdate(2000, 0),
		Topology:     topology.Small(),
		DeviceLayout: "punch-cards",
	})
	if err == nil {
		t.Fatal("unknown device layout should fail engine construction")
	}
}

// TestLevelChangeReusesDeviceBindings asserts a re-wiring resolves island
// devices against the same engine-lifetime map: islands whose core sets
// survive keep both their log and its binding (no rebinds), and rebuilt
// islands land on the device of their home die.
func TestLevelChangeReusesDeviceBindings(t *testing.T) {
	// On the one-socket consumer part the socket and machine islands have the
	// same core set, so the socket->machine re-wiring reuses the log.
	prof, _ := topology.ProfileByName("consumer-1s4d")
	e, err := New(Config{
		Design:       SharedNothing,
		IslandLevel:  topology.LevelSocket,
		Workload:     workload.MultisiteUpdate(2000, 0),
		Topology:     prof.Build(),
		DeviceLayout: "nvme-per-die-pair",
	})
	if err != nil {
		t.Fatal(err)
	}
	w1 := e.state.snapshot().wiring
	w2 := e.buildWiring(topology.LevelMachine, 1, w1)
	if w2.reusedLogs != 1 || w2.rebuiltLogs != 0 {
		t.Fatalf("socket->machine on a one-socket part should reuse the log: reused %d, rebuilt %d",
			w2.reusedLogs, w2.rebuiltLogs)
	}
	if w2.reboundDevices != 0 {
		t.Errorf("binding unchanged, yet %d logs were rebound", w2.reboundDevices)
	}
	if w2.logs.Log(0) != w1.logs.Log(0) || w2.logs.Log(0).Device() != w1.logs.Log(0).Device() {
		t.Error("reused log should keep its identity and device binding")
	}

	// A die->socket merge on the chiplet machine rebuilds every log; each
	// fresh log must bind to its home die's device.
	ec := deviceEngine(t, "nvme-per-socket", topology.LevelDie)
	wd := ec.state.snapshot().wiring
	ws := ec.buildWiring(topology.LevelSocket, 1, wd)
	if ws.reusedLogs != 0 {
		t.Fatalf("die->socket on the chiplet machine should rebuild all logs, reused %d", ws.reusedLogs)
	}
	top := ec.cfg.Topology
	for i, site := range ws.sites {
		if ws.logs.Log(i).Device() != ec.devices.DeviceFor(top.DieOf(site.ID)) {
			t.Errorf("rebuilt island %d bound to the wrong device", i)
		}
	}
}

// mapStore is an in-memory RowStore for replay checks.
type mapStore map[schema.Key]schema.Row

func (m mapStore) ApplyInsert(key schema.Key, row schema.Row) { m[key] = row }
func (m mapStore) ApplyDelete(key schema.Key)                 { delete(m, key) }

// TestRecoveryAcrossLevelChange asserts records appended before an online
// re-wiring replay correctly from the new wiring's per-island logs: the
// socket->machine change on the one-socket part carries the island log (and
// its device binding) over, so a post-change recovery still sees the
// pre-change updates.
func TestRecoveryAcrossLevelChange(t *testing.T) {
	prof, _ := topology.ProfileByName("consumer-1s4d")
	wl := workload.MultisiteUpdate(2000, 0)
	e, err := New(Config{
		Design:       SharedNothing,
		IslandLevel:  topology.LevelSocket,
		Workload:     wl,
		Topology:     prof.Build(),
		DeviceLayout: "single-sata",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(RunOptions{Transactions: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no transactions committed before the re-wire")
	}
	w1 := e.state.snapshot().wiring
	preTail := w1.logs.Tail()
	if preTail == 0 {
		t.Fatal("no records appended before the re-wire")
	}

	// Re-wire to machine granularity; the single island's core set is
	// unchanged, so the log with every pre-change record is carried over.
	w2 := e.buildWiring(topology.LevelMachine, 1, w1)
	if w2.reusedLogs != 1 {
		t.Fatalf("re-wire should reuse the island log, reused %d", w2.reusedLogs)
	}

	// Replay every island log of the new wiring into fresh stores.
	stores := make(map[string]wal.RowStore)
	updated := make(map[string]mapStore)
	for _, spec := range wl.TableSpecs() {
		ms := make(mapStore)
		stores[spec.Name] = ms
		updated[spec.Name] = ms
	}
	var redone int
	for i := 0; i < w2.logs.NumLogs(); i++ {
		lg := w2.logs.Log(i)
		stats, err := wal.Recover(lg.Records(), lg.Durable(), false, stores)
		if err != nil {
			t.Fatal(err)
		}
		redone += stats.Redone
	}
	if redone == 0 {
		t.Fatal("recovery from the post-change logs redid nothing")
	}
	// Every update record of a committed transaction must be present in the
	// replayed store.
	for _, rec := range w2.logs.Log(0).Records() {
		if rec.Type != wal.Update {
			continue
		}
		ms, ok := updated[rec.Table]
		if !ok {
			continue
		}
		if _, ok := ms[rec.Key]; !ok {
			t.Fatalf("update record for %s/%v from before the re-wire did not replay", rec.Table, rec.Key)
		}
	}
}
