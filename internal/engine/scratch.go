package engine

import (
	"atrapos/internal/core"
	"atrapos/internal/lock"
	"atrapos/internal/obs"
	"atrapos/internal/topology"
	"atrapos/internal/txn"
	"atrapos/internal/workload"
)

// execScratch is the per-worker reusable state of the transaction hot path.
// Every buffer is reset with a re-slice to length zero and keeps its backing
// array, so after the first few transactions the steady-state execution of a
// transaction performs no heap allocations at all. One scratch is owned by
// exactly one worker goroutine and is threaded through all three design paths
// (centralized, shared-nothing, partitioned).
type execScratch struct {
	// snap is the partitioning snapshot taken once per transaction; dispatch
	// and execution read the same snapshot so a concurrent repartitioning can
	// never split a transaction across two placements.
	snap *stateSnapshot

	// txn is the reusable transaction object filled by Manager.BeginInto.
	txn txn.Txn

	// owners records, per action index, the partition that executed it.
	owners []lockedPartition
	// locked records every partition whose local lock table holds locks on
	// behalf of the running transaction (possibly with duplicates).
	locked []lockedPartition

	// tableModes collects the table-level intention modes of the centralized
	// path; transactions touch at most ~10 distinct tables, so a linear scan
	// beats a map and allocates nothing.
	tableModes []tableMode

	// syncCores/syncRefs are the per-synchronization-point participant
	// buffers of the partitioned path; participants are tracked as executing
	// cores so the rendezvous cost can distinguish die and socket crossings.
	syncCores []topology.CoreID
	syncRefs  []core.PartitionRef

	// participants/remoteCores are the distinct 2PC participant instances
	// (site indices) and remote executor cores of the shared-nothing path.
	participants []int
	remoteCores  []topology.CoreID

	// ring is the worker's span ring for the transaction in flight (nil with
	// tracing off); worker, site and epoch stamp its spans. The run loop sets
	// them per transaction from the snapshot it took.
	ring   *obs.Ring
	worker int32
	site   int32
	epoch  uint32
}

type tableMode struct {
	table string
	mode  lock.Mode
}

// newExecScratch returns a scratch with capacity for a typical transaction;
// larger transactions grow the buffers once and then reuse them.
func newExecScratch() *execScratch {
	return &execScratch{
		owners:       make([]lockedPartition, 0, 32),
		locked:       make([]lockedPartition, 0, 32),
		tableModes:   make([]tableMode, 0, 8),
		syncCores:    make([]topology.CoreID, 0, 16),
		syncRefs:     make([]core.PartitionRef, 0, 16),
		participants: make([]int, 0, 8),
		remoteCores:  make([]topology.CoreID, 0, 8),
	}
}

// reset prepares the scratch for one transaction attempt.
func (sc *execScratch) reset() {
	sc.owners = sc.owners[:0]
	sc.locked = sc.locked[:0]
	sc.tableModes = sc.tableModes[:0]
	sc.participants = sc.participants[:0]
	sc.remoteCores = sc.remoteCores[:0]
}

// upsertTableMode records the strongest intention mode seen for a table.
func (sc *execScratch) upsertTableMode(table string, mode lock.Mode) {
	for i := range sc.tableModes {
		if sc.tableModes[i].table == table {
			if mode == lock.IX && sc.tableModes[i].mode == lock.IS {
				sc.tableModes[i].mode = lock.IX
			}
			return
		}
	}
	sc.tableModes = append(sc.tableModes, tableMode{table: table, mode: mode})
}

// addParticipant records a distinct 2PC participant instance (site index).
func (sc *execScratch) addParticipant(site int) {
	for _, p := range sc.participants {
		if p == site {
			return
		}
	}
	sc.participants = append(sc.participants, site)
}

// addRemoteCore records a distinct remote executor core.
func (sc *execScratch) addRemoteCore(c topology.CoreID) {
	for _, r := range sc.remoteCores {
		if r == c {
			return
		}
	}
	sc.remoteCores = append(sc.remoteCores, c)
}

// dominantAction returns the first action of the table that appears most
// often in the transaction; the transaction is dispatched to that action's
// partition owner so the largest share of its work stays thread-local.
// Ties go to the table that appears first, as before; the count map of the
// previous implementation is replaced by linear scans over the (short) action
// list so dispatch allocates nothing.
func dominantAction(t *workload.Transaction) (workload.Action, bool) {
	if len(t.Actions) == 0 {
		return workload.Action{}, false
	}
	bestTable := t.Actions[0].Table
	best := 0
	for i := range t.Actions {
		table := t.Actions[i].Table
		seen := false
		for j := 0; j < i; j++ {
			if t.Actions[j].Table == table {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		count := 0
		for j := i; j < len(t.Actions); j++ {
			if t.Actions[j].Table == table {
				count++
			}
		}
		if count > best {
			best = count
			bestTable = table
		}
		if best > len(t.Actions)/2 {
			break // absolute majority: no other table can beat it
		}
	}
	for i := range t.Actions {
		if t.Actions[i].Table == bestTable {
			return t.Actions[i], true
		}
	}
	return t.Actions[0], true
}
