package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"atrapos/internal/backend"
	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
	"atrapos/internal/workload"
)

// buildHashBackend constructs the executed storage engine from the installed
// island wiring: one shard, one value log and (at run time) one pinned
// executor per island, laid out exactly as the wiring prescribes.
func (e *Engine) buildHashBackend() error {
	w := e.state.snapshot().wiring
	if w == nil {
		return fmt.Errorf("engine: hash backend needs an island wiring")
	}
	names := make([]string, len(e.wl.Tables))
	for i, td := range e.wl.Tables {
		names[i] = td.Schema.Name
	}
	b, err := backend.NewHash(backend.HashConfig{
		Islands: len(w.sites),
		Tables:  names,
		Homes:   wiringHomes(w),
		Log:     *e.cfg.LogConfig,
		Domain:  e.domain,
	})
	if err != nil {
		return err
	}
	e.hash = b
	return nil
}

// HashBackend returns the executed storage engine, or nil on the priced path.
func (e *Engine) HashBackend() *backend.HashBackend { return e.hash }

// wiringHomes extracts the per-island home sockets of a wiring.
func wiringHomes(w *islandWiring) []topology.SocketID {
	homes := make([]topology.SocketID, len(w.sites))
	for i, s := range w.sites {
		homes[i] = s.Socket
	}
	return homes
}

// reshardBackend rebuilds the hash backend's shard layout for a freshly
// installed placement and wiring — the storage half of an online granularity
// change, called by the planner right after the new snapshot is installed.
// Live entries are compacted into the new island value logs; routing follows
// the new placement exactly like the executed run loop does, so a key's shard
// after the re-shard is the shard the next transaction will look for it on.
// No-op on the priced path.
func (e *Engine) reshardBackend(p *partition.Placement, w *islandWiring) {
	if e.hash == nil || w == nil {
		return
	}
	tps := make([]*partition.TablePlacement, len(e.wl.Tables))
	for i, td := range e.wl.Tables {
		tps[i], _ = p.Table(td.Schema.Name)
	}
	e.hash.Reshard(len(w.sites), wiringHomes(w), func(table int, key schema.Key) int {
		tp := tps[table]
		if tp == nil {
			return -1
		}
		return w.siteOf(tp.CoreFor(key))
	})
}

// loadBackend resets the hash backend and bulk-loads it from the priced
// tables' current keysets, routed through the snapshot's placement the same
// way the run loop routes actions, so both modes start every run from the
// same logical database. Values are synthesized from the key (the executed
// engine stores opaque fixed-width values; the experiments compare keysets
// and timings, not payloads).
func (e *Engine) loadBackend(snap *stateSnapshot) error {
	if e.hash == nil {
		return fmt.Errorf("engine: no hash backend configured")
	}
	w := snap.wiring
	if w == nil {
		return fmt.Errorf("engine: executed run needs an island wiring")
	}
	e.hash.Reset()
	for ti, td := range e.wl.Tables {
		tp, ok := snap.placement.Table(td.Schema.Name)
		if !ok {
			return fmt.Errorf("engine: placement is missing table %s", td.Schema.Name)
		}
		tbl := e.tables[td.Schema.Name]
		tbl.Scan(0, 0, ^schema.Key(0), func(k schema.Key, _ schema.Row) bool {
			e.hash.Load(w.siteOf(tp.CoreFor(k)), ti, k, uint64(k))
			return true
		})
	}
	e.hash.FinishLoad(0)
	return nil
}

// ExecutedResult summarizes one executed-mode run: real operations on the
// sharded hash engine, timed in wall nanoseconds.
type ExecutedResult struct {
	Workload  string
	Committed int64
	// WallNS is the wall-clock duration of the run, executor launch to last
	// join.
	WallNS int64
	// MeasuredKTPS is Committed / wall seconds / 1000.
	MeasuredKTPS float64
	IslandLevel  string
	Shards       int
	Executors    int
	// Components is the measured wall time attributed to the cost model's
	// components, summed over executors: Execution holds local index and
	// value-log op time, Logging the commit/group-commit time, Communication
	// the cross-island ship waits plus serve time, Management the residual
	// (generation, routing, scheduling). Locking is structurally zero: shards
	// are single-owner, the design needs no locks.
	Components [vclock.NumComponents]int64
	// Log is the island value logs' activity for this run.
	Log wal.Stats
}

// execScratchX is the per-executor reusable state of the executed run loop;
// like the priced path's execScratch, everything the steady-state loop needs
// lives here so the loop body allocates nothing.
type execScratchX struct {
	src   splitMix
	ctx   workload.GenContext
	parts []int32
	in    []bool
	opNs  int64
	logNs int64
}

// RunExecuted executes the workload on the hash backend with one
// OS-thread-pinned executor per island and returns measured wall-time
// results. The transaction stream is the same deterministic stream the priced
// Run generates (same seed → same transactions); transaction n is executed by
// executor n % islands, so the assignment is scheduler-independent too. Only
// wall times vary between repeats — committed counts and final keysets do
// not. Transactions never abort (single-owner shards conflict-free by
// construction), so Committed always equals the transaction count.
func (e *Engine) RunExecuted(opts RunOptions) (*ExecutedResult, error) {
	if e.hash == nil {
		return nil, fmt.Errorf("engine: RunExecuted needs Config.Backend = backend.Hash")
	}
	if opts.Transactions <= 0 {
		return nil, fmt.Errorf("engine: executed run needs a transaction count")
	}
	snap := e.state.snapshot()
	if snap.wiring == nil {
		return nil, fmt.Errorf("engine: executed run needs an island wiring")
	}
	if err := e.loadBackend(snap); err != nil {
		return nil, err
	}
	w := snap.wiring
	islands := e.hash.Islands()
	logStart := e.hash.Stats()

	// Per-table placements resolved once so the per-action path is an array
	// index, not a map lookup.
	tps := make([]*partition.TablePlacement, len(e.wl.Tables))
	tableIdx := make(map[string]int, len(e.wl.Tables))
	for i, td := range e.wl.Tables {
		tps[i], _ = snap.placement.Table(td.Schema.Name)
		tableIdx[td.Schema.Name] = i
	}

	execs := backend.NewExecutors(e.hash)
	if e.tracer != nil {
		// Executed-path spans carry wall time, recorded on the island rings'
		// executor; set before any executor goroutine starts serving.
		for i := range execs {
			execs[i].SetTrace(e.tracer.Island(i))
		}
	}
	scratch := make([]execScratchX, islands)
	for i := range scratch {
		scratch[i].ctx = workload.GenContext{Rng: rand.New(&scratch[i].src)}
		scratch[i].parts = make([]int32, 0, islands)
		scratch[i].in = make([]bool, islands)
	}

	stop := make(chan struct{})
	var wgWork, wgAll sync.WaitGroup
	start := time.Now()
	for i := range execs {
		wgWork.Add(1)
		wgAll.Add(1)
		go func(ex *backend.Executor, sc *execScratchX) {
			defer wgAll.Done()
			ex.Pin(func() {
				e.executedWorker(ex, sc, opts, w, tps, tableIdx, start)
				wgWork.Done()
				// Serve slower peers until every executor's work loop is done;
				// no ship can be in flight after that (ships complete
				// synchronously), so closing stop is race-free.
				ex.Serve(stop)
			})
		}(execs[i], &scratch[i])
	}
	wgWork.Wait()
	close(stop)
	wgAll.Wait()
	wall := time.Since(start).Nanoseconds()
	e.hash.Drain(vclock.Nanos(wall))

	res := &ExecutedResult{
		Workload:    e.wl.Name,
		Committed:   int64(opts.Transactions),
		WallNS:      wall,
		IslandLevel: w.level.String(),
		Shards:      e.hash.Shards(),
		Executors:   islands,
		Log:         e.hash.Stats().Sub(logStart),
	}
	if wall > 0 {
		res.MeasuredKTPS = float64(res.Committed) / (float64(wall) / 1e9) / 1000
	}
	for i := range execs {
		st := execs[i].Stats
		sc := &scratch[i]
		res.Components[vclock.Execution] += sc.opNs
		res.Components[vclock.Logging] += sc.logNs
		res.Components[vclock.Communication] += st.ShipNs + st.ServeNs
		residual := wall - sc.opNs - sc.logNs - st.ShipNs - st.ServeNs
		if residual > 0 {
			res.Components[vclock.Management] += residual
		}
	}
	return res, nil
}

// executedWorker is one executor's work loop: it owns transactions n with
// n % islands == executor id, generates them from the same per-index seeds
// the priced loop uses, routes every action through the placement to its
// island, executes locally or ships to the owner, and commits with the
// value-log group-commit — shipping the commit record to each remote
// participant, the executed analogue of the 2PC decision round.
func (e *Engine) executedWorker(ex *backend.Executor, sc *execScratchX, opts RunOptions,
	w *islandWiring, tps []*partition.TablePlacement, tableIdx map[string]int, start time.Time) {
	islands := e.hash.Islands()
	id := ex.ID()
	sc.ctx.NumSites = islands
	sc.ctx.HomeSite = id
	for n := int64(1); n <= int64(opts.Transactions); n++ {
		if int(n%int64(islands)) != id {
			continue
		}
		ex.Poll()
		nowNs := time.Since(start).Nanoseconds()
		sc.src.seed(opts.Seed + n)
		sc.ctx.At = vclock.Nanos(nowNs)
		t := e.wl.Generate(&sc.ctx)
		txnID := uint64(n)
		sc.parts = sc.parts[:0]
		for ai := range t.Actions {
			a := &t.Actions[ai]
			ti := tableIdx[a.Table]
			tp := tps[ti]
			if tp == nil {
				continue
			}
			shard := w.siteOf(tp.CoreFor(a.Key))
			local := shard == id
			t0 := time.Now()
			switch a.Op {
			case workload.Read:
				ex.Get(shard, ti, a.Key)
			case workload.Update:
				v, _ := ex.Get(shard, ti, a.Key)
				ex.Put(shard, ti, a.Key, txnID, v+1)
			case workload.Insert:
				ex.Put(shard, ti, a.Key, txnID, uint64(a.Key))
			case workload.Delete:
				ex.Delete(shard, ti, a.Key, txnID)
			}
			if local {
				sc.opNs += time.Since(t0).Nanoseconds()
			}
			// Ship time is accounted inside the executor (ShipNs).
			if a.Op.IsWrite() && shard != id && !sc.in[shard] {
				sc.in[shard] = true
				sc.parts = append(sc.parts, int32(shard))
			}
		}
		// Commit: the home island's record always, then the decision shipped
		// to every remote write participant.
		nowNs = time.Since(start).Nanoseconds()
		t0 := time.Now()
		ex.CommitLocal(txnID, nowNs)
		sc.logNs += time.Since(t0).Nanoseconds()
		for _, p := range sc.parts {
			ex.CommitRemote(int(p), txnID, nowNs)
			sc.in[p] = false
		}
	}
}
