package engine

import (
	"testing"
	"time"

	"atrapos/internal/core"
	"atrapos/internal/numa"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/workload"
)

// smallTopology keeps engine tests fast: 4 sockets of 4 cores.
func smallTopology() *topology.Topology {
	return topology.MustNew(topology.Config{Sockets: 4, CoresPerSocket: 4})
}

func runDesign(t *testing.T, design Design, wl *workload.Workload, txns int) *Result {
	t.Helper()
	e, err := New(Config{Design: design, Workload: wl, Topology: smallTopology()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(RunOptions{Transactions: txns, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDesignString(t *testing.T) {
	if len(Designs()) != 6 {
		t.Fatalf("Designs() = %v", Designs())
	}
	for _, d := range append(Designs(), Design(99)) {
		if d.String() == "" {
			t.Errorf("design %d has empty string", d)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Design: Centralized}); err == nil {
		t.Error("missing workload should fail")
	}
	if _, err := New(Config{Design: Design(42), Workload: workload.SingleRowRead(100), Topology: smallTopology()}); err == nil {
		t.Error("unknown design should fail")
	}
	e := MustNew(Config{Design: ATraPos, Workload: workload.SingleRowRead(100), Topology: smallTopology(), SkipLoad: true})
	if _, err := e.Run(RunOptions{}); err == nil {
		t.Error("run without a limit should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad config")
		}
	}()
	MustNew(Config{})
}

func TestEngineConstructionLoadsData(t *testing.T) {
	wl := workload.SingleRowRead(2000)
	for _, d := range Designs() {
		e, err := New(Config{Design: d, Workload: wl, Topology: smallTopology()})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		tbl, err := e.Store().Table("mbr")
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if tbl.Len() != 2000 {
			t.Errorf("%v: loaded %d rows", d, tbl.Len())
		}
		if e.Design() != d || e.Domain() == nil || e.Topology() == nil {
			t.Errorf("%v: accessor mismatch", d)
		}
		p := e.Placement()
		if err := p.Validate(); err != nil {
			t.Errorf("%v: invalid placement: %v", d, err)
		}
		switch d {
		case Centralized:
			if p.Tables["mbr"].NumPartitions() != 1 {
				t.Errorf("centralized should have 1 partition, got %d", p.Tables["mbr"].NumPartitions())
			}
		case SharedNothingExtreme, PLP, HWAware, ATraPos:
			if p.Tables["mbr"].NumPartitions() != 16 {
				t.Errorf("%v should have one partition per core, got %d", d, p.Tables["mbr"].NumPartitions())
			}
		case SharedNothingCoarse:
			if p.Tables["mbr"].NumPartitions() != 4 {
				t.Errorf("coarse SN should have one partition per socket, got %d", p.Tables["mbr"].NumPartitions())
			}
		}
	}
}

func TestAllDesignsCommitReadOnlyWorkload(t *testing.T) {
	wl := workload.SingleRowRead(4000)
	for _, d := range Designs() {
		res := runDesign(t, d, wl, 600)
		if res.Committed+res.Aborted != 600 {
			t.Errorf("%v: committed %d aborted %d", d, res.Committed, res.Aborted)
		}
		if res.Committed < 590 {
			t.Errorf("%v: too many aborts on a read-only workload: %d", d, res.Aborted)
		}
		if res.ThroughputTPS <= 0 || res.VirtualTime <= 0 {
			t.Errorf("%v: empty result %+v", d, res)
		}
		if res.UsefulFraction <= 0 || res.UsefulFraction > 1 {
			t.Errorf("%v: useful fraction %f", d, res.UsefulFraction)
		}
		if res.Breakdown.ByComp[vclock.Execution] <= 0 {
			t.Errorf("%v: no execution time recorded", d)
		}
	}
}

func TestAllDesignsCommitUpdateWorkload(t *testing.T) {
	wl := workload.MultisiteUpdate(4000, 20)
	for _, d := range Designs() {
		res := runDesign(t, d, wl, 400)
		if res.Committed < 350 {
			t.Errorf("%v: committed only %d of 400", d, res.Committed)
		}
		if res.Breakdown.ByComp[vclock.Logging] <= 0 {
			t.Errorf("%v: update workload recorded no logging time", d)
		}
		if res.TimePerTransaction(vclock.Execution) <= 0 {
			t.Errorf("%v: no per-transaction execution time", d)
		}
	}
}

func TestTATPRunsOnAllDesigns(t *testing.T) {
	wl := workload.MustTATP(workload.TATPOptions{Subscribers: 2000})
	for _, d := range Designs() {
		res := runDesign(t, d, wl, 400)
		if res.Committed < 380 {
			t.Errorf("%v: committed %d of 400 TATP transactions", d, res.Committed)
		}
	}
}

func TestTPCCRunsOnPartitionedDesigns(t *testing.T) {
	wl := workload.MustTPCC(workload.TPCCOptions{Warehouses: 8, CustomersPerDistrict: 30, Items: 1000})
	for _, d := range []Design{Centralized, PLP, ATraPos} {
		res := runDesign(t, d, wl, 200)
		// TPC-C at a small scale factor has genuine contention on the
		// Warehouse and District rows, so some aborts are expected even with
		// retries.
		if res.Committed < 150 {
			t.Errorf("%v: committed %d of 200 TPC-C transactions", d, res.Committed)
		}
		if res.Committed+res.Aborted != 200 {
			t.Errorf("%v: committed %d + aborted %d != 200", d, res.Committed, res.Aborted)
		}
	}
}

func TestPartitionableScalingShape(t *testing.T) {
	// The core result of Figures 2 and 5: on a perfectly partitionable
	// read-only workload over the whole machine, the centralized design loses
	// to extreme shared-nothing and to ATraPos, while ATraPos tracks the
	// shared-nothing configurations.
	wl := workload.SingleRowRead(8000)
	throughput := func(d Design) float64 {
		res := runDesign(t, d, wl, 1200)
		return res.ThroughputTPS
	}
	central := throughput(Centralized)
	extreme := throughput(SharedNothingExtreme)
	atrapos := throughput(ATraPos)
	plp := throughput(PLP)
	if extreme <= central {
		t.Errorf("extreme shared-nothing (%f) should beat centralized (%f)", extreme, central)
	}
	if atrapos <= central {
		t.Errorf("ATraPos (%f) should beat centralized (%f)", atrapos, central)
	}
	if atrapos <= plp*1.05 {
		t.Errorf("ATraPos (%f) should beat PLP (%f) on the partitionable workload", atrapos, plp)
	}
	// ATraPos stays within a reasonable factor of extreme shared-nothing.
	if atrapos < extreme/2 {
		t.Errorf("ATraPos (%f) should be in the same league as extreme shared-nothing (%f)", atrapos, extreme)
	}
}

func TestMultisiteTransactionsHurtSharedNothing(t *testing.T) {
	throughput := func(pct int) float64 {
		wl := workload.MultisiteUpdate(8000, pct)
		e := MustNew(Config{Design: SharedNothingCoarse, Workload: wl, Topology: smallTopology()})
		res, err := e.Run(RunOptions{Transactions: 500, Seed: 7, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputTPS
	}
	local := throughput(0)
	half := throughput(50)
	all := throughput(100)
	if half >= local {
		t.Errorf("50%% multi-site (%f) should be slower than all-local (%f)", half, local)
	}
	if all >= half {
		t.Errorf("100%% multi-site (%f) should be slower than 50%% (%f)", all, half)
	}
	if local < all*2 {
		t.Errorf("distributed transactions should cost a large factor: local %f vs all-multi-site %f", local, all)
	}
}

func TestMultisiteBreakdownGrowsCommunication(t *testing.T) {
	run := func(pct int) *Result {
		wl := workload.MultisiteUpdate(8000, pct)
		e := MustNew(Config{Design: SharedNothingCoarse, Workload: wl, Topology: smallTopology()})
		res, err := e.Run(RunOptions{Transactions: 400, Seed: 7, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	local := run(0)
	multi := run(80)
	if local.MultiSite != 0 {
		t.Errorf("0%% run reported %d multi-site transactions", local.MultiSite)
	}
	if multi.MultiSite == 0 {
		t.Error("80% run reported no multi-site transactions")
	}
	if multi.TimePerTransaction(vclock.Communication) <= local.TimePerTransaction(vclock.Communication) {
		t.Error("communication time per transaction should grow with multi-site percentage")
	}
	if multi.TimePerTransaction(vclock.Logging) <= local.TimePerTransaction(vclock.Logging) {
		t.Error("logging time per transaction should grow with multi-site percentage")
	}
}

func TestMemoryAllocationPolicies(t *testing.T) {
	wl := workload.ReadHundred(20000)
	run := func(policy numa.AllocPolicy) *Result {
		e := MustNew(Config{
			Design:           SharedNothingCoarse,
			Workload:         wl,
			Topology:         smallTopology(),
			AllocPolicy:      policy,
			CentralAllocNode: 3,
		})
		res, err := e.Run(RunOptions{Transactions: 200, Seed: 3, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	local := run(numa.AllocLocal)
	remote := run(numa.AllocRemote)
	if remote.ThroughputTPS >= local.ThroughputTPS {
		t.Errorf("remote allocation (%f) should be slower than local (%f)", remote.ThroughputTPS, local.ThroughputTPS)
	}
	// The drop is moderate (the paper reports 3-7%): remote must stay within
	// 75% of local, i.e. the penalty is visible but not catastrophic.
	if remote.ThroughputTPS < 0.75*local.ThroughputTPS {
		t.Errorf("remote allocation penalty too large: %f vs %f", remote.ThroughputTPS, local.ThroughputTPS)
	}
	if local.QPIToIMCRatio >= remote.QPIToIMCRatio {
		t.Errorf("interconnect traffic ratio should grow with remote allocation: %f vs %f",
			local.QPIToIMCRatio, remote.QPIToIMCRatio)
	}
	if len(local.PerSocket) != 4 {
		t.Errorf("PerSocket has %d entries", len(local.PerSocket))
	}
}

func TestATraPosBeatsPLPOnTATP(t *testing.T) {
	wl := workload.MustTATP(workload.TATPOptions{Subscribers: 4000})
	plp := runDesign(t, PLP, wl, 800)
	e := MustNew(Config{
		Design:    ATraPos,
		Workload:  wl,
		Topology:  smallTopology(),
		Placement: DerivePlacement(wl, smallTopology(), true),
	})
	res, err := e.Run(RunOptions{Transactions: 800, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputTPS <= plp.ThroughputTPS {
		t.Errorf("ATraPos (%f) should beat PLP (%f) on the TATP mix", res.ThroughputTPS, plp.ThroughputTPS)
	}
}

func TestDerivePlacement(t *testing.T) {
	wl := workload.MustTATP(workload.TATPOptions{Subscribers: 4000})
	top := smallTopology()
	aware := DerivePlacement(wl, top, true)
	if err := aware.Validate(); err != nil {
		t.Fatal(err)
	}
	// One partition per core in total (no oversaturation).
	for core, n := range aware.PartitionsPerCore() {
		if n > 2 {
			t.Errorf("core %d owns %d partitions", core, n)
		}
	}
	// The Subscriber table dominates the TATP mix and should get the largest share.
	if aware.Tables["Subscriber"].NumPartitions() < aware.Tables["CallForwarding"].NumPartitions() {
		t.Error("Subscriber should receive at least as many cores as CallForwarding")
	}
}

func TestMonitoringOverheadIsSmall(t *testing.T) {
	wl := workload.MustTATP(workload.TATPOptions{Subscribers: 4000, Mix: map[string]float64{workload.TATPGetSubData: 1}})
	top := smallTopology()
	place := DerivePlacement(wl, top, true)
	run := func(monitoring bool) float64 {
		e := MustNew(Config{
			Design:     ATraPos,
			Workload:   wl,
			Topology:   top,
			Placement:  place,
			Monitoring: monitoring,
		})
		res, err := e.Run(RunOptions{Transactions: 800, Seed: 11, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputTPS
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Logf("monitoring run (%f) unexpectedly faster than non-monitored (%f); acceptable within noise", with, without)
	}
	overhead := (without - with) / without
	if overhead > 0.10 {
		t.Errorf("monitoring overhead %.1f%% exceeds 10%%", overhead*100)
	}
}

func TestAdaptiveRepartitioningTriggersOnSkew(t *testing.T) {
	// GetSubData with a sudden skew: the adaptive engine must detect the
	// change and repartition at least once.
	wl, err := workload.TATPSuddenSkew(4000, workload.Seconds(0.003))
	if err != nil {
		t.Fatal(err)
	}
	top := smallTopology()
	place := DerivePlacement(wl, top, true)

	adaptiveEngine := MustNew(Config{
		Design:           ATraPos,
		Workload:         wl,
		Topology:         top,
		Placement:        place,
		Adaptive:         true,
		AdaptiveInterval: coreIntervalForTests(),
	})
	res, err := adaptiveEngine.Run(RunOptions{Transactions: 12000, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repartitions == 0 {
		t.Error("adaptive engine never repartitioned under skew")
	}
	if res.RepartitionTime <= 0 {
		t.Error("repartitioning should have a recorded cost")
	}
}

func TestAdaptiveSocketFailure(t *testing.T) {
	wl := workload.MustTATP(workload.TATPOptions{Subscribers: 4000, Mix: map[string]float64{workload.TATPGetSubData: 1}})
	top := smallTopology()
	e := MustNew(Config{
		Design:           ATraPos,
		Workload:         wl,
		Topology:         top,
		Placement:        DerivePlacement(wl, top, true),
		Adaptive:         true,
		AdaptiveInterval: coreIntervalForTests(),
	})
	if err := e.FailSocket(3); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(RunOptions{Transactions: 3000, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed < 2900 {
		t.Errorf("committed %d of 3000 after socket failure", res.Committed)
	}
	// After adaptation no partition should be owned by a core of the failed socket.
	if res.Repartitions > 0 {
		p := e.Placement()
		for name, tp := range p.Tables {
			for i, c := range tp.Cores {
				if top.SocketOf(c) == 3 {
					t.Errorf("table %s partition %d still owned by failed socket (core %d)", name, i, c)
				}
			}
		}
	}
	if err := e.cfg.Topology.RestoreSocket(3); err != nil {
		t.Fatal(err)
	}
}

func TestFailSocketUnknown(t *testing.T) {
	e := MustNew(Config{Design: ATraPos, Workload: workload.SingleRowRead(100), Topology: smallTopology(), SkipLoad: true})
	if err := e.FailSocket(topology.SocketID(99)); err == nil {
		t.Error("failing an unknown socket should error")
	}
}

func TestDurationDrivenRunProducesSeries(t *testing.T) {
	wl := workload.SingleRowRead(4000)
	e := MustNew(Config{Design: ATraPos, Workload: wl, Topology: smallTopology()})
	res, err := e.Run(RunOptions{
		Duration:        workload.Seconds(0.02),
		MaxTransactions: 100000,
		Seed:            1,
		Workers:         4,
		SampleWindow:    workload.Seconds(0.005),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualTime < workload.Seconds(0.02) {
		t.Errorf("run stopped at virtual time %v before the requested duration", res.VirtualTime.Duration())
	}
	if len(res.Series) < 2 {
		t.Errorf("expected a multi-sample series, got %d samples", len(res.Series))
	}
}

func TestOversaturationPenalty(t *testing.T) {
	if saturationFactor(0.8, 0) != 1 || saturationFactor(0.8, 1) != 1 {
		t.Error("one partition per core should have no penalty")
	}
	if saturationFactor(0.8, 2) != 1.8 {
		t.Errorf("factor for 2 partitions = %f", saturationFactor(0.8, 2))
	}
	// A two-table workload placed naïvely (two partitions per core) is slower
	// than the same workload with one partition per core in total.
	wl := workload.TwoTableSimple(4000)
	top := smallTopology()
	naive := MustNew(Config{Design: ATraPos, Workload: wl, Topology: top})
	spread := MustNew(Config{Design: ATraPos, Workload: wl, Topology: top, Placement: DerivePlacement(wl, top, true)})
	naiveRes, err := naive.Run(RunOptions{Transactions: 600, Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	spreadRes, err := spread.Run(RunOptions{Transactions: 600, Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if spreadRes.ThroughputTPS <= naiveRes.ThroughputTPS {
		t.Errorf("one-partition-per-core placement (%f) should beat the oversaturated naive placement (%f)",
			spreadRes.ThroughputTPS, naiveRes.ThroughputTPS)
	}
}

// coreIntervalForTests shrinks the monitoring interval so adaptive behaviour
// shows up within short test runs.
func coreIntervalForTests() core.IntervalConfig {
	return core.IntervalConfig{
		Initial:         vclock.Nanos(time.Millisecond),
		Max:             vclock.Nanos(8 * time.Millisecond),
		StableThreshold: 0.10,
		History:         3,
	}
}
