// Package workload defines the transactional workloads of the evaluation: the
// transaction model (actions, synchronization points, transaction classes and
// their flow graphs), the paper's microbenchmarks, and the standard TATP and
// TPC-C benchmarks. Workloads generate transactions deterministically from a
// seeded random source, optionally varying over virtual time (for the
// adaptivity experiments) and skewing their key distribution.
package workload

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"

	"atrapos/internal/partition"
	"atrapos/internal/schema"
	"atrapos/internal/vclock"
)

// OpType is the kind of storage access an action performs.
type OpType int

const (
	// Read fetches one row.
	Read OpType = iota
	// Update rewrites one row.
	Update
	// Insert adds one row.
	Insert
	// Delete removes one row.
	Delete
)

// String implements fmt.Stringer, using the paper's R/U/I/D shorthand.
func (o OpType) String() string {
	switch o {
	case Read:
		return "R"
	case Update:
		return "U"
	case Insert:
		return "I"
	case Delete:
		return "D"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// IsWrite reports whether the operation modifies data.
func (o OpType) IsWrite() bool { return o != Read }

// Action is one storage access of a generated transaction instance.
type Action struct {
	Table string
	Op    OpType
	Key   schema.Key
	// Row is the row to insert (Insert) or the new column values (Update);
	// nil updates are applied as an in-place increment by the engine.
	Row schema.Row
}

// SyncPoint is a rendezvous between actions of the same transaction: the
// listed actions must exchange Bytes bytes of intermediate data before the
// transaction can proceed (Section V-A).
type SyncPoint struct {
	Actions []int
	Bytes   int
}

// Transaction is one generated transaction instance.
//
// Transactions built through a GenContext are reused: the engine consumes the
// returned transaction fully before asking the same context for the next one,
// and the builder methods below recycle the Actions/SyncPoints backing arrays
// so steady-state generation performs no heap allocations.
type Transaction struct {
	Class      string
	Actions    []Action
	SyncPoints []SyncPoint
	ReadOnly   bool
	// MultiSite marks microbenchmark transactions that intentionally touch
	// rows owned by other shared-nothing instances.
	MultiSite bool

	// syncIdx is the shared backing array the SyncPoints' Actions slices
	// point into when the transaction is built with AddSync/AddSyncRange.
	syncIdx []int
}

// Reset clears the transaction for reuse under a new class, keeping the
// backing arrays of its slices.
func (t *Transaction) Reset(class string) {
	t.Class = class
	t.Actions = t.Actions[:0]
	t.SyncPoints = t.SyncPoints[:0]
	t.ReadOnly = false
	t.MultiSite = false
	t.syncIdx = t.syncIdx[:0]
}

// Add appends one action.
func (t *Transaction) Add(table string, op OpType, key schema.Key) {
	t.Actions = append(t.Actions, Action{Table: table, Op: op, Key: key})
}

// AddRow appends one action carrying a row payload (inserts, explicit updates).
func (t *Transaction) AddRow(table string, op OpType, key schema.Key, row schema.Row) {
	t.Actions = append(t.Actions, Action{Table: table, Op: op, Key: key, Row: row})
}

// AddSync appends a synchronization point between the given action indices.
// The indices are copied into the transaction's backing storage.
func (t *Transaction) AddSync(bytes int, actions ...int) {
	start := len(t.syncIdx)
	t.syncIdx = append(t.syncIdx, actions...)
	t.SyncPoints = append(t.SyncPoints, SyncPoint{Actions: t.syncIdx[start:len(t.syncIdx):len(t.syncIdx)], Bytes: bytes})
}

// AddSyncRange appends a synchronization point between actions [from, to).
func (t *Transaction) AddSyncRange(bytes, from, to int) {
	start := len(t.syncIdx)
	for i := from; i < to; i++ {
		t.syncIdx = append(t.syncIdx, i)
	}
	t.SyncPoints = append(t.SyncPoints, SyncPoint{Actions: t.syncIdx[start:len(t.syncIdx):len(t.syncIdx)], Bytes: bytes})
}

// Tables returns the distinct tables the transaction touches.
func (t *Transaction) Tables() []string {
	seen := make(map[string]struct{})
	var out []string
	for _, a := range t.Actions {
		if _, ok := seen[a.Table]; ok {
			continue
		}
		seen[a.Table] = struct{}{}
		out = append(out, a.Table)
	}
	sort.Strings(out)
	return out
}

// FlowNode is one node of a transaction class's flow graph: an access to a
// table, possibly repeated (e.g. one OrderLine insert per ordered item).
type FlowNode struct {
	Table    string
	Op       OpType
	MinCount int
	MaxCount int
}

// FlowSync is a synchronization point of the flow graph, between the listed
// node indices.
type FlowSync struct {
	Nodes []int
	Bytes int
}

// FlowGraph is the static execution plan of a transaction class, as in the
// paper's Figure 7 for TPC-C NewOrder. ATraPos derives the static workload
// information of its cost model from these graphs.
type FlowGraph struct {
	Class string
	Nodes []FlowNode
	Syncs []FlowSync
}

// TableCounts returns the expected number of actions per table for one
// execution of the class (using the midpoint of variable multiplicities).
func (g *FlowGraph) TableCounts() map[string]float64 {
	out := make(map[string]float64)
	for _, n := range g.Nodes {
		out[n.Table] += float64(n.MinCount+n.MaxCount) / 2
	}
	return out
}

// String renders the flow graph in a compact textual form.
func (g *FlowGraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", g.Class)
	for i, n := range g.Nodes {
		if n.MinCount == n.MaxCount && n.MinCount == 1 {
			fmt.Fprintf(&b, "  [%d] %s(%s)\n", i, n.Op, n.Table)
		} else {
			fmt.Fprintf(&b, "  [%d] %s(%s) x(%d-%d)\n", i, n.Op, n.Table, n.MinCount, n.MaxCount)
		}
	}
	for i, s := range g.Syncs {
		fmt.Fprintf(&b, "  sync %d: nodes %v, %d bytes\n", i, s.Nodes, s.Bytes)
	}
	return b.String()
}

// TableDef describes one table of a workload: its schema, its population and
// the generator of its rows.
type TableDef struct {
	Schema *schema.Table
	Rows   int
	MaxKey int64
	RowGen func(i int) schema.Row
}

// GenContext is the context available when generating one transaction. One
// context is owned by exactly one worker and reused across transactions: it
// carries the worker's reusable Transaction and the per-worker caches that
// make generation allocation-free in steady state.
type GenContext struct {
	// Rng is the caller's deterministic random source.
	Rng *rand.Rand
	// At is the current virtual time; time-varying workloads change their mix
	// and skew based on it.
	At vclock.Nanos
	// HomeSite and NumSites describe the shared-nothing instance of the
	// generating worker, for workloads that distinguish local from multi-site
	// transactions. Engines with a single instance pass 0 and 1.
	HomeSite int
	NumSites int

	txn   Transaction
	mixes mixCache
	// idx is scratch for generators that assemble irregular sync-point
	// member lists (e.g. TPC-C NewOrder) before copying them into the
	// transaction.
	idx []int
}

// Txn returns the context's reusable transaction, reset for the given class.
// The caller must fully consume the previously returned transaction first.
func (ctx *GenContext) Txn(class string) *Transaction {
	ctx.txn.Reset(class)
	return &ctx.txn
}

// PickClass selects a transaction class from weights proportionally to its
// weight, deterministically in the caller's Rng. The weights map is compiled
// into a cumulative table once and cached per map identity, so the per-call
// path neither sorts nor allocates. Passing a freshly built map on every call
// defeats the cache; reuse the same map (or the same per-phase maps) instead.
func (ctx *GenContext) PickClass(weights map[string]float64) string {
	return ctx.mixes.get(weights).pick(ctx.Rng)
}

// classMix is a compiled weighted chooser over transaction classes.
type classMix struct {
	classes []string
	cum     []float64
	total   float64
}

// compileMix builds a classMix, ordering classes alphabetically exactly like
// pickWeighted so seeded runs generate the same class sequence.
func compileMix(weights map[string]float64) *classMix {
	m := &classMix{}
	for k, w := range weights {
		if w > 0 {
			m.classes = append(m.classes, k)
		}
	}
	sort.Strings(m.classes)
	m.cum = make([]float64, len(m.classes))
	for i, k := range m.classes {
		m.total += weights[k]
		m.cum[i] = m.total
	}
	return m
}

func (m *classMix) pick(rng *rand.Rand) string {
	if m.total <= 0 || len(m.classes) == 0 {
		return ""
	}
	x := rng.Float64() * m.total
	for i, c := range m.cum {
		if x <= c {
			return m.classes[i]
		}
	}
	return m.classes[len(m.classes)-1]
}

// mixCache memoizes compiled mixes by map identity. Workloads hand out a
// small, stable set of weight maps (one per phase), so a short linear list
// suffices; if a workload cycles through more maps than the cache holds, the
// oldest entry is overwritten. Each entry retains the map it was compiled
// from: a cached address can therefore never be recycled by the allocator
// for a different map, which makes the pointer-identity comparison sound
// even for callers that build short-lived maps.
type mixCache struct {
	entries [8]mixEntry
	n       int
	next    int
}

type mixEntry struct {
	src map[string]float64
	mix *classMix
}

func (c *mixCache) get(weights map[string]float64) *classMix {
	p := reflect.ValueOf(weights).Pointer()
	for i := 0; i < c.n; i++ {
		if reflect.ValueOf(c.entries[i].src).Pointer() == p {
			return c.entries[i].mix
		}
	}
	m := compileMix(weights)
	e := mixEntry{src: weights, mix: m}
	if c.n < len(c.entries) {
		c.entries[c.n] = e
		c.n++
	} else {
		c.entries[c.next] = e
		c.next = (c.next + 1) % len(c.entries)
	}
	return m
}

// Workload couples a dataset with a transaction generator.
type Workload struct {
	// Name identifies the workload in reports.
	Name string
	// Tables lists the dataset.
	Tables []TableDef
	// Graphs holds the flow graph of every transaction class.
	Graphs map[string]*FlowGraph
	// Generate produces the next transaction.
	Generate func(ctx *GenContext) *Transaction
	// ClassWeights returns the probability of each class at virtual time at;
	// ATraPos uses it as the dynamic workload information of its cost model
	// and the harness prints it for reference.
	ClassWeights func(at vclock.Nanos) map[string]float64
}

// TableSpecs converts the dataset description to the partition.TableSpec form
// used when building placements.
func (w *Workload) TableSpecs() []partition.TableSpec {
	out := make([]partition.TableSpec, len(w.Tables))
	for i, t := range w.Tables {
		out[i] = partition.TableSpec{Name: t.Schema.Name, MaxKey: t.MaxKey}
	}
	return out
}

// TableDef returns the definition of the named table.
func (w *Workload) TableDef(name string) (TableDef, bool) {
	for _, t := range w.Tables {
		if t.Schema.Name == name {
			return t, true
		}
	}
	return TableDef{}, false
}

// Graph returns the flow graph of a class.
func (w *Workload) Graph(class string) (*FlowGraph, bool) {
	g, ok := w.Graphs[class]
	return g, ok
}

// Classes returns the transaction class names in sorted order.
func (w *Workload) Classes() []string {
	out := make([]string, 0, len(w.Graphs))
	for c := range w.Graphs {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// pickWeighted selects a key from weights proportionally to its weight.
func pickWeighted(rng *rand.Rand, weights map[string]float64) string {
	keys := make([]string, 0, len(weights))
	total := 0.0
	for k, w := range weights {
		if w > 0 {
			keys = append(keys, k)
			total += w
		}
	}
	sort.Strings(keys)
	if total <= 0 || len(keys) == 0 {
		return ""
	}
	x := rng.Float64() * total
	for _, k := range keys {
		x -= weights[k]
		if x <= 0 {
			return k
		}
	}
	return keys[len(keys)-1]
}

// Skew describes a hot-set access skew: HotAccessFraction of the requests go
// to a HotDataFraction-sized window of the key space, starting at virtual
// time Start. A zero Skew means uniform access.
//
// Two optional time-varying behaviours drive the adaptivity scenarios:
// DriftPeriod slides the hot window across the key space (a continuously
// drifting hotspot), and OscillatePeriod toggles the skew on and off (a
// workload oscillating between skewed and uniform access).
type Skew struct {
	HotDataFraction   float64
	HotAccessFraction float64
	Start             vclock.Nanos
	// DriftPeriod, when positive, shifts the hot window forward by its own
	// width every period (wrapping around the key space), so the hot set
	// keeps moving and a placement tuned for the previous window goes stale.
	DriftPeriod vclock.Nanos
	// OscillatePeriod, when positive, alternates the skew between active and
	// inactive every period: skewed for one period, uniform for the next.
	OscillatePeriod vclock.Nanos
}

// Active reports whether the skew applies at virtual time at.
func (s Skew) Active(at vclock.Nanos) bool {
	if s.HotDataFraction <= 0 || s.HotAccessFraction <= 0 || at < s.Start {
		return false
	}
	if s.OscillatePeriod > 0 {
		return ((at-s.Start)/s.OscillatePeriod)%2 == 0
	}
	return true
}

// hotStart returns the lower end of the hot window at virtual time at.
func (s Skew) hotStart(hotKeys, maxKey int64, at vclock.Nanos) int64 {
	if s.DriftPeriod <= 0 || hotKeys <= 0 || hotKeys >= maxKey {
		return 0
	}
	windows := maxKey / hotKeys
	if windows < 1 {
		return 0
	}
	step := int64((at - s.Start) / s.DriftPeriod)
	return (step % windows) * hotKeys
}

// Pick selects a key in [0, maxKey) according to the skew at time at.
func (s Skew) Pick(rng *rand.Rand, maxKey int64, at vclock.Nanos) int64 {
	if maxKey <= 0 {
		return 0
	}
	if !s.Active(at) {
		return rng.Int63n(maxKey)
	}
	hotKeys := int64(float64(maxKey) * s.HotDataFraction)
	if hotKeys < 1 {
		hotKeys = 1
	}
	start := s.hotStart(hotKeys, maxKey, at)
	if start+hotKeys > maxKey {
		start = maxKey - hotKeys
	}
	if rng.Float64() < s.HotAccessFraction {
		return start + rng.Int63n(hotKeys)
	}
	cold := maxKey - hotKeys
	if cold < 1 {
		return rng.Int63n(maxKey)
	}
	v := rng.Int63n(cold)
	if v >= start {
		v += hotKeys
	}
	return v
}
