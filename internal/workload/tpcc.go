package workload

import (
	"fmt"
	"sync/atomic"

	"atrapos/internal/schema"
	"atrapos/internal/vclock"
)

// TPC-C transaction class names.
const (
	TPCCNewOrder    = "NewOrder"
	TPCCPayment     = "Payment"
	TPCCOrderStatus = "OrderStatus"
	TPCCDelivery    = "Delivery"
	TPCCStockLevel  = "StockLevel"
)

// TPC-C sizing constants (per warehouse).
const (
	tpccDistrictsPerWarehouse = 10
	tpccCustomersPerDistrict  = 3000
	tpccItems                 = 100000
	tpccInitialOrdersPerDist  = 3000
	// tpccOrderRangePerDistrict is the surrogate-key range reserved for each
	// district's orders. New orders wrap around within their district's
	// range (overwriting the oldest ones), which keeps the key space dense so
	// range partitioning spreads both the initial and the newly inserted
	// orders evenly.
	tpccOrderRangePerDistrict = tpccInitialOrdersPerDist
)

// TPCCStandardMix returns the standard TPC-C transaction mix.
func TPCCStandardMix() map[string]float64 {
	return map[string]float64{
		TPCCNewOrder:    45,
		TPCCPayment:     43,
		TPCCOrderStatus: 4,
		TPCCDelivery:    4,
		TPCCStockLevel:  4,
	}
}

// TPCCOptions configures the TPC-C workload.
type TPCCOptions struct {
	// Warehouses is the scaling factor; the paper uses 80.
	Warehouses int
	// Mix gives the weight of each transaction class; nil means the standard mix.
	Mix map[string]float64
	// CustomersPerDistrict overrides the TPC-C population for faster tests;
	// zero keeps the standard 3000.
	CustomersPerDistrict int
	// Items overrides the item count; zero keeps the standard 100000.
	Items int
}

// TPCC builds the TPC-C wholesale-supplier benchmark: 9 tables and 5
// transaction classes, all of which touch 3 or more tables. Surrogate integer
// keys are derived from (warehouse, district, ...) so that range partitioning
// aligns the tables on warehouse boundaries.
func TPCC(opts TPCCOptions) (*Workload, error) {
	if opts.Warehouses <= 0 {
		return nil, fmt.Errorf("workload: TPC-C needs a positive warehouse count")
	}
	mix := opts.Mix
	if mix == nil {
		mix = TPCCStandardMix()
	}
	for class := range mix {
		if _, ok := tpccGraphs()[class]; !ok {
			return nil, fmt.Errorf("workload: unknown TPC-C class %q", class)
		}
	}
	custPerDist := opts.CustomersPerDistrict
	if custPerDist <= 0 {
		custPerDist = tpccCustomersPerDistrict
	}
	items := opts.Items
	if items <= 0 {
		items = tpccItems
	}

	w := int64(opts.Warehouses)
	districts := w * tpccDistrictsPerWarehouse
	customers := districts * int64(custPerDist)
	stock := w * int64(items)
	// Order surrogate keys are strided per district so that orders inserted
	// at run time stay within their district's key range (and hence its
	// partitions), exactly as TPC-C's per-district order ids do.
	maxOrders := districts * tpccOrderRangePerDistrict
	orderKey := func(dist, seq int64) int64 { return dist*tpccOrderRangePerDistrict + seq }

	intCol := func(names ...string) []schema.Column {
		cols := make([]schema.Column, len(names))
		for i, n := range names {
			cols[i] = schema.Column{Name: n, Type: schema.Int64}
		}
		return cols
	}
	fk := func(col, refTable, refCol string) schema.ForeignKey {
		return schema.ForeignKey{Column: col, RefTable: refTable, RefColumn: refCol}
	}

	wl := &Workload{
		Name: "TPC-C",
		Tables: []TableDef{
			{
				Schema: &schema.Table{Name: "Warehouse", Columns: intCol("w_id", "w_tax", "w_ytd"), PrimaryKey: []string{"w_id"}},
				Rows:   int(w), MaxKey: w,
				RowGen: func(i int) schema.Row { return schema.Row{int64(i), int64(7), int64(0)} },
			},
			{
				Schema: &schema.Table{
					Name: "District", Columns: intCol("d_id", "d_w_id", "d_tax", "d_next_o_id", "d_ytd"),
					PrimaryKey:  []string{"d_id"},
					ForeignKeys: []schema.ForeignKey{fk("d_w_id", "Warehouse", "w_id")},
				},
				Rows: int(districts), MaxKey: districts,
				RowGen: func(i int) schema.Row {
					return schema.Row{int64(i), int64(i / tpccDistrictsPerWarehouse), int64(5), int64(tpccInitialOrdersPerDist), int64(0)}
				},
			},
			{
				Schema: &schema.Table{
					Name: "Customer", Columns: intCol("c_id", "c_d_id", "c_w_id", "c_balance", "c_ytd_payment", "c_payment_cnt"),
					PrimaryKey:  []string{"c_id"},
					ForeignKeys: []schema.ForeignKey{fk("c_d_id", "District", "d_id")},
				},
				Rows: int(customers), MaxKey: customers,
				RowGen: func(i int) schema.Row {
					d := int64(i) / int64(custPerDist)
					return schema.Row{int64(i), d, d / tpccDistrictsPerWarehouse, int64(-10), int64(10), int64(1)}
				},
			},
			{
				Schema: &schema.Table{
					Name: "History", Columns: intCol("h_id", "h_c_id", "h_d_id", "h_amount"),
					PrimaryKey:  []string{"h_id"},
					ForeignKeys: []schema.ForeignKey{fk("h_c_id", "Customer", "c_id")},
				},
				Rows: int(customers), MaxKey: customers * 4,
				RowGen: func(i int) schema.Row {
					return schema.Row{int64(i), int64(i), int64(i) / int64(custPerDist), int64(10)}
				},
			},
			{
				Schema: &schema.Table{
					Name: "NewOrder", Columns: intCol("no_o_id", "no_d_id", "no_w_id"),
					PrimaryKey:  []string{"no_o_id"},
					ForeignKeys: []schema.ForeignKey{fk("no_d_id", "District", "d_id")},
				},
				Rows: int(districts) * 900, MaxKey: maxOrders,
				RowGen: func(i int) schema.Row {
					d := int64(i) / 900
					o := orderKey(d, int64(tpccInitialOrdersPerDist)-900+int64(i)%900)
					return schema.Row{o, d, d / tpccDistrictsPerWarehouse}
				},
			},
			{
				Schema: &schema.Table{
					Name: "Order", Columns: intCol("o_id", "o_d_id", "o_w_id", "o_c_id", "o_ol_cnt"),
					PrimaryKey:  []string{"o_id"},
					ForeignKeys: []schema.ForeignKey{fk("o_d_id", "District", "d_id"), fk("o_c_id", "Customer", "c_id")},
				},
				Rows: int(districts) * tpccInitialOrdersPerDist, MaxKey: maxOrders,
				RowGen: func(i int) schema.Row {
					d := int64(i) / tpccInitialOrdersPerDist
					o := orderKey(d, int64(i)%tpccInitialOrdersPerDist)
					return schema.Row{o, d, d / tpccDistrictsPerWarehouse, d*int64(custPerDist) + int64(i)%int64(custPerDist), int64(10)}
				},
			},
			{
				Schema: &schema.Table{
					Name: "OrderLine", Columns: intCol("ol_id", "ol_o_id", "ol_d_id", "ol_i_id", "ol_amount"),
					PrimaryKey:  []string{"ol_id"},
					ForeignKeys: []schema.ForeignKey{fk("ol_o_id", "Order", "o_id"), fk("ol_i_id", "Item", "i_id")},
				},
				Rows: int(districts) * tpccInitialOrdersPerDist * 10, MaxKey: maxOrders * 15,
				RowGen: func(i int) schema.Row {
					d := int64(i) / (tpccInitialOrdersPerDist * 10)
					o := orderKey(d, (int64(i)/10)%tpccInitialOrdersPerDist)
					return schema.Row{o*15 + int64(i)%10, o, d, int64(i) % int64(items), int64(42)}
				},
			},
			{
				Schema: &schema.Table{Name: "Item", Columns: intCol("i_id", "i_price", "i_im_id"), PrimaryKey: []string{"i_id"}},
				Rows:   items, MaxKey: int64(items),
				RowGen: func(i int) schema.Row { return schema.Row{int64(i), int64(i%100 + 1), int64(i % 10000)} },
			},
			{
				Schema: &schema.Table{
					Name: "Stock", Columns: intCol("s_id", "s_w_id", "s_i_id", "s_quantity", "s_ytd", "s_order_cnt"),
					PrimaryKey:  []string{"s_id"},
					ForeignKeys: []schema.ForeignKey{fk("s_w_id", "Warehouse", "w_id"), fk("s_i_id", "Item", "i_id")},
				},
				Rows: int(stock), MaxKey: stock,
				RowGen: func(i int) schema.Row {
					return schema.Row{int64(i), int64(i) / int64(items), int64(i) % int64(items), int64(50), int64(0), int64(0)}
				},
			},
		},
		Graphs: tpccGraphs(),
		ClassWeights: func(vclock.Nanos) map[string]float64 {
			return mix
		},
	}

	// One order-id sequence per district, as in TPC-C's d_next_o_id.
	orderSeqs := make([]atomic.Int64, districts)
	for d := range orderSeqs {
		orderSeqs[d].Store(tpccInitialOrdersPerDist)
	}
	nextOrder := func(dist int64) int64 {
		seq := orderSeqs[dist].Add(1) % tpccOrderRangePerDistrict
		return orderKey(dist, seq)
	}

	wl.Generate = func(ctx *GenContext) *Transaction {
		class := ctx.PickClass(mix)
		wh := ctx.Rng.Int63n(w)
		dist := wh*tpccDistrictsPerWarehouse + ctx.Rng.Int63n(tpccDistrictsPerWarehouse)
		cust := dist*int64(custPerDist) + ctx.Rng.Int63n(int64(custPerDist))
		t := ctx.Txn(class)
		switch class {
		case TPCCPayment:
			hID := cust*4 + ctx.Rng.Int63n(4)
			t.Add("Warehouse", Update, schema.KeyFromInt(wh))
			t.Add("District", Update, schema.KeyFromInt(dist))
			t.Add("Customer", Update, schema.KeyFromInt(cust))
			t.AddRow("History", Insert, schema.KeyFromInt(hID), schema.Row{hID, cust, dist, int64(10)})
			t.AddSync(16, 0, 1)
			t.AddSync(32, 2, 3)
			return t
		case TPCCOrderStatus:
			order := orderKey(dist, ctx.Rng.Int63n(int64(tpccInitialOrdersPerDist)))
			t.ReadOnly = true
			t.Add("Customer", Read, schema.KeyFromInt(cust))
			t.Add("Order", Read, schema.KeyFromInt(order))
			lines := 5 + ctx.Rng.Int63n(11)
			for l := int64(0); l < lines; l++ {
				t.Add("OrderLine", Read, schema.KeyFromInt(order*15+l%10))
			}
			t.AddSync(32, 0, 1)
			t.AddSyncRange(24*int(lines), 1, len(t.Actions))
			return t
		case TPCCDelivery:
			base := wh * tpccDistrictsPerWarehouse
			for d := int64(0); d < tpccDistrictsPerWarehouse; d++ {
				dst := base + d
				order := orderKey(dst, ctx.Rng.Int63n(int64(tpccInitialOrdersPerDist)))
				custD := dst*int64(custPerDist) + ctx.Rng.Int63n(int64(custPerDist))
				t.Add("NewOrder", Delete, schema.KeyFromInt(order))
				t.Add("Order", Update, schema.KeyFromInt(order))
				t.Add("OrderLine", Update, schema.KeyFromInt(order*15))
				t.Add("Customer", Update, schema.KeyFromInt(custD))
			}
			t.AddSyncRange(200, 0, len(t.Actions))
			return t
		case TPCCStockLevel:
			t.ReadOnly = true
			t.Add("District", Read, schema.KeyFromInt(dist))
			order := orderKey(dist, 20+ctx.Rng.Int63n(int64(tpccInitialOrdersPerDist)-20))
			for l := int64(0); l < 20; l++ {
				t.Add("OrderLine", Read, schema.KeyFromInt((order-l%20)*15+l%10))
			}
			for l := int64(0); l < 20; l++ {
				item := ctx.Rng.Int63n(int64(items))
				t.Add("Stock", Read, schema.KeyFromInt(wh*int64(items)+item))
			}
			t.AddSyncRange(160, 0, 21)
			t.AddSyncRange(160, 21, len(t.Actions))
			return t
		default: // NewOrder
			t.Reset(TPCCNewOrder)
			// Fixed part.
			t.Add("Warehouse", Read, schema.KeyFromInt(wh))
			t.Add("Customer", Read, schema.KeyFromInt(cust))
			t.Add("District", Read, schema.KeyFromInt(dist))
			t.Add("District", Update, schema.KeyFromInt(dist))
			fixedEnd := len(t.Actions)
			// Variable part: 5-15 items. The item and stock *read* indices
			// feed Figure 7's third synchronization point, so collect them in
			// the context's scratch (item reads first, then stock reads, as
			// the point was originally specified).
			lines := 5 + ctx.Rng.Int63n(11)
			oID := nextOrder(dist)
			ctx.idx = ctx.idx[:0]
			for l := int64(0); l < lines; l++ {
				item := ctx.Rng.Int63n(int64(items))
				ctx.idx = append(ctx.idx, len(t.Actions))
				t.Add("Item", Read, schema.KeyFromInt(item))
				stockKey := wh*int64(items) + item
				t.Add("Stock", Read, schema.KeyFromInt(stockKey))
				t.Add("Stock", Update, schema.KeyFromInt(stockKey))
			}
			itemCount := len(ctx.idx)
			for i := 0; i < itemCount; i++ {
				ctx.idx = append(ctx.idx, ctx.idx[i]+1) // the stock read follows its item read
			}
			insStart := len(t.Actions)
			t.AddRow("Order", Insert, schema.KeyFromInt(oID), schema.Row{oID, dist, wh, cust, lines})
			t.AddRow("NewOrder", Insert, schema.KeyFromInt(oID), schema.Row{oID, dist, wh})
			for l := int64(0); l < lines; l++ {
				olID := oID*15 + l
				t.AddRow("OrderLine", Insert, schema.KeyFromInt(olID), schema.Row{olID, oID, dist, ctx.Rng.Int63n(int64(items)), int64(42)})
			}
			// The four synchronization points of Figure 7.
			t.AddSyncRange(64, 0, fixedEnd)
			t.AddSync(48, 3, insStart, insStart+1)
			t.AddSync(24*int(lines), ctx.idx...)
			t.AddSyncRange(32*int(lines), insStart, len(t.Actions))
			return t
		}
	}
	return wl, nil
}

// MustTPCC is TPCC but panics on configuration errors.
func MustTPCC(opts TPCCOptions) *Workload {
	w, err := TPCC(opts)
	if err != nil {
		panic(err)
	}
	return w
}

func tpccGraphs() map[string]*FlowGraph {
	return map[string]*FlowGraph{
		TPCCNewOrder: {
			Class: TPCCNewOrder,
			Nodes: []FlowNode{
				{Table: "Warehouse", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "Customer", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "District", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "District", Op: Update, MinCount: 1, MaxCount: 1},
				{Table: "Item", Op: Read, MinCount: 5, MaxCount: 15},
				{Table: "Stock", Op: Read, MinCount: 5, MaxCount: 15},
				{Table: "Stock", Op: Update, MinCount: 5, MaxCount: 15},
				{Table: "Order", Op: Insert, MinCount: 1, MaxCount: 1},
				{Table: "NewOrder", Op: Insert, MinCount: 1, MaxCount: 1},
				{Table: "OrderLine", Op: Insert, MinCount: 5, MaxCount: 15},
			},
			Syncs: []FlowSync{
				{Nodes: []int{0, 1, 2, 3}, Bytes: 64},
				{Nodes: []int{3, 7, 8}, Bytes: 48},
				{Nodes: []int{4, 5, 6}, Bytes: 240},
				{Nodes: []int{7, 8, 9}, Bytes: 320},
			},
		},
		TPCCPayment: {
			Class: TPCCPayment,
			Nodes: []FlowNode{
				{Table: "Warehouse", Op: Update, MinCount: 1, MaxCount: 1},
				{Table: "District", Op: Update, MinCount: 1, MaxCount: 1},
				{Table: "Customer", Op: Update, MinCount: 1, MaxCount: 1},
				{Table: "History", Op: Insert, MinCount: 1, MaxCount: 1},
			},
			Syncs: []FlowSync{{Nodes: []int{0, 1}, Bytes: 16}, {Nodes: []int{2, 3}, Bytes: 32}},
		},
		TPCCOrderStatus: {
			Class: TPCCOrderStatus,
			Nodes: []FlowNode{
				{Table: "Customer", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "Order", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "OrderLine", Op: Read, MinCount: 5, MaxCount: 15},
			},
			Syncs: []FlowSync{{Nodes: []int{0, 1}, Bytes: 32}, {Nodes: []int{1, 2}, Bytes: 240}},
		},
		TPCCDelivery: {
			Class: TPCCDelivery,
			Nodes: []FlowNode{
				{Table: "NewOrder", Op: Delete, MinCount: 10, MaxCount: 10},
				{Table: "Order", Op: Update, MinCount: 10, MaxCount: 10},
				{Table: "OrderLine", Op: Update, MinCount: 10, MaxCount: 10},
				{Table: "Customer", Op: Update, MinCount: 10, MaxCount: 10},
			},
			Syncs: []FlowSync{{Nodes: []int{0, 1, 2, 3}, Bytes: 200}},
		},
		TPCCStockLevel: {
			Class: TPCCStockLevel,
			Nodes: []FlowNode{
				{Table: "District", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "OrderLine", Op: Read, MinCount: 20, MaxCount: 20},
				{Table: "Stock", Op: Read, MinCount: 20, MaxCount: 20},
			},
			Syncs: []FlowSync{{Nodes: []int{0, 1}, Bytes: 160}, {Nodes: []int{1, 2}, Bytes: 160}},
		},
	}
}

// NewOrderFlowGraph returns the TPC-C NewOrder flow graph of the paper's
// Figure 7, for display by examples and the harness.
func NewOrderFlowGraph() *FlowGraph {
	return tpccGraphs()[TPCCNewOrder]
}
