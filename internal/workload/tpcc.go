package workload

import (
	"fmt"
	"sync/atomic"

	"atrapos/internal/schema"
	"atrapos/internal/vclock"
)

// TPC-C transaction class names.
const (
	TPCCNewOrder    = "NewOrder"
	TPCCPayment     = "Payment"
	TPCCOrderStatus = "OrderStatus"
	TPCCDelivery    = "Delivery"
	TPCCStockLevel  = "StockLevel"
)

// TPC-C sizing constants (per warehouse).
const (
	tpccDistrictsPerWarehouse = 10
	tpccCustomersPerDistrict  = 3000
	tpccItems                 = 100000
	tpccInitialOrdersPerDist  = 3000
	// tpccOrderRangePerDistrict is the surrogate-key range reserved for each
	// district's orders. New orders wrap around within their district's
	// range (overwriting the oldest ones), which keeps the key space dense so
	// range partitioning spreads both the initial and the newly inserted
	// orders evenly.
	tpccOrderRangePerDistrict = tpccInitialOrdersPerDist
)

// TPCCStandardMix returns the standard TPC-C transaction mix.
func TPCCStandardMix() map[string]float64 {
	return map[string]float64{
		TPCCNewOrder:    45,
		TPCCPayment:     43,
		TPCCOrderStatus: 4,
		TPCCDelivery:    4,
		TPCCStockLevel:  4,
	}
}

// TPCCOptions configures the TPC-C workload.
type TPCCOptions struct {
	// Warehouses is the scaling factor; the paper uses 80.
	Warehouses int
	// Mix gives the weight of each transaction class; nil means the standard mix.
	Mix map[string]float64
	// CustomersPerDistrict overrides the TPC-C population for faster tests;
	// zero keeps the standard 3000.
	CustomersPerDistrict int
	// Items overrides the item count; zero keeps the standard 100000.
	Items int
}

// TPCC builds the TPC-C wholesale-supplier benchmark: 9 tables and 5
// transaction classes, all of which touch 3 or more tables. Surrogate integer
// keys are derived from (warehouse, district, ...) so that range partitioning
// aligns the tables on warehouse boundaries.
func TPCC(opts TPCCOptions) (*Workload, error) {
	if opts.Warehouses <= 0 {
		return nil, fmt.Errorf("workload: TPC-C needs a positive warehouse count")
	}
	mix := opts.Mix
	if mix == nil {
		mix = TPCCStandardMix()
	}
	for class := range mix {
		if _, ok := tpccGraphs()[class]; !ok {
			return nil, fmt.Errorf("workload: unknown TPC-C class %q", class)
		}
	}
	custPerDist := opts.CustomersPerDistrict
	if custPerDist <= 0 {
		custPerDist = tpccCustomersPerDistrict
	}
	items := opts.Items
	if items <= 0 {
		items = tpccItems
	}

	w := int64(opts.Warehouses)
	districts := w * tpccDistrictsPerWarehouse
	customers := districts * int64(custPerDist)
	stock := w * int64(items)
	// Order surrogate keys are strided per district so that orders inserted
	// at run time stay within their district's key range (and hence its
	// partitions), exactly as TPC-C's per-district order ids do.
	maxOrders := districts * tpccOrderRangePerDistrict
	orderKey := func(dist, seq int64) int64 { return dist*tpccOrderRangePerDistrict + seq }

	intCol := func(names ...string) []schema.Column {
		cols := make([]schema.Column, len(names))
		for i, n := range names {
			cols[i] = schema.Column{Name: n, Type: schema.Int64}
		}
		return cols
	}
	fk := func(col, refTable, refCol string) schema.ForeignKey {
		return schema.ForeignKey{Column: col, RefTable: refTable, RefColumn: refCol}
	}

	wl := &Workload{
		Name: "TPC-C",
		Tables: []TableDef{
			{
				Schema: &schema.Table{Name: "Warehouse", Columns: intCol("w_id", "w_tax", "w_ytd"), PrimaryKey: []string{"w_id"}},
				Rows:   int(w), MaxKey: w,
				RowGen: func(i int) schema.Row { return schema.Row{int64(i), int64(7), int64(0)} },
			},
			{
				Schema: &schema.Table{
					Name: "District", Columns: intCol("d_id", "d_w_id", "d_tax", "d_next_o_id", "d_ytd"),
					PrimaryKey:  []string{"d_id"},
					ForeignKeys: []schema.ForeignKey{fk("d_w_id", "Warehouse", "w_id")},
				},
				Rows: int(districts), MaxKey: districts,
				RowGen: func(i int) schema.Row {
					return schema.Row{int64(i), int64(i / tpccDistrictsPerWarehouse), int64(5), int64(tpccInitialOrdersPerDist), int64(0)}
				},
			},
			{
				Schema: &schema.Table{
					Name: "Customer", Columns: intCol("c_id", "c_d_id", "c_w_id", "c_balance", "c_ytd_payment", "c_payment_cnt"),
					PrimaryKey:  []string{"c_id"},
					ForeignKeys: []schema.ForeignKey{fk("c_d_id", "District", "d_id")},
				},
				Rows: int(customers), MaxKey: customers,
				RowGen: func(i int) schema.Row {
					d := int64(i) / int64(custPerDist)
					return schema.Row{int64(i), d, d / tpccDistrictsPerWarehouse, int64(-10), int64(10), int64(1)}
				},
			},
			{
				Schema: &schema.Table{
					Name: "History", Columns: intCol("h_id", "h_c_id", "h_d_id", "h_amount"),
					PrimaryKey:  []string{"h_id"},
					ForeignKeys: []schema.ForeignKey{fk("h_c_id", "Customer", "c_id")},
				},
				Rows: int(customers), MaxKey: customers * 4,
				RowGen: func(i int) schema.Row {
					return schema.Row{int64(i), int64(i), int64(i) / int64(custPerDist), int64(10)}
				},
			},
			{
				Schema: &schema.Table{
					Name: "NewOrder", Columns: intCol("no_o_id", "no_d_id", "no_w_id"),
					PrimaryKey:  []string{"no_o_id"},
					ForeignKeys: []schema.ForeignKey{fk("no_d_id", "District", "d_id")},
				},
				Rows: int(districts) * 900, MaxKey: maxOrders,
				RowGen: func(i int) schema.Row {
					d := int64(i) / 900
					o := orderKey(d, int64(tpccInitialOrdersPerDist)-900+int64(i)%900)
					return schema.Row{o, d, d / tpccDistrictsPerWarehouse}
				},
			},
			{
				Schema: &schema.Table{
					Name: "Order", Columns: intCol("o_id", "o_d_id", "o_w_id", "o_c_id", "o_ol_cnt"),
					PrimaryKey:  []string{"o_id"},
					ForeignKeys: []schema.ForeignKey{fk("o_d_id", "District", "d_id"), fk("o_c_id", "Customer", "c_id")},
				},
				Rows: int(districts) * tpccInitialOrdersPerDist, MaxKey: maxOrders,
				RowGen: func(i int) schema.Row {
					d := int64(i) / tpccInitialOrdersPerDist
					o := orderKey(d, int64(i)%tpccInitialOrdersPerDist)
					return schema.Row{o, d, d / tpccDistrictsPerWarehouse, d*int64(custPerDist) + int64(i)%int64(custPerDist), int64(10)}
				},
			},
			{
				Schema: &schema.Table{
					Name: "OrderLine", Columns: intCol("ol_id", "ol_o_id", "ol_d_id", "ol_i_id", "ol_amount"),
					PrimaryKey:  []string{"ol_id"},
					ForeignKeys: []schema.ForeignKey{fk("ol_o_id", "Order", "o_id"), fk("ol_i_id", "Item", "i_id")},
				},
				Rows: int(districts) * tpccInitialOrdersPerDist * 10, MaxKey: maxOrders * 15,
				RowGen: func(i int) schema.Row {
					d := int64(i) / (tpccInitialOrdersPerDist * 10)
					o := orderKey(d, (int64(i)/10)%tpccInitialOrdersPerDist)
					return schema.Row{o*15 + int64(i)%10, o, d, int64(i) % int64(items), int64(42)}
				},
			},
			{
				Schema: &schema.Table{Name: "Item", Columns: intCol("i_id", "i_price", "i_im_id"), PrimaryKey: []string{"i_id"}},
				Rows:   items, MaxKey: int64(items),
				RowGen: func(i int) schema.Row { return schema.Row{int64(i), int64(i%100 + 1), int64(i % 10000)} },
			},
			{
				Schema: &schema.Table{
					Name: "Stock", Columns: intCol("s_id", "s_w_id", "s_i_id", "s_quantity", "s_ytd", "s_order_cnt"),
					PrimaryKey:  []string{"s_id"},
					ForeignKeys: []schema.ForeignKey{fk("s_w_id", "Warehouse", "w_id"), fk("s_i_id", "Item", "i_id")},
				},
				Rows: int(stock), MaxKey: stock,
				RowGen: func(i int) schema.Row {
					return schema.Row{int64(i), int64(i) / int64(items), int64(i) % int64(items), int64(50), int64(0), int64(0)}
				},
			},
		},
		Graphs: tpccGraphs(),
		ClassWeights: func(vclock.Nanos) map[string]float64 {
			return mix
		},
	}

	// One order-id sequence per district, as in TPC-C's d_next_o_id.
	orderSeqs := make([]atomic.Int64, districts)
	for d := range orderSeqs {
		orderSeqs[d].Store(tpccInitialOrdersPerDist)
	}
	nextOrder := func(dist int64) int64 {
		seq := orderSeqs[dist].Add(1) % tpccOrderRangePerDistrict
		return orderKey(dist, seq)
	}

	wl.Generate = func(ctx *GenContext) *Transaction {
		class := pickWeighted(ctx.Rng, mix)
		wh := ctx.Rng.Int63n(w)
		dist := wh*tpccDistrictsPerWarehouse + ctx.Rng.Int63n(tpccDistrictsPerWarehouse)
		cust := dist*int64(custPerDist) + ctx.Rng.Int63n(int64(custPerDist))
		switch class {
		case TPCCPayment:
			hID := cust*4 + ctx.Rng.Int63n(4)
			return &Transaction{
				Class: class,
				Actions: []Action{
					{Table: "Warehouse", Op: Update, Key: schema.KeyFromInt(wh)},
					{Table: "District", Op: Update, Key: schema.KeyFromInt(dist)},
					{Table: "Customer", Op: Update, Key: schema.KeyFromInt(cust)},
					{Table: "History", Op: Insert, Key: schema.KeyFromInt(hID), Row: schema.Row{hID, cust, dist, int64(10)}},
				},
				SyncPoints: []SyncPoint{
					{Actions: []int{0, 1}, Bytes: 16},
					{Actions: []int{2, 3}, Bytes: 32},
				},
			}
		case TPCCOrderStatus:
			order := orderKey(dist, ctx.Rng.Int63n(int64(tpccInitialOrdersPerDist)))
			t := &Transaction{Class: class, ReadOnly: true}
			t.Actions = append(t.Actions,
				Action{Table: "Customer", Op: Read, Key: schema.KeyFromInt(cust)},
				Action{Table: "Order", Op: Read, Key: schema.KeyFromInt(order)},
			)
			lines := 5 + ctx.Rng.Int63n(11)
			for l := int64(0); l < lines; l++ {
				t.Actions = append(t.Actions, Action{Table: "OrderLine", Op: Read, Key: schema.KeyFromInt(order*15 + l%10)})
			}
			t.SyncPoints = []SyncPoint{{Actions: []int{0, 1}, Bytes: 32}, {Actions: seq(1, len(t.Actions)), Bytes: 24 * int(lines)}}
			return t
		case TPCCDelivery:
			t := &Transaction{Class: class}
			base := wh * tpccDistrictsPerWarehouse
			for d := int64(0); d < tpccDistrictsPerWarehouse; d++ {
				dst := base + d
				order := orderKey(dst, ctx.Rng.Int63n(int64(tpccInitialOrdersPerDist)))
				custD := dst*int64(custPerDist) + ctx.Rng.Int63n(int64(custPerDist))
				t.Actions = append(t.Actions,
					Action{Table: "NewOrder", Op: Delete, Key: schema.KeyFromInt(order)},
					Action{Table: "Order", Op: Update, Key: schema.KeyFromInt(order)},
					Action{Table: "OrderLine", Op: Update, Key: schema.KeyFromInt(order * 15)},
					Action{Table: "Customer", Op: Update, Key: schema.KeyFromInt(custD)},
				)
			}
			t.SyncPoints = []SyncPoint{{Actions: seq(0, len(t.Actions)), Bytes: 200}}
			return t
		case TPCCStockLevel:
			t := &Transaction{Class: class, ReadOnly: true}
			t.Actions = append(t.Actions, Action{Table: "District", Op: Read, Key: schema.KeyFromInt(dist)})
			order := orderKey(dist, 20+ctx.Rng.Int63n(int64(tpccInitialOrdersPerDist)-20))
			for l := int64(0); l < 20; l++ {
				t.Actions = append(t.Actions, Action{Table: "OrderLine", Op: Read, Key: schema.KeyFromInt((order-l%20)*15 + l%10)})
			}
			for l := int64(0); l < 20; l++ {
				item := ctx.Rng.Int63n(int64(items))
				t.Actions = append(t.Actions, Action{Table: "Stock", Op: Read, Key: schema.KeyFromInt(wh*int64(items) + item)})
			}
			t.SyncPoints = []SyncPoint{
				{Actions: seq(0, 21), Bytes: 160},
				{Actions: seq(21, len(t.Actions)), Bytes: 160},
			}
			return t
		default: // NewOrder
			t := &Transaction{Class: TPCCNewOrder}
			// Fixed part.
			t.Actions = append(t.Actions,
				Action{Table: "Warehouse", Op: Read, Key: schema.KeyFromInt(wh)},
				Action{Table: "Customer", Op: Read, Key: schema.KeyFromInt(cust)},
				Action{Table: "District", Op: Read, Key: schema.KeyFromInt(dist)},
				Action{Table: "District", Op: Update, Key: schema.KeyFromInt(dist)},
			)
			fixedEnd := len(t.Actions)
			// Variable part: 5-15 items.
			lines := 5 + ctx.Rng.Int63n(11)
			oID := nextOrder(dist)
			var itemActs, stockActs []int
			for l := int64(0); l < lines; l++ {
				item := ctx.Rng.Int63n(int64(items))
				itemActs = append(itemActs, len(t.Actions))
				t.Actions = append(t.Actions, Action{Table: "Item", Op: Read, Key: schema.KeyFromInt(item)})
				stockKey := wh*int64(items) + item
				stockActs = append(stockActs, len(t.Actions))
				t.Actions = append(t.Actions,
					Action{Table: "Stock", Op: Read, Key: schema.KeyFromInt(stockKey)},
					Action{Table: "Stock", Op: Update, Key: schema.KeyFromInt(stockKey)},
				)
			}
			insStart := len(t.Actions)
			t.Actions = append(t.Actions,
				Action{Table: "Order", Op: Insert, Key: schema.KeyFromInt(oID), Row: schema.Row{oID, dist, wh, cust, lines}},
				Action{Table: "NewOrder", Op: Insert, Key: schema.KeyFromInt(oID), Row: schema.Row{oID, dist, wh}},
			)
			for l := int64(0); l < lines; l++ {
				olID := oID*15 + l
				t.Actions = append(t.Actions, Action{Table: "OrderLine", Op: Insert, Key: schema.KeyFromInt(olID),
					Row: schema.Row{olID, oID, dist, ctx.Rng.Int63n(int64(items)), int64(42)}})
			}
			// The four synchronization points of Figure 7.
			t.SyncPoints = []SyncPoint{
				{Actions: seq(0, fixedEnd), Bytes: 64},
				{Actions: append([]int{3}, insStart, insStart+1), Bytes: 48},
				{Actions: append(append([]int(nil), itemActs...), stockActs...), Bytes: 24 * int(lines)},
				{Actions: seq(insStart, len(t.Actions)), Bytes: 32 * int(lines)},
			}
			return t
		}
	}
	return wl, nil
}

// MustTPCC is TPCC but panics on configuration errors.
func MustTPCC(opts TPCCOptions) *Workload {
	w, err := TPCC(opts)
	if err != nil {
		panic(err)
	}
	return w
}

func seq(from, to int) []int {
	if to <= from {
		return nil
	}
	out := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, i)
	}
	return out
}

func tpccGraphs() map[string]*FlowGraph {
	return map[string]*FlowGraph{
		TPCCNewOrder: {
			Class: TPCCNewOrder,
			Nodes: []FlowNode{
				{Table: "Warehouse", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "Customer", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "District", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "District", Op: Update, MinCount: 1, MaxCount: 1},
				{Table: "Item", Op: Read, MinCount: 5, MaxCount: 15},
				{Table: "Stock", Op: Read, MinCount: 5, MaxCount: 15},
				{Table: "Stock", Op: Update, MinCount: 5, MaxCount: 15},
				{Table: "Order", Op: Insert, MinCount: 1, MaxCount: 1},
				{Table: "NewOrder", Op: Insert, MinCount: 1, MaxCount: 1},
				{Table: "OrderLine", Op: Insert, MinCount: 5, MaxCount: 15},
			},
			Syncs: []FlowSync{
				{Nodes: []int{0, 1, 2, 3}, Bytes: 64},
				{Nodes: []int{3, 7, 8}, Bytes: 48},
				{Nodes: []int{4, 5, 6}, Bytes: 240},
				{Nodes: []int{7, 8, 9}, Bytes: 320},
			},
		},
		TPCCPayment: {
			Class: TPCCPayment,
			Nodes: []FlowNode{
				{Table: "Warehouse", Op: Update, MinCount: 1, MaxCount: 1},
				{Table: "District", Op: Update, MinCount: 1, MaxCount: 1},
				{Table: "Customer", Op: Update, MinCount: 1, MaxCount: 1},
				{Table: "History", Op: Insert, MinCount: 1, MaxCount: 1},
			},
			Syncs: []FlowSync{{Nodes: []int{0, 1}, Bytes: 16}, {Nodes: []int{2, 3}, Bytes: 32}},
		},
		TPCCOrderStatus: {
			Class: TPCCOrderStatus,
			Nodes: []FlowNode{
				{Table: "Customer", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "Order", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "OrderLine", Op: Read, MinCount: 5, MaxCount: 15},
			},
			Syncs: []FlowSync{{Nodes: []int{0, 1}, Bytes: 32}, {Nodes: []int{1, 2}, Bytes: 240}},
		},
		TPCCDelivery: {
			Class: TPCCDelivery,
			Nodes: []FlowNode{
				{Table: "NewOrder", Op: Delete, MinCount: 10, MaxCount: 10},
				{Table: "Order", Op: Update, MinCount: 10, MaxCount: 10},
				{Table: "OrderLine", Op: Update, MinCount: 10, MaxCount: 10},
				{Table: "Customer", Op: Update, MinCount: 10, MaxCount: 10},
			},
			Syncs: []FlowSync{{Nodes: []int{0, 1, 2, 3}, Bytes: 200}},
		},
		TPCCStockLevel: {
			Class: TPCCStockLevel,
			Nodes: []FlowNode{
				{Table: "District", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "OrderLine", Op: Read, MinCount: 20, MaxCount: 20},
				{Table: "Stock", Op: Read, MinCount: 20, MaxCount: 20},
			},
			Syncs: []FlowSync{{Nodes: []int{0, 1}, Bytes: 160}, {Nodes: []int{1, 2}, Bytes: 160}},
		},
	}
}

// NewOrderFlowGraph returns the TPC-C NewOrder flow graph of the paper's
// Figure 7, for display by examples and the harness.
func NewOrderFlowGraph() *FlowGraph {
	return tpccGraphs()[TPCCNewOrder]
}
