package workload

import (
	"math/rand"
	"testing"
)

// TestYCSBMixes checks each mix's read share, site-locality and shape: every
// transaction is exactly one single-row action inside the generating site's
// own key range.
func TestYCSBMixes(t *testing.T) {
	const rows = 8000
	cases := []struct {
		mix     YCSBMix
		name    string
		readPct int
	}{
		{YCSBA, "ycsb-a", 50},
		{YCSBB, "ycsb-b", 95},
		{YCSBC, "ycsb-c", 100},
	}
	for _, tc := range cases {
		w := YCSB(rows, tc.mix)
		if w.Name != tc.name {
			t.Fatalf("mix %v name = %q, want %q", tc.mix, w.Name, tc.name)
		}
		weights := w.ClassWeights(0)
		if got := weights["YCSBRead"]; got != float64(tc.readPct) {
			t.Fatalf("%s read weight = %v, want %d", tc.name, got, tc.readPct)
		}
		var total float64
		for _, v := range weights {
			total += v
		}
		if total != 100 {
			t.Fatalf("%s class weights sum to %v, want 100", tc.name, total)
		}

		gc := &GenContext{Rng: rand.New(rand.NewSource(7)), HomeSite: 2, NumSites: 4}
		lo, hi := siteKeyRange(rows, 2, 4)
		const n = 4000
		reads := 0
		for i := 0; i < n; i++ {
			tx := w.Generate(gc)
			if len(tx.Actions) != 1 {
				t.Fatalf("%s txn has %d actions, want 1", tc.name, len(tx.Actions))
			}
			a := tx.Actions[0]
			switch a.Op {
			case Read:
				reads++
				if !tx.ReadOnly {
					t.Fatalf("%s read txn not marked read-only", tc.name)
				}
			case Update:
				if tx.ReadOnly {
					t.Fatalf("%s update txn marked read-only", tc.name)
				}
			default:
				t.Fatalf("%s unexpected op %v", tc.name, a.Op)
			}
			if k := int64(a.Key); k < lo || k >= hi {
				t.Fatalf("%s key %d escapes site range [%d,%d)", tc.name, k, lo, hi)
			}
			if tx.MultiSite {
				t.Fatalf("%s generated a multisite txn", tc.name)
			}
		}
		gotPct := 100 * float64(reads) / n
		if gotPct < float64(tc.readPct)-3 || gotPct > float64(tc.readPct)+3 {
			t.Errorf("%s measured %.1f%% reads, want ~%d%%", tc.name, gotPct, tc.readPct)
		}
	}
}

// TestYCSBDeterministic: same seed, same stream.
func TestYCSBDeterministic(t *testing.T) {
	w := YCSB(4000, YCSBA)
	a := &GenContext{Rng: rand.New(rand.NewSource(99)), HomeSite: 1, NumSites: 2}
	b := &GenContext{Rng: rand.New(rand.NewSource(99)), HomeSite: 1, NumSites: 2}
	for i := 0; i < 500; i++ {
		ta, tb := w.Generate(a), w.Generate(b)
		if ta.Class != tb.Class || len(ta.Actions) != len(tb.Actions) ||
			ta.Actions[0].Key != tb.Actions[0].Key {
			t.Fatalf("streams diverge at txn %d", i)
		}
	}
}

// TestYCSBZipfSkew: the key distribution must concentrate on the low end of
// the site range (the hot set), not be uniform.
func TestYCSBZipfSkew(t *testing.T) {
	const rows = 8000
	w := YCSB(rows, YCSBC)
	gc := &GenContext{Rng: rand.New(rand.NewSource(3)), HomeSite: 0, NumSites: 1}
	const n = 4000
	low := 0
	for i := 0; i < n; i++ {
		tx := w.Generate(gc)
		if int64(tx.Actions[0].Key) < rows/10 {
			low++
		}
	}
	// A uniform draw would put ~10% in the first decile; the zipf draw puts
	// well over half there.
	if float64(low)/n < 0.5 {
		t.Errorf("first decile got %.1f%% of draws, want > 50%% under zipf skew", 100*float64(low)/n)
	}
}
