package workload

import (
	"math/rand"
	"testing"

	"atrapos/internal/vclock"
)

// TestPickClassMatchesPickWeighted pins the compiled mix chooser to the
// reference implementation: for the same random stream both must select the
// same class sequence, so swapping the hot path in did not change any seeded
// workload.
func TestPickClassMatchesPickWeighted(t *testing.T) {
	weights := TATPStandardMix()
	ref := rand.New(rand.NewSource(1))
	ctx := &GenContext{Rng: rand.New(rand.NewSource(1))}
	for i := 0; i < 2000; i++ {
		want := pickWeighted(ref, weights)
		got := ctx.PickClass(weights)
		if got != want {
			t.Fatalf("pick %d: compiled chooser chose %q, reference chose %q", i, got, want)
		}
	}
}

// TestPickClassEdgeCases mirrors the pickWeighted edge cases.
func TestPickClassEdgeCases(t *testing.T) {
	ctx := &GenContext{Rng: rand.New(rand.NewSource(2))}
	if got := ctx.PickClass(map[string]float64{}); got != "" {
		t.Errorf("empty mix should pick nothing, got %q", got)
	}
	if got := ctx.PickClass(map[string]float64{"x": 0}); got != "" {
		t.Errorf("all-zero mix should pick nothing, got %q", got)
	}
	only := map[string]float64{"solo": 3}
	if got := ctx.PickClass(only); got != "solo" {
		t.Errorf("single-class mix picked %q", got)
	}
}

// TestTransactionBuilderReuse checks that the reusable transaction builder
// produces correct contents across reuse: sync points built after a Reset
// must not leak indices from the previous generation, and the backing arrays
// must actually be reused once grown.
func TestTransactionBuilderReuse(t *testing.T) {
	ctx := &GenContext{Rng: rand.New(rand.NewSource(3))}

	tx := ctx.Txn("first")
	tx.Add("A", Read, 1)
	tx.Add("B", Update, 2)
	tx.Add("C", Read, 3)
	tx.AddSync(16, 0, 1)
	tx.AddSyncRange(32, 1, 3)
	if len(tx.Actions) != 3 || len(tx.SyncPoints) != 2 {
		t.Fatalf("unexpected shape: %d actions, %d syncs", len(tx.Actions), len(tx.SyncPoints))
	}
	if got := tx.SyncPoints[0].Actions; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("sync 0 actions = %v", got)
	}
	if got := tx.SyncPoints[1].Actions; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("sync 1 actions = %v", got)
	}

	actionsCap, syncCap := cap(tx.Actions), cap(tx.SyncPoints)
	tx2 := ctx.Txn("second")
	if tx2 != tx {
		t.Fatal("context should hand out the same reusable transaction")
	}
	if len(tx2.Actions) != 0 || len(tx2.SyncPoints) != 0 || tx2.ReadOnly || tx2.MultiSite {
		t.Errorf("Reset left state behind: %+v", tx2)
	}
	tx2.Add("D", Delete, 9)
	tx2.AddSync(8, 0)
	if cap(tx2.Actions) != actionsCap || cap(tx2.SyncPoints) != syncCap {
		t.Error("reuse should keep the grown backing arrays")
	}
	if got := tx2.SyncPoints[0].Actions; len(got) != 1 || got[0] != 0 {
		t.Errorf("sync after reuse = %v", got)
	}
	if tx2.Class != "second" || tx2.Actions[0].Table != "D" {
		t.Errorf("content after reuse = %+v", tx2)
	}
}

// TestGeneratorsProduceStableShapes runs every built-in workload generator
// through a reused context and checks the class shapes stay well-formed (sync
// point indices in range, actions non-empty) across many reuses.
func TestGeneratorsProduceStableShapes(t *testing.T) {
	wls := []*Workload{
		SingleRowRead(500),
		ReadHundred(2000),
		MultisiteUpdate(500, 50),
		TwoTableSimple(500),
		MustTATP(TATPOptions{Subscribers: 500}),
		MustTPCC(TPCCOptions{Warehouses: 2, CustomersPerDistrict: 20, Items: 200}),
	}
	for _, wl := range wls {
		ctx := &GenContext{Rng: rand.New(rand.NewSource(7)), NumSites: 4}
		for i := 0; i < 500; i++ {
			ctx.At = vclock.Nanos(i) * 1000
			tx := wl.Generate(ctx)
			if len(tx.Actions) == 0 {
				t.Fatalf("%s: empty transaction at %d", wl.Name, i)
			}
			for si, sp := range tx.SyncPoints {
				if len(sp.Actions) == 0 {
					t.Fatalf("%s: empty sync point %d in class %s", wl.Name, si, tx.Class)
				}
				for _, ai := range sp.Actions {
					if ai < 0 || ai >= len(tx.Actions) {
						t.Fatalf("%s: sync point %d of class %s references action %d of %d",
							wl.Name, si, tx.Class, ai, len(tx.Actions))
					}
				}
			}
		}
	}
}
