package workload

import (
	"math/rand"
	"testing"
)

// hotFraction counts how often Pick lands in [lo, hi) at virtual time at.
func hotFraction(s Skew, rng *rand.Rand, maxKey, lo, hi int64, at int64) float64 {
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if k := s.Pick(rng, maxKey, Seconds(float64(at))); k >= lo && k < hi {
			hits++
		}
	}
	return float64(hits) / n
}

func TestSkewDriftMovesHotWindow(t *testing.T) {
	s := Skew{HotDataFraction: 0.1, HotAccessFraction: 0.8, DriftPeriod: Seconds(10)}
	rng := rand.New(rand.NewSource(7))
	const maxKey = 1000

	// During the first period the hot window is [0, 100).
	if f := hotFraction(s, rng, maxKey, 0, 100, 5); f < 0.7 {
		t.Errorf("first-window hot fraction = %.3f, want ~0.8", f)
	}
	// One period later the window has shifted to [100, 200) and the original
	// window is cold again.
	if f := hotFraction(s, rng, maxKey, 100, 200, 15); f < 0.7 {
		t.Errorf("second-window hot fraction = %.3f, want ~0.8", f)
	}
	if f := hotFraction(s, rng, maxKey, 0, 100, 15); f > 0.1 {
		t.Errorf("original window should be cold after the drift, got %.3f", f)
	}
	// The drift wraps around the key space: 10 windows of 10% each.
	if f := hotFraction(s, rng, maxKey, 0, 100, 105); f < 0.7 {
		t.Errorf("wrapped-around hot fraction = %.3f, want ~0.8", f)
	}
	// Picks stay in range at every drift position.
	for at := int64(0); at < 200; at += 7 {
		for i := 0; i < 100; i++ {
			if k := s.Pick(rng, maxKey, Seconds(float64(at))); k < 0 || k >= maxKey {
				t.Fatalf("drift pick %d out of range at t=%d", k, at)
			}
		}
	}
}

func TestSkewOscillationTogglesActivity(t *testing.T) {
	s := Skew{HotDataFraction: 0.2, HotAccessFraction: 0.6, OscillatePeriod: Seconds(15)}
	if !s.Active(Seconds(5)) || !s.Active(Seconds(14)) {
		t.Error("skew should be active during the first period")
	}
	if s.Active(Seconds(16)) || s.Active(Seconds(29)) {
		t.Error("skew should be inactive during the second period")
	}
	if !s.Active(Seconds(31)) {
		t.Error("skew should re-activate in the third period")
	}
	rng := rand.New(rand.NewSource(3))
	if f := hotFraction(s, rng, 1000, 0, 200, 5); f < 0.55 {
		t.Errorf("active-phase hot fraction = %.3f, want ~0.6", f)
	}
	if f := hotFraction(s, rng, 1000, 0, 200, 20); f < 0.15 || f > 0.25 {
		t.Errorf("inactive-phase hot fraction = %.3f, want ~0.2 (uniform)", f)
	}
}

func TestDriftAndOscillationWorkloadConstructors(t *testing.T) {
	if _, err := TATPDriftingHotspot(1000, 0); err == nil {
		t.Error("zero period must be rejected")
	}
	if _, err := TATPSkewOscillation(1000, -1); err == nil {
		t.Error("negative period must be rejected")
	}
	w, err := TATPDriftingHotspot(1000, Seconds(10))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "TATP-drifting-hotspot" {
		t.Errorf("name = %q", w.Name)
	}
	w2, err := TATPSkewOscillation(1000, Seconds(15))
	if err != nil {
		t.Fatal(err)
	}
	if w2.Name != "TATP-skew-oscillation" {
		t.Errorf("name = %q", w2.Name)
	}
	// Both generate transactions of the single declared class.
	rng := rand.New(rand.NewSource(1))
	for _, wl := range []*Workload{w, w2} {
		ctx := GenContext{Rng: rng, NumSites: 1}
		tx := wl.Generate(&ctx)
		if tx.Class != TATPGetSubData {
			t.Errorf("%s generated class %q, want %q", wl.Name, tx.Class, TATPGetSubData)
		}
	}
}
