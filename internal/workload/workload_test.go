package workload

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"atrapos/internal/vclock"
)

func ctx(seed int64) *GenContext {
	return &GenContext{Rng: rand.New(rand.NewSource(seed)), NumSites: 1}
}

func TestOpTypeString(t *testing.T) {
	for _, o := range []OpType{Read, Update, Insert, Delete, OpType(9)} {
		if o.String() == "" {
			t.Errorf("op %d has empty string", o)
		}
	}
	if Read.IsWrite() || !Update.IsWrite() || !Insert.IsWrite() || !Delete.IsWrite() {
		t.Error("IsWrite misclassifies operations")
	}
}

func TestPickWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	weights := map[string]float64{"a": 1, "b": 3, "zero": 0}
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[pickWeighted(rng, weights)]++
	}
	if counts["zero"] != 0 {
		t.Error("zero-weight class was picked")
	}
	if counts["b"] <= counts["a"] {
		t.Errorf("weights not respected: %v", counts)
	}
	if pickWeighted(rng, map[string]float64{}) != "" {
		t.Error("empty weights should return empty string")
	}
	if pickWeighted(rng, map[string]float64{"x": 0}) != "" {
		t.Error("all-zero weights should return empty string")
	}
}

func TestSkew(t *testing.T) {
	none := Skew{}
	if none.Active(0) {
		t.Error("zero skew should be inactive")
	}
	s := Skew{HotDataFraction: 0.2, HotAccessFraction: 0.5, Start: Seconds(20)}
	if s.Active(Seconds(10)) {
		t.Error("skew should not be active before its start time")
	}
	if !s.Active(Seconds(25)) {
		t.Error("skew should be active after its start time")
	}
	rng := rand.New(rand.NewSource(2))
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Pick(rng, 1000, Seconds(25)) < 200 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("hot fraction = %.3f, want ~0.5", frac)
	}
	// Uniform before the start time.
	hot = 0
	for i := 0; i < n; i++ {
		if s.Pick(rng, 1000, Seconds(5)) < 200 {
			hot++
		}
	}
	frac = float64(hot) / n
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("pre-skew hot fraction = %.3f, want ~0.2", frac)
	}
	if s.Pick(rng, 0, 0) != 0 {
		t.Error("non-positive key space should return 0")
	}
	always := Skew{HotDataFraction: 1, HotAccessFraction: 1}
	if k := always.Pick(rng, 10, 0); k < 0 || k >= 10 {
		t.Errorf("degenerate skew picked %d", k)
	}
}

func TestSkewPickInRangeProperty(t *testing.T) {
	prop := func(seed int64, maxRaw uint16) bool {
		max := int64(maxRaw%1000) + 1
		s := Skew{HotDataFraction: 0.2, HotAccessFraction: 0.8}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			k := s.Pick(rng, max, 0)
			if k < 0 || k >= max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSingleRowRead(t *testing.T) {
	w := SingleRowRead(1000)
	if len(w.Tables) != 1 || w.Tables[0].Rows != 1000 {
		t.Fatalf("unexpected tables: %+v", w.Tables)
	}
	if len(w.TableSpecs()) != 1 || w.TableSpecs()[0].MaxKey != 1000 {
		t.Errorf("TableSpecs = %v", w.TableSpecs())
	}
	tx := w.Generate(ctx(1))
	if !tx.ReadOnly || len(tx.Actions) != 1 || tx.Actions[0].Op != Read {
		t.Errorf("unexpected transaction %+v", tx)
	}
	if len(tx.Tables()) != 1 {
		t.Errorf("Tables() = %v", tx.Tables())
	}
	if _, ok := w.Graph("ReadOne"); !ok {
		t.Error("missing flow graph")
	}
	if _, ok := w.Graph("nope"); ok {
		t.Error("unexpected flow graph")
	}
	if _, ok := w.TableDef("mbr"); !ok {
		t.Error("missing table def")
	}
	if _, ok := w.TableDef("nope"); ok {
		t.Error("unexpected table def")
	}
	if len(w.Classes()) != 1 {
		t.Errorf("Classes = %v", w.Classes())
	}
	if w.ClassWeights(0)["ReadOne"] != 1 {
		t.Error("class weights should be 1 for the only class")
	}
	// Row generator produces valid rows for the schema.
	row := w.Tables[0].RowGen(5)
	if len(row) != len(w.Tables[0].Schema.Columns) {
		t.Errorf("row has %d values for %d columns", len(row), len(w.Tables[0].Schema.Columns))
	}
}

func TestReadHundred(t *testing.T) {
	w := ReadHundred(10000)
	tx := w.Generate(ctx(3))
	if len(tx.Actions) != 100 || !tx.ReadOnly {
		t.Errorf("Read100 generated %d actions", len(tx.Actions))
	}
}

func TestMultisiteUpdate(t *testing.T) {
	w := MultisiteUpdate(8000, 50)
	local, multi := 0, 0
	gen := &GenContext{Rng: rand.New(rand.NewSource(4)), HomeSite: 2, NumSites: 8}
	for i := 0; i < 2000; i++ {
		tx := w.Generate(gen)
		if len(tx.Actions) != 10 {
			t.Fatalf("transaction has %d actions, want 10", len(tx.Actions))
		}
		if tx.MultiSite {
			multi++
			if len(tx.SyncPoints) != 1 {
				t.Error("multi-site transaction should have a sync point")
			}
		} else {
			local++
			// Local transactions only touch the home site's key range.
			for _, a := range tx.Actions {
				id := a.Key.Int()
				if id < 2000 || id >= 3000 {
					t.Fatalf("local transaction touched key %d outside home range [2000,3000)", id)
				}
			}
		}
	}
	if multi < 800 || multi > 1200 {
		t.Errorf("multi-site fraction off: %d of 2000", multi)
	}
	// Percentage clamping and single-site degenerate case.
	w0 := MultisiteUpdate(100, -5)
	if tx := w0.Generate(ctx(1)); tx.MultiSite {
		t.Error("0%% multi-site should never generate multi-site transactions")
	}
	w100 := MultisiteUpdate(100, 300)
	if tx := w100.Generate(ctx(1)); !tx.MultiSite {
		t.Error("100%% multi-site should always generate multi-site transactions")
	}
	if got := w.ClassWeights(0)["UpdateMultiSite"]; got != 50 {
		t.Errorf("class weight = %f", got)
	}
}

func TestTwoTableSimple(t *testing.T) {
	w := TwoTableSimple(500)
	tx := w.Generate(ctx(5))
	if len(tx.Actions) != 2 || tx.Actions[0].Table != "A" || tx.Actions[1].Table != "B" {
		t.Errorf("unexpected actions %+v", tx.Actions)
	}
	if tx.Actions[0].Key != tx.Actions[1].Key {
		t.Error("A and B should be probed with the same id")
	}
	if len(tx.SyncPoints) != 1 || len(tx.SyncPoints[0].Actions) != 2 {
		t.Error("missing sync point")
	}
	// Table B declares its dependency on A.
	def, _ := w.TableDef("B")
	if len(def.Schema.ForeignKeys) != 1 || def.Schema.ForeignKeys[0].RefTable != "A" {
		t.Error("B should reference A")
	}
}

func TestTATPValidation(t *testing.T) {
	if _, err := TATP(TATPOptions{Subscribers: 0}); err == nil {
		t.Error("zero subscribers should fail")
	}
	if _, err := TATP(TATPOptions{Subscribers: 100, Mix: map[string]float64{"Nope": 1}}); err == nil {
		t.Error("unknown class should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTATP should panic on bad options")
		}
	}()
	MustTATP(TATPOptions{})
}

func TestTATPGeneratesAllClasses(t *testing.T) {
	w := MustTATP(TATPOptions{Subscribers: 1000})
	if len(w.Tables) != 4 {
		t.Fatalf("TATP has %d tables", len(w.Tables))
	}
	if len(w.Classes()) != 7 {
		t.Errorf("TATP has %d classes", len(w.Classes()))
	}
	gen := ctx(7)
	seen := map[string]int{}
	for i := 0; i < 5000; i++ {
		tx := w.Generate(gen)
		seen[tx.Class]++
		if len(tx.Actions) == 0 {
			t.Fatal("empty transaction")
		}
		for _, a := range tx.Actions {
			if a.Key.Int() < 0 {
				t.Fatalf("negative key in %s", tx.Class)
			}
		}
		g, ok := w.Graph(tx.Class)
		if !ok {
			t.Fatalf("class %s has no flow graph", tx.Class)
		}
		if len(g.TableCounts()) == 0 {
			t.Fatal("empty table counts")
		}
	}
	for _, class := range []string{TATPGetSubData, TATPGetNewDest, TATPGetAccData, TATPUpdSubData, TATPUpdLocation} {
		if seen[class] == 0 {
			t.Errorf("class %s never generated", class)
		}
	}
	// GetSubData and GetAccData dominate the standard mix.
	if seen[TATPGetSubData] < seen[TATPUpdSubData] {
		t.Error("mix weights not respected")
	}
	// Single-class mix generates only that class.
	w2 := MustTATP(TATPOptions{Subscribers: 100, Mix: map[string]float64{TATPGetNewDest: 1}})
	for i := 0; i < 50; i++ {
		if tx := w2.Generate(gen); tx.Class != TATPGetNewDest {
			t.Fatalf("unexpected class %s", tx.Class)
		}
	}
	// Row generators are schema-compatible.
	for _, td := range w.Tables {
		row := td.RowGen(3)
		if len(row) != len(td.Schema.Columns) {
			t.Errorf("table %s: row has %d values for %d columns", td.Schema.Name, len(row), len(td.Schema.Columns))
		}
	}
}

func TestTATPRowGeneratorsAlignWithSubscriber(t *testing.T) {
	w := MustTATP(TATPOptions{Subscribers: 100})
	ai, _ := w.TableDef("AccessInfo")
	row := ai.RowGen(41)
	if row[0].(int64) != 41 || row[1].(int64) != 10 {
		t.Errorf("AccessInfo row 41 = %v", row)
	}
	cf, _ := w.TableDef("CallForwarding")
	row = cf.RowGen(10)
	// i=10: s_id=2, sf_type=3, start=(80)%24=8 -> cf_id=2*96+2*24+8=248.
	if row[0].(int64) != 248 {
		t.Errorf("CallForwarding surrogate key = %v", row[0])
	}
}

func TestTPCCValidationAndGeneration(t *testing.T) {
	if _, err := TPCC(TPCCOptions{Warehouses: 0}); err == nil {
		t.Error("zero warehouses should fail")
	}
	if _, err := TPCC(TPCCOptions{Warehouses: 1, Mix: map[string]float64{"Nope": 1}}); err == nil {
		t.Error("unknown class should fail")
	}
	w := MustTPCC(TPCCOptions{Warehouses: 2, CustomersPerDistrict: 30, Items: 1000})
	if len(w.Tables) != 9 {
		t.Fatalf("TPC-C has %d tables, want 9", len(w.Tables))
	}
	if len(w.Classes()) != 5 {
		t.Errorf("TPC-C has %d classes", len(w.Classes()))
	}
	gen := ctx(11)
	seen := map[string]int{}
	for i := 0; i < 3000; i++ {
		tx := w.Generate(gen)
		seen[tx.Class]++
		if len(tx.Actions) == 0 {
			t.Fatal("empty transaction")
		}
		// Every TPC-C transaction touches at least 3 tables except Payment
		// variants; all touch at least 2.
		if len(tx.Tables()) < 2 {
			t.Errorf("%s touches only %v", tx.Class, tx.Tables())
		}
		if len(tx.SyncPoints) == 0 {
			t.Errorf("%s has no sync points", tx.Class)
		}
	}
	for class := range TPCCStandardMix() {
		if seen[class] == 0 {
			t.Errorf("class %s never generated", class)
		}
	}
	// NewOrder structure: 5-15 order lines, 4 sync points.
	w2 := MustTPCC(TPCCOptions{Warehouses: 1, CustomersPerDistrict: 30, Items: 500, Mix: map[string]float64{TPCCNewOrder: 1}})
	for i := 0; i < 50; i++ {
		tx := w2.Generate(gen)
		if tx.Class != TPCCNewOrder {
			t.Fatal("mix ignored")
		}
		if len(tx.SyncPoints) != 4 {
			t.Errorf("NewOrder has %d sync points, want 4", len(tx.SyncPoints))
		}
		var orderLines int
		for _, a := range tx.Actions {
			if a.Table == "OrderLine" && a.Op == Insert {
				orderLines++
			}
		}
		if orderLines < 5 || orderLines > 15 {
			t.Errorf("NewOrder inserted %d order lines", orderLines)
		}
	}
	// Row generators are schema-compatible.
	for _, td := range w.Tables {
		row := td.RowGen(7)
		if len(row) != len(td.Schema.Columns) {
			t.Errorf("table %s: row width mismatch", td.Schema.Name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTPCC should panic on bad options")
		}
	}()
	MustTPCC(TPCCOptions{})
}

func TestNewOrderFlowGraph(t *testing.T) {
	g := NewOrderFlowGraph()
	if g.Class != TPCCNewOrder {
		t.Fatalf("class = %s", g.Class)
	}
	if len(g.Nodes) != 10 {
		t.Errorf("NewOrder flow graph has %d nodes", len(g.Nodes))
	}
	if len(g.Syncs) != 4 {
		t.Errorf("NewOrder flow graph has %d sync points, want 4", len(g.Syncs))
	}
	counts := g.TableCounts()
	if counts["Item"] != 10 {
		t.Errorf("expected ~10 Item accesses, got %f", counts["Item"])
	}
	s := g.String()
	if !strings.Contains(s, "I(OrderLine) x(5-15)") || !strings.Contains(s, "sync") {
		t.Errorf("flow graph rendering missing pieces:\n%s", s)
	}
}

func TestSchedule(t *testing.T) {
	if _, err := Schedule(nil); err == nil {
		t.Error("empty schedule should fail")
	}
	if _, err := Schedule([]Phase{{Duration: 0, Mix: map[string]float64{"a": 1}}}); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := Schedule([]Phase{{Duration: Seconds(1)}}); err == nil {
		t.Error("empty mix should fail")
	}
	phases := []Phase{
		{Label: "A", Duration: Seconds(10), Mix: map[string]float64{"a": 1}},
		{Label: "B", Duration: Seconds(20), Mix: map[string]float64{"b": 1}},
	}
	mixAt, err := Schedule(phases)
	if err != nil {
		t.Fatal(err)
	}
	if mixAt(Seconds(5))["a"] != 1 {
		t.Error("phase A should be active at t=5s")
	}
	if mixAt(Seconds(15))["b"] != 1 {
		t.Error("phase B should be active at t=15s")
	}
	// Cycles after the last phase.
	if mixAt(Seconds(35))["a"] != 1 {
		t.Error("schedule should cycle back to phase A at t=35s")
	}
	if mixAt(-5)["a"] != 1 {
		t.Error("negative times clamp to the first phase")
	}
	if PhaseLabelAt(phases, Seconds(15)) != "B" {
		t.Error("PhaseLabelAt mismatch")
	}
	if PhaseLabelAt(phases, Seconds(95)) == "" {
		t.Error("PhaseLabelAt should cycle")
	}
	if PhaseLabelAt(nil, 0) != "" {
		t.Error("empty phases should return empty label")
	}
	if PhaseLabelAt([]Phase{{Label: "X"}}, Seconds(1)) != "X" {
		t.Error("zero-duration phases fall back to the first label")
	}
}

func TestDynamicScenarios(t *testing.T) {
	w, phases, err := TATPWorkloadChange(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Errorf("workload change has %d phases", len(phases))
	}
	gen := ctx(13)
	gen.At = Seconds(5)
	if tx := w.Generate(gen); tx.Class != TATPUpdSubData {
		t.Errorf("phase 1 generated %s", tx.Class)
	}
	gen.At = Seconds(35)
	if tx := w.Generate(gen); tx.Class != TATPGetNewDest {
		t.Errorf("phase 2 generated %s", tx.Class)
	}

	w2, phases2, err := TATPFrequentChanges(1000, Seconds(15))
	if err != nil {
		t.Fatal(err)
	}
	if len(phases2) != 2 {
		t.Errorf("frequent changes has %d phases", len(phases2))
	}
	gen.At = Seconds(5)
	if tx := w2.Generate(gen); tx.Class != TATPGetNewDest {
		t.Errorf("workload A generated %s", tx.Class)
	}

	w3, err := TATPSuddenSkew(1000, Seconds(20))
	if err != nil {
		t.Fatal(err)
	}
	gen.At = Seconds(25)
	hot := 0
	for i := 0; i < 3000; i++ {
		tx := w3.Generate(gen)
		if tx.Class != TATPGetSubData {
			t.Fatalf("skew scenario generated %s", tx.Class)
		}
		if tx.Actions[0].Key.Int() < 200 {
			hot++
		}
	}
	if hot < 1200 {
		t.Errorf("post-skew hot accesses = %d of 3000, want roughly half", hot)
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(1.5) != vclock.Nanos(1_500_000_000) {
		t.Errorf("Seconds(1.5) = %d", Seconds(1.5))
	}
}
