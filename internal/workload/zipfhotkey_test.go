package workload

import (
	"math/rand"
	"testing"
)

// TestZipfHotkeyShape checks the class mix, self-canceling churn pairs,
// within-transaction overwrite pairs, site-locality of single-site keys and
// per-seed determinism of the zipf-hotkey generator.
func TestZipfHotkeyShape(t *testing.T) {
	const rows = 8000
	w := ZipfHotkey(rows, 20, 30)
	if w.Name != "zipf-hotkey" {
		t.Fatalf("name = %q", w.Name)
	}
	weights := w.ClassWeights(0)
	var total float64
	for _, v := range weights {
		total += v
	}
	if total < 99.9 || total > 100.1 {
		t.Fatalf("class weights sum to %f, want 100", total)
	}

	gc := &GenContext{Rng: rand.New(rand.NewSource(7)), HomeSite: 2, NumSites: 4}
	lo, hi := siteKeyRange(rows, 2, 4)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		tx := w.Generate(gc)
		counts[tx.Class]++
		switch tx.Class {
		case "ZipfChurnPair":
			if len(tx.Actions) != 4 || tx.MultiSite {
				t.Fatalf("churn txn shape: %d actions, multisite=%v", len(tx.Actions), tx.MultiSite)
			}
			for p := 0; p < 4; p += 2 {
				del, ins := tx.Actions[p], tx.Actions[p+1]
				if del.Op != Delete || ins.Op != Insert || del.Key != ins.Key {
					t.Fatalf("churn pair %d not self-canceling: %v then %v", p/2, del, ins)
				}
			}
		case "ZipfHotUpdate":
			if len(tx.Actions) != 10 || tx.MultiSite {
				t.Fatalf("hot txn shape: %d actions, multisite=%v", len(tx.Actions), tx.MultiSite)
			}
			for p := 0; p < 10; p += 2 {
				if tx.Actions[p].Key != tx.Actions[p+1].Key {
					t.Fatalf("hot txn pair %d does not overwrite itself", p/2)
				}
			}
		case "ZipfMultiUpdate":
			if !tx.MultiSite || len(tx.Actions) != 10 || len(tx.SyncPoints) == 0 {
				t.Fatalf("multi txn shape: %d actions, multisite=%v, syncs=%d",
					len(tx.Actions), tx.MultiSite, len(tx.SyncPoints))
			}
		default:
			t.Fatalf("unknown class %q", tx.Class)
		}
		// Every single-site key must be served by the generator's home
		// instance, or the engine silently escalates the txn to 2PC.
		if !tx.MultiSite {
			for _, a := range tx.Actions {
				if k := a.Key.Int(); k < lo || k >= hi {
					t.Fatalf("%s key %d outside home range [%d,%d)", tx.Class, k, lo, hi)
				}
			}
		}
	}
	if counts["ZipfChurnPair"] < n/5 || counts["ZipfChurnPair"] > n/2 {
		t.Errorf("churn share off: %d/%d, want ~30%%", counts["ZipfChurnPair"], n)
	}
	if counts["ZipfMultiUpdate"] == 0 || counts["ZipfHotUpdate"] == 0 {
		t.Errorf("missing classes: %v", counts)
	}
}

// TestZipfHotkeyDeterminism: two contexts with the same seed produce the same
// transaction stream — the property every crash-pair drill relies on.
func TestZipfHotkeyDeterminism(t *testing.T) {
	w := ZipfHotkey(4000, 10, 25)
	a := &GenContext{Rng: rand.New(rand.NewSource(99)), HomeSite: 1, NumSites: 2}
	b := &GenContext{Rng: rand.New(rand.NewSource(99)), HomeSite: 1, NumSites: 2}
	for i := 0; i < 500; i++ {
		ta, tb := w.Generate(a), w.Generate(b)
		if ta.Class != tb.Class || len(ta.Actions) != len(tb.Actions) {
			t.Fatalf("txn %d diverged: %s/%d vs %s/%d", i, ta.Class, len(ta.Actions), tb.Class, len(tb.Actions))
		}
		for j := range ta.Actions {
			aj, bj := ta.Actions[j], tb.Actions[j]
			if aj.Op != bj.Op || aj.Key != bj.Key || aj.Table != bj.Table {
				t.Fatalf("txn %d action %d diverged: %v vs %v", i, j, aj, bj)
			}
		}
	}
}

// TestZipfKeySkew: the cheap zipf approximation concentrates mass at the low
// end but still covers the range.
func TestZipfKeySkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const span = 10000
	low, max := 0, int64(0)
	const n = 20000
	for i := 0; i < n; i++ {
		k := zipfKey(rng, span)
		if k < 0 || k >= span {
			t.Fatalf("key %d outside [0,%d)", k, span)
		}
		if k < span/100 {
			low++
		}
		if k > max {
			max = k
		}
	}
	if frac := float64(low) / n; frac < 0.3 {
		t.Errorf("only %.2f of draws hit the first 1%% of keys; want a hot head", frac)
	}
	if max < span/2 {
		t.Errorf("max draw %d never reached the upper half; want full coverage", max)
	}
	if zipfKey(rng, 1) != 0 || zipfKey(rng, 0) != 0 {
		t.Error("degenerate spans should return 0")
	}
}
