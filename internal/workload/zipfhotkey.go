package workload

import (
	"math"
	"math/rand"

	"atrapos/internal/schema"
	"atrapos/internal/vclock"
)

// ZipfHotkey is the group-commit signature workload: updates follow a
// Zipf-like skew so a small hot set absorbs most writes, hot transactions
// re-write the same row twice (overwriting pairs), and a churn class issues
// self-canceling Delete+Insert pairs on one key. All of that is exactly the
// write shape a coalescing WAL accumulator collapses — many logical records,
// few surviving net deltas — while a plain log pays for every record.
//
// rows sizes the table, pctMultiSite (0..100) is the share of non-churn
// transactions that touch remote instances, and churnPct (0..100) is the
// share of all transactions that are churn pairs. Local keys stay inside the
// generating worker's own instance range (siteKeyRange), so churn and hot
// traffic never pay 2PC.
func ZipfHotkey(rows, pctMultiSite, churnPct int) *Workload {
	const (
		hotClass   = "ZipfHotUpdate"
		multiClass = "ZipfMultiUpdate"
		churnClass = "ZipfChurnPair"
	)
	table := "mzipf"
	clamp := func(p int) int {
		if p < 0 {
			return 0
		}
		if p > 100 {
			return 100
		}
		return p
	}
	pctMultiSite = clamp(pctMultiSite)
	churnPct = clamp(churnPct)
	w := &Workload{
		Name: "zipf-hotkey",
		Tables: []TableDef{{
			Schema: tenColumnTable(table),
			Rows:   rows,
			MaxKey: int64(rows),
			RowGen: tenColumnRow,
		}},
		Graphs: map[string]*FlowGraph{
			hotClass: {
				Class: hotClass,
				Nodes: []FlowNode{{Table: table, Op: Update, MinCount: 10, MaxCount: 10}},
			},
			multiClass: {
				Class: multiClass,
				Nodes: []FlowNode{{Table: table, Op: Update, MinCount: 10, MaxCount: 10}},
				Syncs: []FlowSync{{Nodes: []int{0}, Bytes: 88}},
			},
			churnClass: {
				Class: churnClass,
				Nodes: []FlowNode{
					{Table: table, Op: Delete, MinCount: 2, MaxCount: 2},
					{Table: table, Op: Insert, MinCount: 2, MaxCount: 2},
				},
			},
		},
		ClassWeights: func(vclock.Nanos) map[string]float64 {
			churn := float64(churnPct)
			rest := 100 - churn
			return map[string]float64{
				churnClass: churn,
				multiClass: rest * float64(pctMultiSite) / 100,
				hotClass:   rest * float64(100-pctMultiSite) / 100,
			}
		},
	}
	w.Generate = func(ctx *GenContext) *Transaction {
		lo, hi := siteKeyRange(int64(rows), ctx.HomeSite, ctx.NumSites)
		localKey := func() schema.Key {
			return schema.KeyFromInt(lo + zipfKey(ctx.Rng, hi-lo))
		}
		if ctx.Rng.Intn(100) < churnPct {
			// Two self-canceling pairs: Delete then Insert on the same
			// existing row leaves the key present either way, so the pair
			// nets to one Insert under coalescing and two records without.
			t := ctx.Txn(churnClass)
			for i := 0; i < 2; i++ {
				key := localKey()
				t.Add(table, Delete, key)
				t.Add(table, Insert, key)
			}
			return t
		}
		if ctx.Rng.Intn(100) < pctMultiSite {
			t := ctx.Txn(multiClass)
			t.MultiSite = true
			t.Add(table, Update, localKey())
			for i := 0; i < 9; i++ {
				t.Add(table, Update, schema.KeyFromInt(zipfKey(ctx.Rng, int64(rows))))
			}
			t.AddSyncRange(88, 0, len(t.Actions))
			return t
		}
		// Ten updates over five Zipf keys, each written twice: half the
		// writes overwrite the transaction's own earlier write.
		t := ctx.Txn(hotClass)
		for i := 0; i < 5; i++ {
			key := localKey()
			t.Add(table, Update, key)
			t.Add(table, Update, key)
		}
		return t
	}
	return w
}

// zipfKey draws a Zipf-like skewed key in [0, span): the result is
// floor(span^u)-1 for uniform u, which concentrates mass near zero (roughly
// half of all draws land in the first sqrt(span) keys) while still covering
// the whole range. It needs no precomputed tables, so it stays cheap and
// deterministic per seed.
func zipfKey(rng *rand.Rand, span int64) int64 {
	if span <= 1 {
		return 0
	}
	k := int64(math.Pow(float64(span), rng.Float64())) - 1
	if k < 0 {
		k = 0
	}
	if k >= span {
		k = span - 1
	}
	return k
}
