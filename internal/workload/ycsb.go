package workload

import (
	"atrapos/internal/schema"
	"atrapos/internal/vclock"
)

// YCSBMix names one of the YCSB core mixes reproduced here: single-row
// operations over a skewed key distribution, with the read share the only
// knob that differs between mixes.
type YCSBMix int

const (
	// YCSBA is the update-heavy mix: 50% reads, 50% updates.
	YCSBA YCSBMix = iota
	// YCSBB is the read-mostly mix: 95% reads, 5% updates.
	YCSBB
	// YCSBC is the read-only mix: 100% reads.
	YCSBC
)

// readPct is the mix's read share in percent; unknown values fall back to
// the update-heavy A mix, the most demanding of the three.
func (m YCSBMix) readPct() int {
	switch m {
	case YCSBB:
		return 95
	case YCSBC:
		return 100
	default:
		return 50
	}
}

func (m YCSBMix) String() string {
	switch m {
	case YCSBB:
		return "ycsb-b"
	case YCSBC:
		return "ycsb-c"
	default:
		return "ycsb-a"
	}
}

// YCSB builds the named YCSB core mix over a rows-sized ten-column table:
// every transaction is one read or one update of a single row, with keys
// drawn Zipf-skewed from the generating worker's own site-local range
// (siteKeyRange), so the workload is perfectly partitionable at any island
// granularity — the contrast to the multisite microbenchmarks. The skew makes
// a small hot set per site absorb most traffic, which is what stresses the
// executed backend's single-owner shards and the coalescing value log.
func YCSB(rows int, mix YCSBMix) *Workload {
	const (
		readClass   = "YCSBRead"
		updateClass = "YCSBUpdate"
	)
	table := "ycsb"
	readPct := mix.readPct()
	w := &Workload{
		Name: mix.String(),
		Tables: []TableDef{{
			Schema: tenColumnTable(table),
			Rows:   rows,
			MaxKey: int64(rows),
			RowGen: tenColumnRow,
		}},
		Graphs: map[string]*FlowGraph{
			readClass: {
				Class: readClass,
				Nodes: []FlowNode{{Table: table, Op: Read, MinCount: 1, MaxCount: 1}},
			},
			updateClass: {
				Class: updateClass,
				Nodes: []FlowNode{{Table: table, Op: Update, MinCount: 1, MaxCount: 1}},
			},
		},
		ClassWeights: func(vclock.Nanos) map[string]float64 {
			return map[string]float64{
				readClass:   float64(readPct),
				updateClass: float64(100 - readPct),
			}
		},
	}
	w.Generate = func(ctx *GenContext) *Transaction {
		lo, hi := siteKeyRange(int64(rows), ctx.HomeSite, ctx.NumSites)
		key := schema.KeyFromInt(lo + zipfKey(ctx.Rng, hi-lo))
		if ctx.Rng.Intn(100) < readPct {
			t := ctx.Txn(readClass)
			t.ReadOnly = true
			t.Add(table, Read, key)
			return t
		}
		t := ctx.Txn(updateClass)
		t.Add(table, Update, key)
		return t
	}
	return w
}
