package workload

import (
	"fmt"

	"atrapos/internal/schema"
	"atrapos/internal/vclock"
)

// TATP transaction class names.
const (
	TATPGetSubData  = "GetSubData"
	TATPGetNewDest  = "GetNewDest"
	TATPGetAccData  = "GetAccData"
	TATPUpdSubData  = "UpdSubData"
	TATPUpdLocation = "UpdLocation"
	TATPInsCallFwd  = "InsCallFwd"
	TATPDelCallFwd  = "DelCallFwd"
)

// TATPStandardMix returns the standard TATP transaction mix.
func TATPStandardMix() map[string]float64 {
	return map[string]float64{
		TATPGetSubData:  35,
		TATPGetNewDest:  10,
		TATPGetAccData:  35,
		TATPUpdSubData:  2,
		TATPUpdLocation: 14,
		TATPInsCallFwd:  2,
		TATPDelCallFwd:  2,
	}
}

// TATPOptions configures the TATP workload.
type TATPOptions struct {
	// Subscribers is the number of rows in the Subscriber table; the paper
	// uses 800,000.
	Subscribers int
	// Mix gives the weight of each transaction class. Nil means the standard
	// TATP mix. A single-entry map runs only that class, as the paper does
	// for the per-transaction results of Figure 8.
	Mix map[string]float64
	// MixAt optionally makes the mix a function of virtual time, overriding
	// Mix, for the adaptivity experiments (Figures 10 and 13).
	MixAt func(at vclock.Nanos) map[string]float64
	// Skew optionally skews the subscriber id distribution (Figure 11).
	Skew Skew
}

// TATP builds the TATP telecom benchmark: 4 tables perfectly partitionable on
// the subscriber id, 7 transaction classes in 3 groups (single-table
// read-only, multi-table read-only, update).
//
// Secondary tables use integer surrogate keys derived from the subscriber id
// (AccessInfo and SpecialFacility: s_id*4 + type; CallForwarding:
// s_id*96 + sf_type*24 + start_hour) so that range partitioning by key aligns
// all four tables on subscriber boundaries.
func TATP(opts TATPOptions) (*Workload, error) {
	if opts.Subscribers <= 0 {
		return nil, fmt.Errorf("workload: TATP needs a positive subscriber count")
	}
	subs := int64(opts.Subscribers)
	mixFn := opts.MixAt
	if mixFn == nil {
		mix := opts.Mix
		if mix == nil {
			mix = TATPStandardMix()
		}
		for class := range mix {
			if _, ok := tatpGraphs()[class]; !ok {
				return nil, fmt.Errorf("workload: unknown TATP class %q", class)
			}
		}
		mixFn = func(vclock.Nanos) map[string]float64 { return mix }
	}

	w := &Workload{
		Name: "TATP",
		Tables: []TableDef{
			{
				Schema: &schema.Table{
					Name: "Subscriber",
					Columns: []schema.Column{
						{Name: "s_id", Type: schema.Int64},
						{Name: "sub_nbr", Type: schema.String},
						{Name: "bit_1", Type: schema.Int64},
						{Name: "msc_location", Type: schema.Int64},
						{Name: "vlr_location", Type: schema.Int64},
					},
					PrimaryKey: []string{"s_id"},
				},
				Rows:   opts.Subscribers,
				MaxKey: subs,
				RowGen: func(i int) schema.Row {
					return schema.Row{int64(i), fmt.Sprintf("%015d", i), int64(i % 2), int64(i * 7 % 1000), int64(i * 13 % 1000)}
				},
			},
			{
				Schema: &schema.Table{
					Name: "AccessInfo",
					Columns: []schema.Column{
						{Name: "ai_id", Type: schema.Int64},
						{Name: "s_id", Type: schema.Int64},
						{Name: "ai_type", Type: schema.Int64},
						{Name: "data1", Type: schema.Int64},
					},
					PrimaryKey:  []string{"ai_id"},
					ForeignKeys: []schema.ForeignKey{{Column: "s_id", RefTable: "Subscriber", RefColumn: "s_id"}},
				},
				Rows:   opts.Subscribers * 4,
				MaxKey: subs * 4,
				RowGen: func(i int) schema.Row {
					return schema.Row{int64(i), int64(i / 4), int64(i%4 + 1), int64(i % 256)}
				},
			},
			{
				Schema: &schema.Table{
					Name: "SpecialFacility",
					Columns: []schema.Column{
						{Name: "sf_id", Type: schema.Int64},
						{Name: "s_id", Type: schema.Int64},
						{Name: "sf_type", Type: schema.Int64},
						{Name: "is_active", Type: schema.Int64},
					},
					PrimaryKey:  []string{"sf_id"},
					ForeignKeys: []schema.ForeignKey{{Column: "s_id", RefTable: "Subscriber", RefColumn: "s_id"}},
				},
				Rows:   opts.Subscribers * 4,
				MaxKey: subs * 4,
				RowGen: func(i int) schema.Row {
					return schema.Row{int64(i), int64(i / 4), int64(i%4 + 1), int64(1)}
				},
			},
			{
				Schema: &schema.Table{
					Name: "CallForwarding",
					Columns: []schema.Column{
						{Name: "cf_id", Type: schema.Int64},
						{Name: "s_id", Type: schema.Int64},
						{Name: "sf_type", Type: schema.Int64},
						{Name: "start_hour", Type: schema.Int64},
						{Name: "number_x", Type: schema.String},
					},
					PrimaryKey:  []string{"cf_id"},
					ForeignKeys: []schema.ForeignKey{{Column: "s_id", RefTable: "SpecialFacility", RefColumn: "sf_id"}},
				},
				Rows:   opts.Subscribers * 4, // ~1 forwarding record per facility on average
				MaxKey: subs * 96,
				RowGen: func(i int) schema.Row {
					sID := int64(i / 4)
					sfType := int64(i%4 + 1)
					startHour := int64((i * 8) % 24)
					cfID := sID*96 + (sfType-1)*24 + startHour
					return schema.Row{cfID, sID, sfType, startHour, fmt.Sprintf("%015d", i)}
				},
			},
		},
		Graphs:       tatpGraphs(),
		ClassWeights: mixFn,
	}

	skew := opts.Skew
	w.Generate = func(ctx *GenContext) *Transaction {
		class := ctx.PickClass(mixFn(ctx.At))
		sID := skew.Pick(ctx.Rng, subs, ctx.At)
		subKey := schema.KeyFromInt(sID)
		aiKey := schema.KeyFromInt(sID*4 + ctx.Rng.Int63n(4))
		sfType := ctx.Rng.Int63n(4)
		sfKey := schema.KeyFromInt(sID*4 + sfType)
		startHour := ctx.Rng.Int63n(3) * 8
		cfKey := schema.KeyFromInt(sID*96 + sfType*24 + startHour)

		t := ctx.Txn(class)
		switch class {
		case TATPGetSubData:
			t.ReadOnly = true
			t.Add("Subscriber", Read, subKey)
		case TATPGetAccData:
			t.ReadOnly = true
			t.Add("AccessInfo", Read, aiKey)
		case TATPGetNewDest:
			t.ReadOnly = true
			t.Add("SpecialFacility", Read, sfKey)
			t.Add("CallForwarding", Read, cfKey)
			t.AddSync(48, 0, 1)
		case TATPUpdSubData:
			t.Add("Subscriber", Update, subKey)
			t.Add("SpecialFacility", Update, sfKey)
			t.AddSync(16, 0, 1)
		case TATPUpdLocation:
			t.Add("Subscriber", Update, subKey)
		case TATPInsCallFwd:
			// Inserted rows are retained by the storage layer, so this is the
			// one TATP class whose generation genuinely allocates.
			row := schema.Row{cfKey.Int(), sID, sfType, startHour, "forward"}
			t.Add("Subscriber", Read, subKey)
			t.Add("SpecialFacility", Read, sfKey)
			t.AddRow("CallForwarding", Insert, cfKey, row)
			t.AddSync(64, 0, 1, 2)
		case TATPDelCallFwd:
			t.Add("Subscriber", Read, subKey)
			t.Add("CallForwarding", Delete, cfKey)
			t.AddSync(16, 0, 1)
		default:
			// Unknown or empty mix: fall back to the cheapest read-only class.
			t.Reset(TATPGetSubData)
			t.ReadOnly = true
			t.Add("Subscriber", Read, subKey)
		}
		return t
	}
	return w, nil
}

// MustTATP is TATP but panics on configuration errors; intended for benches
// and examples with known-good options.
func MustTATP(opts TATPOptions) *Workload {
	w, err := TATP(opts)
	if err != nil {
		panic(err)
	}
	return w
}

func tatpGraphs() map[string]*FlowGraph {
	return map[string]*FlowGraph{
		TATPGetSubData: {
			Class: TATPGetSubData,
			Nodes: []FlowNode{{Table: "Subscriber", Op: Read, MinCount: 1, MaxCount: 1}},
		},
		TATPGetAccData: {
			Class: TATPGetAccData,
			Nodes: []FlowNode{{Table: "AccessInfo", Op: Read, MinCount: 1, MaxCount: 1}},
		},
		TATPGetNewDest: {
			Class: TATPGetNewDest,
			Nodes: []FlowNode{
				{Table: "SpecialFacility", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "CallForwarding", Op: Read, MinCount: 1, MaxCount: 3},
			},
			Syncs: []FlowSync{{Nodes: []int{0, 1}, Bytes: 48}},
		},
		TATPUpdSubData: {
			Class: TATPUpdSubData,
			Nodes: []FlowNode{
				{Table: "Subscriber", Op: Update, MinCount: 1, MaxCount: 1},
				{Table: "SpecialFacility", Op: Update, MinCount: 1, MaxCount: 1},
			},
			Syncs: []FlowSync{{Nodes: []int{0, 1}, Bytes: 16}},
		},
		TATPUpdLocation: {
			Class: TATPUpdLocation,
			Nodes: []FlowNode{{Table: "Subscriber", Op: Update, MinCount: 1, MaxCount: 1}},
		},
		TATPInsCallFwd: {
			Class: TATPInsCallFwd,
			Nodes: []FlowNode{
				{Table: "Subscriber", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "SpecialFacility", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "CallForwarding", Op: Insert, MinCount: 1, MaxCount: 1},
			},
			Syncs: []FlowSync{{Nodes: []int{0, 1, 2}, Bytes: 64}},
		},
		TATPDelCallFwd: {
			Class: TATPDelCallFwd,
			Nodes: []FlowNode{
				{Table: "Subscriber", Op: Read, MinCount: 1, MaxCount: 1},
				{Table: "CallForwarding", Op: Delete, MinCount: 1, MaxCount: 1},
			},
			Syncs: []FlowSync{{Nodes: []int{0, 1}, Bytes: 16}},
		},
	}
}
