package workload

import (
	"atrapos/internal/schema"
	"atrapos/internal/vclock"
)

// tenColumnTable builds the microbenchmark table of Section III: an integer
// primary key plus ten integer payload columns.
func tenColumnTable(name string) *schema.Table {
	cols := []schema.Column{{Name: "id", Type: schema.Int64}}
	for i := 0; i < 10; i++ {
		cols = append(cols, schema.Column{Name: fmtCol(i), Type: schema.Int64})
	}
	return &schema.Table{Name: name, Columns: cols, PrimaryKey: []string{"id"}}
}

func fmtCol(i int) string { return "c" + string(rune('0'+i)) }

// siteKeyRange returns the key range [lo, hi) that instance site serves when
// the key space [0, maxKey) is split over numSites instances. It uses the
// same arithmetic as btree.UniformBounds (bound i = maxKey*i/n), so a key the
// generator considers "local" is local by the placement's reckoning too —
// even when the instance count does not divide the row count. Before this
// alignment the generators used maxKey/numSites with truncation, which leaked
// a few "local" keys into the neighbouring instance on such machines (visible
// as nonzero communication at 0% multisite on 32-site deployments).
func siteKeyRange(maxKey int64, site, numSites int) (lo, hi int64) {
	if numSites < 1 || maxKey < int64(numSites) {
		return 0, maxKey
	}
	if site < 0 {
		site = 0
	}
	if site >= numSites {
		site = numSites - 1
	}
	lo = maxKey * int64(site) / int64(numSites)
	hi = maxKey * int64(site+1) / int64(numSites)
	if hi <= lo {
		return 0, maxKey
	}
	return lo, hi
}

func tenColumnRow(i int) schema.Row {
	row := make(schema.Row, 11)
	row[0] = int64(i)
	for c := 1; c < 11; c++ {
		row[c] = int64(i * c)
	}
	return row
}

// SingleRowRead is the perfectly partitionable microbenchmark of Figures 1, 2
// and 5: every transaction reads one row of a ten-integer-column table.
func SingleRowRead(rows int) *Workload {
	return SingleRowReadSkewed(rows, Skew{})
}

// SingleRowReadSkewed is SingleRowRead with a hot-set skew, used by the
// Figure 11 experiment (50% of requests to 20% of the data after t=20s).
func SingleRowReadSkewed(rows int, skew Skew) *Workload {
	const class = "ReadOne"
	table := "mbr"
	w := &Workload{
		Name: "single-row-read",
		Tables: []TableDef{{
			Schema: tenColumnTable(table),
			Rows:   rows,
			MaxKey: int64(rows),
			RowGen: tenColumnRow,
		}},
		Graphs: map[string]*FlowGraph{
			class: {
				Class: class,
				Nodes: []FlowNode{{Table: table, Op: Read, MinCount: 1, MaxCount: 1}},
			},
		},
		ClassWeights: func(vclock.Nanos) map[string]float64 {
			return map[string]float64{class: 1}
		},
	}
	w.Generate = func(ctx *GenContext) *Transaction {
		var key int64
		if ctx.NumSites > 1 && !skew.Active(ctx.At) {
			// Perfectly partitionable: each client only asks its own
			// instance's key range, as in the paper's Figure 2/5 setup.
			lo, hi := siteKeyRange(int64(rows), ctx.HomeSite, ctx.NumSites)
			key = lo + ctx.Rng.Int63n(hi-lo)
		} else {
			key = skew.Pick(ctx.Rng, int64(rows), ctx.At)
		}
		t := ctx.Txn(class)
		t.ReadOnly = true
		t.Add(table, Read, schema.KeyFromInt(key))
		return t
	}
	return w
}

// ReadHundred is the remote-memory microbenchmark of Section III-D (Table I):
// each transaction reads 100 rows chosen uniformly at random from a large
// table, defeating caches and prefetchers.
func ReadHundred(rows int) *Workload {
	const class = "Read100"
	table := "mbig"
	w := &Workload{
		Name: "read-100-random-rows",
		Tables: []TableDef{{
			Schema: tenColumnTable(table),
			Rows:   rows,
			MaxKey: int64(rows),
			RowGen: tenColumnRow,
		}},
		Graphs: map[string]*FlowGraph{
			class: {
				Class: class,
				Nodes: []FlowNode{{Table: table, Op: Read, MinCount: 100, MaxCount: 100}},
			},
		},
		ClassWeights: func(vclock.Nanos) map[string]float64 {
			return map[string]float64{class: 1}
		},
	}
	w.Generate = func(ctx *GenContext) *Transaction {
		t := ctx.Txn(class)
		t.ReadOnly = true
		// Each client reads from its own instance's dataset; the allocation
		// policy experiment (Table I) varies only where that dataset's memory
		// lives, not which instance serves the request.
		lo, hi := int64(0), int64(rows)
		if ctx.NumSites > 1 {
			lo, hi = siteKeyRange(int64(rows), ctx.HomeSite, ctx.NumSites)
		}
		for i := 0; i < 100; i++ {
			key := lo + ctx.Rng.Int63n(hi-lo)
			t.Add(table, Read, schema.KeyFromInt(key))
		}
		return t
	}
	return w
}

// MultisiteUpdate is the microbenchmark of Figures 3 and 4: local
// transactions update 10 rows of the generating worker's own site, while
// multi-site transactions update 1 local row and 9 rows chosen uniformly from
// the whole dataset. pctMultiSite is the percentage (0..100) of multi-site
// transactions.
func MultisiteUpdate(rows int, pctMultiSite int) *Workload {
	const (
		localClass = "UpdateLocal10"
		multiClass = "UpdateMultiSite"
	)
	table := "mupd"
	if pctMultiSite < 0 {
		pctMultiSite = 0
	}
	if pctMultiSite > 100 {
		pctMultiSite = 100
	}
	w := &Workload{
		Name: "multisite-update",
		Tables: []TableDef{{
			Schema: tenColumnTable(table),
			Rows:   rows,
			MaxKey: int64(rows),
			RowGen: tenColumnRow,
		}},
		Graphs: map[string]*FlowGraph{
			localClass: {
				Class: localClass,
				Nodes: []FlowNode{{Table: table, Op: Update, MinCount: 10, MaxCount: 10}},
			},
			multiClass: {
				Class: multiClass,
				Nodes: []FlowNode{{Table: table, Op: Update, MinCount: 10, MaxCount: 10}},
				Syncs: []FlowSync{{Nodes: []int{0}, Bytes: 88}},
			},
		},
		ClassWeights: func(vclock.Nanos) map[string]float64 {
			return map[string]float64{
				localClass: float64(100 - pctMultiSite),
				multiClass: float64(pctMultiSite),
			}
		},
	}
	w.Generate = func(ctx *GenContext) *Transaction {
		lo, hi := siteKeyRange(int64(rows), ctx.HomeSite, ctx.NumSites)
		localKey := func() schema.Key {
			return schema.KeyFromInt(lo + ctx.Rng.Int63n(hi-lo))
		}
		multi := ctx.Rng.Intn(100) < pctMultiSite
		if !multi {
			t := ctx.Txn(localClass)
			for i := 0; i < 10; i++ {
				t.Add(table, Update, localKey())
			}
			return t
		}
		t := ctx.Txn(multiClass)
		t.MultiSite = true
		t.Add(table, Update, localKey())
		for i := 0; i < 9; i++ {
			key := ctx.Rng.Int63n(int64(rows))
			t.Add(table, Update, schema.KeyFromInt(key))
		}
		// All ten updates synchronize at commit.
		t.AddSyncRange(88, 0, len(t.Actions))
		return t
	}
	return w
}

// MultisiteUpdateDrifting is MultisiteUpdate with a time-varying multisite
// probability: pctAt maps the virtual time of the generating transaction to
// the percentage (0..100) of multi-site transactions in force at that moment.
// It is the workload of the adaptive-granularity experiment: as the share
// drifts across the island-size crossover, the statically-best island level
// changes, and an adaptive deployment must re-wire itself to follow.
func MultisiteUpdateDrifting(rows int, pctAt func(vclock.Nanos) int) *Workload {
	const (
		localClass = "UpdateLocal10"
		multiClass = "UpdateMultiSite"
	)
	table := "mupd"
	clampPct := func(p int) int {
		if p < 0 {
			return 0
		}
		if p > 100 {
			return 100
		}
		return p
	}
	w := &Workload{
		Name: "multisite-update-drift",
		Tables: []TableDef{{
			Schema: tenColumnTable(table),
			Rows:   rows,
			MaxKey: int64(rows),
			RowGen: tenColumnRow,
		}},
		Graphs: map[string]*FlowGraph{
			localClass: {
				Class: localClass,
				Nodes: []FlowNode{{Table: table, Op: Update, MinCount: 10, MaxCount: 10}},
			},
			multiClass: {
				Class: multiClass,
				Nodes: []FlowNode{{Table: table, Op: Update, MinCount: 10, MaxCount: 10}},
				Syncs: []FlowSync{{Nodes: []int{0}, Bytes: 88}},
			},
		},
		ClassWeights: func(at vclock.Nanos) map[string]float64 {
			pct := clampPct(pctAt(at))
			return map[string]float64{
				localClass: float64(100 - pct),
				multiClass: float64(pct),
			}
		},
	}
	w.Generate = func(ctx *GenContext) *Transaction {
		pct := clampPct(pctAt(ctx.At))
		lo, hi := siteKeyRange(int64(rows), ctx.HomeSite, ctx.NumSites)
		localKey := func() schema.Key {
			return schema.KeyFromInt(lo + ctx.Rng.Int63n(hi-lo))
		}
		if ctx.Rng.Intn(100) >= pct {
			t := ctx.Txn(localClass)
			for i := 0; i < 10; i++ {
				t.Add(table, Update, localKey())
			}
			return t
		}
		t := ctx.Txn(multiClass)
		t.MultiSite = true
		t.Add(table, Update, localKey())
		for i := 0; i < 9; i++ {
			key := ctx.Rng.Int63n(int64(rows))
			t.Add(table, Update, schema.KeyFromInt(key))
		}
		t.AddSyncRange(88, 0, len(t.Actions))
		return t
	}
	return w
}

// TwoTableSimple is the simple transaction of Figure 6: two tables A and B;
// each transaction reads one row of A and the matching row of B, so the two
// actions must synchronize to combine their results.
func TwoTableSimple(rows int) *Workload {
	const class = "SimpleAB"
	w := &Workload{
		Name: "two-table-simple",
		Tables: []TableDef{
			{Schema: twoTableDef("A", ""), Rows: rows, MaxKey: int64(rows), RowGen: tenColumnRow},
			{Schema: twoTableDef("B", "A"), Rows: rows, MaxKey: int64(rows), RowGen: tenColumnRow},
		},
		Graphs: map[string]*FlowGraph{
			class: {
				Class: class,
				Nodes: []FlowNode{
					{Table: "A", Op: Read, MinCount: 1, MaxCount: 1},
					{Table: "B", Op: Read, MinCount: 1, MaxCount: 1},
				},
				Syncs: []FlowSync{{Nodes: []int{0, 1}, Bytes: 88}},
			},
		},
		ClassWeights: func(vclock.Nanos) map[string]float64 {
			return map[string]float64{class: 1}
		},
	}
	w.Generate = func(ctx *GenContext) *Transaction {
		id := ctx.Rng.Int63n(int64(rows))
		key := schema.KeyFromInt(id)
		t := ctx.Txn(class)
		t.ReadOnly = true
		t.Add("A", Read, key)
		t.Add("B", Read, key)
		t.AddSync(88, 0, 1)
		return t
	}
	return w
}

func twoTableDef(name, ref string) *schema.Table {
	t := tenColumnTable(name)
	if ref != "" {
		t.ForeignKeys = []schema.ForeignKey{{Column: "id", RefTable: ref, RefColumn: "id"}}
	}
	return t
}
