package workload

import (
	"fmt"
	"time"

	"atrapos/internal/vclock"
)

// Phase is one segment of a time-varying workload: the given class mix is
// active for Duration of virtual time.
type Phase struct {
	// Label names the phase in reports ("A", "B", "UpdSubData only", ...).
	Label string
	// Duration is how long the phase lasts in virtual time.
	Duration vclock.Nanos
	// Mix is the class mix active during the phase.
	Mix map[string]float64
}

// Schedule turns a list of phases into a mix function of virtual time. After
// the last phase ends the schedule cycles back to the first phase, so
// arbitrarily long runs keep alternating (as in Figure 13).
func Schedule(phases []Phase) (func(at vclock.Nanos) map[string]float64, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: empty schedule")
	}
	var total vclock.Nanos
	for i, p := range phases {
		if p.Duration <= 0 {
			return nil, fmt.Errorf("workload: phase %d has non-positive duration", i)
		}
		if len(p.Mix) == 0 {
			return nil, fmt.Errorf("workload: phase %d has an empty mix", i)
		}
		total += p.Duration
	}
	return func(at vclock.Nanos) map[string]float64 {
		if at < 0 {
			at = 0
		}
		offset := at % total
		for _, p := range phases {
			if offset < p.Duration {
				return p.Mix
			}
			offset -= p.Duration
		}
		return phases[len(phases)-1].Mix
	}, nil
}

// PhaseLabelAt returns the label of the phase active at virtual time at.
func PhaseLabelAt(phases []Phase, at vclock.Nanos) string {
	if len(phases) == 0 {
		return ""
	}
	var total vclock.Nanos
	for _, p := range phases {
		total += p.Duration
	}
	if total <= 0 {
		return phases[0].Label
	}
	offset := at % total
	for _, p := range phases {
		if offset < p.Duration {
			return p.Label
		}
		offset -= p.Duration
	}
	return phases[len(phases)-1].Label
}

// Seconds is a convenience conversion from seconds of virtual time.
func Seconds(s float64) vclock.Nanos {
	return vclock.Nanos(s * float64(time.Second))
}

// TATPWorkloadChange builds the Figure 10 scenario: 30 s of UpdSubData only,
// then 30 s of GetNewDest only, then 30 s of the standard TATP mix.
func TATPWorkloadChange(subscribers int) (*Workload, []Phase, error) {
	phases := []Phase{
		{Label: "UpdSubData", Duration: Seconds(30), Mix: map[string]float64{TATPUpdSubData: 1}},
		{Label: "GetNewDest", Duration: Seconds(30), Mix: map[string]float64{TATPGetNewDest: 1}},
		{Label: "TATP-Mix", Duration: Seconds(30), Mix: TATPStandardMix()},
	}
	mixAt, err := Schedule(phases)
	if err != nil {
		return nil, nil, err
	}
	w, err := TATP(TATPOptions{Subscribers: subscribers, MixAt: mixAt})
	if err != nil {
		return nil, nil, err
	}
	w.Name = "TATP-workload-change"
	return w, phases, nil
}

// TATPFrequentChanges builds the Figure 13 scenario: the workload alternates
// between GetNewDest (workload A) and the standard mix (workload B) with the
// given period.
func TATPFrequentChanges(subscribers int, period vclock.Nanos) (*Workload, []Phase, error) {
	phases := []Phase{
		{Label: "A", Duration: period, Mix: map[string]float64{TATPGetNewDest: 1}},
		{Label: "B", Duration: period, Mix: TATPStandardMix()},
	}
	mixAt, err := Schedule(phases)
	if err != nil {
		return nil, nil, err
	}
	w, err := TATP(TATPOptions{Subscribers: subscribers, MixAt: mixAt})
	if err != nil {
		return nil, nil, err
	}
	w.Name = "TATP-frequent-changes"
	return w, phases, nil
}

// TATPDriftingHotspot builds the continuous-drift scenario: GetSubData where
// 80% of the requests hit a 10%-wide hot window that slides across the
// subscriber space every period. A static placement is tuned for at most one
// window position; the adaptive system must keep repartitioning, and because
// only the Subscriber table carries load, every repartitioning should leave
// the other three TATP tables untouched (an incremental diff).
func TATPDriftingHotspot(subscribers int, period vclock.Nanos) (*Workload, error) {
	if period <= 0 {
		return nil, fmt.Errorf("workload: drifting hotspot needs a positive period")
	}
	w, err := TATP(TATPOptions{
		Subscribers: subscribers,
		Mix:         map[string]float64{TATPGetSubData: 1},
		Skew:        Skew{HotDataFraction: 0.1, HotAccessFraction: 0.8, DriftPeriod: period},
	})
	if err != nil {
		return nil, err
	}
	w.Name = "TATP-drifting-hotspot"
	return w, nil
}

// TATPSkewOscillation builds the skew-oscillation scenario: GetSubData that
// alternates every period between heavily skewed (60% of requests to 20% of
// the data) and uniform access, so the ideal placement flips back and forth
// between a skew-balanced one and the uniform split.
func TATPSkewOscillation(subscribers int, period vclock.Nanos) (*Workload, error) {
	if period <= 0 {
		return nil, fmt.Errorf("workload: skew oscillation needs a positive period")
	}
	w, err := TATP(TATPOptions{
		Subscribers: subscribers,
		Mix:         map[string]float64{TATPGetSubData: 1},
		Skew:        Skew{HotDataFraction: 0.2, HotAccessFraction: 0.6, OscillatePeriod: period},
	})
	if err != nil {
		return nil, err
	}
	w.Name = "TATP-skew-oscillation"
	return w, nil
}

// TATPSuddenSkew builds the Figure 11 scenario: GetSubData with uniform
// accesses that become skewed (50% of requests to 20% of the data) at the
// given virtual time.
func TATPSuddenSkew(subscribers int, at vclock.Nanos) (*Workload, error) {
	w, err := TATP(TATPOptions{
		Subscribers: subscribers,
		Mix:         map[string]float64{TATPGetSubData: 1},
		Skew:        Skew{HotDataFraction: 0.2, HotAccessFraction: 0.5, Start: at},
	})
	if err != nil {
		return nil, err
	}
	w.Name = "TATP-sudden-skew"
	return w, nil
}
