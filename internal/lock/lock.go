// Package lock implements the locking substrate of the storage manager: a
// hierarchical (table/row) lock table with intention modes, a centralized
// lock manager whose buckets live on shared cache lines (the design that
// collapses on multisockets), partition-local lock tables as used by PLP and
// ATraPos, and speculative lock inheritance for hot table-level locks.
package lock

import (
	"errors"
	"fmt"
	"sync"

	"atrapos/internal/schema"
)

// TxnID identifies a transaction for lock ownership purposes.
type TxnID uint64

// Mode is a lock mode.
type Mode int

const (
	// IS is intention-shared, taken on a table before row S locks.
	IS Mode = iota
	// IX is intention-exclusive, taken on a table before row X locks.
	IX
	// S is a shared lock.
	S
	// X is an exclusive lock.
	X
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Compatible reports whether two lock modes held by different transactions
// can coexist on the same resource. The matrix is the classic hierarchical
// locking compatibility matrix.
func Compatible(a, b Mode) bool {
	switch a {
	case IS:
		return b != X
	case IX:
		return b == IS || b == IX
	case S:
		return b == IS || b == S
	case X:
		return false
	default:
		return false
	}
}

// stronger reports whether mode a subsumes mode b (holding a satisfies a
// request for b by the same transaction).
func stronger(a, b Mode) bool {
	rank := func(m Mode) int {
		switch m {
		case IS:
			return 0
		case IX, S:
			return 1
		case X:
			return 2
		default:
			return -1
		}
	}
	if a == b {
		return true
	}
	if a == IX && b == S || a == S && b == IX {
		return false
	}
	return rank(a) >= rank(b)
}

// Kind distinguishes table-level from row-level resources.
type Kind int

const (
	// TableKind is a table-granularity resource.
	TableKind Kind = iota
	// RowKind is a row-granularity resource.
	RowKind
)

// ResourceID names a lockable resource.
type ResourceID struct {
	Table string
	Key   schema.Key
	Kind  Kind
}

// TableResource returns the table-granularity resource for a table.
func TableResource(table string) ResourceID {
	return ResourceID{Table: table, Kind: TableKind}
}

// RowResource returns the row-granularity resource for a key of a table.
func RowResource(table string, key schema.Key) ResourceID {
	return ResourceID{Table: table, Key: key, Kind: RowKind}
}

// ErrConflict is returned when a lock request cannot be granted because an
// incompatible lock is held by another transaction. The storage manager uses
// a no-wait policy: the requester aborts and retries, which avoids deadlocks
// without a waits-for graph.
var ErrConflict = errors.New("lock: conflicting lock held")

type entry struct {
	holders map[TxnID]Mode
	// nextFree links entries on the bucket's free list while they are not in
	// use. Pooling freed entries (and their holder maps) keeps the acquire
	// hot path allocation-free in steady state: a transaction's locks are
	// created and fully released every few microseconds, and without the pool
	// every acquire of a fresh resource would allocate an entry and a map.
	nextFree *entry
}

// Table is one lock table: a bucket-striped hash map from resources to lock
// entries. A Table on its own is NUMA-oblivious; the managers in manager.go
// decide how many tables exist and which threads may touch them.
type Table struct {
	buckets []bucket
}

type bucket struct {
	mu      sync.Mutex
	entries map[ResourceID]*entry
	free    *entry
}

// getEntry pops a pooled entry or allocates one. Caller holds b.mu.
func (b *bucket) getEntry() *entry {
	if e := b.free; e != nil {
		b.free = e.nextFree
		e.nextFree = nil
		return e
	}
	return &entry{holders: make(map[TxnID]Mode, 2)}
}

// putEntry returns an empty entry to the pool. Caller holds b.mu.
func (b *bucket) putEntry(e *entry) {
	e.nextFree = b.free
	b.free = e
}

// NewTable creates a lock table with the given number of buckets.
func NewTable(nBuckets int) *Table {
	if nBuckets < 1 {
		nBuckets = 1
	}
	t := &Table{buckets: make([]bucket, nBuckets)}
	for i := range t.buckets {
		t.buckets[i].entries = make(map[ResourceID]*entry)
	}
	return t
}

// BucketFor returns the bucket index for a resource; exported so managers can
// attribute cache-line costs to the right bucket.
func (t *Table) BucketFor(res ResourceID) int {
	h := uint64(14695981039346656037)
	for _, c := range res.Table {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= uint64(res.Key)
	h *= 1099511628211
	h ^= uint64(res.Kind)
	return int(h % uint64(len(t.buckets)))
}

// Acquire grants mode on res to txn, or returns ErrConflict. Re-acquisition
// by the same transaction succeeds if the held mode already subsumes the
// request; otherwise the held mode is upgraded when no other holder conflicts.
func (t *Table) Acquire(txn TxnID, res ResourceID, mode Mode) error {
	b := &t.buckets[t.BucketFor(res)]
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[res]
	if e == nil {
		e = b.getEntry()
		b.entries[res] = e
	}
	if held, ok := e.holders[txn]; ok && stronger(held, mode) {
		return nil
	}
	for other, otherMode := range e.holders {
		if other == txn {
			continue
		}
		if !Compatible(mode, otherMode) {
			return ErrConflict
		}
	}
	if held, ok := e.holders[txn]; !ok || !stronger(held, mode) {
		e.holders[txn] = mode
	}
	return nil
}

// Release drops txn's lock on res.
func (t *Table) Release(txn TxnID, res ResourceID) {
	b := &t.buckets[t.BucketFor(res)]
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.entries[res]; e != nil {
		delete(e.holders, txn)
		if len(e.holders) == 0 {
			delete(b.entries, res)
			b.putEntry(e)
		}
	}
}

// ReleaseAll drops every lock held by txn and returns how many were released.
func (t *Table) ReleaseAll(txn TxnID) int {
	released := 0
	for i := range t.buckets {
		b := &t.buckets[i]
		b.mu.Lock()
		for res, e := range b.entries {
			if _, ok := e.holders[txn]; ok {
				delete(e.holders, txn)
				released++
				if len(e.holders) == 0 {
					delete(b.entries, res)
					b.putEntry(e)
				}
			}
		}
		b.mu.Unlock()
	}
	return released
}

// Held returns the mode txn holds on res, if any.
func (t *Table) Held(txn TxnID, res ResourceID) (Mode, bool) {
	b := &t.buckets[t.BucketFor(res)]
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.entries[res]; e != nil {
		m, ok := e.holders[txn]
		return m, ok
	}
	return 0, false
}

// Holders returns how many transactions hold a lock on res.
func (t *Table) Holders(res ResourceID) int {
	b := &t.buckets[t.BucketFor(res)]
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.entries[res]; e != nil {
		return len(e.holders)
	}
	return 0
}

// Len returns the number of locked resources (for observability and tests).
func (t *Table) Len() int {
	total := 0
	for i := range t.buckets {
		b := &t.buckets[i]
		b.mu.Lock()
		total += len(b.entries)
		b.mu.Unlock()
	}
	return total
}
