package lock

import (
	"sync"
	"testing"
	"testing/quick"

	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
)

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, X, false},
		{IX, IS, true}, {IX, IX, true}, {IX, S, false}, {IX, X, false},
		{S, IS, true}, {S, IX, false}, {S, S, true}, {S, X, false},
		{X, IS, false}, {X, IX, false}, {X, S, false}, {X, X, false},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if Compatible(Mode(9), S) {
		t.Error("unknown mode should be incompatible")
	}
}

func TestCompatibilitySymmetryProperty(t *testing.T) {
	prop := func(aRaw, bRaw uint8) bool {
		a, b := Mode(aRaw%4), Mode(bRaw%4)
		return Compatible(a, b) == Compatible(b, a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{IS, IX, S, X, Mode(7)} {
		if m.String() == "" {
			t.Errorf("mode %d has empty string", m)
		}
	}
}

func TestResourceHelpers(t *testing.T) {
	tr := TableResource("t")
	if tr.Kind != TableKind || tr.Table != "t" {
		t.Errorf("TableResource = %+v", tr)
	}
	rr := RowResource("t", schema.KeyFromInt(5))
	if rr.Kind != RowKind || rr.Key != schema.KeyFromInt(5) {
		t.Errorf("RowResource = %+v", rr)
	}
}

func TestTableAcquireReleaseBasics(t *testing.T) {
	lt := NewTable(16)
	res := RowResource("a", schema.KeyFromInt(1))

	if err := lt.Acquire(1, res, S); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(2, res, S); err != nil {
		t.Fatal("second shared lock should be granted")
	}
	if err := lt.Acquire(3, res, X); err != ErrConflict {
		t.Fatalf("X over S should conflict, got %v", err)
	}
	if lt.Holders(res) != 2 {
		t.Errorf("Holders = %d, want 2", lt.Holders(res))
	}
	if m, ok := lt.Held(1, res); !ok || m != S {
		t.Errorf("Held(1) = %v,%v", m, ok)
	}
	lt.Release(1, res)
	lt.Release(2, res)
	if err := lt.Acquire(3, res, X); err != nil {
		t.Fatalf("X after release should be granted: %v", err)
	}
	if lt.Len() != 1 {
		t.Errorf("Len = %d, want 1", lt.Len())
	}
	if n := lt.ReleaseAll(3); n != 1 {
		t.Errorf("ReleaseAll(3) = %d, want 1", n)
	}
	if lt.Len() != 0 {
		t.Errorf("lock table should be empty, Len = %d", lt.Len())
	}
	if _, ok := lt.Held(3, res); ok {
		t.Error("lock still held after ReleaseAll")
	}
}

func TestTableReacquireAndUpgrade(t *testing.T) {
	lt := NewTable(4)
	res := RowResource("a", schema.KeyFromInt(9))
	if err := lt.Acquire(1, res, S); err != nil {
		t.Fatal(err)
	}
	// Re-acquiring a weaker-or-equal mode succeeds.
	if err := lt.Acquire(1, res, S); err != nil {
		t.Fatal(err)
	}
	// Upgrade S -> X succeeds while sole holder.
	if err := lt.Acquire(1, res, X); err != nil {
		t.Fatal(err)
	}
	if m, _ := lt.Held(1, res); m != X {
		t.Errorf("mode after upgrade = %v, want X", m)
	}
	// Upgrade under contention fails.
	res2 := RowResource("a", schema.KeyFromInt(10))
	lt.Acquire(1, res2, S)
	lt.Acquire(2, res2, S)
	if err := lt.Acquire(1, res2, X); err != ErrConflict {
		t.Errorf("upgrade with other holders should conflict, got %v", err)
	}
	// X holder can re-acquire S (subsumed).
	if err := lt.Acquire(1, res, S); err != nil {
		t.Errorf("X holder re-acquiring S should succeed: %v", err)
	}
}

func TestIntentionLocks(t *testing.T) {
	lt := NewTable(4)
	table := TableResource("orders")
	if err := lt.Acquire(1, table, IX); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(2, table, IX); err != nil {
		t.Fatal("two IX locks should coexist")
	}
	if err := lt.Acquire(3, table, S); err != ErrConflict {
		t.Error("S should conflict with IX")
	}
	if err := lt.Acquire(3, table, IS); err != nil {
		t.Error("IS should coexist with IX")
	}
	if err := lt.Acquire(4, table, X); err != ErrConflict {
		t.Error("X should conflict with everything")
	}
}

func TestReleaseUnknownIsNoop(t *testing.T) {
	lt := NewTable(2)
	lt.Release(1, RowResource("a", 1))
	if n := lt.ReleaseAll(1); n != 0 {
		t.Errorf("ReleaseAll of unknown txn = %d", n)
	}
	if lt.Holders(RowResource("a", 1)) != 0 {
		t.Error("unexpected holders")
	}
}

func TestTableConcurrentDisjointAcquire(t *testing.T) {
	lt := NewTable(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			txn := TxnID(w + 1)
			for i := 0; i < 500; i++ {
				res := RowResource("t", schema.KeyFromInt(int64(w*1000+i)))
				if err := lt.Acquire(txn, res, X); err != nil {
					t.Errorf("unexpected conflict: %v", err)
					return
				}
			}
			lt.ReleaseAll(txn)
		}(w)
	}
	wg.Wait()
	if lt.Len() != 0 {
		t.Errorf("lock table not empty after concurrent release: %d", lt.Len())
	}
}

func TestNewTableClampsBuckets(t *testing.T) {
	lt := NewTable(0)
	if err := lt.Acquire(1, RowResource("x", 1), S); err != nil {
		t.Fatal(err)
	}
}

func newDomain(sockets int) *numa.Domain {
	top := topology.MustNew(topology.Config{Sockets: sockets, CoresPerSocket: 2})
	return numa.MustNewDomain(top, numa.DefaultCostModel())
}

func TestCentralManagerCostsGrowAcrossSockets(t *testing.T) {
	d := newDomain(8)
	m := NewCentralManager(d, 16, false)
	res := RowResource("t", schema.KeyFromInt(1))

	// Repeated acquisition from socket 0 is cheap; alternating sockets pays
	// cache-line transfers.
	var local, remote numa.Cost
	for i := 0; i < 50; i++ {
		c, err := m.Acquire(0, TxnID(i*2+1), res, S)
		if err != nil {
			t.Fatal(err)
		}
		local += c
	}
	for i := 0; i < 50; i++ {
		c, err := m.Acquire(topology.SocketID(i%8), TxnID(1000+i), res, S)
		if err != nil {
			t.Fatal(err)
		}
		remote += c
	}
	if remote <= local {
		t.Errorf("multi-socket acquisition cost %d should exceed single-socket %d", remote, local)
	}
	cost, n := m.ReleaseAll(0, 1)
	if n != 1 || cost <= 0 {
		t.Errorf("ReleaseAll = %d locks, cost %d", n, cost)
	}
}

func TestCentralManagerConflict(t *testing.T) {
	d := newDomain(2)
	m := NewCentralManager(d, 16, false)
	res := RowResource("t", schema.KeyFromInt(7))
	if _, err := m.Acquire(0, 1, res, X); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(1, 2, res, X); err != ErrConflict {
		t.Errorf("expected conflict, got %v", err)
	}
}

func TestSpeculativeLockInheritance(t *testing.T) {
	d := newDomain(2)
	m := NewCentralManager(d, 16, true)
	table := TableResource("orders")

	c1, err := m.Acquire(0, 1, table, IX)
	if err != nil {
		t.Fatal(err)
	}
	if c1 <= 0 {
		t.Error("first acquisition should pay the bucket cost")
	}
	m.ReleaseAll(0, 1)
	m.RetainForSLI(0, table, IX)

	// Next transaction on the same socket inherits the table lock for free.
	c2, err := m.Acquire(0, 2, table, IS)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != 0 {
		t.Errorf("inherited acquisition cost %d, want 0", c2)
	}
	if m.SLIHits() != 1 {
		t.Errorf("SLIHits = %d, want 1", m.SLIHits())
	}
	// Row locks are never inherited.
	m.RetainForSLI(0, RowResource("orders", 1), X)
	if c, _ := m.Acquire(0, 3, RowResource("orders", 1), X); c == 0 {
		t.Error("row locks must not be served by SLI")
	}
	// SLI disabled manager never hits.
	m2 := NewCentralManager(d, 16, false)
	m2.RetainForSLI(0, table, IX)
	if c, _ := m2.Acquire(0, 1, table, IS); c == 0 {
		t.Error("SLI-disabled manager should pay the bucket cost")
	}
	if m2.Table() == nil || m.Table() == nil {
		t.Error("Table accessor returned nil")
	}
}

func TestLocalManagerStaysLocal(t *testing.T) {
	d := newDomain(4)
	m := NewLocalManager(d, 3)
	if m.Home() != 3 {
		t.Errorf("Home = %d, want 3", m.Home())
	}
	res := RowResource("t", schema.KeyFromInt(5))
	c, err := m.Acquire(3, 1, res, X)
	if err != nil {
		t.Fatal(err)
	}
	if c != d.Model.LocalAtomic {
		t.Errorf("local acquisition cost %d, want %d", c, d.Model.LocalAtomic)
	}
	cost, n := m.ReleaseAll(3, 1)
	if n != 1 || cost != d.Model.LocalAtomic {
		t.Errorf("ReleaseAll cost %d count %d", cost, n)
	}
	if cost, n := m.ReleaseAll(3, 99); n != 0 || cost != 0 {
		t.Errorf("releasing nothing should be free, got cost %d count %d", cost, n)
	}
	// After rehoming to another socket, access from the old socket pays.
	m.Rehome(d, 0)
	if m.Home() != 0 {
		t.Errorf("Home after rehome = %d", m.Home())
	}
	c, _ = m.Acquire(3, 2, res, X)
	if c <= d.Model.LocalAtomic {
		t.Errorf("post-rehome remote acquisition cost %d should exceed local", c)
	}
	if m.Table() == nil {
		t.Error("Table accessor returned nil")
	}
}
