package lock

import (
	"sync"
	"sync/atomic"

	"atrapos/internal/numa"
	"atrapos/internal/topology"
)

// Manager is the interface the execution engines use to acquire locks. Every
// call returns the virtual cost of the operation so the caller can charge it
// to the worker's clock; implementations differ in how much of that cost
// crosses socket boundaries.
type Manager interface {
	// Acquire requests mode on res for txn on behalf of a worker running on
	// socket s.
	Acquire(s topology.SocketID, txn TxnID, res ResourceID, mode Mode) (numa.Cost, error)
	// ReleaseAll drops all locks of txn and returns the cost and the number
	// of locks released.
	ReleaseAll(s topology.SocketID, txn TxnID) (numa.Cost, int)
}

// CentralManager is the traditional centralized lock manager: one lock table
// shared by every worker in the system. Each bucket header is modeled as a
// cache line homed on socket 0, so acquisitions from other sockets pay
// cache-line transfer costs — the contention the paper identifies as the
// first scalability bottleneck of shared-everything designs.
//
// CentralManager optionally applies speculative lock inheritance (SLI):
// table-level intention locks released at commit are retained by the worker
// that released them, so the next transaction on the same worker re-acquires
// them without touching the shared bucket.
type CentralManager struct {
	table *Table
	lines []*numa.CacheLine

	sliEnabled bool
	sliMu      sync.Mutex
	sli        map[topology.SocketID]map[ResourceID]Mode
	sliHits    int64

	// conflicts counts failed acquisitions (mode incompatibilities); the
	// metrics sampler reads it at planner boundaries.
	conflicts atomic.Int64
}

// NewCentralManager builds a centralized manager over domain d.
func NewCentralManager(d *numa.Domain, buckets int, sli bool) *CentralManager {
	m := &CentralManager{
		table:      NewTable(buckets),
		lines:      make([]*numa.CacheLine, buckets),
		sliEnabled: sli,
		sli:        make(map[topology.SocketID]map[ResourceID]Mode),
	}
	for i := range m.lines {
		m.lines[i] = numa.NewCacheLine(d, 0)
	}
	return m
}

// Acquire implements Manager.
func (m *CentralManager) Acquire(s topology.SocketID, txn TxnID, res ResourceID, mode Mode) (numa.Cost, error) {
	if m.sliEnabled && res.Kind == TableKind {
		m.sliMu.Lock()
		if held, ok := m.sli[s][res]; ok && stronger(held, mode) {
			m.sliHits++
			m.sliMu.Unlock()
			// The lock is inherited: only a thread-local check is needed.
			return 0, nil
		}
		m.sliMu.Unlock()
	}
	cost := m.lines[m.table.BucketFor(res)].Atomic(s)
	if err := m.table.Acquire(txn, res, mode); err != nil {
		m.conflicts.Add(1)
		return cost, err
	}
	return cost, nil
}

// Conflicts returns how many acquisitions failed on a mode conflict.
func (m *CentralManager) Conflicts() int64 { return m.conflicts.Load() }

// ReleaseAll implements Manager. Table-level locks are retained in the SLI
// cache of the releasing worker's socket when SLI is enabled.
func (m *CentralManager) ReleaseAll(s topology.SocketID, txn TxnID) (numa.Cost, int) {
	var cost numa.Cost
	// Releasing touches the bucket headers again; approximate with one
	// representative bucket access per release batch plus one per lock.
	released := m.table.ReleaseAll(txn)
	for i := 0; i < released; i++ {
		cost += m.lines[i%len(m.lines)].Atomic(s)
	}
	return cost, released
}

// RetainForSLI records that the worker on socket s finished a transaction
// that held mode on table resource res; subsequent acquisitions of a weaker
// or equal mode from the same socket are served from the cache.
func (m *CentralManager) RetainForSLI(s topology.SocketID, res ResourceID, mode Mode) {
	if !m.sliEnabled || res.Kind != TableKind {
		return
	}
	m.sliMu.Lock()
	defer m.sliMu.Unlock()
	if m.sli[s] == nil {
		m.sli[s] = make(map[ResourceID]Mode)
	}
	m.sli[s][res] = mode
}

// SLIHits returns how many acquisitions were served by speculative lock inheritance.
func (m *CentralManager) SLIHits() int64 {
	m.sliMu.Lock()
	defer m.sliMu.Unlock()
	return m.sliHits
}

// Table exposes the underlying lock table for tests.
func (m *CentralManager) Table() *Table { return m.table }

// LocalManager is a partition-local lock table as used by PLP and ATraPos:
// each logical partition has its own small lock table accessed by exactly one
// worker thread, so acquisitions are island-local and uncontended. The cost
// charged is the local atomic cost of the owning socket's stripe.
//
// A LocalManager is homed on the island of the partition's owning core: it
// records both the socket (which prices the cache-line stripe) and, on
// hierarchical machines, the die, so that repartitioning can tell whether a
// candidate lock table is really local to a partition's new owner or merely
// on the right socket.
type LocalManager struct {
	table   *Table
	line    *numa.CacheLine
	home    topology.SocketID
	homeDie topology.DieID

	// conflicts counts failed acquisitions, as on CentralManager.
	conflicts atomic.Int64
}

// NewLocalManager creates a partition-local lock table homed on socket home
// (on its first die when the machine is hierarchical).
func NewLocalManager(d *numa.Domain, home topology.SocketID) *LocalManager {
	return &LocalManager{
		table:   NewTable(8),
		line:    numa.NewCacheLine(d, home),
		home:    home,
		homeDie: d.Top.FirstDieOn(home),
	}
}

// NewLocalManagerAt creates a partition-local lock table homed on the island
// of the given owner core: its socket for cost purposes and its die for
// island-locality checks.
func NewLocalManagerAt(d *numa.Domain, owner topology.CoreID) *LocalManager {
	return &LocalManager{
		table:   NewTable(8),
		line:    numa.NewCacheLine(d, d.Top.SocketOf(owner)),
		home:    d.Top.SocketOf(owner),
		homeDie: d.Top.DieOf(owner),
	}
}

// Rehome moves the lock table's cache line to a new socket (its first die on
// hierarchical machines). When the new owner core is known, prefer RehomeAt,
// which keeps the die home consistent with the owner.
func (m *LocalManager) Rehome(d *numa.Domain, home topology.SocketID) {
	m.line = numa.NewCacheLine(d, home)
	m.home = home
	m.homeDie = d.Top.FirstDieOn(home)
}

// RehomeAt moves the lock table's cache line to the island of the given
// owner core; called when repartitioning migrates a partition.
func (m *LocalManager) RehomeAt(d *numa.Domain, owner topology.CoreID) {
	m.line = numa.NewCacheLine(d, d.Top.SocketOf(owner))
	m.home = d.Top.SocketOf(owner)
	m.homeDie = d.Top.DieOf(owner)
}

// Home returns the socket the lock table is currently homed on.
func (m *LocalManager) Home() topology.SocketID { return m.home }

// HomeDie returns the die the lock table is currently homed on.
func (m *LocalManager) HomeDie() topology.DieID { return m.homeDie }

// Acquire implements Manager.
func (m *LocalManager) Acquire(s topology.SocketID, txn TxnID, res ResourceID, mode Mode) (numa.Cost, error) {
	cost := m.line.Atomic(s)
	if err := m.table.Acquire(txn, res, mode); err != nil {
		m.conflicts.Add(1)
		return cost, err
	}
	return cost, nil
}

// Conflicts returns how many acquisitions failed on a mode conflict.
func (m *LocalManager) Conflicts() int64 { return m.conflicts.Load() }

// ReleaseAll implements Manager.
func (m *LocalManager) ReleaseAll(s topology.SocketID, txn TxnID) (numa.Cost, int) {
	released := m.table.ReleaseAll(txn)
	var cost numa.Cost
	if released > 0 {
		cost = m.line.Atomic(s)
	}
	return cost, released
}

// Table exposes the underlying lock table for tests.
func (m *LocalManager) Table() *Table { return m.table }
