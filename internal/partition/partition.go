// Package partition describes logical partitioning and placement: which key
// ranges of which tables form logical partitions, and which processor core
// owns each partition. It also provides the router used by data-oriented
// execution to map a row access to the partition (and hence the worker
// thread) responsible for it, and the partition-local runtime state (the
// local lock table) that makes the critical path socket-local.
package partition

import (
	"fmt"
	"sort"

	"atrapos/internal/btree"
	"atrapos/internal/device"
	"atrapos/internal/lock"
	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
)

// TablePlacement is the partitioning and placement of one table: partition i
// covers keys in [Bounds[i], Bounds[i+1]) and is owned by core Cores[i].
type TablePlacement struct {
	Table  string
	Bounds []schema.Key
	Cores  []topology.CoreID
}

// Validate checks structural invariants.
func (tp *TablePlacement) Validate() error {
	if tp.Table == "" {
		return fmt.Errorf("partition: placement with empty table name")
	}
	if len(tp.Bounds) == 0 {
		return fmt.Errorf("partition: table %s has no partitions", tp.Table)
	}
	if tp.Bounds[0] != 0 {
		return fmt.Errorf("partition: table %s first bound must be 0", tp.Table)
	}
	for i := 1; i < len(tp.Bounds); i++ {
		if tp.Bounds[i] <= tp.Bounds[i-1] {
			return fmt.Errorf("partition: table %s bounds not ascending at %d", tp.Table, i)
		}
	}
	if len(tp.Cores) != len(tp.Bounds) {
		return fmt.Errorf("partition: table %s has %d bounds but %d core assignments", tp.Table, len(tp.Bounds), len(tp.Cores))
	}
	return nil
}

// NumPartitions returns the number of partitions.
func (tp *TablePlacement) NumPartitions() int { return len(tp.Bounds) }

// PartitionFor returns the partition index owning key. Keys at or beyond the
// last bound belong to the last partition; keys below the first bound (which
// only arise from malformed generators, since the first bound is always 0)
// are clamped to the first partition instead of producing index -1.
func (tp *TablePlacement) PartitionFor(key schema.Key) int {
	i := sort.Search(len(tp.Bounds), func(i int) bool { return tp.Bounds[i] > key }) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// CoreFor returns the core owning key.
func (tp *TablePlacement) CoreFor(key schema.Key) topology.CoreID {
	return tp.Cores[tp.PartitionFor(key)]
}

// Clone returns a deep copy.
func (tp *TablePlacement) Clone() *TablePlacement {
	return &TablePlacement{
		Table:  tp.Table,
		Bounds: append([]schema.Key(nil), tp.Bounds...),
		Cores:  append([]topology.CoreID(nil), tp.Cores...),
	}
}

// Placement is the partitioning and placement of every table in the database.
type Placement struct {
	Tables map[string]*TablePlacement
}

// NewPlacement returns an empty placement.
func NewPlacement() *Placement {
	return &Placement{Tables: make(map[string]*TablePlacement)}
}

// Validate checks every table placement.
func (p *Placement) Validate() error {
	for name, tp := range p.Tables {
		if name != tp.Table {
			return fmt.Errorf("partition: placement key %q does not match table %q", name, tp.Table)
		}
		if err := tp.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ValidateAlive rejects placements that assign a partition to a core that
// does not exist in the topology or whose socket has failed. Validate only
// checks structural invariants; the engine runs this check additionally
// before installing a new snapshot, so an adaptive repartitioning can never
// route work to dead hardware.
func (p *Placement) ValidateAlive(top *topology.Topology) error {
	for name, tp := range p.Tables {
		for i, c := range tp.Cores {
			if _, err := top.Core(c); err != nil {
				return fmt.Errorf("partition: table %s partition %d assigned to unknown core %d", name, i, c)
			}
			if !top.Alive(top.SocketOf(c)) {
				return fmt.Errorf("partition: table %s partition %d assigned to core %d on failed socket %d",
					name, i, c, top.SocketOf(c))
			}
		}
	}
	return nil
}

// ValidateAliveDevices extends the liveness invariant from compute to
// storage: it rejects placements for which some partition's owning core
// resolves — through its die — to no alive log device, so a snapshot built
// from the placement could only bind an island log to a failed device.
// Passing a nil device map (no log-device layout configured) is trivially
// valid. The engine runs this alongside ValidateAlive before installing a
// re-wired snapshot.
func (p *Placement) ValidateAliveDevices(top *topology.Topology, devs *device.Map) error {
	if devs == nil {
		return nil
	}
	for name, tp := range p.Tables {
		for i, c := range tp.Cores {
			die := top.DieOf(c)
			if d := devs.AliveDeviceFor(die); d == nil {
				return fmt.Errorf("partition: table %s partition %d on core %d has no alive log device (die %d, layout %s)",
					name, i, c, die, devs.Layout())
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the placement.
func (p *Placement) Clone() *Placement {
	out := NewPlacement()
	for name, tp := range p.Tables {
		out.Tables[name] = tp.Clone()
	}
	return out
}

// Table returns the placement of one table.
func (p *Placement) Table(name string) (*TablePlacement, bool) {
	tp, ok := p.Tables[name]
	return tp, ok
}

// TableNames returns the table names in sorted order.
func (p *Placement) TableNames() []string {
	out := make([]string, 0, len(p.Tables))
	for name := range p.Tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TotalPartitions returns the number of partitions across all tables.
func (p *Placement) TotalPartitions() int {
	total := 0
	for _, tp := range p.Tables {
		total += tp.NumPartitions()
	}
	return total
}

// CoresUsed returns the distinct cores that own at least one partition.
func (p *Placement) CoresUsed() []topology.CoreID {
	seen := make(map[topology.CoreID]struct{})
	for _, tp := range p.Tables {
		for _, c := range tp.Cores {
			seen[c] = struct{}{}
		}
	}
	out := make([]topology.CoreID, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PartitionsPerCore returns how many partitions each core owns.
func (p *Placement) PartitionsPerCore() map[topology.CoreID]int {
	out := make(map[topology.CoreID]int)
	for _, tp := range p.Tables {
		for _, c := range tp.Cores {
			out[c]++
		}
	}
	return out
}

// TableSpec describes one table when building a placement: its name and the
// maximum integer primary key (exclusive) used for range partitioning.
type TableSpec struct {
	Name   string
	MaxKey int64
}

// PerIsland builds a placement with one partition per alive island at the
// given level for each table, owned by the island's first alive core. It is
// the data layout of a shared-nothing deployment at that island granularity:
// LevelCore reproduces the extreme (instance-per-core) layout, LevelSocket
// the coarse (instance-per-socket) one, LevelDie an instance per CCX/cluster,
// and LevelMachine a single instance covering the whole key space.
func PerIsland(top *topology.Topology, level topology.Level, tables []TableSpec) *Placement {
	islands := top.AliveIslandsAt(level)
	p := NewPlacement()
	for _, spec := range tables {
		n := len(islands)
		if n < 1 {
			n = 1
		}
		bounds := btree.UniformBounds(spec.MaxKey, n)
		tp := &TablePlacement{
			Table:  spec.Name,
			Bounds: bounds,
			Cores:  make([]topology.CoreID, len(bounds)),
		}
		for i := range tp.Cores {
			if len(islands) > 0 {
				tp.Cores[i] = islands[i%len(islands)].Cores[0].ID
			}
		}
		p.Tables[spec.Name] = tp
	}
	return p
}

// NaivePerCore builds the naïve hardware-aware placement of Section IV: every
// table is range partitioned with one partition per alive core, assigned in
// core order. With T tables, every core owns T partitions (one per table),
// which is the oversaturation the Figure 6 experiment demonstrates. It is
// PerIsland at the finest granularity.
func NaivePerCore(top *topology.Topology, tables []TableSpec) *Placement {
	return PerIsland(top, topology.LevelCore, tables)
}

// SpreadAcrossCores builds a placement with one partition per core in total
// (not per table): the available cores are divided between the tables
// proportionally to the supplied weights, so no core owns more than one
// partition. With hardwareAware false the partitions are assigned to cores
// round-robin across sockets (the "Workload-aware" strategy of Figure 6);
// with hardwareAware true the partitions of each table are packed onto
// consecutive cores so dependent tables share sockets (the ATraPos placement).
func SpreadAcrossCores(top *topology.Topology, tables []TableSpec, weights []float64, hardwareAware bool) *Placement {
	cores := top.AliveCores()
	p := NewPlacement()
	if len(tables) == 0 {
		return p
	}
	if len(weights) != len(tables) {
		weights = make([]float64, len(tables))
		for i := range weights {
			weights[i] = 1
		}
	}
	var totalWeight float64
	for _, w := range weights {
		if w <= 0 {
			w = 1
		}
		totalWeight += w
	}
	// Assign a contiguous (hardware-aware) or strided (oblivious) share of the
	// cores to each table.
	counts := make([]int, len(tables))
	assigned := 0
	for i := range tables {
		w := weights[i]
		if w <= 0 {
			w = 1
		}
		counts[i] = int(float64(len(cores)) * w / totalWeight)
		if counts[i] < 1 {
			counts[i] = 1
		}
		assigned += counts[i]
	}
	// Trim or grow to the number of cores available.
	for assigned > len(cores) && assigned > len(tables) {
		for i := range counts {
			if counts[i] > 1 && assigned > len(cores) {
				counts[i]--
				assigned--
			}
		}
	}
	next := 0
	for ti, spec := range tables {
		bounds := btree.UniformBounds(spec.MaxKey, counts[ti])
		n := len(bounds)
		tp := &TablePlacement{
			Table:  spec.Name,
			Bounds: bounds,
			Cores:  make([]topology.CoreID, n),
		}
		for i := 0; i < n; i++ {
			var core topology.Core
			if hardwareAware {
				core = cores[(next+i)%len(cores)]
			} else {
				// Hardware-oblivious: stride the partitions of this table
				// across the machine so consecutive partitions land on
				// different sockets.
				stride := len(cores)/n + 1
				core = cores[(next+i*stride)%len(cores)]
			}
			tp.Cores[i] = core.ID
		}
		next += n
		p.Tables[spec.Name] = tp
	}
	return p
}

// PerSocket builds a placement with one partition per alive socket for each
// table, owned by the first core of the socket. It mirrors the coarse
// shared-nothing configuration's data layout and is PerIsland at socket
// granularity.
func PerSocket(top *topology.Topology, tables []TableSpec) *Placement {
	return PerIsland(top, topology.LevelSocket, tables)
}

// Runtime is the per-partition runtime state of data-oriented execution: one
// entry per (table, partition) with its owning core and its partition-local
// lock table.
type Runtime struct {
	domain *numa.Domain
	locks  map[string][]*lock.LocalManager
}

// NewRuntime builds the partition-local lock tables for a placement. Each
// lock table is homed on the island of its partition's owning core (its
// socket and, on hierarchical machines, its die), so the critical path stays
// local to the smallest enclosing island.
func NewRuntime(d *numa.Domain, p *Placement) *Runtime {
	r := &Runtime{domain: d, locks: make(map[string][]*lock.LocalManager)}
	for name, tp := range p.Tables {
		ms := make([]*lock.LocalManager, len(tp.Cores))
		for i, core := range tp.Cores {
			ms[i] = lock.NewLocalManagerAt(d, core)
		}
		r.locks[name] = ms
	}
	return r
}

// Locks returns the local lock manager of partition idx of table name.
func (r *Runtime) Locks(name string, idx int) (*lock.LocalManager, error) {
	ms, ok := r.locks[name]
	if !ok {
		return nil, fmt.Errorf("partition: no runtime state for table %q", name)
	}
	if idx < 0 || idx >= len(ms) {
		return nil, fmt.Errorf("partition: table %q has no partition %d", name, idx)
	}
	return ms[idx], nil
}

// NumPartitions returns the number of partitions of table name in the runtime.
func (r *Runtime) NumPartitions(name string) int {
	return len(r.locks[name])
}
