package partition

import (
	"testing"

	"atrapos/internal/btree"
	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
)

func smallTop() *topology.Topology {
	return topology.MustNew(topology.Config{Sockets: 4, CoresPerSocket: 4})
}

func TestTablePlacementValidate(t *testing.T) {
	ok := &TablePlacement{
		Table:  "t",
		Bounds: btree.UniformBounds(100, 4),
		Cores:  []topology.CoreID{0, 1, 2, 3},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	bad := []*TablePlacement{
		{Table: "", Bounds: []schema.Key{0}, Cores: []topology.CoreID{0}},
		{Table: "t", Bounds: nil, Cores: nil},
		{Table: "t", Bounds: []schema.Key{5}, Cores: []topology.CoreID{0}},
		{Table: "t", Bounds: []schema.Key{0, 10, 10}, Cores: []topology.CoreID{0, 1, 2}},
		{Table: "t", Bounds: []schema.Key{0, 10}, Cores: []topology.CoreID{0}},
	}
	for i, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTablePlacementRouting(t *testing.T) {
	tp := &TablePlacement{
		Table:  "t",
		Bounds: btree.UniformBounds(100, 4),
		Cores:  []topology.CoreID{3, 5, 7, 9},
	}
	if tp.NumPartitions() != 4 {
		t.Errorf("NumPartitions = %d", tp.NumPartitions())
	}
	if tp.PartitionFor(schema.KeyFromInt(0)) != 0 || tp.PartitionFor(schema.KeyFromInt(99)) != 3 {
		t.Error("PartitionFor routed wrong")
	}
	if tp.CoreFor(schema.KeyFromInt(30)) != 5 {
		t.Errorf("CoreFor(30) = %d, want 5", tp.CoreFor(schema.KeyFromInt(30)))
	}
	clone := tp.Clone()
	clone.Cores[0] = 99
	if tp.Cores[0] == 99 {
		t.Error("Clone shares memory with original")
	}
}

func TestPlacementAggregates(t *testing.T) {
	p := NewPlacement()
	p.Tables["a"] = &TablePlacement{Table: "a", Bounds: btree.UniformBounds(100, 2), Cores: []topology.CoreID{0, 1}}
	p.Tables["b"] = &TablePlacement{Table: "b", Bounds: btree.UniformBounds(100, 3), Cores: []topology.CoreID{1, 2, 3}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalPartitions() != 5 {
		t.Errorf("TotalPartitions = %d", p.TotalPartitions())
	}
	names := p.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("TableNames = %v", names)
	}
	cores := p.CoresUsed()
	if len(cores) != 4 {
		t.Errorf("CoresUsed = %v", cores)
	}
	per := p.PartitionsPerCore()
	if per[1] != 2 || per[0] != 1 {
		t.Errorf("PartitionsPerCore = %v", per)
	}
	if _, ok := p.Table("a"); !ok {
		t.Error("Table(a) missing")
	}
	if _, ok := p.Table("zzz"); ok {
		t.Error("unexpected table")
	}
	clone := p.Clone()
	clone.Tables["a"].Cores[0] = 42
	if p.Tables["a"].Cores[0] == 42 {
		t.Error("Clone shares memory")
	}
	// Mismatched key fails validation.
	p.Tables["c"] = &TablePlacement{Table: "x", Bounds: []schema.Key{0}, Cores: []topology.CoreID{0}}
	if err := p.Validate(); err == nil {
		t.Error("mismatched placement key should fail validation")
	}
	delete(p.Tables, "c")
	p.Tables["d"] = &TablePlacement{Table: "d"}
	if err := p.Validate(); err == nil {
		t.Error("invalid table placement should fail validation")
	}
}

func TestNaivePerCore(t *testing.T) {
	top := smallTop()
	specs := []TableSpec{{Name: "a", MaxKey: 1600}, {Name: "b", MaxKey: 1600}}
	p := NaivePerCore(top, specs)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		tp := p.Tables[name]
		if tp.NumPartitions() != 16 {
			t.Errorf("table %s has %d partitions, want one per core (16)", name, tp.NumPartitions())
		}
	}
	// Every core owns exactly one partition of each table (two in total).
	for core, n := range p.PartitionsPerCore() {
		if n != 2 {
			t.Errorf("core %d owns %d partitions, want 2", core, n)
		}
	}
	// A failed socket is excluded.
	top.FailSocket(3)
	p2 := NaivePerCore(top, specs)
	if p2.Tables["a"].NumPartitions() != 12 {
		t.Errorf("after socket failure: %d partitions, want 12", p2.Tables["a"].NumPartitions())
	}
	for _, c := range p2.CoresUsed() {
		if top.SocketOf(c) == 3 {
			t.Errorf("core %d on failed socket still used", c)
		}
	}
}

func TestSpreadAcrossCores(t *testing.T) {
	top := smallTop()
	specs := []TableSpec{{Name: "a", MaxKey: 1000}, {Name: "b", MaxKey: 1000}}

	for _, hw := range []bool{true, false} {
		p := SpreadAcrossCores(top, specs, []float64{1, 1}, hw)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.TotalPartitions() != 16 {
			t.Errorf("hw=%v: total partitions %d, want 16 (one per core)", hw, p.TotalPartitions())
		}
		// No core is oversaturated.
		for core, n := range p.PartitionsPerCore() {
			if n > 2 {
				t.Errorf("hw=%v: core %d owns %d partitions", hw, core, n)
			}
		}
	}

	// The hardware-aware variant packs each table's partitions onto fewer
	// sockets than the oblivious variant spreads them over.
	socketsOf := func(p *Placement, table string) int {
		seen := map[topology.SocketID]struct{}{}
		for _, c := range p.Tables[table].Cores {
			seen[top.SocketOf(c)] = struct{}{}
		}
		return len(seen)
	}
	aware := SpreadAcrossCores(top, specs, []float64{1, 1}, true)
	oblivious := SpreadAcrossCores(top, specs, []float64{1, 1}, false)
	if socketsOf(aware, "a") > socketsOf(oblivious, "a") {
		t.Errorf("hardware-aware placement uses %d sockets for table a, oblivious uses %d",
			socketsOf(aware, "a"), socketsOf(oblivious, "a"))
	}

	// Weighted placement gives the heavier table more cores.
	weighted := SpreadAcrossCores(top, specs, []float64{3, 1}, true)
	if weighted.Tables["a"].NumPartitions() <= weighted.Tables["b"].NumPartitions() {
		t.Errorf("weights ignored: a=%d b=%d partitions",
			weighted.Tables["a"].NumPartitions(), weighted.Tables["b"].NumPartitions())
	}

	// Degenerate inputs.
	if p := SpreadAcrossCores(top, nil, nil, true); p.TotalPartitions() != 0 {
		t.Error("no tables should produce an empty placement")
	}
	if p := SpreadAcrossCores(top, specs, []float64{1}, true); p.TotalPartitions() == 0 {
		t.Error("mismatched weights should fall back to equal weights")
	}
	if p := SpreadAcrossCores(top, specs, []float64{-1, 0}, true); p.TotalPartitions() == 0 {
		t.Error("non-positive weights should be clamped")
	}
}

func TestPerSocket(t *testing.T) {
	top := smallTop()
	p := PerSocket(top, []TableSpec{{Name: "a", MaxKey: 400}})
	if p.Tables["a"].NumPartitions() != 4 {
		t.Errorf("per-socket placement has %d partitions", p.Tables["a"].NumPartitions())
	}
	for i, c := range p.Tables["a"].Cores {
		if top.SocketOf(c) != topology.SocketID(i) {
			t.Errorf("partition %d owned by core %d on socket %d", i, c, top.SocketOf(c))
		}
	}
}

func TestRuntime(t *testing.T) {
	top := smallTop()
	d := numa.MustNewDomain(top, numa.DefaultCostModel())
	p := NaivePerCore(top, []TableSpec{{Name: "a", MaxKey: 1600}})
	r := NewRuntime(d, p)
	if r.NumPartitions("a") != 16 {
		t.Errorf("runtime has %d partitions", r.NumPartitions("a"))
	}
	lm, err := r.Locks("a", 5)
	if err != nil {
		t.Fatal(err)
	}
	// The lock table of partition 5 is homed on the socket of core 5.
	if lm.Home() != top.SocketOf(p.Tables["a"].Cores[5]) {
		t.Errorf("lock table homed on %d, want %d", lm.Home(), top.SocketOf(p.Tables["a"].Cores[5]))
	}
	if _, err := r.Locks("zzz", 0); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := r.Locks("a", 99); err == nil {
		t.Error("unknown partition should error")
	}
	if r.NumPartitions("zzz") != 0 {
		t.Error("unknown table should have zero partitions")
	}
}
